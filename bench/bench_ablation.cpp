// Ablation studies of the design choices called out in DESIGN.md:
//   (a) HDAC p-function sensitivity (alpha, beta) in Condition A;
//   (b) TASR trigger sensitivity (gamma, N_R) and TASR vs plain SR in
//       Condition B — the false-positive behaviour at small T that
//       motivates the T_l gate (paper §IV-B);
//   (c) EDAM with and without its own SR.

#include <cstdio>
#include <iostream>

#include "eval/experiment.h"
#include "eval/report.h"
#include "util/table.h"

namespace {

constexpr std::size_t kRows = 192;
constexpr std::size_t kReads = 256;

asmcap::Dataset make_dataset(bool condition_a, std::uint64_t seed) {
  asmcap::Rng rng(seed);
  return asmcap::build_dataset(condition_a
                                   ? asmcap::condition_a_config(kRows, kReads)
                                   : asmcap::condition_b_config(kRows, kReads),
                               rng);
}

double mean_full_f1(const asmcap::Dataset& dataset,
                    const asmcap::Fig7Config& config,
                    const std::vector<std::size_t>& thresholds,
                    std::uint64_t seed) {
  asmcap::Rng rng(seed);
  const asmcap::Fig7Series series =
      asmcap::Fig7Runner(config).run(dataset, thresholds, rng);
  return series.mean(&asmcap::Fig7Point::asmcap_full);
}

void hdac_ablation(const asmcap::Dataset& condition_a) {
  const std::vector<std::size_t> thresholds{1, 2, 3, 4, 5, 6, 7, 8};
  asmcap::Table table({"alpha", "beta", "mean F1(%) w/ strategies"});
  for (const double alpha : {0.0, 50.0, 200.0, 800.0}) {
    for (const double beta : {0.0, 0.5, 2.0}) {
      asmcap::Fig7Config config;
      config.asmcap.array_rows = kRows;
      config.asmcap.hdac.alpha = alpha;
      config.asmcap.hdac.beta = beta;
      const double f1 = mean_full_f1(condition_a, config, thresholds, 0xAB1);
      table.new_row().add_cell(alpha, 3).add_cell(beta, 2).add_cell(100 * f1, 4);
    }
  }
  asmcap::print_report(std::cout,
                       "HDAC p-function ablation (Condition A; paper uses "
                       "alpha=200, beta=0.5)",
                       table);
}

void tasr_ablation(const asmcap::Dataset& condition_b) {
  const std::vector<std::size_t> thresholds{2, 4, 6, 8, 10, 12, 14, 16};
  asmcap::Table table({"gamma", "N_R", "T_l(m=256)", "mean F1(%)"});
  for (const double gamma : {0.0, 1e-4, 2e-4, 8e-4}) {
    for (const std::size_t rotations : {std::size_t{1}, std::size_t{2},
                                        std::size_t{4}}) {
      asmcap::Fig7Config config;
      config.asmcap.array_rows = kRows;
      config.asmcap.tasr.gamma = gamma;
      config.asmcap.tasr.rotations = rotations;
      const std::size_t tl = asmcap::tasr_lower_bound(
          config.asmcap.tasr, condition_b.rates, 256);
      const double f1 = mean_full_f1(condition_b, config, thresholds, 0xAB2);
      table.new_row()
          .add_cell(gamma, 2)
          .add_cell(rotations)
          .add_cell(tl)
          .add_cell(100 * f1, 4);
    }
  }
  asmcap::print_report(
      std::cout,
      "TASR ablation (Condition B; gamma=0 degenerates to unconditional SR; "
      "paper uses gamma=2e-4, N_R=2)",
      table);
}

void edam_sr_ablation(const asmcap::Dataset& condition_b) {
  const std::vector<std::size_t> thresholds{2, 4, 6, 8, 10, 12, 14, 16};
  asmcap::Table table({"EDAM variant", "mean F1(%)"});
  for (const bool sr : {false, true}) {
    asmcap::Fig7Config config;
    config.asmcap.array_rows = kRows;
    config.edam_sr_enabled = sr;
    asmcap::Rng rng(0xAB3);
    const asmcap::Fig7Series series =
        asmcap::Fig7Runner(config).run(condition_b, thresholds, rng);
    table.new_row()
        .add_cell(sr ? "with SR (unconditional rotation)" : "plain ED*")
        .add_cell(100 * series.mean(&asmcap::Fig7Point::edam), 4);
  }
  asmcap::print_report(std::cout, "EDAM +/- SR (Condition B)", table);
}

}  // namespace

int main() {
  const asmcap::Dataset condition_a = make_dataset(true, 0xDA7A);
  const asmcap::Dataset condition_b = make_dataset(false, 0xDA7B);
  hdac_ablation(condition_a);
  tasr_ablation(condition_b);
  edam_sr_ablation(condition_b);
  std::puts("done");
  return 0;
}
