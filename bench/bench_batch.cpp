// Batched execution-engine benchmark (plain chrono, no external deps):
// compares the seed-era single-read circuit path against the batched
// FunctionalBackend path on the same workload and verifies that the match
// decisions are identical (ideal sensing makes the two backends
// decision-equivalent by construction; test_engine enforces it on every
// run, this driver demonstrates it at scale). The EDAM arm does the same
// for the comparator: serial circuit path vs batched functional backend,
// with a decision-digest equality assertion (EDAM's content-keyed query
// streams make serial and batched execution bit-identical, test_edam).
// When a SIMD kernel tier is active, a scalar-tier arm reruns the
// functional batch with ASMCAP_KERNEL-style forcing and asserts the
// decision digests are bit-identical across tiers (the kernels' cross-ISA
// contract) while the SIMD tier must clear a 2x throughput floor on
// timeable workloads.
//
//   ./bench_batch [reads] [segments] [workers] [--json <path>]
//
// Exits non-zero if any decisions diverge (across backends, batching, or
// kernel tiers) or the SIMD floor is missed, so it doubles as a check.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "align/kernels.h"
#include "asmcap/accelerator.h"
#include "asmcap/edam.h"
#include "genome/readsim.h"
#include "genome/reference.h"
#include "util/bench_json.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace asmcap;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// FNV-1a digest over a batch's decision bitmaps: two runs made the same
/// calls iff their digests agree.
template <typename Result>
std::uint64_t decision_digest(const std::vector<Result>& results) {
  DecisionDigest digest;
  for (const Result& result : results)
    for (const bool decision : result.decisions) digest.add(decision);
  return digest.value();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const std::string json_path = take_bench_json_path(args);
  const std::size_t n_reads =
      args.size() > 0 ? std::strtoull(args[0].c_str(), nullptr, 10) : 1000;
  const std::size_t n_segments =
      args.size() > 1 ? std::strtoull(args[1].c_str(), nullptr, 10) : 1024;
  const std::size_t workers =
      args.size() > 2 ? std::strtoull(args[2].c_str(), nullptr, 10) : 4;
  const std::size_t threshold = 4;

  AsmcapConfig config;
  config.array_rows = 256;
  config.array_cols = 256;
  config.array_count = (n_segments + config.array_rows - 1) / config.array_rows;
  config.ideal_sensing = true;

  Rng rng(0xBA7C'BE4C);
  const Sequence reference =
      generate_reference(256 * (n_segments + 2), {}, rng);
  auto segments = segment_reference(reference, 256);
  segments.resize(n_segments);

  ReadSimConfig sim_config;
  sim_config.read_length = 256;
  sim_config.rates = ErrorRates::condition_a();
  const ReadSimulator simulator(reference, sim_config);
  std::vector<Sequence> reads;
  reads.reserve(n_reads);
  for (std::size_t i = 0; i < n_reads; ++i)
    reads.push_back(
        simulator.simulate_at(rng.below(n_segments) * 256, rng).read);

  const KernelTier tier = active_kernel_tier();
  std::printf(
      "workload: %zu reads x %zu segments (%zu arrays), T=%zu, full "
      "HDAC+TASR, %zu workers (%zu hardware), %s kernels\n\n",
      n_reads, n_segments, config.array_count, threshold, workers,
      ThreadPool::hardware_workers(), to_string(tier));

  // --- Seed path: one read at a time through the circuit backend. ---------
  AsmcapAccelerator circuit(config);
  circuit.load_reference(segments);
  circuit.set_error_profile(ErrorRates::condition_a());
  const auto circuit_start = Clock::now();
  std::vector<QueryResult> circuit_results;
  circuit_results.reserve(n_reads);
  for (const Sequence& read : reads)
    circuit_results.push_back(circuit.search(read, threshold,
                                             StrategyMode::Full));
  const double circuit_seconds = seconds_since(circuit_start);

  // --- Engine path: batched FunctionalBackend across the worker pool. -----
  AsmcapAccelerator functional(config);
  functional.load_reference(segments);
  functional.set_error_profile(ErrorRates::condition_a());
  functional.set_backend(BackendKind::Functional);
  const auto batch_start = Clock::now();
  const std::vector<QueryResult> batch_results =
      functional.search_batch(reads, threshold, StrategyMode::Full, workers);
  const double batch_seconds = seconds_since(batch_start);

  // --- Scalar-tier arm: the same functional batch on scalar kernels. ------
  // A fresh accelerator with the same seed forks the exact same per-read
  // streams, so the digests must be bit-identical across kernel tiers (the
  // cross-ISA contract of align/kernels.h); on timeable workloads the SIMD
  // tier must also clear a 2x throughput floor over scalar.
  double scalar_seconds = 0.0;
  std::uint64_t scalar_tier_digest = 0;
  if (tier != KernelTier::Scalar) {
    AsmcapAccelerator functional_scalar(config);
    functional_scalar.load_reference(segments);
    functional_scalar.set_error_profile(ErrorRates::condition_a());
    functional_scalar.set_backend(BackendKind::Functional);
    set_active_kernel_tier(KernelTier::Scalar);
    const auto scalar_start = Clock::now();
    const std::vector<QueryResult> scalar_results =
        functional_scalar.search_batch(reads, threshold, StrategyMode::Full,
                                       workers);
    scalar_seconds = seconds_since(scalar_start);
    set_active_kernel_tier(tier);
    scalar_tier_digest = decision_digest(scalar_results);
  }

  // --- Equivalence: identical match decisions on every read. --------------
  // HDAC's probabilistic selection makes a query's outcome depend on its
  // RNG stream, so backend equivalence is checked stream-for-stream: a
  // circuit-backend batch forks the exact same per-read streams as the
  // functional batch above (same seed, same epoch) and must reproduce its
  // decisions bit-for-bit.
  AsmcapAccelerator circuit_batch(config);
  circuit_batch.load_reference(segments);
  circuit_batch.set_error_profile(ErrorRates::condition_a());
  const std::vector<QueryResult> circuit_batch_results =
      circuit_batch.search_batch(reads, threshold, StrategyMode::Full,
                                 workers);
  std::size_t divergent = 0;
  for (std::size_t i = 0; i < n_reads; ++i)
    if (circuit_batch_results[i].decisions != batch_results[i].decisions)
      ++divergent;

  // --- EDAM arm: the comparator through the same engine. ------------------
  // Serial circuit path (one read at a time, cell-accurate current-domain
  // sensing) vs the batched functional backend. Content-keyed query streams
  // plus ideal sensing make the two bit-identical: asserted by digest.
  EdamConfig edam_config;
  edam_config.array_rows = config.array_rows;
  edam_config.array_cols = config.array_cols;
  edam_config.array_count = config.array_count;
  edam_config.ideal_sensing = true;

  EdamAccelerator edam_serial(edam_config);
  edam_serial.load_reference(segments);
  const auto edam_serial_start = Clock::now();
  std::vector<EdamQueryResult> edam_serial_results;
  edam_serial_results.reserve(n_reads);
  for (const Sequence& read : reads)
    edam_serial_results.push_back(edam_serial.search(read, threshold));
  const double edam_serial_seconds = seconds_since(edam_serial_start);

  EdamAccelerator edam_batched(edam_config);
  edam_batched.load_reference(segments);
  edam_batched.set_backend(BackendKind::Functional);
  const auto edam_batch_start = Clock::now();
  const std::vector<EdamQueryResult> edam_batch_results =
      edam_batched.search_batch(reads, threshold, workers);
  const double edam_batch_seconds = seconds_since(edam_batch_start);

  const std::uint64_t edam_serial_digest =
      decision_digest(edam_serial_results);
  const std::uint64_t edam_batch_digest = decision_digest(edam_batch_results);

  Table table({"path", "wall time", "reads/s", "per read"});
  table.new_row()
      .add_cell("circuit, single-read (seed)")
      .add_cell(format_si(circuit_seconds, "s"))
      .add_cell(format_si(static_cast<double>(n_reads) / circuit_seconds, ""))
      .add_cell(format_si(circuit_seconds / static_cast<double>(n_reads),
                          "s"));
  table.new_row()
      .add_cell(std::string("functional, batched (") + to_string(tier) + ")")
      .add_cell(format_si(batch_seconds, "s"))
      .add_cell(format_si(static_cast<double>(n_reads) / batch_seconds, ""))
      .add_cell(format_si(batch_seconds / static_cast<double>(n_reads), "s"));
  if (tier != KernelTier::Scalar)
    table.new_row()
        .add_cell("functional, batched (scalar tier)")
        .add_cell(format_si(scalar_seconds, "s"))
        .add_cell(
            format_si(static_cast<double>(n_reads) / scalar_seconds, ""))
        .add_cell(
            format_si(scalar_seconds / static_cast<double>(n_reads), "s"));
  table.new_row()
      .add_cell("EDAM circuit, single-read (serial)")
      .add_cell(format_si(edam_serial_seconds, "s"))
      .add_cell(format_si(static_cast<double>(n_reads) / edam_serial_seconds,
                          ""))
      .add_cell(format_si(edam_serial_seconds / static_cast<double>(n_reads),
                          "s"));
  table.new_row()
      .add_cell("EDAM functional, batched")
      .add_cell(format_si(edam_batch_seconds, "s"))
      .add_cell(format_si(static_cast<double>(n_reads) / edam_batch_seconds,
                          ""))
      .add_cell(format_si(edam_batch_seconds / static_cast<double>(n_reads),
                          "s"));
  table.print(std::cout);

  const std::uint64_t batch_digest = decision_digest(batch_results);
  const double engine_speedup = circuit_seconds / batch_seconds;
  const double simd_speedup =
      tier != KernelTier::Scalar ? scalar_seconds / batch_seconds : 1.0;
  std::printf("\nspeedup: %.1fx, decisions identical on %zu/%zu reads\n",
              engine_speedup, n_reads - divergent, n_reads);
  if (tier != KernelTier::Scalar)
    std::printf(
        "SIMD speedup (%s vs scalar tier): %.1fx, decision digest %016llx "
        "%s across tiers\n",
        to_string(tier), simd_speedup,
        static_cast<unsigned long long>(batch_digest),
        batch_digest == scalar_tier_digest ? "identical" : "DIVERGED");
  std::printf(
      "EDAM speedup: %.1fx, decision digest %016llx (serial) %s (batched)\n",
      edam_serial_seconds / edam_batch_seconds,
      static_cast<unsigned long long>(edam_serial_digest),
      edam_serial_digest == edam_batch_digest ? "==" : "!=");

  // The SIMD throughput floor needs a timeable workload and a machine that
  // is not a single busy core (mirroring bench_sharded's carve-out);
  // digest equality across tiers is enforced unconditionally.
  const bool enforce_simd_floor = tier != KernelTier::Scalar &&
                                  n_reads >= 100 &&
                                  ThreadPool::hardware_workers() >= 2;

  if (!json_path.empty()) {
    DecisionDigest combined;
    combined.add_u64(batch_digest);
    combined.add_u64(edam_batch_digest);
    BenchReport report;
    report.bench = "bench_batch";
    report.kernel_tier = to_string(tier);
    report.hardware_threads = ThreadPool::hardware_workers();
    report.workload = {{"reads", static_cast<double>(n_reads)},
                       {"segments", static_cast<double>(n_segments)},
                       {"workers", static_cast<double>(workers)},
                       {"threshold", static_cast<double>(threshold)}};
    report.timings = {
        {"circuit-single-read", circuit_seconds,
         static_cast<double>(n_reads) / circuit_seconds},
        {"functional-batched", batch_seconds,
         static_cast<double>(n_reads) / batch_seconds},
        {"edam-circuit-serial", edam_serial_seconds,
         static_cast<double>(n_reads) / edam_serial_seconds},
        {"edam-functional-batched", edam_batch_seconds,
         static_cast<double>(n_reads) / edam_batch_seconds}};
    if (tier != KernelTier::Scalar)
      report.timings.push_back({"functional-batched-scalar-tier",
                                scalar_seconds,
                                static_cast<double>(n_reads) / scalar_seconds});
    report.metrics = {
        {"edam_speedup", edam_serial_seconds / edam_batch_seconds},
        {"simd_speedup", simd_speedup}};
    report.speedup = engine_speedup;
    report.decision_digest = combined.value();
    report.floor_enforced = enforce_simd_floor;
    write_bench_json(json_path, report);
  }

  if (divergent != 0) {
    std::fprintf(stderr, "FAIL: %zu reads diverged\n", divergent);
    return 1;
  }
  if (edam_serial_digest != edam_batch_digest) {
    std::fprintf(stderr, "FAIL: EDAM serial/batched decision digests diverged\n");
    return 1;
  }
  if (tier != KernelTier::Scalar && batch_digest != scalar_tier_digest) {
    std::fprintf(stderr,
                 "FAIL: decision digests diverged between %s and scalar "
                 "kernel tiers\n",
                 to_string(tier));
    return 1;
  }
  if (enforce_simd_floor && simd_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: %s kernel tier speedup %.2fx below the 2x floor\n",
                 to_string(tier), simd_speedup);
    return 1;
  }
  if (tier != KernelTier::Scalar && !enforce_simd_floor)
    std::printf(
        "(SIMD floor not enforced: %zu reads, %zu hardware threads)\n",
        n_reads, ThreadPool::hardware_workers());
  return 0;
}
