// Reproduces paper §V-B: area and power breakdown of a 256x256 ASMCap
// array (1.58 mm², 7.67 mW; cells >99 % of area; cells/shift-registers/SAs
// = 75/19/6 % of power), plus the sensitivity of the power figure to the
// workload mismatch statistics (see EXPERIMENTS.md for the discussion).

#include <benchmark/benchmark.h>

#include <iostream>

#include "circuit/power.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "util/table.h"

namespace {

void report_breakdown() {
  const asmcap::ProcessParams process;
  const auto breakdown = asmcap::run_breakdown(process, 256, 256);
  asmcap::print_report(
      std::cout,
      "SecV-B: area & power breakdown of a 256x256 ASMCap array "
      "(paper: 1.58mm^2, 7.67mW, 75/19/6%)",
      asmcap::breakdown_table(breakdown));

  // Sensitivity: array power vs workload mismatch fraction. The paper's
  // figure assumes n_mis close to N; the ED* statistics of unrelated random
  // rows give n_mis/N ~ 0.42, which costs more energy (Eq. 1 peaks at N/2).
  const asmcap::PowerModel power(process);
  asmcap::Table table({"n_mis/N", "Array power", "Energy/search"});
  for (const double fraction : {0.10, 0.42, 0.50, 0.75, 0.9725}) {
    const auto bp = power.asmcap_array_power(256, 256, fraction * 256.0);
    table.new_row()
        .add_cell(fraction, 3)
        .add_cell(asmcap::format_si(bp.total, "W"))
        .add_cell(asmcap::format_si(bp.energy_per_search, "J"));
  }
  asmcap::print_report(std::cout,
                       "Power vs workload mismatch statistics (Eq. 1)", table);
}

void BM_PowerModel(benchmark::State& state) {
  const asmcap::PowerModel power{asmcap::ProcessParams{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(power.asmcap_array_power(256, 256, 108.0));
  }
}
BENCHMARK(BM_PowerModel);

}  // namespace

int main(int argc, char** argv) {
  report_breakdown();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
