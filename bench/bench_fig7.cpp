// Reproduces paper Fig. 7: F1 vs threshold for EDAM, ASMCap w/o HDAC & TASR,
// and ASMCap w/ HDAC & TASR, under Condition A (substitution-dominant,
// e_s = 1 %, e_i = e_d = 0.05 %, T = 1..8) and Condition B (indel-dominant,
// e_s = 0.1 %, e_i = e_d = 0.5 %, T = 2..16), plus the Kraken2-normalised
// panels. Paper headline: avg 1.2x (74.7 % -> 87.6 %), up to 1.8x
// (46.3 % -> 81.2 %) at T = 1 in Condition A; 4.5x / 7.7x vs Kraken2.

#include <cstdio>
#include <iostream>

#include "eval/experiment.h"
#include "eval/report.h"

namespace {

void run_condition(const asmcap::DatasetConfig& config,
                   const std::vector<std::size_t>& thresholds,
                   std::uint64_t seed) {
  asmcap::Rng rng(seed);
  const asmcap::Dataset dataset = asmcap::build_dataset(config, rng);
  asmcap::Fig7Config fig7;
  fig7.asmcap.array_rows = dataset.rows.size();
  const asmcap::Fig7Runner runner(fig7);
  const asmcap::Fig7Series series = runner.run(dataset, thresholds, rng);

  asmcap::print_report(std::cout, "Fig.7 F1(%) -- " + dataset.name,
                       asmcap::fig7_table(series));
  asmcap::print_report(std::cout,
                       "Fig.7 normalised F1 (vs Kraken2-like) -- " +
                           dataset.name,
                       asmcap::fig7_normalized_table(series));

  const double edam = series.mean(&asmcap::Fig7Point::edam);
  const double base = series.mean(&asmcap::Fig7Point::asmcap_base);
  const double full = series.mean(&asmcap::Fig7Point::asmcap_full);
  const double kraken = series.mean(&asmcap::Fig7Point::kraken);
  std::printf(
      "Averages: EDAM %.1f%%  ASMCap w/o %.1f%% (%.2fx)  ASMCap w/ %.1f%% "
      "(%.2fx vs EDAM, %.2fx vs Kraken2-like)\n\n",
      100 * edam, 100 * base, edam > 0 ? base / edam : 0.0, 100 * full,
      edam > 0 ? full / edam : 0.0, kraken > 0 ? full / kraken : 0.0);
}

}  // namespace

int main() {
  // Paper-scale rows per array; reads chosen to keep the harness minutes-
  // scale while leaving the F1 estimates stable to ~1 %.
  asmcap::DatasetConfig condition_a = asmcap::condition_a_config(256, 384);
  asmcap::DatasetConfig condition_b = asmcap::condition_b_config(256, 384);

  run_condition(condition_a, {1, 2, 3, 4, 5, 6, 7, 8}, 0xF167A);
  run_condition(condition_b, {2, 4, 6, 8, 10, 12, 14, 16}, 0xF167B);
  return 0;
}
