// Reproduces paper Fig. 8: speedup and energy efficiency of ASMCap (w/ and
// w/o HDAC & TASR) against CM-CPU, ReSMA, SaVI, and EDAM on 256-base reads
// with the full 64 Mb (512-array) stored reference.
//
// Paper headline (w/ H&T): 4.7e4x / 174x / 61x / 1.4x speedup and
// 2.0e6x / 8.7e3x / 943x / 10.8x energy efficiency vs the four baselines.
// Absolute CPU numbers are additionally cross-calibrated against the
// measured kernel throughput of this host (see the second table).

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "align/myers.h"
#include "asmcap/config.h"
#include "eval/report.h"
#include "genome/reference.h"
#include "perf/comparison.h"
#include "perf/system_model.h"
#include "util/table.h"

namespace {

/// Measures this host's Myers kernel throughput (word-ops/s) so the CM-CPU
/// estimate can be grounded in a real measurement instead of a constant.
double measure_word_ops_per_second() {
  asmcap::Rng rng(77);
  const asmcap::Sequence pattern = asmcap::Sequence::random(256, rng);
  const asmcap::Sequence text = asmcap::Sequence::random(256, rng);
  const asmcap::MyersPattern kernel(pattern);
  // Warm up, then time.
  volatile std::size_t sink = 0;
  for (int i = 0; i < 100; ++i) sink = sink + kernel.distance(text);
  const auto start = std::chrono::steady_clock::now();
  constexpr int kIterations = 4000;
  for (int i = 0; i < kIterations; ++i) sink = sink + kernel.distance(text);
  const auto stop = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(stop - start).count();
  const double word_ops = static_cast<double>(kIterations) * 256.0 * 4.0;
  return word_ops / seconds;
}

void report_fig8(const asmcap::CmCpuConfig& cpu, const std::string& label) {
  const asmcap::AsmcapConfig asmcap_config;
  const asmcap::SystemModel model(asmcap_config, cpu);
  asmcap::PerfWorkload workload;  // 512 x 256 segments, 256-base reads

  const auto estimates = model.estimate_all(workload);
  asmcap::print_report(
      std::cout, "Fig.8 normalised to CM-CPU -- " + label,
      asmcap::comparison_table(asmcap::normalize_to_first(estimates)));

  // The paper's sentences: ASMCap w/ H&T vs each baseline.
  asmcap::print_report(
      std::cout,
      "ASMCap w/ H./T. vs baselines (paper: 4.7e4x/174x/61x/1.4x speed, "
      "2.0e6x/8.7e3x/943x/10.8x energy) -- " + label,
      asmcap::comparison_table(asmcap::ratios_against(estimates, 5)));
  asmcap::print_report(
      std::cout,
      "ASMCap w/o H./T. vs baselines (paper: 9.7e4x/362x/126x/2.8x speed, "
      "5.1e6x/2.3e4x/2.4e3x/28x energy) -- " + label,
      asmcap::comparison_table(asmcap::ratios_against(estimates, 4)));
}

void BM_SystemModel(benchmark::State& state) {
  const asmcap::SystemModel model{asmcap::AsmcapConfig{}};
  const asmcap::PerfWorkload workload;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.estimate_all(workload));
  }
}
BENCHMARK(BM_SystemModel);

}  // namespace

int main(int argc, char** argv) {
  report_fig8(asmcap::CmCpuConfig{}, "modelled i9-10980XE (18 threads)");

  asmcap::CmCpuConfig measured;
  measured.word_ops_per_second = measure_word_ops_per_second();
  measured.threads = 1;
  measured.cpu_power_watts = 35.0;  // single active core envelope
  std::cout << "Measured Myers kernel on this host: "
            << asmcap::format_si(measured.word_ops_per_second, "ops/s")
            << " (single thread)\n\n";
  report_fig8(measured, "measured single-core CPU of this host");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
