// Ingestion-pipeline benchmark (plain chrono, no external deps): the
// streaming FASTA/FASTQ reader and the end-to-end CLI path (stream ->
// ingest -> service pump -> results) against the in-memory search_batch
// reference.
//
//   ./bench_ingest [reads] [tiles] [shards] [workers] [--json <path>]
//
// Three measured arms, one correctness gate:
//   * reader    — SeqStreamReader over an in-memory FASTQ image
//                 (reader-only throughput: reads/s and bases/s);
//   * e2e       — ingest_reference builds the sharded database from a
//                 streamed FASTA image, then chunked SearchService
//                 submissions pump every read through the bounded
//                 admission window exactly like tools/asmcap_search
//                 (end-to-end reads/s, in-order streaming callbacks);
//   * batch     — the same records searched via load_reference +
//                 search_batch, the in-memory reference timing AND the
//                 reference decision digest.
//
// The e2e digest must equal the batch digest BIT-FOR-BIT (ingestion is
// decision-invariant: docs/determinism.md rules 8 and 10); the driver
// exits non-zero on divergence and check_bench.py pins the digest.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "align/kernels.h"
#include "asmcap/ingest.h"
#include "asmcap/service.h"
#include "asmcap/sharded.h"
#include "genome/fasta.h"
#include "genome/readsim.h"
#include "genome/reference.h"
#include "genome/stream_reader.h"
#include "util/bench_json.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace asmcap;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t digest_of(const std::vector<QueryResult>& results) {
  DecisionDigest digest;
  for (const QueryResult& result : results)
    for (const bool decision : result.decisions) digest.add(decision);
  return digest.value();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const std::string json_path = take_bench_json_path(args);
  const std::size_t n_reads =
      args.size() > 0 ? std::strtoull(args[0].c_str(), nullptr, 10) : 512;
  const std::size_t n_tiles =
      args.size() > 1 ? std::strtoull(args[1].c_str(), nullptr, 10) : 128;
  const std::size_t shards =
      args.size() > 2 ? std::strtoull(args[2].c_str(), nullptr, 10) : 2;
  const std::size_t workers =
      args.size() > 3 ? std::strtoull(args[3].c_str(), nullptr, 10) : 2;
  const std::size_t width = 128;
  const std::size_t threshold = 8;
  const std::size_t chunk = 64;
  if (n_reads == 0 || n_tiles < 2 || shards == 0 || workers == 0) {
    std::fprintf(stderr,
                 "usage: bench_ingest [reads>0] [tiles>=2] [shards>0] "
                 "[workers>0]\n");
    return 2;
  }

  AsmcapConfig bank;
  bank.array_rows = 64;
  bank.array_cols = width;
  const std::size_t per_shard = (n_tiles + shards - 1) / shards;
  bank.array_count = (per_shard + bank.array_rows - 1) / bank.array_rows + 1;
  bank.ideal_sensing = true;  // noise-free: digests comparable bit-for-bit

  // Deterministic workload: one FASTA record tiling exactly, FASTQ reads
  // simulated from tile-aligned windows.
  Rng rng(0x1463'57EA);
  std::vector<FastaRecord> reference(1);
  reference[0].id = "ref0";
  reference[0].seq = generate_reference(width * n_tiles, {}, rng);
  const std::vector<Sequence> tiles =
      segment_reference(reference[0].seq, width);

  ReadSimConfig sim_config;
  sim_config.read_length = width;
  sim_config.rates = ErrorRates::condition_a();
  const ReadSimulator simulator(reference[0].seq, sim_config);
  std::vector<FastqRecord> read_records(n_reads);
  std::vector<Sequence> read_seqs;
  read_seqs.reserve(n_reads);
  for (std::size_t i = 0; i < n_reads; ++i) {
    read_records[i].id = "read" + std::to_string(i);
    // Origins avoid the final tile so repadding after deletions always
    // has reference slack to extend into.
    read_records[i].seq =
        simulator.simulate_at(rng.below(n_tiles - 1) * width, rng).read;
    read_seqs.push_back(read_records[i].seq);
  }

  // In-memory file images: the reader parses real bytes, but the bench
  // stays filesystem-independent and fully deterministic.
  std::ostringstream fasta_image;
  write_fasta(fasta_image, reference, 70);
  std::ostringstream fastq_image;
  write_fastq(fastq_image, read_records);
  const std::string fasta_text = fasta_image.str();
  const std::string fastq_text = fastq_image.str();

  std::printf(
      "workload: %zu reads x %zu tiles (width %zu), T=%zu, functional "
      "backend, %zu shards x %zu arrays, %zu workers (%zu hardware)\n\n",
      n_reads, n_tiles, width, threshold, shards, bank.array_count, workers,
      ThreadPool::hardware_workers());

  // --- Reader arm: parse the FASTQ image, count everything. ---------------
  double reader_seconds = 0.0;
  std::size_t reader_bases = 0;
  {
    std::istringstream in(fastq_text);
    SeqStreamReader reader(in, "bench.fq");
    SeqRecord record;
    const auto start = Clock::now();
    while (reader.next(record)) {
    }
    reader_seconds = seconds_since(start);
    reader_bases = reader.bases();
    if (reader.records() != n_reads) {
      std::fprintf(stderr, "FAIL: reader saw %zu of %zu records\n",
                   reader.records(), n_reads);
      return 1;
    }
  }

  // --- Batch arm (reference): load_reference + search_batch. --------------
  ShardedAccelerator frozen(bank, shards);
  frozen.set_backend(BackendKind::Functional);
  frozen.load_reference(tiles);
  frozen.set_error_profile(sim_config.rates);
  const auto batch_start = Clock::now();
  const std::vector<QueryResult> batch_results =
      frozen.search_batch(read_seqs, threshold, StrategyMode::Full, workers);
  const double batch_seconds = seconds_since(batch_start);
  const std::uint64_t batch_digest = digest_of(batch_results);

  // --- End-to-end arm: stream -> ingest -> service pump. ------------------
  ShardedAccelerator grown(bank, shards);
  grown.set_backend(BackendKind::Functional);
  const auto ingest_start = Clock::now();
  std::istringstream fasta_in(fasta_text);
  SeqStreamReader fasta_reader(fasta_in, "bench.fa");
  const IngestStats ingest = ingest_reference(grown, fasta_reader);
  const double ingest_seconds = seconds_since(ingest_start);
  grown.set_error_profile(sim_config.rates);

  const auto e2e_start = Clock::now();
  DecisionDigest stream_digest;
  std::size_t streamed = 0;
  {
    std::istringstream fastq_in(fastq_text);
    SeqStreamReader fastq_reader(fastq_in, "bench.fq");
    SearchService service(grown);
    ServiceOptions options;
    options.workers = workers;
    options.in_order = true;
    options.keep_results = false;
    options.on_complete = [&](std::size_t, const QueryResult& result) {
      // in_order delivery is serialised, so hashing here is read-ordered.
      for (const bool decision : result.decisions)
        stream_digest.add(decision);
      ++streamed;
    };
    std::vector<SeqRecord> block = fastq_reader.read_chunk(chunk);
    while (!block.empty()) {
      std::vector<Sequence> submit;
      submit.reserve(block.size());
      for (SeqRecord& record : block) submit.push_back(std::move(record.seq));
      auto ticket = service.submit(std::move(submit), threshold,
                                   StrategyMode::Full, options);
      block = fastq_reader.read_chunk(chunk);  // Overlap with execution.
      ticket->wait();
    }
  }
  const double e2e_seconds = seconds_since(e2e_start);

  const bool digests_match = stream_digest.value() == batch_digest;
  const double service_overhead = e2e_seconds / batch_seconds;

  Table table({"arm", "wall time", "rate"});
  table.new_row()
      .add_cell("stream reader (FASTQ parse)")
      .add_cell(format_si(reader_seconds, "s"))
      .add_cell(format_si(static_cast<double>(n_reads) / reader_seconds,
                          " reads/s"));
  table.new_row()
      .add_cell("reference ingest (stream+tile+append)")
      .add_cell(format_si(ingest_seconds, "s"))
      .add_cell(format_si(
          static_cast<double>(ingest.segments) / ingest_seconds,
          " segments/s"));
  table.new_row()
      .add_cell("end-to-end service pump")
      .add_cell(format_si(e2e_seconds, "s"))
      .add_cell(format_si(static_cast<double>(n_reads) / e2e_seconds,
                          " reads/s"));
  table.new_row()
      .add_cell("in-memory search_batch")
      .add_cell(format_si(batch_seconds, "s"))
      .add_cell(format_si(static_cast<double>(n_reads) / batch_seconds,
                          " reads/s"));
  table.print(std::cout);

  std::printf("\nservice-pump overhead %.2fx over search_batch, digest %s\n",
              service_overhead, digests_match ? "match" : "DIVERGED");

  if (!json_path.empty()) {
    BenchReport report;
    report.bench = "bench_ingest";
    report.kernel_tier = to_string(active_kernel_tier());
    report.hardware_threads = ThreadPool::hardware_workers();
    report.workload = {{"reads", static_cast<double>(n_reads)},
                       {"tiles", static_cast<double>(n_tiles)},
                       {"shards", static_cast<double>(shards)},
                       {"workers", static_cast<double>(workers)},
                       {"width", static_cast<double>(width)},
                       {"threshold", static_cast<double>(threshold)}};
    report.timings = {
        {"stream-reader", reader_seconds,
         static_cast<double>(n_reads) / reader_seconds},
        {"reference-ingest", ingest_seconds,
         static_cast<double>(ingest.segments) / ingest_seconds},
        {"e2e-service-pump", e2e_seconds,
         static_cast<double>(n_reads) / e2e_seconds},
        {"in-memory-batch", batch_seconds,
         static_cast<double>(n_reads) / batch_seconds}};
    report.metrics = {
        {"reader_bases_per_second",
         static_cast<double>(reader_bases) / reader_seconds},
        {"ingest_segments_per_second",
         static_cast<double>(ingest.segments) / ingest_seconds},
        {"service_pump_overhead", service_overhead},
        {"ingest_digest_matches", digests_match ? 1.0 : 0.0}};
    report.decision_digest = batch_digest;
    report.floor_enforced = false;  // Ingest rates are not timing-gated.
    write_bench_json(json_path, report);
  }

  if (streamed != n_reads) {
    std::fprintf(stderr, "FAIL: service pump completed %zu of %zu reads\n",
                 streamed, n_reads);
    return 1;
  }
  if (!digests_match) {
    std::fprintf(stderr,
                 "FAIL: streamed-ingest decisions diverged from "
                 "load_reference + search_batch\n");
    return 1;
  }
  return 0;
}
