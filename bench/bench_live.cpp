// Live-database benchmark (plain chrono, no external deps): mutation
// throughput and search behaviour of the epoch-snapshotted router.
//
//   ./bench_live [segments] [reads] [shards] [workers] [--json <path>]
//
// Four measured arms, one correctness gate:
//   * frozen    — the classic one-shot load + read stream (the reference
//                 timing and the reference decision digest);
//   * build     — the same database grown live: half loaded, half
//                 appended in chunks through the copy-on-write epoch path
//                 (reports appends/s). The subsequent read stream must
//                 reproduce the frozen digest BIT-FOR-BIT — global ids
//                 are placement-invariant, so a database grown by
//                 mutation is indistinguishable from one loaded frozen;
//   * churn     — the read stream again, now with a scratch block deleted
//                 and re-appended between every read (search-under-
//                 mutation overhead; the frozen rows' decisions must
//                 still match the frozen digest);
//   * retire    — a bulk tombstone pass over a quarter of the database
//                 (reports deletes/s), then one compact() call, timed
//                 alone: the epoch-boundary pause a live deployment
//                 would schedule (reports compaction_pause_seconds).
//
// Exits non-zero if either digest diverges from the frozen arm.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "align/kernels.h"
#include "asmcap/sharded.h"
#include "genome/readsim.h"
#include "genome/reference.h"
#include "util/bench_json.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace asmcap;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Digest over the first `ids` decisions of every result — the frozen
/// rows' id range, shared by every arm regardless of how far the scratch
/// appends have grown the id space.
std::uint64_t digest_prefix(const std::vector<QueryResult>& results,
                            std::size_t ids) {
  DecisionDigest digest;
  for (const QueryResult& result : results)
    for (std::size_t i = 0; i < ids && i < result.decisions.size(); ++i)
      digest.add(result.decisions[i]);
  return digest.value();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const std::string json_path = take_bench_json_path(args);
  const std::size_t n_segments =
      args.size() > 0 ? std::strtoull(args[0].c_str(), nullptr, 10) : 2048;
  const std::size_t n_reads =
      args.size() > 1 ? std::strtoull(args[1].c_str(), nullptr, 10) : 32;
  const std::size_t shards =
      args.size() > 2 ? std::strtoull(args[2].c_str(), nullptr, 10) : 4;
  const std::size_t workers =
      args.size() > 3 ? std::strtoull(args[3].c_str(), nullptr, 10) : 2;
  const std::size_t threshold = 4;
  if (n_segments < 16 || n_reads == 0 || shards == 0 || workers == 0) {
    std::fprintf(stderr,
                 "usage: bench_live [segments>=16] [reads>0] [shards>0] "
                 "[workers>0]\n");
    return 2;
  }

  // Bank geometry leaves headroom above the frozen database: the churn
  // arm keeps a scratch block in flight and the live build stages appends
  // in the hot bank before folding them cold.
  AsmcapConfig bank;
  bank.array_rows = 256;
  bank.array_cols = 256;
  const std::size_t per_shard = (n_segments + shards - 1) / shards;
  bank.array_count =
      (per_shard + bank.array_rows - 1) / bank.array_rows + 1;
  bank.ideal_sensing = true;  // noise-free: digests comparable bit-for-bit

  Rng rng(0x11FE'DB01);
  const Sequence reference =
      generate_reference(256 * (n_segments + 2), {}, rng);
  auto segments = segment_reference(reference, 256);
  segments.resize(n_segments);

  ReadSimConfig sim_config;
  sim_config.read_length = 256;
  sim_config.rates = ErrorRates::condition_a();
  const ReadSimulator simulator(reference, sim_config);
  std::vector<Sequence> reads;
  reads.reserve(n_reads);
  for (std::size_t i = 0; i < n_reads; ++i)
    reads.push_back(
        simulator.simulate_at(rng.below(n_segments) * 256, rng).read);

  std::printf(
      "workload: %zu reads x %zu segments, T=%zu, circuit backend, "
      "%zu shards x %zu arrays, %zu workers (%zu hardware)\n\n",
      n_reads, n_segments, threshold, shards, bank.array_count, workers,
      ThreadPool::hardware_workers());

  // --- Frozen arm: one-shot load, then the read stream. -------------------
  ShardedAccelerator frozen(bank, shards);
  frozen.load_reference(segments);
  frozen.set_error_profile(sim_config.rates);
  const auto frozen_start = Clock::now();
  std::vector<QueryResult> frozen_results;
  frozen_results.reserve(n_reads);
  for (const Sequence& read : reads)
    frozen_results.push_back(
        frozen.search(read, threshold, StrategyMode::Full, workers));
  const double frozen_seconds = seconds_since(frozen_start);
  const std::uint64_t frozen_digest = digest_prefix(frozen_results, n_segments);

  // --- Build arm: grow the same database live, then stream the reads. -----
  ShardedAccelerator live(bank, shards);
  live.set_error_profile(sim_config.rates);
  const std::size_t half = n_segments / 2;
  live.load_reference(
      std::vector<Sequence>(segments.begin(), segments.begin() + half));
  const std::size_t chunk = 64;
  const auto append_start = Clock::now();
  for (std::size_t i = half; i < n_segments; i += chunk) {
    const std::size_t end = std::min(i + chunk, n_segments);
    live.append_segments(
        std::vector<Sequence>(segments.begin() + i, segments.begin() + end));
  }
  live.compact();
  const double append_seconds = seconds_since(append_start);
  const double appends_per_second =
      static_cast<double>(n_segments - half) / append_seconds;

  const auto grown_start = Clock::now();
  std::vector<QueryResult> grown_results;
  grown_results.reserve(n_reads);
  for (const Sequence& read : reads)
    grown_results.push_back(
        live.search(read, threshold, StrategyMode::Full, workers));
  const double grown_seconds = seconds_since(grown_start);
  const std::uint64_t grown_digest = digest_prefix(grown_results, n_segments);

  // --- Churn arm: reads interleaved with delete + re-append pairs. --------
  // A fresh router (so its sequential query streams align with the frozen
  // arm's) holding the same database, plus a scratch block beyond the
  // frozen id range; every read is bracketed by tombstoning the previous
  // block and staging a fresh one, so each search crosses an epoch
  // boundary published just before it.
  ShardedAccelerator churny(bank, shards);
  churny.load_reference(segments);
  churny.set_error_profile(sim_config.rates);
  std::vector<Sequence> scratch(segments.begin(), segments.begin() + 8);
  std::vector<std::uint64_t> scratch_ids = churny.append_segments(scratch);
  const auto churn_start = Clock::now();
  std::vector<QueryResult> churn_results;
  churn_results.reserve(n_reads);
  for (const Sequence& read : reads) {
    churny.remove_segments(scratch_ids);
    scratch_ids = churny.append_segments(scratch);
    churn_results.push_back(
        churny.search(read, threshold, StrategyMode::Full, workers));
  }
  const double churn_seconds = seconds_since(churn_start);
  const std::uint64_t churn_digest = digest_prefix(churn_results, n_segments);

  // --- Retire arm: bulk tombstones, then the compaction pause. ------------
  std::vector<std::uint64_t> retire_ids;
  for (std::size_t i = 0; i < n_segments / 4; ++i)
    retire_ids.push_back(static_cast<std::uint64_t>(4 * i));  // Spread out.
  const auto retire_start = Clock::now();
  const std::size_t delete_chunk = 64;
  for (std::size_t i = 0; i < retire_ids.size(); i += delete_chunk) {
    const std::size_t end = std::min(i + delete_chunk, retire_ids.size());
    churny.remove_segments(std::vector<std::uint64_t>(
        retire_ids.begin() + i, retire_ids.begin() + end));
  }
  const double retire_seconds = seconds_since(retire_start);
  const double deletes_per_second =
      static_cast<double>(retire_ids.size()) / retire_seconds;
  const auto compact_start = Clock::now();
  churny.compact();
  const double compact_seconds = seconds_since(compact_start);

  const double grown_overhead = grown_seconds / frozen_seconds;
  const double churn_overhead = churn_seconds / frozen_seconds;

  Table table({"arm", "wall time", "rate"});
  table.new_row()
      .add_cell("frozen load + read stream")
      .add_cell(format_si(frozen_seconds, "s"))
      .add_cell(format_si(static_cast<double>(n_reads) / frozen_seconds,
                          " reads/s"));
  table.new_row()
      .add_cell("live build (append + fold)")
      .add_cell(format_si(append_seconds, "s"))
      .add_cell(format_si(appends_per_second, " appends/s"));
  table.new_row()
      .add_cell("read stream on grown db")
      .add_cell(format_si(grown_seconds, "s"))
      .add_cell(format_si(static_cast<double>(n_reads) / grown_seconds,
                          " reads/s"));
  table.new_row()
      .add_cell("read stream under churn")
      .add_cell(format_si(churn_seconds, "s"))
      .add_cell(format_si(static_cast<double>(n_reads) / churn_seconds,
                          " reads/s"));
  table.new_row()
      .add_cell("bulk tombstone pass")
      .add_cell(format_si(retire_seconds, "s"))
      .add_cell(format_si(deletes_per_second, " deletes/s"));
  table.new_row()
      .add_cell("compaction pause")
      .add_cell(format_si(compact_seconds, "s"))
      .add_cell("-");
  table.print(std::cout);

  std::printf(
      "\ngrown-db search overhead %.2fx, churn overhead %.2fx, digests "
      "%s/%s\n",
      grown_overhead, churn_overhead,
      grown_digest == frozen_digest ? "match" : "DIVERGED",
      churn_digest == frozen_digest ? "match" : "DIVERGED");

  if (!json_path.empty()) {
    BenchReport report;
    report.bench = "bench_live";
    report.kernel_tier = to_string(active_kernel_tier());
    report.hardware_threads = ThreadPool::hardware_workers();
    report.workload = {{"segments", static_cast<double>(n_segments)},
                       {"reads", static_cast<double>(n_reads)},
                       {"shards", static_cast<double>(shards)},
                       {"workers", static_cast<double>(workers)},
                       {"threshold", static_cast<double>(threshold)}};
    report.timings = {
        {"frozen-read-stream", frozen_seconds,
         static_cast<double>(n_reads) / frozen_seconds},
        {"live-build", append_seconds, appends_per_second},
        {"grown-read-stream", grown_seconds,
         static_cast<double>(n_reads) / grown_seconds},
        {"churn-read-stream", churn_seconds,
         static_cast<double>(n_reads) / churn_seconds},
        {"bulk-tombstone", retire_seconds, deletes_per_second},
        {"compaction", compact_seconds, 0.0}};
    report.metrics = {
        {"appends_per_second", appends_per_second},
        {"deletes_per_second", deletes_per_second},
        {"grown_search_overhead", grown_overhead},
        {"churn_search_overhead", churn_overhead},
        {"compaction_pause_seconds", compact_seconds},
        {"grown_digest_matches",
         grown_digest == frozen_digest ? 1.0 : 0.0},
        {"churn_digest_matches",
         churn_digest == frozen_digest ? 1.0 : 0.0}};
    report.decision_digest = frozen_digest;
    report.floor_enforced = false;  // Mutation rates are not timing-gated.
    write_bench_json(json_path, report);
  }

  if (grown_digest != frozen_digest) {
    std::fprintf(stderr,
                 "FAIL: live-grown database diverged from the frozen load\n");
    return 1;
  }
  if (churn_digest != frozen_digest) {
    std::fprintf(stderr,
                 "FAIL: decisions under churn diverged on the frozen rows\n");
    return 1;
  }
  return 0;
}
