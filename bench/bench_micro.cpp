// Micro-benchmarks of the alignment kernels and the functional CAM model.
// BM_BandedDp / BM_MyersGlobal also serve as the measured calibration for
// the CM-CPU baseline of Fig. 8.

#include <benchmark/benchmark.h>

#include "align/edit_distance.h"
#include "align/edstar.h"
#include "align/hamming.h"
#include "align/myers.h"
#include "asmcap/accelerator.h"
#include "cam/array.h"
#include "genome/reference.h"
#include "util/rng.h"

namespace {

using namespace asmcap;

Sequence random_seq(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return Sequence::random(n, rng);
}

void BM_FullDp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Sequence a = random_seq(n, 1);
  const Sequence b = random_seq(n, 2);
  for (auto _ : state) benchmark::DoNotOptimize(edit_distance(a, b));
  state.SetItemsProcessed(state.iterations() * n * n);  // DP cells
}
BENCHMARK(BM_FullDp)->Arg(64)->Arg(256);

void BM_BandedDp(benchmark::State& state) {
  const Sequence a = random_seq(256, 3);
  const Sequence b = random_seq(256, 4);
  const auto cap = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(banded_edit_distance(a, b, cap));
  state.SetItemsProcessed(state.iterations() * 256 * (2 * cap + 1));
}
BENCHMARK(BM_BandedDp)->Arg(4)->Arg(8)->Arg(16);

void BM_MyersGlobal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Sequence a = random_seq(n, 5);
  const Sequence b = random_seq(n, 6);
  const MyersPattern pattern(a);
  for (auto _ : state) benchmark::DoNotOptimize(pattern.distance(b));
  state.SetItemsProcessed(state.iterations() * n * ((n + 63) / 64));
}
BENCHMARK(BM_MyersGlobal)->Arg(64)->Arg(256)->Arg(1024);

void BM_MyersSemiGlobalScan(benchmark::State& state) {
  // 256-base read scanned over a 30 kb virus-scale reference: the CM-CPU
  // workload unit of Fig. 8.
  const Sequence read = random_seq(256, 7);
  const Sequence reference = random_seq(30000, 8);
  const MyersPattern pattern(read);
  for (auto _ : state)
    benchmark::DoNotOptimize(pattern.best_semiglobal(reference));
  state.SetItemsProcessed(state.iterations() * reference.size());
}
BENCHMARK(BM_MyersSemiGlobalScan);

void BM_Hamming(benchmark::State& state) {
  const Sequence a = random_seq(256, 9);
  const Sequence b = random_seq(256, 10);
  for (auto _ : state) benchmark::DoNotOptimize(hamming_distance(a, b));
}
BENCHMARK(BM_Hamming);

void BM_EdStar(benchmark::State& state) {
  const Sequence a = random_seq(256, 11);
  const Sequence b = random_seq(256, 12);
  for (auto _ : state) benchmark::DoNotOptimize(ed_star(a, b));
}
BENCHMARK(BM_EdStar);

void BM_EdStarPacked(benchmark::State& state) {
  // The word-parallel kernel behind the FunctionalBackend.
  const Sequence a = random_seq(256, 11);
  const Sequence b = random_seq(256, 12);
  const auto pa = a.packed_words();
  const auto pb = b.packed_words();
  for (auto _ : state) benchmark::DoNotOptimize(ed_star_packed(pa, pb, 256));
}
BENCHMARK(BM_EdStarPacked);

void BM_CamArraySearch(benchmark::State& state) {
  Rng rng(13);
  CamArray array(256, 256);
  for (std::size_t r = 0; r < 256; ++r)
    array.write_row(r, Sequence::random(256, rng));
  const Sequence read = Sequence::random(256, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(array.search_counts(read, MatchMode::EdStar));
  state.SetItemsProcessed(state.iterations() * 256 * 256);  // cells
}
BENCHMARK(BM_CamArraySearch);

void BM_AcceleratorQuery(benchmark::State& state) {
  AsmcapConfig config;
  config.array_rows = 256;
  config.array_cols = 256;
  config.array_count = 1;
  AsmcapAccelerator accel(config);
  Rng rng(14);
  const Sequence reference = generate_reference(256 * 257 + 512, {}, rng);
  auto segments = segment_reference(reference, 256);
  segments.resize(256);
  accel.load_reference(segments);
  accel.set_error_profile(ErrorRates::condition_a());
  const Sequence read = segments[100];
  for (auto _ : state)
    benchmark::DoNotOptimize(accel.search(read, 4, StrategyMode::Full));
  state.SetItemsProcessed(state.iterations() * 256);  // rows per query
}
BENCHMARK(BM_AcceleratorQuery);

void BM_AcceleratorQueryFunctional(benchmark::State& state) {
  // Same query through the FunctionalBackend (word-parallel kernels,
  // nominal analytic energy) — the fast path for large sweeps.
  AsmcapConfig config;
  config.array_rows = 256;
  config.array_cols = 256;
  config.array_count = 1;
  AsmcapAccelerator accel(config);
  Rng rng(14);
  const Sequence reference = generate_reference(256 * 257 + 512, {}, rng);
  auto segments = segment_reference(reference, 256);
  segments.resize(256);
  accel.load_reference(segments);
  accel.set_error_profile(ErrorRates::condition_a());
  accel.set_backend(BackendKind::Functional);
  const Sequence read = segments[100];
  for (auto _ : state)
    benchmark::DoNotOptimize(accel.search(read, 4, StrategyMode::Full));
  state.SetItemsProcessed(state.iterations() * 256);  // rows per query
}
BENCHMARK(BM_AcceleratorQueryFunctional);

void BM_SearchBatchFunctional(benchmark::State& state) {
  // Whole-batch throughput of the batched engine (worker count = arg).
  AsmcapConfig config;
  config.array_rows = 256;
  config.array_cols = 256;
  config.array_count = 1;
  AsmcapAccelerator accel(config);
  Rng rng(15);
  const Sequence reference = generate_reference(256 * 257 + 512, {}, rng);
  auto segments = segment_reference(reference, 256);
  segments.resize(256);
  accel.load_reference(segments);
  accel.set_error_profile(ErrorRates::condition_a());
  accel.set_backend(BackendKind::Functional);
  std::vector<Sequence> reads;
  for (int i = 0; i < 64; ++i)
    reads.push_back(segments[static_cast<std::size_t>(rng.below(256))]);
  const auto workers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        accel.search_batch(reads, 4, StrategyMode::Full, workers));
  state.SetItemsProcessed(state.iterations() * reads.size());
}
BENCHMARK(BM_SearchBatchFunctional)->Arg(1)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
