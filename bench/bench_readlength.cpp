// Read-length scaling study (paper §II-C claim): the current-domain
// sensing of EDAM "limits the read length" — its voltage-per-count shrinks
// as 1/m while the noise floor is fixed — whereas ASMCap's charge-domain
// levels remain 3-sigma separated up to 566 cells. F1 of both accelerators
// (no correction strategies) vs row width, plus the corner sweep of the
// Table I quantities.

#include <benchmark/benchmark.h>

#include <iostream>

#include "circuit/corners.h"
#include "circuit/montecarlo.h"
#include "circuit/timing.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "util/table.h"

namespace {

void report_readlength() {
  asmcap::Rng rng(0x4EAD);
  const asmcap::ReadLengthConfig config;
  const auto points =
      asmcap::run_readlength(config, asmcap::ProcessParams{}, rng);
  asmcap::Table table({"read length m", "T", "EDAM F1(%)", "ASMCap F1(%)",
                       "ASMCap/EDAM"});
  for (const auto& point : points) {
    table.new_row()
        .add_cell(point.read_length)
        .add_cell(point.threshold)
        .add_cell(100 * point.edam_f1, 4)
        .add_cell(100 * point.asmcap_f1, 4)
        .add_cell(point.edam_f1 > 0 ? point.asmcap_f1 / point.edam_f1 : 0.0,
                  3);
  }
  asmcap::print_report(
      std::cout,
      "Read-length scaling (SecII-C): EDAM degrades as V/count shrinks; "
      "ASMCap holds to its 566-state limit",
      table);
}

void report_corners() {
  asmcap::Table table(
      {"corner", "VDD", "ASMCap search", "EDAM search", "EDAM states"});
  for (const asmcap::ProcessCorner corner :
       {asmcap::ProcessCorner::SS, asmcap::ProcessCorner::TT,
        asmcap::ProcessCorner::FF}) {
    for (const double vdd : {1.08, 1.2, 1.32}) {
      const asmcap::ProcessParams params =
          asmcap::apply_corner(asmcap::ProcessParams{}, corner, vdd);
      const asmcap::TimingModel timing(params);
      table.new_row()
          .add_cell(asmcap::to_string(corner))
          .add_cell(vdd, 3)
          .add_cell(asmcap::format_si(timing.asmcap_search().total, "s"))
          .add_cell(asmcap::format_si(timing.edam_search().total, "s"))
          .add_cell(asmcap::current_domain_max_states(params.current));
    }
  }
  asmcap::print_report(std::cout,
                       "Process-corner / supply sweep of the search timing",
                       table);
}

void BM_ReadLengthPoint(benchmark::State& state) {
  asmcap::ReadLengthConfig config;
  config.lengths = {static_cast<std::size_t>(state.range(0))};
  config.rows = 16;
  config.reads = 16;
  for (auto _ : state) {
    asmcap::Rng rng(1);
    benchmark::DoNotOptimize(
        asmcap::run_readlength(config, asmcap::ProcessParams{}, rng));
  }
}
BENCHMARK(BM_ReadLengthPoint)->Arg(128)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  report_readlength();
  report_corners();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
