// Streaming-service benchmark (plain chrono, no external deps): the
// service-deployment shape — a producer simulating/ingesting reads while
// the accelerator executes earlier ones. The synchronous pipeline
// alternates strictly (simulate chunk, then search_batch it, then consume);
// the streaming pipeline submits each chunk to the SearchService and
// immediately starts simulating the next one, consuming results through
// the arrival-order completion callback, so production and execution run
// concurrently and the wall clock approaches max(produce, execute) instead
// of produce + execute.
//
// Per-read result digests are verified identical between the two
// pipelines (the service's decisions are bit-identical to search_batch),
// and every ticket's peak_in_flight is checked against its admission
// window (the O(in-flight) partial-result memory bound) — so the driver
// doubles as a service correctness check; CI runs it under ASan/UBSan
// with a tiny database.
//
// A third, mixed-traffic arm models the production tier: a bulk
// re-analysis batch with a small interactive request arriving right
// behind it. The FIFO sub-arm makes the latecomer wait for the whole
// bulk run (head-of-line blocking); the prioritized sub-arm submits both
// concurrently with ServiceClass::Bulk vs ::Interactive, letting the
// fair-share scheduler and the pool's priority queues pull the
// interactive reads ahead. Per-read digests between the sub-arms must be
// bit-identical (scheduling never changes decisions); the per-class
// completion-latency percentiles (measured from the interactive
// ARRIVAL, the same instant in both sub-arms) are emitted as JSON
// metrics, and tools/check_bench.py gates mixed_digest_matches == 1 and
// interactive_p99_speedup against bench/baseline.json.
//
//   ./bench_service [reads] [segments] [chunk] [workers] [shards] [floor]
//                   [--json <path>]
//
// Exits non-zero if digests diverge, if a ticket overruns its admission
// window, or — when floor != 0 (the default) AND the machine has enough
// hardware threads to actually overlap producer and consumer
// (>= workers + 1, workers >= 2) — if the streaming pipeline fails to
// beat the synchronous one by >= 1.15x. CI smoke runs pass floor = 0:
// shared runners and sanitizer overhead make tiny-workload timing
// meaningless there, so they exercise correctness only.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "align/kernels.h"
#include "asmcap/service.h"
#include "asmcap/sharded.h"
#include "genome/readsim.h"
#include "genome/reference.h"
#include "util/bench_json.h"
#include "util/clock.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace asmcap;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Order-insensitive per-read digest of a result (count, XOR of ids).
std::uint64_t digest(const QueryResult& result) {
  std::uint64_t d = static_cast<std::uint64_t>(result.matched_segments.size())
                    << 32;
  for (const std::size_t id : result.matched_segments)
    d ^= 0x9E37'79B9'7F4A'7C15ULL * (id + 1);
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const std::string json_path = take_bench_json_path(args);
  const std::size_t n_reads =
      args.size() > 0 ? std::strtoull(args[0].c_str(), nullptr, 10) : 384;
  const std::size_t n_segments =
      args.size() > 1 ? std::strtoull(args[1].c_str(), nullptr, 10) : 1024;
  const std::size_t chunk =
      args.size() > 2 ? std::strtoull(args[2].c_str(), nullptr, 10) : 48;
  const std::size_t workers =
      args.size() > 3 ? std::strtoull(args[3].c_str(), nullptr, 10) : 4;
  const std::size_t shards =
      args.size() > 4 ? std::strtoull(args[4].c_str(), nullptr, 10) : 2;
  const bool enforce_floor =
      args.size() > 5 ? std::strtoull(args[5].c_str(), nullptr, 10) != 0
                      : true;
  const std::size_t threshold = 4;
  if (n_reads == 0 || n_segments == 0 || chunk == 0 || workers == 0 ||
      shards == 0) {
    std::fprintf(stderr,
                 "usage: bench_service [reads>0] [segments>0] [chunk>0] "
                 "[workers>0] [shards>0] [floor 0|1]\n");
    return 2;
  }

  AsmcapConfig bank;
  bank.array_rows = 128;
  bank.array_cols = 128;
  const std::size_t per_shard = (n_segments + shards - 1) / shards;
  bank.array_count = (per_shard + bank.array_rows - 1) / bank.array_rows;
  bank.ideal_sensing = true;  // noise-free decisions: digests comparable

  Rng rng(0x5E47'1CE5);
  const Sequence reference =
      generate_reference(bank.array_cols * (n_segments + 2), {}, rng);
  auto segments = segment_reference(reference, bank.array_cols);
  segments.resize(n_segments);

  ReadSimConfig sim_config;
  sim_config.read_length = bank.array_cols;
  sim_config.rates = ErrorRates::condition_a();
  const ReadSimulator simulator(reference, sim_config);
  const std::size_t n_chunks = (n_reads + chunk - 1) / chunk;

  // The producer: simulating a chunk of reads is the "ingest" cost a
  // service pays per request batch (wire decode, quality filtering, ...).
  // Both pipelines pay it per chunk, with identical chunking and an
  // identical deterministic read stream.
  const auto produce = [&](std::size_t c, Rng& read_rng) {
    std::vector<Sequence> reads;
    const std::size_t first = c * chunk;
    reads.reserve(std::min(chunk, n_reads - first));
    for (std::size_t i = first; i < std::min(first + chunk, n_reads); ++i)
      reads.push_back(
          simulator
              .simulate_at(read_rng.below(n_segments) * bank.array_cols,
                           read_rng)
              .read);
    return reads;
  };

  std::printf(
      "workload: %zu reads in %zu-read chunks x %zu segments, T=%zu, "
      "circuit backend, %zu shards, %zu workers (%zu hardware)\n\n",
      n_reads, chunk, n_segments, threshold, shards, workers,
      ThreadPool::hardware_workers());

  // --- Synchronous pipeline: produce, execute, consume, strictly. --------
  ShardedAccelerator sync_accel(bank, shards);
  sync_accel.load_reference(segments);
  sync_accel.set_error_profile(sim_config.rates);
  std::vector<std::uint64_t> sync_digest(n_reads, 0);
  Rng sync_reads_rng(0xD1'6E57);
  const auto sync_start = Clock::now();
  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::vector<Sequence> reads = produce(c, sync_reads_rng);
    const std::vector<QueryResult> results =
        sync_accel.search_batch(reads, threshold, StrategyMode::Full, workers);
    for (std::size_t i = 0; i < results.size(); ++i)
      sync_digest[c * chunk + i] = digest(results[i]);
  }
  const double sync_seconds = seconds_since(sync_start);

  // --- Streaming pipeline: submit chunk c, produce chunk c+1 meanwhile. --
  ShardedAccelerator stream_accel(bank, shards);
  stream_accel.load_reference(segments);
  stream_accel.set_error_profile(sim_config.rates);
  SearchService service(stream_accel);
  std::vector<std::uint64_t> stream_digest(n_reads, 0);
  std::vector<std::shared_ptr<SearchTicket>> tickets;
  tickets.reserve(n_chunks);
  Rng stream_reads_rng(0xD1'6E57);
  const auto stream_start = Clock::now();
  for (std::size_t c = 0; c < n_chunks; ++c) {
    std::vector<Sequence> reads = produce(c, stream_reads_rng);
    SearchService::Options options;
    options.workers = workers;
    options.keep_results = false;  // consume via the stream, O(in-flight)
    options.on_complete = [&stream_digest, c, chunk](
                              std::size_t i, const QueryResult& result) {
      stream_digest[c * chunk + i] = digest(result);
    };
    tickets.push_back(
        service.submit(std::move(reads), threshold, StrategyMode::Full,
                       options));
  }
  for (const auto& ticket : tickets) ticket->wait();
  const double stream_seconds = seconds_since(stream_start);

  // --- Mixed-traffic arm: bulk re-analysis vs an interactive latecomer. --
  // Identical read streams for both sub-arms: the bulk batch replays the
  // full workload, the interactive batch continues the same RNG stream
  // for one more chunk. Each sub-arm gets a fresh twin accelerator, so
  // epochs line up (bulk = 1, interactive = 2) and digests are directly
  // comparable.
  const std::size_t n_interactive = chunk;
  std::vector<Sequence> bulk_reads;
  std::vector<Sequence> interactive_reads;
  {
    Rng mixed_rng(0xD1'6E57);
    for (std::size_t c = 0; c < n_chunks; ++c)
      for (Sequence& read : produce(c, mixed_rng))
        bulk_reads.push_back(std::move(read));
    for (std::size_t i = 0; i < n_interactive; ++i)
      interactive_reads.push_back(
          simulator
              .simulate_at(mixed_rng.below(n_segments) * bank.array_cols,
                           mixed_rng)
              .read);
  }
  struct MixedArm {
    std::vector<std::uint64_t> digests;  ///< bulk reads, then interactive.
    /// Per-interactive-read completion latency measured from the
    /// interactive ARRIVAL instant (right behind the bulk submission) —
    /// the latency a waiting client actually experiences.
    std::vector<double> interactive_latency;
    std::vector<double> bulk_latency;  ///< Same, from the bulk submission.
    double wall_seconds = 0.0;
    std::size_t window_overruns = 0;
  };
  const auto run_mixed = [&](bool prioritized) {
    MixedArm arm;
    arm.digests.assign(bulk_reads.size() + interactive_reads.size(), 0);
    ShardedAccelerator accel(bank, shards);
    accel.load_reference(segments);
    accel.set_error_profile(sim_config.rates);
    SearchService::Config config;
    config.max_in_flight_reads = 2 * workers;
    SearchService mixed_service(accel, config);
    SearchService::Options options;
    options.workers = workers;
    options.keep_results = false;
    const auto digest_into = [&arm](std::size_t base) {
      return [&arm, base](std::size_t i, const QueryResult& result) {
        arm.digests[base + i] = digest(result);
      };
    };
    const auto start = Clock::now();
    options.service_class =
        prioritized ? ServiceClass::Bulk : ServiceClass::Normal;
    options.on_complete = digest_into(0);
    auto bulk_ticket =
        mixed_service.submit(bulk_reads, threshold, StrategyMode::Full,
                             options);
    // The interactive request arrives NOW, in both sub-arms; only the
    // prioritized one may act on it before the bulk queue drains.
    const double arrival = steady_service_clock().now();
    options.service_class =
        prioritized ? ServiceClass::Interactive : ServiceClass::Normal;
    options.on_complete = digest_into(bulk_reads.size());
    std::shared_ptr<SearchTicket> interactive_ticket;
    if (prioritized) {
      interactive_ticket = mixed_service.submit(
          interactive_reads, threshold, StrategyMode::Full, options);
      bulk_ticket->wait();
    } else {
      bulk_ticket->wait();  // head-of-line blocking: FIFO serves bulk first
      interactive_ticket = mixed_service.submit(
          interactive_reads, threshold, StrategyMode::Full, options);
    }
    interactive_ticket->wait();
    arm.wall_seconds = seconds_since(start);
    for (const ReadTiming& t : interactive_ticket->read_timings())
      arm.interactive_latency.push_back(t.merged - arrival);
    const double bulk_submitted = bulk_ticket->read_timings().empty()
                                      ? 0.0
                                      : bulk_ticket->read_timings()[0].submitted;
    for (const ReadTiming& t : bulk_ticket->read_timings())
      arm.bulk_latency.push_back(t.merged - bulk_submitted);
    for (const auto& ticket : {bulk_ticket, interactive_ticket})
      if (ticket->peak_in_flight() > ticket->max_in_flight())
        ++arm.window_overruns;
    return arm;
  };
  const MixedArm fifo_arm = run_mixed(false);
  const MixedArm priority_arm = run_mixed(true);

  std::size_t mixed_divergent = 0;
  for (std::size_t i = 0; i < fifo_arm.digests.size(); ++i)
    if (fifo_arm.digests[i] != priority_arm.digests[i]) ++mixed_divergent;
  const auto p99 = [](const std::vector<double>& xs) {
    return percentile_of(xs, 0.99);
  };
  const double fifo_p99 = p99(fifo_arm.interactive_latency);
  const double priority_p99 = p99(priority_arm.interactive_latency);
  const double interactive_speedup =
      priority_p99 > 0.0 ? fifo_p99 / priority_p99 : 0.0;

  // --- Correctness: identical digests, bounded in-flight staging. --------
  std::size_t divergent = 0;
  for (std::size_t i = 0; i < n_reads; ++i)
    if (sync_digest[i] != stream_digest[i]) ++divergent;
  std::size_t overrun =
      fifo_arm.window_overruns + priority_arm.window_overruns;
  for (const auto& ticket : tickets)
    if (ticket->peak_in_flight() > ticket->max_in_flight()) ++overrun;

  const double speedup = sync_seconds / stream_seconds;
  Table table({"pipeline", "wall time", "reads/s"});
  table.new_row()
      .add_cell("synchronous: produce then execute")
      .add_cell(format_si(sync_seconds, "s"))
      .add_cell(format_si(static_cast<double>(n_reads) / sync_seconds, ""));
  table.new_row()
      .add_cell("streaming: produce || execute")
      .add_cell(format_si(stream_seconds, "s"))
      .add_cell(format_si(static_cast<double>(n_reads) / stream_seconds, ""));
  const std::size_t n_mixed = bulk_reads.size() + interactive_reads.size();
  table.new_row()
      .add_cell("mixed traffic: FIFO service")
      .add_cell(format_si(fifo_arm.wall_seconds, "s"))
      .add_cell(format_si(static_cast<double>(n_mixed) / fifo_arm.wall_seconds,
                          ""));
  table.new_row()
      .add_cell("mixed traffic: prioritized service")
      .add_cell(format_si(priority_arm.wall_seconds, "s"))
      .add_cell(format_si(
          static_cast<double>(n_mixed) / priority_arm.wall_seconds, ""));
  table.print(std::cout);

  std::printf(
      "\noverlap speedup: %.2fx, digests identical on %zu/%zu reads, "
      "in-flight window respected on %zu/%zu tickets\n",
      speedup, n_reads - divergent, n_reads,
      tickets.size() + 4 - overrun, tickets.size() + 4);
  std::printf(
      "mixed traffic: digests identical on %zu/%zu reads, interactive "
      "completion p99 %.2fms FIFO vs %.2fms prioritized (%.2fx)\n",
      n_mixed - mixed_divergent, n_mixed, fifo_p99 * 1e3, priority_p99 * 1e3,
      interactive_speedup);

  const bool floor_active = enforce_floor && workers >= 2 &&
                            ThreadPool::hardware_workers() >= workers + 1;

  if (!json_path.empty()) {
    DecisionDigest combined;
    for (const std::uint64_t d : stream_digest) combined.add_u64(d);
    BenchReport report;
    report.bench = "bench_service";
    report.kernel_tier = to_string(active_kernel_tier());
    report.hardware_threads = ThreadPool::hardware_workers();
    report.workload = {{"reads", static_cast<double>(n_reads)},
                       {"segments", static_cast<double>(n_segments)},
                       {"chunk", static_cast<double>(chunk)},
                       {"workers", static_cast<double>(workers)},
                       {"shards", static_cast<double>(shards)},
                       {"threshold", static_cast<double>(threshold)}};
    report.timings = {{"synchronous-pipeline", sync_seconds,
                       static_cast<double>(n_reads) / sync_seconds},
                      {"streaming-pipeline", stream_seconds,
                       static_cast<double>(n_reads) / stream_seconds},
                      {"mixed-fifo", fifo_arm.wall_seconds,
                       static_cast<double>(n_mixed) / fifo_arm.wall_seconds},
                      {"mixed-prioritized", priority_arm.wall_seconds,
                       static_cast<double>(n_mixed) /
                           priority_arm.wall_seconds}};
    // Structural gates (baseline-bounded): digest equality between the
    // mixed sub-arms, and the interactive head-of-line p99 win. The rest
    // are observability (ungated, but recorded for trend diffing).
    report.metrics = {
        {"mixed_digest_matches", mixed_divergent == 0 ? 1.0 : 0.0},
        {"interactive_p99_speedup", interactive_speedup},
        {"fifo_interactive_p50_seconds",
         percentile_of(fifo_arm.interactive_latency, 0.50)},
        {"fifo_interactive_p95_seconds",
         percentile_of(fifo_arm.interactive_latency, 0.95)},
        {"fifo_interactive_p99_seconds", fifo_p99},
        {"priority_interactive_p50_seconds",
         percentile_of(priority_arm.interactive_latency, 0.50)},
        {"priority_interactive_p95_seconds",
         percentile_of(priority_arm.interactive_latency, 0.95)},
        {"priority_interactive_p99_seconds", priority_p99},
        {"priority_bulk_p99_seconds", p99(priority_arm.bulk_latency)}};
    report.speedup = speedup;
    report.decision_digest = combined.value();
    report.floor_enforced = floor_active;
    write_bench_json(json_path, report);
  }

  if (divergent != 0) {
    std::fprintf(stderr, "FAIL: %zu reads diverged between pipelines\n",
                 divergent);
    return 1;
  }
  if (mixed_divergent != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu reads diverged between the FIFO and prioritized "
                 "mixed-traffic arms — scheduling changed decisions\n",
                 mixed_divergent);
    return 1;
  }
  if (overrun != 0) {
    std::fprintf(stderr, "FAIL: %zu tickets overran their admission window\n",
                 overrun);
    return 1;
  }
  // The overlap claim needs hardware for both halves: a producer core plus
  // spawned workers (a workers == 1 pool is threadless, so the service
  // degrades to synchronous inline execution by design). CI smoke runs
  // disable the floor entirely (see the file comment).
  if (floor_active) {
    if (speedup < 1.15) {
      std::fprintf(stderr,
                   "FAIL: streaming speedup %.2fx below the 1.15x floor\n",
                   speedup);
      return 1;
    }
  } else {
    std::printf(
        "(overlap floor not enforced: floor=%d, %zu workers requested, %zu "
        "hardware threads)\n",
        enforce_floor ? 1 : 0, workers, ThreadPool::hardware_workers());
  }
  return 0;
}
