// Sharded-router benchmark (plain chrono, no external deps): the
// latency-bound service path — requests arriving one read at a time —
// on the cell-accurate circuit backend. A monolithic bank scans all its
// arrays for every read; the sharded router splits the same database
// across N banks and fans each read across them on the worker pool, so
// the per-read critical path shrinks by ~N on hardware with >= N cores.
// Decisions are verified bit-identical between the two layouts (shard
// invariance of the noise-free decision path), so the driver doubles as
// a router correctness check — CI runs it under ASan/UBSan with a tiny
// database.
//
//   ./bench_sharded [segments] [reads] [shards] [workers] [--json <path>]
//
// A third arm re-runs the sharded layout with sketch-based shard pruning
// enabled (config.pruning) and asserts its decisions are bit-identical to
// the full fan-out; the JSON report gains prune_rate /
// pruned_energy_savings / pruned_speedup metrics.
//
// Exits non-zero if decisions diverge (between layouts, or between the
// pruned and full fan-out arms), or — when the machine actually has
// >= `shards` hardware threads and >= 4 workers were requested — if the
// sharded layout fails to reach 2x the monolithic single-read throughput
// (the pruned arm gets the same 2x floor at >= 8 shards).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "align/kernels.h"
#include "asmcap/sharded.h"
#include "genome/readsim.h"
#include "genome/reference.h"
#include "util/bench_json.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace asmcap;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const std::string json_path = take_bench_json_path(args);
  const std::size_t n_segments =
      args.size() > 0 ? std::strtoull(args[0].c_str(), nullptr, 10) : 4096;
  const std::size_t n_reads =
      args.size() > 1 ? std::strtoull(args[1].c_str(), nullptr, 10) : 64;
  const std::size_t shards =
      args.size() > 2 ? std::strtoull(args[2].c_str(), nullptr, 10) : 4;
  const std::size_t workers =
      args.size() > 3 ? std::strtoull(args[3].c_str(), nullptr, 10) : shards;
  const std::size_t threshold = 4;
  if (n_segments == 0 || n_reads == 0 || shards == 0 || workers == 0) {
    std::fprintf(stderr,
                 "usage: bench_sharded [segments>0] [reads>0] [shards>0] "
                 "[workers>0]\n");
    return 2;
  }

  // One bank of the sharded system holds 1/N of the database; the
  // monolithic reference bank holds all of it.
  AsmcapConfig bank;
  bank.array_rows = 256;
  bank.array_cols = 256;
  const std::size_t per_shard = (n_segments + shards - 1) / shards;
  bank.array_count = (per_shard + bank.array_rows - 1) / bank.array_rows;
  bank.ideal_sensing = true;  // noise-free: decisions comparable bit-for-bit
  AsmcapConfig mono_config = bank;
  mono_config.array_count = (n_segments + bank.array_rows - 1) /
                            bank.array_rows;

  Rng rng(0x5AA2'DED1);
  const Sequence reference =
      generate_reference(256 * (n_segments + 2), {}, rng);
  auto segments = segment_reference(reference, 256);
  segments.resize(n_segments);

  ReadSimConfig sim_config;
  sim_config.read_length = 256;
  sim_config.rates = ErrorRates::condition_a();
  const ReadSimulator simulator(reference, sim_config);
  std::vector<Sequence> reads;
  reads.reserve(n_reads);
  for (std::size_t i = 0; i < n_reads; ++i)
    reads.push_back(
        simulator.simulate_at(rng.below(n_segments) * 256, rng).read);

  std::printf(
      "workload: %zu reads (one at a time) x %zu segments, T=%zu, circuit "
      "backend, %zu shards x %zu arrays, %zu workers (%zu hardware)\n\n",
      n_reads, n_segments, threshold, shards, bank.array_count, workers,
      ThreadPool::hardware_workers());

  // --- Monolithic bank: every read scans all arrays serially. ------------
  AsmcapAccelerator mono(mono_config);
  mono.load_reference(segments);
  mono.set_error_profile(sim_config.rates);
  const auto mono_start = Clock::now();
  std::vector<QueryResult> mono_results;
  mono_results.reserve(n_reads);
  for (const Sequence& read : reads)
    mono_results.push_back(mono.search(read, threshold, StrategyMode::Full));
  const double mono_seconds = seconds_since(mono_start);

  // --- Sharded router: each read fans across the banks. -------------------
  ShardedAccelerator sharded(bank, shards);
  sharded.load_reference(segments);
  sharded.set_error_profile(sim_config.rates);
  const auto sharded_start = Clock::now();
  std::vector<QueryResult> sharded_results;
  sharded_results.reserve(n_reads);
  for (const Sequence& read : reads)
    sharded_results.push_back(
        sharded.search(read, threshold, StrategyMode::Full, workers));
  const double sharded_seconds = seconds_since(sharded_start);

  // --- Pruned router: sketch probe skips banks that cannot match. ---------
  // Same database, same read stream; decisions must be bit-identical to
  // the full fan-out (the sketch is false-negative-free), so this arm
  // doubles as the pruning correctness gate.
  AsmcapConfig pruned_bank = bank;
  pruned_bank.pruning.enabled = true;
  ShardedAccelerator pruned(pruned_bank, shards);
  pruned.load_reference(segments);
  pruned.set_error_profile(sim_config.rates);
  const auto pruned_start = Clock::now();
  std::vector<QueryResult> pruned_results;
  pruned_results.reserve(n_reads);
  for (const Sequence& read : reads)
    pruned_results.push_back(
        pruned.search(read, threshold, StrategyMode::Full, workers));
  const double pruned_seconds = seconds_since(pruned_start);

  // --- Correctness: shard-invariant decisions, re-based indices. ----------
  std::size_t divergent = 0;
  for (std::size_t i = 0; i < n_reads; ++i)
    if (sharded_results[i].decisions != mono_results[i].decisions ||
        sharded_results[i].matched_segments != mono_results[i].matched_segments)
      ++divergent;
  std::size_t prune_divergent = 0;
  for (std::size_t i = 0; i < n_reads; ++i)
    if (pruned_results[i].decisions != sharded_results[i].decisions ||
        pruned_results[i].matched_segments !=
            sharded_results[i].matched_segments)
      ++prune_divergent;

  const ExecutionTotals& pruned_totals = pruned.totals();
  const std::size_t probes =
      pruned_totals.banks_probed + pruned_totals.banks_pruned;
  const double prune_rate =
      probes == 0 ? 0.0
                  : static_cast<double>(pruned_totals.banks_pruned) /
                        static_cast<double>(probes);
  const double sharded_energy = sharded.totals().energy_joules;
  const double pruned_energy_savings =
      sharded_energy <= 0.0
          ? 0.0
          : (sharded_energy - pruned_totals.energy_joules) / sharded_energy;

  const double speedup = mono_seconds / sharded_seconds;
  Table table({"layout", "wall time", "reads/s", "per read"});
  table.new_row()
      .add_cell("monolithic bank, serial scan")
      .add_cell(format_si(mono_seconds, "s"))
      .add_cell(format_si(static_cast<double>(n_reads) / mono_seconds, ""))
      .add_cell(format_si(mono_seconds / static_cast<double>(n_reads), "s"));
  table.new_row()
      .add_cell("sharded router, fanned banks")
      .add_cell(format_si(sharded_seconds, "s"))
      .add_cell(format_si(static_cast<double>(n_reads) / sharded_seconds, ""))
      .add_cell(
          format_si(sharded_seconds / static_cast<double>(n_reads), "s"));
  table.new_row()
      .add_cell("sharded router, sketch-pruned")
      .add_cell(format_si(pruned_seconds, "s"))
      .add_cell(format_si(static_cast<double>(n_reads) / pruned_seconds, ""))
      .add_cell(
          format_si(pruned_seconds / static_cast<double>(n_reads), "s"));
  table.print(std::cout);

  const double pruned_speedup = mono_seconds / pruned_seconds;
  std::printf("\nspeedup: %.1fx, decisions identical on %zu/%zu reads\n",
              speedup, n_reads - divergent, n_reads);
  std::printf(
      "pruned:  %.1fx, decisions identical on %zu/%zu reads, prune rate "
      "%.0f%% (%zu/%zu bank probes skipped), energy saved %.0f%%\n",
      pruned_speedup, n_reads - prune_divergent, n_reads, 100.0 * prune_rate,
      pruned_totals.banks_pruned, probes, 100.0 * pruned_energy_savings);

  // The parallel-speedup claim needs both the fan-out width and the cores
  // to exist: enforce it only for >= 4 shards, >= 4 workers, and hardware
  // that can run the fan-out concurrently — fewer shards cannot reach 2x
  // even ideally (CI smoke runs use fewer workers and only exercise the
  // router for correctness under the sanitizers).
  const bool enforce_floor = shards >= 4 && workers >= 4 &&
                             ThreadPool::hardware_workers() >= shards;

  // The pruning-speedup claim is only meaningful once the database is wide
  // enough for most banks to be skippable: enforce the pruned 2x floor at
  // >= 8 shards (with the same worker/core carve-out as above).
  const bool enforce_pruned_floor = shards >= 8 && workers >= 4 &&
                                    ThreadPool::hardware_workers() >= shards;

  if (!json_path.empty()) {
    // Digests of the full fan-out and the pruned run are computed (and
    // gated) separately: baseline.json pins one digest value, and the
    // pruned arm must reproduce it bit-for-bit.
    DecisionDigest digest;
    for (const QueryResult& result : sharded_results)
      for (const bool decision : result.decisions) digest.add(decision);
    DecisionDigest pruned_digest;
    for (const QueryResult& result : pruned_results)
      for (const bool decision : result.decisions) pruned_digest.add(decision);
    BenchReport report;
    report.bench = "bench_sharded";
    report.kernel_tier = to_string(active_kernel_tier());
    report.hardware_threads = ThreadPool::hardware_workers();
    report.workload = {{"segments", static_cast<double>(n_segments)},
                       {"reads", static_cast<double>(n_reads)},
                       {"shards", static_cast<double>(shards)},
                       {"workers", static_cast<double>(workers)},
                       {"threshold", static_cast<double>(threshold)}};
    report.timings = {{"monolithic-serial-scan", mono_seconds,
                       static_cast<double>(n_reads) / mono_seconds},
                      {"sharded-router", sharded_seconds,
                       static_cast<double>(n_reads) / sharded_seconds},
                      {"sharded-router-pruned", pruned_seconds,
                       static_cast<double>(n_reads) / pruned_seconds}};
    report.metrics = {
        {"prune_rate", prune_rate},
        {"pruned_energy_savings", pruned_energy_savings},
        {"pruned_speedup", pruned_speedup},
        {"pruned_digest_matches",
         pruned_digest.value() == digest.value() ? 1.0 : 0.0}};
    report.speedup = speedup;
    report.decision_digest = digest.value();
    report.floor_enforced = enforce_floor;
    write_bench_json(json_path, report);
  }

  if (divergent != 0) {
    std::fprintf(stderr, "FAIL: %zu reads diverged between layouts\n",
                 divergent);
    return 1;
  }
  if (prune_divergent != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu reads diverged between pruned and full "
                 "fan-out\n",
                 prune_divergent);
    return 1;
  }
  if (enforce_floor) {
    if (speedup < 2.0) {
      std::fprintf(stderr,
                   "FAIL: sharded speedup %.2fx below the 2x floor\n",
                   speedup);
      return 1;
    }
  } else {
    std::printf(
        "(speedup floor not enforced: %zu workers requested, %zu hardware "
        "threads)\n",
        workers, ThreadPool::hardware_workers());
  }
  if (enforce_pruned_floor && pruned_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: pruned speedup %.2fx below the 2x floor\n",
                 pruned_speedup);
    return 1;
  }
  return 0;
}
