// Reproduces paper §V-D: distinguishable matchline states under the 3-sigma
// constraint — EDAM supports 44 at 2.5 % current variation, ASMCap 566 at
// 1.4 % capacitor variation. The analytic limits are cross-checked with
// Monte-Carlo level statistics of manufactured rows.

#include <benchmark/benchmark.h>

#include <iostream>

#include "circuit/montecarlo.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "util/table.h"

namespace {

void report_states() {
  const asmcap::ProcessParams process;
  asmcap::print_report(std::cout,
                       "SecV-D: distinguishable states (paper: 44 vs 566)",
                       asmcap::states_table(asmcap::run_states(process)));

  // Monte-Carlo cross-check around the analytic boundaries.
  asmcap::Rng rng(42);
  {
    std::vector<std::size_t> counts;
    for (std::size_t n = 40; n <= 50; ++n) counts.push_back(n);
    asmcap::CurrentDomainParams pure = process.current;
    pure.sa_noise_sigma = 0.0;  // isolate the current-mismatch mechanism
    pure.sh_noise_sigma = 0.0;
    pure.timing_jitter_rel = 0.0;
    const auto levels = asmcap::mc_current_levels(pure, 256, counts, 3000, rng);
    asmcap::Table table({"n_mis", "mean V_ML", "sigma", "3sig-separated from next"});
    for (std::size_t i = 0; i < levels.size(); ++i) {
      const bool separated =
          i + 1 < levels.size() &&
          std::abs(levels[i + 1].mean_vml - levels[i].mean_vml) >=
              3.0 * (levels[i].sigma_vml + levels[i + 1].sigma_vml);
      table.new_row()
          .add_cell(levels[i].n_mis)
          .add_cell(asmcap::format_si(levels[i].mean_vml, "V"))
          .add_cell(asmcap::format_si(levels[i].sigma_vml, "V"))
          .add_cell(i + 1 < levels.size() ? (separated ? "yes" : "NO") : "-");
    }
    asmcap::print_report(
        std::cout, "EDAM current-domain MC levels around the 44-state limit",
        table);
  }
  {
    // Charge domain at the paper's row length: all levels remain separated.
    std::vector<std::size_t> counts{1, 2, 3, 126, 127, 128, 129, 253, 254, 255};
    const auto levels =
        asmcap::mc_charge_levels(process.charge, 256, counts, 3000, rng);
    const std::size_t separated = asmcap::count_separated_pairs(levels);
    std::cout << "Charge-domain 256-cell rows: " << separated << "/"
              << levels.size() - 1
              << " adjacent sampled level pairs 3-sigma separated (256 < 566 "
                 "=> all must separate)\n\n";
  }
}

void BM_McChargeLevels(benchmark::State& state) {
  asmcap::Rng rng(7);
  const asmcap::ChargeDomainParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        asmcap::mc_charge_levels(params, 128, {64}, 100, rng));
  }
}
BENCHMARK(BM_McChargeLevels);

}  // namespace

int main(int argc, char** argv) {
  report_states();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
