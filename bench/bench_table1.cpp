// Reproduces paper Table I: circuit-level comparison between ASMCap and
// EDAM (cell area, search time, average power per cell) from the 65 nm
// device models, plus google-benchmark timings of the two readout paths.

#include <benchmark/benchmark.h>

#include <iostream>

#include "cam/charge_readout.h"
#include "cam/current_readout.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "util/bitvec.h"
#include "util/rng.h"

namespace {

void report_table1() {
  const asmcap::ProcessParams process;
  const auto rows = asmcap::run_table1(process);
  asmcap::print_report(std::cout,
                       "Table I: circuit-level comparison (paper: area 1.4x, "
                       "search time 2.6x, power 8.5x)",
                       asmcap::table1_table(rows));
}

// Functional-simulator throughput of the two sensing models (not silicon
// time; silicon time is the analytic 0.9 ns / 2.4 ns above).
void BM_ChargeReadoutSense(benchmark::State& state) {
  asmcap::Rng rng(1);
  asmcap::ChargeArrayReadout readout(256, 256, {}, rng);
  asmcap::BitVec mask(256);
  for (std::size_t i = 0; i < 100; ++i) mask.set(i * 2);
  std::vector<asmcap::BitVec> masks(256, mask);
  for (auto _ : state) {
    benchmark::DoNotOptimize(readout.sense(masks, 8, rng));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ChargeReadoutSense);

void BM_CurrentReadoutSense(benchmark::State& state) {
  asmcap::Rng rng(2);
  asmcap::CurrentArrayReadout readout(256, 256, {}, rng);
  asmcap::BitVec mask(256);
  for (std::size_t i = 0; i < 100; ++i) mask.set(i * 2);
  std::vector<asmcap::BitVec> masks(256, mask);
  for (auto _ : state) {
    benchmark::DoNotOptimize(readout.sense(masks, 8, rng));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_CurrentReadoutSense);

}  // namespace

int main(int argc, char** argv) {
  report_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
