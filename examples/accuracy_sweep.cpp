// Accuracy sweep: a configurable, smaller-scale version of the Fig. 7
// experiment for interactive exploration. Lets you vary the error rates,
// dataset size, and thresholds from the command line.
//
//   ./accuracy_sweep [es] [ei] [ed] [rows] [reads]
//   e.g. ./accuracy_sweep 0.01 0.0005 0.0005 128 192

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "eval/experiment.h"
#include "eval/report.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace asmcap;
  ErrorRates rates = ErrorRates::condition_a();
  if (argc > 3) {
    rates.substitution = std::strtod(argv[1], nullptr);
    rates.insertion = std::strtod(argv[2], nullptr);
    rates.deletion = std::strtod(argv[3], nullptr);
  }
  const std::size_t rows =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 128;
  const std::size_t reads =
      argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 192;

  DatasetConfig config;
  config.rows = rows;
  config.reads = reads;
  config.rates = rates;
  char name[128];
  std::snprintf(name, sizeof name, "es=%.3g%% ei=%.3g%% ed=%.3g%%",
                100 * rates.substitution, 100 * rates.insertion,
                100 * rates.deletion);
  config.name = name;

  Rng rng(0xACC5);
  const Dataset dataset = build_dataset(config, rng);

  Fig7Config fig7;
  fig7.asmcap.array_rows = rows;
  // Signals precompute and thresholds replay across all available cores;
  // every threshold forks its own noise stream, so the numbers are
  // worker-count independent.
  fig7.workers = ThreadPool::hardware_workers();
  const Fig7Runner runner(fig7);

  std::vector<std::size_t> thresholds;
  for (std::size_t t = 1; t <= 12; ++t) thresholds.push_back(t);
  const Fig7Series series = runner.run(dataset, thresholds, rng);

  print_report(std::cout, "F1 sweep -- " + dataset.name, fig7_table(series));
  print_report(std::cout, "Normalised (vs Kraken2-like)",
               fig7_normalized_table(series));

  std::printf("HDAC p at T=1: %.3f   TASR T_l: %zu (m=%zu)\n",
              hdac_probability(fig7.asmcap.hdac, rates, 1),
              tasr_lower_bound(fig7.asmcap.tasr, rates, 256),
              static_cast<std::size_t>(256));
  return 0;
}
