// Ingestion pipeline walkthrough: the library face of the asmcap_search
// CLI. A reference "file" streams through SeqStreamReader into the
// sharded database via ingest_reference (tiling + ReferenceIndex), and
// reads stream chunk-by-chunk through SearchService::submit with results
// reported against the original record names. Everything here is
// in-memory (istringstream) so the example is hermetic, but the path
// constructor accepts real FASTA/FASTQ[.gz] files unchanged. See
// docs/architecture.md ("Ingestion pipeline") and docs/cli.md.

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <vector>

#include "asmcap/ingest.h"
#include "asmcap/service.h"
#include "asmcap/sharded.h"
#include "genome/fasta.h"
#include "genome/readsim.h"
#include "genome/reference.h"
#include "genome/stream_reader.h"

using namespace asmcap;

int main() {
  constexpr std::size_t kWidth = 128;
  constexpr std::size_t kTilesPerRecord = 8;

  // Synthesize a two-record reference FASTA "file". The second record has
  // a trailing partial tile, so ingestion demonstrates the padding policy.
  Rng rng(0x16E57);
  std::vector<FastaRecord> records(2);
  for (std::size_t r = 0; r < records.size(); ++r) {
    Rng stream = rng.fork(r + 1);
    records[r].id = "chr" + std::to_string(r + 1);
    records[r].seq = generate_reference(
        kWidth * kTilesPerRecord + (r == 1 ? kWidth / 2 : 0), {}, stream);
  }
  std::ostringstream fasta_text;
  write_fasta(fasta_text, records, 70);

  // Stream it into a 2-shard database. ingest_reference tiles each record
  // into kWidth-base segments in file order (determinism.md rule 10) and
  // fills the id -> "record:offset" index used to label hits below.
  AsmcapConfig config;
  config.array_rows = 64;
  config.array_cols = kWidth;
  config.array_count = 16;
  config.ideal_sensing = true;
  ShardedAccelerator db(config, 2);
  db.set_backend(BackendKind::Functional);

  std::istringstream fasta_in(fasta_text.str());
  SeqStreamReader reference(fasta_in, "reference.fa");
  ReferenceIndex index;
  const IngestStats ingest = ingest_reference(db, reference, {}, &index);
  std::printf("ingested %zu records / %zu bases -> %zu segments "
              "(%zu padded), ids [%llu, %llu)\n",
              ingest.records, ingest.bases, ingest.segments,
              ingest.padded_segments,
              static_cast<unsigned long long>(index.first_id()),
              static_cast<unsigned long long>(index.first_id() + index.size()));

  // Simulate a FASTQ read set from tile-aligned windows (what
  // asmcap_testgen writes to disk), then stream it back in chunks and
  // pump each chunk through the service — the CLI's read loop in
  // miniature.
  ReadSimConfig sim_config;
  sim_config.read_length = kWidth;
  sim_config.rates = ErrorRates::condition_a();
  std::vector<FastqRecord> reads(12);
  for (std::size_t i = 0; i < reads.size(); ++i) {
    const std::size_t r = i % records.size();
    ReadSimulator simulator(records[r].seq, sim_config);
    Rng stream = rng.fork(0xEAD + i);
    const std::size_t tile = stream.below(kTilesPerRecord - 1);
    reads[i].id = "read" + std::to_string(i);
    reads[i].seq = simulator.simulate_at(tile * kWidth, stream).read;
    reads[i].quality.assign(reads[i].seq.size(), 'I');
  }
  std::ostringstream fastq_text;
  write_fastq(fastq_text, reads);

  SearchService service(db);
  std::istringstream fastq_in(fastq_text.str());
  SeqStreamReader reader(fastq_in, "reads.fq");
  std::size_t chunk_number = 0;
  for (std::vector<SeqRecord> chunk = reader.read_chunk(5); !chunk.empty();
       chunk = reader.read_chunk(5)) {
    std::vector<Sequence> queries;
    queries.reserve(chunk.size());
    for (const SeqRecord& record : chunk) queries.push_back(record.seq);

    SearchService::Options options;
    options.workers = 2;
    options.in_order = true;
    options.on_complete = [&](std::size_t i, const QueryResult& result) {
      std::printf("  %-6s -> %zu match(es)", chunk[i].id.c_str(),
                  result.matched_segments.size());
      for (std::uint64_t id : result.matched_segments)
        std::printf(" %s", index.label(id).c_str());
      std::printf("\n");
    };
    std::printf("chunk %zu (%zu reads):\n", chunk_number++, chunk.size());
    service.submit(std::move(queries), 8, StrategyMode::Full, options)->wait();
  }
  std::printf("done: %zu reads streamed (%s), %zu ambiguous bases\n",
              reader.records(), to_string(reader.format()),
              reader.ambiguous_bases());
  return 0;
}
