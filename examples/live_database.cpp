// Live database walkthrough: growing, shrinking, and compacting a sharded
// reference database while it serves searches. New segments stage in a
// small hot bank (config.live), deletes tombstone rows in place, and
// compact() folds the hot bank into the cold banks at an epoch boundary —
// all without perturbing a single decision: searching any epoch is
// bit-identical to a fresh accelerator loaded with exactly that epoch's
// live rows (determinism.md, rule 8). An in-flight SearchService ticket
// stays pinned to the epoch it launched against, so mutations racing a
// search are invisible to it. See docs/architecture.md ("Live database").

#include <cstdio>
#include <vector>

#include "asmcap/db_error.h"
#include "asmcap/service.h"
#include "asmcap/sharded.h"
#include "genome/readsim.h"
#include "genome/reference.h"

using namespace asmcap;

int main() {
  // Two cold banks of 2 x 128-row arrays plus a 64 x 4 hot staging bank.
  AsmcapConfig bank;
  bank.array_rows = 128;
  bank.array_cols = 128;
  bank.array_count = 2;
  bank.ideal_sensing = true;

  Rng rng(0xD8'11FE'7);
  const Sequence reference = generate_reference(128 * 420, {}, rng);
  auto segments = segment_reference(reference, 128);
  segments.resize(416);

  // Day 0: ship with the first 320 segments.
  std::vector<Sequence> initial(segments.begin(), segments.begin() + 320);
  ShardedAccelerator db(bank, 2);
  db.load_reference(initial);
  std::printf("epoch %llu: %zu live / %zu id space\n",
              static_cast<unsigned long long>(db.epoch()),
              db.live_segment_count(), db.loaded_segments());

  ReadSimConfig sim_config;
  sim_config.read_length = 128;
  sim_config.rates = ErrorRates::condition_a();
  const ReadSimulator simulator(reference, sim_config);
  auto make_reads = [&](std::size_t n) {
    std::vector<Sequence> reads;
    reads.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      reads.push_back(simulator.simulate_at(rng.below(416) * 128, rng).read);
    return reads;
  };

  // A ticket launched now is pinned to the current epoch: the mutations
  // below are invisible to it, even if they publish before it completes.
  SearchService service(db);
  SearchService::Options options;
  options.workers = 2;
  auto ticket = service.submit(make_reads(24), 4, StrategyMode::Full, options);

  // Day 1: a new assembly lands — append it (ids are assigned ascending
  // and never reused; the rows stage in the hot bank, no cold rewrite).
  std::vector<Sequence> incoming(segments.begin() + 320, segments.end());
  const auto new_ids = db.append_segments(incoming);
  std::printf("epoch %llu: appended %zu segments (ids %llu..%llu)\n",
              static_cast<unsigned long long>(db.epoch()), new_ids.size(),
              static_cast<unsigned long long>(new_ids.front()),
              static_cast<unsigned long long>(new_ids.back()));

  // Day 2: a batch of contaminated segments is retracted. Tombstoned rows
  // are masked out of every counting and energy path; their ids answer
  // SegmentState::Dead and a second delete is a typed error.
  const std::vector<std::uint64_t> retracted = {17, 42, 203, 321};
  db.remove_segments(retracted);
  std::printf("epoch %llu: retracted %zu segments, %zu live\n",
              static_cast<unsigned long long>(db.epoch()), retracted.size(),
              db.live_segment_count());
  try {
    db.remove_segments({17});
  } catch (const DbError& error) {
    std::printf("  double delete rejected: %s\n", error.what());
  }

  // Fold the hot bank into the cold banks' free rows. Decisions are
  // unchanged: per-row silicon and noise streams follow the global id,
  // not the physical slot.
  const std::uint64_t folded = db.compact();
  std::printf("epoch %llu: compacted (hot bank folded)\n",
              static_cast<unsigned long long>(folded));

  // The pinned ticket saw none of this.
  std::size_t pinned_matches = 0;
  for (const QueryResult& result : ticket->drain())
    pinned_matches += result.matched_segments.size();
  std::printf("pinned ticket: %zu matches against the launch epoch\n",
              pinned_matches);

  // Searches after the mutations see the final epoch — bit-identical to a
  // monolithic accelerator freshly loaded with exactly its live (id, row)
  // pairs. Same seed means the same silicon root and the same sequential
  // query streams (mutations and batches never advance them).
  AsmcapConfig mono_config = bank;
  mono_config.array_count = 4;  // one chip holding the whole database
  AsmcapAccelerator replay(mono_config);
  std::vector<Sequence> rows;
  std::vector<std::uint64_t> ids;
  for (const auto& [id, row] : db.live_segments()) {
    ids.push_back(id);
    rows.push_back(row);
  }
  replay.append_segments(rows, ids);

  bool identical = true;
  for (const Sequence& read : make_reads(24)) {
    const QueryResult a = db.search(read, 4, StrategyMode::Full);
    const QueryResult b = replay.search(read, 4, StrategyMode::Full);
    identical = identical && a.matched_segments == b.matched_segments &&
                a.decisions == b.decisions;
  }
  std::printf("mutated db == fresh load of live rows: %s\n",
              identical ? "yes" : "NO (bug)");
  return identical ? 0 : 1;
}
