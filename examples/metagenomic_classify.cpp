// Metagenomic classification: several synthetic "organisms" are stored in
// the accelerator; reads from a mixed sample are assigned to the organism
// owning the best-matching rows. Compares ASMCap's approximate in-memory
// matching against the Kraken2-like exact k-mer classifier — the comparison
// behind the normalised panels of Fig. 7.
//
// The whole sample is classified in one batched accelerator call on the
// fast FunctionalBackend, fanned across a worker pool.
//
//   ./metagenomic_classify [reads_per_organism] [workers]

#include <cstdio>
#include <iostream>
#include <vector>

#include "asmcap/accelerator.h"
#include "baseline/kraken_like.h"
#include "genome/readsim.h"
#include "genome/reference.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace asmcap;
  const std::size_t reads_per_organism =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 150;
  const std::size_t workers =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;
  Rng rng(0x3E7A);

  // Four organisms with distinct composition.
  constexpr std::size_t kOrganisms = 4;
  constexpr std::size_t kRowsPerOrganism = 48;
  const double gc[kOrganisms] = {0.35, 0.42, 0.50, 0.58};
  std::vector<Sequence> genomes;
  std::vector<Sequence> rows;
  std::vector<std::size_t> row_owner;
  for (std::size_t o = 0; o < kOrganisms; ++o) {
    ReferenceModel model;
    model.gc_content = gc[o];
    genomes.push_back(
        generate_reference(256 * (kRowsPerOrganism + 2), model, rng));
    auto segments = segment_reference(genomes.back(), 256);
    segments.resize(kRowsPerOrganism);
    for (auto& segment : segments) {
      rows.push_back(std::move(segment));
      row_owner.push_back(o);
    }
  }
  std::printf("%zu organisms, %zu stored rows\n", kOrganisms, rows.size());

  AsmcapConfig config;
  config.array_rows = 256;
  config.array_count = (rows.size() + 255) / 256;
  AsmcapAccelerator accel(config);
  accel.load_reference(rows);
  const ErrorRates rates = ErrorRates::condition_a();
  accel.set_error_profile(rates);

  KrakenLikeClassifier kraken;
  kraken.index_rows(rows);

  // Simulate the whole mixed sample up front, then classify it in one
  // batched call on the fast FunctionalBackend.
  ReadSimConfig sim_config;
  sim_config.rates = rates;
  std::vector<Sequence> sample;
  std::vector<std::size_t> sample_owner;
  for (std::size_t o = 0; o < kOrganisms; ++o) {
    const ReadSimulator sim(genomes[o], sim_config);
    for (std::size_t i = 0; i < reads_per_organism; ++i) {
      // Reads start at stored-row boundaries (the paper's dataset layout);
      // see virus_screening.cpp for handling arbitrary offsets with
      // fine-strided storage plus TASR.
      const std::size_t source_row = rng.below(kRowsPerOrganism);
      sample.push_back(sim.simulate_at(source_row * 256, rng).read);
      sample_owner.push_back(o);
    }
  }

  const std::size_t threshold = 8;
  accel.set_backend(BackendKind::Functional);
  const std::vector<QueryResult> results =
      accel.search_batch(sample, threshold, StrategyMode::Full, workers);

  std::size_t asmcap_correct = 0;
  std::size_t kraken_correct = 0;
  const std::size_t total = sample.size();
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const std::size_t o = sample_owner[i];

    // ASMCap call: organism owning the most matched rows.
    std::size_t votes[kOrganisms] = {};
    for (const std::size_t segment : results[i].matched_segments)
      ++votes[row_owner[segment]];
    std::size_t best = 0;
    for (std::size_t k = 1; k < kOrganisms; ++k)
      if (votes[k] > votes[best]) best = k;
    if (!results[i].matched_segments.empty() && best == o) ++asmcap_correct;

    // Kraken-like call: organism with the highest k-mer hit fraction.
    const auto fractions = kraken.hit_fractions(sample[i]);
    double organism_score[kOrganisms] = {};
    for (std::size_t r = 0; r < rows.size(); ++r)
      organism_score[row_owner[r]] =
          std::max(organism_score[row_owner[r]], fractions[r]);
    std::size_t kraken_best = 0;
    for (std::size_t k = 1; k < kOrganisms; ++k)
      if (organism_score[k] > organism_score[kraken_best]) kraken_best = k;
    if (organism_score[kraken_best] >= kraken.config().confidence &&
        kraken_best == o)
      ++kraken_correct;
  }

  Table table({"classifier", "correct", "total", "accuracy(%)"});
  table.new_row()
      .add_cell("ASMCap w/ H./T.")
      .add_cell(asmcap_correct)
      .add_cell(total)
      .add_cell(100.0 * static_cast<double>(asmcap_correct) /
                    static_cast<double>(total),
                4);
  table.new_row()
      .add_cell("Kraken2-like exact k-mers")
      .add_cell(kraken_correct)
      .add_cell(total)
      .add_cell(100.0 * static_cast<double>(kraken_correct) /
                    static_cast<double>(total),
                4);
  table.print(std::cout);
  return 0;
}
