// Quickstart: build a synthetic reference, load it into an ASMCap
// accelerator, and search a noisy read with the full HDAC + TASR pipeline.
//
//   ./quickstart [seed]
//
// Walks through the whole public API: reference generation, segmentation,
// read simulation, accelerator configuration, search, and the returned
// latency/energy accounting.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "asmcap/accelerator.h"
#include "genome/readsim.h"
#include "genome/reference.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace asmcap;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1234;
  Rng rng(seed);

  // 1. A synthetic reference genome (drop in read_fasta_file() for real data).
  const Sequence reference = generate_reference(256 * 130, {}, rng);
  auto segments = segment_reference(reference, 256);
  segments.resize(128);
  std::printf("Reference: %zu bases -> %zu stored segments of 256 bases\n",
              reference.size(), segments.size());

  // 2. Configure and load the accelerator (one 256x256 array suffices here).
  AsmcapConfig config;
  config.array_count = 1;
  config.array_rows = 128;
  AsmcapAccelerator accel(config);
  accel.load_reference(segments);
  accel.set_error_profile(ErrorRates::condition_a());

  // 3. Simulate a sequencer read from a known location with Condition-A
  //    errors (1 % substitutions, 0.05 % insertions/deletions).
  ReadSimConfig sim_config;
  sim_config.rates = ErrorRates::condition_a();
  const ReadSimulator simulator(reference, sim_config);
  const std::size_t true_segment = 42;
  const SimulatedRead read = simulator.simulate_at(true_segment * 256, rng);
  std::printf(
      "Read from segment %zu with %zu substitutions, %zu insertions, %zu "
      "deletions\n",
      true_segment, read.substitutions, read.insertions, read.deletions);

  // 4. Search at a few thresholds with and without the correction
  //    strategies.
  Table table({"T", "mode", "matches", "hit true segment", "latency",
               "energy"});
  for (const std::size_t threshold : {2, 4, 8}) {
    for (const StrategyMode mode :
         {StrategyMode::Baseline, StrategyMode::Full}) {
      const QueryResult result = accel.search(read.read, threshold, mode);
      bool hit = false;
      for (const std::size_t segment : result.matched_segments)
        hit = hit || segment == true_segment;
      table.new_row()
          .add_cell(threshold)
          .add_cell(to_string(mode))
          .add_cell(result.matched_segments.size())
          .add_cell(hit ? "yes" : "no")
          .add_cell(format_si(result.latency_seconds, "s"))
          .add_cell(format_si(result.energy_joules, "J"));
    }
  }
  table.print(std::cout);

  // 5. The same searches through the execution engine's fast path: the
  //    FunctionalBackend computes identical decisions (ideal sensing) with
  //    word-parallel kernels, and search_batch fans a whole flow cell of
  //    reads across a worker pool with per-read RNG forking.
  accel.set_backend(BackendKind::Functional);
  std::vector<Sequence> batch(16, read.read);
  const std::vector<QueryResult> batch_results =
      accel.search_batch(batch, 4, StrategyMode::Full, /*workers=*/4);
  std::size_t batch_hits = 0;
  for (const QueryResult& r : batch_results)
    for (const std::size_t segment : r.matched_segments)
      batch_hits += segment == true_segment ? 1u : 0u;
  std::printf(
      "\nBatched on the %s backend: %zu reads, true segment hit %zu times\n",
      accel.backend().name(), batch.size(), batch_hits);

  const ExecutionTotals& totals = accel.controller().totals();
  std::printf(
      "Totals: %zu queries, %zu array searches, %s total search latency\n",
      totals.queries, totals.searches,
      format_si(totals.latency_seconds, "s").c_str());
  return 0;
}
