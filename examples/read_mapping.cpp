// Full read-mapping pipeline: ASMCap as a high-recall in-memory filter,
// host-side exact verification, and CIGAR traceback of the winning row —
// the deployment shape of the accelerator. Prints per-read mapping records
// (position, exact ED, CIGAR) and aggregate statistics.
//
// Both the accelerator filter and the host verification fan out across a
// worker pool; results are identical for any worker count.
//
//   ./read_mapping [reads] [threshold] [workers]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "asmcap/readmapper.h"
#include "genome/readsim.h"
#include "genome/reference.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace asmcap;
  const std::size_t n_reads =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 24;
  const std::size_t threshold =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 6;
  const std::size_t workers =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4;
  Rng rng(0x4EAD'3A99);

  // Reference and mapper.
  const Sequence reference = generate_reference(256 * 130, {}, rng);
  auto segments = segment_reference(reference, 256);
  segments.resize(128);
  AsmcapConfig config;
  config.array_rows = 128;
  config.array_count = 1;
  ReadMapper mapper(config, segments, 256);
  // Realistic short-read errors with a ts/tv ratio of ~2.
  ErrorRates rates = ErrorRates::condition_a();
  rates.transition_fraction = 2.0 / 3.0;
  mapper.set_error_profile(rates);

  // Simulated sample, row-aligned origins.
  ReadSimConfig sim_config;
  sim_config.rates = rates;
  const ReadSimulator simulator(reference, sim_config);
  std::vector<Sequence> reads;
  std::vector<std::size_t> origins;
  for (std::size_t i = 0; i < n_reads; ++i) {
    const std::size_t row = rng.below(128);
    const SimulatedRead read = simulator.simulate_at(row * 256, rng);
    reads.push_back(read.read);
    origins.push_back(row * 256);
  }

  std::vector<MappedRead> mapped;
  const MappingStats stats =
      mapper.map_batch(reads, threshold, StrategyMode::Full, &mapped, workers);

  Table table({"read", "true pos", "mapped pos", "ED", "CIGAR (head)"});
  for (std::size_t i = 0; i < mapped.size(); ++i) {
    const MappedRead& m = mapped[i];
    std::string cigar = m.mapped ? m.alignment.to_string() : "*";
    if (cigar.size() > 28) cigar = cigar.substr(0, 25) + "...";
    table.new_row()
        .add_cell(i)
        .add_cell(origins[i])
        .add_cell(m.mapped ? std::to_string(m.reference_pos)
                           : std::string("unmapped"))
        .add_cell(m.mapped ? std::to_string(m.edit_distance)
                           : std::string("-"))
        .add_cell(cigar);
  }
  table.print(std::cout);

  std::size_t correct = 0;
  for (std::size_t i = 0; i < mapped.size(); ++i)
    correct += mapped[i].mapped && mapped[i].reference_pos == origins[i];
  std::printf(
      "\nmapped %zu/%zu (%.1f%% to the true position), avg %.2f candidate "
      "rows/read,\naccelerator: %s latency, %s energy; host verified %zu DP "
      "cells total\n",
      stats.mapped, stats.reads,
      100.0 * static_cast<double>(correct) / static_cast<double>(n_reads),
      stats.mean_candidates(),
      format_si(stats.accel_latency_seconds, "s").c_str(),
      format_si(stats.accel_energy_joules, "J").c_str(),
      stats.host_dp_cells);
  return 0;
}
