// Sharded multi-bank database: a multi-genome reference that does NOT fit
// one accelerator bank. A single bank caps the database at
// array_count x array_rows segments; the sharded router partitions the
// rows across independent banks, fans every query across them, and merges
// the per-bank reports back into global segment ids — so the host-side
// logic (organism lookup, verification) never notices the sharding.
//
// Demonstrates: the monolithic capacity failure, the sharded load, routed
// queries with global-id re-basing, and the Fig. 7-style accuracy/energy
// comparison against the Kraken-like exact k-mer classifier with CM-CPU
// as the exact host (run_sharded_comparison).
//
//   ./sharded_database [reads_per_organism] [shards] [workers]

#include <cstdio>
#include <vector>

#include "asmcap/db_error.h"
#include "asmcap/sharded.h"
#include "eval/experiment.h"
#include "genome/readsim.h"
#include "genome/reference.h"

int main(int argc, char** argv) {
  using namespace asmcap;
  const std::size_t reads_per_organism =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20;
  const std::size_t shards =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2;
  const std::size_t workers =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2;

  constexpr std::size_t kOrganisms = 6;
  constexpr std::size_t kRowsPerOrganism = 32;
  constexpr std::size_t kRowLength = 128;

  // Six synthetic organisms with distinct composition, 192 stored rows.
  Rng rng(0x5AADB);
  std::vector<Sequence> genomes;
  std::vector<Sequence> rows;
  std::vector<std::size_t> row_owner;
  for (std::size_t o = 0; o < kOrganisms; ++o) {
    ReferenceModel model;
    model.gc_content = 0.34 + 0.05 * static_cast<double>(o);
    genomes.push_back(
        generate_reference(kRowLength * (kRowsPerOrganism + 2), model, rng));
    auto segments = segment_reference(genomes.back(), kRowLength);
    segments.resize(kRowsPerOrganism);
    for (auto& segment : segments) {
      rows.push_back(std::move(segment));
      row_owner.push_back(o);
    }
  }

  // One bank: 2 arrays x 64 rows = 128 segments — the database (192 rows)
  // does not fit.
  AsmcapConfig bank;
  bank.array_rows = 64;
  bank.array_cols = kRowLength;
  bank.array_count = 2;
  bank.ideal_sensing = true;

  std::printf("database: %zu organisms x %zu rows = %zu segments\n",
              kOrganisms, kRowsPerOrganism, rows.size());
  std::printf("one bank holds %zu segments -> ", bank.capacity_segments());
  try {
    AsmcapAccelerator mono(bank);
    mono.load_reference(rows);
    std::printf("unexpectedly fit!\n");
  } catch (const DbError& error) {
    std::printf("monolithic load rejected (%s), as expected\n",
                to_string(error.kind()));
  }

  ShardedAccelerator accel(bank, shards);
  accel.load_reference(rows);
  const ErrorRates rates = ErrorRates::condition_a();
  accel.set_error_profile(rates);
  std::printf("%zu shards hold %zu/%zu segments", shards,
              accel.loaded_segments(), accel.capacity_segments());
  for (std::size_t s = 0; s < accel.active_shards(); ++s)
    std::printf("%s bank %zu: [%zu, %zu)", s == 0 ? " —" : ",", s,
                accel.shard_base(s),
                accel.shard_base(s) + accel.shard_segments(s));
  std::printf("\n\n");

  // A few routed queries: reports arrive under global ids, so the
  // organism lookup is a plain table index.
  ReadSimConfig sim_config;
  sim_config.read_length = kRowLength;
  sim_config.rates = rates;
  for (const std::size_t o : {std::size_t{0}, std::size_t{3}, std::size_t{5}}) {
    const ReadSimulator sim(genomes[o], sim_config);
    const Sequence read =
        sim.simulate_at(rng.below(kRowsPerOrganism) * kRowLength, rng).read;
    const QueryResult result = accel.search(read, 6, StrategyMode::Full,
                                            workers);
    std::printf("read from organism %zu -> %zu candidate row(s)", o,
                result.matched_segments.size());
    if (!result.matched_segments.empty())
      std::printf(", first global id %zu (organism %zu)",
                  result.matched_segments.front(),
                  row_owner[result.matched_segments.front()]);
    std::printf("\n");
  }

  // Fig. 7-style comparison on the full multi-bank database.
  Dataset dataset;
  dataset.rows = rows;
  dataset.rates = rates;
  dataset.name = "sharded multi-genome";
  for (std::size_t o = 0; o < kOrganisms; ++o) {
    const ReadSimulator sim(genomes[o], sim_config);
    for (std::size_t i = 0; i < reads_per_organism; ++i) {
      DatasetQuery query;
      const std::size_t source_row = rng.below(kRowsPerOrganism);
      query.read = sim.simulate_at(source_row * kRowLength, rng).read;
      query.true_row = o * kRowsPerOrganism + source_row;
      dataset.queries.push_back(query);
    }
  }

  ShardedComparisonConfig comparison;
  comparison.bank = bank;
  comparison.shards = shards;
  comparison.threshold = 6;
  comparison.workers = workers;
  const ShardedComparisonResult result =
      run_sharded_comparison(comparison, dataset);

  std::printf("\naccuracy vs the exact host (CM-CPU gold standard):\n");
  std::printf("  ASMCap (sharded filter)  F1 = %.3f\n", result.asmcap_f1);
  std::printf("  EDAM (batched, engine)   F1 = %.3f\n", result.edam_f1);
  std::printf("  Kraken-like exact k-mers F1 = %.3f\n", result.kraken_f1);
  std::printf("cost of the %zu-query batch:\n", dataset.queries.size());
  std::printf("  accelerator: %.3g s, %.3g J (router ledger totals)\n",
              result.accel_latency_seconds, result.accel_energy_joules);
  std::printf("  EDAM:        %.3g s, %.3g J (batched comparator)\n",
              result.edam_latency_seconds, result.edam_energy_joules);
  std::printf("  CM-CPU host: %.3g s, %.3g J (modelled exact scan)\n",
              result.cmcpu_seconds, result.cmcpu_joules);
  if (result.accel_latency_seconds > 0.0 && result.cmcpu_seconds > 0.0)
    std::printf("  -> %.0fx faster, %.0fx more energy-efficient\n",
                result.cmcpu_seconds / result.accel_latency_seconds,
                result.cmcpu_joules / result.accel_energy_joules);
  return 0;
}
