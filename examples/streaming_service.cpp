// Streaming search service walkthrough: the service-deployment shape of
// the sharded accelerator. Requests (simulated reads) arrive in waves; each
// wave is submitted asynchronously and its results are consumed three ways
// at once — an in-order streaming callback (the "respond to the client"
// path), progress polling from the submitting thread, and a final drain
// for the ledger. See docs/architecture.md ("Streaming service layer").

#include <cstdio>
#include <vector>

#include "asmcap/service.h"
#include "asmcap/sharded.h"
#include "genome/readsim.h"
#include "genome/reference.h"

using namespace asmcap;

int main() {
  // A 320-segment database sharded over 2 banks of 2 x 128-row arrays.
  AsmcapConfig bank;
  bank.array_rows = 128;
  bank.array_cols = 128;
  bank.array_count = 2;
  bank.ideal_sensing = true;

  Rng rng(0x57'12EA'3);
  const Sequence reference = generate_reference(128 * 322, {}, rng);
  auto segments = segment_reference(reference, 128);
  segments.resize(320);

  ShardedAccelerator accelerator(bank, 2);
  accelerator.load_reference(segments);
  std::printf("database: %zu segments over %zu shards (capacity %zu)\n",
              accelerator.loaded_segments(), accelerator.active_shards(),
              accelerator.capacity_segments());

  ReadSimConfig sim_config;
  sim_config.read_length = 128;
  sim_config.rates = ErrorRates::condition_a();
  const ReadSimulator simulator(reference, sim_config);

  SearchService service(accelerator);
  const std::size_t waves = 3;
  const std::size_t wave_size = 32;
  for (std::size_t w = 0; w < waves; ++w) {
    std::vector<Sequence> reads;
    reads.reserve(wave_size);
    for (std::size_t i = 0; i < wave_size; ++i)
      reads.push_back(
          simulator.simulate_at(rng.below(320) * 128, rng).read);

    SearchService::Options options;
    options.workers = 4;
    options.in_order = true;  // stream responses back in request order
    std::size_t streamed = 0;
    options.on_complete = [&streamed, w](std::size_t i,
                                         const QueryResult& result) {
      if (i < 3)  // print the head of the stream only
        std::printf("  wave %zu read %zu -> %zu match(es), %.1f nJ\n", w, i,
                    result.matched_segments.size(),
                    result.energy_joules * 1e9);
      ++streamed;
    };
    auto ticket = service.submit(std::move(reads), 4, StrategyMode::Full,
                                 options);

    // The submitting thread is free while the wave executes — here it just
    // polls progress (a real service would be ingesting the next wave; see
    // bench_service for that overlap measured).
    std::printf("wave %zu submitted: %zu reads, window %zu\n", w,
                ticket->size(), ticket->max_in_flight());
    ticket->wait();
    std::printf("wave %zu done: %zu/%zu streamed in order, peak in-flight "
                "%zu\n",
                w, streamed, ticket->completed(), ticket->peak_in_flight());
  }

  const ExecutionTotals& totals = accelerator.totals();
  std::printf("\nledger: %zu queries, %zu searches, %.2f uJ total\n",
              totals.queries, totals.searches, totals.energy_joules * 1e6);
  return 0;
}
