// Virus screening: the paper's motivating fast-testing scenario (§V-E) —
// the 64 Mb ASMCap capacity "can entirely store some small virus sequences
// (e.g., SARS-CoV-2)". We build a SARS-CoV-2-scale (~30 kb) synthetic viral
// genome, store it in the accelerator, and screen a mixed pool of viral and
// human-background reads, comparing the ASMCap calls against the exact
// semi-global gold standard.
//
// The pool is screened in one batched accelerator call across a worker
// pool (cell-accurate circuit backend: screening is the fidelity use case).
//
//   ./virus_screening [reads] [threshold] [workers]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "align/semiglobal.h"
#include "asmcap/accelerator.h"
#include "eval/metrics.h"
#include "genome/readsim.h"
#include "genome/reference.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace asmcap;
  const std::size_t n_reads =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 120;
  const std::size_t threshold =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 14;
  const std::size_t workers =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4;
  Rng rng(0x5A25);

  // ~30 kb viral genome (SARS-CoV-2 scale) and a human-like background.
  ReferenceModel viral_model;
  viral_model.gc_content = 0.38;  // SARS-CoV-2 GC ~0.38
  const Sequence virus = generate_reference(29903, viral_model, rng);
  const Sequence background = generate_reference(200000, {}, rng);

  // Store the virus as overlapping windows at stride 4. A read sequenced at
  // an arbitrary genome offset is then misaligned with the nearest stored
  // row by at most 2 bases: ED*'s +/-1 window absorbs one base of shift and
  // TASR's N_R = 2 rotations recover the remaining +/-2 — which is exactly
  // why the threshold below is chosen at T >= T_l so rotation triggers.
  // (30 kb at stride 4 x 256 bases x 2 bits ~ 3.8 Mb: comfortably inside
  // the 64 Mb capacity the paper quotes for "small virus sequences".)
  const auto segments = segment_reference(virus, 256, 4);
  std::printf("Viral genome: %zu bases -> %zu overlapping rows\n",
              virus.size(), segments.size());

  AsmcapConfig config;
  config.array_count = (segments.size() + 255) / 256;
  AsmcapAccelerator accel(config);
  accel.load_reference(segments);
  // TGS-ish noisy sample: substitutions + indels.
  const ErrorRates rates{0.01, 0.002, 0.002};
  accel.set_error_profile(rates);
  const std::size_t tasr_tl =
      tasr_lower_bound(config.tasr, rates, 256);
  std::printf("TASR lower bound T_l = %zu (threshold %zu %s rotation)\n",
              tasr_tl, threshold,
              threshold >= tasr_tl ? "triggers" : "does NOT trigger");

  ReadSimConfig sim;
  sim.rates = rates;
  const ReadSimulator viral_sim(virus, sim);
  const ReadSimulator background_sim(background, sim);

  // Draw the whole pool, then screen it in one batched call.
  std::vector<Sequence> pool;
  pool.reserve(n_reads);
  for (std::size_t i = 0; i < n_reads; ++i) {
    const bool is_viral = rng.bernoulli(0.35);
    pool.push_back(
        (is_viral ? viral_sim.simulate(rng) : background_sim.simulate(rng))
            .read);
  }
  const std::vector<QueryResult> results =
      accel.search_batch(pool, threshold, StrategyMode::Full, workers);

  ConfusionMatrix cm;
  double latency = 0.0;
  double energy = 0.0;
  for (std::size_t i = 0; i < n_reads; ++i) {
    const bool called_viral = !results[i].matched_segments.empty();
    // Gold standard: exact semi-global alignment against the viral genome.
    const SemiGlobalHit gold = semiglobal_align(pool[i], virus);
    const bool truly_viral = gold.distance <= threshold;
    cm.add(called_viral, truly_viral);
    latency += results[i].latency_seconds;
    energy += results[i].energy_joules;
  }

  Table table({"metric", "value"});
  table.new_row().add_cell("reads screened").add_cell(n_reads);
  table.new_row().add_cell("threshold T").add_cell(threshold);
  table.new_row().add_cell("sensitivity").add_cell(cm.sensitivity(), 4);
  table.new_row().add_cell("precision").add_cell(cm.precision(), 4);
  table.new_row().add_cell("F1").add_cell(cm.f1(), 4);
  table.new_row().add_cell("accel latency / read").add_cell(
      format_si(latency / static_cast<double>(n_reads), "s"));
  table.new_row().add_cell("accel energy / read").add_cell(
      format_si(energy / static_cast<double>(n_reads), "J"));
  table.print(std::cout);
  return 0;
}
