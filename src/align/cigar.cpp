#include "align/cigar.h"

#include <algorithm>
#include <stdexcept>

namespace asmcap {

char to_char(CigarOp op) {
  switch (op) {
    case CigarOp::Match: return '=';
    case CigarOp::Mismatch: return 'X';
    case CigarOp::Insertion: return 'I';
    case CigarOp::Deletion: return 'D';
  }
  return '?';
}

std::string Alignment::to_string() const {
  std::string text;
  for (const CigarEntry& entry : cigar) {
    text += std::to_string(entry.length);
    text += to_char(entry.op);
  }
  return text;
}

std::size_t Alignment::read_length() const {
  std::size_t total = 0;
  for (const CigarEntry& entry : cigar)
    if (entry.op != CigarOp::Deletion) total += entry.length;
  return total;
}

std::size_t Alignment::reference_length() const {
  std::size_t total = 0;
  for (const CigarEntry& entry : cigar)
    if (entry.op != CigarOp::Insertion) total += entry.length;
  return total;
}

Alignment align_global(const Sequence& reference, const Sequence& read) {
  const std::size_t n = reference.size();
  const std::size_t m = read.size();
  // Full DP matrix for traceback.
  std::vector<std::uint32_t> dp((n + 1) * (m + 1));
  const auto at = [&](std::size_t i, std::size_t j) -> std::uint32_t& {
    return dp[i * (m + 1) + j];
  };
  for (std::size_t j = 0; j <= m; ++j) at(0, j) = static_cast<std::uint32_t>(j);
  for (std::size_t i = 1; i <= n; ++i) {
    at(i, 0) = static_cast<std::uint32_t>(i);
    for (std::size_t j = 1; j <= m; ++j) {
      const std::uint32_t substitution =
          at(i - 1, j - 1) + (reference[i - 1] == read[j - 1] ? 0u : 1u);
      at(i, j) =
          std::min({at(i - 1, j) + 1, at(i, j - 1) + 1, substitution});
    }
  }

  // Traceback, preferring diagonal moves (canonical alignments).
  std::vector<CigarEntry> reversed;
  const auto push = [&reversed](CigarOp op) {
    if (!reversed.empty() && reversed.back().op == op)
      ++reversed.back().length;
    else
      reversed.push_back({op, 1});
  };
  std::size_t i = n;
  std::size_t j = m;
  while (i > 0 || j > 0) {
    if (i > 0 && j > 0) {
      const bool same = reference[i - 1] == read[j - 1];
      if (at(i, j) == at(i - 1, j - 1) + (same ? 0u : 1u)) {
        push(same ? CigarOp::Match : CigarOp::Mismatch);
        --i;
        --j;
        continue;
      }
    }
    if (i > 0 && at(i, j) == at(i - 1, j) + 1) {
      push(CigarOp::Deletion);  // reference base absent from the read
      --i;
      continue;
    }
    push(CigarOp::Insertion);  // read base absent from the reference
    --j;
  }

  Alignment alignment;
  alignment.edit_distance = at(n, m);
  alignment.cigar.assign(reversed.rbegin(), reversed.rend());
  return alignment;
}

bool cigar_consistent(const Alignment& alignment, const Sequence& reference,
                      const Sequence& read) {
  if (alignment.read_length() != read.size()) return false;
  if (alignment.reference_length() != reference.size()) return false;
  std::size_t i = 0;  // reference cursor
  std::size_t j = 0;  // read cursor
  std::size_t edits = 0;
  for (const CigarEntry& entry : alignment.cigar) {
    for (std::uint32_t k = 0; k < entry.length; ++k) {
      switch (entry.op) {
        case CigarOp::Match:
          if (reference[i] != read[j]) return false;
          ++i;
          ++j;
          break;
        case CigarOp::Mismatch:
          if (reference[i] == read[j]) return false;
          ++i;
          ++j;
          ++edits;
          break;
        case CigarOp::Deletion:
          ++i;
          ++edits;
          break;
        case CigarOp::Insertion:
          ++j;
          ++edits;
          break;
      }
    }
  }
  return edits == alignment.edit_distance && i == reference.size() &&
         j == read.size();
}

}  // namespace asmcap
