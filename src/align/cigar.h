#pragma once
// Alignment traceback and CIGAR strings. The accelerator only answers
// "within threshold?" — downstream genomics tooling wants the actual
// alignment of the accepted (read, segment) pairs, which the host CPU
// recovers with one traceback per reported match.

#include <cstdint>
#include <string>
#include <vector>

#include "genome/sequence.h"

namespace asmcap {

/// CIGAR operation kinds (SAM conventions; '=' and 'X' distinguished).
enum class CigarOp : std::uint8_t { Match, Mismatch, Insertion, Deletion };

char to_char(CigarOp op);

struct CigarEntry {
  CigarOp op;
  std::uint32_t length;
  bool operator==(const CigarEntry&) const = default;
};

/// A full global alignment between a read and a reference segment.
struct Alignment {
  std::vector<CigarEntry> cigar;
  std::size_t edit_distance = 0;  ///< mismatches + insertions + deletions

  /// Compact SAM-style rendering, e.g. "12=1X3=2D8=".
  std::string to_string() const;

  /// Number of read bases consumed (must equal the read length).
  std::size_t read_length() const;
  /// Number of reference bases consumed.
  std::size_t reference_length() const;
};

/// Global alignment with traceback (O(n*m) time and memory). `reference`
/// rows, `read` columns; insertions are read bases absent from the
/// reference.
Alignment align_global(const Sequence& reference, const Sequence& read);

/// Applies a CIGAR to a reference segment and reproduces the read
/// (requires the read's inserted bases, supplied via `read`); used to
/// verify round-trip consistency in tests.
bool cigar_consistent(const Alignment& alignment, const Sequence& reference,
                      const Sequence& read);

}  // namespace asmcap
