#include "align/edit_distance.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace asmcap {

std::size_t edit_distance(const Sequence& a, const Sequence& b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  std::vector<std::size_t> prev(m + 1);
  std::vector<std::size_t> curr(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    curr[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t substitution =
          prev[j - 1] + (a[i - 1] == b[j - 1] ? 0u : 1u);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, substitution});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

CappedDistance banded_edit_distance(const Sequence& a, const Sequence& b,
                                    std::size_t cap) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  const std::size_t length_gap = n > m ? n - m : m - n;
  if (length_gap > cap) return {cap + 1, false, 0};

  // Band of diagonals [-cap, +cap] around the main diagonal; cells outside
  // hold "infinity". Offset indexing keeps everything unsigned-safe.
  const std::size_t width = 2 * cap + 1;
  const std::size_t inf = std::numeric_limits<std::size_t>::max() / 2;
  std::vector<std::size_t> prev(width, inf);
  std::vector<std::size_t> curr(width, inf);

  std::size_t cells = 0;

  // Row 0: D[0][j] = j for j <= cap.
  for (std::size_t d = 0; d < width; ++d) {
    // diagonal index d corresponds to j - i = d - cap; at i = 0, j = d - cap.
    if (d >= cap) {
      const std::size_t j = d - cap;
      if (j <= m && j <= cap) {
        prev[d] = j;
        ++cells;
      }
    }
  }

  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), inf);
    std::size_t row_min = inf;
    for (std::size_t d = 0; d < width; ++d) {
      // j = i + d - cap; skip out-of-range columns.
      const std::ptrdiff_t js =
          static_cast<std::ptrdiff_t>(i) + static_cast<std::ptrdiff_t>(d) -
          static_cast<std::ptrdiff_t>(cap);
      if (js < 0 || js > static_cast<std::ptrdiff_t>(m)) continue;
      const std::size_t j = static_cast<std::size_t>(js);
      std::size_t best = inf;
      if (j == 0) {
        best = i;
      } else {
        // Substitution: D[i-1][j-1] lives at the same diagonal d.
        const std::size_t diag = prev[d];
        if (diag < inf)
          best = diag + (a[i - 1] == b[j - 1] ? 0u : 1u);
        // Deletion from a: D[i-1][j] lives at diagonal d+1.
        if (d + 1 < width && prev[d + 1] < inf)
          best = std::min(best, prev[d + 1] + 1);
        // Insertion into a: D[i][j-1] lives at diagonal d-1.
        if (d >= 1 && curr[d - 1] < inf)
          best = std::min(best, curr[d - 1] + 1);
      }
      curr[d] = best;
      row_min = std::min(row_min, best);
      ++cells;
    }
    if (row_min > cap) return {cap + 1, false, cells};  // Ukkonen early exit.
    std::swap(prev, curr);
  }

  // Final cell (n, m) lies at diagonal m - n + cap.
  const std::size_t final_d = m + cap - n;
  const std::size_t distance = prev[final_d];
  if (distance > cap) return {cap + 1, false, cells};
  return {distance, true, cells};
}

bool edit_distance_within(const Sequence& a, const Sequence& b,
                          std::size_t threshold) {
  return banded_edit_distance(a, b, threshold).within_band;
}

std::vector<std::uint32_t> comparison_matrix(const Sequence& a,
                                             const Sequence& b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  std::vector<std::uint32_t> matrix((n + 1) * (m + 1));
  const auto at = [&](std::size_t i, std::size_t j) -> std::uint32_t& {
    return matrix[i * (m + 1) + j];
  };
  for (std::size_t j = 0; j <= m; ++j) at(0, j) = static_cast<std::uint32_t>(j);
  for (std::size_t i = 1; i <= n; ++i) {
    at(i, 0) = static_cast<std::uint32_t>(i);
    for (std::size_t j = 1; j <= m; ++j) {
      const std::uint32_t substitution =
          at(i - 1, j - 1) + (a[i - 1] == b[j - 1] ? 0u : 1u);
      at(i, j) = std::min({at(i - 1, j) + 1, at(i, j - 1) + 1, substitution});
    }
  }
  return matrix;
}

CmCost comparison_matrix_cost(std::size_t n, std::size_t m) {
  return {(n + 1) * (m + 1), n + m + 1};
}

}  // namespace asmcap
