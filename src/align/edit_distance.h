#pragma once
// Exact (Levenshtein) edit distance. The full O(n*m) dynamic program is the
// reference implementation (and the CM-CPU baseline kernel); the banded
// variant with a distance cap is what the evaluation uses for ground truth,
// and the Ukkonen-style early exit makes threshold queries cheap.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "genome/sequence.h"

namespace asmcap {

/// Full comparison-matrix edit distance (two-row rolling DP).
std::size_t edit_distance(const Sequence& a, const Sequence& b);

/// Result of a capped computation: `distance` is exact when
/// `within_band` is true; otherwise the true distance exceeds `cap` and
/// `distance` == cap + 1.
struct CappedDistance {
  std::size_t distance = 0;
  bool within_band = false;
  /// DP cells actually evaluated — at most (n+1) * (2*cap+1), but smaller
  /// when the Ukkonen early exit fires or the band clips the matrix edge.
  /// This is what honest host-work accounting charges (the worst-case
  /// band area overstates verification cost on early-terminating rows).
  std::size_t cells = 0;
};

/// Banded edit distance with band half-width `cap` (Ukkonen). Exact for all
/// distances <= cap; reports cap+1 otherwise. Cost O((cap+1) * n).
CappedDistance banded_edit_distance(const Sequence& a, const Sequence& b,
                                    std::size_t cap);

/// Convenience threshold query: true iff edit_distance(a, b) <= threshold.
bool edit_distance_within(const Sequence& a, const Sequence& b,
                          std::size_t threshold);

/// The full comparison matrix (n+1 x m+1), exposed for tests, the ReSMA
/// anti-diagonal model, and the traceback in the alignment example.
/// Row-major: cell(i, j) = matrix[i * (b.size() + 1) + j].
std::vector<std::uint32_t> comparison_matrix(const Sequence& a,
                                             const Sequence& b);

/// Operation counts of the comparison-matrix computation, used by the
/// performance models (cells == (n+1)*(m+1) updates).
struct CmCost {
  std::size_t cells = 0;
  std::size_t anti_diagonals = 0;  ///< n + m + 1 (ReSMA's parallel step count).
};

CmCost comparison_matrix_cost(std::size_t n, std::size_t m);

}  // namespace asmcap
