#include "align/edstar.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>

namespace asmcap {

namespace {

inline bool cell_matches(const Sequence& stored, const Sequence& read,
                         std::size_t i) {
  const Base q = stored[i];
  if (q == read[i]) return true;                       // O_C
  if (i > 0 && q == read[i - 1]) return true;          // O_L
  if (i + 1 < read.size() && q == read[i + 1]) return true;  // O_R
  return false;
}

}  // namespace

std::size_t ed_star(const Sequence& stored, const Sequence& read) {
  if (stored.size() != read.size())
    throw std::invalid_argument("ed_star: length mismatch");
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < stored.size(); ++i)
    mismatches += cell_matches(stored, read, i) ? 0u : 1u;
  return mismatches;
}

BitVec ed_star_mismatch_mask(const Sequence& stored, const Sequence& read) {
  if (stored.size() != read.size())
    throw std::invalid_argument("ed_star_mismatch_mask: length mismatch");
  BitVec mask(stored.size());
  for (std::size_t i = 0; i < stored.size(); ++i)
    if (!cell_matches(stored, read, i)) mask.set(i);
  return mask;
}

bool ed_star_within(const Sequence& stored, const Sequence& read,
                    std::size_t threshold) {
  if (stored.size() != read.size())
    throw std::invalid_argument("ed_star_within: length mismatch");
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < stored.size(); ++i) {
    if (!cell_matches(stored, read, i) && ++mismatches > threshold)
      return false;
  }
  return true;
}

std::size_t ed_star_packed(const std::vector<std::uint64_t>& stored,
                           const std::vector<std::uint64_t>& read,
                           std::size_t n) {
  // Lane i (bits 2i, 2i+1) holds one base; kLanes selects the low bit of
  // every lane, where the equality tests below leave their result.
  constexpr std::uint64_t kLanes = 0x5555555555555555ULL;
  const auto eq = [](std::uint64_t a, std::uint64_t b) {
    const std::uint64_t x = a ^ b;
    return ~(x | (x >> 1)) & kLanes;
  };
  const std::size_t words = (n + 31) / 32;
  std::size_t mismatches = 0;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t q = stored[w];
    const std::uint64_t r = read[w];
    // R[i-1] aligned into lane i (shift up one lane, carry across words).
    const std::uint64_t r_prev = (r << 2) | (w > 0 ? read[w - 1] >> 62 : 0);
    // R[i+1] aligned into lane i (shift down one lane).
    const std::uint64_t r_next =
        (r >> 2) | (w + 1 < words ? read[w + 1] << 62 : 0);

    std::uint64_t left = eq(q, r_prev);
    if (w == 0) left &= ~std::uint64_t{1};  // cell 0 has no left neighbour
    std::uint64_t right = eq(q, r_next);
    if (w == (n - 1) / 32)                  // cell n-1 has no right neighbour
      right &= ~(std::uint64_t{1} << (2 * ((n - 1) % 32)));

    const std::uint64_t match = eq(q, r) | left | right;
    std::uint64_t valid = kLanes;
    if (w + 1 == words && n % 32 != 0)
      valid &= (std::uint64_t{1} << (2 * (n % 32))) - 1;
    mismatches +=
        static_cast<std::size_t>(std::popcount(~match & valid));
  }
  return mismatches;
}

std::vector<Sequence> rotation_schedule(const Sequence& read,
                                        std::size_t rotations, RotateDir dir) {
  std::vector<Sequence> schedule;
  schedule.push_back(read);
  for (std::size_t k = 1; k <= rotations; ++k) {
    if (dir == RotateDir::Left || dir == RotateDir::Both)
      schedule.push_back(read.rotated_left(k));
    if (dir == RotateDir::Right || dir == RotateDir::Both)
      schedule.push_back(read.rotated_right(k));
  }
  return schedule;
}

std::size_t ed_star_min_rotated(const Sequence& stored, const Sequence& read,
                                std::size_t rotations, RotateDir dir) {
  std::size_t best = ed_star(stored, read);
  for (const Sequence& rotated : rotation_schedule(read, rotations, dir)) {
    best = std::min(best, ed_star(stored, rotated));
    if (best == 0) break;
  }
  return best;
}

}  // namespace asmcap
