#include "align/edstar.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "align/kernels.h"

namespace asmcap {

namespace {

inline bool cell_matches(const Sequence& stored, const Sequence& read,
                         std::size_t i) {
  const Base q = stored[i];
  if (q == read[i]) return true;                       // O_C
  if (i > 0 && q == read[i - 1]) return true;          // O_L
  if (i + 1 < read.size() && q == read[i + 1]) return true;  // O_R
  return false;
}

}  // namespace

std::size_t ed_star(const Sequence& stored, const Sequence& read) {
  if (stored.size() != read.size())
    throw std::invalid_argument("ed_star: length mismatch");
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < stored.size(); ++i)
    mismatches += cell_matches(stored, read, i) ? 0u : 1u;
  return mismatches;
}

BitVec ed_star_mismatch_mask(const Sequence& stored, const Sequence& read) {
  if (stored.size() != read.size())
    throw std::invalid_argument("ed_star_mismatch_mask: length mismatch");
  // Packed mask kernel: same cost model as the counting hot path (the
  // BitVec consumers — CAM functional model, signal sweeps — used to walk
  // cell-by-cell while the backends ran word-parallel).
  const PackedReadView view(read);
  const std::vector<std::uint64_t> packed_stored = stored.packed_words();
  std::vector<std::uint64_t> flags(view.words);
  ed_star_mismatch_words(packed_stored.data(), view, flags.data());
  return lane_flags_to_bitvec(flags.data(), view.n);
}

bool ed_star_within(const Sequence& stored, const Sequence& read,
                    std::size_t threshold) {
  if (stored.size() != read.size())
    throw std::invalid_argument("ed_star_within: length mismatch");
  // The packed count beats the early-exit cell walk even when the walk
  // exits early (and matches the hardware, which always drives all cells).
  return ed_star_packed(stored.packed_words(), read.packed_words(),
                        stored.size()) <= threshold;
}

std::size_t ed_star_packed(const std::vector<std::uint64_t>& stored,
                           const std::vector<std::uint64_t>& read,
                           std::size_t n) {
  const PackedReadView view(read, n);
  std::uint32_t count = 0;
  ed_star_packed_block(stored.data(), 1, view, &count);
  return count;
}

std::vector<Sequence> rotation_schedule(const Sequence& read,
                                        std::size_t rotations, RotateDir dir) {
  std::vector<Sequence> schedule;
  schedule.push_back(read);
  for (std::size_t k = 1; k <= rotations; ++k) {
    if (dir == RotateDir::Left || dir == RotateDir::Both)
      schedule.push_back(read.rotated_left(k));
    if (dir == RotateDir::Right || dir == RotateDir::Both)
      schedule.push_back(read.rotated_right(k));
  }
  return schedule;
}

std::size_t ed_star_min_rotated(const Sequence& stored, const Sequence& read,
                                std::size_t rotations, RotateDir dir) {
  std::size_t best = ed_star(stored, read);
  for (const Sequence& rotated : rotation_schedule(read, rotations, dir)) {
    best = std::min(best, ed_star(stored, rotated));
    if (best == 0) break;
  }
  return best;
}

}  // namespace asmcap
