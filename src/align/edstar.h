#pragma once
// ED*: the EDAM/ASMCap hardware matching metric (paper §II-B, Fig. 2).
//
// The array stores a reference segment Q; the read R arrives on the search
// lines. Cell i holds Q[i] and sees the read bases R[i-1], R[i], R[i+1]
// (Fig. 4c). The cell *matches* when Q[i] equals any of the three; ED* is
// the number of mismatched cells. Boundary cells only see the neighbours
// that exist. ED* tolerates intra-read indels (a single indel shifts the
// read by one position, which the +/-1 window absorbs locally), but it is
// NOT symmetric and is NOT a metric: it can under-estimate ED (hiding
// substitutions — fixed by HDAC) and over-estimate ED under consecutive
// indels (fixed by TASR).

#include <cstddef>
#include <vector>

#include "genome/sequence.h"
#include "util/bitvec.h"

namespace asmcap {

/// ED*(stored, read): mismatched-cell count. Lengths must be equal (the
/// hardware rows are fixed-width).
std::size_t ed_star(const Sequence& stored, const Sequence& read);

/// Per-cell mismatch mask (bit i set iff cell i mismatches): the vector of
/// cell outputs O that drives the matchline capacitors.
BitVec ed_star_mismatch_mask(const Sequence& stored, const Sequence& read);

/// True iff ed_star(stored, read) <= threshold (ideal, noise-free sensing).
bool ed_star_within(const Sequence& stored, const Sequence& read,
                    std::size_t threshold);

/// Word-parallel ED* over 2-bit packed operands (Sequence::packed_words):
/// identical to ed_star() while processing 32+ cells per word. `n` is the
/// common sequence length; both vectors must hold ceil(n/32) words with
/// zeroed tail bits. Dispatches to the runtime-selected SIMD tier
/// (align/kernels.h); every tier returns the same count. This is the
/// kernel behind the FunctionalBackend (which uses the block form from
/// kernels.h directly to reuse the read-derived alignments across rows).
std::size_t ed_star_packed(const std::vector<std::uint64_t>& stored,
                           const std::vector<std::uint64_t>& read,
                           std::size_t n);

/// Rotation direction for sequence-rotation strategies.
enum class RotateDir { Left, Right, Both };

/// Minimum ED* over the original read and its base-by-base rotations
/// 1..rotations in the given direction(s). This is the ideal-arithmetic
/// version of EDAM's SR / ASMCap's TASR inner loop.
std::size_t ed_star_min_rotated(const Sequence& stored, const Sequence& read,
                                std::size_t rotations, RotateDir dir);

/// All rotated variants that the shift registers generate, in search order
/// (original first). Exposed so the accelerator model can account one
/// search operation per element.
std::vector<Sequence> rotation_schedule(const Sequence& read,
                                        std::size_t rotations, RotateDir dir);

}  // namespace asmcap
