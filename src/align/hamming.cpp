#include "align/hamming.h"

#include <cstdint>
#include <stdexcept>

#include "align/kernels.h"

namespace asmcap {

std::size_t hamming_distance(const Sequence& a, const Sequence& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("hamming_distance: length mismatch");
  std::size_t distance = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    distance += a[i] != b[i] ? 1u : 0u;
  return distance;
}

BitVec hamming_mismatch_mask(const Sequence& a, const Sequence& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("hamming_mismatch_mask: length mismatch");
  // Packed mask kernel, same cost model as the counting hot path. The
  // Hamming kernels never read the ED* neighbour alignments, so the view
  // skips them (neighbours = false).
  const PackedReadView view(b, /*neighbours=*/false);
  const std::vector<std::uint64_t> packed_a = a.packed_words();
  std::vector<std::uint64_t> flags(view.words);
  hamming_mismatch_words(packed_a.data(), view, flags.data());
  return lane_flags_to_bitvec(flags.data(), view.n);
}

bool hamming_within(const Sequence& a, const Sequence& b,
                    std::size_t threshold) {
  if (a.size() != b.size())
    throw std::invalid_argument("hamming_within: length mismatch");
  return hamming_packed(a.packed_words(), b.packed_words(), a.size()) <=
         threshold;
}

std::size_t hamming_packed(const std::vector<std::uint64_t>& a,
                           const std::vector<std::uint64_t>& b,
                           std::size_t n) {
  const PackedReadView view(b, n, /*neighbours=*/false);
  std::uint32_t count = 0;
  hamming_packed_block(a.data(), 1, view, &count);
  return count;
}

}  // namespace asmcap
