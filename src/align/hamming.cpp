#include "align/hamming.h"

#include <bit>
#include <cstdint>
#include <stdexcept>

namespace asmcap {

std::size_t hamming_distance(const Sequence& a, const Sequence& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("hamming_distance: length mismatch");
  std::size_t distance = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    distance += a[i] != b[i] ? 1u : 0u;
  return distance;
}

BitVec hamming_mismatch_mask(const Sequence& a, const Sequence& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("hamming_mismatch_mask: length mismatch");
  BitVec mask(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) mask.set(i);
  return mask;
}

bool hamming_within(const Sequence& a, const Sequence& b,
                    std::size_t threshold) {
  if (a.size() != b.size())
    throw std::invalid_argument("hamming_within: length mismatch");
  std::size_t distance = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i] && ++distance > threshold) return false;
  }
  return true;
}

std::size_t hamming_packed(const std::vector<std::uint64_t>& a,
                           const std::vector<std::uint64_t>& b,
                           std::size_t n) {
  constexpr std::uint64_t kLanes = 0x5555555555555555ULL;
  const std::size_t words = (n + 31) / 32;
  std::size_t distance = 0;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t x = a[w] ^ b[w];
    // Tail lanes of both operands are zero, so they never contribute.
    distance += static_cast<std::size_t>(std::popcount((x | (x >> 1)) & kLanes));
  }
  return distance;
}

}  // namespace asmcap
