#include "align/hamming.h"

#include <stdexcept>

namespace asmcap {

std::size_t hamming_distance(const Sequence& a, const Sequence& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("hamming_distance: length mismatch");
  std::size_t distance = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    distance += a[i] != b[i] ? 1u : 0u;
  return distance;
}

BitVec hamming_mismatch_mask(const Sequence& a, const Sequence& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("hamming_mismatch_mask: length mismatch");
  BitVec mask(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) mask.set(i);
  return mask;
}

bool hamming_within(const Sequence& a, const Sequence& b,
                    std::size_t threshold) {
  if (a.size() != b.size())
    throw std::invalid_argument("hamming_within: length mismatch");
  std::size_t distance = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i] && ++distance > threshold) return false;
  }
  return true;
}

}  // namespace asmcap
