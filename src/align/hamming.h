#pragma once
// Hamming distance between equal-length sequences. This is the metric the
// ASMCap array computes in HD mode (MUX select S = 0), used by HDAC.

#include <cstddef>

#include "genome/sequence.h"
#include "util/bitvec.h"

namespace asmcap {

/// Number of co-located mismatches. Throws std::invalid_argument when the
/// lengths differ (the hardware always compares equal-length rows).
std::size_t hamming_distance(const Sequence& a, const Sequence& b);

/// Per-position mismatch mask: bit i set iff a[i] != b[i]. This is exactly
/// the cell-output vector O of the array in HD mode.
BitVec hamming_mismatch_mask(const Sequence& a, const Sequence& b);

/// True iff hamming_distance(a, b) <= threshold, with early exit.
bool hamming_within(const Sequence& a, const Sequence& b, std::size_t threshold);

/// Word-parallel Hamming distance over 2-bit packed operands
/// (Sequence::packed_words): identical to hamming_distance() while
/// processing 32+ positions per word. `n` is the common length; tail bits
/// of both vectors must be zero. Dispatches to the runtime-selected SIMD
/// tier (align/kernels.h); every tier returns the same count.
std::size_t hamming_packed(const std::vector<std::uint64_t>& a,
                           const std::vector<std::uint64_t>& b, std::size_t n);

}  // namespace asmcap
