#include "align/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>

#include "align/kernels/kernel_impl.h"

namespace asmcap {

using detail::kLanes;

const char* to_string(KernelTier tier) {
  switch (tier) {
    case KernelTier::Scalar: return "scalar";
    case KernelTier::Avx2: return "avx2";
    case KernelTier::Neon: return "neon";
  }
  return "?";
}

// ------------------------------------------------------ PackedReadView --

PackedReadView::PackedReadView(const std::vector<std::uint64_t>& read_words,
                               std::size_t length, bool neighbours)
    : n(length), words((length + 31) / 32) {
  r.assign(read_words.begin(), read_words.begin() + words);
  valid.assign(words, kLanes);
  if (n != 0 && n % 32 != 0)
    valid.back() &= (std::uint64_t{1} << (2 * (n % 32))) - 1;
  if (!neighbours) return;  // Hamming-only view: r/valid suffice
  r_prev.resize(words);
  r_next.resize(words);
  for (std::size_t w = 0; w < words; ++w) {
    // R[i-1] aligned into lane i (shift up one lane, carry across words).
    r_prev[w] = (r[w] << 2) | (w > 0 ? r[w - 1] >> 62 : 0);
    // R[i+1] aligned into lane i (shift down one lane).
    r_next[w] = (r[w] >> 2) | (w + 1 < words ? r[w + 1] << 62 : 0);
  }
  left_ok.assign(words, kLanes);
  right_ok.assign(words, kLanes);
  if (n != 0) {
    left_ok[0] &= ~std::uint64_t{1};  // cell 0 has no left neighbour
    right_ok[(n - 1) / 32] &=         // cell n-1 has no right neighbour
        ~(std::uint64_t{1} << (2 * ((n - 1) % 32)));
  }
}

PackedReadView::PackedReadView(const Sequence& read, bool neighbours)
    : PackedReadView(read.packed_words(), read.size(), neighbours) {}

// ------------------------------------------------------ PackedRowMatrix --

PackedRowMatrix::PackedRowMatrix(const std::vector<Sequence>& rows,
                                 std::size_t cols)
    : rows_(rows.size()), cols_(cols), words_per_row_((cols + 31) / 32) {
  words_.resize(rows_ * words_per_row_, 0);
  for (std::size_t g = 0; g < rows_; ++g) {
    if (rows[g].size() != cols)
      throw std::invalid_argument("PackedRowMatrix: row width mismatch");
    const std::vector<std::uint64_t> packed = rows[g].packed_words();
    if (!packed.empty())
      std::memcpy(words_.data() + g * words_per_row_, packed.data(),
                  packed.size() * sizeof(std::uint64_t));
  }
}

// -------------------------------------------------------- scalar tier --

namespace detail {

void ed_star_block_scalar(const std::uint64_t* rows, std::size_t n_rows,
                          const PackedReadView& read, std::uint32_t* counts) {
  for (std::size_t g = 0; g < n_rows; ++g)
    counts[g] = ed_star_row_scalar(rows + g * read.words, read, 0, read.words);
}

void hamming_block_scalar(const std::uint64_t* rows, std::size_t n_rows,
                          const PackedReadView& read, std::uint32_t* counts) {
  for (std::size_t g = 0; g < n_rows; ++g)
    counts[g] = hamming_row_scalar(rows + g * read.words, read, 0, read.words);
}

}  // namespace detail

// ----------------------------------------------------- dispatch tables --

namespace {

constexpr KernelOps kScalarOps{KernelTier::Scalar,
                               &detail::ed_star_block_scalar,
                               &detail::hamming_block_scalar};
#ifdef ASMCAP_HAVE_AVX2
constexpr KernelOps kAvx2Ops{KernelTier::Avx2, &detail::ed_star_block_avx2,
                             &detail::hamming_block_avx2};
#endif
#ifdef ASMCAP_HAVE_NEON
constexpr KernelOps kNeonOps{KernelTier::Neon, &detail::ed_star_block_neon,
                             &detail::hamming_block_neon};
#endif

/// True when the running CPU can execute the tier's instructions (the
/// compile-time availability is checked separately).
bool cpu_supports(KernelTier tier) {
  switch (tier) {
    case KernelTier::Scalar:
      return true;
    case KernelTier::Avx2:
#if defined(ASMCAP_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case KernelTier::Neon:
      // NEON is architecturally mandatory on AArch64: compiled => runnable.
#ifdef ASMCAP_HAVE_NEON
      return true;
#else
      return false;
#endif
  }
  return false;
}

std::atomic<KernelTier> g_active_tier{KernelTier::Scalar};
std::once_flag g_active_init;

}  // namespace

std::vector<KernelTier> compiled_kernel_tiers() {
  std::vector<KernelTier> tiers{KernelTier::Scalar};
#ifdef ASMCAP_HAVE_AVX2
  tiers.push_back(KernelTier::Avx2);
#endif
#ifdef ASMCAP_HAVE_NEON
  tiers.push_back(KernelTier::Neon);
#endif
  return tiers;
}

bool kernel_tier_available(KernelTier tier) {
  for (const KernelTier compiled : compiled_kernel_tiers())
    if (compiled == tier) return cpu_supports(tier);
  return false;
}

KernelTier detect_kernel_tier() {
  KernelTier best = KernelTier::Scalar;
  for (const KernelTier tier : compiled_kernel_tiers())
    if (cpu_supports(tier)) best = tier;  // list is ascending-preference
  return best;
}

KernelTier resolve_kernel_tier(const char* env_value, KernelTier detected) {
  if (env_value == nullptr || env_value[0] == '\0') return detected;
  const std::string name(env_value);
  KernelTier requested;
  if (name == "scalar") {
    requested = KernelTier::Scalar;
  } else if (name == "avx2") {
    requested = KernelTier::Avx2;
  } else if (name == "neon") {
    requested = KernelTier::Neon;
  } else {
    throw std::invalid_argument(
        "ASMCAP_KERNEL: unknown tier '" + name +
        "' (expected scalar, avx2, or neon)");
  }
  if (!kernel_tier_available(requested))
    throw std::runtime_error("ASMCAP_KERNEL: tier '" + name +
                             "' is not available in this binary/CPU");
  return requested;
}

KernelTier resolve_kernel_tier_from_env() {
  return resolve_kernel_tier(std::getenv("ASMCAP_KERNEL"),
                             detect_kernel_tier());
}

KernelTier active_kernel_tier() {
  std::call_once(g_active_init, [] {
    g_active_tier.store(resolve_kernel_tier_from_env(),
                        std::memory_order_relaxed);
  });
  return g_active_tier.load(std::memory_order_relaxed);
}

void set_active_kernel_tier(KernelTier tier) {
  if (!kernel_tier_available(tier))
    throw std::runtime_error(
        std::string("set_active_kernel_tier: tier '") + to_string(tier) +
        "' is not available in this binary/CPU");
  active_kernel_tier();  // force one-time env resolution first
  g_active_tier.store(tier, std::memory_order_relaxed);
}

const KernelOps& kernel_ops(KernelTier tier) {
  switch (tier) {
    case KernelTier::Scalar:
      return kScalarOps;
    case KernelTier::Avx2:
#ifdef ASMCAP_HAVE_AVX2
      return kAvx2Ops;
#else
      break;
#endif
    case KernelTier::Neon:
#ifdef ASMCAP_HAVE_NEON
      return kNeonOps;
#else
      break;
#endif
  }
  throw std::runtime_error(std::string("kernel_ops: tier '") +
                           to_string(tier) +
                           "' is not compiled into this binary");
}

const KernelOps& active_kernel_ops() {
  return kernel_ops(active_kernel_tier());
}

void ed_star_packed_block(const std::uint64_t* rows, std::size_t n_rows,
                          const PackedReadView& read, std::uint32_t* counts) {
  active_kernel_ops().ed_star_block(rows, n_rows, read, counts);
}

void hamming_packed_block(const std::uint64_t* rows, std::size_t n_rows,
                          const PackedReadView& read, std::uint32_t* counts) {
  active_kernel_ops().hamming_block(rows, n_rows, read, counts);
}

// ------------------------------------------------- mask-producing forms --

void ed_star_mismatch_words(const std::uint64_t* row,
                            const PackedReadView& read, std::uint64_t* out) {
  for (std::size_t w = 0; w < read.words; ++w)
    out[w] = detail::ed_star_mismatch_word(row[w], read, w);
}

void hamming_mismatch_words(const std::uint64_t* row,
                            const PackedReadView& read, std::uint64_t* out) {
  for (std::size_t w = 0; w < read.words; ++w)
    out[w] = detail::hamming_mismatch_word(row[w], read, w);
}

BitVec lane_flags_to_bitvec(const std::uint64_t* lane_words, std::size_t n) {
  BitVec bits(n);
  const std::size_t words = (n + 31) / 32;
  for (std::size_t w = 0; w < words; ++w) {
    // Compress the even (lane-flag) bits of the word into its low 32 bits.
    std::uint64_t x = lane_words[w] & kLanes;
    x = (x | (x >> 1)) & 0x3333333333333333ULL;
    x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
    x = (x | (x >> 4)) & 0x00FF00FF00FF00FFULL;
    x = (x | (x >> 8)) & 0x0000FFFF0000FFFFULL;
    x = (x | (x >> 16)) & 0x00000000FFFFFFFFULL;
    if (x == 0) continue;
    const std::size_t word_index = w / 2;
    bits.word(word_index) |= x << (32 * (w % 2));
  }
  return bits;
}

}  // namespace asmcap
