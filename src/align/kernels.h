#pragma once
// SIMD-dispatched packed comparison kernels: the hot path of the functional
// backends (the software stand-in for the CAM's massively parallel ED*/HD
// comparison). One scalar reference implementation plus optional AVX2 and
// NEON tiers, compiled per-file with the right -m flags (CMake object
// libraries), selected at runtime by CPU detection and overridable with
// ASMCAP_KERNEL=scalar|avx2|neon for testing.
//
// Bit-identity contract: every tier returns exactly the same counts as the
// scalar tier on every input (counts are exact integer popcounts, never
// approximations), so decisions, energy ledgers, and decision digests are
// independent of the tier that computed them — enforced by
// tests/test_kernels.cpp and by the scalar-forced CI leg, and required of
// any future tier (docs/determinism.md).
//
// The block kernels take N stored rows against ONE read so the
// read-derived work — neighbour alignments (R[i-1]/R[i+1] lane carries)
// and boundary masks — is computed once per (read, rotation) in a
// PackedReadView instead of once per (segment, read).
//
// Ownership: PackedReadView and PackedRowMatrix own their word storage.
// Thread-safety: all kernel functions are pure and thread-safe; the active
// tier is a single atomic read per dispatch. set_active_kernel_tier is
// safe to call concurrently with kernel execution (tiers are
// count-identical, so a racing dispatch cannot change any result), but is
// intended for tests and startup configuration.
// Reentrancy: nothing here blocks or dispatches to a pool.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "genome/sequence.h"
#include "util/bitvec.h"

namespace asmcap {

/// Implementation tiers, in ascending preference order. A tier is usable
/// when it was compiled in (CMake arch check) AND the running CPU supports
/// it (CPUID at startup).
enum class KernelTier : std::uint8_t { Scalar = 0, Avx2 = 1, Neon = 2 };

const char* to_string(KernelTier tier);

/// Read-derived operands of the ED*/Hamming kernels, precomputed once per
/// (read, rotation) and shared by every stored row compared against it:
/// the packed read, its +/-1 neighbour alignments (lane shifts with
/// cross-word carries), and the boundary/tail lane masks. All vectors hold
/// `words` = ceil(n/32) words.
struct PackedReadView {
  std::vector<std::uint64_t> r;        ///< Read, 2-bit packed (tail zeroed).
  std::vector<std::uint64_t> r_prev;   ///< R[i-1] aligned into lane i.
  std::vector<std::uint64_t> r_next;   ///< R[i+1] aligned into lane i.
  std::vector<std::uint64_t> left_ok;  ///< Lane mask: cell has a left nbr.
  std::vector<std::uint64_t> right_ok; ///< Lane mask: cell has a right nbr.
  std::vector<std::uint64_t> valid;    ///< Lane mask: cell index < n.
  std::size_t n = 0;                   ///< Sequence length in bases.
  std::size_t words = 0;               ///< ceil(n / 32).

  PackedReadView() = default;
  /// `neighbours = false` builds a Hamming-only view: r/valid only, the
  /// ED*-specific alignments and boundary masks left empty (the Hamming
  /// kernels never read them).
  explicit PackedReadView(const Sequence& read, bool neighbours = true);
  /// From pre-packed words (Sequence::packed_words layout, tail bits zero).
  PackedReadView(const std::vector<std::uint64_t>& read_words, std::size_t n,
                 bool neighbours = true);
};

/// Row-major 2-bit packed segment storage for the block kernels: row g
/// occupies words [g * words_per_row, (g+1) * words_per_row). This is the
/// resident form of the functional backends' reference database.
class PackedRowMatrix {
 public:
  PackedRowMatrix() = default;
  /// Packs `rows` (each of length `cols`) contiguously. Throws
  /// std::invalid_argument on a width mismatch.
  PackedRowMatrix(const std::vector<Sequence>& rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t words_per_row() const { return words_per_row_; }
  const std::uint64_t* data() const { return words_.data(); }
  const std::uint64_t* row(std::size_t g) const {
    return words_.data() + g * words_per_row_;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t words_per_row_ = 0;
};

/// One tier's kernel implementations. `rows` is row-major packed storage
/// with `read.words` words per row; counts[g] receives the exact
/// mismatched-cell count of row g against the read. ed_star_block needs a
/// full view; hamming_block reads only view.r (a neighbours-free view is
/// sufficient — this is a contract every tier must keep).
struct KernelOps {
  KernelTier tier;
  void (*ed_star_block)(const std::uint64_t* rows, std::size_t n_rows,
                        const PackedReadView& read, std::uint32_t* counts);
  void (*hamming_block)(const std::uint64_t* rows, std::size_t n_rows,
                        const PackedReadView& read, std::uint32_t* counts);
};

// ------------------------------------------------------- tier selection --

/// Tiers compiled into this binary (scalar always; AVX2/NEON per arch),
/// in ascending preference order.
std::vector<KernelTier> compiled_kernel_tiers();

/// True when `tier` was compiled in AND the running CPU executes it.
bool kernel_tier_available(KernelTier tier);

/// Best available tier on this machine (ignores ASMCAP_KERNEL).
KernelTier detect_kernel_tier();

/// Pure resolution of an ASMCAP_KERNEL override: nullptr or "" yields
/// `detected`; "scalar"/"avx2"/"neon" select that tier (throwing
/// std::runtime_error when it is not available); anything else throws
/// std::invalid_argument. Exposed for tests.
KernelTier resolve_kernel_tier(const char* env_value, KernelTier detected);

/// resolve_kernel_tier applied to the current ASMCAP_KERNEL environment
/// value and detect_kernel_tier(). Re-reads the environment on every call;
/// the cached selection below reads it once.
KernelTier resolve_kernel_tier_from_env();

/// The tier the dispatched kernels run on. Initialised on first use from
/// ASMCAP_KERNEL (or CPU detection); subsequent calls are one atomic load.
KernelTier active_kernel_tier();

/// Overrides the active tier (tests, benchmarks). Throws std::runtime_error
/// when the tier is not available in this binary / on this CPU.
void set_active_kernel_tier(KernelTier tier);

/// Implementation table of a compiled tier. Throws std::runtime_error for
/// tiers not compiled into this binary. Runtime CPU support is NOT checked
/// here (callers iterating compiled tiers must check
/// kernel_tier_available before executing).
const KernelOps& kernel_ops(KernelTier tier);

/// Implementation table of the active tier.
const KernelOps& active_kernel_ops();

// ------------------------------------------------------- block kernels --

/// counts[g] = ED*(row g, read) for g in [0, n_rows): dispatched to the
/// active tier. Exact mismatched-cell counts, identical on every tier.
void ed_star_packed_block(const std::uint64_t* rows, std::size_t n_rows,
                          const PackedReadView& read, std::uint32_t* counts);

/// counts[g] = Hamming(row g, read): dispatched to the active tier.
void hamming_packed_block(const std::uint64_t* rows, std::size_t n_rows,
                          const PackedReadView& read, std::uint32_t* counts);

// ------------------------------------------------- mask-producing forms --

/// Per-word ED* mismatch flags of one stored row against the view: out[w]
/// holds, in the LOW bit of each 2-bit lane, whether that cell mismatches
/// (the cell-output vector O driving the matchline capacitors). `out` must
/// hold read.words words. Scalar-word implementation (the mask consumers
/// are off the counting hot path); counts and masks always agree.
void ed_star_mismatch_words(const std::uint64_t* row,
                            const PackedReadView& read, std::uint64_t* out);

/// Per-word Hamming mismatch flags, same layout as ed_star_mismatch_words.
void hamming_mismatch_words(const std::uint64_t* row,
                            const PackedReadView& read, std::uint64_t* out);

/// Compresses per-lane flag words (low bit of each 2-bit lane, as produced
/// by the mismatch-word forms) into a dense BitVec of n bits.
BitVec lane_flags_to_bitvec(const std::uint64_t* lane_words, std::size_t n);

}  // namespace asmcap
