#pragma once
// Internal: per-tier kernel entry points and the shared scalar-word row
// helpers. The AVX2/NEON tiers reuse ed_star_row_scalar /
// hamming_row_scalar for their sub-vector-width tail words, so every tier
// computes the exact same counts by construction. Not part of the public
// API — include align/kernels.h instead.
//
// The helpers are `static` (internal linkage), NOT `inline`: this header
// is included by translation units compiled with different ISA flags
// (kernels.cpp at the baseline, kernels_avx2.cpp with -mavx2), and an
// inline (comdat) definition would let the linker keep whichever TU's
// copy it saw first — possibly the AVX2-codegen one — inside the scalar
// dispatch path, breaking the fallback tier on non-AVX2 CPUs. With
// internal linkage every TU calls the copy compiled with its own flags.

#include <bit>
#include <cstddef>
#include <cstdint>

#include "align/kernels.h"

namespace asmcap::detail {

/// Low bit of every 2-bit lane.
inline constexpr std::uint64_t kLanes = 0x5555555555555555ULL;

/// Per-lane equality of two packed words: low lane bit set iff the 2-bit
/// codes agree.
static inline std::uint64_t lane_eq(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t x = a ^ b;
  return ~(x | (x >> 1)) & kLanes;
}

/// ED* mismatch flags of one packed word `q` of a stored row (word index
/// w) against the view: low lane bit set iff the cell mismatches.
static inline std::uint64_t ed_star_mismatch_word(std::uint64_t q,
                                                  const PackedReadView& view,
                                                  std::size_t w) {
  const std::uint64_t match =
      lane_eq(q, view.r[w]) | (lane_eq(q, view.r_prev[w]) & view.left_ok[w]) |
      (lane_eq(q, view.r_next[w]) & view.right_ok[w]);
  return ~match & view.valid[w];
}

/// Hamming mismatch flags of one packed word (tail lanes of both operands
/// are zero, so they never contribute). Only reads view.r — usable with a
/// neighbours-free view.
static inline std::uint64_t hamming_mismatch_word(std::uint64_t q,
                                                  const PackedReadView& view,
                                                  std::size_t w) {
  const std::uint64_t x = q ^ view.r[w];
  return (x | (x >> 1)) & kLanes;
}

/// Scalar-word ED* count of words [w_begin, w_end) of one row.
static inline std::uint32_t ed_star_row_scalar(const std::uint64_t* row,
                                               const PackedReadView& view,
                                               std::size_t w_begin,
                                               std::size_t w_end) {
  std::uint32_t count = 0;
  for (std::size_t w = w_begin; w < w_end; ++w)
    count += static_cast<std::uint32_t>(
        std::popcount(ed_star_mismatch_word(row[w], view, w)));
  return count;
}

/// Scalar-word Hamming count of words [w_begin, w_end) of one row.
static inline std::uint32_t hamming_row_scalar(const std::uint64_t* row,
                                               const PackedReadView& view,
                                               std::size_t w_begin,
                                               std::size_t w_end) {
  std::uint32_t count = 0;
  for (std::size_t w = w_begin; w < w_end; ++w)
    count += static_cast<std::uint32_t>(
        std::popcount(hamming_mismatch_word(row[w], view, w)));
  return count;
}

// Tier entry points. The scalar pair is always compiled; the AVX2/NEON
// pairs live in their own translation units compiled with the right -m
// flags (see CMakeLists.txt) and are referenced only when the matching
// ASMCAP_HAVE_* macro is defined.
void ed_star_block_scalar(const std::uint64_t* rows, std::size_t n_rows,
                          const PackedReadView& read, std::uint32_t* counts);
void hamming_block_scalar(const std::uint64_t* rows, std::size_t n_rows,
                          const PackedReadView& read, std::uint32_t* counts);
void ed_star_block_avx2(const std::uint64_t* rows, std::size_t n_rows,
                        const PackedReadView& read, std::uint32_t* counts);
void hamming_block_avx2(const std::uint64_t* rows, std::size_t n_rows,
                        const PackedReadView& read, std::uint32_t* counts);
void ed_star_block_neon(const std::uint64_t* rows, std::size_t n_rows,
                        const PackedReadView& read, std::uint32_t* counts);
void hamming_block_neon(const std::uint64_t* rows, std::size_t n_rows,
                        const PackedReadView& read, std::uint32_t* counts);

}  // namespace asmcap::detail
