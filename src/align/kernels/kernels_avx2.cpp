// AVX2 kernel tier: 4 packed words (128 cells) per vector op. Compiled in
// its own object library with -mavx2 (see CMakeLists.txt); only executed
// after __builtin_cpu_supports("avx2") says the CPU can. Counts are exact
// popcounts, bit-identical to the scalar tier: the vector body computes the
// same per-word mismatch flags, and sub-vector tail words fall through to
// the shared scalar row helpers.

#include "align/kernels/kernel_impl.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace asmcap::detail {

namespace {

/// Per-lane equality of four packed words at once (the vector form of
/// lane_eq): low lane bit set iff the 2-bit codes agree.
inline __m256i lane_eq4(__m256i a, __m256i b, __m256i lanes) {
  const __m256i x = _mm256_xor_si256(a, b);
  return _mm256_andnot_si256(
      _mm256_or_si256(x, _mm256_srli_epi64(x, 1)), lanes);
}

/// Per-64-bit-word popcounts of `v`, summed into 4 lanes of 64-bit counts
/// (classic nibble-LUT pshufb popcount + sad accumulation).
inline __m256i popcount4(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low4 = _mm256_set1_epi8(0x0F);
  const __m256i lo = _mm256_and_si256(v, low4);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(v, 4), low4);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

inline std::uint32_t horizontal_sum4(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(sum)) +
      static_cast<std::uint64_t>(
          _mm_cvtsi128_si64(_mm_unpackhi_epi64(sum, sum))));
}

}  // namespace

void ed_star_block_avx2(const std::uint64_t* rows, std::size_t n_rows,
                        const PackedReadView& read, std::uint32_t* counts) {
  const std::size_t W = read.words;
  const std::size_t W4 = W & ~std::size_t{3};
  const __m256i lanes = _mm256_set1_epi64x(
      static_cast<long long>(kLanes));
  for (std::size_t g = 0; g < n_rows; ++g) {
    const std::uint64_t* row = rows + g * W;
    __m256i acc = _mm256_setzero_si256();
    for (std::size_t w = 0; w < W4; w += 4) {
      const __m256i q = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(row + w));
      const __m256i r = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(read.r.data() + w));
      const __m256i rp = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(read.r_prev.data() + w));
      const __m256i rn = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(read.r_next.data() + w));
      const __m256i lok = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(read.left_ok.data() + w));
      const __m256i rok = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(read.right_ok.data() + w));
      const __m256i val = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(read.valid.data() + w));
      const __m256i match = _mm256_or_si256(
          lane_eq4(q, r, lanes),
          _mm256_or_si256(
              _mm256_and_si256(lane_eq4(q, rp, lanes), lok),
              _mm256_and_si256(lane_eq4(q, rn, lanes), rok)));
      acc = _mm256_add_epi64(acc,
                             popcount4(_mm256_andnot_si256(match, val)));
    }
    counts[g] = horizontal_sum4(acc) + ed_star_row_scalar(row, read, W4, W);
  }
}

void hamming_block_avx2(const std::uint64_t* rows, std::size_t n_rows,
                        const PackedReadView& read, std::uint32_t* counts) {
  const std::size_t W = read.words;
  const std::size_t W4 = W & ~std::size_t{3};
  const __m256i lanes = _mm256_set1_epi64x(
      static_cast<long long>(kLanes));
  for (std::size_t g = 0; g < n_rows; ++g) {
    const std::uint64_t* row = rows + g * W;
    __m256i acc = _mm256_setzero_si256();
    for (std::size_t w = 0; w < W4; w += 4) {
      const __m256i q = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(row + w));
      const __m256i r = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(read.r.data() + w));
      const __m256i x = _mm256_xor_si256(q, r);
      const __m256i mis = _mm256_and_si256(
          _mm256_or_si256(x, _mm256_srli_epi64(x, 1)), lanes);
      acc = _mm256_add_epi64(acc, popcount4(mis));
    }
    counts[g] = horizontal_sum4(acc) + hamming_row_scalar(row, read, W4, W);
  }
}

}  // namespace asmcap::detail

#else
#error "kernels_avx2.cpp must be compiled with -mavx2 (CMake object library)"
#endif  // __AVX2__
