// NEON kernel tier: 2 packed words (64 cells) per vector op. Compiled only
// on AArch64, where NEON (Advanced SIMD) is architecturally mandatory, so
// compiled implies runnable — no runtime CPUID gate needed. Counts are
// exact popcounts, bit-identical to the scalar tier: the vector body
// computes the same per-word mismatch flags, and the odd tail word falls
// through to the shared scalar row helpers.

#include "align/kernels/kernel_impl.h"

#if defined(__ARM_NEON) || defined(__aarch64__)

#include <arm_neon.h>

namespace asmcap::detail {

namespace {

/// Per-lane equality of two packed words at once (vector lane_eq).
inline uint64x2_t lane_eq2(uint64x2_t a, uint64x2_t b, uint64x2_t lanes) {
  const uint64x2_t x = veorq_u64(a, b);
  return vbicq_u64(lanes, vorrq_u64(x, vshrq_n_u64(x, 1)));
}

/// Per-128-bit popcount accumulated into a uint64x2_t of per-word counts.
inline uint64x2_t popcount2(uint64x2_t v) {
  return vpaddlq_u32(
      vpaddlq_u16(vpaddlq_u8(vcntq_u8(vreinterpretq_u8_u64(v)))));
}

inline std::uint32_t horizontal_sum2(uint64x2_t acc) {
  return static_cast<std::uint32_t>(vgetq_lane_u64(acc, 0) +
                                    vgetq_lane_u64(acc, 1));
}

}  // namespace

void ed_star_block_neon(const std::uint64_t* rows, std::size_t n_rows,
                        const PackedReadView& read, std::uint32_t* counts) {
  const std::size_t W = read.words;
  const std::size_t W2 = W & ~std::size_t{1};
  const uint64x2_t lanes = vdupq_n_u64(kLanes);
  for (std::size_t g = 0; g < n_rows; ++g) {
    const std::uint64_t* row = rows + g * W;
    uint64x2_t acc = vdupq_n_u64(0);
    for (std::size_t w = 0; w < W2; w += 2) {
      const uint64x2_t q = vld1q_u64(row + w);
      const uint64x2_t r = vld1q_u64(read.r.data() + w);
      const uint64x2_t rp = vld1q_u64(read.r_prev.data() + w);
      const uint64x2_t rn = vld1q_u64(read.r_next.data() + w);
      const uint64x2_t lok = vld1q_u64(read.left_ok.data() + w);
      const uint64x2_t rok = vld1q_u64(read.right_ok.data() + w);
      const uint64x2_t val = vld1q_u64(read.valid.data() + w);
      const uint64x2_t match = vorrq_u64(
          lane_eq2(q, r, lanes),
          vorrq_u64(vandq_u64(lane_eq2(q, rp, lanes), lok),
                    vandq_u64(lane_eq2(q, rn, lanes), rok)));
      acc = vaddq_u64(acc, popcount2(vbicq_u64(val, match)));
    }
    counts[g] = horizontal_sum2(acc) + ed_star_row_scalar(row, read, W2, W);
  }
}

void hamming_block_neon(const std::uint64_t* rows, std::size_t n_rows,
                        const PackedReadView& read, std::uint32_t* counts) {
  const std::size_t W = read.words;
  const std::size_t W2 = W & ~std::size_t{1};
  const uint64x2_t lanes = vdupq_n_u64(kLanes);
  for (std::size_t g = 0; g < n_rows; ++g) {
    const std::uint64_t* row = rows + g * W;
    uint64x2_t acc = vdupq_n_u64(0);
    for (std::size_t w = 0; w < W2; w += 2) {
      const uint64x2_t q = vld1q_u64(row + w);
      const uint64x2_t r = vld1q_u64(read.r.data() + w);
      const uint64x2_t x = veorq_u64(q, r);
      const uint64x2_t mis =
          vandq_u64(vorrq_u64(x, vshrq_n_u64(x, 1)), lanes);
      acc = vaddq_u64(acc, popcount2(mis));
    }
    counts[g] = horizontal_sum2(acc) + hamming_row_scalar(row, read, W2, W);
  }
}

}  // namespace asmcap::detail

#else
#error "kernels_neon.cpp must be compiled for an Advanced-SIMD target"
#endif  // __ARM_NEON || __aarch64__
