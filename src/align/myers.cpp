#include "align/myers.h"

#include <limits>
#include <stdexcept>

namespace asmcap {

MyersPattern::MyersPattern(const Sequence& pattern)
    : m_(pattern.size()), blocks_((pattern.size() + 63) / 64) {
  if (m_ == 0) throw std::invalid_argument("MyersPattern: empty pattern");
  for (auto& masks : peq_) masks.assign(blocks_, 0);
  for (std::size_t i = 0; i < m_; ++i) {
    peq_[code_of(pattern[i])][i / 64] |= std::uint64_t{1} << (i % 64);
  }
}

template <bool kSemiGlobal>
std::size_t MyersPattern::run(const Sequence& text, std::size_t cap,
                              std::size_t* best_end) const {
  // Hyyrö's block-based Myers. VP/VN per block; horizontal deltas carried
  // between blocks via {-1, 0, +1}. The score is tracked at the last row of
  // the last block. For global distance the horizontal delta entering the
  // top block is +1 per column (boundary D[0][j] = j); for semi-global it
  // is 0 (free text prefix).
  std::vector<std::uint64_t> vp(blocks_, ~std::uint64_t{0});
  std::vector<std::uint64_t> vn(blocks_, 0);
  const std::size_t last = blocks_ - 1;
  const std::uint64_t last_bit = std::uint64_t{1} << ((m_ - 1) % 64);

  std::size_t score = m_;
  std::size_t best = std::numeric_limits<std::size_t>::max();
  std::size_t best_pos = 0;
  if (kSemiGlobal) {
    best = m_;  // matching the empty text substring costs m.
    best_pos = 0;
  }

  for (std::size_t j = 0; j < text.size(); ++j) {
    const std::uint8_t c = code_of(text[j]);
    int hin = kSemiGlobal ? 0 : +1;
    for (std::size_t b = 0; b < blocks_; ++b) {
      std::uint64_t eq = peq_[c][b];
      const std::uint64_t pv = vp[b];
      const std::uint64_t mv = vn[b];
      if (hin < 0) eq |= 1;
      const std::uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
      std::uint64_t ph = mv | ~(xh | pv);
      std::uint64_t mh = pv & xh;

      int hout = 0;
      const std::uint64_t msb = b == last ? last_bit : (std::uint64_t{1} << 63);
      if (ph & msb) hout = +1;
      else if (mh & msb) hout = -1;

      ph <<= 1;
      mh <<= 1;
      if (hin > 0) ph |= 1;
      if (hin < 0) mh |= 1;

      const std::uint64_t xv = eq | mv;
      vp[b] = mh | ~(xv | ph);
      vn[b] = ph & xv;
      hin = hout;
    }
    score = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(score) + hin);
    if (kSemiGlobal) {
      if (score < best) {
        best = score;
        best_pos = j + 1;
      }
    } else if (cap != std::numeric_limits<std::size_t>::max()) {
      // Optional monotone pruning could go here; the plain loop is already
      // fast enough for 256-base rows, so we keep it branch-light.
    }
  }

  if (kSemiGlobal) {
    if (best_end != nullptr) *best_end = best_pos;
    return best;
  }
  return score;
}

std::size_t MyersPattern::distance(const Sequence& text) const {
  return run<false>(text, std::numeric_limits<std::size_t>::max(), nullptr);
}

bool MyersPattern::within(const Sequence& text, std::size_t threshold) const {
  return distance(text) <= threshold;
}

std::size_t MyersPattern::best_semiglobal(const Sequence& text,
                                          std::size_t* best_end) const {
  return run<true>(text, std::numeric_limits<std::size_t>::max(), best_end);
}

std::size_t myers_edit_distance(const Sequence& a, const Sequence& b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  return MyersPattern(a).distance(b);
}

}  // namespace asmcap
