#pragma once
// Myers bit-parallel edit distance (Hyyrö's block formulation). Computes
// global Levenshtein distance in O(n * ceil(m/64)) word operations — the
// fast exact kernel behind ground-truth labelling and the CM-CPU baseline's
// optimised variant.

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "genome/sequence.h"

namespace asmcap {

/// Global edit distance via bit-parallel DP. Matches edit_distance() exactly
/// (property-tested) while being ~64x cheaper per cell.
std::size_t myers_edit_distance(const Sequence& a, const Sequence& b);

/// Reusable pattern preprocessing: build once per read, stream many texts.
class MyersPattern {
 public:
  explicit MyersPattern(const Sequence& pattern);

  /// Global distance pattern vs text.
  std::size_t distance(const Sequence& text) const;

  /// Threshold query with the same semantics as banded_edit_distance:
  /// returns true iff distance(text) <= threshold.
  bool within(const Sequence& text, std::size_t threshold) const;

  /// Semi-global search: minimum over all end positions in `text` of the
  /// edit distance between the whole pattern and a text substring ending
  /// there (text prefix and suffix free on the left). Returns the minimum
  /// distance and writes the best end position (exclusive) when `best_end`
  /// is non-null. This is the classical approximate-pattern-matching use.
  std::size_t best_semiglobal(const Sequence& text,
                              std::size_t* best_end = nullptr) const;

  std::size_t length() const { return m_; }

 private:
  template <bool kSemiGlobal>
  std::size_t run(const Sequence& text, std::size_t cap,
                  std::size_t* best_end) const;

  std::size_t m_ = 0;
  std::size_t blocks_ = 0;
  /// Match masks: peq_[base][block], bit r set iff pattern[block*64+r]==base.
  std::array<std::vector<std::uint64_t>, kBaseCount> peq_;
};

}  // namespace asmcap
