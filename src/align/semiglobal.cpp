#include "align/semiglobal.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "align/myers.h"

namespace asmcap {

SemiGlobalHit semiglobal_align_window(const Sequence& read,
                                      const Sequence& reference,
                                      std::size_t window_begin,
                                      std::size_t window_end) {
  if (read.empty()) throw std::invalid_argument("semiglobal_align: empty read");
  if (window_end > reference.size() || window_begin > window_end)
    throw std::out_of_range("semiglobal_align_window: bad window");

  const Sequence window =
      reference.subseq(window_begin, window_end - window_begin);

  // Forward pass with the bit-parallel kernel to find the best end.
  const MyersPattern pattern(read);
  std::size_t best_end_local = 0;
  const std::size_t best = pattern.best_semiglobal(window, &best_end_local);

  // Backward pass: align the reversed read against the reversed prefix
  // ending at best_end to find where the window begins. The best start is
  // the end position of the reverse alignment mirrored back.
  SemiGlobalHit hit;
  hit.distance = best;
  hit.end = window_begin + best_end_local;

  if (best_end_local == 0) {
    hit.begin = hit.end;
    return hit;
  }
  Sequence rev_read;
  rev_read.reserve(read.size());
  for (std::size_t i = read.size(); i-- > 0;) rev_read.push_back(read[i]);
  Sequence rev_prefix;
  rev_prefix.reserve(best_end_local);
  for (std::size_t i = best_end_local; i-- > 0;)
    rev_prefix.push_back(window[i]);
  const MyersPattern rev_pattern(rev_read);
  std::size_t rev_end = 0;
  rev_pattern.best_semiglobal(rev_prefix, &rev_end);
  hit.begin = hit.end - rev_end;
  return hit;
}

SemiGlobalHit semiglobal_align(const Sequence& read, const Sequence& reference) {
  return semiglobal_align_window(read, reference, 0, reference.size());
}

}  // namespace asmcap
