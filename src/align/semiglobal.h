#pragma once
// Semi-global alignment (read fully consumed, reference ends free): the
// verification step of seed-and-extend mapping and the gold-standard
// locator used by the examples.

#include <cstddef>

#include "genome/sequence.h"

namespace asmcap {

struct SemiGlobalHit {
  std::size_t distance = 0;   ///< Best edit distance of read vs any ref window.
  std::size_t end = 0;        ///< Exclusive end position of the best window.
  std::size_t begin = 0;      ///< Inclusive start position (via traceback).
};

/// Dynamic-programming semi-global alignment of `read` against `reference`.
/// O(|read| * |reference|) time, O(|read|) memory for the distance, one
/// extra backward pass to recover the window start.
SemiGlobalHit semiglobal_align(const Sequence& read, const Sequence& reference);

/// Distance-only variant restricted to reference window [window_begin,
/// window_end); positions reported in global reference coordinates.
SemiGlobalHit semiglobal_align_window(const Sequence& read,
                                      const Sequence& reference,
                                      std::size_t window_begin,
                                      std::size_t window_end);

}  // namespace asmcap
