#include "asmcap/accelerator.h"

#include <algorithm>
#include <stdexcept>

#include "cam/periphery.h"

namespace asmcap {

namespace {
// Pass salts for the per-query RNG tree (see backend.h): ED* pass p forks
// stream p; the HD pass and the HDAC selection coins get their own salts,
// out of reach of any realistic rotation-schedule length.
constexpr std::uint64_t kHdPassSalt = 0x4844'0000ULL;
constexpr std::uint64_t kHdacSelectSalt = 0x5E1E'C700ULL;
}  // namespace

AsmcapAccelerator::AsmcapAccelerator(AsmcapConfig config)
    : config_(config),
      mapper_(config.array_count, config.array_rows),
      controller_(config),
      timing_(config.process),
      rng_(config.seed) {
  validate(config_.process);
}

void AsmcapAccelerator::load_reference(const std::vector<Sequence>& segments) {
  if (segments_loaded_ != 0)
    throw std::logic_error("AsmcapAccelerator: reference already loaded");
  const auto locations = mapper_.map_segments(segments.size());
  // Manufacture only the arrays the reference actually needs; capacitor
  // mismatch is drawn from a deterministic silicon stream.
  Rng manufacture = rng_.fork(0x51C0);
  const std::size_t needed = mapper_.arrays_in_use();
  units_.reserve(needed);
  for (std::size_t a = 0; a < needed; ++a)
    units_.emplace_back(config_.array_rows, config_.array_cols,
                        config_.process.charge, config_.ideal_sensing,
                        manufacture);
  for (std::size_t i = 0; i < segments.size(); ++i)
    units_[locations[i].array].write_row(locations[i].row, segments[i]);
  segments_loaded_ = segments.size();

  circuit_backend_ = std::make_unique<CircuitBackend>(
      units_, mapper_, segments_loaded_, config_.array_rows,
      config_.segment_base);
  functional_backend_ = std::make_unique<FunctionalBackend>(segments, config_);
  if (config_.pruning.enabled)
    sketch_ = std::make_unique<BankSketch>(segments, config_.array_cols);

  // One-time load cost: every row write burns decoder+WL+SRAM energy; the
  // arrays write their rows in parallel, so the latency is set by the
  // fullest array.
  const WriteCostParams write_cost;
  load_energy_ = static_cast<double>(segments.size()) *
                 row_write_energy(config_.array_cols, write_cost);
  const std::size_t rows_in_fullest =
      std::min<std::size_t>(segments.size(), config_.array_rows);
  load_latency_ =
      static_cast<double>(rows_in_fullest) * write_cost.latency_per_row;
}

const ExecutionBackend& AsmcapAccelerator::backend() const {
  if (segments_loaded_ == 0)
    throw std::logic_error("AsmcapAccelerator: no reference loaded");
  if (backend_kind_ == BackendKind::Functional) return *functional_backend_;
  return *circuit_backend_;
}

void AsmcapAccelerator::check_read(const Sequence& read) const {
  if (segments_loaded_ == 0)
    throw std::logic_error("AsmcapAccelerator: no reference loaded");
  if (read.size() != config_.array_cols)
    throw std::invalid_argument("AsmcapAccelerator: read width mismatch");
}

QueryResult AsmcapAccelerator::execute(const ExecutionPlan& plan,
                                       const Rng& query_rng) const {
  const ExecutionBackend& backend = this->backend();

  QueryResult result;
  result.plan = plan.summary;

  // ED* pass(es): the original read, plus the rotation schedule when TASR
  // triggered (Algorithm 2's OR-accumulation).
  std::vector<bool> ed_star;
  double energy = 0.0;
  for (std::size_t p = 0; p < plan.ed_star_passes.size(); ++p) {
    PassResult pass =
        backend.run_pass(plan.ed_star_passes[p], MatchMode::EdStar,
                         plan.threshold, query_rng, p);
    energy += pass.energy_joules;
    if (p == 0) {
      ed_star = std::move(pass.decisions);
    } else {
      for (std::size_t g = 0; g < ed_star.size(); ++g)
        ed_star[g] = ed_star[g] || pass.decisions[g];
    }
  }

  // HDAC pass: HD search and probabilistic selection (Algorithm 1). The
  // selection coin of each row is forked from its global segment id, so
  // the outcome does not depend on which rows share its bank.
  if (plan.hd_pass) {
    const PassResult hd =
        backend.run_pass(plan.ed_star_passes.front(), MatchMode::Hamming,
                         plan.threshold, query_rng, kHdPassSalt);
    energy += hd.energy_joules;
    const Hdac& hdac = planner().hdac();
    const Rng select_rng = query_rng.fork(kHdacSelectSalt);
    for (std::size_t g = 0; g < ed_star.size(); ++g) {
      if (hd.decisions[g] == ed_star[g]) continue;
      Rng coin = select_rng.fork(
          static_cast<std::uint64_t>(config_.segment_base + g));
      ed_star[g] = hdac.combine(hd.decisions[g], ed_star[g], plan.hdac_p,
                                coin);
    }
  }

  result.decisions = std::move(ed_star);
  for (std::size_t g = 0; g < result.decisions.size(); ++g)
    if (result.decisions[g]) result.matched_segments.push_back(g);

  result.latency_seconds =
      timing_.asmcap_query_latency(plan.summary.total_searches());
  result.energy_joules = energy;
  return result;
}

QueryResult AsmcapAccelerator::search(const Sequence& read,
                                      std::size_t threshold,
                                      StrategyMode mode) {
  check_read(read);
  const ExecutionPlan plan = planner().build(read, threshold, rates_, mode);
  // One advance of the sequential stream per query; everything inside the
  // query forks from the resulting stream (see backend.h).
  const Rng query_rng = rng_.fork(rng_.next());
  QueryResult result = execute(plan, query_rng);
  controller_.record(result.plan, result.latency_seconds,
                     result.energy_joules);
  return result;
}

std::vector<QueryResult> AsmcapAccelerator::search_batch(
    const std::vector<Sequence>& reads, std::size_t threshold,
    StrategyMode mode, std::size_t workers) {
  for (const Sequence& read : reads) check_read(read);
  if (reads.empty()) {
    if (segments_loaded_ == 0)
      throw std::logic_error("AsmcapAccelerator: no reference loaded");
    return {};
  }

  // Per-read streams are forked from the current RNG state and a batch
  // epoch: deterministic in read index, independent of worker count, and
  // non-perturbing (fork() leaves rng_ untouched, so a batch never shifts
  // the sequential search() stream).
  const std::uint64_t epoch = ++batch_epoch_;

  std::vector<QueryResult> results(reads.size());
  worker_pool(workers).parallel_for(reads.size(), [&](std::size_t i) {
    const ExecutionPlan plan =
        planner().build(reads[i], threshold, rates_, mode);
    const Rng query_rng =
        rng_.fork((epoch << 32) | static_cast<std::uint64_t>(i));
    results[i] = execute(plan, query_rng);
  });

  // Ledger totals are recorded sequentially in read order.
  for (const QueryResult& result : results)
    controller_.record(result.plan, result.latency_seconds,
                       result.energy_joules);
  return results;
}

}  // namespace asmcap
