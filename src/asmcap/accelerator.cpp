#include "asmcap/accelerator.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "cam/periphery.h"

namespace asmcap {

namespace {
// Pass salts for the per-query RNG tree (see backend.h): ED* pass p forks
// stream p; the HD pass and the HDAC selection coins get their own salts,
// out of reach of any realistic rotation-schedule length.
constexpr std::uint64_t kHdPassSalt = 0x4844'0000ULL;
constexpr std::uint64_t kHdacSelectSalt = 0x5E1E'C700ULL;
// Salt of the construction-time array silicon streams (silicon_root_ fork
// per array index). Kept far above any global segment id so the per-row
// streams (forked per id) and the per-array streams never collide. The
// construction-time draw is decision-irrelevant — every written row is
// re-manufactured from its per-id stream, and unwritten rows never decide
// — it only has to be deterministic per array so clone() and lazy growth
// manufacture identical silicon in any order.
constexpr std::uint64_t kUnitSalt = 0x517E'C0DE'0000'0000ULL;
}  // namespace

AsmcapAccelerator::AsmcapAccelerator(AsmcapConfig config)
    : config_(config),
      controller_(config),
      timing_(config.process),
      silicon_root_(
          Rng(config.silicon_seed != 0 ? config.silicon_seed : config.seed)
              .fork(0x51C0)),
      next_auto_id_(static_cast<std::uint64_t>(config.segment_base)),
      rng_(config.seed) {
  validate(config_.process);
  circuit_backend_ =
      std::make_unique<CircuitBackend>(units_, dir_, config_.array_rows);
  functional_backend_ = std::make_unique<FunctionalBackend>(config_, dir_);
  if (config_.pruning.enabled)
    sketch_ = std::make_unique<BankSketch>(config_.array_cols);
}

void AsmcapAccelerator::ensure_units(std::size_t arrays) {
  if (arrays > config_.array_count)
    throw DbError(DbErrorKind::CapacityExceeded,
                  "AsmcapAccelerator: array count exceeded");
  while (units_.size() < arrays) {
    Rng unit_rng = silicon_root_.fork(
        kUnitSalt + static_cast<std::uint64_t>(units_.size()));
    units_.emplace_back(config_.array_rows, config_.array_cols,
                        config_.process.charge, config_.ideal_sensing,
                        unit_rng);
  }
}

void AsmcapAccelerator::write_slot(std::size_t slot, std::uint64_t id,
                                   const Sequence& segment) {
  const std::size_t a = slot / config_.array_rows;
  const std::size_t r = slot % config_.array_rows;
  ensure_units(a + 1);
  if (slot < dir_.slots() && !dir_.live[slot]) {
    // Recycling a tombstoned slot: the previous occupant's id is forgotten
    // for good (its state becomes Unknown — ids are never resurrected).
    id_to_slot_.erase(dir_.ids[slot]);
  }
  if (slot >= dir_.slots()) {
    dir_.ids.resize(slot + 1, 0);
    dir_.live.resize(slot + 1, false);
  }
  if (a >= dir_.array_live.size()) dir_.array_live.resize(a + 1, 0);
  // The row's analog silicon is a pure function of its global id: the
  // segment decides identically in whichever slot, array, or bank it
  // lands (docs/determinism.md rule 8).
  Rng silicon = silicon_root_.fork(id);
  units_[a].write_row(r, segment, silicon);
  functional_backend_->write_slot(slot, segment);
  if (sketch_) sketch_->set_row(slot, segment);
  dir_.ids[slot] = id;
  dir_.live[slot] = true;
  ++dir_.array_live[a];
  ++dir_.live_count;
  id_to_slot_[id] = slot;
  if (id != static_cast<std::uint64_t>(config_.segment_base) + slot)
    identity_layout_ = false;
  if (id + 1 > next_auto_id_) next_auto_id_ = id + 1;
}

void AsmcapAccelerator::book_write_cost(std::size_t count,
                                        std::size_t burst_rows) {
  // Every row write burns decoder+WL+SRAM energy; arrays write their rows
  // in parallel, so the burst latency is set by the fullest touched array.
  const WriteCostParams write_cost;
  load_energy_ += static_cast<double>(count) *
                  row_write_energy(config_.array_cols, write_cost);
  load_latency_ +=
      static_cast<double>(burst_rows) * write_cost.latency_per_row;
}

void AsmcapAccelerator::load_reference(const std::vector<Sequence>& segments) {
  if (dir_.slots() != 0)
    throw DbError(DbErrorKind::AlreadyLoaded,
                  "AsmcapAccelerator: reference already loaded");
  append_segments(segments);
}

std::vector<std::uint64_t> AsmcapAccelerator::append_segments(
    const std::vector<Sequence>& segments) {
  std::vector<std::uint64_t> ids(segments.size());
  for (std::size_t i = 0; i < ids.size(); ++i)
    ids[i] = next_auto_id_ + static_cast<std::uint64_t>(i);
  append_segments(segments, ids);
  return ids;
}

void AsmcapAccelerator::append_segments(
    const std::vector<Sequence>& segments,
    const std::vector<std::uint64_t>& ids) {
  if (segments.size() != ids.size())
    throw std::invalid_argument(
        "AsmcapAccelerator: append ids/segments size mismatch");
  if (segments.empty()) return;
  // Validate everything before touching any state (strong exception
  // safety, see db_error.h).
  for (const Sequence& segment : segments)
    if (segment.size() != config_.array_cols)
      throw std::invalid_argument(
          "AsmcapAccelerator: segment width mismatch");
  std::unordered_set<std::uint64_t> fresh;
  fresh.reserve(ids.size());
  for (const std::uint64_t id : ids) {
    if (id < static_cast<std::uint64_t>(config_.segment_base))
      throw std::invalid_argument(
          "AsmcapAccelerator: segment id below segment_base");
    if (id_to_slot_.count(id) != 0 || !fresh.insert(id).second)
      throw DbError(DbErrorKind::DuplicateId,
                    "AsmcapAccelerator: segment id already known");
  }
  if (dir_.live_count + segments.size() > config_.capacity_segments())
    throw DbError(DbErrorKind::CapacityExceeded,
                  "AsmcapAccelerator: reference exceeds capacity");

  // Target slots: recycled tombstones first (lowest slot first), then
  // fresh rows. The capacity check above guarantees enough of both.
  std::vector<std::size_t> targets;
  targets.reserve(segments.size());
  for (std::size_t slot = 0;
       slot < dir_.slots() && targets.size() < segments.size(); ++slot)
    if (!dir_.live[slot]) targets.push_back(slot);
  for (std::size_t next = dir_.slots(); targets.size() < segments.size();
       ++next)
    targets.push_back(next);

  std::vector<std::size_t> burst_per_array;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    write_slot(targets[i], ids[i], segments[i]);
    const std::size_t a = targets[i] / config_.array_rows;
    if (a >= burst_per_array.size()) burst_per_array.resize(a + 1, 0);
    ++burst_per_array[a];
  }
  book_write_cost(segments.size(),
                  *std::max_element(burst_per_array.begin(),
                                    burst_per_array.end()));
}

void AsmcapAccelerator::remove_segments(
    const std::vector<std::uint64_t>& ids) {
  if (ids.empty())
    throw DbError(DbErrorKind::EmptyMutation,
                  "AsmcapAccelerator: remove_segments with no ids");
  // Validate everything before touching any state.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(ids.size());
  for (const std::uint64_t id : ids) {
    const auto it = id_to_slot_.find(id);
    if (it == id_to_slot_.end())
      throw DbError(DbErrorKind::UnknownSegment,
                    "AsmcapAccelerator: unknown segment id");
    if (!dir_.live[it->second] || !seen.insert(id).second)
      throw DbError(DbErrorKind::DoubleDelete,
                    "AsmcapAccelerator: segment already deleted");
  }
  std::vector<std::size_t> burst_per_array;
  for (const std::uint64_t id : ids) {
    const std::size_t slot = id_to_slot_.at(id);
    const std::size_t a = slot / config_.array_rows;
    const std::size_t r = slot % config_.array_rows;
    units_[a].invalidate_row(r);  // all-mismatch mask: zero search energy
    if (sketch_) sketch_->clear_row(slot);
    dir_.live[slot] = false;
    --dir_.array_live[a];
    --dir_.live_count;
    if (a >= burst_per_array.size()) burst_per_array.resize(a + 1, 0);
    ++burst_per_array[a];
  }
  // Tombstoning writes the row's all-mismatch mask: same decoder+WL+SRAM
  // cost as a row write.
  book_write_cost(ids.size(),
                  *std::max_element(burst_per_array.begin(),
                                    burst_per_array.end()));
}

SegmentState AsmcapAccelerator::segment_state(std::uint64_t id) const {
  const auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) return SegmentState::Unknown;
  return dir_.live[it->second] ? SegmentState::Live : SegmentState::Dead;
}

std::vector<std::pair<std::uint64_t, Sequence>>
AsmcapAccelerator::live_segments() const {
  std::vector<std::pair<std::uint64_t, Sequence>> out;
  out.reserve(dir_.live_count);
  for (std::size_t slot = 0; slot < dir_.slots(); ++slot) {
    if (!dir_.live[slot]) continue;
    const std::size_t a = slot / config_.array_rows;
    const std::size_t r = slot % config_.array_rows;
    out.emplace_back(dir_.ids[slot], units_[a].array().row_segment(r));
  }
  return out;
}

std::unique_ptr<AsmcapAccelerator> AsmcapAccelerator::clone() const {
  auto copy = std::make_unique<AsmcapAccelerator>(config_);
  copy->rates_ = rates_;
  copy->backend_kind_ = backend_kind_;
  // Replay the live rows into the same slots: silicon is keyed per global
  // id, so the copy's analog state is identical where it matters (dead and
  // unwritten rows are masked out of every decision and charge exactly
  // zero search energy).
  for (std::size_t slot = 0; slot < dir_.slots(); ++slot) {
    if (!dir_.live[slot]) continue;
    const std::size_t a = slot / config_.array_rows;
    const std::size_t r = slot % config_.array_rows;
    copy->write_slot(slot, dir_.ids[slot], units_[a].array().row_segment(r));
  }
  copy->dir_ = dir_;
  copy->id_to_slot_ = id_to_slot_;
  copy->functional_backend_->ensure_slots(dir_.slots());
  copy->next_auto_id_ = next_auto_id_;
  copy->identity_layout_ = identity_layout_;
  copy->load_energy_ = load_energy_;
  copy->load_latency_ = load_latency_;
  copy->batch_epoch_ = batch_epoch_;
  copy->rng_ = rng_;
  return copy;
}

const ExecutionBackend& AsmcapAccelerator::backend() const {
  check_loaded();
  if (backend_kind_ == BackendKind::Functional) return *functional_backend_;
  return *circuit_backend_;
}

void AsmcapAccelerator::check_loaded() const {
  if (dir_.slots() == 0)
    throw DbError(DbErrorKind::NotLoaded,
                  "AsmcapAccelerator: no reference loaded");
}

void AsmcapAccelerator::check_read(const Sequence& read) const {
  check_loaded();
  if (read.size() != config_.array_cols)
    throw std::invalid_argument("AsmcapAccelerator: read width mismatch");
}

QueryResult AsmcapAccelerator::execute(const ExecutionPlan& plan,
                                       const Rng& query_rng) const {
  const ExecutionBackend& backend = this->backend();

  QueryResult result;
  result.plan = plan.summary;

  // ED* pass(es): the original read, plus the rotation schedule when TASR
  // triggered (Algorithm 2's OR-accumulation).
  std::vector<bool> ed_star;
  double energy = 0.0;
  for (std::size_t p = 0; p < plan.ed_star_passes.size(); ++p) {
    PassResult pass =
        backend.run_pass(plan.ed_star_passes[p], MatchMode::EdStar,
                         plan.threshold, query_rng, p);
    energy += pass.energy_joules;
    if (p == 0) {
      ed_star = std::move(pass.decisions);
    } else {
      for (std::size_t g = 0; g < ed_star.size(); ++g)
        ed_star[g] = ed_star[g] || pass.decisions[g];
    }
  }

  // HDAC pass: HD search and probabilistic selection (Algorithm 1). The
  // selection coin of each row is forked from its global segment id, so
  // the outcome does not depend on which slot or bank stores it (a dead
  // slot decides false on both passes and draws no coin).
  if (plan.hd_pass) {
    const PassResult hd =
        backend.run_pass(plan.ed_star_passes.front(), MatchMode::Hamming,
                         plan.threshold, query_rng, kHdPassSalt);
    energy += hd.energy_joules;
    const Hdac& hdac = planner().hdac();
    const Rng select_rng = query_rng.fork(kHdacSelectSalt);
    for (std::size_t g = 0; g < ed_star.size(); ++g) {
      if (hd.decisions[g] == ed_star[g]) continue;
      Rng coin = select_rng.fork(dir_.ids[g]);
      ed_star[g] = hdac.combine(hd.decisions[g], ed_star[g], plan.hdac_p,
                                coin);
    }
  }

  result.decisions = std::move(ed_star);
  for (std::size_t g = 0; g < result.decisions.size(); ++g)
    if (result.decisions[g]) result.matched_segments.push_back(g);

  result.latency_seconds =
      timing_.asmcap_query_latency(plan.summary.total_searches());
  result.energy_joules = energy;
  return result;
}

QueryResult AsmcapAccelerator::rebase_to_ids(QueryResult raw) const {
  // On a frozen database slot s holds id segment_base + s, so the raw
  // slot-indexed result already IS the id-indexed result.
  if (identity_layout_) return raw;
  const std::uint64_t base =
      static_cast<std::uint64_t>(config_.segment_base);
  const std::size_t space = static_cast<std::size_t>(next_auto_id_ - base);
  QueryResult out;
  out.plan = raw.plan;
  out.latency_seconds = raw.latency_seconds;
  out.energy_joules = raw.energy_joules;
  out.decisions.assign(space, false);
  for (std::size_t slot = 0; slot < raw.decisions.size(); ++slot)
    if (raw.decisions[slot])
      out.decisions[static_cast<std::size_t>(dir_.ids[slot] - base)] = true;
  for (std::size_t g = 0; g < space; ++g)
    if (out.decisions[g]) out.matched_segments.push_back(g);
  return out;
}

QueryResult AsmcapAccelerator::search(const Sequence& read,
                                      std::size_t threshold,
                                      StrategyMode mode) {
  check_read(read);
  const ExecutionPlan plan = planner().build(read, threshold, rates_, mode);
  // One advance of the sequential stream per query; everything inside the
  // query forks from the resulting stream (see backend.h).
  const Rng query_rng = rng_.fork(rng_.next());
  QueryResult result = rebase_to_ids(execute(plan, query_rng));
  controller_.record(result.plan, result.latency_seconds,
                     result.energy_joules);
  return result;
}

std::vector<QueryResult> AsmcapAccelerator::search_batch(
    const std::vector<Sequence>& reads, std::size_t threshold,
    StrategyMode mode, std::size_t workers) {
  for (const Sequence& read : reads) check_read(read);
  if (reads.empty()) {
    check_loaded();
    return {};
  }

  // Per-read streams are forked from the current RNG state and a batch
  // epoch: deterministic in read index, independent of worker count, and
  // non-perturbing (fork() leaves rng_ untouched, so a batch never shifts
  // the sequential search() stream).
  const std::uint64_t epoch = ++batch_epoch_;

  std::vector<QueryResult> results(reads.size());
  worker_pool(workers).parallel_for(reads.size(), [&](std::size_t i) {
    const ExecutionPlan plan =
        planner().build(reads[i], threshold, rates_, mode);
    const Rng query_rng =
        rng_.fork((epoch << 32) | static_cast<std::uint64_t>(i));
    results[i] = rebase_to_ids(execute(plan, query_rng));
  });

  // Ledger totals are recorded sequentially in read order.
  for (const QueryResult& result : results)
    controller_.record(result.plan, result.latency_seconds,
                       result.energy_joules);
  return results;
}

}  // namespace asmcap
