#include "asmcap/accelerator.h"

#include <algorithm>
#include <stdexcept>

#include "cam/periphery.h"

namespace asmcap {

AsmcapAccelerator::AsmcapAccelerator(AsmcapConfig config)
    : config_(config),
      mapper_(config.array_count, config.array_rows),
      controller_(config),
      timing_(config.process),
      rng_(config.seed) {
  validate(config_.process);
}

void AsmcapAccelerator::load_reference(const std::vector<Sequence>& segments) {
  if (segments_loaded_ != 0)
    throw std::logic_error("AsmcapAccelerator: reference already loaded");
  const auto locations = mapper_.map_segments(segments.size());
  // Manufacture only the arrays the reference actually needs; capacitor
  // mismatch is drawn from a deterministic silicon stream.
  Rng manufacture = rng_.fork(0x51C0);
  const std::size_t needed = mapper_.arrays_in_use();
  units_.reserve(needed);
  for (std::size_t a = 0; a < needed; ++a)
    units_.emplace_back(config_.array_rows, config_.array_cols,
                        config_.process.charge, config_.ideal_sensing,
                        manufacture);
  for (std::size_t i = 0; i < segments.size(); ++i)
    units_[locations[i].array].write_row(locations[i].row, segments[i]);
  segments_loaded_ = segments.size();

  // One-time load cost: every row write burns decoder+WL+SRAM energy; the
  // arrays write their rows in parallel, so the latency is set by the
  // fullest array.
  const WriteCostParams write_cost;
  load_energy_ = static_cast<double>(segments.size()) *
                 row_write_energy(config_.array_cols, write_cost);
  const std::size_t rows_in_fullest =
      std::min<std::size_t>(segments.size(), config_.array_rows);
  load_latency_ =
      static_cast<double>(rows_in_fullest) * write_cost.latency_per_row;
}

std::vector<bool> AsmcapAccelerator::pass(const Sequence& read, MatchMode mode,
                                          std::size_t threshold) {
  std::vector<bool> decisions(segments_loaded_, false);
  for (std::size_t a = 0; a < units_.size(); ++a) {
    const RawSearch raw = units_[a].search_raw(read, mode);
    for (std::size_t r = 0; r < config_.array_rows; ++r) {
      const auto segment = mapper_.segment_at(a, r);
      if (!segment) continue;
      decisions[*segment] =
          units_[a].decide(raw.counts[r], raw.vml[r], threshold, rng_);
    }
  }
  return decisions;
}

QueryResult AsmcapAccelerator::search(const Sequence& read,
                                      std::size_t threshold,
                                      StrategyMode mode) {
  if (segments_loaded_ == 0)
    throw std::logic_error("AsmcapAccelerator: no reference loaded");
  if (read.size() != config_.array_cols)
    throw std::invalid_argument("AsmcapAccelerator: read width mismatch");

  const double energy_before = [&] {
    double total = 0.0;
    for (const auto& unit : units_) total += unit.consumed_energy();
    return total;
  }();

  QueryResult result;
  result.plan = controller_.plan(threshold, rates_, mode);

  // ED* pass(es): the original read, plus the rotation schedule when TASR
  // triggered (Algorithm 2's OR-accumulation).
  std::vector<bool> ed_star = pass(read, MatchMode::EdStar, threshold);
  if (result.plan.tasr_triggered) {
    for (const Sequence& rotated : controller_.tasr().schedule(read)) {
      if (rotated == read) continue;  // original already searched
      const std::vector<bool> extra =
          pass(rotated, MatchMode::EdStar, threshold);
      for (std::size_t g = 0; g < ed_star.size(); ++g)
        ed_star[g] = ed_star[g] || extra[g];
    }
  }

  // HDAC pass: HD search and probabilistic selection (Algorithm 1).
  if (result.plan.hd_search) {
    const std::vector<bool> hd = pass(read, MatchMode::Hamming, threshold);
    for (std::size_t g = 0; g < ed_star.size(); ++g)
      ed_star[g] = controller_.hdac().combine(hd[g], ed_star[g],
                                              result.plan.hdac_p, rng_);
  }

  result.decisions = std::move(ed_star);
  for (std::size_t g = 0; g < result.decisions.size(); ++g)
    if (result.decisions[g]) result.matched_segments.push_back(g);

  result.latency_seconds =
      timing_.asmcap_query_latency(result.plan.total_searches());
  double energy_after = 0.0;
  for (const auto& unit : units_) energy_after += unit.consumed_energy();
  result.energy_joules = energy_after - energy_before;
  controller_.record(result.plan, result.latency_seconds, result.energy_joules);
  return result;
}

}  // namespace asmcap
