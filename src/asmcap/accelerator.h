#pragma once
// Top-level ASMCap accelerator (paper Fig. 4a): global buffer + controller
// + a bank of ASMCap arrays, structured as a layered execution engine:
//
//   QueryPlanner  — turns (read, T, mode) into an immutable ExecutionPlan
//   ExecutionBackend — runs the plan's passes (cell-accurate CircuitBackend
//                      or the fast FunctionalBackend)
//   batch engine  — fans a batch of reads across a worker pool with
//                   deterministic per-read RNG forking, so search_batch
//                   results are identical for any worker count
//
// Reference segments are loaded once; reads are then searched in parallel
// against every stored row with the configured correction strategies.
//
// Ownership: the accelerator owns its array units, backends, controller,
// and session pool; backends hold non-owning references into it (hence
// not movable). Thread-safety: the mutating entry points (load_reference,
// search, search_batch, set_*) belong to one control thread at a time;
// execute() is const and thread-safe and is what the batch engine, the
// sharded router, and the streaming service fan across workers.
// Reentrancy: never call back into the accelerator's blocking entry
// points from inside a pool task — parallel_for is not reentrant (see
// util/thread_pool.h). RNG discipline: docs/determinism.md.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "asmcap/array_unit.h"
#include "asmcap/backend.h"
#include "asmcap/config.h"
#include "asmcap/controller.h"
#include "asmcap/mapper.h"
#include "asmcap/planner.h"
#include "asmcap/sketch.h"
#include "circuit/timing.h"
#include "genome/edits.h"
#include "genome/sequence.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace asmcap {

/// Result of one read query.
struct QueryResult {
  /// Global ids of the segments whose rows reported 'match'.
  std::vector<std::size_t> matched_segments;
  /// Per-segment decision bitmap over all loaded segments.
  std::vector<bool> decisions;
  QueryPlan plan;
  double latency_seconds = 0.0;
  double energy_joules = 0.0;
};

class AsmcapAccelerator {
 public:
  explicit AsmcapAccelerator(AsmcapConfig config);

  // Not movable: CircuitBackend holds pointers into units_ and mapper_,
  // which a move would leave dangling.
  AsmcapAccelerator(AsmcapAccelerator&&) = delete;
  AsmcapAccelerator& operator=(AsmcapAccelerator&&) = delete;

  /// Loads reference segments (each must match the array width). May be
  /// called once; capacity is array_count x array_rows segments.
  void load_reference(const std::vector<Sequence>& segments);

  /// Sets the workload error profile used by the offline pre-processing of
  /// HDAC's p and TASR's T_l. Defaults to Condition A rates.
  void set_error_profile(const ErrorRates& rates) { rates_ = rates; }
  const ErrorRates& error_profile() const { return rates_; }

  /// Selects the execution backend for subsequent searches. The circuit
  /// backend (default) is cell-accurate; the functional backend computes
  /// the same decisions (identically under ideal_sensing) an order of
  /// magnitude faster. May be switched at any time.
  void set_backend(BackendKind kind) { backend_kind_ = kind; }
  BackendKind backend_kind() const { return backend_kind_; }
  /// The active backend (valid after load_reference).
  const ExecutionBackend& backend() const;

  /// Searches one read against every loaded segment.
  QueryResult search(const Sequence& read, std::size_t threshold,
                     StrategyMode mode);

  /// Searches a batch of reads, fanning them across `workers` threads.
  /// Each read draws from its own deterministically forked RNG stream, so
  /// the results are identical for any worker count (and never perturb the
  /// accelerator's sequential RNG state). Ledger totals are recorded in
  /// read order.
  std::vector<QueryResult> search_batch(const std::vector<Sequence>& reads,
                                        std::size_t threshold,
                                        StrategyMode mode,
                                        std::size_t workers = 1);

  /// Runs one materialised plan with an explicit query stream. Const and
  /// thread-safe: it never touches the ledger, the sequential RNG, or any
  /// other shared mutable state, and `query_rng` is only forked, never
  /// advanced. This is the entry point the sharded router fans across
  /// banks (every bank executing the same plan against the same stream).
  QueryResult execute(const ExecutionPlan& plan, const Rng& query_rng) const;

  /// The session-owned worker pool (see SessionPool), reused across
  /// search_batch/map_batch calls. NOTE: ThreadPool::parallel_for is not
  /// reentrant — never call back into the pool from inside a task it is
  /// running.
  ThreadPool& worker_pool(std::size_t workers = 0) {
    return pool_.get(workers);
  }

  std::size_t loaded_segments() const { return segments_loaded_; }
  std::size_t arrays_in_use() const { return mapper_.arrays_in_use(); }
  /// One-time cost of loading the reference (decoder + WL + SRAM writes;
  /// rows of different arrays are written in parallel).
  double load_energy_joules() const { return load_energy_; }
  double load_latency_seconds() const { return load_latency_; }
  const AsmcapConfig& config() const { return config_; }
  const Controller& controller() const { return controller_; }
  Controller& controller() { return controller_; }
  const QueryPlanner& planner() const { return controller_.planner(); }
  const TimingModel& timing() const { return timing_; }
  /// The bank's pruning sketch, built at load_reference time when
  /// config().pruning.enabled; nullptr otherwise. Immutable once built.
  const BankSketch* sketch() const { return sketch_.get(); }

 private:
  void check_read(const Sequence& read) const;

  AsmcapConfig config_;
  ErrorRates rates_ = ErrorRates::condition_a();
  ReferenceMapper mapper_;
  Controller controller_;
  TimingModel timing_;
  std::vector<AsmcapArrayUnit> units_;  ///< Only arrays_in_use() are active.
  std::unique_ptr<CircuitBackend> circuit_backend_;
  std::unique_ptr<FunctionalBackend> functional_backend_;
  std::unique_ptr<BankSketch> sketch_;
  BackendKind backend_kind_ = BackendKind::Circuit;
  std::size_t segments_loaded_ = 0;
  double load_energy_ = 0.0;
  double load_latency_ = 0.0;
  std::uint64_t batch_epoch_ = 0;
  Rng rng_;
  SessionPool pool_;
};

}  // namespace asmcap
