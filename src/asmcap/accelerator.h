#pragma once
// Top-level ASMCap accelerator (paper Fig. 4a): global buffer + controller
// + a bank of ASMCap arrays. Reference segments are loaded once; reads are
// then searched in parallel against every stored row with the configured
// correction strategies.

#include <cstddef>
#include <vector>

#include "asmcap/array_unit.h"
#include "asmcap/config.h"
#include "asmcap/controller.h"
#include "asmcap/mapper.h"
#include "circuit/timing.h"
#include "genome/edits.h"
#include "genome/sequence.h"
#include "util/rng.h"

namespace asmcap {

/// Result of one read query.
struct QueryResult {
  /// Global ids of the segments whose rows reported 'match'.
  std::vector<std::size_t> matched_segments;
  /// Per-segment decision bitmap over all loaded segments.
  std::vector<bool> decisions;
  QueryPlan plan;
  double latency_seconds = 0.0;
  double energy_joules = 0.0;
};

class AsmcapAccelerator {
 public:
  explicit AsmcapAccelerator(AsmcapConfig config);

  /// Loads reference segments (each must match the array width). May be
  /// called once; capacity is array_count x array_rows segments.
  void load_reference(const std::vector<Sequence>& segments);

  /// Sets the workload error profile used by the offline pre-processing of
  /// HDAC's p and TASR's T_l. Defaults to Condition A rates.
  void set_error_profile(const ErrorRates& rates) { rates_ = rates; }
  const ErrorRates& error_profile() const { return rates_; }

  /// Searches one read against every loaded segment.
  QueryResult search(const Sequence& read, std::size_t threshold,
                     StrategyMode mode);

  std::size_t loaded_segments() const { return segments_loaded_; }
  std::size_t arrays_in_use() const { return mapper_.arrays_in_use(); }
  /// One-time cost of loading the reference (decoder + WL + SRAM writes;
  /// rows of different arrays are written in parallel).
  double load_energy_joules() const { return load_energy_; }
  double load_latency_seconds() const { return load_latency_; }
  const AsmcapConfig& config() const { return config_; }
  const Controller& controller() const { return controller_; }
  Controller& controller() { return controller_; }
  const TimingModel& timing() const { return timing_; }

 private:
  /// Runs one ED*/HD pass over all in-use arrays; returns per-global-segment
  /// match decisions at the threshold.
  std::vector<bool> pass(const Sequence& read, MatchMode mode,
                         std::size_t threshold);

  AsmcapConfig config_;
  ErrorRates rates_ = ErrorRates::condition_a();
  ReferenceMapper mapper_;
  Controller controller_;
  TimingModel timing_;
  std::vector<AsmcapArrayUnit> units_;  ///< Only arrays_in_use() are active.
  std::size_t segments_loaded_ = 0;
  double load_energy_ = 0.0;
  double load_latency_ = 0.0;
  Rng rng_;
};

}  // namespace asmcap
