#pragma once
// Top-level ASMCap accelerator (paper Fig. 4a): global buffer + controller
// + a bank of ASMCap arrays, structured as a layered execution engine:
//
//   QueryPlanner  — turns (read, T, mode) into an immutable ExecutionPlan
//   ExecutionBackend — runs the plan's passes (cell-accurate CircuitBackend
//                      or the fast FunctionalBackend)
//   batch engine  — fans a batch of reads across a worker pool with
//                   deterministic per-read RNG forking, so search_batch
//                   results are identical for any worker count
//
// The reference is a LIVE database (docs/architecture.md "Live database"):
// load_reference seeds it, append_segments adds rows (re-using tombstoned
// row slots first), remove_segments tombstones rows — dead rows are masked
// out of decisions, draw no RNG forks, charge exactly zero matchline
// energy, and an array whose rows are all dead is skipped whole (no
// SL-driver energy). Every segment gets a stable GLOBAL id; per-decision
// RNG streams AND the row's manufactured silicon are keyed by that id
// (config.silicon_seed), so a segment decides identically wherever it is
// stored — the invariant behind the sharded router's epoch scheme and
// determinism rule 8. Mutation errors are typed (asmcap/db_error.h) and
// validated in full before any state changes.
//
// Ownership: the accelerator owns its array units, backends, controller,
// and session pool; backends hold non-owning references into it (hence
// not movable). Thread-safety: the mutating entry points (load_reference,
// append_segments, remove_segments, search, search_batch, set_*) belong
// to one control thread at a time; execute() is const and thread-safe and
// is what the batch engine, the sharded router, and the streaming service
// fan across workers. Mutations must not run while this bank has
// execute() calls in flight — the sharded router guarantees that by
// mutating clones and publishing them as a new epoch. Reentrancy: never
// call back into the accelerator's blocking entry points from inside a
// pool task — parallel_for is not reentrant (see util/thread_pool.h).
// RNG discipline: docs/determinism.md.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "asmcap/array_unit.h"
#include "asmcap/backend.h"
#include "asmcap/config.h"
#include "asmcap/controller.h"
#include "asmcap/db_error.h"
#include "asmcap/planner.h"
#include "asmcap/sketch.h"
#include "circuit/timing.h"
#include "genome/edits.h"
#include "genome/sequence.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace asmcap {

/// Result of one read query. From search()/search_batch(), decisions are
/// indexed by (global id - segment_base) over the bank's id space and
/// matched_segments holds those indices ascending; on a frozen database
/// that is exactly the historical per-segment bitmap. From the const
/// execute() entry point, decisions are row-SLOT-indexed (the sharded
/// router maps slots to global ids through the bank's LiveDirectory).
struct QueryResult {
  /// Global ids of the segments whose rows reported 'match'.
  std::vector<std::size_t> matched_segments;
  /// Per-segment decision bitmap (see above; dead segments are false).
  std::vector<bool> decisions;
  QueryPlan plan;
  double latency_seconds = 0.0;
  double energy_joules = 0.0;
};

/// Lifecycle of a global segment id within one bank.
enum class SegmentState : std::uint8_t {
  Unknown,  ///< Never stored here (or its tombstoned slot was recycled).
  Live,
  Dead,  ///< Tombstoned; the id is never reused.
};

class AsmcapAccelerator {
 public:
  explicit AsmcapAccelerator(AsmcapConfig config);

  // Not movable: the backends hold pointers into units_ and the live
  // directory, which a move would leave dangling.
  AsmcapAccelerator(AsmcapAccelerator&&) = delete;
  AsmcapAccelerator& operator=(AsmcapAccelerator&&) = delete;

  /// Seeds the database with `segments` (each must match the array width),
  /// assigning global ids segment_base .. segment_base + n. Only valid on
  /// an empty database (DbErrorKind::AlreadyLoaded otherwise) — use
  /// append_segments to grow it afterwards.
  void load_reference(const std::vector<Sequence>& segments);

  /// Appends segments with auto-assigned global ids (returned, ascending).
  /// Tombstoned row slots are recycled first (lowest slot first), then
  /// fresh rows are allocated; arrays are manufactured on demand. Throws
  /// DbError (CapacityExceeded) when the live count would exceed
  /// capacity_segments(); validation happens before any state changes.
  std::vector<std::uint64_t> append_segments(
      const std::vector<Sequence>& segments);
  /// Appends with explicit (fresh, never-seen) global ids — the sharded
  /// router's path, and the replay path of the epoch-equivalence tests.
  void append_segments(const std::vector<Sequence>& segments,
                       const std::vector<std::uint64_t>& ids);

  /// Tombstones the given global ids. DbError: UnknownSegment for an id
  /// this bank never held, DoubleDelete for an already-dead id (also for
  /// duplicates within one call); nothing changes when it throws.
  void remove_segments(const std::vector<std::uint64_t>& ids);

  SegmentState segment_state(std::uint64_t id) const;
  /// The live (id, segment) pairs, ascending by row slot.
  std::vector<std::pair<std::uint64_t, Sequence>> live_segments() const;

  /// Deep copy with the exact same row layout, ids, tombstones, silicon
  /// (per-id keyed, so replaying the writes reproduces it), RNG state, and
  /// load ledger — the copy-on-write primitive of the sharded router's
  /// epoch scheme: search results on the clone are bit-identical to the
  /// original, energy included.
  std::unique_ptr<AsmcapAccelerator> clone() const;

  /// True while every slot s still holds id segment_base + s (always true
  /// for a frozen database; cleared by slot recycling or explicit
  /// out-of-order ids). When true, a slot-indexed execute() result is
  /// already id-indexed.
  bool identity_layout() const { return identity_layout_; }

  /// Sets the workload error profile used by the offline pre-processing of
  /// HDAC's p and TASR's T_l. Defaults to Condition A rates.
  void set_error_profile(const ErrorRates& rates) { rates_ = rates; }
  const ErrorRates& error_profile() const { return rates_; }

  /// Selects the execution backend for subsequent searches. The circuit
  /// backend (default) is cell-accurate; the functional backend computes
  /// the same decisions (identically under ideal_sensing) an order of
  /// magnitude faster. May be switched at any time.
  void set_backend(BackendKind kind) { backend_kind_ = kind; }
  BackendKind backend_kind() const { return backend_kind_; }
  /// The active backend (valid once the database is non-empty).
  const ExecutionBackend& backend() const;

  /// Searches one read against every live segment.
  QueryResult search(const Sequence& read, std::size_t threshold,
                     StrategyMode mode);

  /// Searches a batch of reads, fanning them across `workers` threads.
  /// Each read draws from its own deterministically forked RNG stream, so
  /// the results are identical for any worker count (and never perturb the
  /// accelerator's sequential RNG state). Ledger totals are recorded in
  /// read order.
  std::vector<QueryResult> search_batch(const std::vector<Sequence>& reads,
                                        std::size_t threshold,
                                        StrategyMode mode,
                                        std::size_t workers = 1);

  /// Runs one materialised plan with an explicit query stream. Const and
  /// thread-safe: it never touches the ledger, the sequential RNG, or any
  /// other shared mutable state, and `query_rng` is only forked, never
  /// advanced. Decisions are row-SLOT-indexed (see QueryResult). This is
  /// the entry point the sharded router fans across banks (every bank
  /// executing the same plan against the same stream).
  QueryResult execute(const ExecutionPlan& plan, const Rng& query_rng) const;

  /// The session-owned worker pool (see SessionPool), reused across
  /// search_batch/map_batch calls. NOTE: ThreadPool::parallel_for is not
  /// reentrant — never call back into the pool from inside a task it is
  /// running.
  ThreadPool& worker_pool(std::size_t workers = 0) {
    return pool_.get(workers);
  }

  /// Allocated row slots (live + tombstoned). On a frozen database this is
  /// the loaded segment count, as it always was.
  std::size_t loaded_segments() const { return dir_.slots(); }
  std::size_t live_segment_count() const { return dir_.live_count; }
  /// Rows still available for appends (recycled tombstones + fresh rows).
  std::size_t free_capacity() const {
    return config_.capacity_segments() - dir_.live_count;
  }
  /// Arrays holding at least one live row — the arrays that pay SL-driver
  /// energy on a pass.
  std::size_t arrays_in_use() const { return dir_.arrays_in_use(); }
  /// Slot-indexed id / tombstone tables (what the router uses to map an
  /// execute() result's slots to global ids).
  const LiveDirectory& directory() const { return dir_; }
  /// Cumulative cost of loading + appending reference rows (decoder + WL +
  /// SRAM writes; rows of different arrays are written in parallel).
  double load_energy_joules() const { return load_energy_; }
  double load_latency_seconds() const { return load_latency_; }
  const AsmcapConfig& config() const { return config_; }
  const Controller& controller() const { return controller_; }
  Controller& controller() { return controller_; }
  const QueryPlanner& planner() const { return controller_.planner(); }
  const TimingModel& timing() const { return timing_; }
  /// The bank's pruning sketch, maintained across mutations when
  /// config().pruning.enabled; nullptr otherwise.
  const BankSketch* sketch() const { return sketch_.get(); }

 private:
  void check_read(const Sequence& read) const;
  void check_loaded() const;
  void ensure_units(std::size_t arrays);
  /// The shared write path: stores (id, segment) at `slot`, re-manufactures
  /// the row's silicon from the per-id stream, and updates the directory,
  /// the packed functional row, and the sketch. No cost accounting.
  void write_slot(std::size_t slot, std::uint64_t id,
                  const Sequence& segment);
  /// Converts a slot-indexed execute() result into the id-indexed shape
  /// search()/search_batch() return. Identity on a frozen database.
  QueryResult rebase_to_ids(QueryResult raw) const;
  /// Cost accounting of one append burst (count rows, the fullest touched
  /// array writing `burst_rows` of them sequentially).
  void book_write_cost(std::size_t count, std::size_t burst_rows);

  AsmcapConfig config_;
  ErrorRates rates_ = ErrorRates::condition_a();
  Controller controller_;
  TimingModel timing_;
  /// Root of the manufactured-silicon stream tree
  /// (Rng(silicon_seed or seed).fork(0x51C0)); row silicon forks per
  /// global id, construction-time array silicon per array index.
  Rng silicon_root_;
  std::vector<AsmcapArrayUnit> units_;  ///< Manufactured on demand.
  LiveDirectory dir_;
  std::unordered_map<std::uint64_t, std::size_t> id_to_slot_;
  std::unique_ptr<CircuitBackend> circuit_backend_;
  std::unique_ptr<FunctionalBackend> functional_backend_;
  std::unique_ptr<BankSketch> sketch_;
  BackendKind backend_kind_ = BackendKind::Circuit;
  std::uint64_t next_auto_id_;
  bool identity_layout_ = true;
  double load_energy_ = 0.0;
  double load_latency_ = 0.0;
  std::uint64_t batch_epoch_ = 0;
  Rng rng_;
  SessionPool pool_;
};

}  // namespace asmcap
