#include "asmcap/array_unit.h"

namespace asmcap {

AsmcapArrayUnit::AsmcapArrayUnit(std::size_t rows, std::size_t cols,
                                 const ChargeDomainParams& params,
                                 bool ideal_sensing, Rng& manufacture_rng)
    : array_(rows, cols),
      readout_(rows, cols, params, manufacture_rng),
      sl_driver_(cols),
      shift_registers_(cols),
      ideal_sensing_(ideal_sensing) {}

void AsmcapArrayUnit::write_row(std::size_t row, const Sequence& segment) {
  array_.write_row(row, segment);
}

void AsmcapArrayUnit::write_row(std::size_t row, const Sequence& segment,
                                Rng& silicon_rng) {
  array_.write_row(row, segment);
  readout_.remanufacture_row(row, silicon_rng);
}

RawSearch AsmcapArrayUnit::search_raw(const Sequence& read, MatchMode mode) {
  double energy = 0.0;
  RawSearch raw = measure(read, mode, &energy);
  // The mutating path books the pass into the unit's own ledger: the SL
  // drive plus the per-row matchline energy.
  sl_driver_.drive(read);
  matchline_energy_ += energy - sl_driver_.drive_energy(read);
  return raw;
}

RawSearch AsmcapArrayUnit::measure(const Sequence& read, MatchMode mode,
                                   double* energy_joules) const {
  double energy = sl_driver_.drive_energy(read);
  // One shared PackedReadView per pass (inside search_masks): the
  // read-derived kernel work is done once for the whole array, not once
  // per row.
  const std::vector<BitVec> masks = array_.search_masks(read, mode);
  RawSearch raw;
  raw.counts.reserve(rows());
  raw.vml.reserve(rows());
  for (std::size_t r = 0; r < rows(); ++r) {
    const std::size_t count = masks[r].popcount();
    raw.counts.push_back(count);
    raw.vml.push_back(readout_.settle_row(r, masks[r]));
    // Matchline energy per row (paper Eq. 1 with M = 1).
    energy += readout_.matchline(r).search_energy(count);
  }
  if (energy_joules != nullptr) *energy_joules = energy;
  return raw;
}

bool AsmcapArrayUnit::decide(std::size_t count, double vml,
                             std::size_t threshold, Rng& search_rng) const {
  if (ideal_sensing_) return ChargeArrayReadout::ideal_decision(count, threshold);
  return readout_.decide(vml, threshold, search_rng);
}

std::vector<bool> AsmcapArrayUnit::search(const Sequence& read, MatchMode mode,
                                          std::size_t threshold,
                                          Rng& search_rng) {
  const RawSearch raw = search_raw(read, mode);
  std::vector<bool> matches(rows());
  for (std::size_t r = 0; r < rows(); ++r)
    matches[r] = decide(raw.counts[r], raw.vml[r], threshold, search_rng);
  return matches;
}

double AsmcapArrayUnit::consumed_energy() const {
  return matchline_energy_ + readout_.consumed_energy() +
         sl_driver_.consumed_energy();
}

void AsmcapArrayUnit::reset_energy() {
  matchline_energy_ = 0.0;
  readout_.reset_energy();
  sl_driver_.reset_energy();
}

}  // namespace asmcap
