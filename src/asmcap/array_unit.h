#pragma once
// One ASMCap array unit (Fig. 4b): the functional CAM array, the
// charge-domain readout, the searchline driver, and the shift registers.
// This is the hardware granule the mapper fills and the controller drives.

#include <cstddef>
#include <vector>

#include "cam/array.h"
#include "cam/charge_readout.h"
#include "cam/periphery.h"
#include "cam/shift_register.h"
#include "circuit/process.h"
#include "genome/sequence.h"
#include "util/rng.h"

namespace asmcap {

/// Raw (threshold-independent) result of one array search: per-row mismatch
/// counts and settled matchline voltages. Cacheable by the caller.
struct RawSearch {
  std::vector<std::size_t> counts;
  std::vector<double> vml;
};

class AsmcapArrayUnit {
 public:
  AsmcapArrayUnit(std::size_t rows, std::size_t cols,
                  const ChargeDomainParams& params, bool ideal_sensing,
                  Rng& manufacture_rng);

  std::size_t rows() const { return array_.rows(); }
  std::size_t cols() const { return array_.cols(); }
  std::size_t valid_rows() const { return array_.valid_rows(); }

  void write_row(std::size_t row, const Sequence& segment);
  /// Live-database write: stores the segment AND re-manufactures the row's
  /// analog silicon from `silicon_rng` (a stream keyed by the segment's
  /// global id), so the row's noisy behaviour travels with the segment
  /// across rows, arrays, and banks.
  void write_row(std::size_t row, const Sequence& segment, Rng& silicon_rng);
  /// Tombstones a row: its matchline reports all-mismatch (count == cols,
  /// exactly zero charge-domain search energy) and it can never decide
  /// 'match'. The row may be re-written later.
  void invalidate_row(std::size_t row) { array_.invalidate_row(row); }
  const CamArray& array() const { return array_; }

  /// One search operation: drives the read, evaluates every row in the
  /// given mode, and returns counts + settled voltages (systematic analog
  /// state, before SA noise). Charges SL-driver and matchline energy.
  RawSearch search_raw(const Sequence& read, MatchMode mode);

  /// Const, thread-safe variant of search_raw: identical physics, but the
  /// SL-driver + matchline energy of the pass is returned through
  /// `energy_joules` instead of accumulating into the unit's ledger. This
  /// is the path the execution backends use so that concurrent batch
  /// workers never mutate shared silicon state.
  RawSearch measure(const Sequence& read, MatchMode mode,
                    double* energy_joules) const;

  /// SA decision for one row's settled voltage (per-search noise applied
  /// unless the unit runs in ideal-sensing mode, where count <= T decides).
  bool decide(std::size_t count, double vml, std::size_t threshold,
              Rng& search_rng) const;

  /// Full search: per-row match decisions at a threshold.
  std::vector<bool> search(const Sequence& read, MatchMode mode,
                           std::size_t threshold, Rng& search_rng);

  ShiftRegisterFile& shift_registers() { return shift_registers_; }
  double consumed_energy() const;
  void reset_energy();

 private:
  CamArray array_;
  ChargeArrayReadout readout_;
  SearchlineDriver sl_driver_;
  ShiftRegisterFile shift_registers_;
  bool ideal_sensing_;
  double matchline_energy_ = 0.0;
};

}  // namespace asmcap
