#pragma once
// Execution backends: the layer between a materialised ExecutionPlan and
// the per-segment match decisions (engine layering: planner -> backend ->
// batch engine). Two implementations share one interface:
//
//  * CircuitBackend — cell-accurate: every pass walks the manufactured
//    array units (capacitor mismatch, settled matchline voltages, SA noise
//    unless ideal_sensing). This is the fidelity path the paper's accuracy
//    claims rest on.
//  * FunctionalBackend — fast: the same match decisions computed with the
//    word-parallel ED*/Hamming kernels and nominal analytic energy, an
//    order of magnitude faster for large sweeps. Under ideal_sensing the
//    two backends are decision-identical (enforced by test_engine).
//
// The EDAM comparator runs through the same seam with its own pair:
//
//  * EdamCircuitBackend — cell-accurate current-domain sensing (pre-charge,
//    discharge, sample-and-hold) via CurrentArrayReadout::measure_row.
//  * EdamFunctionalBackend — the packed word-parallel kernels with the
//    count-pure current-domain energy model (bit-identical energy to the
//    circuit path; decision-identical under ideal_sensing, enforced by
//    test_edam).
//
// Ownership: backends are owned by their accelerator and hold non-owning
// references into it (both read the accelerator's LiveDirectory; the
// functional backend additionally owns a packed copy of the slots, kept in
// sync by the accelerator's write path); the accelerator must outlive
// them.
// Thread-safety: run_pass is const and thread-safe — concurrent batch
// workers share one backend, each supplying its own forked RNG stream.
// Mutations (which rewrite the directory and packed rows) never run
// against a backend with passes in flight: the sharded router mutates
// CLONES and publishes them as a new epoch, so in-flight work only ever
// reads immutable snapshots (docs/architecture.md "Live database").
// Reentrancy: run_pass never dispatches work to a pool, so it is safe to
// call from inside pool tasks (the service does exactly that).
//
// RNG discipline (specified in full in docs/determinism.md): a pass never
// draws from the query stream sequentially. It forks a pass stream
// (query_rng.fork(pass_salt)) and then forks one decision stream per row,
// keyed by the row's *global* segment id (segment_base + local id). Every
// decision is therefore a pure function of (query stream, pass, global
// segment) — independent of segment placement, bank layout, and
// evaluation order. This is what makes the sharded accelerator's
// decisions invariant in shard count and the streaming service's
// decisions invariant in completion order.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "align/kernels.h"
#include "asmcap/array_unit.h"
#include "asmcap/config.h"
#include "asmcap/mapper.h"
#include "cam/array.h"
#include "cam/current_readout.h"
#include "cam/periphery.h"
#include "genome/sequence.h"
#include "util/rng.h"

namespace asmcap {

/// Which execution backend an accelerator routes its passes through.
enum class BackendKind : std::uint8_t { Circuit, Functional };

const char* to_string(BackendKind kind);

/// Per-slot live-database directory shared by an accelerator and its
/// backends (slot = array * array_rows + row, allocated in fill order).
/// The accelerator mutates it on the control plane (append/delete); the
/// backends read it inside run_pass. A tombstoned slot keeps its last id
/// (results stay sized by slot) but is masked out of decisions and
/// matchline energy, and an array whose live count drops to zero is
/// skipped entirely — no SL-driver energy for dead silicon.
struct LiveDirectory {
  std::vector<std::uint64_t> ids;  ///< Global segment id per slot.
  std::vector<bool> live;          ///< Tombstone mask per slot.
  std::vector<std::size_t> array_live;  ///< Live rows per array.
  std::size_t live_count = 0;

  std::size_t slots() const { return ids.size(); }
  bool slot_live(std::size_t slot) const {
    return slot < live.size() && live[slot];
  }
  std::size_t arrays_in_use() const {
    std::size_t used = 0;
    for (const std::size_t rows : array_live)
      if (rows != 0) ++used;
    return used;
  }
};

/// Result of one array pass over every allocated row slot. Decisions are
/// SLOT-indexed; tombstoned slots are always false. On a frozen (never
/// mutated) database slot == local segment id, so this is exactly the
/// per-segment bitmap it has always been; after mutations the caller maps
/// slots to global ids through the LiveDirectory.
struct PassResult {
  std::vector<bool> decisions;  ///< Per slot, at the threshold.
  double energy_joules = 0.0;   ///< SL-driver + matchline energy of the pass.
};

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual const char* name() const = 0;
  virtual std::size_t segment_count() const = 0;

  /// One search pass: per-segment decisions at `threshold` (indexed by
  /// local segment id; the backend's segment_base only salts the RNG).
  /// Must be thread-safe; per-decision SA noise is forked from
  /// `query_rng.fork(pass_salt)` per global segment (unused by paths that
  /// decide ideally). `query_rng` is never advanced.
  virtual PassResult run_pass(const Sequence& read, MatchMode mode,
                              std::size_t threshold, const Rng& query_rng,
                              std::uint64_t pass_salt) const = 0;
};

/// Cell-accurate backend wrapping the manufactured AsmcapArrayUnit bank.
/// Holds non-owning references into the accelerator (the unit vector and
/// the live directory — both stable objects whose contents the accelerator
/// mutates on the control plane); the accelerator must outlive it. An
/// array with zero live rows is skipped whole — no SL-driver energy — and
/// a tombstoned row decides nothing and draws no RNG fork (per-decision
/// streams are pure per-id forks, so skipping shifts no other draw).
class CircuitBackend : public ExecutionBackend {
 public:
  CircuitBackend(const std::vector<AsmcapArrayUnit>& units,
                 const LiveDirectory& directory, std::size_t array_rows);

  const char* name() const override { return "circuit"; }
  std::size_t segment_count() const override { return dir_->slots(); }
  PassResult run_pass(const Sequence& read, MatchMode mode,
                      std::size_t threshold, const Rng& query_rng,
                      std::uint64_t pass_salt) const override;

 private:
  const std::vector<AsmcapArrayUnit>* units_;
  const LiveDirectory* dir_;
  std::size_t array_rows_;
};

/// Fast functional backend: SIMD-dispatched block kernels
/// (align/kernels.h) over a row-major 2-bit packed slot matrix, ideal
/// (noise-free) decisions, nominal analytic energy. Each pass builds one
/// PackedReadView — the read-derived neighbour alignments are computed
/// once per (read, rotation), not once per (segment, read). The packed
/// matrix is owned here and kept row-aligned with the accelerator's slots
/// by write_slot (the live-database append path); tombstoned slots are
/// masked out of decisions and row energy by the shared LiveDirectory, and
/// SL-driver energy is charged only for arrays with at least one live row.
class FunctionalBackend : public ExecutionBackend {
 public:
  FunctionalBackend(const AsmcapConfig& config,
                    const LiveDirectory& directory);

  /// (Re)writes one slot's packed row, growing the matrix as needed.
  void write_slot(std::size_t slot, const Sequence& segment);
  /// Grows the matrix to `slots` zero rows (trailing tombstones).
  void ensure_slots(std::size_t slots);

  const char* name() const override { return "functional"; }
  std::size_t segment_count() const override { return rows_; }
  PassResult run_pass(const Sequence& read, MatchMode mode,
                      std::size_t threshold, const Rng& query_rng,
                      std::uint64_t pass_salt) const override;

 private:
  const LiveDirectory* dir_;
  std::vector<std::uint64_t> words_;  ///< Row-major packed slots.
  std::size_t rows_ = 0;
  std::size_t cols_;
  std::size_t words_per_row_;
  ChargeDomainParams charge_;
  SearchlineDriverParams sl_params_;
};

/// Cell-accurate EDAM backend: current-domain sensing over the
/// manufactured CamArray/CurrentArrayReadout bank. Holds non-owning
/// references into the EdamAccelerator; the accelerator must outlive it.
class EdamCircuitBackend : public ExecutionBackend {
 public:
  EdamCircuitBackend(const std::vector<CamArray>& arrays,
                     const std::vector<CurrentArrayReadout>& readouts,
                     std::size_t segment_count, std::size_t array_rows,
                     bool ideal_sensing, std::size_t segment_base = 0);

  const char* name() const override { return "edam-circuit"; }
  std::size_t segment_count() const override { return segment_count_; }
  PassResult run_pass(const Sequence& read, MatchMode mode,
                      std::size_t threshold, const Rng& query_rng,
                      std::uint64_t pass_salt) const override;

 private:
  const std::vector<CamArray>* arrays_;
  const std::vector<CurrentArrayReadout>* readouts_;
  std::size_t segment_count_;
  std::size_t array_rows_;
  bool ideal_sensing_;
  std::size_t segment_base_;
};

/// Fast EDAM backend: word-parallel kernels over 2-bit packed segments,
/// ideal (noise-free) decisions, and the count-pure current-domain energy
/// model — bit-identical energy to EdamCircuitBackend (the energy of a
/// current-domain search does not depend on the manufactured currents).
class EdamFunctionalBackend : public ExecutionBackend {
 public:
  EdamFunctionalBackend(const std::vector<Sequence>& segments,
                        const CurrentDomainParams& params, std::size_t cols);

  const char* name() const override { return "edam-functional"; }
  std::size_t segment_count() const override { return packed_.rows(); }
  PassResult run_pass(const Sequence& read, MatchMode mode,
                      std::size_t threshold, const Rng& query_rng,
                      std::uint64_t pass_salt) const override;

 private:
  PackedRowMatrix packed_;  ///< Row-major packed segments.
  CurrentDomainParams params_;
  std::size_t cols_;
};

}  // namespace asmcap
