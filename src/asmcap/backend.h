#pragma once
// Execution backends: the layer between a materialised ExecutionPlan and
// the per-segment match decisions (engine layering: planner -> backend ->
// batch engine). Two implementations share one interface:
//
//  * CircuitBackend — cell-accurate: every pass walks the manufactured
//    array units (capacitor mismatch, settled matchline voltages, SA noise
//    unless ideal_sensing). This is the fidelity path the paper's accuracy
//    claims rest on.
//  * FunctionalBackend — fast: the same match decisions computed with the
//    word-parallel ED*/Hamming kernels and nominal analytic energy, an
//    order of magnitude faster for large sweeps. Under ideal_sensing the
//    two backends are decision-identical (enforced by test_engine).
//
// The EDAM comparator runs through the same seam with its own pair:
//
//  * EdamCircuitBackend — cell-accurate current-domain sensing (pre-charge,
//    discharge, sample-and-hold) via CurrentArrayReadout::measure_row.
//  * EdamFunctionalBackend — the packed word-parallel kernels with the
//    count-pure current-domain energy model (bit-identical energy to the
//    circuit path; decision-identical under ideal_sensing, enforced by
//    test_edam).
//
// Ownership: backends are owned by their accelerator and hold non-owning
// references into it (CircuitBackend) or private packed copies of the
// segments (FunctionalBackend); the accelerator must outlive them.
// Thread-safety: run_pass is const and thread-safe — concurrent batch
// workers share one backend, each supplying its own forked RNG stream.
// Reentrancy: run_pass never dispatches work to a pool, so it is safe to
// call from inside pool tasks (the service does exactly that).
//
// RNG discipline (specified in full in docs/determinism.md): a pass never
// draws from the query stream sequentially. It forks a pass stream
// (query_rng.fork(pass_salt)) and then forks one decision stream per row,
// keyed by the row's *global* segment id (segment_base + local id). Every
// decision is therefore a pure function of (query stream, pass, global
// segment) — independent of segment placement, bank layout, and
// evaluation order. This is what makes the sharded accelerator's
// decisions invariant in shard count and the streaming service's
// decisions invariant in completion order.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "align/kernels.h"
#include "asmcap/array_unit.h"
#include "asmcap/config.h"
#include "asmcap/mapper.h"
#include "cam/array.h"
#include "cam/current_readout.h"
#include "cam/periphery.h"
#include "genome/sequence.h"
#include "util/rng.h"

namespace asmcap {

/// Which execution backend an accelerator routes its passes through.
enum class BackendKind : std::uint8_t { Circuit, Functional };

const char* to_string(BackendKind kind);

/// Result of one array pass over every loaded segment.
struct PassResult {
  std::vector<bool> decisions;  ///< Per global segment, at the threshold.
  double energy_joules = 0.0;   ///< SL-driver + matchline energy of the pass.
};

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual const char* name() const = 0;
  virtual std::size_t segment_count() const = 0;

  /// One search pass: per-segment decisions at `threshold` (indexed by
  /// local segment id; the backend's segment_base only salts the RNG).
  /// Must be thread-safe; per-decision SA noise is forked from
  /// `query_rng.fork(pass_salt)` per global segment (unused by paths that
  /// decide ideally). `query_rng` is never advanced.
  virtual PassResult run_pass(const Sequence& read, MatchMode mode,
                              std::size_t threshold, const Rng& query_rng,
                              std::uint64_t pass_salt) const = 0;
};

/// Cell-accurate backend wrapping the manufactured AsmcapArrayUnit bank.
/// Holds non-owning references into the accelerator; the accelerator must
/// outlive it.
class CircuitBackend : public ExecutionBackend {
 public:
  CircuitBackend(const std::vector<AsmcapArrayUnit>& units,
                 const ReferenceMapper& mapper, std::size_t segment_count,
                 std::size_t array_rows, std::size_t segment_base = 0);

  const char* name() const override { return "circuit"; }
  std::size_t segment_count() const override { return segment_count_; }
  PassResult run_pass(const Sequence& read, MatchMode mode,
                      std::size_t threshold, const Rng& query_rng,
                      std::uint64_t pass_salt) const override;

 private:
  const std::vector<AsmcapArrayUnit>* units_;
  const ReferenceMapper* mapper_;
  std::size_t segment_count_;
  std::size_t array_rows_;
  std::size_t segment_base_;
};

/// Fast functional backend: SIMD-dispatched block kernels
/// (align/kernels.h) over a row-major 2-bit packed segment matrix, ideal
/// (noise-free) decisions, nominal analytic energy. Each pass builds one
/// PackedReadView — the read-derived neighbour alignments are computed
/// once per (read, rotation), not once per (segment, read).
class FunctionalBackend : public ExecutionBackend {
 public:
  FunctionalBackend(const std::vector<Sequence>& segments,
                    const AsmcapConfig& config);

  const char* name() const override { return "functional"; }
  std::size_t segment_count() const override { return packed_.rows(); }
  PassResult run_pass(const Sequence& read, MatchMode mode,
                      std::size_t threshold, const Rng& query_rng,
                      std::uint64_t pass_salt) const override;

 private:
  PackedRowMatrix packed_;  ///< Row-major packed segments.
  std::size_t cols_;
  std::size_t arrays_in_use_;
  ChargeDomainParams charge_;
  SearchlineDriverParams sl_params_;
};

/// Cell-accurate EDAM backend: current-domain sensing over the
/// manufactured CamArray/CurrentArrayReadout bank. Holds non-owning
/// references into the EdamAccelerator; the accelerator must outlive it.
class EdamCircuitBackend : public ExecutionBackend {
 public:
  EdamCircuitBackend(const std::vector<CamArray>& arrays,
                     const std::vector<CurrentArrayReadout>& readouts,
                     std::size_t segment_count, std::size_t array_rows,
                     bool ideal_sensing, std::size_t segment_base = 0);

  const char* name() const override { return "edam-circuit"; }
  std::size_t segment_count() const override { return segment_count_; }
  PassResult run_pass(const Sequence& read, MatchMode mode,
                      std::size_t threshold, const Rng& query_rng,
                      std::uint64_t pass_salt) const override;

 private:
  const std::vector<CamArray>* arrays_;
  const std::vector<CurrentArrayReadout>* readouts_;
  std::size_t segment_count_;
  std::size_t array_rows_;
  bool ideal_sensing_;
  std::size_t segment_base_;
};

/// Fast EDAM backend: word-parallel kernels over 2-bit packed segments,
/// ideal (noise-free) decisions, and the count-pure current-domain energy
/// model — bit-identical energy to EdamCircuitBackend (the energy of a
/// current-domain search does not depend on the manufactured currents).
class EdamFunctionalBackend : public ExecutionBackend {
 public:
  EdamFunctionalBackend(const std::vector<Sequence>& segments,
                        const CurrentDomainParams& params, std::size_t cols);

  const char* name() const override { return "edam-functional"; }
  std::size_t segment_count() const override { return packed_.rows(); }
  PassResult run_pass(const Sequence& read, MatchMode mode,
                      std::size_t threshold, const Rng& query_rng,
                      std::uint64_t pass_salt) const override;

 private:
  PackedRowMatrix packed_;  ///< Row-major packed segments.
  CurrentDomainParams params_;
  std::size_t cols_;
};

}  // namespace asmcap
