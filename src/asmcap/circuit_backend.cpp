#include "asmcap/backend.h"

namespace asmcap {

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::Circuit: return "circuit";
    case BackendKind::Functional: return "functional";
  }
  return "?";
}

CircuitBackend::CircuitBackend(const std::vector<AsmcapArrayUnit>& units,
                               const ReferenceMapper& mapper,
                               std::size_t segment_count,
                               std::size_t array_rows)
    : units_(&units),
      mapper_(&mapper),
      segment_count_(segment_count),
      array_rows_(array_rows) {}

PassResult CircuitBackend::run_pass(const Sequence& read, MatchMode mode,
                                    std::size_t threshold,
                                    Rng& search_rng) const {
  PassResult result;
  result.decisions.assign(segment_count_, false);
  for (std::size_t a = 0; a < units_->size(); ++a) {
    const AsmcapArrayUnit& unit = (*units_)[a];
    double pass_energy = 0.0;
    const RawSearch raw = unit.measure(read, mode, &pass_energy);
    result.energy_joules += pass_energy;
    for (std::size_t r = 0; r < array_rows_; ++r) {
      const auto segment = mapper_->segment_at(a, r);
      if (!segment) continue;
      result.decisions[*segment] =
          unit.decide(raw.counts[r], raw.vml[r], threshold, search_rng);
    }
  }
  return result;
}

}  // namespace asmcap
