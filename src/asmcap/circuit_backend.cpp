#include "asmcap/backend.h"

namespace asmcap {

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::Circuit: return "circuit";
    case BackendKind::Functional: return "functional";
  }
  return "?";
}

CircuitBackend::CircuitBackend(const std::vector<AsmcapArrayUnit>& units,
                               const ReferenceMapper& mapper,
                               std::size_t segment_count,
                               std::size_t array_rows,
                               std::size_t segment_base)
    : units_(&units),
      mapper_(&mapper),
      segment_count_(segment_count),
      array_rows_(array_rows),
      segment_base_(segment_base) {}

PassResult CircuitBackend::run_pass(const Sequence& read, MatchMode mode,
                                    std::size_t threshold,
                                    const Rng& query_rng,
                                    std::uint64_t pass_salt) const {
  const Rng pass_rng = query_rng.fork(pass_salt);
  PassResult result;
  result.decisions.assign(segment_count_, false);
  for (std::size_t a = 0; a < units_->size(); ++a) {
    const AsmcapArrayUnit& unit = (*units_)[a];
    double pass_energy = 0.0;
    const RawSearch raw = unit.measure(read, mode, &pass_energy);
    result.energy_joules += pass_energy;
    for (std::size_t r = 0; r < array_rows_; ++r) {
      const auto segment = mapper_->segment_at(a, r);
      if (!segment) continue;
      // SA noise keyed by global segment id: placement-invariant.
      Rng decide_rng = pass_rng.fork(
          static_cast<std::uint64_t>(segment_base_ + *segment));
      result.decisions[*segment] =
          unit.decide(raw.counts[r], raw.vml[r], threshold, decide_rng);
    }
  }
  return result;
}

}  // namespace asmcap
