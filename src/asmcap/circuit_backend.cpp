#include "asmcap/backend.h"

namespace asmcap {

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::Circuit: return "circuit";
    case BackendKind::Functional: return "functional";
  }
  return "?";
}

CircuitBackend::CircuitBackend(const std::vector<AsmcapArrayUnit>& units,
                               const LiveDirectory& directory,
                               std::size_t array_rows)
    : units_(&units), dir_(&directory), array_rows_(array_rows) {}

PassResult CircuitBackend::run_pass(const Sequence& read, MatchMode mode,
                                    std::size_t threshold,
                                    const Rng& query_rng,
                                    std::uint64_t pass_salt) const {
  const Rng pass_rng = query_rng.fork(pass_salt);
  PassResult result;
  result.decisions.assign(dir_->slots(), false);
  for (std::size_t a = 0; a < units_->size(); ++a) {
    // An array with no live rows is never driven: its SL drivers stay
    // quiet and its matchlines never charge — the live database pays only
    // for silicon that holds live segments.
    if (a >= dir_->array_live.size() || dir_->array_live[a] == 0) continue;
    const AsmcapArrayUnit& unit = (*units_)[a];
    double pass_energy = 0.0;
    // Tombstoned rows present the all-mismatch mask: their matchline
    // search energy is k*(n-k)/n at k == n — exactly zero.
    const RawSearch raw = unit.measure(read, mode, &pass_energy);
    result.energy_joules += pass_energy;
    for (std::size_t r = 0; r < array_rows_; ++r) {
      const std::size_t slot = a * array_rows_ + r;
      if (!dir_->slot_live(slot)) continue;
      // SA noise keyed by global segment id: placement-invariant, and a
      // dead slot's never-taken fork cannot shift any live slot's draw.
      Rng decide_rng = pass_rng.fork(dir_->ids[slot]);
      result.decisions[slot] =
          unit.decide(raw.counts[r], raw.vml[r], threshold, decide_rng);
    }
  }
  return result;
}

}  // namespace asmcap
