#include "asmcap/config.h"

#include <cmath>
#include <limits>

namespace asmcap {

bool hdac_active(StrategyMode mode) {
  return mode == StrategyMode::HdacOnly || mode == StrategyMode::Full;
}

bool tasr_active(StrategyMode mode) {
  return mode == StrategyMode::TasrOnly || mode == StrategyMode::Full;
}

const char* to_string(StrategyMode mode) {
  switch (mode) {
    case StrategyMode::Baseline: return "ASMCap w/o H./T.";
    case StrategyMode::HdacOnly: return "ASMCap w/ HDAC";
    case StrategyMode::TasrOnly: return "ASMCap w/ TASR";
    case StrategyMode::Full: return "ASMCap w/ H./T.";
  }
  return "?";
}

double hdac_probability(const HdacParams& params, const ErrorRates& rates,
                        std::size_t threshold) {
  const double es = rates.substitution;
  const double eid = rates.indel();
  if (es + eid <= 0.0) return 0.0;
  const double mix = es / (es + eid);
  const double damping = std::exp(
      -(params.alpha * eid + params.beta * static_cast<double>(threshold)));
  return mix * damping;
}

std::size_t tasr_lower_bound(const TasrParams& params, const ErrorRates& rates,
                             std::size_t read_length) {
  const double eid = rates.indel();
  if (eid <= 0.0) return std::numeric_limits<std::size_t>::max();
  const double bound =
      params.gamma / eid * static_cast<double>(read_length);
  return static_cast<std::size_t>(std::ceil(bound));
}

}  // namespace asmcap
