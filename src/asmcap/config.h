#pragma once
// Configuration of the ASMCap accelerator (paper §V-A): 512 arrays of
// 256x256 cells at 1.2 V, HDAC with alpha=200 / beta=0.5, TASR with N_R=2 /
// gamma=2e-4.

#include <cstddef>
#include <cstdint>

#include "align/edstar.h"
#include "circuit/process.h"
#include "genome/edits.h"

namespace asmcap {

/// Which of the two correction strategies are active.
enum class StrategyMode : std::uint8_t {
  Baseline,  ///< pure ED* (ASMCap w/o H. and T.)
  HdacOnly,
  TasrOnly,
  Full,  ///< ASMCap w/ H. and T.
};

bool hdac_active(StrategyMode mode);
bool tasr_active(StrategyMode mode);
const char* to_string(StrategyMode mode);

struct HdacParams {
  double alpha = 200.0;
  double beta = 0.5;
  /// HDAC is disabled (saving its extra cycle) when p falls below this
  /// (paper §IV-A suggests 1 %).
  double min_probability = 0.01;
};

struct TasrParams {
  std::size_t rotations = 2;  ///< N_R
  double gamma = 2e-4;
  RotateDir direction = RotateDir::Both;
};

/// Sketch-based shard pruning (src/asmcap/sketch.h): when enabled, every
/// bank builds a positional base-occurrence sketch at load_reference time
/// and the sharded router skips banks that provably cannot contain a hit
/// at the query's threshold. Decisions stay bit-identical to full fan-out
/// (skipped banks contribute no RNG draws by construction); energy drops
/// by exactly the skipped banks' share. There is deliberately NO k-mer
/// length knob: a shared-k-mer filter is unsound for ED* (each cell
/// independently picks a +/-1 neighbour, so an ED* = 0 row may share no
/// k-mer with the read) — the window count is derived from the threshold
/// and, on the noisy circuit path, the bounded-noise margin instead.
struct PruningParams {
  bool enabled = false;
};

/// Live-database knobs (epoch-snapshotted mutable banks, see
/// docs/architecture.md "Live database"). Appends land in a small HOT bank
/// so a trickle of inserts never pays SL-driver energy for a
/// mostly-empty full-size array; when the hot bank fills (or compact() is
/// called) it is folded into the cold banks' free rows at an epoch
/// boundary.
struct LiveParams {
  std::size_t hot_array_rows = 64;
  std::size_t hot_array_count = 4;

  std::size_t hot_capacity_segments() const {
    return hot_array_rows * hot_array_count;
  }
};

struct AsmcapConfig {
  std::size_t array_rows = 256;
  std::size_t array_cols = 256;  ///< == read length m
  std::size_t array_count = 512;
  ProcessParams process;
  HdacParams hdac;
  TasrParams tasr;
  /// Bypass analog noise entirely (functional-simulation mode).
  bool ideal_sensing = false;
  /// Router-level shard pruning (banks build sketches at load time).
  PruningParams pruning;
  std::uint64_t seed = 0xA5A5'5A5A'C0FF'EE00ULL;
  /// Seed of the manufactured-silicon stream; 0 means "use `seed`". Every
  /// written row's analog silicon is drawn from
  /// Rng(silicon_seed).fork(0x51C0).fork(global segment id), so a noisy
  /// decision is a pure function of (silicon seed, global id, query
  /// stream) — independent of row, array, and bank placement. The sharded
  /// router points every bank (hot and cold) at ITS OWN seed, which is
  /// what makes live-database rebalancing invisible to noisy sensing
  /// (docs/determinism.md rule 8).
  std::uint64_t silicon_seed = 0;
  /// Global id of this bank's first segment. 0 for a standalone
  /// accelerator; the sharded router sets it per bank so that every
  /// per-decision RNG stream is keyed by *global* segment id — which makes
  /// match decisions independent of how segments are placed across banks.
  std::size_t segment_base = 0;
  /// Live-database geometry (used by the sharded router's hot append bank).
  LiveParams live;

  std::size_t capacity_segments() const { return array_rows * array_count; }
  /// Memory capacity in bits (2 bits per base): 512 x 256 x 256 x 2 = 64 Mb.
  std::size_t capacity_bits() const {
    return array_rows * array_cols * array_count * 2;
  }
};

/// HDAC selection probability (paper §IV-A):
///   p = e_s / (e_s + e_id) * exp(-(alpha * e_id + beta * T)).
/// Zero when there are no edits at all.
double hdac_probability(const HdacParams& params, const ErrorRates& rates,
                        std::size_t threshold);

/// TASR trigger lower bound (paper §IV-B): T_l = ceil(gamma / e_id * m).
/// Effectively infinite when e_id == 0 (rotation can never help).
std::size_t tasr_lower_bound(const TasrParams& params, const ErrorRates& rates,
                             std::size_t read_length);

}  // namespace asmcap
