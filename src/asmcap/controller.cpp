#include "asmcap/controller.h"

namespace asmcap {

void Controller::record(const QueryPlan& plan, double latency_seconds,
                        double energy_joules) {
  ++totals_.queries;
  totals_.searches += plan.total_searches();
  totals_.hd_searches += plan.hd_search ? 1u : 0u;
  totals_.rotation_searches += plan.ed_star_searches - 1;
  totals_.latency_seconds += latency_seconds;
  totals_.energy_joules += energy_joules;
}

}  // namespace asmcap
