#include "asmcap/controller.h"

namespace asmcap {

QueryPlan Controller::plan(std::size_t threshold, const ErrorRates& rates,
                           StrategyMode mode) const {
  QueryPlan plan;
  if (hdac_active(mode)) {
    plan.hdac_p = hdac_.probability(rates, threshold);
    plan.hd_search = hdac_.enabled(rates, threshold);
    if (!plan.hd_search) plan.hdac_p = 0.0;  // disabled below min_probability
  }
  if (tasr_active(mode)) {
    plan.tasr_tl = tasr_.lower_bound(rates, config_.array_cols);
    plan.tasr_triggered = tasr_.should_rotate(threshold, rates,
                                              config_.array_cols);
    if (plan.tasr_triggered)
      plan.ed_star_searches = tasr_.schedule_length();
  }
  return plan;
}

void Controller::record(const QueryPlan& plan, double latency_seconds,
                        double energy_joules) {
  ++totals_.queries;
  totals_.searches += plan.total_searches();
  totals_.hd_searches += plan.hd_search ? 1u : 0u;
  totals_.rotation_searches += plan.ed_star_searches - 1;
  totals_.latency_seconds += latency_seconds;
  totals_.energy_joules += energy_joules;
}

}  // namespace asmcap
