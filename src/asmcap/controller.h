#pragma once
// Controller (paper Fig. 4a): receives host instructions, plans the search
// operations each read query needs (ED* pass, optional HDAC Hamming pass,
// optional TASR rotation passes), and keeps the latency/energy/operation
// ledger the performance evaluation reads.

#include <cstddef>
#include <limits>

#include "asmcap/config.h"
#include "asmcap/hdac.h"
#include "asmcap/tasr.h"
#include "genome/edits.h"

namespace asmcap {

/// The operation schedule of one read query.
struct QueryPlan {
  std::size_t ed_star_searches = 1;  ///< 1 + rotations when TASR triggers.
  bool hd_search = false;            ///< HDAC's extra Hamming pass.
  double hdac_p = 0.0;               ///< Selection probability (0 if off).
  std::size_t tasr_tl =
      std::numeric_limits<std::size_t>::max();  ///< Rotation trigger bound.
  bool tasr_triggered = false;

  std::size_t total_searches() const {
    return ed_star_searches + (hd_search ? 1u : 0u);
  }
};

/// Cumulative execution statistics.
struct ExecutionTotals {
  std::size_t queries = 0;
  std::size_t searches = 0;
  std::size_t hd_searches = 0;
  std::size_t rotation_searches = 0;
  double latency_seconds = 0.0;
  double energy_joules = 0.0;
};

class Controller {
 public:
  Controller(const AsmcapConfig& config)
      : config_(config), hdac_(config.hdac), tasr_(config.tasr) {}

  /// Plans one query given the workload error profile (pre-processed
  /// offline, as the paper prescribes for both p and T_l).
  QueryPlan plan(std::size_t threshold, const ErrorRates& rates,
                 StrategyMode mode) const;

  /// Records a completed query in the ledger.
  void record(const QueryPlan& plan, double latency_seconds,
              double energy_joules);

  const ExecutionTotals& totals() const { return totals_; }
  void reset_totals() { totals_ = {}; }

  const Hdac& hdac() const { return hdac_; }
  const Tasr& tasr() const { return tasr_; }

 private:
  AsmcapConfig config_;
  Hdac hdac_;
  Tasr tasr_;
  ExecutionTotals totals_;
};

}  // namespace asmcap
