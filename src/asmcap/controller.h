#pragma once
// Controller (paper Fig. 4a): receives host instructions, delegates the
// per-query operation scheduling to the QueryPlanner, and keeps the
// latency/energy/operation ledger the performance evaluation reads.

#include <cstddef>

#include "asmcap/config.h"
#include "asmcap/planner.h"

namespace asmcap {

/// Cumulative execution statistics.
struct ExecutionTotals {
  std::size_t queries = 0;
  std::size_t searches = 0;
  std::size_t hd_searches = 0;
  std::size_t rotation_searches = 0;
  /// Sketch-probe outcomes (sharded router with pruning enabled only):
  /// banks actually searched vs banks skipped because their sketch proved
  /// no hit was possible. probed + pruned = active shards x queries.
  std::size_t banks_probed = 0;
  std::size_t banks_pruned = 0;
  double latency_seconds = 0.0;
  double energy_joules = 0.0;
};

class Controller {
 public:
  explicit Controller(const AsmcapConfig& config) : planner_(config) {}

  /// Plans one query given the workload error profile (pre-processed
  /// offline, as the paper prescribes for both p and T_l).
  QueryPlan plan(std::size_t threshold, const ErrorRates& rates,
                 StrategyMode mode) const {
    return planner_.plan(threshold, rates, mode);
  }

  /// Records a completed query in the ledger.
  void record(const QueryPlan& plan, double latency_seconds,
              double energy_joules);

  /// Records one query's sketch-probe outcome (router pruning path).
  void record_pruning(std::size_t probed, std::size_t pruned) {
    totals_.banks_probed += probed;
    totals_.banks_pruned += pruned;
  }

  const ExecutionTotals& totals() const { return totals_; }
  void reset_totals() { totals_ = {}; }

  const QueryPlanner& planner() const { return planner_; }
  const Hdac& hdac() const { return planner_.hdac(); }
  const Tasr& tasr() const { return planner_.tasr(); }

 private:
  QueryPlanner planner_;
  ExecutionTotals totals_;
};

}  // namespace asmcap
