#pragma once
// Typed error path of the live-database mutation API, shared by every
// layer that owns reference state: AsmcapAccelerator and
// ShardedAccelerator (load_reference / append_segments / remove_segments /
// compact) and EdamAccelerator (load_reference). One exception type with a
// machine-readable kind replaces the bare std::logic_error /
// std::length_error mix the one-shot loaders used to throw, so callers can
// branch on WHAT went wrong (capacity vs unknown id vs double delete)
// instead of parsing message strings. DbError derives from
// std::logic_error, so pre-existing catch sites keep working.
//
// Mutation calls are validated in full BEFORE any state changes: a DbError
// thrown from append/remove leaves the database (and the published epoch)
// exactly as it was — strong exception safety at the mutation seam.
//
// Thread-safety: DbError is a plain exception value; construction and
// inspection are thread-safe like any other exception object. Mutation
// entry points that throw it are control-plane only (one thread at a
// time), like every other mutating accelerator call.

#include <stdexcept>
#include <string>

namespace asmcap {

/// What a database mutation rejected.
enum class DbErrorKind {
  AlreadyLoaded,     ///< load_reference on a non-empty database.
  NotLoaded,         ///< search/inspect before any reference exists.
  CapacityExceeded,  ///< load/append beyond the geometry's row capacity.
  UnknownSegment,    ///< delete of an id the database never held
                     ///< (or whose row was already recycled).
  DoubleDelete,      ///< delete of an id that is already tombstoned.
  DuplicateId,       ///< append with an id that is already live / repeated.
  EmptyMutation,     ///< a mutation call with no segments / ids.
};

const char* to_string(DbErrorKind kind);

class DbError : public std::logic_error {
 public:
  DbError(DbErrorKind kind, const std::string& message)
      : std::logic_error(message), kind_(kind) {}

  DbErrorKind kind() const { return kind_; }

 private:
  DbErrorKind kind_;
};

inline const char* to_string(DbErrorKind kind) {
  switch (kind) {
    case DbErrorKind::AlreadyLoaded: return "already-loaded";
    case DbErrorKind::NotLoaded: return "not-loaded";
    case DbErrorKind::CapacityExceeded: return "capacity-exceeded";
    case DbErrorKind::UnknownSegment: return "unknown-segment";
    case DbErrorKind::DoubleDelete: return "double-delete";
    case DbErrorKind::DuplicateId: return "duplicate-id";
    case DbErrorKind::EmptyMutation: return "empty-mutation";
  }
  return "?";
}

}  // namespace asmcap
