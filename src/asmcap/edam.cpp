#include "asmcap/edam.h"

#include <stdexcept>

#include "asmcap/db_error.h"

namespace asmcap {

namespace {

/// FNV-1a over the packed words + length: the content key of a read. Two
/// equal sequences always key the same query stream, which is what makes
/// EDAM decisions query-order-invariant (docs/determinism.md).
std::uint64_t content_key(const Sequence& read) {
  std::uint64_t hash = 0xcbf2'9ce4'8422'2325ULL;
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xffULL;
      hash *= 0x0000'0100'0000'01b3ULL;
    }
  };
  mix(static_cast<std::uint64_t>(read.size()));
  for (const std::uint64_t word : read.packed_words()) mix(word);
  return hash;
}

}  // namespace

EdamAccelerator::EdamAccelerator(EdamConfig config)
    : config_(config), rng_(config.seed) {
  if (config_.array_rows == 0 || config_.array_cols == 0 ||
      config_.array_count == 0)
    throw std::invalid_argument("EdamAccelerator: empty geometry");
}

void EdamAccelerator::load_reference(const std::vector<Sequence>& segments) {
  // Same typed error path as the live ASMCap database (asmcap/db_error.h),
  // so callers comparing the two accelerators branch on one error model.
  if (segments_loaded_ != 0)
    throw DbError(DbErrorKind::AlreadyLoaded,
                  "EdamAccelerator: reference already loaded");
  if (segments.size() > config_.capacity_segments())
    throw DbError(DbErrorKind::CapacityExceeded,
                  "EdamAccelerator: capacity exceeded");
  arrays_in_use_ =
      (segments.size() + config_.array_rows - 1) / config_.array_rows;
  Rng manufacture = rng_.fork(0xEDA1);
  arrays_.reserve(arrays_in_use_);
  readouts_.reserve(arrays_in_use_);
  for (std::size_t a = 0; a < arrays_in_use_; ++a) {
    arrays_.emplace_back(config_.array_rows, config_.array_cols);
    readouts_.emplace_back(config_.array_rows, config_.array_cols,
                           config_.current, manufacture);
  }
  for (std::size_t i = 0; i < segments.size(); ++i)
    arrays_[i / config_.array_rows].write_row(i % config_.array_rows,
                                              segments[i]);
  segments_loaded_ = segments.size();

  circuit_backend_ = std::make_unique<EdamCircuitBackend>(
      arrays_, readouts_, segments_loaded_, config_.array_rows,
      config_.ideal_sensing);
  functional_backend_ = std::make_unique<EdamFunctionalBackend>(
      segments, config_.current, config_.array_cols);
}

const ExecutionBackend& EdamAccelerator::backend() const {
  if (segments_loaded_ == 0)
    throw std::logic_error("EdamAccelerator: no reference loaded");
  if (backend_kind_ == BackendKind::Functional) return *functional_backend_;
  return *circuit_backend_;
}

void EdamAccelerator::check_read(const Sequence& read) const {
  if (segments_loaded_ == 0)
    throw std::logic_error("EdamAccelerator: no reference loaded");
  if (read.size() != config_.array_cols)
    throw std::invalid_argument("EdamAccelerator: read width mismatch");
}

Rng EdamAccelerator::query_stream(const Sequence& read) const {
  return rng_.fork(content_key(read));
}

EdamQueryResult EdamAccelerator::execute(const Sequence& read,
                                         std::size_t threshold,
                                         const Rng& query_rng) const {
  const ExecutionBackend& backend = this->backend();

  EdamQueryResult result;
  // Pass 0: the original read.
  PassResult pass = backend.run_pass(read, MatchMode::EdStar, threshold,
                                     query_rng, 0);
  result.decisions = std::move(pass.decisions);
  result.energy_joules = pass.energy_joules;
  result.searches = 1;

  if (config_.sr_enabled) {
    // Unconditional SR: OR over all rotated searches, whatever T is. This
    // is exactly what TASR's T_l guard improves upon. Every rotation pass
    // evaluates (and pays for) the full bank; pass p forks stream p.
    std::uint64_t pass_salt = 1;
    for (const Sequence& rotated :
         rotation_schedule(read, config_.sr_rotations, config_.sr_direction)) {
      if (rotated == read) continue;
      const PassResult extra = backend.run_pass(
          rotated, MatchMode::EdStar, threshold, query_rng, pass_salt++);
      for (std::size_t g = 0; g < result.decisions.size(); ++g)
        result.decisions[g] = result.decisions[g] || extra.decisions[g];
      result.energy_joules += extra.energy_joules;
      ++result.searches;
    }
  }
  result.latency_seconds =
      static_cast<double>(result.searches) * config_.current.search_time();
  return result;
}

EdamQueryResult EdamAccelerator::search(const Sequence& read,
                                        std::size_t threshold) const {
  check_read(read);
  return execute(read, threshold, query_stream(read));
}

std::vector<EdamQueryResult> EdamAccelerator::search_batch(
    const std::vector<Sequence>& reads, std::size_t threshold,
    std::size_t workers) {
  for (const Sequence& read : reads) check_read(read);
  if (reads.empty()) {
    if (segments_loaded_ == 0)
      throw std::logic_error("EdamAccelerator: no reference loaded");
    return {};
  }
  std::vector<EdamQueryResult> results(reads.size());
  worker_pool(workers).parallel_for(reads.size(), [&](std::size_t i) {
    results[i] = execute(reads[i], threshold, query_stream(reads[i]));
  });
  return results;
}

}  // namespace asmcap
