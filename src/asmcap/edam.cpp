#include "asmcap/edam.h"

#include <stdexcept>

namespace asmcap {

EdamAccelerator::EdamAccelerator(EdamConfig config)
    : config_(config), rng_(config.seed) {
  if (config_.array_rows == 0 || config_.array_cols == 0 ||
      config_.array_count == 0)
    throw std::invalid_argument("EdamAccelerator: empty geometry");
}

void EdamAccelerator::load_reference(const std::vector<Sequence>& segments) {
  if (segments_loaded_ != 0)
    throw std::logic_error("EdamAccelerator: reference already loaded");
  const std::size_t capacity = config_.array_rows * config_.array_count;
  if (segments.size() > capacity)
    throw std::length_error("EdamAccelerator: capacity exceeded");
  arrays_in_use_ =
      (segments.size() + config_.array_rows - 1) / config_.array_rows;
  Rng manufacture = rng_.fork(0xEDA1);
  arrays_.reserve(arrays_in_use_);
  readouts_.reserve(arrays_in_use_);
  for (std::size_t a = 0; a < arrays_in_use_; ++a) {
    arrays_.emplace_back(config_.array_rows, config_.array_cols);
    readouts_.emplace_back(config_.array_rows, config_.array_cols,
                           config_.current, manufacture);
  }
  for (std::size_t i = 0; i < segments.size(); ++i)
    arrays_[i / config_.array_rows].write_row(i % config_.array_rows,
                                              segments[i]);
  segments_loaded_ = segments.size();
}

std::vector<bool> EdamAccelerator::pass(const Sequence& read,
                                        std::size_t threshold) {
  std::vector<bool> decisions(segments_loaded_, false);
  for (std::size_t a = 0; a < arrays_in_use_; ++a) {
    const auto masks = arrays_[a].search_masks(read, MatchMode::EdStar);
    for (std::size_t r = 0; r < config_.array_rows; ++r) {
      const std::size_t global = a * config_.array_rows + r;
      if (global >= segments_loaded_) break;
      if (config_.ideal_sensing) {
        decisions[global] = masks[r].popcount() <= threshold;
        // Still charge the energy the search would burn.
        readouts_[a].sense_row(r, masks[r], threshold, rng_);
      } else {
        decisions[global] =
            readouts_[a].sense_row(r, masks[r], threshold, rng_).match;
      }
    }
  }
  return decisions;
}

EdamQueryResult EdamAccelerator::search(const Sequence& read,
                                        std::size_t threshold) {
  if (segments_loaded_ == 0)
    throw std::logic_error("EdamAccelerator: no reference loaded");
  if (read.size() != config_.array_cols)
    throw std::invalid_argument("EdamAccelerator: read width mismatch");

  double energy_before = 0.0;
  for (const auto& readout : readouts_)
    energy_before += readout.consumed_energy();

  EdamQueryResult result;
  std::vector<bool> decisions = pass(read, threshold);
  result.searches = 1;
  if (config_.sr_enabled) {
    // Unconditional SR: OR over all rotated searches, whatever T is. This
    // is exactly what TASR's T_l guard improves upon.
    for (const Sequence& rotated :
         rotation_schedule(read, config_.sr_rotations, config_.sr_direction)) {
      if (rotated == read) continue;
      const std::vector<bool> extra = pass(rotated, threshold);
      for (std::size_t g = 0; g < decisions.size(); ++g)
        decisions[g] = decisions[g] || extra[g];
      ++result.searches;
    }
  }
  result.decisions = std::move(decisions);
  result.latency_seconds =
      static_cast<double>(result.searches) * config_.current.search_time();
  double energy_after = 0.0;
  for (const auto& readout : readouts_)
    energy_after += readout.consumed_energy();
  result.energy_joules = energy_after - energy_before;
  return result;
}

}  // namespace asmcap
