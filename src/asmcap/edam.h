#pragma once
// EDAM accelerator model (Hanhan et al., ISCA 2022) — the primary
// comparator. Same ED* matching logic as ASMCap but with current-domain
// matchline sensing (pre-charge, discharge, sample-and-hold), no Hamming
// mode (no HDAC), and optionally the original unconditional Sequence
// Rotation (SR) strategy. Runs on the same ExecutionBackend seam as
// AsmcapAccelerator: a cell-accurate EdamCircuitBackend and a word-parallel
// EdamFunctionalBackend (see backend.h), switchable at runtime.
//
// Ownership: the accelerator owns its arrays, readouts, backends, and
// session pool; backends hold non-owning references into it (hence not
// movable). Thread-safety: the mutating entry points (load_reference,
// set_backend, search_batch) belong to one control thread at a time;
// search() is const and thread-safe — it is what search_batch fans across
// workers.
//
// RNG discipline (docs/determinism.md): EDAM's per-query stream is keyed
// by the READ CONTENT — query_rng = master.fork(content key of the read) —
// and every sensing decision forks from it per (pass, global segment id).
// A decision is therefore a pure function of (seed, read, pass, segment):
// independent of every query that ran before it, of the worker that
// evaluated it, and of whether it ran serially or batched. This is what
// makes search_batch bit-identical to sequential search() calls and what
// fixed the seed-era order-dependent noise (the old pass() loop drew
// sequentially from a shared member stream).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "align/edstar.h"
#include "asmcap/backend.h"
#include "cam/array.h"
#include "cam/current_readout.h"
#include "circuit/process.h"
#include "circuit/timing.h"
#include "genome/sequence.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace asmcap {

struct EdamConfig {
  std::size_t array_rows = 256;
  std::size_t array_cols = 256;
  std::size_t array_count = 512;
  CurrentDomainParams current;
  /// EDAM's SR: rotate unconditionally NR times (no threshold awareness).
  bool sr_enabled = false;
  std::size_t sr_rotations = 2;
  RotateDir sr_direction = RotateDir::Both;
  bool ideal_sensing = false;
  std::uint64_t seed = 0xEDA0'EDA0'EDA0'EDA0ULL;

  std::size_t capacity_segments() const { return array_rows * array_count; }
};

struct EdamQueryResult {
  std::vector<bool> decisions;  ///< Per loaded segment.
  std::size_t searches = 1;
  double latency_seconds = 0.0;
  double energy_joules = 0.0;
};

class EdamAccelerator {
 public:
  explicit EdamAccelerator(EdamConfig config);

  // Not movable: the backends hold pointers into arrays_/readouts_, which
  // a move would leave dangling.
  EdamAccelerator(EdamAccelerator&&) = delete;
  EdamAccelerator& operator=(EdamAccelerator&&) = delete;

  void load_reference(const std::vector<Sequence>& segments);

  /// Selects the execution backend for subsequent searches. The circuit
  /// backend (default) is cell-accurate; the functional backend computes
  /// the same decisions under ideal sensing (and bit-identical energy
  /// always) an order of magnitude faster. May be switched at any time.
  void set_backend(BackendKind kind) { backend_kind_ = kind; }
  BackendKind backend_kind() const { return backend_kind_; }
  /// The active backend (valid after load_reference).
  const ExecutionBackend& backend() const;

  /// Searches one read against every loaded segment. Const and
  /// thread-safe; energy is accumulated from per-pass deltas (never from
  /// before/after scans of shared state). The result is a pure function of
  /// (config, loaded reference, read, threshold) — see the RNG note above.
  EdamQueryResult search(const Sequence& read, std::size_t threshold) const;

  /// Searches a batch of reads, fanning them across `workers` threads.
  /// Every read's stream is keyed by its content, so the results are
  /// bit-identical to sequential search() calls, for any worker count and
  /// any query order.
  std::vector<EdamQueryResult> search_batch(const std::vector<Sequence>& reads,
                                            std::size_t threshold,
                                            std::size_t workers = 1);

  /// The session-owned worker pool (see SessionPool), reused across
  /// search_batch calls. NOTE: ThreadPool::parallel_for is not reentrant —
  /// never call back into the pool from inside a task it is running.
  ThreadPool& worker_pool(std::size_t workers = 0) {
    return pool_.get(workers);
  }

  std::size_t loaded_segments() const { return segments_loaded_; }
  const EdamConfig& config() const { return config_; }
  double search_time() const { return config_.current.search_time(); }

 private:
  void check_read(const Sequence& read) const;
  /// The content-keyed per-query stream (never advances the master).
  Rng query_stream(const Sequence& read) const;
  /// Runs the pass schedule (original + SR rotations) on the active
  /// backend, OR-accumulating decisions and summing per-pass energy.
  EdamQueryResult execute(const Sequence& read, std::size_t threshold,
                          const Rng& query_rng) const;

  EdamConfig config_;
  std::vector<CamArray> arrays_;
  std::vector<CurrentArrayReadout> readouts_;
  std::unique_ptr<EdamCircuitBackend> circuit_backend_;
  std::unique_ptr<EdamFunctionalBackend> functional_backend_;
  BackendKind backend_kind_ = BackendKind::Circuit;
  std::size_t segments_loaded_ = 0;
  std::size_t arrays_in_use_ = 0;
  Rng rng_;  ///< Master stream: forked per query, never advanced.
  SessionPool pool_;
};

}  // namespace asmcap
