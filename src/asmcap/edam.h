#pragma once
// EDAM accelerator model (Hanhan et al., ISCA 2022) — the primary
// comparator. Same ED* matching logic as ASMCap but with current-domain
// matchline sensing (pre-charge, discharge, sample-and-hold), no Hamming
// mode (no HDAC), and optionally the original unconditional Sequence
// Rotation (SR) strategy.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "align/edstar.h"
#include "cam/array.h"
#include "cam/current_readout.h"
#include "circuit/process.h"
#include "circuit/timing.h"
#include "genome/sequence.h"
#include "util/rng.h"

namespace asmcap {

struct EdamConfig {
  std::size_t array_rows = 256;
  std::size_t array_cols = 256;
  std::size_t array_count = 512;
  CurrentDomainParams current;
  /// EDAM's SR: rotate unconditionally NR times (no threshold awareness).
  bool sr_enabled = false;
  std::size_t sr_rotations = 2;
  RotateDir sr_direction = RotateDir::Both;
  bool ideal_sensing = false;
  std::uint64_t seed = 0xEDA0'EDA0'EDA0'EDA0ULL;
};

struct EdamQueryResult {
  std::vector<bool> decisions;  ///< Per loaded segment.
  std::size_t searches = 1;
  double latency_seconds = 0.0;
  double energy_joules = 0.0;
};

class EdamAccelerator {
 public:
  explicit EdamAccelerator(EdamConfig config);

  void load_reference(const std::vector<Sequence>& segments);

  EdamQueryResult search(const Sequence& read, std::size_t threshold);

  std::size_t loaded_segments() const { return segments_loaded_; }
  const EdamConfig& config() const { return config_; }
  double search_time() const { return config_.current.search_time(); }

 private:
  std::vector<bool> pass(const Sequence& read, std::size_t threshold);

  EdamConfig config_;
  std::vector<CamArray> arrays_;
  std::vector<CurrentArrayReadout> readouts_;
  std::size_t segments_loaded_ = 0;
  std::size_t arrays_in_use_ = 0;
  Rng rng_;
};

}  // namespace asmcap
