// EDAM execution backends (see backend.h): the comparator's two paths
// through the shared ExecutionBackend seam. Both follow the engine's RNG
// discipline — per-decision streams forked from the pass stream, keyed by
// global segment id (docs/determinism.md) — so EDAM decisions are
// worker-count- and query-order-invariant like ASMCap's.

#include <stdexcept>

#include "align/edstar.h"
#include "align/hamming.h"
#include "asmcap/backend.h"
#include "circuit/matchline.h"

namespace asmcap {

EdamCircuitBackend::EdamCircuitBackend(
    const std::vector<CamArray>& arrays,
    const std::vector<CurrentArrayReadout>& readouts,
    std::size_t segment_count, std::size_t array_rows, bool ideal_sensing,
    std::size_t segment_base)
    : arrays_(&arrays),
      readouts_(&readouts),
      segment_count_(segment_count),
      array_rows_(array_rows),
      ideal_sensing_(ideal_sensing),
      segment_base_(segment_base) {}

PassResult EdamCircuitBackend::run_pass(const Sequence& read, MatchMode mode,
                                        std::size_t threshold,
                                        const Rng& query_rng,
                                        std::uint64_t pass_salt) const {
  const Rng pass_rng = query_rng.fork(pass_salt);
  PassResult result;
  result.decisions.assign(segment_count_, false);
  for (std::size_t a = 0; a < arrays_->size(); ++a) {
    const auto masks = (*arrays_)[a].search_masks(read, mode);
    for (std::size_t r = 0; r < array_rows_; ++r) {
      const std::size_t global = a * array_rows_ + r;
      if (global >= segment_count_) break;
      // Sensing noise keyed by global segment id: placement-invariant.
      Rng decide_rng = pass_rng.fork(
          static_cast<std::uint64_t>(segment_base_ + global));
      double row_energy = 0.0;
      const RowDecision decision = (*readouts_)[a].measure_row(
          r, masks[r], threshold, decide_rng, &row_energy);
      result.energy_joules += row_energy;
      result.decisions[global] = ideal_sensing_
                                     ? masks[r].popcount() <= threshold
                                     : decision.match;
    }
  }
  return result;
}

EdamFunctionalBackend::EdamFunctionalBackend(
    const std::vector<Sequence>& segments, const CurrentDomainParams& params,
    std::size_t cols)
    : params_(params), cols_(cols) {
  packed_.reserve(segments.size());
  for (const Sequence& segment : segments)
    packed_.push_back(segment.packed_words());
}

PassResult EdamFunctionalBackend::run_pass(const Sequence& read,
                                           MatchMode mode,
                                           std::size_t threshold,
                                           const Rng& /*query_rng*/,
                                           std::uint64_t /*pass_salt*/) const {
  if (read.size() != cols_)
    throw std::invalid_argument("EdamFunctionalBackend: read width mismatch");
  const std::vector<std::uint64_t> packed_read = read.packed_words();

  PassResult result;
  result.decisions.assign(packed_.size(), false);
  for (std::size_t g = 0; g < packed_.size(); ++g) {
    const std::size_t count =
        mode == MatchMode::Hamming
            ? hamming_packed(packed_[g], packed_read, cols_)
            : ed_star_packed(packed_[g], packed_read, cols_);
    result.decisions[g] = count <= threshold;
    result.energy_joules += current_row_search_energy(count, cols_, params_);
  }
  return result;
}

}  // namespace asmcap
