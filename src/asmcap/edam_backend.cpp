// EDAM execution backends (see backend.h): the comparator's two paths
// through the shared ExecutionBackend seam. Both follow the engine's RNG
// discipline — per-decision streams forked from the pass stream, keyed by
// global segment id (docs/determinism.md) — so EDAM decisions are
// worker-count- and query-order-invariant like ASMCap's.

#include <stdexcept>

#include "align/kernels.h"
#include "asmcap/backend.h"
#include "circuit/matchline.h"

namespace asmcap {

EdamCircuitBackend::EdamCircuitBackend(
    const std::vector<CamArray>& arrays,
    const std::vector<CurrentArrayReadout>& readouts,
    std::size_t segment_count, std::size_t array_rows, bool ideal_sensing,
    std::size_t segment_base)
    : arrays_(&arrays),
      readouts_(&readouts),
      segment_count_(segment_count),
      array_rows_(array_rows),
      ideal_sensing_(ideal_sensing),
      segment_base_(segment_base) {}

PassResult EdamCircuitBackend::run_pass(const Sequence& read, MatchMode mode,
                                        std::size_t threshold,
                                        const Rng& query_rng,
                                        std::uint64_t pass_salt) const {
  const Rng pass_rng = query_rng.fork(pass_salt);
  PassResult result;
  result.decisions.assign(segment_count_, false);
  for (std::size_t a = 0; a < arrays_->size(); ++a) {
    const auto masks = (*arrays_)[a].search_masks(read, mode);
    for (std::size_t r = 0; r < array_rows_; ++r) {
      const std::size_t global = a * array_rows_ + r;
      if (global >= segment_count_) break;
      // Sensing noise keyed by global segment id: placement-invariant.
      Rng decide_rng = pass_rng.fork(
          static_cast<std::uint64_t>(segment_base_ + global));
      double row_energy = 0.0;
      const RowDecision decision = (*readouts_)[a].measure_row(
          r, masks[r], threshold, decide_rng, &row_energy);
      result.energy_joules += row_energy;
      result.decisions[global] = ideal_sensing_
                                     ? masks[r].popcount() <= threshold
                                     : decision.match;
    }
  }
  return result;
}

EdamFunctionalBackend::EdamFunctionalBackend(
    const std::vector<Sequence>& segments, const CurrentDomainParams& params,
    std::size_t cols)
    : packed_(segments, cols), params_(params), cols_(cols) {}

PassResult EdamFunctionalBackend::run_pass(const Sequence& read,
                                           MatchMode mode,
                                           std::size_t threshold,
                                           const Rng& /*query_rng*/,
                                           std::uint64_t /*pass_salt*/) const {
  if (read.size() != cols_)
    throw std::invalid_argument("EdamFunctionalBackend: read width mismatch");
  // Read-derived work once per (read, rotation), then one SIMD-dispatched
  // block sweep over the whole packed segment matrix.
  const PackedReadView view(read);
  std::vector<std::uint32_t> counts(packed_.rows());
  const KernelOps& ops = active_kernel_ops();
  (mode == MatchMode::Hamming ? ops.hamming_block : ops.ed_star_block)(
      packed_.data(), packed_.rows(), view, counts.data());

  PassResult result;
  result.decisions.assign(packed_.rows(), false);
  for (std::size_t g = 0; g < packed_.rows(); ++g) {
    result.decisions[g] = counts[g] <= threshold;
    result.energy_joules +=
        current_row_search_energy(counts[g], cols_, params_);
  }
  return result;
}

}  // namespace asmcap
