#include <algorithm>
#include <stdexcept>

#include "align/kernels.h"
#include "asmcap/backend.h"

namespace asmcap {

namespace {

/// Nominal (mismatch-free silicon) charge-domain search energy of one row:
/// paper Eq. 1 with M = 1 and every capacitor at its mean.
double nominal_row_energy(std::size_t n_mis, std::size_t n_cells,
                          const ChargeDomainParams& charge) {
  const double n = static_cast<double>(n_cells);
  const double mis = static_cast<double>(n_mis);
  return mis * (n - mis) / n * charge.cap_mean * charge.vdd * charge.vdd;
}

}  // namespace

FunctionalBackend::FunctionalBackend(const AsmcapConfig& config,
                                     const LiveDirectory& directory)
    : dir_(&directory),
      cols_(config.array_cols),
      words_per_row_((config.array_cols + 31) / 32),
      charge_(config.process.charge),
      sl_params_() {}

void FunctionalBackend::ensure_slots(std::size_t slots) {
  if (slots <= rows_) return;
  words_.resize(slots * words_per_row_, 0);
  rows_ = slots;
}

void FunctionalBackend::write_slot(std::size_t slot,
                                   const Sequence& segment) {
  if (segment.size() != cols_)
    throw std::invalid_argument("FunctionalBackend: segment width mismatch");
  ensure_slots(slot + 1);
  const std::vector<std::uint64_t> packed = segment.packed_words();
  std::copy(packed.begin(), packed.end(),
            words_.begin() + slot * words_per_row_);
}

PassResult FunctionalBackend::run_pass(const Sequence& read, MatchMode mode,
                                       std::size_t threshold,
                                       const Rng& /*query_rng*/,
                                       std::uint64_t /*pass_salt*/) const {
  if (read.size() != cols_)
    throw std::invalid_argument("FunctionalBackend: read width mismatch");
  // Read-derived work once per (read, rotation), then one SIMD-dispatched
  // block sweep over the whole packed slot matrix (tombstoned slots are
  // counted too — cheaper than scattering — and masked below).
  const PackedReadView view(read);
  std::vector<std::uint32_t> counts(rows_);
  const KernelOps& ops = active_kernel_ops();
  (mode == MatchMode::Hamming ? ops.hamming_block : ops.ed_star_block)(
      words_.data(), rows_, view, counts.data());

  PassResult result;
  result.decisions.assign(rows_, false);
  // Every array holding at least one live row drives its search lines once
  // per pass, whichever backend evaluates the rows; all-dead arrays are
  // never driven (same SL gating as the circuit path).
  result.energy_joules = static_cast<double>(dir_->arrays_in_use()) *
                         sl_params_.energy_per_base *
                         static_cast<double>(cols_);
  for (std::size_t slot = 0; slot < rows_; ++slot) {
    if (!dir_->slot_live(slot)) continue;
    result.decisions[slot] = counts[slot] <= threshold;
    result.energy_joules += nominal_row_energy(counts[slot], cols_, charge_);
  }
  return result;
}

}  // namespace asmcap
