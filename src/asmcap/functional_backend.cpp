#include <stdexcept>

#include "align/edstar.h"
#include "align/hamming.h"
#include "asmcap/backend.h"

namespace asmcap {

namespace {

/// Nominal (mismatch-free silicon) charge-domain search energy of one row:
/// paper Eq. 1 with M = 1 and every capacitor at its mean.
double nominal_row_energy(std::size_t n_mis, std::size_t n_cells,
                          const ChargeDomainParams& charge) {
  const double n = static_cast<double>(n_cells);
  const double mis = static_cast<double>(n_mis);
  return mis * (n - mis) / n * charge.cap_mean * charge.vdd * charge.vdd;
}

}  // namespace

FunctionalBackend::FunctionalBackend(const std::vector<Sequence>& segments,
                                     const AsmcapConfig& config)
    : cols_(config.array_cols),
      arrays_in_use_(segments.empty()
                         ? 0
                         : (segments.size() + config.array_rows - 1) /
                               config.array_rows),
      charge_(config.process.charge),
      sl_params_() {
  packed_.reserve(segments.size());
  for (const Sequence& segment : segments)
    packed_.push_back(segment.packed_words());
}

PassResult FunctionalBackend::run_pass(const Sequence& read, MatchMode mode,
                                       std::size_t threshold,
                                       const Rng& /*query_rng*/,
                                       std::uint64_t /*pass_salt*/) const {
  if (read.size() != cols_)
    throw std::invalid_argument("FunctionalBackend: read width mismatch");
  const std::vector<std::uint64_t> packed_read = read.packed_words();

  PassResult result;
  result.decisions.assign(packed_.size(), false);
  // Every in-use array drives its search lines once per pass, whichever
  // backend evaluates the rows.
  result.energy_joules = static_cast<double>(arrays_in_use_) *
                         sl_params_.energy_per_base *
                         static_cast<double>(cols_);
  for (std::size_t g = 0; g < packed_.size(); ++g) {
    const std::size_t count =
        mode == MatchMode::Hamming
            ? hamming_packed(packed_[g], packed_read, cols_)
            : ed_star_packed(packed_[g], packed_read, cols_);
    result.decisions[g] = count <= threshold;
    result.energy_joules += nominal_row_energy(count, cols_, charge_);
  }
  return result;
}

}  // namespace asmcap
