#include <stdexcept>

#include "align/kernels.h"
#include "asmcap/backend.h"

namespace asmcap {

namespace {

/// Nominal (mismatch-free silicon) charge-domain search energy of one row:
/// paper Eq. 1 with M = 1 and every capacitor at its mean.
double nominal_row_energy(std::size_t n_mis, std::size_t n_cells,
                          const ChargeDomainParams& charge) {
  const double n = static_cast<double>(n_cells);
  const double mis = static_cast<double>(n_mis);
  return mis * (n - mis) / n * charge.cap_mean * charge.vdd * charge.vdd;
}

}  // namespace

FunctionalBackend::FunctionalBackend(const std::vector<Sequence>& segments,
                                     const AsmcapConfig& config)
    : packed_(segments, config.array_cols),
      cols_(config.array_cols),
      arrays_in_use_(segments.empty()
                         ? 0
                         : (segments.size() + config.array_rows - 1) /
                               config.array_rows),
      charge_(config.process.charge),
      sl_params_() {}

PassResult FunctionalBackend::run_pass(const Sequence& read, MatchMode mode,
                                       std::size_t threshold,
                                       const Rng& /*query_rng*/,
                                       std::uint64_t /*pass_salt*/) const {
  if (read.size() != cols_)
    throw std::invalid_argument("FunctionalBackend: read width mismatch");
  // Read-derived work once per (read, rotation), then one SIMD-dispatched
  // block sweep over the whole packed segment matrix.
  const PackedReadView view(read);
  std::vector<std::uint32_t> counts(packed_.rows());
  const KernelOps& ops = active_kernel_ops();
  (mode == MatchMode::Hamming ? ops.hamming_block : ops.ed_star_block)(
      packed_.data(), packed_.rows(), view, counts.data());

  PassResult result;
  result.decisions.assign(packed_.rows(), false);
  // Every in-use array drives its search lines once per pass, whichever
  // backend evaluates the rows.
  result.energy_joules = static_cast<double>(arrays_in_use_) *
                         sl_params_.energy_per_base *
                         static_cast<double>(cols_);
  for (std::size_t g = 0; g < packed_.rows(); ++g) {
    result.decisions[g] = counts[g] <= threshold;
    result.energy_joules += nominal_row_energy(counts[g], cols_, charge_);
  }
  return result;
}

}  // namespace asmcap
