#include "asmcap/hdac.h"

namespace asmcap {

bool Hdac::combine(bool hd_match, bool ed_star_match, double p,
                   Rng& rng) const {
  if (hd_match == ed_star_match) return ed_star_match;
  return rng.uniform() < p ? hd_match : ed_star_match;
}

}  // namespace asmcap
