#pragma once
// Hamming-Distance Aid Correction (paper §IV-A, Algorithm 1).
//
// When substitutions dominate, ED* hides many of them (the +/-1 window can
// match a substituted base against an untouched neighbour), producing false
// positives at thresholds below the true ED. HDAC runs a second search in
// Hamming mode (MUX select S = 0) and, where the two results disagree,
// adopts the HD result with probability p = f(e_s, e_id, T). p is computed
// offline from the workload's error profile.

#include "asmcap/config.h"
#include "genome/edits.h"
#include "util/rng.h"

namespace asmcap {

class Hdac {
 public:
  explicit Hdac(HdacParams params) : params_(params) {}

  /// Pre-processed selection probability for a workload / threshold.
  double probability(const ErrorRates& rates, std::size_t threshold) const {
    return hdac_probability(params_, rates, threshold);
  }

  /// True when the p for this workload justifies the extra HD search cycle
  /// (p >= min_probability).
  bool enabled(const ErrorRates& rates, std::size_t threshold) const {
    return probability(rates, threshold) >= params_.min_probability;
  }

  /// Algorithm 1: combine the two matching results for one row.
  /// When they agree the answer is unambiguous; when they disagree the HD
  /// result is selected with probability p.
  bool combine(bool hd_match, bool ed_star_match, double p, Rng& rng) const;

  const HdacParams& params() const { return params_; }

 private:
  HdacParams params_;
};

}  // namespace asmcap
