#include "asmcap/ingest.h"

#include <stdexcept>
#include <utility>

#include "asmcap/sharded.h"
#include "genome/stream_reader.h"

namespace asmcap {

const SegmentOrigin& ReferenceIndex::origin(std::uint64_t id) const {
  if (!contains(id))
    throw std::out_of_range("ReferenceIndex: unknown segment id " +
                            std::to_string(id));
  return origins_[id - first_id_];
}

std::string ReferenceIndex::label(std::uint64_t id) const {
  if (!contains(id)) return "segment:" + std::to_string(id);
  const SegmentOrigin& at = origins_[id - first_id_];
  return names_[at.record] + ":" + std::to_string(at.offset);
}

IngestStats ingest_reference(ShardedAccelerator& db, SeqStreamReader& reader,
                             const IngestOptions& options,
                             ReferenceIndex* index) {
  const std::size_t width = options.segment_width != 0
                                ? options.segment_width
                                : db.config().array_cols;
  if (width == 0)
    throw std::invalid_argument("ingest_reference: segment width is zero");
  const std::size_t batch = options.append_batch != 0 ? options.append_batch : 1;

  if (index != nullptr) *index = ReferenceIndex{};

  IngestStats stats;
  std::vector<Sequence> segments;
  std::vector<SegmentOrigin> origins;
  segments.reserve(batch);
  origins.reserve(batch);

  const auto flush = [&]() {
    if (segments.empty()) return;
    const std::vector<std::uint64_t> ids = db.append_segments(segments);
    if (index != nullptr) {
      if (!index->have_first_ && !ids.empty()) {
        index->first_id_ = ids.front();
        index->have_first_ = true;
      }
      for (std::size_t i = 0; i < ids.size(); ++i) {
        // append_segments hands out consecutive ascending ids during an
        // uninterrupted ingest, which keeps the index dense.
        if (ids[i] != index->first_id_ + index->origins_.size())
          throw std::logic_error(
              "ReferenceIndex: non-consecutive segment ids (concurrent "
              "mutation during ingest?)");
        index->origins_.push_back(origins[i]);
      }
    }
    segments.clear();
    origins.clear();
  };

  SeqRecord record;
  while (reader.next(record)) {
    ++stats.records;
    const std::uint32_t record_slot =
        index != nullptr ? static_cast<std::uint32_t>(index->names_.size()) : 0;
    if (index != nullptr) index->names_.push_back(record.id);
    const std::size_t length = record.seq.size();
    std::size_t pos = 0;
    for (; pos + width <= length; pos += width) {
      segments.push_back(record.seq.subseq(pos, width));
      origins.push_back(SegmentOrigin{record_slot, pos});
      ++stats.segments;
      if (segments.size() >= batch) flush();
    }
    const std::size_t tail = length - pos;
    if (tail == 0) {
      if (length == 0) ++stats.empty_records;
    } else if (options.pad_final_tile) {
      Sequence tile = record.seq.subseq(pos, tail);
      while (tile.size() < width) tile.push_back(Base::A);
      segments.push_back(std::move(tile));
      origins.push_back(SegmentOrigin{record_slot, pos});
      ++stats.segments;
      ++stats.padded_segments;
      if (segments.size() >= batch) flush();
    } else {
      stats.dropped_tail_bases += tail;
      if (pos == 0) ++stats.empty_records;
    }
  }
  flush();
  if (options.compact_after) db.compact();

  stats.bases = reader.bases();
  stats.ambiguous_bases = reader.ambiguous_bases();
  return stats;
}

}  // namespace asmcap
