#pragma once
// Reference ingestion: tiles streamed FASTA records into the fixed-width
// segments the accelerator database stores, loading them incrementally via
// ShardedAccelerator::append_segments so an arbitrarily large reference is
// ingested in O(append_batch) working memory. The id <-> (record, offset)
// mapping is preserved in a ReferenceIndex so search results can be
// reported against the original record names instead of raw segment ids.
//
// Determinism: segments are appended in input order, and append_segments
// hands out consecutive ascending ids, so the same input file always
// yields the same id assignment (docs/determinism.md rule 10); by the
// mutation-history invariance of the live database (rule 8), a database
// built this way decides bit-identically to load_reference of the same
// tiles.
//
// Ownership: ingest_reference borrows the accelerator, reader, and index
// for the duration of the call; nothing is retained. Thread-safety: the
// call drives mutating accelerator entry points, so it follows the
// single-mutator rule documented in asmcap/sharded.h — do not ingest
// concurrently with other mutations (concurrent searches are fine).
// Reentrancy: no callbacks into user code.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "genome/sequence.h"

namespace asmcap {

class SeqStreamReader;
class ShardedAccelerator;

struct IngestOptions {
  /// Tile width in bases; 0 means the accelerator's config().array_cols
  /// (the only width the engine can search, so override with care).
  std::size_t segment_width = 0;
  /// Segments per append_segments call — the working-memory bound and the
  /// epoch-publish granularity.
  std::size_t append_batch = 512;
  /// A record's trailing partial tile is padded with 'A' to full width
  /// when true (the deterministic policy the CLI uses), dropped when
  /// false.
  bool pad_final_tile = true;
  /// Fold the hot staging banks into cold storage once ingestion
  /// finishes (ShardedAccelerator::compact).
  bool compact_after = true;
};

struct IngestStats {
  std::size_t records = 0;
  std::size_t bases = 0;
  std::size_t ambiguous_bases = 0;  ///< Non-ACGT characters resolved to 'A'.
  std::size_t segments = 0;
  std::size_t padded_segments = 0;    ///< Final tiles padded to full width.
  std::size_t dropped_tail_bases = 0;  ///< Bases discarded (pad_final_tile off).
  std::size_t empty_records = 0;       ///< Records too short to yield a tile.
};

/// Where a segment's bases came from: `record` indexes the ingested
/// record's name in the ReferenceIndex, `offset` is the 0-based base
/// offset of the tile within that record.
struct SegmentOrigin {
  std::uint32_t record = 0;
  std::uint64_t offset = 0;
};

/// Dense id -> (record name, offset) table for every segment one
/// ingest_reference call appended. Ids are consecutive from first_id()
/// (append order == input order), so lookup is O(1) vector indexing.
class ReferenceIndex {
 public:
  std::size_t size() const { return origins_.size(); }
  bool empty() const { return origins_.empty(); }
  std::uint64_t first_id() const { return first_id_; }

  /// True when `id` belongs to this ingest run.
  bool contains(std::uint64_t id) const {
    return id >= first_id_ && id - first_id_ < origins_.size();
  }

  /// Origin of segment `id`. Throws std::out_of_range for foreign ids.
  const SegmentOrigin& origin(std::uint64_t id) const;

  /// Name of the `record`-th ingested record.
  const std::string& record_name(std::uint32_t record) const {
    return names_.at(record);
  }

  /// Human-readable "record_name:offset" label for segment `id`; falls
  /// back to "segment:<id>" for ids this index does not cover.
  std::string label(std::uint64_t id) const;

 private:
  friend IngestStats ingest_reference(ShardedAccelerator&, SeqStreamReader&,
                                      const IngestOptions&, ReferenceIndex*);
  std::uint64_t first_id_ = 0;
  bool have_first_ = false;
  std::vector<std::string> names_;
  std::vector<SegmentOrigin> origins_;
};

/// Streams every record out of `reader`, tiles it into fixed-width
/// segments, and appends them to `db` in batches. When `index` is
/// non-null it is reset and filled with the id mapping. Throws
/// StreamParseError on malformed input and DbError (CapacityExceeded)
/// when the reference outgrows the database.
IngestStats ingest_reference(ShardedAccelerator& db, SeqStreamReader& reader,
                             const IngestOptions& options = {},
                             ReferenceIndex* index = nullptr);

}  // namespace asmcap
