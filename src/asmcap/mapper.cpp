#include "asmcap/mapper.h"

#include <stdexcept>

namespace asmcap {

ReferenceMapper::ReferenceMapper(std::size_t array_count,
                                 std::size_t array_rows)
    : array_count_(array_count), array_rows_(array_rows) {
  if (array_count == 0 || array_rows == 0)
    throw std::invalid_argument("ReferenceMapper: empty geometry");
}

std::vector<SegmentLocation> ReferenceMapper::map_segments(
    std::size_t segment_count) {
  if (mapped_ + segment_count > capacity())
    throw std::length_error("ReferenceMapper: capacity exceeded");
  std::vector<SegmentLocation> locations;
  locations.reserve(segment_count);
  for (std::size_t i = 0; i < segment_count; ++i) {
    const std::size_t global = mapped_ + i;
    locations.push_back({global / array_rows_, global % array_rows_});
  }
  mapped_ += segment_count;
  return locations;
}

std::optional<std::size_t> ReferenceMapper::segment_at(std::size_t array,
                                                       std::size_t row) const {
  if (array >= array_count_ || row >= array_rows_)
    throw std::out_of_range("ReferenceMapper::segment_at");
  const std::size_t global = array * array_rows_ + row;
  if (global >= mapped_) return std::nullopt;
  return global;
}

std::size_t ReferenceMapper::arrays_in_use() const {
  return (mapped_ + array_rows_ - 1) / array_rows_;
}

}  // namespace asmcap
