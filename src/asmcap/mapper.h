#pragma once
// Reference mapper: distributes reference segments across the ASMCap
// arrays. Segments fill arrays row-by-row; the mapping is recorded so that
// (array, row) match reports can be translated back to global segment ids
// and reference positions.

#include <cstddef>
#include <optional>
#include <vector>

#include "genome/sequence.h"

namespace asmcap {

/// Where a segment landed.
struct SegmentLocation {
  std::size_t array = 0;
  std::size_t row = 0;
};

class ReferenceMapper {
 public:
  ReferenceMapper(std::size_t array_count, std::size_t array_rows);

  /// Assigns locations for `segment_count` segments in fill order.
  /// Throws std::length_error if capacity is exceeded.
  std::vector<SegmentLocation> map_segments(std::size_t segment_count);

  /// Reverse lookup: global segment id of an (array, row), or nullopt if
  /// that row holds nothing.
  std::optional<std::size_t> segment_at(std::size_t array,
                                        std::size_t row) const;

  std::size_t mapped_segments() const { return mapped_; }
  std::size_t capacity() const { return array_count_ * array_rows_; }
  std::size_t arrays_in_use() const;

 private:
  std::size_t array_count_;
  std::size_t array_rows_;
  std::size_t mapped_ = 0;
};

}  // namespace asmcap
