#include "asmcap/planner.h"

namespace asmcap {

QueryPlan QueryPlanner::plan(std::size_t threshold, const ErrorRates& rates,
                             StrategyMode mode) const {
  QueryPlan plan;
  if (hdac_active(mode)) {
    plan.hdac_p = hdac_.probability(rates, threshold);
    plan.hd_search = hdac_.enabled(rates, threshold);
    if (!plan.hd_search) plan.hdac_p = 0.0;  // disabled below min_probability
  }
  if (tasr_active(mode)) {
    plan.tasr_tl = tasr_.lower_bound(rates, config_.array_cols);
    plan.tasr_triggered =
        tasr_.should_rotate(threshold, rates, config_.array_cols);
    if (plan.tasr_triggered) plan.ed_star_searches = tasr_.schedule_length();
  }
  return plan;
}

ExecutionPlan QueryPlanner::build(const Sequence& read, std::size_t threshold,
                                  const ErrorRates& rates,
                                  StrategyMode mode) const {
  ExecutionPlan out;
  out.summary = plan(threshold, rates, mode);
  out.threshold = threshold;
  out.mode = mode;
  out.hd_pass = out.summary.hd_search;
  out.hdac_p = out.summary.hdac_p;
  out.ed_star_passes.push_back(read);
  if (out.summary.tasr_triggered) {
    for (Sequence& rotated : tasr_.schedule(read)) {
      if (rotated == read) continue;  // original already searched
      out.ed_star_passes.push_back(std::move(rotated));
    }
  }
  return out;
}

}  // namespace asmcap
