#pragma once
// Query planning, separated from execution (engine layering: planner ->
// backend -> batch engine). The planner owns the offline pre-processed
// correction strategies (HDAC's p, TASR's T_l) and turns one
// (read, threshold, mode) request into an immutable ExecutionPlan listing
// exactly which array passes an ExecutionBackend must run. Planning draws
// no randomness and mutates nothing, so plans can be built concurrently
// and executed on any backend.

#include <cstddef>
#include <limits>
#include <vector>

#include "asmcap/config.h"
#include "asmcap/hdac.h"
#include "asmcap/tasr.h"
#include "genome/edits.h"
#include "genome/sequence.h"

namespace asmcap {

/// The operation schedule of one read query (the ledger/costing view).
struct QueryPlan {
  std::size_t ed_star_searches = 1;  ///< 1 + rotations when TASR triggers.
  bool hd_search = false;            ///< HDAC's extra Hamming pass.
  double hdac_p = 0.0;               ///< Selection probability (0 if off).
  std::size_t tasr_tl =
      std::numeric_limits<std::size_t>::max();  ///< Rotation trigger bound.
  bool tasr_triggered = false;

  std::size_t total_searches() const {
    return ed_star_searches + (hd_search ? 1u : 0u);
  }
};

/// A fully materialised, immutable plan for one read query: the concrete
/// pass list a backend executes plus the costing summary the ledger records.
struct ExecutionPlan {
  QueryPlan summary;
  /// ED* passes in execution order: the original read first, then each
  /// distinct rotation of the TASR schedule (duplicates of the original are
  /// dropped — they are costed but never re-searched).
  std::vector<Sequence> ed_star_passes;
  bool hd_pass = false;    ///< == summary.hd_search.
  double hdac_p = 0.0;     ///< == summary.hdac_p.
  std::size_t threshold = 0;
  StrategyMode mode = StrategyMode::Full;
};

class QueryPlanner {
 public:
  explicit QueryPlanner(const AsmcapConfig& config)
      : config_(config), hdac_(config.hdac), tasr_(config.tasr) {}

  /// Costing summary for one query given the workload error profile
  /// (pre-processed offline, as the paper prescribes for both p and T_l).
  QueryPlan plan(std::size_t threshold, const ErrorRates& rates,
                 StrategyMode mode) const;

  /// Materialises the full pass list for one read.
  ExecutionPlan build(const Sequence& read, std::size_t threshold,
                      const ErrorRates& rates, StrategyMode mode) const;

  const Hdac& hdac() const { return hdac_; }
  const Tasr& tasr() const { return tasr_; }
  const AsmcapConfig& config() const { return config_; }

 private:
  AsmcapConfig config_;
  Hdac hdac_;
  Tasr tasr_;
};

}  // namespace asmcap
