#include "asmcap/readmapper.h"

#include <limits>
#include <stdexcept>

#include "align/edit_distance.h"

namespace asmcap {

ReadMapper::ReadMapper(AsmcapConfig config, std::vector<Sequence> segments,
                       std::size_t stride)
    : accelerator_(config), segments_(std::move(segments)), stride_(stride) {
  if (segments_.empty()) throw std::invalid_argument("ReadMapper: no segments");
  if (stride_ == 0) throw std::invalid_argument("ReadMapper: zero stride");
  accelerator_.load_reference(segments_);
}

MappedRead ReadMapper::map(const Sequence& read, std::size_t threshold,
                           StrategyMode mode) {
  const QueryResult result = accelerator_.search(read, threshold, mode);

  MappedRead out;
  out.candidates = result.matched_segments.size();
  out.accel_latency_seconds = result.latency_seconds;
  out.accel_energy_joules = result.energy_joules;

  // Host verification: exact banded ED on each reported row, keep the best.
  // (The accelerator is a filter; false positives die here, and the exact
  // distance of the winner is recovered.)
  std::size_t best_segment = 0;
  std::size_t best_distance = std::numeric_limits<std::size_t>::max();
  for (const std::size_t segment : result.matched_segments) {
    const CappedDistance capped =
        banded_edit_distance(segments_[segment], read, threshold);
    stats_.host_dp_cells += read.size() * (2 * threshold + 1);
    if (capped.within_band && capped.distance < best_distance) {
      best_distance = capped.distance;
      best_segment = segment;
    }
  }
  if (best_distance == std::numeric_limits<std::size_t>::max()) return out;

  out.mapped = true;
  out.segment = best_segment;
  out.reference_pos = best_segment * stride_;
  out.edit_distance = best_distance;
  out.alignment = align_global(segments_[best_segment], read);
  return out;
}

MappingStats ReadMapper::map_batch(const std::vector<Sequence>& reads,
                                   std::size_t threshold, StrategyMode mode,
                                   std::vector<MappedRead>* out) {
  stats_ = MappingStats{};
  for (const Sequence& read : reads) {
    MappedRead mapped = map(read, threshold, mode);
    ++stats_.reads;
    stats_.mapped += mapped.mapped ? 1u : 0u;
    stats_.total_candidates += mapped.candidates;
    stats_.accel_latency_seconds += mapped.accel_latency_seconds;
    stats_.accel_energy_joules += mapped.accel_energy_joules;
    if (out != nullptr) out->push_back(std::move(mapped));
  }
  return stats_;
}

}  // namespace asmcap
