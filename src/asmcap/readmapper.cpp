#include "asmcap/readmapper.h"

#include <limits>
#include <stdexcept>

#include "align/edit_distance.h"
#include "asmcap/service.h"

namespace asmcap {

ReadMapper::ReadMapper(AsmcapConfig config, std::vector<Sequence> segments,
                       std::size_t stride, std::size_t shard_count)
    : accelerator_(config, shard_count),
      segments_(std::move(segments)),
      stride_(stride) {
  if (segments_.empty()) throw std::invalid_argument("ReadMapper: no segments");
  if (stride_ == 0) throw std::invalid_argument("ReadMapper: zero stride");
  accelerator_.load_reference(segments_);
}

std::vector<std::uint64_t> ReadMapper::append_segments(
    const std::vector<Sequence>& segments) {
  const std::vector<std::uint64_t> ids =
      accelerator_.append_segments(segments);
  // Host copies are indexed by (global id - segment_base); auto-assigned
  // ids extend the id space contiguously, so the table extends in step.
  const std::size_t base = accelerator_.config().segment_base;
  segments_.resize(accelerator_.loaded_segments());
  for (std::size_t i = 0; i < ids.size(); ++i)
    segments_[static_cast<std::size_t>(ids[i]) - base] = segments[i];
  return ids;
}

MappedRead ReadMapper::verify(const Sequence& read, const QueryResult& result,
                              std::size_t threshold,
                              std::size_t* dp_cells) const {
  MappedRead out;
  out.candidates = result.matched_segments.size();
  out.accel_latency_seconds = result.latency_seconds;
  out.accel_energy_joules = result.energy_joules;

  // Host verification: exact banded ED on each reported row, keep the best.
  // (The accelerator is a filter; false positives die here, and the exact
  // distance of the winner is recovered.) The DP-cell charge is the cells
  // the banded routine actually evaluated — rows that early-exit cost less
  // than the worst-case band area.
  std::size_t cells = 0;
  std::size_t best_segment = 0;
  std::size_t best_distance = std::numeric_limits<std::size_t>::max();
  for (const std::size_t segment : result.matched_segments) {
    const CappedDistance capped =
        banded_edit_distance(segments_[segment], read, threshold);
    cells += capped.cells;
    if (capped.within_band && capped.distance < best_distance) {
      best_distance = capped.distance;
      best_segment = segment;
    }
  }
  if (dp_cells != nullptr) *dp_cells = cells;
  if (best_distance == std::numeric_limits<std::size_t>::max()) return out;

  out.mapped = true;
  out.segment = best_segment;
  out.reference_pos = best_segment * stride_;
  out.edit_distance = best_distance;
  out.alignment = align_global(segments_[best_segment], read);
  return out;
}

MappedRead ReadMapper::map(const Sequence& read, std::size_t threshold,
                           StrategyMode mode) {
  const QueryResult result = accelerator_.search(read, threshold, mode);
  std::size_t dp_cells = 0;
  MappedRead out = verify(read, result, threshold, &dp_cells);
  stats_.add(out, dp_cells);
  return out;
}

MappingStats ReadMapper::map_batch(const std::vector<Sequence>& reads,
                                   std::size_t threshold, StrategyMode mode,
                                   std::vector<MappedRead>* out,
                                   std::size_t workers) {
  std::vector<MappedRead> mapped(reads.size());
  std::vector<std::size_t> dp_cells(reads.size(), 0);
  // Streaming filter: each read's exact host verification starts the
  // moment its last shard merges, on the worker that completed it — host
  // DP overlaps the in-flight accelerator passes of later reads instead
  // of waiting for the whole batch to drain. verify() is const and
  // thread-safe, distinct reads write distinct slots, and the filter
  // results are released as soon as each read is verified
  // (keep_results = false), so accelerator-result memory stays bounded by
  // the admission window.
  SearchService service(accelerator_);
  SearchService::Options options;
  options.workers = workers;
  options.keep_results = false;
  options.on_complete = [&](std::size_t i, const QueryResult& result) {
    mapped[i] = verify(reads[i], result, threshold, &dp_cells[i]);
  };
  // Borrowed: `reads` outlives the wait, so no copy into the ticket.
  service.submit_borrowed(reads, threshold, mode, options)->wait();

  MappingStats batch;
  for (std::size_t i = 0; i < mapped.size(); ++i) {
    batch.add(mapped[i], dp_cells[i]);
    if (out != nullptr) out->push_back(std::move(mapped[i]));
  }
  stats_.merge(batch);
  return batch;
}

}  // namespace asmcap
