#pragma once
// End-to-end read mapper built on the accelerator: ASMCap answers the
// massively parallel "which rows are within T edits?" question; the host
// then verifies the handful of reported rows exactly and recovers the
// alignment (CIGAR) of the best one. This is the deployment shape the
// paper targets — the accelerator as a high-recall filter in front of a
// conventional verification step.
//
// The filter is a ShardedAccelerator, so the stored database may span
// several banks (shard_count x array_count x array_rows segments); the
// host-side verification is unchanged by sharding because the segments
// stay host-side and match reports arrive re-based to global ids. With
// shard_count == 1 (the default) the mapper behaves bit-identically to
// one built on a plain AsmcapAccelerator. map_batch streams through the
// SearchService: each read is verified on the worker that merged it,
// overlapping host DP with the in-flight accelerator passes of later
// reads.
//
// Ownership: the mapper owns its sharded accelerator and a host-side
// copy of the segments. Thread-safety: map/map_batch and stats belong to
// one control thread at a time (they mutate the cumulative stats);
// verify() is const and thread-safe, which is what lets it run inside
// service completion callbacks. Reentrancy: do not call the mapper from
// inside a pool task (parallel_for is not reentrant; see
// util/thread_pool.h).

#include <cstddef>
#include <vector>

#include "align/cigar.h"
#include "asmcap/sharded.h"
#include "genome/sequence.h"

namespace asmcap {

struct MappedRead {
  bool mapped = false;
  std::size_t segment = 0;        ///< Best-scoring stored row (global id).
  std::size_t reference_pos = 0;  ///< segment * stride.
  std::size_t edit_distance = 0;  ///< Exact ED to the best row.
  Alignment alignment;            ///< Global alignment vs the best row.
  std::size_t candidates = 0;     ///< Rows the accelerator reported.
  double accel_latency_seconds = 0.0;
  double accel_energy_joules = 0.0;
};

struct MappingStats {
  std::size_t reads = 0;
  std::size_t mapped = 0;
  std::size_t total_candidates = 0;
  double accel_latency_seconds = 0.0;
  double accel_energy_joules = 0.0;
  std::size_t host_dp_cells = 0;  ///< Verification work done on the host
                                  ///< (actual banded-DP cells evaluated).

  void add(const MappedRead& read, std::size_t dp_cells) {
    ++reads;
    mapped += read.mapped ? 1u : 0u;
    total_candidates += read.candidates;
    accel_latency_seconds += read.accel_latency_seconds;
    accel_energy_joules += read.accel_energy_joules;
    host_dp_cells += dp_cells;
  }
  void merge(const MappingStats& other) {
    reads += other.reads;
    mapped += other.mapped;
    total_candidates += other.total_candidates;
    accel_latency_seconds += other.accel_latency_seconds;
    accel_energy_joules += other.accel_energy_joules;
    host_dp_cells += other.host_dp_cells;
  }

  double mapping_rate() const {
    return reads == 0 ? 0.0
                      : static_cast<double>(mapped) /
                            static_cast<double>(reads);
  }
  double mean_candidates() const {
    return reads == 0 ? 0.0
                      : static_cast<double>(total_candidates) /
                            static_cast<double>(reads);
  }
};

class ReadMapper {
 public:
  /// Stores `segments` (cut from the reference at `stride`) into a fresh
  /// sharded accelerator of `shard_count` banks (1 = single-bank, the
  /// previous behaviour). The segments are kept host-side for
  /// verification.
  ReadMapper(AsmcapConfig config, std::vector<Sequence> segments,
             std::size_t stride, std::size_t shard_count = 1);

  /// Maps one read: accelerator filter at `threshold`, exact host
  /// verification, traceback of the winner. Accumulates into stats().
  MappedRead map(const Sequence& read, std::size_t threshold,
                 StrategyMode mode = StrategyMode::Full);

  /// Maps a batch, accumulates into stats(), and returns the statistics
  /// of THIS batch. The accelerator filter and the host verification both
  /// fan out across `workers` threads on the session-owned pool; per-read
  /// RNG forking keeps the results identical for any worker count.
  MappingStats map_batch(const std::vector<Sequence>& reads,
                         std::size_t threshold,
                         StrategyMode mode = StrategyMode::Full,
                         std::vector<MappedRead>* out = nullptr,
                         std::size_t workers = 1);

  /// Live-database passthrough: appends segments to the sharded filter
  /// and keeps the host-side verification copies aligned with the global
  /// id space (ids are assigned sequentially, so the host table simply
  /// extends). Returns the new global ids. Control-plane only — never
  /// mutate while a map_batch is in flight on another thread.
  std::vector<std::uint64_t> append_segments(
      const std::vector<Sequence>& segments);
  /// Live-database passthrough: tombstones the given global ids. The
  /// host-side copies stay in place (a dead id is never reported by the
  /// filter, so its copy is simply never read again).
  void remove_segments(const std::vector<std::uint64_t>& ids) {
    accelerator_.remove_segments(ids);
  }

  /// Cumulative statistics over every map()/map_batch() call since
  /// construction (or the last reset_stats()).
  const MappingStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MappingStats{}; }

  ShardedAccelerator& accelerator() { return accelerator_; }
  const ShardedAccelerator& accelerator() const { return accelerator_; }

  void set_error_profile(const ErrorRates& rates) {
    accelerator_.set_error_profile(rates);
  }
  std::size_t stride() const { return stride_; }

 private:
  /// Host-side verification of one accelerator result: exact banded ED on
  /// each reported row, traceback of the winner. Thread-safe; the DP cells
  /// actually evaluated are returned through `dp_cells`.
  MappedRead verify(const Sequence& read, const QueryResult& result,
                    std::size_t threshold, std::size_t* dp_cells) const;

  ShardedAccelerator accelerator_;
  std::vector<Sequence> segments_;
  std::size_t stride_;
  MappingStats stats_;
};

}  // namespace asmcap
