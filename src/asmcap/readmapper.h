#pragma once
// End-to-end read mapper built on the accelerator: ASMCap answers the
// massively parallel "which rows are within T edits?" question; the host
// then verifies the handful of reported rows exactly and recovers the
// alignment (CIGAR) of the best one. This is the deployment shape the
// paper targets — the accelerator as a high-recall filter in front of a
// conventional verification step.

#include <cstddef>
#include <vector>

#include "align/cigar.h"
#include "asmcap/accelerator.h"
#include "genome/sequence.h"

namespace asmcap {

struct MappedRead {
  bool mapped = false;
  std::size_t segment = 0;        ///< Best-scoring stored row.
  std::size_t reference_pos = 0;  ///< segment * stride.
  std::size_t edit_distance = 0;  ///< Exact ED to the best row.
  Alignment alignment;            ///< Global alignment vs the best row.
  std::size_t candidates = 0;     ///< Rows the accelerator reported.
  double accel_latency_seconds = 0.0;
  double accel_energy_joules = 0.0;
};

struct MappingStats {
  std::size_t reads = 0;
  std::size_t mapped = 0;
  std::size_t total_candidates = 0;
  double accel_latency_seconds = 0.0;
  double accel_energy_joules = 0.0;
  std::size_t host_dp_cells = 0;  ///< Verification work done on the host.

  double mapping_rate() const {
    return reads == 0 ? 0.0
                      : static_cast<double>(mapped) /
                            static_cast<double>(reads);
  }
  double mean_candidates() const {
    return reads == 0 ? 0.0
                      : static_cast<double>(total_candidates) /
                            static_cast<double>(reads);
  }
};

class ReadMapper {
 public:
  /// Stores `segments` (cut from the reference at `stride`) into a fresh
  /// accelerator. The segments are kept host-side for verification.
  ReadMapper(AsmcapConfig config, std::vector<Sequence> segments,
             std::size_t stride);

  /// Maps one read: accelerator filter at `threshold`, exact host
  /// verification, traceback of the winner.
  MappedRead map(const Sequence& read, std::size_t threshold,
                 StrategyMode mode = StrategyMode::Full);

  /// Maps a batch and aggregates statistics. The accelerator filter and the
  /// host verification both fan out across `workers` threads; per-read RNG
  /// forking keeps the results identical for any worker count.
  MappingStats map_batch(const std::vector<Sequence>& reads,
                         std::size_t threshold,
                         StrategyMode mode = StrategyMode::Full,
                         std::vector<MappedRead>* out = nullptr,
                         std::size_t workers = 1);

  AsmcapAccelerator& accelerator() { return accelerator_; }

  void set_error_profile(const ErrorRates& rates) {
    accelerator_.set_error_profile(rates);
  }
  const AsmcapAccelerator& accelerator() const { return accelerator_; }
  std::size_t stride() const { return stride_; }

 private:
  /// Host-side verification of one accelerator result: exact banded ED on
  /// each reported row, traceback of the winner. Thread-safe; the DP cells
  /// spent are returned through `dp_cells`.
  MappedRead verify(const Sequence& read, const QueryResult& result,
                    std::size_t threshold, std::size_t* dp_cells) const;

  AsmcapAccelerator accelerator_;
  std::vector<Sequence> segments_;
  std::size_t stride_;
  MappingStats stats_;
};

}  // namespace asmcap
