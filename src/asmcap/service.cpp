#include "asmcap/service.h"

#include <algorithm>
#include <stdexcept>

namespace asmcap {

// ------------------------------------------------------------- SearchTicket

SearchTicket::SearchTicket(ShardedAccelerator& accelerator,
                           std::vector<Sequence> reads, std::size_t threshold,
                           StrategyMode mode)
    : accel_(&accelerator),
      owned_reads_(std::move(reads)),
      reads_(&owned_reads_),
      threshold_(threshold),
      mode_(mode),
      slots_(reads_->size()) {}

SearchTicket::SearchTicket(ShardedAccelerator& accelerator,
                           const std::vector<Sequence>* reads,
                           std::size_t threshold, StrategyMode mode)
    : accel_(&accelerator),
      reads_(reads),
      threshold_(threshold),
      mode_(mode),
      slots_(reads_->size()) {}

bool SearchTicket::ready(std::size_t i) const {
  if (i >= slots_.size())
    throw std::out_of_range("SearchTicket: read index out of range");
  return slots_[i].ready.load(std::memory_order_acquire);
}

const QueryResult& SearchTicket::result(std::size_t i) const {
  if (!ready(i))
    throw std::logic_error("SearchTicket: read has not completed yet");
  if (!keep_results_ || drained_.load(std::memory_order_acquire))
    throw std::logic_error("SearchTicket: result no longer held");
  if (slots_[i].failed.load(std::memory_order_acquire))
    throw std::logic_error("SearchTicket: read failed (wait() rethrows)");
  return slots_[i].merged;
}

void SearchTicket::wait() {
  group_.wait();
  // Ledger totals flush once, sequentially in read order — the exact
  // recording order of the synchronous batch path — BEFORE any error is
  // rethrown: a read that executed spent real energy whether or not its
  // consumer callback later failed, so consumer errors must not drop the
  // batch from the ledger. Reads that themselves failed are skipped.
  if (!recorded_) {
    for (const Slot& slot : slots_)
      if (!slot.failed.load(std::memory_order_acquire)) {
        accel_->controller_.record(slot.ledger_plan, slot.ledger_latency,
                                   slot.ledger_energy);
        if (slot.banks_probed + slot.banks_pruned != 0)
          accel_->controller_.record_pruning(slot.banks_probed,
                                             slot.banks_pruned);
      }
    recorded_ = true;
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    error = error_;
  }
  if (error) std::rethrow_exception(error);
}

std::vector<QueryResult> SearchTicket::drain() {
  if (!keep_results_)
    throw std::logic_error(
        "SearchTicket: drain() needs Options::keep_results");
  wait();
  if (drained_.exchange(true, std::memory_order_acq_rel))
    throw std::logic_error("SearchTicket: already drained");
  std::vector<QueryResult> results;
  results.reserve(slots_.size());
  for (Slot& slot : slots_) results.push_back(std::move(slot.merged));
  return results;
}

void SearchTicket::record_error(std::exception_ptr error) {
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (!error_) error_ = error;
}

void SearchTicket::release_result(Slot& slot) { slot.merged = QueryResult(); }

void SearchTicket::admit_next() {
  // Iterative (not recursive) so a persistently failing pool submit marks
  // every remaining read failed and the group still drains — wait()
  // rethrows instead of deadlocking or terminating a worker.
  for (;;) {
    const std::size_t i = next_admit_.fetch_add(1, std::memory_order_relaxed);
    if (i >= slots_.size()) return;
    const std::size_t now =
        in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::size_t peak = peak_in_flight_.load(std::memory_order_relaxed);
    while (now > peak && !peak_in_flight_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
    auto self = shared_from_this();
    try {
      pool_->submit([self, i] { self->run_read(i); });
      return;
    } catch (...) {
      record_error(std::current_exception());
      Slot& slot = slots_[i];
      slot.failed.store(true, std::memory_order_release);
      // Retire inline (the enclosing loop already advances to the next
      // read — no admit_next recursion) and publish ready last so a
      // re-sequencer scan finding this slot sees it already retired.
      slot.retired.store(true, std::memory_order_release);
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      slot.ready.store(true, std::memory_order_release);
      finish_one();
    }
  }
}

void SearchTicket::run_read(std::size_t i) {
  Slot& slot = slots_[i];
  std::size_t selected = 0;
  try {
    // Same deterministic recipe as the synchronous batch: one plan per
    // read, one RNG stream forked from (master state, epoch, read index).
    // The probe happens AFTER the fork, so pruning never shifts streams.
    slot.plan = accel_->controller_.planner().build(
        (*reads_)[i], threshold_, accel_->rates_, mode_);
    slot.rng = master_.fork((epoch_ << 32) | static_cast<std::uint64_t>(i));
    slot.shard_ids = accel_->probe_shards(*db_, slot.plan);
    selected = slot.shard_ids.size();
    if (accel_->config_.pruning.enabled) {
      slot.banks_probed = selected;
      slot.banks_pruned = db_->banks.size() - selected;
    }
    if (selected == 0) {
      // Every bank pruned: nothing executes, but the read still merges to
      // its deterministic all-false shape with the plan's pass latency.
      slot.merged = accel_->empty_result(*db_, slot.plan);
      complete_read(i);
      return;
    }
    if (selected == 1 && db_->banks.size() == 1 &&
        db_->banks[0]->identity_layout() &&
        db_->banks[0]->loaded_segments() == db_->id_space) {
      // Single-bank router with the identity layout (slot s holds global
      // id s — always true frozen): the bank's slot-indexed result is
      // already the global result — no partial staging, no rebase/merge.
      // (A read pruned down to ONE bank of many still stages, and a
      // mutated single bank must rebase through its directory.)
      slot.merged = db_->banks[0]->execute(slot.plan, slot.rng);
      complete_read(i);
      return;
    }
    slot.partials.resize(selected);
    slot.shards_left.store(selected, std::memory_order_relaxed);
  } catch (...) {
    record_error(std::current_exception());
    slot.failed.store(true, std::memory_order_release);
    complete_read(i);
    return;
  }
  std::size_t launched = 0;
  try {
    for (std::size_t j = 1; j < selected; ++j) {
      auto self = shared_from_this();
      pool_->submit([self, i, j] { self->run_shard(i, j); });
      ++launched;
    }
  } catch (...) {
    // A task that never launched will never decrement shards_left: take
    // its decrements here. Slot 0 below is still outstanding, so this
    // cannot complete the read — no double-completion is possible.
    record_error(std::current_exception());
    slot.failed.store(true, std::memory_order_release);
    slot.shards_left.fetch_sub(selected - 1 - launched,
                               std::memory_order_acq_rel);
  }
  run_shard(i, 0);  // this task doubles as the first shard's executor
}

void SearchTicket::run_shard(std::size_t i, std::size_t s) {
  // `s` indexes the slot's dispatched-shard list, not the bank array: the
  // read runs only on its probe survivors.
  Slot& slot = slots_[i];
  try {
    slot.partials[s] =
        db_->banks[slot.shard_ids[s]]->execute(slot.plan, slot.rng);
  } catch (...) {
    record_error(std::current_exception());
    slot.failed.store(true, std::memory_order_release);
  }
  if (slot.shards_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last shard of this read: merge in ascending shard order (identical
    // floating-point summation order to the synchronous path, however the
    // shards actually finished) and release the staging buffers
    // immediately. A merge failure (allocation) is recorded like an
    // execute failure so it surfaces at wait() instead of escaping the
    // pool task.
    try {
      if (!slot.failed.load(std::memory_order_acquire))
        slot.merged =
            accel_->merge_subset(*db_, slot.partials, slot.shard_ids);
    } catch (...) {
      record_error(std::current_exception());
      slot.failed.store(true, std::memory_order_release);
    }
    std::vector<QueryResult>().swap(slot.partials);
    std::vector<std::uint32_t>().swap(slot.shard_ids);
    complete_read(i);
  }
}

void SearchTicket::complete_read(std::size_t i) {
  Slot& slot = slots_[i];
  slot.ledger_plan = slot.merged.plan;
  slot.ledger_latency = slot.merged.latency_seconds;
  slot.ledger_energy = slot.merged.energy_joules;
  slot.ready.store(true, std::memory_order_release);
  emit(i);       // delivery retires the read (returns admission budget)
  finish_one();  // last: wait() returning implies emission is done
}

void SearchTicket::retire(std::size_t i) {
  // Returns the read's admission budget exactly once — at DELIVERY, not
  // at merge: with the in-order re-sequencer, a read merged early but
  // held for its turn still counts against max_in_flight, so the
  // undelivered backlog (and its held results) stays bounded by the
  // window instead of growing to O(batch).
  if (slots_[i].retired.exchange(true, std::memory_order_acq_rel)) return;
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  admit_next();
}

void SearchTicket::finish_one() {
  const std::size_t done =
      completed_.fetch_add(1, std::memory_order_acq_rel) + 1;
  // Last read of the submission: this ticket no longer has in-flight
  // tasks, so it stops pinning the session pool against replacement.
  if (done == slots_.size()) accel_->pool_.unpin();
  group_.finish();
}

void SearchTicket::emit(std::size_t i) {
  if (!on_complete_) {
    // Pure pollers with keep_results == false asked for O(in-flight)
    // memory too: release as soon as the read merges.
    if (!keep_results_) release_result(slots_[i]);
    retire(i);
    return;
  }
  const auto deliver = [this](std::size_t index, Slot& slot) {
    if (!slot.failed.load(std::memory_order_acquire)) {
      try {
        on_complete_(index, slot.merged);
      } catch (...) {
        record_error(std::current_exception());
      }
    }
    if (!keep_results_) release_result(slot);
    retire(index);
  };
  if (!in_order_) {
    deliver(i, slots_[i]);
    return;
  }
  // Re-sequencer: whoever completes a read flushes the longest ready
  // prefix. Setting `ready` before taking seq_mutex_ guarantees a read is
  // never stranded — if this thread's scan stops short of read i, the
  // thread blocking the prefix will see i ready when its own scan runs.
  std::lock_guard<std::mutex> lock(seq_mutex_);
  while (next_emit_ < slots_.size() &&
         slots_[next_emit_].ready.load(std::memory_order_acquire)) {
    deliver(next_emit_, slots_[next_emit_]);
    ++next_emit_;
  }
}

// ------------------------------------------------------------ SearchService

void SearchService::validate(const std::vector<Sequence>& reads) const {
  accel_->check_loaded();
  for (const Sequence& read : reads)
    if (read.size() != accel_->config_.array_cols)
      throw std::invalid_argument("SearchService: read width mismatch");
}

std::shared_ptr<SearchTicket> SearchService::submit(
    std::vector<Sequence> reads, std::size_t threshold, StrategyMode mode,
    const Options& options) {
  validate(reads);
  return launch(std::shared_ptr<SearchTicket>(new SearchTicket(
                    *accel_, std::move(reads), threshold, mode)),
                options);
}

std::shared_ptr<SearchTicket> SearchService::submit_borrowed(
    const std::vector<Sequence>& reads, std::size_t threshold,
    StrategyMode mode, const Options& options) {
  validate(reads);
  return launch(std::shared_ptr<SearchTicket>(
                    new SearchTicket(*accel_, &reads, threshold, mode)),
                options);
}

std::shared_ptr<SearchTicket> SearchService::launch(
    std::shared_ptr<SearchTicket> ticket, const Options& options) {
  ticket->keep_results_ = options.keep_results;
  ticket->in_order_ = options.in_order;
  ticket->on_complete_ = options.on_complete;
  // An empty submission is already done and, like the synchronous path,
  // leaves the batch epoch untouched.
  if (ticket->slots_.empty()) return ticket;

  // Pin the session pool for the ticket's lifetime: while pinned, a
  // wider worker_pool() request is clamped to the live pool instead of
  // replacing it under this ticket's running tasks (unpinned by
  // finish_one when the last read completes).
  ticket->pool_ = &accel_->worker_pool(options.workers);
  accel_->pool_.pin();

  // Capture the database epoch on the control thread: every worker-side
  // read goes through this snapshot, so mutations published after launch
  // are invisible to this ticket (and the snapshot's shared banks stay
  // alive until the ticket completes).
  ticket->db_ = accel_->db_;

  // Snapshot the master stream on the control thread: workers fork from
  // the copy, so nothing in this ticket ever touches the live rng_.
  ticket->master_ = accel_->rng_;
  ticket->epoch_ = ++accel_->batch_epoch_;
  std::size_t cap = options.max_in_flight;
  if (cap == 0) cap = 2 * ticket->pool_->workers();
  ticket->max_in_flight_ = cap;
  ticket->group_.start(ticket->slots_.size());
  const std::size_t first_wave = std::min(cap, ticket->slots_.size());
  for (std::size_t k = 0; k < first_wave; ++k) ticket->admit_next();
  return ticket;
}

}  // namespace asmcap
