#include "asmcap/service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/stats.h"

namespace asmcap {

namespace {
/// Stride-scheduling scale: a class with weight w advances its pass by
/// kStrideScale / w per grant, so the smallest pass rotates between
/// classes in ~weight proportion. Large enough that integer division
/// keeps distinct weights distinct.
constexpr std::uint64_t kStrideScale = std::uint64_t(1) << 20;

TaskPriority pool_priority_for(ServiceClass cls) {
  switch (cls) {
    case ServiceClass::Interactive:
      return TaskPriority::High;
    case ServiceClass::Bulk:
      return TaskPriority::Low;
    default:
      return TaskPriority::Normal;
  }
}
}  // namespace

// -------------------------------------------------------- ServiceScheduler

ServiceScheduler::ServiceScheduler(const ServiceConfig& config)
    : config_(config),
      clock_(config.clock ? config.clock : &steady_service_clock()),
      free_slots_(config.max_in_flight_reads) {
  for (std::size_t c = 0; c < kServiceClassCount; ++c) {
    if (config_.class_weights[c] == 0)
      throw ServiceError(ServiceErrorKind::InvalidOptions,
                         "every class weight must be >= 1 (a zero weight "
                         "would starve that class forever)");
    stride_[c] = std::max<std::uint64_t>(
        1, kStrideScale / config_.class_weights[c]);
  }
}

bool ServiceScheduler::reserve(std::size_t reads, bool block) {
  MutexLock lock(mutex_);
  if (config_.max_pending_reads != 0) {
    // A submission larger than the whole queue can never fit: fail it in
    // both modes rather than letting the blocking path wait forever.
    if (reads > config_.max_pending_reads) return false;
    if (!block) {
      if (queued_ + reads > config_.max_pending_reads) return false;
    } else {
      while (queued_ + reads > config_.max_pending_reads)
        space_cv_.wait(mutex_);
    }
  }
  queued_ += reads;
  return true;
}

void ServiceScheduler::enlist(std::shared_ptr<SearchTicket> ticket) {
  {
    MutexLock lock(mutex_);
    enqueue_locked(ticket);
  }
  pump();
}

void ServiceScheduler::on_retire(const std::shared_ptr<SearchTicket>& ticket) {
  {
    MutexLock lock(mutex_);
    if (config_.max_in_flight_reads != 0) ++free_slots_;
    --in_flight_;
    enqueue_locked(ticket);
  }
  pump();
}

void ServiceScheduler::on_swept(std::size_t reads) {
  {
    MutexLock lock(mutex_);
    queued_ -= reads;
  }
  space_cv_.notify_all();
}

std::size_t ServiceScheduler::in_flight_reads() const {
  MutexLock lock(mutex_);
  return in_flight_;
}

std::size_t ServiceScheduler::queued_reads() const {
  MutexLock lock(mutex_);
  return queued_;
}

void ServiceScheduler::enqueue_locked(
    const std::shared_ptr<SearchTicket>& ticket) {
  if (!ticket->sched_hungry()) return;
  if (ticket->sched_queued_.exchange(true, std::memory_order_relaxed)) return;
  const auto c = static_cast<std::size_t>(ticket->class_);
  // Lag capping: a class idle for a long stretch re-enters at the current
  // virtual time instead of its stale (tiny) pass, so it gets its fair
  // share going forward rather than an unbounded catch-up burst.
  if (queues_[c].empty()) pass_[c] = std::max(pass_[c], last_pass_);
  queues_[c].push_back(ticket);
}

void ServiceScheduler::pump() {
  // Grant loop. Policy decisions (class pick, budget, stride bookkeeping)
  // happen under the lock; the grant itself — claiming a read and
  // submitting its pool task — runs unlocked, so workers retiring reads
  // can pump concurrently without convoying. Any number of threads may be
  // in here at once; the budget/queue state under the lock keeps them
  // collectively within bounds.
  const bool bounded = config_.max_in_flight_reads != 0;
  for (;;) {
    std::shared_ptr<SearchTicket> ticket;
    std::uint64_t seq = 0;
    {
      MutexLock lock(mutex_);
      if (bounded && free_slots_ == 0) return;
      std::size_t cls = kServiceClassCount;
      for (std::size_t c = 0; c < kServiceClassCount; ++c)
        if (!queues_[c].empty() &&
            (cls == kServiceClassCount || pass_[c] < pass_[cls]))
          cls = c;
      if (cls == kServiceClassCount) return;
      ticket = std::move(queues_[cls].front());
      queues_[cls].pop_front();
      ticket->sched_queued_.store(false, std::memory_order_relaxed);
      pass_[cls] += stride_[cls];
      last_pass_ = pass_[cls];
      seq = ++admit_seq_;
      if (bounded) --free_slots_;
      ++in_flight_;  // provisional; undone below unless a read launched
    }
    const SearchTicket::Grant grant = ticket->grant_one(seq);
    bool freed_queue_space = false;
    {
      MutexLock lock(mutex_);
      switch (grant) {
        case SearchTicket::Grant::Launched:
          --queued_;
          freed_queue_space = true;
          break;
        case SearchTicket::Grant::Aborted:
          // A read WAS claimed (left the queue) but is already terminal:
          // no budget held, and the ticket may still have grantable reads
          // (a failed pool submit aborts one read, not the ticket).
          if (bounded) ++free_slots_;
          --in_flight_;
          --queued_;
          freed_queue_space = true;
          break;
        case SearchTicket::Grant::Declined:
        case SearchTicket::Grant::Exhausted:
          // Nothing was claimed. Declined tickets re-enter via the retire
          // of one of their own in-flight reads; exhausted/aborted ones
          // never need to.
          if (bounded) ++free_slots_;
          --in_flight_;
          break;
      }
      if (grant == SearchTicket::Grant::Launched ||
          grant == SearchTicket::Grant::Aborted)
        enqueue_locked(ticket);
    }
    if (freed_queue_space) space_cv_.notify_all();
  }
}

// ------------------------------------------------------------- SearchTicket

SearchTicket::SearchTicket(ShardedAccelerator& accelerator,
                           std::vector<Sequence> reads, std::size_t threshold,
                           StrategyMode mode)
    : accel_(&accelerator),
      owned_reads_(std::move(reads)),
      reads_(&owned_reads_),
      threshold_(threshold),
      mode_(mode),
      slots_(reads_->size()) {}

SearchTicket::SearchTicket(ShardedAccelerator& accelerator,
                           const std::vector<Sequence>* reads,
                           std::size_t threshold, StrategyMode mode)
    : accel_(&accelerator),
      reads_(reads),
      threshold_(threshold),
      mode_(mode),
      slots_(reads_->size()) {}

bool SearchTicket::ready(std::size_t i) const {
  if (i >= slots_.size())
    throw std::out_of_range("SearchTicket: read index out of range");
  return slots_[i].ready.load(std::memory_order_acquire);
}

ReadOutcome SearchTicket::outcome(std::size_t i) const {
  if (!ready(i)) return ReadOutcome::Pending;
  return static_cast<ReadOutcome>(
      slots_[i].outcome.load(std::memory_order_acquire));
}

const QueryResult& SearchTicket::result(std::size_t i) const {
  if (!ready(i))
    throw std::logic_error("SearchTicket: read has not completed yet");
  switch (static_cast<ReadOutcome>(
      slots_[i].outcome.load(std::memory_order_acquire))) {
    case ReadOutcome::Cancelled:
      throw ServiceError(ServiceErrorKind::Cancelled,
                         "read was discarded by cancel()");
    case ReadOutcome::Expired:
      throw ServiceError(ServiceErrorKind::Expired,
                         "read was discarded by the ticket deadline");
    case ReadOutcome::Failed:
      throw std::logic_error("SearchTicket: read failed (wait() rethrows)");
    default:
      break;
  }
  if (!keep_results_ || drained_.load(std::memory_order_acquire))
    throw std::logic_error("SearchTicket: result no longer held");
  return slots_[i].merged;
}

void SearchTicket::wait() {
  group_.wait();
  // Ledger totals flush once, sequentially in read order — the exact
  // recording order of the synchronous batch path — BEFORE any error is
  // rethrown: a read that executed spent real energy whether or not its
  // consumer callback later failed, so consumer errors must not drop the
  // batch from the ledger. Only Done reads are recorded: a cancelled,
  // expired, or failed read never merged, so it books nothing — no
  // phantom energy (tests/test_scheduler.cpp pins this down).
  if (!recorded_) {
    for (const Slot& slot : slots_)
      if (slot.outcome.load(std::memory_order_acquire) ==
          static_cast<std::uint8_t>(ReadOutcome::Done)) {
        accel_->controller_.record(slot.ledger_plan, slot.ledger_latency,
                                   slot.ledger_energy);
        if (slot.banks_probed + slot.banks_pruned != 0)
          accel_->controller_.record_pruning(slot.banks_probed,
                                             slot.banks_pruned);
      }
    recorded_ = true;
  }
  std::exception_ptr error;
  {
    MutexLock lock(error_mutex_);
    error = error_;
  }
  if (error) std::rethrow_exception(error);
}

std::vector<QueryResult> SearchTicket::drain() {
  if (!keep_results_)
    throw std::logic_error(
        "SearchTicket: drain() needs Options::keep_results");
  wait();
  switch (state()) {
    case TicketState::Cancelled:
      throw ServiceError(ServiceErrorKind::Cancelled,
                         "drain() on a cancelled ticket — poll result(i) / "
                         "outcome(i) for the reads that completed");
    case TicketState::Expired:
      throw ServiceError(ServiceErrorKind::Expired,
                         "drain() on an expired ticket — poll result(i) / "
                         "outcome(i) for the reads that completed");
    default:
      break;
  }
  if (drained_.exchange(true, std::memory_order_acq_rel))
    throw std::logic_error("SearchTicket: already drained");
  std::vector<QueryResult> results;
  results.reserve(slots_.size());
  for (Slot& slot : slots_) results.push_back(std::move(slot.merged));
  return results;
}

void SearchTicket::cancel() {
  if (slots_.empty() || !sched_) return;  // empty ticket: nothing in flight
  abort_ticket(ReadOutcome::Cancelled);
}

TicketStats SearchTicket::stats() const {
  const std::vector<ReadTiming> timings = read_timings();  // terminal check
  TicketStats s;
  s.reads = timings.size();
  std::vector<double> queue_wait, execution, merge, completion;
  std::vector<double> model_latency, model_energy;
  for (const ReadTiming& t : timings) {
    switch (t.outcome) {
      case ReadOutcome::Done:
        ++s.done;
        break;
      case ReadOutcome::Cancelled:
        ++s.cancelled;
        break;
      case ReadOutcome::Expired:
        ++s.expired;
        break;
      default:
        ++s.failed;
        break;
    }
    if (t.outcome != ReadOutcome::Done) continue;
    queue_wait.push_back(t.started - t.submitted);
    execution.push_back(t.executed - t.started);
    merge.push_back(t.merged - t.executed);
    completion.push_back(t.merged - t.submitted);
    model_latency.push_back(t.model_latency_seconds);
    model_energy.push_back(t.model_energy_joules);
    s.booked_latency_seconds += t.model_latency_seconds;
    s.booked_energy_joules += t.model_energy_joules;
  }
  const auto percentiles = [](const std::vector<double>& xs) {
    LatencyPercentiles p;
    p.p50 = percentile_of(xs, 0.50);
    p.p95 = percentile_of(xs, 0.95);
    p.p99 = percentile_of(xs, 0.99);
    return p;
  };
  s.queue_wait = percentiles(queue_wait);
  s.execution = percentiles(execution);
  s.merge = percentiles(merge);
  s.completion = percentiles(completion);
  s.model_latency = percentiles(model_latency);
  s.model_energy = percentiles(model_energy);
  return s;
}

std::vector<ReadTiming> SearchTicket::read_timings() const {
  if (!done())
    throw ServiceError(ServiceErrorKind::NotTerminal,
                       "read_timings()/stats() need a terminal ticket — "
                       "wait() first");
  std::vector<ReadTiming> timings;
  timings.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    ReadTiming t;
    t.outcome =
        static_cast<ReadOutcome>(slot.outcome.load(std::memory_order_acquire));
    t.admit_seq = slot.admit_seq;
    t.submitted = submit_time_;
    t.started = slot.t_started;
    t.executed = slot.t_executed;
    t.merged = slot.t_merged;
    if (t.outcome == ReadOutcome::Done) {
      t.model_latency_seconds = slot.ledger_latency;
      t.model_energy_joules = slot.ledger_energy;
    }
    timings.push_back(t);
  }
  return timings;
}

void SearchTicket::record_error(std::exception_ptr error) {
  MutexLock lock(error_mutex_);
  if (!error_) error_ = error;
}

void SearchTicket::release_result(Slot& slot) { slot.merged = QueryResult(); }

bool SearchTicket::sched_hungry() const {
  return terminal_cause_.load(std::memory_order_acquire) == 0 &&
         next_admit_.load(std::memory_order_relaxed) < slots_.size() &&
         in_flight_.load(std::memory_order_acquire) < max_in_flight_;
}

bool SearchTicket::past_deadline() const {
  return deadline_ != std::numeric_limits<double>::infinity() &&
         clock_->now() >= deadline_;
}

void SearchTicket::abort_ticket(ReadOutcome cause) {
  if (done()) return;  // cancel after completion: acknowledged as a no-op
  std::uint8_t expected = 0;
  if (!terminal_cause_.compare_exchange_strong(
          expected, static_cast<std::uint8_t>(cause),
          std::memory_order_acq_rel))
    return;  // first cancel/expiry wins; the rest are idempotent
  sweep_pending();
}

void SearchTicket::sweep_pending() {
  // Claim every not-yet-granted read through the SAME next_admit_ counter
  // the grant path uses — each index is claimed exactly once, by the
  // sweep or by a grant, never both — and resolve it terminally: no RNG
  // fork, no execution, no ledger entry. Their queue space is returned in
  // one batch below so a blocked submit() can proceed.
  const auto cause = static_cast<ReadOutcome>(
      terminal_cause_.load(std::memory_order_acquire));
  std::size_t swept = 0;
  for (;;) {
    const std::size_t i = next_admit_.fetch_add(1, std::memory_order_relaxed);
    if (i >= slots_.size()) break;
    abort_slot(i, cause, /*counts_in_flight=*/false);
    ++swept;
  }
  if (swept != 0 && sched_) sched_->on_swept(swept);
}

void SearchTicket::abort_slot(std::size_t i, ReadOutcome cause,
                              bool counts_in_flight) {
  // Resolve read i terminally without executing it (or, for a read whose
  // task already started, without merging it). Publish `retired` before
  // `ready` when the read holds no admission budget, so the re-sequencer
  // delivering it cannot double-return a slot; a read that DOES hold
  // budget (counts_in_flight) returns it through the normal retire path —
  // which also tells the scheduler, keeping the window live. Either way
  // the read passes through emit(), so an aborted read ahead of the
  // in-order re-sequencer head flushes the prefix like a completed one
  // and can never wedge the window.
  Slot& slot = slots_[i];
  slot.t_merged = clock_ ? clock_->now() : 0.0;
  slot.outcome.store(static_cast<std::uint8_t>(cause),
                     std::memory_order_release);
  if (!counts_in_flight) slot.retired.store(true, std::memory_order_release);
  slot.ready.store(true, std::memory_order_release);
  emit(i);
  finish_one();
}

SearchTicket::Grant SearchTicket::grant_one(std::uint64_t admit_seq) {
  if (terminal_cause_.load(std::memory_order_acquire) != 0)
    return Grant::Exhausted;  // the abort sweep owns every remaining read
  // Reserve a window slot FIRST, then claim a read index: concurrent
  // pumps can both grant to this ticket, and reserving before claiming
  // keeps peak_in_flight strictly within max_in_flight.
  std::size_t in_flight = in_flight_.load(std::memory_order_acquire);
  for (;;) {
    if (in_flight >= max_in_flight_) return Grant::Declined;
    if (in_flight_.compare_exchange_weak(in_flight, in_flight + 1,
                                         std::memory_order_acq_rel))
      break;
  }
  const std::size_t i = next_admit_.fetch_add(1, std::memory_order_relaxed);
  if (i >= slots_.size()) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    return Grant::Exhausted;
  }
  const std::size_t now = in_flight + 1;
  std::size_t peak = peak_in_flight_.load(std::memory_order_relaxed);
  while (now > peak && !peak_in_flight_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  Slot& slot = slots_[i];
  slot.admit_seq = admit_seq;
  // Cooperative cancel/deadline check at the grant boundary: a read
  // claimed after the ticket aborted (or exactly as the deadline passes)
  // resolves terminally without ever launching.
  if (terminal_cause_.load(std::memory_order_acquire) == 0 && past_deadline())
    abort_ticket(ReadOutcome::Expired);
  if (const std::uint8_t cause =
          terminal_cause_.load(std::memory_order_acquire)) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    abort_slot(i, static_cast<ReadOutcome>(cause), /*counts_in_flight=*/false);
    return Grant::Aborted;
  }
  auto self = shared_from_this();
  try {
    pool_->submit([self, i] { self->run_read(i); }, task_priority_);
  } catch (...) {
    record_error(std::current_exception());
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    abort_slot(i, ReadOutcome::Failed, /*counts_in_flight=*/false);
    return Grant::Aborted;
  }
  return Grant::Launched;
}

void SearchTicket::run_read(std::size_t i) {
  Slot& slot = slots_[i];
  slot.t_started = clock_->now();
  // Cooperative cancel/deadline check at the read-task boundary.
  if (terminal_cause_.load(std::memory_order_acquire) == 0 && past_deadline())
    abort_ticket(ReadOutcome::Expired);
  if (const std::uint8_t cause =
          terminal_cause_.load(std::memory_order_acquire)) {
    abort_slot(i, static_cast<ReadOutcome>(cause), /*counts_in_flight=*/true);
    return;
  }
  std::size_t selected = 0;
  try {
    // Same deterministic recipe as the synchronous batch: one plan per
    // read, one RNG stream forked from (master state, epoch, read index).
    // The probe happens AFTER the fork, so pruning never shifts streams.
    slot.plan = accel_->controller_.planner().build(
        (*reads_)[i], threshold_, accel_->rates_, mode_);
    slot.rng = master_.fork((epoch_ << 32) | static_cast<std::uint64_t>(i));
    slot.shard_ids = accel_->probe_shards(*db_, slot.plan);
    selected = slot.shard_ids.size();
    if (accel_->config_.pruning.enabled) {
      slot.banks_probed = selected;
      slot.banks_pruned = db_->banks.size() - selected;
    }
    if (selected == 0) {
      // Every bank pruned: nothing executes, but the read still merges to
      // its deterministic all-false shape with the plan's pass latency.
      slot.merged = accel_->empty_result(*db_, slot.plan);
      slot.t_executed = clock_->now();
      complete_read(i, ReadOutcome::Done);
      return;
    }
    if (selected == 1 && db_->banks.size() == 1 &&
        db_->banks[0]->identity_layout() &&
        db_->banks[0]->loaded_segments() == db_->id_space) {
      // Single-bank router with the identity layout (slot s holds global
      // id s — always true frozen): the bank's slot-indexed result is
      // already the global result — no partial staging, no rebase/merge.
      // (A read pruned down to ONE bank of many still stages, and a
      // mutated single bank must rebase through its directory.)
      slot.merged = db_->banks[0]->execute(slot.plan, slot.rng);
      slot.t_executed = clock_->now();
      complete_read(i, ReadOutcome::Done);
      return;
    }
    slot.partials.resize(selected);
    slot.shards_left.store(selected, std::memory_order_relaxed);
  } catch (...) {
    record_error(std::current_exception());
    complete_read(i, ReadOutcome::Failed);
    return;
  }
  std::size_t launched = 0;
  try {
    for (std::size_t j = 1; j < selected; ++j) {
      auto self = shared_from_this();
      pool_->submit([self, i, j] { self->run_shard(i, j); }, task_priority_);
      ++launched;
    }
  } catch (...) {
    // A task that never launched will never decrement shards_left: take
    // its decrements here. Slot 0 below is still outstanding, so this
    // cannot complete the read — no double-completion is possible.
    record_error(std::current_exception());
    slot.outcome.store(static_cast<std::uint8_t>(ReadOutcome::Failed),
                       std::memory_order_release);
    slot.shards_left.fetch_sub(selected - 1 - launched,
                               std::memory_order_acq_rel);
  }
  run_shard(i, 0);  // this task doubles as the first shard's executor
}

void SearchTicket::run_shard(std::size_t i, std::size_t s) {
  // `s` indexes the slot's dispatched-shard list, not the bank array: the
  // read runs only on its probe survivors.
  Slot& slot = slots_[i];
  // Cooperative cancel/deadline check at the shard-task boundary: once
  // the ticket is aborted, remaining shards skip their execute entirely
  // (the read still resolves below, at its last shard).
  if (terminal_cause_.load(std::memory_order_acquire) == 0 && past_deadline())
    abort_ticket(ReadOutcome::Expired);
  if (terminal_cause_.load(std::memory_order_acquire) == 0) {
    try {
      slot.partials[s] =
          db_->banks[slot.shard_ids[s]]->execute(slot.plan, slot.rng);
    } catch (...) {
      record_error(std::current_exception());
      slot.outcome.store(static_cast<std::uint8_t>(ReadOutcome::Failed),
                         std::memory_order_release);
    }
  }
  if (slot.shards_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last shard of this read: decide its terminal outcome. If every
    // shard executed cleanly and the ticket is still live, merge in
    // ascending shard order (identical floating-point summation order to
    // the synchronous path, however the shards actually finished). A
    // merge failure (allocation) is recorded like an execute failure so
    // it surfaces at wait() instead of escaping the pool task. An aborted
    // read frees its staging and books nothing.
    slot.t_executed = clock_->now();
    auto out = static_cast<ReadOutcome>(
        slot.outcome.load(std::memory_order_acquire));
    if (out == ReadOutcome::Pending) {
      if (const std::uint8_t cause =
              terminal_cause_.load(std::memory_order_acquire)) {
        out = static_cast<ReadOutcome>(cause);
      } else {
        try {
          slot.merged =
              accel_->merge_subset(*db_, slot.partials, slot.shard_ids);
          out = ReadOutcome::Done;
        } catch (...) {
          record_error(std::current_exception());
          out = ReadOutcome::Failed;
        }
      }
    }
    std::vector<QueryResult>().swap(slot.partials);
    std::vector<std::uint32_t>().swap(slot.shard_ids);
    complete_read(i, out);
  }
}

void SearchTicket::complete_read(std::size_t i, ReadOutcome out) {
  Slot& slot = slots_[i];
  slot.t_merged = clock_->now();
  if (out == ReadOutcome::Done) {
    slot.ledger_plan = slot.merged.plan;
    slot.ledger_latency = slot.merged.latency_seconds;
    slot.ledger_energy = slot.merged.energy_joules;
  } else {
    release_result(slot);  // nothing booked, nothing held
  }
  slot.outcome.store(static_cast<std::uint8_t>(out),
                     std::memory_order_release);
  slot.ready.store(true, std::memory_order_release);
  emit(i);       // delivery retires the read (returns admission budget)
  finish_one();  // last: wait() returning implies emission is done
}

void SearchTicket::retire(std::size_t i) {
  // Returns the read's admission budget exactly once — at DELIVERY, not
  // at merge: with the in-order re-sequencer, a read merged early but
  // held for its turn still counts against max_in_flight, so the
  // undelivered backlog (and its held results) stays bounded by the
  // window instead of growing to O(batch). The scheduler is told every
  // time: the global budget slot frees and this ticket (or a higher-pass
  // one) gets the next grant.
  if (slots_[i].retired.exchange(true, std::memory_order_acq_rel)) return;
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  if (sched_) sched_->on_retire(shared_from_this());
}

void SearchTicket::finish_one() {
  const std::size_t done =
      completed_.fetch_add(1, std::memory_order_acq_rel) + 1;
  // Last read of the submission: this ticket no longer has in-flight
  // tasks, so it stops pinning the session pool against replacement.
  if (done == slots_.size()) accel_->pool_.unpin();
  group_.finish();
}

void SearchTicket::emit(std::size_t i) {
  if (!on_complete_) {
    // Pure pollers with keep_results == false asked for O(in-flight)
    // memory too: release as soon as the read merges.
    if (!keep_results_) release_result(slots_[i]);
    retire(i);
    return;
  }
  const auto deliver = [this](std::size_t index, Slot& slot) {
    if (slot.outcome.load(std::memory_order_acquire) ==
        static_cast<std::uint8_t>(ReadOutcome::Done)) {
      try {
        on_complete_(index, slot.merged);
      } catch (...) {
        record_error(std::current_exception());
      }
    }
    if (!keep_results_) release_result(slot);
    retire(index);
  };
  if (!in_order_) {
    deliver(i, slots_[i]);
    return;
  }
  // Re-sequencer: whoever completes a read flushes the longest ready
  // prefix. Setting `ready` before taking seq_mutex_ guarantees a read is
  // never stranded — if this thread's scan stops short of read i, the
  // thread blocking the prefix will see i ready when its own scan runs.
  // Aborted reads are marked ready like completed ones (no callback), so
  // a cancelled read ahead of the head flushes through instead of
  // wedging the window. A re-entrant emit on the flushing thread itself
  // (a callback calling cancel(); a retire-driven grant expiring the
  // ticket mid-flush) returns immediately — its reads are already marked
  // ready, so the enclosing flush loop delivers them.
  if (seq_owner_.load(std::memory_order_relaxed) ==
      std::this_thread::get_id())
    return;
  MutexLock lock(seq_mutex_);
  seq_owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  while (next_emit_ < slots_.size() &&
         slots_[next_emit_].ready.load(std::memory_order_acquire)) {
    deliver(next_emit_, slots_[next_emit_]);
    ++next_emit_;
  }
  seq_owner_.store(std::thread::id(), std::memory_order_relaxed);
}

// ------------------------------------------------------------ SearchService

SearchService::SearchService(ShardedAccelerator& accelerator,
                             const Config& config)
    : accel_(&accelerator),
      sched_(std::make_shared<ServiceScheduler>(config)) {}

void SearchService::validate(const std::vector<Sequence>& reads) const {
  accel_->check_loaded();
  for (const Sequence& read : reads)
    if (read.size() != accel_->config_.array_cols)
      throw std::invalid_argument("SearchService: read width mismatch");
}

std::shared_ptr<SearchTicket> SearchService::submit(
    std::vector<Sequence> reads, std::size_t threshold, StrategyMode mode,
    const Options& options) {
  validate(reads);
  return launch(std::shared_ptr<SearchTicket>(new SearchTicket(
                    *accel_, std::move(reads), threshold, mode)),
                options, /*block=*/true);
}

std::shared_ptr<SearchTicket> SearchService::submit_borrowed(
    const std::vector<Sequence>& reads, std::size_t threshold,
    StrategyMode mode, const Options& options) {
  validate(reads);
  return launch(std::shared_ptr<SearchTicket>(
                    new SearchTicket(*accel_, &reads, threshold, mode)),
                options, /*block=*/true);
}

std::shared_ptr<SearchTicket> SearchService::try_submit(
    std::vector<Sequence> reads, std::size_t threshold, StrategyMode mode,
    const Options& options) {
  validate(reads);
  return launch(std::shared_ptr<SearchTicket>(new SearchTicket(
                    *accel_, std::move(reads), threshold, mode)),
                options, /*block=*/false);
}

std::shared_ptr<SearchTicket> SearchService::try_submit_borrowed(
    const std::vector<Sequence>& reads, std::size_t threshold,
    StrategyMode mode, const Options& options) {
  validate(reads);
  return launch(std::shared_ptr<SearchTicket>(
                    new SearchTicket(*accel_, &reads, threshold, mode)),
                options, /*block=*/false);
}

std::shared_ptr<SearchTicket> SearchService::launch(
    std::shared_ptr<SearchTicket> ticket, const Options& options, bool block) {
  if (options.deadline_seconds < 0.0)
    throw ServiceError(ServiceErrorKind::InvalidOptions,
                       "deadline_seconds must be >= 0 (0 = no deadline)");
  ticket->keep_results_ = options.keep_results;
  ticket->in_order_ = options.in_order;
  ticket->on_complete_ = options.on_complete;
  // An empty submission is already done and, like the synchronous path,
  // leaves the batch epoch untouched.
  if (ticket->slots_.empty()) return ticket;

  // Admission control FIRST, before any side effect (pool pinning, epoch
  // bump): a rejected submission leaves the accelerator exactly as it was,
  // so a retried submission draws the very streams this one would have.
  if (!sched_->reserve(ticket->slots_.size(), block))
    throw ServiceError(
        ServiceErrorKind::AdmissionFull,
        ticket->slots_.size() > sched_->config().max_pending_reads
            ? "submission larger than max_pending_reads can never be admitted"
            : "pending-read queue is full (try again or use submit())");
  ticket->sched_ = sched_;
  ticket->clock_ = &sched_->clock();
  ticket->class_ = options.service_class;
  ticket->task_priority_ = pool_priority_for(options.service_class);

  // Pin the session pool for the ticket's lifetime: while pinned, a
  // wider worker_pool() request is clamped to the live pool instead of
  // replacing it under this ticket's running tasks (unpinned by
  // finish_one when the last read completes).
  ticket->pool_ = &accel_->worker_pool(options.workers);
  accel_->pool_.pin();

  // Capture the database epoch on the control thread: every worker-side
  // read goes through this snapshot, so mutations published after launch
  // are invisible to this ticket (and the snapshot's shared banks stay
  // alive until the ticket completes).
  ticket->db_ = accel_->db_;

  // Snapshot the master stream on the control thread: workers fork from
  // the copy, so nothing in this ticket ever touches the live rng_.
  ticket->master_ = accel_->rng_;
  ticket->epoch_ = ++accel_->batch_epoch_;
  std::size_t cap = options.max_in_flight;
  if (cap == 0) cap = 2 * ticket->pool_->workers();
  ticket->max_in_flight_ = cap;
  ticket->submit_time_ = ticket->clock_->now();
  if (options.deadline_seconds > 0.0)
    ticket->deadline_ = ticket->submit_time_ + options.deadline_seconds;
  ticket->group_.start(ticket->slots_.size());
  sched_->enlist(ticket);
  return ticket;
}

}  // namespace asmcap
