#pragma once
// Streaming search service: an asynchronous submit/poll/drain layer over
// the sharded accelerator, for service-style deployments where reads
// arrive while earlier ones are still executing.
//
//   SearchService::submit(reads) returns a SearchTicket immediately; the
//   (read x shard) work fans out over the router's session pool behind it.
//   Each read completes — merged, re-based to global segment ids — the
//   moment its LAST shard finishes, independent of every other read:
//
//     submit ──► admit (≤ max_in_flight reads)                ┐ per read:
//                  read i: plan + fork RNG stream             │ plan once,
//                     ├─ bank 0 ─┐                            │ execute on
//                     ├─ bank 1 ─┼─► last shard merges ──►    │ every bank,
//                     └─ bank N ─┘    complete(i): callback / │ merge at
//                                     poll-ready / admit next │ completion
//
// Peak partial-result memory is O(max_in_flight x shards), not
// O(batch x shards): a read's per-shard staging buffer exists only while
// that read is in flight, and is released as soon as it is merged (a
// single-shard router stages nothing at all — the bank's result is
// already global). Admission is throttled, so an arbitrarily large
// submission never materialises more than max_in_flight staging buffers.
//
// With shard pruning enabled (config.pruning.enabled), each read's
// fan-out covers only its probe-survivor shard set (ShardedAccelerator::
// probe_shards): staging buffers shrink to the survivors, a read every
// bank pruned completes instantly with the all-false merged shape, and
// the per-read probe counters are flushed to the ledger at wait().
// Decisions stay bit-identical to full fan-out — see asmcap/sketch.h.
//
// Three consumption styles (combinable per submission, with one rule:
// cross-thread pollers must stop using result() references before the
// control thread calls drain(), which moves the results out):
//  * poll      — ticket->ready(i) / ticket->result(i) per read,
//                ticket->completed() / done() for progress;
//  * streaming — Options::on_complete fires as each read merges, in
//                arrival order, or in read order with Options::in_order
//                (a re-sequencer holds completed reads until their turn);
//                with Options::keep_results = false the merged result is
//                released right after the callback, so the whole pipeline
//                is O(in-flight) rather than O(batch);
//  * drain     — ticket->drain() blocks and returns all results in read
//                order (what ShardedAccelerator::search_batch now does).
//
// Determinism: decisions are BIT-IDENTICAL to the synchronous
// search_batch path (enforced by tests/test_service.cpp). Each read's RNG
// stream is the same deterministic function of (router master stream,
// batch epoch, read index) the synchronous engine uses, and per-read
// merging preserves the shard summation order, so neither completion
// order, worker count, nor in-flight depth can perturb decisions, energy,
// latency, or the ledger. See docs/determinism.md.
//
// Ownership: SearchService borrows the ShardedAccelerator (non-owning);
// tickets hold work that runs on the accelerator's session pool, so a
// ticket must not outlive the accelerator. A ticket is kept alive by its
// in-flight tasks — dropping the shared_ptr early is safe, but wait()/
// drain() is the only way to observe errors and to flush the ledger.
// Thread-safety: the control plane (submit, wait, drain, and any other
// search on the same accelerator) belongs to ONE thread at a time, like
// every other accelerator entry point; ready()/result()/completed() may
// be called from any thread while workers execute. The control thread MAY
// interleave sequential search()/map() calls while a ticket is in flight:
// each ticket forks its per-read streams from a snapshot of the master
// RNG taken at submit (never from the live state), and worker_pool()
// clamps growth while tickets are outstanding, so an interleaved search
// neither races the ticket nor perturbs its decisions. on_complete fires on
// worker threads (or inline on the submitting thread when the pool has no
// spawned threads) and must be thread-safe for distinct reads; exceptions
// it throws are captured and rethrown at wait(). Reentrancy: callbacks
// must not call back into the accelerator's blocking entry points
// (search/search_batch/parallel_for) — they run inside pool tasks.
//
// The ledger: totals for the whole submission are recorded at wait()
// (which drain() calls), sequentially in read order — exactly the
// synchronous batch's recording order.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "asmcap/accelerator.h"
#include "asmcap/planner.h"
#include "asmcap/sharded.h"
#include "genome/sequence.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace asmcap {

class SearchService;

/// Handle to one asynchronous submission. Created only by
/// SearchService::submit; see the file comment for the threading contract.
class SearchTicket : public std::enable_shared_from_this<SearchTicket> {
 public:
  /// Reads in this submission.
  std::size_t size() const { return slots_.size(); }

  /// Reads merged so far (monotonic; completed() == size() once done).
  std::size_t completed() const {
    return completed_.load(std::memory_order_acquire);
  }
  bool done() const { return completed() == slots_.size(); }

  /// True once read `i` has merged and result(i) is available.
  bool ready(std::size_t i) const;

  /// The merged result of read `i`. Throws std::logic_error if the read
  /// has not completed yet, if Options::keep_results was false, or after
  /// drain() moved the results out.
  const QueryResult& result(std::size_t i) const;

  /// Blocks until every read has merged, rethrows the first error (from
  /// execution or from on_complete), then records the whole submission in
  /// the accelerator's ledger in read order (once). Control-plane only.
  void wait();

  /// wait(), then moves all results out in read order. Control-plane
  /// only; requires Options::keep_results (the default).
  std::vector<QueryResult> drain();

  /// Admission throttle this ticket runs under.
  std::size_t max_in_flight() const { return max_in_flight_; }
  /// Highest number of simultaneously in-flight reads observed — the
  /// partial-result memory bound actually reached (<= max_in_flight()).
  std::size_t peak_in_flight() const {
    return peak_in_flight_.load(std::memory_order_acquire);
  }

 private:
  friend class SearchService;

  /// Per-read state. `partials`/`shard_ids` exist only between admission
  /// and merge (and never exist when the router has a single active
  /// shard). With pruning enabled, shard_ids is this read's probe
  /// survivor set — the only banks dispatched — and the probe counters
  /// feed the ledger at wait().
  struct Slot {
    ExecutionPlan plan;
    Rng rng;
    std::vector<std::uint32_t> shard_ids;  ///< Dispatched shards, ascending.
    std::vector<QueryResult> partials;     ///< partials[j] <- shard_ids[j].
    std::size_t banks_probed = 0;  ///< Pruning-enabled submissions only.
    std::size_t banks_pruned = 0;
    std::atomic<std::size_t> shards_left{0};
    QueryResult merged;
    QueryPlan ledger_plan;  ///< Kept for wait() after merged is released.
    double ledger_latency = 0.0;
    double ledger_energy = 0.0;
    std::atomic<bool> ready{false};
    std::atomic<bool> failed{false};
    std::atomic<bool> retired{false};  ///< Admission budget returned.
  };

  /// Owning form (reads moved in) and borrowing form (reads stay with the
  /// caller, which must keep them alive and unmodified until done).
  SearchTicket(ShardedAccelerator& accelerator, std::vector<Sequence> reads,
               std::size_t threshold, StrategyMode mode);
  SearchTicket(ShardedAccelerator& accelerator,
               const std::vector<Sequence>* reads, std::size_t threshold,
               StrategyMode mode);

  void admit_next();
  void run_read(std::size_t i);
  void run_shard(std::size_t i, std::size_t s);
  void complete_read(std::size_t i);
  void finish_one();
  void emit(std::size_t i);
  void retire(std::size_t i);
  void record_error(std::exception_ptr error);
  void release_result(Slot& slot);

  ShardedAccelerator* accel_;
  ThreadPool* pool_ = nullptr;
  /// The database epoch this ticket runs against, captured at launch on
  /// the control plane. Everything worker-side — probe, execute, merge —
  /// reads THIS snapshot, never the router's live pointer: a mutation
  /// published mid-flight (append/delete/compact on the control thread)
  /// builds new or cloned banks and cannot touch the ones pinned here, so
  /// the ticket's decisions, energy, and latency are exactly those of the
  /// epoch it was launched against (tests/test_live.cpp pins this down).
  std::shared_ptr<const DbEpoch> db_;
  std::vector<Sequence> owned_reads_;        ///< Owning submissions only.
  const std::vector<Sequence>* reads_;       ///< The batch (owned or not).
  /// Snapshot of the router's master RNG at submit: workers fork per-read
  /// streams from this copy, never from the live rng_ — so a sequential
  /// search() interleaved with an in-flight ticket neither races the RNG
  /// state nor perturbs this ticket's streams (bit-identity preserved:
  /// fork() is a pure function of state and stream index).
  Rng master_;
  std::size_t threshold_;
  StrategyMode mode_;
  std::uint64_t epoch_ = 0;
  std::size_t max_in_flight_ = 1;
  bool keep_results_ = true;
  bool in_order_ = false;
  std::function<void(std::size_t, const QueryResult&)> on_complete_;

  std::vector<Slot> slots_;  ///< Sized once at submit; never reallocated.
  std::atomic<std::size_t> next_admit_{0};
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::size_t> peak_in_flight_{0};
  std::atomic<std::size_t> completed_{0};
  TaskGroup group_;

  std::mutex seq_mutex_;      ///< Re-sequencer state below.
  std::size_t next_emit_ = 0;

  std::mutex error_mutex_;
  std::exception_ptr error_;

  bool recorded_ = false;             ///< Ledger flushed (control plane).
  std::atomic<bool> drained_{false};  ///< Results moved out by drain().
};

/// Knobs of one SearchService::submit call. (Namespace-scope so the
/// default member initializers are usable in submit's default argument.)
struct ServiceOptions {
  /// Pool width for the fan-out (same meaning as search_batch's
  /// `workers`; 0 = one per hardware thread).
  std::size_t workers = 1;
  /// Admission throttle: reads allowed in flight at once (the
  /// partial-result memory bound). 0 = 2 x the pool's worker count.
  std::size_t max_in_flight = 0;
  /// Streaming callback: fires once per read as it merges, with the
  /// read's index within the submission and its merged result. Runs on
  /// worker threads; see the file comment.
  std::function<void(std::size_t, const QueryResult&)> on_complete;
  /// Deliver on_complete in read order instead of arrival order (a
  /// re-sequencer holds early finishers; delivery is serialised). A read
  /// returns its admission slot at DELIVERY, so the held-back backlog —
  /// results merged early but waiting their turn — also stays within
  /// max_in_flight rather than growing with the batch.
  bool in_order = false;
  /// Keep merged results for result()/drain(). Set false for pure
  /// streaming consumers: each result is released right after its
  /// callback, bounding total result memory by in-flight reads.
  bool keep_results = true;
};

class SearchService {
 public:
  using Options = ServiceOptions;

  /// Borrows `accelerator` (which must be loaded and must outlive the
  /// service and every ticket).
  explicit SearchService(ShardedAccelerator& accelerator)
      : accel_(&accelerator) {}

  /// Starts an asynchronous batch search and returns immediately, taking
  /// ownership of `reads` (pass an rvalue to avoid the copy). Width
  /// validation happens here (throws like search_batch); everything after
  /// runs on the accelerator's session pool. Control-plane only.
  std::shared_ptr<SearchTicket> submit(std::vector<Sequence> reads,
                                       std::size_t threshold,
                                       StrategyMode mode,
                                       const Options& options = Options());

  /// Like submit(), but borrows the caller's vector instead of copying:
  /// `reads` must stay alive and unmodified until the ticket is done.
  /// This is what the blocking wrappers (search_batch, map_batch) use —
  /// their caller's vector outlives their wait by construction.
  std::shared_ptr<SearchTicket> submit_borrowed(
      const std::vector<Sequence>& reads, std::size_t threshold,
      StrategyMode mode, const Options& options = Options());

 private:
  void validate(const std::vector<Sequence>& reads) const;
  std::shared_ptr<SearchTicket> launch(std::shared_ptr<SearchTicket> ticket,
                                       const Options& options);

  ShardedAccelerator* accel_;
};

}  // namespace asmcap
