#pragma once
// Streaming search service: an asynchronous submit/poll/drain layer over
// the sharded accelerator, for service-style deployments where reads
// arrive while earlier ones are still executing.
//
//   SearchService::submit(reads) returns a SearchTicket immediately; the
//   (read x shard) work fans out over the router's session pool behind it.
//   Each read completes — merged, re-based to global segment ids — the
//   moment its LAST shard finishes, independent of every other read:
//
//     submit ──► admit (≤ max_in_flight reads)                ┐ per read:
//                  read i: plan + fork RNG stream             │ plan once,
//                     ├─ bank 0 ─┐                            │ execute on
//                     ├─ bank 1 ─┼─► last shard merges ──►    │ every bank,
//                     └─ bank N ─┘    complete(i): callback / │ merge at
//                                     poll-ready / admit next │ completion
//
// Peak partial-result memory is O(max_in_flight x shards), not
// O(batch x shards): a read's per-shard staging buffer exists only while
// that read is in flight, and is released as soon as it is merged (a
// single-shard router stages nothing at all — the bank's result is
// already global). Admission is throttled, so an arbitrarily large
// submission never materialises more than max_in_flight staging buffers.
//
// THE SERVICE TIER (scheduling, deadlines, cancellation). Admission is no
// longer a per-ticket free-for-all: every SearchService owns a
// ServiceScheduler that grants reads to tickets one at a time, under
//
//  * priority classes — ServiceOptions::service_class picks Interactive /
//    Normal / Bulk; grants follow weighted fair-share (stride scheduling
//    over ServiceConfig::class_weights), so a small interactive ticket
//    overtakes a bulk re-analysis instead of queueing behind it, while
//    positive weights guarantee bulk work is never starved. Each class
//    also maps to a pool TaskPriority, so granted interactive tasks jump
//    the pool queue too.
//  * a global in-flight budget — ServiceConfig::max_in_flight_reads caps
//    reads executing across ALL tickets of the service (0 = unlimited;
//    per-ticket max_in_flight still applies independently).
//  * bounded-queue admission — ServiceConfig::max_pending_reads bounds
//    reads accepted but not yet granted; submit() blocks for space,
//    try_submit() fails fast with ServiceError{AdmissionFull}.
//  * deadlines and cancellation — ServiceOptions::deadline_seconds and
//    SearchTicket::cancel() stop a ticket COOPERATIVELY: checked between
//    per-read/per-shard tasks, never mid-kernel. Reads already merged
//    stay Done; everything else reaches a Cancelled/Expired terminal
//    state, frees its staging, returns its admission slots, and books
//    nothing in the ledger (no phantom energy). The ticket's state()
//    reports Cancelled/Expired distinct from Done, and wait() still
//    returns normally so the Done prefix can be consumed.
//  * per-ticket observability — every read records queue-wait /
//    execution / merge timestamps from an injectable ServiceClock
//    (util/clock.h; virtual in tests, steady in production), and
//    stats() aggregates p50/p95/p99 latency and energy percentiles into
//    TicketStats once the ticket is terminal.
//
// With shard pruning enabled (config.pruning.enabled), each read's
// fan-out covers only its probe-survivor shard set (ShardedAccelerator::
// probe_shards): staging buffers shrink to the survivors, a read every
// bank pruned completes instantly with the all-false merged shape, and
// the per-read probe counters are flushed to the ledger at wait().
// Decisions stay bit-identical to full fan-out — see asmcap/sketch.h.
//
// Three consumption styles (combinable per submission, with one rule:
// cross-thread pollers must stop using result() references before the
// control thread calls drain(), which moves the results out):
//  * poll      — ticket->ready(i) / ticket->result(i) per read,
//                ticket->completed() / done() for progress;
//  * streaming — Options::on_complete fires as each read merges, in
//                arrival order, or in read order with Options::in_order
//                (a re-sequencer holds completed reads until their turn);
//                with Options::keep_results = false the merged result is
//                released right after the callback, so the whole pipeline
//                is O(in-flight) rather than O(batch);
//  * drain     — ticket->drain() blocks and returns all results in read
//                order (what ShardedAccelerator::search_batch now does).
//
// Determinism: decisions are BIT-IDENTICAL to the synchronous
// search_batch path (enforced by tests/test_service.cpp and
// tests/test_scheduler.cpp). Each read's RNG stream is the same
// deterministic function of (router master stream, batch epoch, read
// index) the synchronous engine uses, and per-read merging preserves the
// shard summation order, so neither completion order, worker count,
// in-flight depth, priority class, nor any cancel/deadline schedule can
// perturb a COMPLETED read's decisions, energy, latency, or ledger
// record. Scheduling may reorder execution but never decisions;
// cancellation only discards work whose RNG draws never escape the
// ticket (docs/determinism.md rule 9).
//
// Ownership: SearchService borrows the ShardedAccelerator (non-owning);
// tickets hold work that runs on the accelerator's session pool, so a
// ticket must not outlive the accelerator. The scheduler is shared
// (shared_ptr) between the service and its tickets, so tickets outliving
// the service stay safe. A ticket is kept alive by its in-flight tasks —
// dropping the shared_ptr early is safe, but wait()/drain() is the only
// way to observe errors and to flush the ledger. The ServiceClock is
// borrowed and must outlive the service and every ticket.
// Thread-safety: the control plane (submit, wait, drain, and any other
// search on the same accelerator) belongs to ONE thread at a time, like
// every other accelerator entry point; ready()/result()/completed()/
// state()/cancel() may be called from any thread while workers execute.
// The control thread MAY interleave sequential search()/map() calls while
// a ticket is in flight: each ticket forks its per-read streams from a
// snapshot of the master RNG taken at submit (never from the live state),
// and worker_pool() clamps growth while tickets are outstanding, so an
// interleaved search neither races the ticket nor perturbs its decisions.
// on_complete fires on worker threads (or inline on the submitting thread
// when the pool has no spawned threads) and must be thread-safe for
// distinct reads; exceptions it throws are captured and rethrown at
// wait(). Reentrancy: callbacks must not call back into the accelerator's
// blocking entry points (search/search_batch/parallel_for) — they run
// inside pool tasks.
//
// The ledger: totals for the whole submission are recorded at wait()
// (which drain() calls), sequentially in read order — exactly the
// synchronous batch's recording order. Only reads whose outcome is Done
// are recorded: a cancelled or expired read never executed-and-merged, so
// it books no latency and no energy.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "asmcap/accelerator.h"
#include "asmcap/planner.h"
#include "asmcap/service_error.h"
#include "asmcap/sharded.h"
#include "genome/sequence.h"
#include "util/clock.h"
#include "util/rng.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace asmcap {

class SearchService;
class SearchTicket;

/// Priority class of one submission. Classes shape WHEN work runs (grant
/// order, pool queue priority) — never WHAT it computes.
enum class ServiceClass : std::uint8_t { Interactive = 0, Normal = 1, Bulk = 2 };
inline constexpr std::size_t kServiceClassCount = 3;

/// Terminal state of a whole ticket. Running until every read is
/// terminal; then Cancelled/Expired if the ticket was aborted (even if
/// some reads completed first), else Done.
enum class TicketState : std::uint8_t { Running, Done, Cancelled, Expired };

/// Terminal state of one read within a ticket.
enum class ReadOutcome : std::uint8_t {
  Pending = 0,    ///< Not terminal yet.
  Done = 1,       ///< Merged; result available, ledger-recorded at wait().
  Cancelled = 2,  ///< Discarded by SearchTicket::cancel(); never booked.
  Expired = 3,    ///< Discarded by the ticket's deadline; never booked.
  Failed = 4,     ///< Threw during execution; wait() rethrows.
};

/// Per-read observability record (timestamps from the service's clock;
/// 0 where a phase never ran — e.g. started stays 0 for a read cancelled
/// before admission).
struct ReadTiming {
  ReadOutcome outcome = ReadOutcome::Pending;
  /// Global admission sequence number across the whole service (1-based
  /// grant order); 0 for reads that were never admitted.
  std::uint64_t admit_seq = 0;
  double submitted = 0.0;  ///< Ticket submit instant (same for all reads).
  double started = 0.0;    ///< Read task began executing.
  double executed = 0.0;   ///< Last shard finished executing.
  double merged = 0.0;     ///< Merged / reached a terminal state.
  double model_latency_seconds = 0.0;  ///< Deterministic model cost (Done).
  double model_energy_joules = 0.0;    ///< Deterministic model cost (Done).
};

struct LatencyPercentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Aggregated per-ticket statistics (stats(); terminal tickets only).
/// Wall-clock percentiles aggregate Done reads; model percentiles are the
/// deterministic per-read model costs, so two runs of the same submission
/// agree on them bit-for-bit regardless of scheduling.
struct TicketStats {
  std::size_t reads = 0;
  std::size_t done = 0;
  std::size_t cancelled = 0;
  std::size_t expired = 0;
  std::size_t failed = 0;
  LatencyPercentiles queue_wait;   ///< started - submitted (wall clock).
  LatencyPercentiles execution;    ///< executed - started (wall clock).
  LatencyPercentiles merge;        ///< merged - executed (wall clock).
  LatencyPercentiles completion;   ///< merged - submitted (wall clock).
  LatencyPercentiles model_latency;  ///< Per-read model latency (s).
  LatencyPercentiles model_energy;   ///< Per-read model energy (J).
  double booked_latency_seconds = 0.0;  ///< Sum over Done reads — exactly
  double booked_energy_joules = 0.0;    ///< what wait() ledger-records.
};

/// Service-wide scheduling policy (SearchService constructor argument).
struct ServiceConfig {
  /// Reads allowed in flight at once across ALL tickets of this service
  /// (0 = unlimited — only the per-ticket max_in_flight throttles, which
  /// reproduces the pre-scheduler behaviour bit-for-bit).
  std::size_t max_in_flight_reads = 0;
  /// Bound on reads accepted but not yet granted, across all tickets
  /// (0 = unbounded). submit() blocks until the submission fits;
  /// try_submit() throws ServiceError{AdmissionFull} instead. A single
  /// submission larger than the bound can never fit and is rejected by
  /// both (no deadlock-by-construction).
  std::size_t max_pending_reads = 0;
  /// Weighted fair share per ServiceClass (Interactive, Normal, Bulk).
  /// Grants go to the queued class with the smallest stride-scheduling
  /// pass value; weight w gets ~w/Σw of contended grants. All weights
  /// must be >= 1 (ServiceError{InvalidOptions} otherwise) — a positive
  /// weight is what makes starvation impossible.
  std::array<std::uint32_t, kServiceClassCount> class_weights{16, 4, 1};
  /// Time source for deadlines and the TicketStats timestamps. Borrowed;
  /// nullptr = the process-wide SteadyClock. Tests inject a VirtualClock
  /// to make deadline expiry and latency stats deterministic.
  const ServiceClock* clock = nullptr;
};

/// Weighted fair-share admission engine shared by a SearchService and its
/// tickets (via shared_ptr, so tickets may outlive the service). All
/// policy state — per-class ticket queues, stride passes, the global
/// in-flight budget, the bounded pending-read queue — lives behind one
/// mutex (ASMCAP_GUARDED_BY, checked by Clang's thread-safety analysis);
/// grants themselves (ticket->grant_one()) run OUTSIDE the lock.
/// Thread-safety: every method may be called from any thread; reserve()
/// may block (control plane) while workers retire reads and keep pumping.
class ServiceScheduler {
 public:
  explicit ServiceScheduler(const ServiceConfig& config);

  const ServiceConfig& config() const { return config_; }
  const ServiceClock& clock() const { return *clock_; }

  /// Accounts `reads` pending reads, enforcing max_pending_reads. With
  /// block = true waits for space; returns false when the submission can
  /// never or does not currently fit (caller turns that into a
  /// ServiceError). Always returns true when the queue is unbounded.
  bool reserve(std::size_t reads, bool block) ASMCAP_EXCLUDES(mutex_);

  /// Queues a freshly launched ticket and starts granting.
  void enlist(std::shared_ptr<SearchTicket> ticket) ASMCAP_EXCLUDES(mutex_);

  /// A granted read retired: its global budget slot is free; the ticket
  /// may be hungry for another grant.
  void on_retire(const std::shared_ptr<SearchTicket>& ticket)
      ASMCAP_EXCLUDES(mutex_);

  /// `reads` pending reads left the queue without being granted (a
  /// cancel/deadline sweep claimed them).
  void on_swept(std::size_t reads) ASMCAP_EXCLUDES(mutex_);

  /// Observability (racy by nature; exact only when the service is idle).
  std::size_t in_flight_reads() const ASMCAP_EXCLUDES(mutex_);
  std::size_t queued_reads() const ASMCAP_EXCLUDES(mutex_);

 private:
  void enqueue_locked(const std::shared_ptr<SearchTicket>& ticket)
      ASMCAP_REQUIRES(mutex_);
  void pump() ASMCAP_EXCLUDES(mutex_);

  const ServiceConfig config_;
  const ServiceClock* clock_;
  mutable Mutex mutex_;
  CondVar space_cv_;
  /// Per-class FIFO of tickets wanting grants (deduplicated via the
  /// ticket's sched_queued_ flag).
  std::array<std::deque<std::shared_ptr<SearchTicket>>, kServiceClassCount>
      queues_ ASMCAP_GUARDED_BY(mutex_);
  /// Stride passes.
  std::array<std::uint64_t, kServiceClassCount> pass_
      ASMCAP_GUARDED_BY(mutex_){};
  /// K / weight (written once, in the constructor).
  std::array<std::uint64_t, kServiceClassCount> stride_
      ASMCAP_GUARDED_BY(mutex_){};
  /// Pass of the latest grant (lag capping).
  std::uint64_t last_pass_ ASMCAP_GUARDED_BY(mutex_) = 0;
  /// Global grant counter (1-based).
  std::uint64_t admit_seq_ ASMCAP_GUARDED_BY(mutex_) = 0;
  /// Remaining global budget (if bounded).
  std::size_t free_slots_ ASMCAP_GUARDED_BY(mutex_) = 0;
  /// Reads accepted, not yet granted/swept.
  std::size_t queued_ ASMCAP_GUARDED_BY(mutex_) = 0;
  /// Reads granted, not yet retired.
  std::size_t in_flight_ ASMCAP_GUARDED_BY(mutex_) = 0;
};

/// Handle to one asynchronous submission. Created only by
/// SearchService::submit; see the file comment for the threading contract.
class SearchTicket : public std::enable_shared_from_this<SearchTicket> {
 public:
  /// Reads in this submission.
  std::size_t size() const { return slots_.size(); }

  /// Reads reaching a terminal state so far (Done, Cancelled, Expired, or
  /// Failed; monotonic; completed() == size() once the ticket is done).
  std::size_t completed() const {
    return completed_.load(std::memory_order_acquire);
  }
  bool done() const { return completed() == slots_.size(); }

  /// True once read `i` is terminal (Done or aborted) — check outcome(i)
  /// before touching result(i).
  bool ready(std::size_t i) const;

  /// Terminal state of read `i` (Pending while still in flight).
  ReadOutcome outcome(std::size_t i) const;

  /// Whole-ticket state: Running until every read is terminal, then
  /// Cancelled/Expired if the ticket was aborted, else Done.
  TicketState state() const {
    if (completed() != slots_.size()) return TicketState::Running;
    switch (terminal_cause_.load(std::memory_order_acquire)) {
      case static_cast<std::uint8_t>(ReadOutcome::Cancelled):
        return TicketState::Cancelled;
      case static_cast<std::uint8_t>(ReadOutcome::Expired):
        return TicketState::Expired;
      default:
        return TicketState::Done;
    }
  }

  /// Requests cooperative cancellation, from any thread, idempotently.
  /// Reads already merged stay Done; every other read reaches Cancelled
  /// without executing further shards, frees its staging, returns its
  /// admission slots, and books no energy. A no-op once the ticket is
  /// already terminal. wait() still returns normally — poll outcome(i)
  /// to see which reads completed.
  void cancel();

  /// The merged result of read `i`. Throws std::logic_error if the read
  /// has not completed yet, if Options::keep_results was false, or after
  /// drain() moved the results out; ServiceError{Cancelled/Expired} if
  /// the read was discarded; std::logic_error if it failed (wait()
  /// rethrows the underlying error).
  const QueryResult& result(std::size_t i) const;

  /// Blocks until every read is terminal, rethrows the first error (from
  /// execution or from on_complete), then records the submission's Done
  /// reads in the accelerator's ledger in read order (once).
  /// Control-plane only. Returns normally for cancelled/expired tickets.
  void wait() ASMCAP_EXCLUDES(error_mutex_);

  /// wait(), then moves all results out in read order. Control-plane
  /// only; requires Options::keep_results (the default) and a fully Done
  /// ticket — throws ServiceError{Cancelled/Expired} if the ticket was
  /// aborted (poll result(i)/outcome(i) for the Done prefix instead).
  std::vector<QueryResult> drain();

  /// Priority class this ticket was submitted under.
  ServiceClass service_class() const { return class_; }

  /// Admission throttle this ticket runs under.
  std::size_t max_in_flight() const { return max_in_flight_; }
  /// Highest number of simultaneously in-flight reads observed — the
  /// partial-result memory bound actually reached (<= max_in_flight()).
  std::size_t peak_in_flight() const {
    return peak_in_flight_.load(std::memory_order_acquire);
  }

  /// Aggregated latency/energy percentiles and outcome counts. Terminal
  /// tickets only — throws ServiceError{NotTerminal} while running.
  TicketStats stats() const;

  /// Per-read timing records (same terminal-only contract as stats()).
  std::vector<ReadTiming> read_timings() const;

 private:
  friend class SearchService;
  friend class ServiceScheduler;

  /// Result of one scheduler grant attempt.
  enum class Grant : std::uint8_t {
    Launched,   ///< A read was claimed and its task submitted.
    Aborted,    ///< A read was claimed but was cancelled/expired/failed
                ///< before launching — it is terminal, no budget held.
    Declined,   ///< Per-ticket window full; retry on the next retire.
    Exhausted,  ///< No reads left to grant (all claimed or ticket aborted).
  };

  /// Per-read state. `partials`/`shard_ids` exist only between admission
  /// and merge (and never exist when the router has a single active
  /// shard). With pruning enabled, shard_ids is this read's probe
  /// survivor set — the only banks dispatched — and the probe counters
  /// feed the ledger at wait().
  struct Slot {
    ExecutionPlan plan;
    Rng rng;
    std::vector<std::uint32_t> shard_ids;  ///< Dispatched shards, ascending.
    std::vector<QueryResult> partials;     ///< partials[j] <- shard_ids[j].
    std::size_t banks_probed = 0;  ///< Pruning-enabled submissions only.
    std::size_t banks_pruned = 0;
    std::atomic<std::size_t> shards_left{0};
    QueryResult merged;
    QueryPlan ledger_plan;  ///< Kept for wait() after merged is released.
    double ledger_latency = 0.0;
    double ledger_energy = 0.0;
    /// Timing observability (timestamps from the service clock). Written
    /// only by the thread that owns the read's current task, published by
    /// the ready release-store below.
    std::uint64_t admit_seq = 0;
    double t_started = 0.0;
    double t_executed = 0.0;
    double t_merged = 0.0;
    std::atomic<std::uint8_t> outcome{
        static_cast<std::uint8_t>(ReadOutcome::Pending)};
    std::atomic<bool> ready{false};
    std::atomic<bool> retired{false};  ///< Admission budget returned.
  };

  /// Owning form (reads moved in) and borrowing form (reads stay with the
  /// caller, which must keep them alive and unmodified until done).
  SearchTicket(ShardedAccelerator& accelerator, std::vector<Sequence> reads,
               std::size_t threshold, StrategyMode mode);
  SearchTicket(ShardedAccelerator& accelerator,
               const std::vector<Sequence>* reads, std::size_t threshold,
               StrategyMode mode);

  Grant grant_one(std::uint64_t admit_seq);
  bool sched_hungry() const;
  bool past_deadline() const;
  void abort_ticket(ReadOutcome cause);
  void sweep_pending();
  void abort_slot(std::size_t i, ReadOutcome cause, bool counts_in_flight);
  void run_read(std::size_t i);
  void run_shard(std::size_t i, std::size_t s);
  void complete_read(std::size_t i, ReadOutcome outcome);
  void finish_one();
  void emit(std::size_t i) ASMCAP_EXCLUDES(seq_mutex_);
  void retire(std::size_t i);
  void record_error(std::exception_ptr error) ASMCAP_EXCLUDES(error_mutex_);
  void release_result(Slot& slot);

  ShardedAccelerator* accel_;
  ThreadPool* pool_ = nullptr;
  /// The database epoch this ticket runs against, captured at launch on
  /// the control plane. Everything worker-side — probe, execute, merge —
  /// reads THIS snapshot, never the router's live pointer: a mutation
  /// published mid-flight (append/delete/compact on the control thread)
  /// builds new or cloned banks and cannot touch the ones pinned here, so
  /// the ticket's decisions, energy, and latency are exactly those of the
  /// epoch it was launched against (tests/test_live.cpp pins this down).
  std::shared_ptr<const DbEpoch> db_;
  std::vector<Sequence> owned_reads_;        ///< Owning submissions only.
  const std::vector<Sequence>* reads_;       ///< The batch (owned or not).
  /// Snapshot of the router's master RNG at submit: workers fork per-read
  /// streams from this copy, never from the live rng_ — so a sequential
  /// search() interleaved with an in-flight ticket neither races the RNG
  /// state nor perturbs this ticket's streams (bit-identity preserved:
  /// fork() is a pure function of state and stream index).
  Rng master_;
  std::size_t threshold_;
  StrategyMode mode_;
  std::uint64_t epoch_ = 0;
  std::size_t max_in_flight_ = 1;
  bool keep_results_ = true;
  bool in_order_ = false;
  std::function<void(std::size_t, const QueryResult&)> on_complete_;

  /// Scheduling state (set at launch). The scheduler is shared so the
  /// ticket can return budget after the service is gone; the clock is
  /// borrowed from it. deadline_ is an absolute clock instant (+inf =
  /// none); terminal_cause_ is 0 until the first cancel()/expiry wins the
  /// CAS (then the ReadOutcome cause, first writer wins).
  std::shared_ptr<ServiceScheduler> sched_;
  const ServiceClock* clock_ = nullptr;
  ServiceClass class_ = ServiceClass::Normal;
  TaskPriority task_priority_ = TaskPriority::Normal;
  double submit_time_ = 0.0;
  double deadline_ = std::numeric_limits<double>::infinity();
  std::atomic<std::uint8_t> terminal_cause_{0};
  std::atomic<bool> sched_queued_{false};  ///< In a scheduler queue now.

  std::vector<Slot> slots_;  ///< Sized once at submit; never reallocated.
  std::atomic<std::size_t> next_admit_{0};
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::size_t> peak_in_flight_{0};
  std::atomic<std::size_t> completed_{0};
  TaskGroup group_;

  Mutex seq_mutex_;  ///< Re-sequencer state below.
  std::size_t next_emit_ ASMCAP_GUARDED_BY(seq_mutex_) = 0;
  /// Thread currently inside the re-sequencer flush loop. A cancel or
  /// deadline sweep triggered from WITHIN a delivery (a callback calling
  /// cancel(), or a retire-driven grant expiring the ticket) re-enters
  /// emit() on the same thread; since `ready` is already set, the outer
  /// flush loop will deliver those reads — the re-entrant call just
  /// returns instead of self-deadlocking on seq_mutex_.
  std::atomic<std::thread::id> seq_owner_{};

  Mutex error_mutex_;
  std::exception_ptr error_ ASMCAP_GUARDED_BY(error_mutex_);

  bool recorded_ = false;             ///< Ledger flushed (control plane).
  std::atomic<bool> drained_{false};  ///< Results moved out by drain().
};

/// Knobs of one SearchService::submit call. (Namespace-scope so the
/// default member initializers are usable in submit's default argument.)
struct ServiceOptions {
  /// Pool width for the fan-out (same meaning as search_batch's
  /// `workers`; 0 = one per hardware thread).
  std::size_t workers = 1;
  /// Admission throttle: reads allowed in flight at once (the
  /// partial-result memory bound). 0 = 2 x the pool's worker count.
  std::size_t max_in_flight = 0;
  /// Priority class: grant order under contention (weighted fair share)
  /// and pool queue priority. Never affects results.
  ServiceClass service_class = ServiceClass::Normal;
  /// Relative deadline from submit, in ServiceClock seconds (0 = none;
  /// negative throws ServiceError{InvalidOptions}). When it passes, reads
  /// not yet merged reach Expired cooperatively — checked between tasks,
  /// never mid-kernel — and the whole ticket's state becomes Expired.
  double deadline_seconds = 0.0;
  /// Streaming callback: fires once per DONE read as it merges, with the
  /// read's index within the submission and its merged result (skipped
  /// for cancelled/expired/failed reads). Runs on worker threads; see the
  /// file comment.
  std::function<void(std::size_t, const QueryResult&)> on_complete;
  /// Deliver on_complete in read order instead of arrival order (a
  /// re-sequencer holds early finishers; delivery is serialised). A read
  /// returns its admission slot at DELIVERY, so the held-back backlog —
  /// results merged early but waiting their turn — also stays within
  /// max_in_flight rather than growing with the batch. Aborted reads
  /// pass through the re-sequencer like completed ones (marked ready,
  /// no callback), so a cancelled read ahead of the head can never
  /// wedge the window.
  bool in_order = false;
  /// Keep merged results for result()/drain(). Set false for pure
  /// streaming consumers: each result is released right after its
  /// callback, bounding total result memory by in-flight reads.
  bool keep_results = true;
};

class SearchService {
 public:
  using Options = ServiceOptions;
  using Config = ServiceConfig;

  /// Borrows `accelerator` (which must be loaded and must outlive the
  /// service and every ticket). The default Config — unlimited budget,
  /// unbounded queue — reproduces the pre-scheduler FIFO service
  /// bit-for-bit. Throws ServiceError{InvalidOptions} on a zero class
  /// weight.
  explicit SearchService(ShardedAccelerator& accelerator,
                         const Config& config = Config());

  /// Starts an asynchronous batch search and returns immediately, taking
  /// ownership of `reads` (pass an rvalue to avoid the copy). Width
  /// validation happens here (throws like search_batch); everything after
  /// runs on the accelerator's session pool. Blocks while the pending
  /// queue is full (Config::max_pending_reads); throws
  /// ServiceError{AdmissionFull} only if the submission alone exceeds the
  /// bound. Control-plane only.
  std::shared_ptr<SearchTicket> submit(std::vector<Sequence> reads,
                                       std::size_t threshold,
                                       StrategyMode mode,
                                       const Options& options = Options());

  /// Like submit(), but borrows the caller's vector instead of copying:
  /// `reads` must stay alive and unmodified until the ticket is done.
  /// This is what the blocking wrappers (search_batch, map_batch) use —
  /// their caller's vector outlives their wait by construction.
  std::shared_ptr<SearchTicket> submit_borrowed(
      const std::vector<Sequence>& reads, std::size_t threshold,
      StrategyMode mode, const Options& options = Options());

  /// Fail-fast admission: like submit()/submit_borrowed() but never
  /// blocks — throws ServiceError{AdmissionFull} when the pending queue
  /// cannot take the submission right now.
  std::shared_ptr<SearchTicket> try_submit(std::vector<Sequence> reads,
                                           std::size_t threshold,
                                           StrategyMode mode,
                                           const Options& options = Options());
  std::shared_ptr<SearchTicket> try_submit_borrowed(
      const std::vector<Sequence>& reads, std::size_t threshold,
      StrategyMode mode, const Options& options = Options());

  /// Scheduler observability (racy while work is in flight).
  std::size_t in_flight_reads() const { return sched_->in_flight_reads(); }
  std::size_t queued_reads() const { return sched_->queued_reads(); }

 private:
  void validate(const std::vector<Sequence>& reads) const;
  std::shared_ptr<SearchTicket> launch(std::shared_ptr<SearchTicket> ticket,
                                       const Options& options, bool block);

  ShardedAccelerator* accel_;
  std::shared_ptr<ServiceScheduler> sched_;
};

}  // namespace asmcap
