#pragma once
// Typed error taxonomy of the service tier (submission admission,
// per-ticket scheduling, cancellation, deadlines), the scheduling
// counterpart of the database mutations' DbError (asmcap/db_error.h).
// A ServiceError is a *rejection with a reason the caller can branch on*:
// try_submit over a full queue throws AdmissionFull, polling the result
// of a read the ticket cancelled throws Cancelled, and so on — callers
// that only care that something went wrong still catch std::runtime_error.
//
// Thread-safety: ServiceError is an immutable value after construction;
// kind() is const and may be read from any thread.

#include <stdexcept>
#include <string>

namespace asmcap {

enum class ServiceErrorKind {
  /// Bounded-queue admission rejected the submission: the pending-read
  /// queue is full (try_submit), or the submission alone exceeds the
  /// configured bound and could never be admitted (submit and try_submit).
  AdmissionFull,
  /// The ticket was cancelled; the requested read never completed.
  Cancelled,
  /// The ticket's deadline expired; the requested read never completed.
  Expired,
  /// stats()/read_timings()/drain() asked for terminal-state data while
  /// the ticket was still running.
  NotTerminal,
  /// Rejected configuration or submit options (zero class weight,
  /// negative deadline, ...).
  InvalidOptions,
};

inline const char* to_string(ServiceErrorKind kind) {
  switch (kind) {
    case ServiceErrorKind::AdmissionFull:
      return "AdmissionFull";
    case ServiceErrorKind::Cancelled:
      return "Cancelled";
    case ServiceErrorKind::Expired:
      return "Expired";
    case ServiceErrorKind::NotTerminal:
      return "NotTerminal";
    case ServiceErrorKind::InvalidOptions:
      return "InvalidOptions";
  }
  return "ServiceErrorKind(?)";
}

class ServiceError : public std::runtime_error {
 public:
  ServiceError(ServiceErrorKind kind, const std::string& message)
      : std::runtime_error(std::string(to_string(kind)) + ": " + message),
        kind_(kind) {}

  ServiceErrorKind kind() const noexcept { return kind_; }

 private:
  ServiceErrorKind kind_;
};

}  // namespace asmcap
