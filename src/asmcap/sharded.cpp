#include "asmcap/sharded.h"

#include <algorithm>
#include <stdexcept>

#include "asmcap/service.h"

namespace asmcap {

ShardedAccelerator::ShardedAccelerator(AsmcapConfig config,
                                       std::size_t shard_count)
    : config_(config),
      shard_count_(shard_count),
      rates_(ErrorRates::condition_a()),
      controller_(config),
      rng_(config.seed) {
  if (shard_count_ == 0)
    throw std::invalid_argument("ShardedAccelerator: zero shards");
}

void ShardedAccelerator::load_reference(
    const std::vector<Sequence>& segments) {
  if (segments_loaded_ != 0)
    throw std::logic_error("ShardedAccelerator: reference already loaded");
  if (segments.empty())
    throw std::invalid_argument("ShardedAccelerator: no segments");
  if (segments.size() > capacity_segments())
    throw std::length_error(
        "ShardedAccelerator: database exceeds the sharded capacity");

  // Contiguous balanced partition: shard s holds count/N segments plus one
  // of the count%N leftovers. Every share fits one bank because
  // ceil(count/N) <= bank capacity whenever count <= N * capacity. A tiny
  // database may populate fewer banks than configured (at most one bank
  // per segment) — empty banks are never built, so every active bank can
  // execute queries.
  const std::size_t total = segments.size();
  active_shards_ = std::min(shard_count_, total);
  bases_.assign(active_shards_ + 1, 0);
  for (std::size_t s = 0; s < active_shards_; ++s)
    bases_[s + 1] = bases_[s] + total / active_shards_ +
                    (s < total % active_shards_ ? 1u : 0u);

  banks_.reserve(active_shards_);
  for (std::size_t s = 0; s < active_shards_; ++s) {
    AsmcapConfig bank_config = config_;
    // Bank 0 keeps the config's seed (the N == 1 bit-identity anchor);
    // later banks are physically distinct chips with their own silicon
    // streams (Rng::reseed splitmixes, so consecutive seeds decorrelate).
    bank_config.seed = config_.seed + s;
    bank_config.segment_base = config_.segment_base + bases_[s];
    banks_.push_back(std::make_unique<AsmcapAccelerator>(bank_config));
    banks_.back()->set_error_profile(rates_);
    banks_.back()->set_backend(backend_kind_);
    const std::vector<Sequence> block(segments.begin() + bases_[s],
                                      segments.begin() + bases_[s + 1]);
    banks_.back()->load_reference(block);
  }
  segments_loaded_ = total;
}

void ShardedAccelerator::set_error_profile(const ErrorRates& rates) {
  rates_ = rates;
  for (auto& bank : banks_) bank->set_error_profile(rates);
}

void ShardedAccelerator::set_backend(BackendKind kind) {
  backend_kind_ = kind;
  for (auto& bank : banks_) bank->set_backend(kind);
}

double ShardedAccelerator::load_energy_joules() const {
  double energy = 0.0;
  for (const auto& bank : banks_) energy += bank->load_energy_joules();
  return energy;
}

double ShardedAccelerator::load_latency_seconds() const {
  double latency = 0.0;
  for (const auto& bank : banks_)
    latency = std::max(latency, bank->load_latency_seconds());
  return latency;
}

void ShardedAccelerator::check_loaded() const {
  if (segments_loaded_ == 0)
    throw std::logic_error("ShardedAccelerator: no reference loaded");
}

void ShardedAccelerator::check_shard(std::size_t s) const {
  check_loaded();
  if (s >= active_shards_)
    throw std::out_of_range("ShardedAccelerator: shard index out of range");
}

std::vector<std::uint32_t> ShardedAccelerator::probe_shards(
    const ExecutionPlan& plan) const {
  std::vector<std::uint32_t> selected;
  selected.reserve(active_shards_);
  const std::size_t windows =
      config_.pruning.enabled
          ? pruning_window_count(config_, backend_kind_, plan.threshold)
          : 0;
  for (std::uint32_t s = 0; s < active_shards_; ++s) {
    // windows == 0 means a sound prune is impossible for this query (or
    // pruning is off): dispatch everything. A bank without a sketch is
    // never skipped either.
    const BankSketch* sketch = windows == 0 ? nullptr : banks_[s]->sketch();
    if (sketch == nullptr || sketch->may_match(plan, windows))
      selected.push_back(s);
  }
  return selected;
}

QueryResult ShardedAccelerator::merge_subset(
    const std::vector<QueryResult>& partials,
    const std::vector<std::uint32_t>& shard_ids) const {
  QueryResult merged;
  merged.plan = partials.front().plan;
  merged.decisions.assign(segments_loaded_, false);
  for (std::size_t j = 0; j < shard_ids.size(); ++j) {
    const QueryResult& part = partials[j];
    const std::size_t base = bases_[shard_ids[j]];
    for (std::size_t g = 0; g < part.decisions.size(); ++g)
      merged.decisions[base + g] = part.decisions[g];
    for (const std::size_t local : part.matched_segments)
      merged.matched_segments.push_back(base + local);
    // Banks search in parallel: a pass completes when the slowest bank
    // does; energy is spent in every dispatched bank (ascending shard
    // order keeps the floating-point summation deterministic).
    merged.latency_seconds =
        std::max(merged.latency_seconds, part.latency_seconds);
    merged.energy_joules += part.energy_joules;
  }
  return merged;
}

QueryResult ShardedAccelerator::empty_result(const ExecutionPlan& plan) const {
  QueryResult result;
  result.plan = plan.summary;
  result.decisions.assign(segments_loaded_, false);
  // Pass latency is a pure function of the plan's operation count (see
  // TimingModel), so an all-pruned read reports the same latency a full
  // fan-out would — the bit-identity contract covers latency too.
  result.latency_seconds = banks_.front()->timing().asmcap_query_latency(
      plan.summary.total_searches());
  return result;
}

QueryResult ShardedAccelerator::search(const Sequence& read,
                                       std::size_t threshold,
                                       StrategyMode mode,
                                       std::size_t workers) {
  check_loaded();
  if (read.size() != config_.array_cols)
    throw std::invalid_argument("ShardedAccelerator: read width mismatch");

  // Identical stream evolution to AsmcapAccelerator::search — the N == 1
  // bit-identity anchor. The master stream advances BEFORE the sketch
  // probe, and by the same one step whether or not banks get pruned, so
  // pruning never shifts later queries' streams. Every dispatched bank
  // executes the same plan against the same query stream; global-id RNG
  // keying keeps their draws disjoint, and a pruned bank would have drawn
  // nothing that surviving banks see (streams are pure forks per global
  // segment id) — decisions stay bit-identical to full fan-out.
  const ExecutionPlan plan =
      controller_.planner().build(read, threshold, rates_, mode);
  const Rng query_rng = rng_.fork(rng_.next());

  const std::vector<std::uint32_t> selected = probe_shards(plan);
  QueryResult result;
  if (selected.empty()) {
    result = empty_result(plan);
  } else {
    std::vector<QueryResult> partials(selected.size());
    worker_pool(workers).parallel_for(selected.size(), [&](std::size_t j) {
      partials[j] = banks_[selected[j]]->execute(plan, query_rng);
    });
    result = merge_subset(partials, selected);
  }
  controller_.record(result.plan, result.latency_seconds,
                     result.energy_joules);
  if (config_.pruning.enabled)
    controller_.record_pruning(selected.size(),
                               active_shards_ - selected.size());
  return result;
}

std::vector<QueryResult> ShardedAccelerator::search_batch(
    const std::vector<Sequence>& reads, std::size_t threshold,
    StrategyMode mode, std::size_t workers) {
  // Thin blocking wrapper over the streaming service: submit the batch,
  // drain it in read order. The service uses the same per-read stream
  // formula as the single-bank batch engine (forked from the router's
  // master RNG: deterministic in read index, independent of worker count,
  // non-perturbing) and records the ledger in read order at drain, so
  // this is bit-identical to the former eager implementation — but peak
  // partial-result memory is bounded by the admission window instead of
  // reads x shards, and a single-shard router skips partial staging
  // entirely.
  SearchService service(*this);
  SearchService::Options options;
  options.workers = workers;
  // Borrowed: `reads` outlives the drain, so no copy into the ticket.
  return service.submit_borrowed(reads, threshold, mode, options)->drain();
}

}  // namespace asmcap
