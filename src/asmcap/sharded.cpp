#include "asmcap/sharded.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "asmcap/service.h"

namespace asmcap {

ShardedAccelerator::ShardedAccelerator(AsmcapConfig config,
                                       std::size_t shard_count)
    : config_(config),
      shard_count_(shard_count),
      rates_(ErrorRates::condition_a()),
      next_global_id_(static_cast<std::uint64_t>(config.segment_base)),
      timing_(config.process),
      controller_(config),
      rng_(config.seed) {
  if (shard_count_ == 0)
    throw std::invalid_argument("ShardedAccelerator: zero shards");
}

std::shared_ptr<AsmcapAccelerator> ShardedAccelerator::make_bank(
    bool cold, std::size_t seed_salt) const {
  AsmcapConfig bank_config = config_;
  // Bank-internal sequential streams are never used by the router, but
  // keep them distinct per bank anyway (Rng::reseed splitmixes, so
  // consecutive seeds decorrelate).
  bank_config.seed = config_.seed + seed_salt;
  // ONE silicon stream tree for the whole router: a row's manufactured
  // silicon is keyed by its global id alone, so rebalancing a segment
  // into another bank moves its noisy behaviour with it (determinism
  // rule 8).
  bank_config.silicon_seed =
      config_.silicon_seed != 0 ? config_.silicon_seed : config_.seed;
  bank_config.segment_base = config_.segment_base;
  if (!cold) {
    bank_config.array_rows = config_.live.hot_array_rows;
    bank_config.array_count = config_.live.hot_array_count;
  }
  auto bank = std::make_shared<AsmcapAccelerator>(bank_config);
  bank->set_error_profile(rates_);
  bank->set_backend(backend_kind_);
  return bank;
}

void ShardedAccelerator::load_reference(
    const std::vector<Sequence>& segments) {
  if (db_)
    throw DbError(DbErrorKind::AlreadyLoaded,
                  "ShardedAccelerator: reference already loaded");
  if (segments.empty())
    throw std::invalid_argument("ShardedAccelerator: no segments");
  if (segments.size() > capacity_segments())
    throw DbError(DbErrorKind::CapacityExceeded,
                  "ShardedAccelerator: database exceeds the sharded capacity");

  // Contiguous balanced partition: shard s holds count/N segments plus one
  // of the count%N leftovers. Every share fits one bank because
  // ceil(count/N) <= bank capacity whenever count <= N * capacity. A tiny
  // database may populate fewer banks than configured (at most one bank
  // per segment) — empty banks are never built, so every active bank can
  // execute queries.
  const std::size_t total = segments.size();
  const std::size_t shards = std::min(shard_count_, total);
  std::vector<std::size_t> bases(shards + 1, 0);
  for (std::size_t s = 0; s < shards; ++s)
    bases[s + 1] = bases[s] + total / shards + (s < total % shards ? 1u : 0u);

  auto next = std::make_shared<DbEpoch>();
  next->number = 1;
  next->banks.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    // The frozen anchor: bank s's ids are the contiguous global block
    // [segment_base + bases[s], segment_base + bases[s+1]). Bank 0 keeps
    // the config's seed; every bank shares the router's silicon seed so
    // a later rebalance cannot change any row's manufactured silicon.
    AsmcapConfig cfg = config_;
    cfg.seed = config_.seed + s;
    cfg.silicon_seed =
        config_.silicon_seed != 0 ? config_.silicon_seed : config_.seed;
    cfg.segment_base = config_.segment_base + bases[s];
    next->banks.push_back(std::make_shared<AsmcapAccelerator>(cfg));
    next->banks.back()->set_error_profile(rates_);
    next->banks.back()->set_backend(backend_kind_);
    const std::vector<Sequence> block(segments.begin() + bases[s],
                                      segments.begin() + bases[s + 1]);
    next->banks.back()->load_reference(block);
  }
  next->has_hot = false;
  next->id_space = total;
  next->live_count = total;
  next_global_id_ =
      static_cast<std::uint64_t>(config_.segment_base) + total;
  db_ = std::move(next);
}

AsmcapAccelerator& ShardedAccelerator::touch(DbEpoch& next,
                                             std::vector<bool>& owned,
                                             std::size_t i) const {
  if (!owned[i]) {
    next.banks[i] =
        std::shared_ptr<AsmcapAccelerator>(next.banks[i]->clone());
    owned[i] = true;
  }
  return *next.banks[i];
}

void ShardedAccelerator::fold_hot(DbEpoch& next,
                                  std::vector<bool>& owned) const {
  // Gather the hot bank's survivors in ascending id order (the canonical
  // fold order: deterministic whatever slot-recycling history the hot
  // bank had) and drop it from the epoch.
  std::vector<std::pair<std::uint64_t, Sequence>> moved =
      next.banks.back()->live_segments();
  std::sort(moved.begin(), moved.end(),
            [](const std::pair<std::uint64_t, Sequence>& a,
               const std::pair<std::uint64_t, Sequence>& b) {
              return a.first < b.first;
            });
  next.banks.pop_back();
  owned.pop_back();
  next.has_hot = false;

  std::size_t j = 0;
  std::size_t s = 0;
  while (j < moved.size()) {
    if (s == next.banks.size()) {
      // All existing cold banks are full: grow the cold tier (the
      // capacity invariant — live <= cold capacity — guarantees we never
      // need more than shard_count_ banks).
      if (next.banks.size() >= shard_count_)
        throw std::logic_error("ShardedAccelerator: fold overflow");
      next.banks.push_back(make_bank(true, next.banks.size()));
      owned.push_back(true);
    }
    const std::size_t room = next.banks[s]->free_capacity();
    if (room == 0) {
      ++s;
      continue;
    }
    const std::size_t take = std::min(room, moved.size() - j);
    std::vector<Sequence> block;
    std::vector<std::uint64_t> ids;
    block.reserve(take);
    ids.reserve(take);
    for (std::size_t k = 0; k < take; ++k) {
      ids.push_back(moved[j + k].first);
      block.push_back(std::move(moved[j + k].second));
    }
    touch(next, owned, s).append_segments(block, ids);
    j += take;
    ++s;
  }
}

std::vector<std::uint64_t> ShardedAccelerator::append_segments(
    const std::vector<Sequence>& segments) {
  if (segments.empty()) return {};
  for (const Sequence& segment : segments)
    if (segment.size() != config_.array_cols)
      throw std::invalid_argument("ShardedAccelerator: segment width mismatch");
  const std::size_t live_now = db_ ? db_->live_count : 0;
  if (live_now + segments.size() > capacity_segments())
    throw DbError(DbErrorKind::CapacityExceeded,
                  "ShardedAccelerator: database exceeds the sharded capacity");

  auto next = std::make_shared<DbEpoch>();
  next->number = (db_ ? db_->number : 0) + 1;
  if (db_) {
    next->banks = db_->banks;
    next->has_hot = db_->has_hot;
  }
  std::vector<bool> owned(next->banks.size(), false);

  std::vector<std::uint64_t> ids(segments.size());
  for (std::size_t i = 0; i < ids.size(); ++i)
    ids[i] = next_global_id_ + static_cast<std::uint64_t>(i);

  std::size_t i = 0;
  while (i < segments.size()) {
    if (!next->has_hot) {
      // Fresh hot staging bank (always last). Its seed salt only has to
      // be distinct from the cold banks'; the epoch number keeps
      // successive hot generations distinct too.
      next->banks.push_back(make_bank(
          false, shard_count_ + static_cast<std::size_t>(next->number)));
      owned.push_back(true);
      next->has_hot = true;
    }
    AsmcapAccelerator& hot = touch(*next, owned, next->banks.size() - 1);
    const std::size_t room = hot.free_capacity();
    if (room == 0) {
      // Hot overflow: fold the staged rows into the cold tier mid-append
      // and start a fresh hot bank.
      fold_hot(*next, owned);
      continue;
    }
    const std::size_t take = std::min(room, segments.size() - i);
    hot.append_segments(
        std::vector<Sequence>(segments.begin() + i,
                              segments.begin() + i + take),
        std::vector<std::uint64_t>(ids.begin() + i, ids.begin() + i + take));
    i += take;
  }

  next->id_space = static_cast<std::size_t>(
      next_global_id_ + segments.size() -
      static_cast<std::uint64_t>(config_.segment_base));
  next->live_count = live_now + segments.size();
  next_global_id_ += segments.size();
  db_ = std::move(next);
  return ids;
}

void ShardedAccelerator::remove_segments(
    const std::vector<std::uint64_t>& ids) {
  check_loaded();
  if (ids.empty())
    throw DbError(DbErrorKind::EmptyMutation,
                  "ShardedAccelerator: remove_segments with no ids");
  // Validate every id against the CURRENT epoch before cloning anything:
  // a throw below leaves the published epoch untouched.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(ids.size());
  std::vector<std::vector<std::uint64_t>> per_bank(db_->banks.size());
  for (const std::uint64_t id : ids) {
    if (!seen.insert(id).second)
      throw DbError(DbErrorKind::DoubleDelete,
                    "ShardedAccelerator: segment already deleted");
    bool found = false;
    for (std::size_t s = 0; s < db_->banks.size() && !found; ++s) {
      switch (db_->banks[s]->segment_state(id)) {
        case SegmentState::Live:
          per_bank[s].push_back(id);
          found = true;
          break;
        case SegmentState::Dead:
          throw DbError(DbErrorKind::DoubleDelete,
                        "ShardedAccelerator: segment already deleted");
        case SegmentState::Unknown:
          break;
      }
    }
    if (!found)
      throw DbError(DbErrorKind::UnknownSegment,
                    "ShardedAccelerator: unknown segment id");
  }

  auto next = std::make_shared<DbEpoch>(*db_);
  next->number = db_->number + 1;
  std::vector<bool> owned(next->banks.size(), false);
  for (std::size_t s = 0; s < per_bank.size(); ++s)
    if (!per_bank[s].empty())
      touch(*next, owned, s).remove_segments(per_bank[s]);
  next->live_count -= ids.size();
  db_ = std::move(next);
}

std::uint64_t ShardedAccelerator::compact() {
  check_loaded();
  if (!db_->has_hot) return db_->number;  // nothing staged: no new epoch
  auto next = std::make_shared<DbEpoch>(*db_);
  next->number = db_->number + 1;
  std::vector<bool> owned(next->banks.size(), false);
  fold_hot(*next, owned);
  const std::uint64_t number = next->number;
  db_ = std::move(next);
  return number;
}

SegmentState ShardedAccelerator::segment_state(std::uint64_t id) const {
  if (!db_) return SegmentState::Unknown;
  for (const auto& bank : db_->banks) {
    const SegmentState state = bank->segment_state(id);
    if (state != SegmentState::Unknown) return state;
  }
  return SegmentState::Unknown;
}

std::vector<std::pair<std::uint64_t, Sequence>>
ShardedAccelerator::live_segments() const {
  std::vector<std::pair<std::uint64_t, Sequence>> out;
  if (!db_) return out;
  out.reserve(db_->live_count);
  for (const auto& bank : db_->banks) {
    std::vector<std::pair<std::uint64_t, Sequence>> part =
        bank->live_segments();
    for (auto& entry : part) out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(),
            [](const std::pair<std::uint64_t, Sequence>& a,
               const std::pair<std::uint64_t, Sequence>& b) {
              return a.first < b.first;
            });
  return out;
}

void ShardedAccelerator::set_error_profile(const ErrorRates& rates) {
  rates_ = rates;
  if (db_)
    for (const auto& bank : db_->banks) bank->set_error_profile(rates);
}

void ShardedAccelerator::set_backend(BackendKind kind) {
  backend_kind_ = kind;
  if (db_)
    for (const auto& bank : db_->banks) bank->set_backend(kind);
}

double ShardedAccelerator::load_energy_joules() const {
  double energy = 0.0;
  if (db_)
    for (const auto& bank : db_->banks)
      energy += bank->load_energy_joules();
  return energy;
}

double ShardedAccelerator::load_latency_seconds() const {
  double latency = 0.0;
  if (db_)
    for (const auto& bank : db_->banks)
      latency = std::max(latency, bank->load_latency_seconds());
  return latency;
}

void ShardedAccelerator::check_loaded() const {
  if (!db_)
    throw DbError(DbErrorKind::NotLoaded,
                  "ShardedAccelerator: no reference loaded");
}

void ShardedAccelerator::check_shard(std::size_t s) const {
  check_loaded();
  if (s >= db_->banks.size())
    throw std::out_of_range("ShardedAccelerator: shard index out of range");
}

std::vector<std::uint32_t> ShardedAccelerator::probe_shards(
    const DbEpoch& db, const ExecutionPlan& plan) const {
  std::vector<std::uint32_t> selected;
  selected.reserve(db.banks.size());
  const std::size_t windows =
      config_.pruning.enabled
          ? pruning_window_count(config_, backend_kind_, plan.threshold)
          : 0;
  for (std::uint32_t s = 0; s < db.banks.size(); ++s) {
    // windows == 0 means a sound prune is impossible for this query (or
    // pruning is off): dispatch everything. A bank without a sketch is
    // never skipped either.
    const BankSketch* sketch =
        windows == 0 ? nullptr : db.banks[s]->sketch();
    if (sketch == nullptr || sketch->may_match(plan, windows))
      selected.push_back(s);
  }
  return selected;
}

QueryResult ShardedAccelerator::merge_subset(
    const DbEpoch& db, const std::vector<QueryResult>& partials,
    const std::vector<std::uint32_t>& shard_ids) const {
  QueryResult merged;
  merged.plan = partials.front().plan;
  merged.decisions.assign(db.id_space, false);
  const std::uint64_t base =
      static_cast<std::uint64_t>(config_.segment_base);
  for (std::size_t j = 0; j < shard_ids.size(); ++j) {
    const QueryResult& part = partials[j];
    // Bank results are slot-indexed: scatter them into the global id
    // space through the bank's directory (ids are disjoint across banks).
    const LiveDirectory& dir = db.banks[shard_ids[j]]->directory();
    for (std::size_t slot = 0; slot < part.decisions.size(); ++slot)
      if (part.decisions[slot])
        merged.decisions[static_cast<std::size_t>(dir.ids[slot] - base)] =
            true;
    // Banks search in parallel: a pass completes when the slowest bank
    // does; energy is spent in every dispatched bank (ascending shard
    // order keeps the floating-point summation deterministic).
    merged.latency_seconds =
        std::max(merged.latency_seconds, part.latency_seconds);
    merged.energy_joules += part.energy_joules;
  }
  for (std::size_t g = 0; g < merged.decisions.size(); ++g)
    if (merged.decisions[g]) merged.matched_segments.push_back(g);
  return merged;
}

QueryResult ShardedAccelerator::empty_result(const DbEpoch& db,
                                             const ExecutionPlan& plan) const {
  QueryResult result;
  result.plan = plan.summary;
  result.decisions.assign(db.id_space, false);
  // Pass latency is a pure function of the plan's operation count (see
  // TimingModel), so an all-pruned read reports the same latency a full
  // fan-out would — the bit-identity contract covers latency too.
  result.latency_seconds =
      timing_.asmcap_query_latency(plan.summary.total_searches());
  return result;
}

QueryResult ShardedAccelerator::search(const Sequence& read,
                                       std::size_t threshold,
                                       StrategyMode mode,
                                       std::size_t workers) {
  check_loaded();
  if (read.size() != config_.array_cols)
    throw std::invalid_argument("ShardedAccelerator: read width mismatch");

  // Snapshot the epoch once: the whole query — probe, fan-out, merge —
  // runs against it even if (illegally) interleaved with a mutation.
  const std::shared_ptr<const DbEpoch> db = db_;

  // Identical stream evolution to AsmcapAccelerator::search — the N == 1
  // bit-identity anchor. The master stream advances BEFORE the sketch
  // probe, and by the same one step whether or not banks get pruned, so
  // pruning never shifts later queries' streams. Every dispatched bank
  // executes the same plan against the same query stream; global-id RNG
  // keying keeps their draws disjoint, and a pruned bank would have drawn
  // nothing that surviving banks see (streams are pure forks per global
  // segment id) — decisions stay bit-identical to full fan-out.
  const ExecutionPlan plan =
      controller_.planner().build(read, threshold, rates_, mode);
  const Rng query_rng = rng_.fork(rng_.next());

  const std::vector<std::uint32_t> selected = probe_shards(*db, plan);
  QueryResult result;
  if (selected.empty()) {
    result = empty_result(*db, plan);
  } else {
    std::vector<QueryResult> partials(selected.size());
    worker_pool(workers).parallel_for(selected.size(), [&](std::size_t j) {
      partials[j] = db->banks[selected[j]]->execute(plan, query_rng);
    });
    result = merge_subset(*db, partials, selected);
  }
  controller_.record(result.plan, result.latency_seconds,
                     result.energy_joules);
  if (config_.pruning.enabled)
    controller_.record_pruning(selected.size(),
                               db->banks.size() - selected.size());
  return result;
}

std::vector<QueryResult> ShardedAccelerator::search_batch(
    const std::vector<Sequence>& reads, std::size_t threshold,
    StrategyMode mode, std::size_t workers) {
  // Thin blocking wrapper over the streaming service: submit the batch,
  // drain it in read order. The service uses the same per-read stream
  // formula as the single-bank batch engine (forked from the router's
  // master RNG: deterministic in read index, independent of worker count,
  // non-perturbing) and records the ledger in read order at drain, so
  // this is bit-identical to the former eager implementation — but peak
  // partial-result memory is bounded by the admission window instead of
  // reads x shards, and a single-shard router skips partial staging
  // entirely.
  SearchService service(*this);
  SearchService::Options options;
  options.workers = workers;
  // Borrowed: `reads` outlives the drain, so no copy into the ticket.
  return service.submit_borrowed(reads, threshold, mode, options)->drain();
}

}  // namespace asmcap
