#pragma once
// Sharded multi-bank accelerator: the scale-out layer above
// AsmcapAccelerator. A single bank caps the database at
// array_count x array_rows segments; the sharded accelerator partitions
// the stored reference across N independent banks — each with its own
// arrays, backends, manufactured silicon (seed forked from the shard
// index), and ledger — and puts a batch router on top:
//
//   ShardedAccelerator (router: plans once, fans (read x shard) tasks
//        |              across the session pool, merges per-read results,
//        |              keeps the aggregate ledger)
//        +-- bank 0: AsmcapAccelerator [segments 0 .. c0)
//        +-- bank 1: AsmcapAccelerator [segments c0 .. c0+c1)
//        +-- ...
//
// Per-shard results are re-based into global segment ids and merged:
// decisions are OR'd into the global bitmap (shards are disjoint, so this
// is a scatter), latency is the max over shards for a pass (banks search
// in parallel), energy is the sum, and the router's ledger records the
// merged totals.
//
// Shard pruning (config.pruning.enabled): before fanning out, the router
// probes each bank's BankSketch (asmcap/sketch.h) against the query plan
// and dispatches only the banks that may contain a match — a pruned bank
// spawns no task, burns no SL-driver energy, and (because per-decision RNG
// streams are keyed by global segment id and are pure forks, never
// sequential draws) contributes no RNG draws, so the surviving banks'
// decisions are bit-identical to full fan-out. Latency is likewise
// unchanged (a bank's pass latency is a pure function of the plan);
// energy honestly drops to the probed banks' sum, summed in ascending
// shard order. The ledger gains banks_probed/banks_pruned counts.
//
// Ownership: the router owns its banks, controller, and session pool (the
// pool is shared with SearchService tickets and ReadMapper verification).
// Thread-safety: like the single-bank accelerator, the mutating entry
// points (load_reference, search, search_batch, set_*, and
// SearchService::submit/wait/drain on top of it) belong to one control
// thread at a time; the per-bank execute() fan-out is what runs
// concurrently. Reentrancy: the fan-out uses the session pool —
// parallel_for is not reentrant (util/thread_pool.h), so never search
// from inside a pool task or service callback.
//
// Determinism contract (enforced by test_sharded; full discipline in
// docs/determinism.md):
//  * shard_count == 1 is bit-identical to a plain AsmcapAccelerator with
//    the same config — same decisions, energy, latency, and ledger —
//    because bank 0 keeps the config's seed and the router's master RNG
//    advances exactly like the monolithic accelerator's;
//  * match decisions are invariant in shard count and worker count
//    whenever the decision path is noise-free (FunctionalBackend, or
//    CircuitBackend under ideal_sensing), because every per-decision RNG
//    stream — including HDAC's selection coins — is keyed by *global*
//    segment id (see backend.h). With noisy sensing, each shard count is
//    a different set of manufactured chips, so noise differs physically;
//    N == 1 equivalence still holds bit-for-bit.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "asmcap/accelerator.h"
#include "asmcap/config.h"
#include "asmcap/controller.h"
#include "genome/sequence.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace asmcap {

class SearchService;
class SearchTicket;

class ShardedAccelerator {
 public:
  /// `config` describes ONE bank's geometry; total capacity is
  /// shard_count x config.capacity_segments().
  ShardedAccelerator(AsmcapConfig config, std::size_t shard_count);

  ShardedAccelerator(ShardedAccelerator&&) = delete;
  ShardedAccelerator& operator=(ShardedAccelerator&&) = delete;

  /// Partitions `segments` into contiguous, balanced per-bank blocks and
  /// loads each bank. May be called once; throws std::length_error when
  /// the database exceeds shard_count banks.
  void load_reference(const std::vector<Sequence>& segments);

  void set_error_profile(const ErrorRates& rates);
  const ErrorRates& error_profile() const { return rates_; }

  /// Switches every bank's execution backend (live, like the single-bank
  /// accelerator).
  void set_backend(BackendKind kind);
  BackendKind backend_kind() const { return backend_kind_; }

  /// Searches one read against the whole sharded database, fanning the
  /// per-bank scans across `workers` threads (the latency path: one read
  /// split across banks). Deterministic in worker count.
  QueryResult search(const Sequence& read, std::size_t threshold,
                     StrategyMode mode, std::size_t workers = 1);

  /// Searches a batch: (read x shard) tasks across `workers` threads,
  /// per-read RNG streams forked exactly like the single-bank batch
  /// engine's. Results are bit-identical for any worker count. This is a
  /// thin blocking wrapper over SearchService (submit + drain), so peak
  /// partial-result memory is bounded by the in-flight admission window,
  /// not by reads x shards; use the service directly (asmcap/service.h)
  /// for asynchronous submit/poll and per-read result streaming.
  std::vector<QueryResult> search_batch(const std::vector<Sequence>& reads,
                                        std::size_t threshold,
                                        StrategyMode mode,
                                        std::size_t workers = 1);

  std::size_t shard_count() const { return shard_count_; }
  /// Banks actually populated by load_reference: min(shard_count, total
  /// segments) — a tiny database never creates empty banks.
  std::size_t active_shards() const {
    check_loaded();
    return active_shards_;
  }
  /// Bank `s` (s < active_shards()).
  const AsmcapAccelerator& shard(std::size_t s) const {
    check_shard(s);
    return *banks_[s];
  }
  /// Global id of bank `s`'s first segment.
  std::size_t shard_base(std::size_t s) const {
    check_shard(s);
    return bases_[s];
  }
  /// Segments stored in bank `s`.
  std::size_t shard_segments(std::size_t s) const {
    check_shard(s);
    return bases_[s + 1] - bases_[s];
  }

  std::size_t loaded_segments() const { return segments_loaded_; }
  std::size_t capacity_segments() const {
    return shard_count_ * config_.capacity_segments();
  }
  /// One-time reference-load cost: banks write in parallel, so energy
  /// sums and latency is the max over banks.
  double load_energy_joules() const;
  double load_latency_seconds() const;

  /// Aggregate ledger of the merged per-read results (the per-bank
  /// ledgers stay untouched: the router never calls bank search paths).
  const ExecutionTotals& totals() const { return controller_.totals(); }
  void reset_totals() { controller_.reset_totals(); }
  const Controller& controller() const { return controller_; }
  const AsmcapConfig& config() const { return config_; }

  /// The router's session-owned worker pool (see SessionPool; shared
  /// with ReadMapper's host verification and SearchService tickets).
  /// While service tickets are in flight they pin the handle, so a
  /// request that would grow the pool is clamped to the live one instead
  /// of replacing it under their running tasks (safe: every parallel map
  /// here is worker-count invariant, docs/determinism.md).
  ThreadPool& worker_pool(std::size_t workers = 0) {
    return pool_.get(workers);
  }

 private:
  // The streaming service layer is the router's async execution engine:
  // it reads banks_/bases_, forks per-read streams from rng_/batch_epoch_,
  // and flushes ledger totals through controller_.
  friend class SearchService;
  friend class SearchTicket;

  void check_loaded() const;
  void check_shard(std::size_t s) const;
  /// Shards to dispatch for `plan`, ascending. All active shards when
  /// pruning is disabled or cannot be sound (pruning_window_count == 0);
  /// otherwise the shards whose sketches report may_match.
  std::vector<std::uint32_t> probe_shards(const ExecutionPlan& plan) const;
  /// Merges the partial results of the dispatched shards (partials[j] is
  /// shard shard_ids[j]'s result) into one global result: decisions
  /// scattered by shard base, latency = max, energy = sum in ascending
  /// shard order. `partials` must be non-empty.
  QueryResult merge_subset(const std::vector<QueryResult>& partials,
                           const std::vector<std::uint32_t>& shard_ids) const;
  /// The merged result of a read every bank pruned: all-false decisions,
  /// zero energy, and the same analytic pass latency any bank would
  /// report for this plan (latency is plan-determined, not data-determined).
  QueryResult empty_result(const ExecutionPlan& plan) const;

  AsmcapConfig config_;
  std::size_t shard_count_;
  ErrorRates rates_;
  BackendKind backend_kind_ = BackendKind::Circuit;
  std::vector<std::unique_ptr<AsmcapAccelerator>> banks_;
  std::vector<std::size_t> bases_;  ///< Prefix offsets into global ids.
  std::size_t active_shards_ = 0;   ///< Populated banks (set at load).
  std::size_t segments_loaded_ = 0;
  Controller controller_;
  std::uint64_t batch_epoch_ = 0;
  Rng rng_;  ///< Router master stream; advances exactly like a bank's.
  SessionPool pool_;  ///< Pinned by in-flight SearchService tickets.
};

}  // namespace asmcap
