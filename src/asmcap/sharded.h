#pragma once
// Sharded multi-bank accelerator: the scale-out layer above
// AsmcapAccelerator. A single bank caps the database at
// array_count x array_rows segments; the sharded accelerator partitions
// the stored reference across N independent banks — each with its own
// arrays, backends, and ledger — and puts a batch router on top:
//
//   ShardedAccelerator (router: plans once, fans (read x shard) tasks
//        |              across the session pool, merges per-read results,
//        |              keeps the aggregate ledger)
//        +-- bank 0: AsmcapAccelerator [cold]
//        +-- bank 1: AsmcapAccelerator [cold]
//        +-- ...
//        +-- hot bank (optional, always last): small append staging bank
//
// The database is LIVE (docs/architecture.md "Live database"): the router
// publishes immutable epoch snapshots (DbEpoch) of its bank set under a
// copy-on-write scheme. Every mutation — append_segments, remove_segments,
// compact — builds epoch E+1 from epoch E, re-using every untouched bank
// BY REFERENCE (shared_ptr) and cloning only the banks it rewrites, then
// publishes the new epoch atomically on the control plane. Searches and
// in-flight SearchService tickets capture the epoch current at launch and
// run against it to completion: a ticket never observes a mutation that
// raced its execution, and the banks it shares with newer epochs are only
// ever read (execute() is const), so concurrent search-under-mutation is
// data-race-free by construction.
//
// Heterogeneous geometry: appends land in a small HOT bank
// (config.live.hot_array_rows x hot_array_count arrays, always the LAST
// bank of an epoch) so a trickle of inserts never pays SL-driver energy
// for a mostly-empty full-size array. When the hot bank fills — or
// compact() is called — its live rows are folded into the cold banks'
// free rows (tombstoned slots first) at an epoch boundary. Global segment
// ids are stable across append, delete, and rebalance: an id is assigned
// once, never reused, and (because every per-decision RNG stream AND the
// row's manufactured silicon are keyed by global id, with every bank
// sharing the router's silicon seed) a segment decides identically
// wherever rebalancing moves it — searching epoch E is bit-identical to a
// fresh accelerator loaded with exactly E's live segments, on every
// backend including noisy circuit sensing (determinism rule 8; enforced
// by tests/test_live.cpp).
//
// Per-shard results are slot-indexed at the bank boundary and merged
// through each bank's LiveDirectory into the global id space: decisions
// scatter into the global bitmap (ids are disjoint across banks), latency
// is the max over shards for a pass (banks search in parallel), energy is
// the sum in ascending shard order, and the router's ledger records the
// merged totals.
//
// Shard pruning (config.pruning.enabled): before fanning out, the router
// probes each bank's BankSketch (asmcap/sketch.h) against the query plan
// and dispatches only the banks that may contain a match — a pruned bank
// spawns no task, burns no SL-driver energy, and (because per-decision RNG
// streams are keyed by global segment id and are pure forks, never
// sequential draws) contributes no RNG draws, so the surviving banks'
// decisions are bit-identical to full fan-out. Sketches are maintained
// incrementally across mutations (set_row/clear_row on the clones).
//
// Ownership: the router owns its epochs, controller, and session pool (the
// pool is shared with SearchService tickets and ReadMapper verification);
// epochs own their banks via shared_ptr (a retired epoch's banks live
// until the last ticket pinning them completes).
// Thread-safety: the mutating entry points (load_reference,
// append_segments, remove_segments, compact, search, search_batch, set_*,
// and SearchService::submit/wait/drain on top of them) belong to one
// control thread at a time; the per-bank execute() fan-out is what runs
// concurrently, always against an immutable epoch snapshot. Reentrancy:
// the fan-out uses the session pool — parallel_for is not reentrant
// (util/thread_pool.h), so never search or mutate from inside a pool task
// or service callback.
//
// Determinism contract (enforced by test_sharded and test_live; full
// discipline in docs/determinism.md):
//  * shard_count == 1 (frozen) is bit-identical to a plain
//    AsmcapAccelerator with the same config — same decisions, energy,
//    latency, and ledger;
//  * match decisions are invariant in shard count, worker count, AND
//    mutation history (only the set of live segments matters) — on noisy
//    circuit sensing too, because silicon is keyed per global id from the
//    router's shared silicon seed, not per (bank, row).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "asmcap/accelerator.h"
#include "asmcap/config.h"
#include "asmcap/controller.h"
#include "asmcap/db_error.h"
#include "circuit/timing.h"
#include "genome/sequence.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace asmcap {

class SearchService;
class SearchTicket;

/// One immutable snapshot of the router's bank set. Published by the
/// control plane with shared_ptr<const DbEpoch>; searches and tickets
/// capture the pointer at launch and never look back. Banks are shared
/// across epochs — a bank appears in every epoch between the mutation
/// that created it and the mutation that rewrote (cloned) or retired it —
/// and are only ever read through const execute() once published.
struct DbEpoch {
  std::uint64_t number = 0;
  /// Cold banks in shard order; when has_hot, the hot append bank is LAST.
  std::vector<std::shared_ptr<AsmcapAccelerator>> banks;
  bool has_hot = false;
  /// Width of the global decision bitmap: highest assigned id + 1 -
  /// segment_base (ids of deleted segments keep their lanes, always
  /// false).
  std::size_t id_space = 0;
  std::size_t live_count = 0;
};

class ShardedAccelerator {
 public:
  /// `config` describes ONE cold bank's geometry; cold capacity is
  /// shard_count x config.capacity_segments() (the hot bank is staging on
  /// top, sized by config.live).
  ShardedAccelerator(AsmcapConfig config, std::size_t shard_count);

  ShardedAccelerator(ShardedAccelerator&&) = delete;
  ShardedAccelerator& operator=(ShardedAccelerator&&) = delete;

  /// Partitions `segments` into contiguous, balanced per-bank blocks and
  /// loads each bank, publishing epoch 1. May be called once
  /// (DbErrorKind::AlreadyLoaded); DbErrorKind::CapacityExceeded when the
  /// database exceeds the cold capacity.
  void load_reference(const std::vector<Sequence>& segments);

  /// Appends segments to the live database, assigning fresh global ids
  /// (returned, ascending) and publishing a new epoch. Appends stage in
  /// the hot bank; a full hot bank is folded into the cold banks' free
  /// rows mid-append. Also valid before load_reference (bootstrap: the
  /// database grows from nothing). DbErrorKind::CapacityExceeded when the
  /// live count would exceed the cold capacity.
  std::vector<std::uint64_t> append_segments(
      const std::vector<Sequence>& segments);

  /// Tombstones the given global ids and publishes a new epoch. DbError:
  /// UnknownSegment / DoubleDelete (duplicates within the call included);
  /// the current epoch is untouched when it throws (validation precedes
  /// cloning).
  void remove_segments(const std::vector<std::uint64_t>& ids);

  /// Folds the hot bank's live rows into the cold banks at an epoch
  /// boundary (the explicit form of the mid-append overflow fold).
  /// Returns the epoch number afterwards — unchanged when nothing is
  /// staged (no new epoch is published).
  std::uint64_t compact();

  /// Epoch number of the current snapshot (0 before any reference).
  std::uint64_t epoch() const { return db_ ? db_->number : 0; }
  /// The current snapshot itself (what a launched ticket captures);
  /// nullptr before any reference.
  std::shared_ptr<const DbEpoch> db() const { return db_; }

  SegmentState segment_state(std::uint64_t id) const;
  /// The live (id, segment) pairs of the current epoch, ascending by id.
  std::vector<std::pair<std::uint64_t, Sequence>> live_segments() const;

  void set_error_profile(const ErrorRates& rates);
  const ErrorRates& error_profile() const { return rates_; }

  /// Switches every current bank's execution backend. Control-plane only,
  /// and (unlike append/remove, which clone) NOT safe while tickets are in
  /// flight: banks are shared with live epochs.
  void set_backend(BackendKind kind);
  BackendKind backend_kind() const { return backend_kind_; }

  /// Searches one read against the whole sharded database, fanning the
  /// per-bank scans across `workers` threads (the latency path: one read
  /// split across banks). Deterministic in worker count.
  QueryResult search(const Sequence& read, std::size_t threshold,
                     StrategyMode mode, std::size_t workers = 1);

  /// Searches a batch: (read x shard) tasks across `workers` threads,
  /// per-read RNG streams forked exactly like the single-bank batch
  /// engine's. Results are bit-identical for any worker count. This is a
  /// thin blocking wrapper over SearchService (submit + drain), so peak
  /// partial-result memory is bounded by the in-flight admission window,
  /// not by reads x shards; use the service directly (asmcap/service.h)
  /// for asynchronous submit/poll and per-read result streaming.
  std::vector<QueryResult> search_batch(const std::vector<Sequence>& reads,
                                        std::size_t threshold,
                                        StrategyMode mode,
                                        std::size_t workers = 1);

  std::size_t shard_count() const { return shard_count_; }
  /// Banks in the current epoch (cold banks actually populated, plus the
  /// hot bank when appends are staged).
  std::size_t active_shards() const {
    check_loaded();
    return db_->banks.size();
  }
  /// Bank `s` of the current epoch (s < active_shards()).
  const AsmcapAccelerator& shard(std::size_t s) const {
    check_shard(s);
    return *db_->banks[s];
  }
  /// Offset of bank `s`'s id floor within the router's global id space
  /// (on a frozen database: the global id of its first segment).
  std::size_t shard_base(std::size_t s) const {
    check_shard(s);
    return db_->banks[s]->config().segment_base - config_.segment_base;
  }
  /// Row slots allocated in bank `s` (on a frozen database: its segment
  /// count, as it always was).
  std::size_t shard_segments(std::size_t s) const {
    check_shard(s);
    return db_->banks[s]->loaded_segments();
  }

  /// Width of the global id space (on a frozen database: the loaded
  /// segment count).
  std::size_t loaded_segments() const { return db_ ? db_->id_space : 0; }
  std::size_t live_segment_count() const {
    return db_ ? db_->live_count : 0;
  }
  /// Cold capacity (the live-count ceiling; the hot bank is staging, not
  /// extra durable capacity — everything staged must fold into this).
  std::size_t capacity_segments() const {
    return shard_count_ * config_.capacity_segments();
  }
  /// Cumulative reference-write cost of the current epoch's banks: banks
  /// write in parallel, so energy sums and latency is the max over banks.
  /// (A fold re-writes moved rows in their destination bank, so this is
  /// the cost of materialising the CURRENT layout, not a lifetime odometer.)
  double load_energy_joules() const;
  double load_latency_seconds() const;

  /// Aggregate ledger of the merged per-read results (the per-bank
  /// ledgers stay untouched: the router never calls bank search paths).
  const ExecutionTotals& totals() const { return controller_.totals(); }
  void reset_totals() { controller_.reset_totals(); }
  const Controller& controller() const { return controller_; }
  const AsmcapConfig& config() const { return config_; }

  /// The router's session-owned worker pool (see SessionPool; shared
  /// with ReadMapper's host verification and SearchService tickets).
  /// While service tickets are in flight they pin the handle, so a
  /// request that would grow the pool is clamped to the live one instead
  /// of replacing it under their running tasks (safe: every parallel map
  /// here is worker-count invariant, docs/determinism.md).
  ThreadPool& worker_pool(std::size_t workers = 0) {
    return pool_.get(workers);
  }

 private:
  // The streaming service layer is the router's async execution engine:
  // it captures db_ at launch, forks per-read streams from
  // rng_/batch_epoch_, and flushes ledger totals through controller_.
  friend class SearchService;
  friend class SearchTicket;

  void check_loaded() const;
  void check_shard(std::size_t s) const;
  /// A fresh (empty) bank sharing the router's silicon seed, profile, and
  /// backend. `cold` picks the full config_ geometry vs the hot staging
  /// geometry from config_.live; `seed_salt` decorrelates bank-internal
  /// streams (the router never uses them, but keeps them distinct).
  std::shared_ptr<AsmcapAccelerator> make_bank(bool cold,
                                               std::size_t seed_salt) const;
  /// Copy-on-write: clones next.banks[i] on first touch within one epoch
  /// build (owned[i] tracks which banks this build already owns).
  AsmcapAccelerator& touch(DbEpoch& next, std::vector<bool>& owned,
                           std::size_t i) const;
  /// Folds the hot bank (next.banks.back()) into the cold banks' free
  /// rows (creating cold banks up to shard_count_ on demand) and drops it
  /// from the epoch. Caller guarantees hot-live <= cold free capacity
  /// (the append/delete capacity invariant).
  void fold_hot(DbEpoch& next, std::vector<bool>& owned) const;
  /// Shards of `db` to dispatch for `plan`, ascending. All banks when
  /// pruning is disabled or cannot be sound (pruning_window_count == 0);
  /// otherwise the banks whose sketches report may_match.
  std::vector<std::uint32_t> probe_shards(const DbEpoch& db,
                                          const ExecutionPlan& plan) const;
  /// Merges the partial results of the dispatched shards (partials[j] is
  /// shard shard_ids[j]'s slot-indexed result) into one global result:
  /// decisions scatter through each bank's LiveDirectory, latency = max,
  /// energy = sum in ascending shard order. `partials` must be non-empty.
  QueryResult merge_subset(const DbEpoch& db,
                           const std::vector<QueryResult>& partials,
                           const std::vector<std::uint32_t>& shard_ids) const;
  /// The merged result of a read every bank pruned: all-false decisions,
  /// zero energy, and the same analytic pass latency any bank would
  /// report for this plan (latency is plan-determined, not data-determined).
  QueryResult empty_result(const DbEpoch& db, const ExecutionPlan& plan) const;

  AsmcapConfig config_;
  std::size_t shard_count_;
  ErrorRates rates_;
  BackendKind backend_kind_ = BackendKind::Circuit;
  /// The published snapshot. Written only by control-plane mutations;
  /// searches and tickets copy the pointer at launch.
  std::shared_ptr<const DbEpoch> db_;
  std::uint64_t next_global_id_;  ///< Monotonic; ids are never reused.
  TimingModel timing_;  ///< Plan-pure pass latency (empty_result's source).
  Controller controller_;
  std::uint64_t batch_epoch_ = 0;
  Rng rng_;  ///< Router master stream; advances exactly like a bank's.
  SessionPool pool_;  ///< Pinned by in-flight SearchService tickets.
};

}  // namespace asmcap
