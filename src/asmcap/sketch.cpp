#include "asmcap/sketch.h"

#include <cmath>
#include <stdexcept>

#include "asmcap/backend.h"

namespace asmcap {

BankSketch::BankSketch(const std::vector<Sequence>& segments,
                       std::size_t cols)
    : rows_(segments.size()),
      cols_(cols),
      words_((segments.size() + 63) / 64),
      occ_(cols * 4 * words_, 0) {
  if (cols_ == 0) throw std::invalid_argument("BankSketch: zero columns");
  for (std::size_t r = 0; r < rows_; ++r) {
    const Sequence& row = segments[r];
    if (row.size() != cols_)
      throw std::invalid_argument("BankSketch: segment width mismatch");
    for (std::size_t i = 0; i < cols_; ++i) {
      std::uint64_t* bits =
          occ_.data() + (i * 4 + code_of(row[i])) * words_;
      bits[r >> 6] |= std::uint64_t{1} << (r & 63);
    }
  }
}

BankSketch::BankSketch(std::size_t cols) : cols_(cols) {
  if (cols_ == 0) throw std::invalid_argument("BankSketch: zero columns");
}

void BankSketch::ensure_rows(std::size_t rows) {
  const std::size_t need = (rows + 63) / 64;
  if (need > words_) {
    // Re-stride: each (column, base) bitset keeps its words, padded with
    // zeros for the new rows.
    std::vector<std::uint64_t> grown(cols_ * 4 * need, 0);
    for (std::size_t set = 0; set < cols_ * 4; ++set)
      for (std::size_t w = 0; w < words_; ++w)
        grown[set * need + w] = occ_[set * words_ + w];
    occ_ = std::move(grown);
    words_ = need;
  }
  if (rows > rows_) rows_ = rows;
}

void BankSketch::set_row(std::size_t r, const Sequence& row) {
  if (row.size() != cols_)
    throw std::invalid_argument("BankSketch: segment width mismatch");
  ensure_rows(r + 1);
  const std::uint64_t bit = std::uint64_t{1} << (r & 63);
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::uint8_t code = 0; code < 4; ++code)
      occ_[(i * 4 + code) * words_ + (r >> 6)] &= ~bit;
    occ_[(i * 4 + code_of(row[i])) * words_ + (r >> 6)] |= bit;
  }
}

void BankSketch::clear_row(std::size_t r) {
  if (r >= rows_) return;
  const std::uint64_t bit = std::uint64_t{1} << (r & 63);
  for (std::size_t set = 0; set < cols_ * 4; ++set)
    occ_[set * words_ + (r >> 6)] &= ~bit;
}

bool BankSketch::window_alive(const Sequence& read, std::size_t lo,
                              std::size_t hi,
                              std::vector<std::uint64_t>& alive) const {
  // Start with every stored row alive (tail bits beyond rows_ cleared so
  // phantom rows can never keep a window alive).
  alive.assign(words_, ~std::uint64_t{0});
  if (rows_ % 64 != 0)
    alive.back() = (std::uint64_t{1} << (rows_ % 64)) - 1;
  std::uint64_t any = 0;
  for (const std::uint64_t word : alive) any |= word;
  for (std::size_t i = lo; i < hi && any != 0; ++i) {
    // Cell i matches row r iff the row stores one of the read bases the
    // cell sees (Fig. 4c): R[i-1], R[i], R[i+1] — boundary cells see only
    // the neighbours that exist.
    const std::uint8_t centre = code_of(read[i]);
    const std::uint8_t left = i > 0 ? code_of(read[i - 1]) : centre;
    const std::uint8_t right = i + 1 < cols_ ? code_of(read[i + 1]) : centre;
    const std::uint64_t* c = occ(i, centre);
    const std::uint64_t* l = occ(i, left);
    const std::uint64_t* r = occ(i, right);
    any = 0;
    for (std::size_t w = 0; w < words_; ++w) {
      alive[w] &= c[w] | l[w] | r[w];
      any |= alive[w];
    }
  }
  return any != 0;
}

bool BankSketch::may_match(const ExecutionPlan& plan,
                           std::size_t windows) const {
  if (windows == 0 || rows_ == 0) return windows == 0;
  const std::size_t width = cols_ / windows;
  if (width == 0) return true;  // cannot form disjoint windows: no prune
  std::vector<std::uint64_t> alive(words_);
  // A bank must be searched if ANY pass (the original read, or any TASR
  // rotation) has ANY window in which some row accumulates zero ED*
  // mismatches. The HD pass probes the same read as ED* pass 0 and its
  // mismatch count dominates the ED* count, so it needs no extra windows.
  for (const Sequence& pass : plan.ed_star_passes) {
    if (pass.size() != cols_) return true;  // conservative: never prune
    for (std::size_t t = 0; t < windows; ++t)
      if (window_alive(pass, t * width, t * width + width, alive))
        return true;
  }
  return false;
}

std::size_t pruning_window_count(const AsmcapConfig& config,
                                 BackendKind backend,
                                 std::size_t threshold) {
  const std::size_t m = config.array_cols;
  std::size_t windows = threshold + 1;  // ideal decision: count <= T
  if (backend == BackendKind::Circuit && !config.ideal_sensing) {
    // Noisy sensing can flip a count slightly above T back to 'match':
    // the SA decides (V_ML + offset + noise) <= V_ref with
    // V_ref = (T + 0.5)/m * VDD. Every noise source is hard-bounded:
    //  * Rng::normal() is Box-Muller over uniforms >= 2^-53, so a deviate
    //    never exceeds D = sqrt(-2 ln 2^-53) ~ 8.57 sigma;
    //  * manufactured capacitors are clamped at +/-4 sigma, so a row with
    //    c mismatches settles V_ML >= (c/m) * VDD * rho with
    //    rho = (1 - 4*sigma_rel) / (1 + 4*sigma_rel).
    // A count c is therefore GUARANTEED to decide 'no match' whenever
    //   (c/m)*VDD*rho - D*(sigma_off + sigma_noise) > (T + 0.5)/m * VDD,
    // i.e. c > [(T + 0.5) + D*(sigma_off + sigma_noise)*m/VDD] / rho.
    // K = the smallest such integer; rows below K stay prunable by the
    // K-window pigeonhole, rows at or above K can never flip.
    const ChargeDomainParams& charge = config.process.charge;
    const double rho = (1.0 - 4.0 * charge.cap_sigma_rel) /
                       (1.0 + 4.0 * charge.cap_sigma_rel);
    if (rho <= 0.0 || charge.vdd <= 0.0) return 0;
    const double deviate_bound = std::sqrt(-2.0 * std::log(0x1.0p-53));
    const double margin_counts =
        deviate_bound * (charge.sa_offset_sigma + charge.sa_noise_sigma) *
        static_cast<double>(m) / charge.vdd;
    const double guaranteed_miss =
        (static_cast<double>(threshold) + 0.5 + margin_counts) / rho;
    const double k = std::floor(guaranteed_miss) + 1.0;
    if (!(k > 0.0) || k > static_cast<double>(m)) return 0;
    windows = std::max(windows, static_cast<std::size_t>(k));
  }
  if (m / windows == 0) return 0;  // window width would be zero
  return windows;
}

}  // namespace asmcap
