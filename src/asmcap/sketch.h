#pragma once
// Bank sketch for shard pruning: a positional base-occurrence index that
// lets the sharded router prove, before spawning any work, that a bank
// cannot contain a match for a query — so the (read x shard) task is never
// dispatched, no SL-driver energy is charged, and (because every
// per-decision RNG stream is keyed by global segment id) the remaining
// banks' decisions are bit-identical to full fan-out.
//
// Why not a k-mer/Bloom sketch (the classic edit-distance seed filter):
// ED* is not edit distance. Cell i of a stored row Q matches when
// Q[i] ∈ {R[i-1], R[i], R[i+1]} — each cell independently picks its
// neighbour — so a row can have ED* = 0 while sharing NO contiguous k-mer
// with the read (e.g. Q = the read with every adjacent pair swapped).
// A shared-k-mer filter would therefore have false negatives and break the
// bit-identity contract. What ED* does preserve is positional alignment:
// rows are fixed-width and never slide, so cell i of every row in every
// bank sees exactly the read bases {R[i-1], R[i], R[i+1]}.
//
// The sketch exploits that: for each column i and base x it stores a
// bitset over the bank's rows with bit r set iff row r holds x at column
// i. "Row r is alive in window [lo, hi)" — the AND over the window's
// columns of the OR of the ≤ 3 neighbour-base bitsets — is then EXACTLY
// "ED* restricted to [lo, hi) is zero". By pigeonhole, a row with total
// mismatch count < K has a zero-mismatch window among any K disjoint
// windows, so a bank whose windows are all dead (for every ED* pass of
// the plan, rotations included) provably contains no row that can decide
// 'match':
//  * ideal decision paths (FunctionalBackend, or CircuitBackend under
//    ideal_sensing) decide count <= T, so K = T + 1 windows suffice;
//  * the noisy circuit path can flip counts slightly above T back to
//    'match', but the noise is hard-bounded (Box-Muller deviates from
//    Rng::normal() never exceed sqrt(-2 ln 2^-53) sigma; manufactured
//    capacitors are clamped at ±4 sigma), so pruning_window_count()
//    derives a K(T) above which a row is GUARANTEED to decide 'no match'
//    for every possible draw — see the .cpp for the bound.
// The Hamming (HDAC) pass is covered a fortiori: a cell that matches
// under Hamming also matches under ED*, so the Hamming mismatch count is
// >= the ED* count at the same threshold.
//
// Memory: 4 bitsets per column over the bank's rows — about 2x the packed
// reference content. Probe cost: <= K windows x window width word-ANDs
// with early exit, orders of magnitude below one backend pass.
//
// Thread-safety: may_match is const, touches no shared mutable state, and
// is safe to call concurrently from router control threads and service
// workers. The live-database mutators (set_row / clear_row) are
// control-plane only and never run against a sketch with probes in
// flight: the sharded router mutates bank CLONES and publishes them as a
// new epoch, so in-flight tickets probe immutable snapshots.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "asmcap/config.h"
#include "asmcap/planner.h"
#include "genome/sequence.h"

namespace asmcap {

enum class BackendKind : std::uint8_t;  // asmcap/backend.h

class BankSketch {
 public:
  /// Builds the sketch over a bank's stored segments (each must be
  /// exactly `cols` wide — the fixed array width).
  BankSketch(const std::vector<Sequence>& segments, std::size_t cols);

  /// Empty sketch of a live bank: rows are added by set_row as segments
  /// are appended.
  explicit BankSketch(std::size_t cols);

  /// (Re)writes row r's occurrence bits (live-database append / slot
  /// reuse), growing the bitsets as needed. Any stale bits of a previous
  /// occupant are cleared first.
  void set_row(std::size_t r, const Sequence& row);

  /// Clears row r in every column (tombstone delete): the row is dead in
  /// every window, so it can never keep a bank alive — the sketch stays
  /// sound and exactly consistent with the masked decision paths.
  void clear_row(std::size_t r);

  /// True unless the bank provably contains no row that can decide
  /// 'match' for any pass of `plan` under `windows` disjoint pigeonhole
  /// windows (from pruning_window_count). windows == 0 — "cannot prune" —
  /// conservatively returns true.
  bool may_match(const ExecutionPlan& plan, std::size_t windows) const;

  std::size_t rows() const { return rows_; }
  std::size_t columns() const { return cols_; }
  /// Resident size of the occurrence bitsets (capacity planning).
  std::size_t memory_bytes() const {
    return occ_.size() * sizeof(std::uint64_t);
  }

 private:
  void ensure_rows(std::size_t rows);
  bool window_alive(const Sequence& read, std::size_t lo, std::size_t hi,
                    std::vector<std::uint64_t>& alive) const;
  const std::uint64_t* occ(std::size_t col, std::uint8_t code) const {
    return occ_.data() + (col * 4 + code) * words_;
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t words_ = 0;  ///< ceil(rows / 64) words per bitset.
  /// Bitsets indexed [col * 4 + base code]: bit r set iff row r stores
  /// that base at that column.
  std::vector<std::uint64_t> occ_;
};

/// Number of disjoint pigeonhole windows a sound prune needs for one
/// query: T + 1 on noise-free decision paths; on the noisy circuit path,
/// the smallest K for which a mismatch count >= K is guaranteed to decide
/// 'no match' under the worst bounded noise draw. Returns 0 when pruning
/// cannot be sound for this configuration (window width would be zero, or
/// the capacitor-mismatch bound swallows the whole margin) — callers must
/// then fan out to every bank.
std::size_t pruning_window_count(const AsmcapConfig& config,
                                 BackendKind backend, std::size_t threshold);

}  // namespace asmcap
