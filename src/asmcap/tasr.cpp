#include "asmcap/tasr.h"

namespace asmcap {

std::size_t Tasr::schedule_length() const {
  const std::size_t per_direction = params_.rotations;
  const std::size_t directions =
      params_.direction == RotateDir::Both ? 2u : 1u;
  return 1 + per_direction * directions;
}

}  // namespace asmcap
