#pragma once
// Threshold-Aware Sequence Rotation (paper §IV-B, Algorithm 2).
//
// Consecutive indels shift the whole tail of the read, blowing ED* far
// above the true ED (false negatives). Rotating the read base-by-base and
// re-searching recovers those rows — but unconditional rotation (EDAM's SR)
// introduces false positives at small thresholds, because some rotations
// produce ED* below the true ED. TASR therefore triggers rotation only when
// T >= T_l = ceil(gamma / e_id * m).

#include <cstddef>
#include <vector>

#include "asmcap/config.h"
#include "genome/edits.h"
#include "genome/sequence.h"

namespace asmcap {

class Tasr {
 public:
  explicit Tasr(TasrParams params) : params_(params) {}

  /// The trigger lower bound T_l for a workload.
  std::size_t lower_bound(const ErrorRates& rates,
                          std::size_t read_length) const {
    return tasr_lower_bound(params_, rates, read_length);
  }

  /// Algorithm 2 guard: rotations run only when T >= T_l.
  bool should_rotate(std::size_t threshold, const ErrorRates& rates,
                     std::size_t read_length) const {
    return threshold >= lower_bound(rates, read_length);
  }

  /// The reads searched when rotation triggers: the original first, then
  /// each rotation the shift registers generate (N_R per direction).
  std::vector<Sequence> schedule(const Sequence& read) const {
    return rotation_schedule(read, params_.rotations, params_.direction);
  }

  /// Number of search operations the schedule costs.
  std::size_t schedule_length() const;

  const TasrParams& params() const { return params_; }

 private:
  TasrParams params_;
};

}  // namespace asmcap
