#include "baseline/cmcpu.h"

#include "align/edit_distance.h"
#include "align/myers.h"
#include "util/thread_pool.h"

namespace asmcap {

std::vector<bool> CmCpuBaseline::decide_rows(const Sequence& read,
                                             const std::vector<Sequence>& rows,
                                             std::size_t threshold) const {
  std::vector<bool> decisions;
  decisions.reserve(rows.size());
  switch (config_.kernel) {
    case CmKernel::FullDp:
      for (const Sequence& row : rows)
        decisions.push_back(edit_distance(row, read) <= threshold);
      break;
    case CmKernel::BandedDp:
      for (const Sequence& row : rows)
        decisions.push_back(
            banded_edit_distance(row, read, threshold).within_band);
      break;
    case CmKernel::MyersBitParallel: {
      const MyersPattern pattern(read);
      for (const Sequence& row : rows)
        decisions.push_back(pattern.within(row, threshold));
      break;
    }
  }
  return decisions;
}

std::vector<std::vector<bool>> CmCpuBaseline::decide_batch(
    const std::vector<Sequence>& reads, const std::vector<Sequence>& rows,
    std::size_t threshold, std::size_t workers) const {
  std::vector<std::vector<bool>> decisions(reads.size());
  ThreadPool pool(workers);
  pool.parallel_for(reads.size(), [&](std::size_t i) {
    decisions[i] = decide_rows(reads[i], rows, threshold);
  });
  return decisions;
}

double CmCpuBaseline::kernel_ops(std::size_t read_length, std::size_t rows,
                                 std::size_t threshold) const {
  const double m = static_cast<double>(read_length);
  const double r = static_cast<double>(rows);
  switch (config_.kernel) {
    case CmKernel::FullDp:
      return r * m * m;  // DP cells
    case CmKernel::BandedDp:
      return r * m * (2.0 * static_cast<double>(threshold) + 1.0);
    case CmKernel::MyersBitParallel:
      return r * m * ((m + 63.0) / 64.0);  // column word-ops
  }
  return 0.0;
}

double CmCpuBaseline::seconds_per_read(std::size_t read_length,
                                       std::size_t rows,
                                       std::size_t threshold) const {
  const double ops =
      kernel_ops(read_length, rows, threshold) * config_.candidate_fraction;
  const double rate = config_.kernel == CmKernel::MyersBitParallel
                          ? config_.word_ops_per_second
                          : config_.cells_per_second;
  return ops / (rate * static_cast<double>(config_.threads));
}

double CmCpuBaseline::joules_per_read(std::size_t read_length,
                                      std::size_t rows,
                                      std::size_t threshold) const {
  return seconds_per_read(read_length, rows, threshold) *
         config_.cpu_power_watts;
}

}  // namespace asmcap
