#pragma once
// CM-CPU baseline (paper §V-A): exact comparison-matrix ASM on a host CPU
// (the paper used an i9-10980XE). Functionally exact — the gold standard —
// with three kernels of increasing sophistication. The performance model is
// calibrated from the measured kernel throughput (see bench_micro) and the
// CPU's power envelope.

#include <cstddef>
#include <vector>

#include "genome/sequence.h"

namespace asmcap {

enum class CmKernel {
  FullDp,          ///< naive O(nm) comparison matrix
  BandedDp,        ///< Ukkonen band with threshold cut-off
  MyersBitParallel ///< bit-parallel (the strongest practical CPU baseline)
};

struct CmCpuConfig {
  CmKernel kernel = CmKernel::MyersBitParallel;
  /// Measured kernel throughput in DP cells per second (full/banded) or
  /// word-ops per second (Myers). Defaults are typical single-core numbers
  /// for a modern x86 core; bench_micro measures the real ones.
  double cells_per_second = 1.5e9;
  double word_ops_per_second = 1.0e9;
  std::size_t threads = 18;  ///< i9-10980XE core count.
  double cpu_power_watts = 165.0;  ///< socket TDP under full load.
  /// Fraction of the stored rows the CPU actually verifies per read — a
  /// calibrated modelling knob, NOT a mechanism this baseline implements
  /// (decide_rows verifies every row; only the cost model applies the
  /// fraction). The default 1 % is what makes the modelled throughput
  /// consistent with the paper's i9 numbers: a full 64 Mb scan would be
  /// ~100x slower than the implied per-read latency, so the reference CM
  /// pipeline evidently prefilters candidates somehow (seeding, binning,
  /// an index — the paper does not say). Set to 1.0 to model a
  /// brute-force full scan.
  double candidate_fraction = 0.01;
};

class CmCpuBaseline {
 public:
  explicit CmCpuBaseline(CmCpuConfig config = {}) : config_(config) {}

  /// Exact per-row decisions: ED(row, read) <= threshold.
  std::vector<bool> decide_rows(const Sequence& read,
                                const std::vector<Sequence>& rows,
                                std::size_t threshold) const;

  /// Batched decide_rows across `workers` threads (the simulated CPU host
  /// is itself multi-core; this makes the gold-standard labelling of large
  /// batches usably fast). Worker-count independent.
  std::vector<std::vector<bool>> decide_batch(
      const std::vector<Sequence>& reads, const std::vector<Sequence>& rows,
      std::size_t threshold, std::size_t workers = 1) const;

  /// Modelled time to process one read against `rows` stored segments.
  double seconds_per_read(std::size_t read_length, std::size_t rows,
                          std::size_t threshold) const;

  /// Modelled energy for the same work.
  double joules_per_read(std::size_t read_length, std::size_t rows,
                         std::size_t threshold) const;

  const CmCpuConfig& config() const { return config_; }

 private:
  double kernel_ops(std::size_t read_length, std::size_t rows,
                    std::size_t threshold) const;

  CmCpuConfig config_;
};

}  // namespace asmcap
