#include "baseline/kraken_like.h"

#include <stdexcept>

#include "util/thread_pool.h"

namespace asmcap {

Kmer KrakenLikeClassifier::canon(Kmer kmer) const {
  return config_.canonical ? canonical_kmer(kmer, config_.k) : kmer;
}

void KrakenLikeClassifier::index_rows(const std::vector<Sequence>& rows) {
  index_ = KmerIndex(config_.k);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() < config_.k) continue;
    // Index canonical k-mers tagged with the row id; each canonical k-mer
    // is inserted as a length-k sequence (one index entry per position).
    for (Kmer kmer : extract_kmers(rows[r], config_.k)) {
      index_.add_sequence(unpack_kmer(canon(kmer), config_.k),
                          static_cast<std::uint32_t>(r));
    }
  }
  rows_ = rows.size();
}

std::vector<double> KrakenLikeClassifier::hit_fractions(
    const Sequence& read) const {
  std::vector<double> fractions(rows_, 0.0);
  if (read.size() < config_.k || rows_ == 0) return fractions;
  const auto kmers = extract_kmers(read, config_.k);
  std::vector<std::size_t> hits(rows_, 0);
  for (Kmer kmer : kmers) {
    // A k-mer may occur in several rows; each occurrence row gets one hit
    // (deduplicated per k-mer).
    std::vector<bool> seen(rows_, false);
    for (const KmerIndex::Hit& hit : index_.lookup(canon(kmer))) {
      if (!seen[hit.sequence_id]) {
        seen[hit.sequence_id] = true;
        ++hits[hit.sequence_id];
      }
    }
  }
  for (std::size_t r = 0; r < rows_; ++r)
    fractions[r] =
        static_cast<double>(hits[r]) / static_cast<double>(kmers.size());
  return fractions;
}

std::vector<bool> KrakenLikeClassifier::decide_rows(
    const Sequence& read) const {
  const auto fractions = hit_fractions(read);
  std::vector<bool> decisions(fractions.size(), false);
  for (std::size_t r = 0; r < fractions.size(); ++r)
    decisions[r] = fractions[r] >= config_.confidence;
  return decisions;
}

std::vector<std::vector<bool>> KrakenLikeClassifier::decide_batch(
    const std::vector<Sequence>& reads, std::size_t workers) const {
  std::vector<std::vector<bool>> decisions(reads.size());
  ThreadPool pool(workers);
  pool.parallel_for(reads.size(), [&](std::size_t i) {
    decisions[i] = decide_rows(reads[i]);
  });
  return decisions;
}

}  // namespace asmcap
