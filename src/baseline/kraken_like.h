#pragma once
// Kraken2-like exact-matching classifier (Wood et al., Genome Biol. 2019),
// the accuracy-normalisation baseline of the paper's Fig. 7: the normalised
// F1 panels divide every accelerator's F1 by F1(Kraken2). Kraken2 assigns
// reads by *exact* k-mer matches against the database, so it degrades
// quickly once edits are injected — which is precisely the paper's point.

#include <cstddef>
#include <vector>

#include "genome/kmer.h"
#include "genome/sequence.h"

namespace asmcap {

struct KrakenLikeConfig {
  /// K-mer length (Kraken2's default k = 31). This classifier indexes
  /// EVERY k-mer of every row — it does not subsample with minimizers the
  /// way real Kraken2 does (that is a memory optimisation, not an
  /// accuracy mechanism, so the comparison is unaffected).
  std::size_t k = 31;
  /// Fraction of the read's k-mers that must hit a row for a match call
  /// (Kraken2's confidence-score analogue). Exact matching needs a healthy
  /// share of intact k-mers, which injected edits destroy quickly — the
  /// degradation the paper's normalised panels quantify.
  double confidence = 0.30;
  /// Use canonical k-mers (strand-insensitive), as Kraken2 does.
  bool canonical = true;
};

class KrakenLikeClassifier {
 public:
  explicit KrakenLikeClassifier(KrakenLikeConfig config = {})
      : config_(config) {}

  void index_rows(const std::vector<Sequence>& rows);

  /// Per-row decisions: the fraction of the read's k-mers found in row r
  /// reaches the confidence threshold.
  std::vector<bool> decide_rows(const Sequence& read) const;

  /// Batched decide_rows across `workers` threads. decide_rows is pure, so
  /// the result is worker-count independent.
  std::vector<std::vector<bool>> decide_batch(
      const std::vector<Sequence>& reads, std::size_t workers = 1) const;

  /// Per-row hit fractions (diagnostics / threshold studies).
  std::vector<double> hit_fractions(const Sequence& read) const;

  const KrakenLikeConfig& config() const { return config_; }
  std::size_t indexed_rows() const { return rows_; }

 private:
  Kmer canon(Kmer kmer) const;

  KrakenLikeConfig config_;
  KmerIndex index_{22};
  std::size_t rows_ = 0;
};

}  // namespace asmcap
