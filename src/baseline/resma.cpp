#include "baseline/resma.h"

#include <cmath>
#include <unordered_set>

#include "align/edit_distance.h"
#include "genome/kmer.h"

namespace asmcap {

bool ResmaBaseline::passes_filter(const Sequence& read,
                                  const Sequence& row) const {
  if (read.size() < config_.filter_k || row.size() < config_.filter_k)
    return true;  // degenerate: filter cannot operate, pass everything
  std::unordered_set<Kmer> read_kmers;
  for (Kmer kmer : extract_kmers(read, config_.filter_k))
    read_kmers.insert(kmer);
  std::size_t shared = 0;
  for (Kmer kmer : extract_kmers(row, config_.filter_k)) {
    if (read_kmers.count(kmer) != 0 && ++shared >= config_.filter_min_kmers)
      return true;
  }
  return false;
}

std::vector<bool> ResmaBaseline::decide_rows(const Sequence& read,
                                             const std::vector<Sequence>& rows,
                                             std::size_t threshold,
                                             std::size_t* filtered_out) const {
  std::vector<bool> decisions(rows.size(), false);
  std::size_t pruned = 0;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (!passes_filter(read, rows[r])) {
      ++pruned;
      continue;
    }
    decisions[r] = banded_edit_distance(rows[r], read, threshold).within_band;
  }
  if (filtered_out != nullptr) *filtered_out = pruned;
  return decisions;
}

std::size_t ResmaBaseline::count_candidates(
    const Sequence& read, const std::vector<Sequence>& rows) const {
  std::size_t candidates = 0;
  for (const Sequence& row : rows)
    candidates += passes_filter(read, row) ? 1u : 0u;
  return candidates;
}

double ResmaBaseline::seconds_per_read(std::size_t read_length,
                                       std::size_t candidates) const {
  const double steps = 2.0 * static_cast<double>(read_length) - 1.0;
  const double slots = std::ceil(static_cast<double>(candidates) /
                                 static_cast<double>(config_.parallel_lanes));
  return config_.filter_latency + slots * steps * config_.step_latency;
}

double ResmaBaseline::joules_per_read(std::size_t read_length,
                                      std::size_t candidates) const {
  const double steps = 2.0 * static_cast<double>(read_length) - 1.0;
  // Each anti-diagonal step rewrites one column of DP cells per candidate.
  const double writes = static_cast<double>(candidates) * steps *
                        static_cast<double>(read_length);
  return config_.filter_energy + writes * config_.write_energy_per_cell;
}

}  // namespace asmcap
