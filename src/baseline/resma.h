#pragma once
// ReSMA model (Li et al., DAC 2022): RRAM-based PIM accelerator that
// computes the exact comparison matrix with anti-diagonal parallelism on
// crossbars, preceded by an RRAM-CAM filtering stage that prunes rows that
// cannot match. Functionally exact on the rows that survive the filter;
// performance/energy follow the operation counts the ReSMA paper describes
// (one crossbar step per anti-diagonal, frequent crossbar writes for the
// intermediate DP data — the cost the ASMCap paper calls out).

#include <cstddef>
#include <vector>

#include "genome/sequence.h"

namespace asmcap {

struct ResmaConfig {
  /// Filtering stage: rows sharing at least `filter_min_kmers` exact
  /// k-mers of length `filter_k` with the read pass to the CM stage.
  std::size_t filter_k = 12;
  std::size_t filter_min_kmers = 1;
  /// CAM filter latency per read (all rows matched in parallel).
  double filter_latency = 60e-9;
  double filter_energy = 40e-9;  ///< [J] per read (CAM search over all rows).
  /// Crossbar CM stage.
  /// Effective anti-diagonal step latency [s]. The crossbar pipeline
  /// overlaps read-compute-write across stages, so the per-step issue rate
  /// is well below a raw RRAM access; 0.5 ns/step reproduces the
  /// ASMCap-paper's relative ReSMA throughput (~350x behind ASMCap w/o
  /// strategies).
  double step_latency = 0.5e-9;
  /// RRAM write energy per DP-cell update. Each cell holds a multi-bit DP
  /// value (~8 bits at ~12 pJ/bit write): the frequent crossbar updates the
  /// ASMCap paper calls out as ReSMA's energy bottleneck.
  double write_energy_per_cell = 100e-12;
  std::size_t parallel_lanes = 64;  ///< crossbars processing pairs concurrently.
};

class ResmaBaseline {
 public:
  explicit ResmaBaseline(ResmaConfig config = {}) : config_(config) {}

  /// Functional decisions: filter, then exact ED on survivors.
  /// `filtered_out` (optional) reports how many rows the filter pruned.
  std::vector<bool> decide_rows(const Sequence& read,
                                const std::vector<Sequence>& rows,
                                std::size_t threshold,
                                std::size_t* filtered_out = nullptr) const;

  /// Expected candidates surviving the filter for workload modelling.
  std::size_t count_candidates(const Sequence& read,
                               const std::vector<Sequence>& rows) const;

  /// Modelled per-read latency: filter + ceil(candidates/lanes) pair slots,
  /// each costing (2m-1) anti-diagonal steps.
  double seconds_per_read(std::size_t read_length,
                          std::size_t candidates) const;

  /// Modelled per-read energy: filter + per-candidate DP writes (every
  /// anti-diagonal rewrites one column of `read_length` cells).
  double joules_per_read(std::size_t read_length, std::size_t candidates) const;

  const ResmaConfig& config() const { return config_; }

 private:
  bool passes_filter(const Sequence& read, const Sequence& row) const;

  ResmaConfig config_;
};

}  // namespace asmcap
