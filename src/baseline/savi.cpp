#include "baseline/savi.h"

#include <cmath>
#include <unordered_map>

namespace asmcap {

void SaviBaseline::index_rows(const std::vector<Sequence>& rows) {
  index_ = KmerIndex(config_.k);
  for (std::size_t r = 0; r < rows.size(); ++r)
    index_.add_sequence(rows[r], static_cast<std::uint32_t>(r));
  rows_ = rows.size();
}

std::vector<bool> SaviBaseline::decide_rows(const Sequence& read) const {
  std::vector<bool> decisions(rows_, false);
  if (read.size() < config_.k) return decisions;

  // votes[row][bucketed diagonal] -> count. Diagonal = row_pos - read_pos;
  // k-mers from the same alignment share it up to indel shifts, which the
  // bucket slack absorbs.
  std::vector<std::unordered_map<long, std::size_t>> votes(rows_);
  last_hits_ = 0;
  const auto kmers = extract_kmers(read, config_.k);
  const long bucket =
      static_cast<long>(config_.diagonal_slack == 0 ? 1 : config_.diagonal_slack);
  for (std::size_t pos = 0; pos < kmers.size(); ++pos) {
    for (const KmerIndex::Hit& hit : index_.lookup(kmers[pos])) {
      ++last_hits_;
      const long diagonal =
          static_cast<long>(hit.position) - static_cast<long>(pos);
      // Round towards the nearest bucket centre so diagonals within the
      // slack fall together.
      const long key = static_cast<long>(
          std::floor(static_cast<double>(diagonal) / static_cast<double>(bucket) +
                     0.5));
      auto& row_votes = votes[hit.sequence_id];
      if (++row_votes[key] >= config_.vote_threshold)
        decisions[hit.sequence_id] = true;
    }
  }
  return decisions;
}

double SaviBaseline::seconds_per_read(std::size_t read_length) const {
  if (read_length < config_.k) return config_.tcam_cycle;
  const double probes =
      static_cast<double>(read_length - config_.k + 1);
  return probes / static_cast<double>(config_.banks) * config_.tcam_cycle;
}

double SaviBaseline::joules_per_read(std::size_t read_length) const {
  if (read_length < config_.k) return 0.0;
  // Each probe searches the full TCAM database; banks overlap probes in
  // time but do not reduce the switched bits.
  const double probes = static_cast<double>(read_length - config_.k + 1);
  const double search =
      probes * config_.search_energy_per_bit * config_.database_bits;
  const double vote = probes * config_.vote_energy;
  return search + vote;
}

}  // namespace asmcap
