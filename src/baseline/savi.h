#pragma once
// SaVI model (Laguna et al., ICCAD 2020): seed-and-vote DNA read mapping on
// TCAMs. The read is split into k-mers; each k-mer is searched exactly in a
// TCAM holding the reference k-mers; matching k-mers vote for the
// (row, diagonal) they imply, and a row wins when it collects enough
// consistent votes. Faster than seed-and-extend but loses accuracy (the
// ASMCap paper quotes ~93.8 % for the voting strategy).

#include <cstddef>
#include <vector>

#include "genome/kmer.h"
#include "genome/sequence.h"

namespace asmcap {

struct SaviConfig {
  std::size_t k = 15;
  /// Votes (k-mers agreeing on the same diagonal) required to call a match.
  std::size_t vote_threshold = 3;
  /// Diagonal slack: votes within +/- this offset are pooled (tolerates
  /// indels shifting downstream k-mers).
  std::size_t diagonal_slack = 4;
  /// TCAM performance: one k-mer search per cycle per bank.
  double tcam_cycle = 1e-9;
  std::size_t banks = 2;
  /// TCAM search energy per database bit per k-mer probe.
  double search_energy_per_bit = 0.5e-15;
  /// Database size in bits (2 bits/base over all stored rows); set from the
  /// workload by the system model.
  double database_bits = 64.0 * 1024 * 1024;
  /// Voting/aggregation overhead per k-mer hit.
  double vote_energy = 1e-12;
};

class SaviBaseline {
 public:
  explicit SaviBaseline(SaviConfig config = {}) : config_(config) {}

  /// Builds the TCAM contents from the stored rows.
  void index_rows(const std::vector<Sequence>& rows);

  /// Seed-and-vote decisions per row for one read. Note: threshold-free —
  /// the voting strategy has no exact ED notion; it calls a match when
  /// enough seeds agree, which is what costs it accuracy near tight
  /// thresholds.
  std::vector<bool> decide_rows(const Sequence& read) const;

  /// Total k-mer hits of the last decide_rows (perf model input).
  std::size_t last_hits() const { return last_hits_; }

  double seconds_per_read(std::size_t read_length) const;
  double joules_per_read(std::size_t read_length) const;

  const SaviConfig& config() const { return config_; }
  std::size_t indexed_rows() const { return rows_; }

 private:
  SaviConfig config_;
  KmerIndex index_{15};
  std::size_t rows_ = 0;
  mutable std::size_t last_hits_ = 0;
};

}  // namespace asmcap
