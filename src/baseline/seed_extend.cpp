#include "baseline/seed_extend.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "align/edit_distance.h"

namespace asmcap {

void SeedExtendBaseline::index_rows(const std::vector<Sequence>& rows) {
  index_ = KmerIndex(config_.k);
  rows_ = rows;
  for (std::size_t r = 0; r < rows.size(); ++r)
    index_.add_sequence(rows[r], static_cast<std::uint32_t>(r));
}

std::vector<bool> SeedExtendBaseline::decide_rows(const Sequence& read,
                                                  std::size_t threshold) const {
  std::vector<bool> decisions(rows_.size(), false);
  last_candidates_ = 0;
  if (read.size() < config_.k || rows_.empty()) return decisions;

  // Seeding: group hits by (row, bucketed diagonal).
  const long bucket = static_cast<long>(
      config_.diagonal_slack == 0 ? 1 : config_.diagonal_slack);
  std::map<std::pair<std::uint32_t, long>, std::size_t> seeds;
  const auto kmers = extract_kmers(read, config_.k);
  for (std::size_t pos = 0; pos < kmers.size(); ++pos) {
    for (const KmerIndex::Hit& hit : index_.lookup(kmers[pos])) {
      const long diagonal =
          static_cast<long>(hit.position) - static_cast<long>(pos);
      const long key = static_cast<long>(std::floor(
          static_cast<double>(diagonal) / static_cast<double>(bucket) + 0.5));
      ++seeds[{hit.sequence_id, key}];
    }
  }

  // Rank candidates by seed support, keep the strongest few.
  std::vector<std::pair<std::size_t, std::uint32_t>> ranked;  // (count, row)
  for (const auto& [key, count] : seeds) ranked.push_back({count, key.first});
  std::sort(ranked.rbegin(), ranked.rend());
  std::vector<bool> seen(rows_.size(), false);

  // Extension: verify each distinct candidate row with banded DP.
  for (const auto& [count, row] : ranked) {
    if (seen[row]) continue;
    seen[row] = true;
    if (++last_candidates_ > config_.max_candidates) break;
    decisions[row] =
        banded_edit_distance(rows_[row], read, threshold).within_band;
  }
  return decisions;
}

double SeedExtendBaseline::seconds_per_read(std::size_t read_length,
                                            std::size_t candidates) const {
  const double lookups =
      read_length >= config_.k
          ? static_cast<double>(read_length - config_.k + 1)
          : 0.0;
  const double dp_cells = static_cast<double>(candidates) *
                          static_cast<double>(read_length) *
                          static_cast<double>(read_length);
  return lookups * config_.seed_lookup_time +
         dp_cells / config_.dp_cells_per_second;
}

double SeedExtendBaseline::joules_per_read(std::size_t read_length,
                                           std::size_t candidates) const {
  const double lookups =
      read_length >= config_.k
          ? static_cast<double>(read_length - config_.k + 1)
          : 0.0;
  const double dp_cells = static_cast<double>(candidates) *
                          static_cast<double>(read_length) *
                          static_cast<double>(read_length);
  return lookups * config_.energy_per_lookup +
         dp_cells * config_.energy_per_dp_cell;
}

}  // namespace asmcap
