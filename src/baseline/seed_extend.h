#pragma once
// Seed-and-extend baseline (paper §II-B): the BLAST/BWA-style strategy —
// exact k-mer seeds locate candidate diagonals, each candidate window is
// then *verified* with full dynamic programming. More accurate than
// seed-and-vote (no vote-threshold misses) but slower: every candidate
// costs a DP verification, the throughput bottleneck the paper attributes
// to the extending process.

#include <cstddef>
#include <vector>

#include "genome/kmer.h"
#include "genome/sequence.h"

namespace asmcap {

struct SeedExtendConfig {
  std::size_t k = 15;
  /// Candidate windows examined per read at most (top diagonals by seed
  /// count); protects against repeat-induced blowup.
  std::size_t max_candidates = 16;
  /// Diagonal bucket width (indel slack while grouping seeds).
  std::size_t diagonal_slack = 4;
  /// Performance model: seed lookup cost and DP-cell verification rate.
  double seed_lookup_time = 20e-9;   ///< [s] per k-mer (hash probe).
  double dp_cells_per_second = 1.5e9;
  double energy_per_dp_cell = 1.0e-12;  ///< [J]
  double energy_per_lookup = 0.5e-9;    ///< [J]
};

class SeedExtendBaseline {
 public:
  explicit SeedExtendBaseline(SeedExtendConfig config = {})
      : config_(config), index_(config.k) {}

  void index_rows(const std::vector<Sequence>& rows);

  /// Per-row decisions: a row matches iff some seeded candidate verifies
  /// with banded DP at the threshold. Exact on seeded rows; rows with no
  /// exact k-mer seed are missed (the classic seeding blind spot).
  std::vector<bool> decide_rows(const Sequence& read,
                                std::size_t threshold) const;

  /// Candidates verified by the last decide_rows (perf model input).
  std::size_t last_candidates() const { return last_candidates_; }

  double seconds_per_read(std::size_t read_length,
                          std::size_t candidates) const;
  double joules_per_read(std::size_t read_length, std::size_t candidates) const;

  const SeedExtendConfig& config() const { return config_; }
  std::size_t indexed_rows() const { return rows_.size(); }

 private:
  SeedExtendConfig config_;
  KmerIndex index_;
  std::vector<Sequence> rows_;
  mutable std::size_t last_candidates_ = 0;
};

}  // namespace asmcap
