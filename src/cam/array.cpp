#include "cam/array.h"

#include <stdexcept>

#include "align/edstar.h"
#include "align/hamming.h"
#include "align/kernels.h"

namespace asmcap {

CamArray::CamArray(std::size_t rows, std::size_t cols)
    : rows_(rows),
      cols_(cols),
      segments_(rows),
      packed_(rows),
      valid_(rows, false) {
  if (rows == 0 || cols == 0)
    throw std::invalid_argument("CamArray: empty dimensions");
}

void CamArray::check_row(std::size_t row) const {
  if (row >= rows_) throw std::out_of_range("CamArray: row out of range");
}

void CamArray::write_row(std::size_t row, const Sequence& segment) {
  check_row(row);
  if (segment.size() != cols_)
    throw std::invalid_argument("CamArray::write_row: segment width mismatch");
  segments_[row] = segment;
  packed_[row] = segment.packed_words();
  valid_[row] = true;
}

void CamArray::invalidate_row(std::size_t row) {
  check_row(row);
  valid_[row] = false;
}

bool CamArray::row_valid(std::size_t row) const {
  check_row(row);
  return valid_[row];
}

std::size_t CamArray::valid_rows() const {
  std::size_t count = 0;
  for (bool v : valid_) count += v ? 1u : 0u;
  return count;
}

const Sequence& CamArray::row_segment(std::size_t row) const {
  check_row(row);
  if (!valid_[row]) throw std::logic_error("CamArray: row is invalid");
  return segments_[row];
}

BitVec CamArray::row_mismatch_mask(std::size_t row, const Sequence& read,
                                   MatchMode mode) const {
  check_row(row);
  if (read.size() != cols_)
    throw std::invalid_argument("CamArray: read width mismatch");
  if (!valid_[row]) return BitVec(cols_, true);
  // The per-cell logic is exactly the ED*/HD mismatch definition; using the
  // align kernels keeps the functional model and the metric definition in
  // one place (cross-checked cell-by-cell in tests).
  return mode == MatchMode::EdStar
             ? ed_star_mismatch_mask(segments_[row], read)
             : hamming_mismatch_mask(segments_[row], read);
}

std::vector<std::size_t> CamArray::search_counts(const Sequence& read,
                                                 MatchMode mode) const {
  if (read.size() != cols_)
    throw std::invalid_argument("CamArray: read width mismatch");
  std::vector<std::size_t> counts(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    if (!valid_[r]) continue;
    counts[r] = mode == MatchMode::EdStar ? ed_star(segments_[r], read)
                                          : segments_[r].mismatch_count(read);
  }
  return counts;
}

std::vector<BitVec> CamArray::search_masks(const Sequence& read,
                                           MatchMode mode) const {
  if (read.size() != cols_)
    throw std::invalid_argument("CamArray: read width mismatch");
  // One pass over the array shares one PackedReadView: the read-derived
  // neighbour alignments are computed once, not once per row (the same
  // read-work reuse the functional backends' block kernels rely on).
  const PackedReadView view(read);
  std::vector<std::uint64_t> flags(view.words);
  std::vector<BitVec> masks;
  masks.reserve(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    if (!valid_[r]) {
      masks.emplace_back(cols_, true);
      continue;
    }
    if (mode == MatchMode::EdStar)
      ed_star_mismatch_words(packed_[r].data(), view, flags.data());
    else
      hamming_mismatch_words(packed_[r].data(), view, flags.data());
    masks.push_back(lane_flags_to_bitvec(flags.data(), view.n));
  }
  return masks;
}

}  // namespace asmcap
