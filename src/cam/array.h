#pragma once
// Functional CAM array: M rows of N cells, each row storing one reference
// segment. The digital part of a search produces, per row, the vector of
// cell outputs (the mismatch mask); the analog readout models turn that
// into a noisy match decision.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cam/cell.h"
#include "genome/sequence.h"
#include "util/bitvec.h"

namespace asmcap {

class CamArray {
 public:
  /// An array of `rows` x `cols` cells, all rows initially invalid.
  CamArray(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Writes a reference segment into a row (the decoder + WL driver path).
  /// The segment length must equal the column count.
  void write_row(std::size_t row, const Sequence& segment);

  /// Marks a row invalid (its matchline is disabled during search).
  void invalidate_row(std::size_t row);
  bool row_valid(std::size_t row) const;
  std::size_t valid_rows() const;

  /// Stored segment of a row (throws if invalid).
  const Sequence& row_segment(std::size_t row) const;

  /// Digital search: mismatch mask of one row for a read in a mode.
  BitVec row_mismatch_mask(std::size_t row, const Sequence& read,
                           MatchMode mode) const;

  /// Digital search over all valid rows: per-row mismatch counts. Invalid
  /// rows report cols() (all-mismatch), which can never pass a threshold.
  std::vector<std::size_t> search_counts(const Sequence& read,
                                         MatchMode mode) const;

  /// Per-row masks for all rows, computed with one shared PackedReadView
  /// per call (invalid rows get the all-mismatch mask, matching
  /// row_mismatch_mask).
  std::vector<BitVec> search_masks(const Sequence& read, MatchMode mode) const;

 private:
  void check_row(std::size_t row) const;

  std::size_t rows_;
  std::size_t cols_;
  std::vector<Sequence> segments_;
  /// 2-bit packed form of each row, refreshed by write_row: search passes
  /// run the packed kernels without re-packing the resident database.
  std::vector<std::vector<std::uint64_t>> packed_;
  std::vector<bool> valid_;
};

}  // namespace asmcap
