#include "cam/cell.h"

#include <stdexcept>

namespace asmcap {

PartialMatch AsmcapCell::compare(const Sequence& read, std::size_t i) const {
  if (i >= read.size()) throw std::out_of_range("AsmcapCell::compare");
  PartialMatch out;
  out.co_located = stored_ == read[i];
  out.left = i > 0 && stored_ == read[i - 1];
  out.right = i + 1 < read.size() && stored_ == read[i + 1];
  return out;
}

bool AsmcapCell::mismatch(const Sequence& read, std::size_t i,
                          MatchMode mode) const {
  const PartialMatch partial = compare(read, i);
  if (mode == MatchMode::Hamming) return !partial.co_located;
  return !(partial.co_located || partial.left || partial.right);
}

}  // namespace asmcap
