#pragma once
// Functional model of the ASMCap cell (paper Fig. 4c) and the EDAM cell.
//
// The cell stores one reference base in two 6T SRAM cells. Its comparison
// logic sees the co-located read base and the left/right neighbours on the
// search lines and produces partial results O_C, O_L, O_R. Two MUXes select
// the matching mode: S=1 gives O = !(O_C | O_L | O_R) (ED* mode), S=0 gives
// O = !O_C (Hamming mode). O drives the bottom plate of the matchline
// capacitor: O=1 means *mismatch* (VDD on the plate), O=0 means match.

#include <cstddef>
#include <optional>

#include "genome/sequence.h"

namespace asmcap {

/// Matching mode selected by the shared MUX select signal S.
enum class MatchMode { EdStar, Hamming };

/// The three partial comparison results of one cell.
struct PartialMatch {
  bool co_located = false;  ///< O_C
  bool left = false;        ///< O_L (false when the neighbour doesn't exist)
  bool right = false;       ///< O_R
};

/// One ASMCap cell: combinational comparison of a stored base against the
/// read window. Stateless aside from the stored base; the analog capacitor
/// lives in the readout model.
class AsmcapCell {
 public:
  explicit AsmcapCell(Base stored) : stored_(stored) {}

  Base stored() const { return stored_; }
  void write(Base b) { stored_ = b; }

  /// Partial results for the read window around position i. Neighbours
  /// outside the row are "absent" (their SLs are held inactive).
  PartialMatch compare(const Sequence& read, std::size_t i) const;

  /// Cell output O (true = mismatch) in the given mode.
  bool mismatch(const Sequence& read, std::size_t i, MatchMode mode) const;

 private:
  Base stored_;
};

/// The EDAM cell has the same comparison logic but no mode MUX: it always
/// operates in ED* mode (it cannot run HDAC's Hamming search).
class EdamCell {
 public:
  explicit EdamCell(Base stored) : cell_(stored) {}

  Base stored() const { return cell_.stored(); }
  void write(Base b) { cell_.write(b); }

  bool mismatch(const Sequence& read, std::size_t i) const {
    return cell_.mismatch(read, i, MatchMode::EdStar);
  }

 private:
  AsmcapCell cell_;
};

}  // namespace asmcap
