#include "cam/charge_readout.h"

#include <stdexcept>

namespace asmcap {

ChargeArrayReadout::ChargeArrayReadout(std::size_t rows, std::size_t cols,
                                       const ChargeDomainParams& params,
                                       Rng& manufacture_rng)
    : params_(params), cols_(cols), sense_amp_(params.sa_noise_sigma) {
  if (rows == 0 || cols == 0)
    throw std::invalid_argument("ChargeArrayReadout: empty dimensions");
  matchlines_.reserve(rows);
  row_offsets_.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    matchlines_.emplace_back(cols, params_, manufacture_rng);
    // Residual systematic SA offset per row (post-cancellation).
    row_offsets_.push_back(
        manufacture_rng.normal(0.0, params_.sa_offset_sigma));
  }
}

void ChargeArrayReadout::remanufacture_row(std::size_t row, Rng& rng) {
  if (row >= rows())
    throw std::out_of_range("ChargeArrayReadout::remanufacture_row");
  // Same draw order as construction: matchline capacitors, then the
  // residual SA offset.
  matchlines_[row] = ChargeMatchline(cols_, params_, rng);
  row_offsets_[row] = rng.normal(0.0, params_.sa_offset_sigma);
}

double ChargeArrayReadout::settle_row(std::size_t row,
                                      const BitVec& mask) const {
  if (row >= rows()) throw std::out_of_range("ChargeArrayReadout::settle_row");
  // The systematic SA offset is folded into the settled voltage: both are
  // fixed per silicon, so the SA effectively compares (V_ML + offset).
  return matchlines_[row].settle(mask) + row_offsets_[row];
}

bool ChargeArrayReadout::decide(double vml, std::size_t threshold,
                                Rng& search_rng) const {
  return sense_amp_.below(vml, charge_vref(threshold, cols_, params_.vdd),
                          search_rng);
}

RowDecision ChargeArrayReadout::sense_row(std::size_t row, const BitVec& mask,
                                          std::size_t threshold,
                                          Rng& search_rng) {
  if (row >= rows()) throw std::out_of_range("ChargeArrayReadout::sense_row");
  const double vml = matchlines_[row].settle(mask);
  const double vref = charge_vref(threshold, cols_, params_.vdd);
  RowDecision decision;
  decision.vml = vml;
  decision.match = sense_amp_.below(vml, vref, search_rng);
  energy_ += matchlines_[row].search_energy(mask.popcount());
  return decision;
}

std::vector<RowDecision> ChargeArrayReadout::sense(
    const std::vector<BitVec>& masks, std::size_t threshold, Rng& search_rng) {
  if (masks.size() != rows())
    throw std::invalid_argument("ChargeArrayReadout::sense: mask count");
  std::vector<RowDecision> decisions;
  decisions.reserve(rows());
  for (std::size_t r = 0; r < rows(); ++r)
    decisions.push_back(sense_row(r, masks[r], threshold, search_rng));
  return decisions;
}

}  // namespace asmcap
