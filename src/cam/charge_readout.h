#pragma once
// Charge-domain (capacitive) readout of a whole array: one ChargeMatchline
// per row (manufactured once, so mismatch is systematic silicon) plus one
// sense amplifier per row. Converts digital mismatch masks into noisy match
// decisions and accounts search energy.

#include <cstddef>
#include <vector>

#include "circuit/matchline.h"
#include "circuit/sense_amp.h"
#include "util/bitvec.h"
#include "util/rng.h"

namespace asmcap {

/// Result of sensing one row.
struct RowDecision {
  bool match = false;
  double vml = 0.0;  ///< The (pre-SA-noise) matchline voltage.
};

class ChargeArrayReadout {
 public:
  /// Manufactures `rows` matchlines of `cols` cells each.
  ChargeArrayReadout(std::size_t rows, std::size_t cols,
                     const ChargeDomainParams& params, Rng& manufacture_rng);

  /// Re-manufactures ONE row's analog silicon (capacitor mismatch + the
  /// systematic SA offset) from `rng`. The live-database write path keys
  /// `rng` by the occupant segment's global id, which makes every noisy
  /// decision a pure function of (silicon seed, global segment id, query
  /// stream) — independent of which row, array, or bank the segment
  /// landed in (docs/determinism.md rule 8).
  void remanufacture_row(std::size_t row, Rng& rng);

  /// Senses every row against threshold T: match iff V_ML <= V_ref(T).
  /// `search_rng` supplies the per-decision SA noise. Accumulates energy.
  std::vector<RowDecision> sense(const std::vector<BitVec>& masks,
                                 std::size_t threshold, Rng& search_rng);

  /// Single-row variant.
  RowDecision sense_row(std::size_t row, const BitVec& mask,
                        std::size_t threshold, Rng& search_rng);

  /// Systematic settled voltage of a row for a mask (cacheable: it depends
  /// only on the silicon and the mask, not on the search).
  double settle_row(std::size_t row, const BitVec& mask) const;

  /// SA decision from a cached settled voltage (adds SA noise, charges no
  /// energy — pair with charge_search_energy for ledger purposes).
  bool decide(double vml, std::size_t threshold, Rng& search_rng) const;

  /// Ideal (noise-free) decision used for the `ideal_sensing` mode and for
  /// tests: count <= T exactly.
  static bool ideal_decision(std::size_t n_mis, std::size_t threshold) {
    return n_mis <= threshold;
  }

  std::size_t rows() const { return matchlines_.size(); }
  std::size_t cols() const { return cols_; }
  double consumed_energy() const { return energy_; }
  void reset_energy() { energy_ = 0.0; }
  const ChargeDomainParams& params() const { return params_; }
  const ChargeMatchline& matchline(std::size_t row) const {
    return matchlines_.at(row);
  }

 private:
  ChargeDomainParams params_;
  std::size_t cols_;
  std::vector<ChargeMatchline> matchlines_;
  std::vector<double> row_offsets_;  ///< systematic per-row SA offsets [V].
  SenseAmp sense_amp_;
  double energy_ = 0.0;
};

}  // namespace asmcap
