#include "cam/current_readout.h"

#include <stdexcept>

namespace asmcap {

CurrentArrayReadout::CurrentArrayReadout(std::size_t rows, std::size_t cols,
                                         const CurrentDomainParams& params,
                                         Rng& manufacture_rng)
    : params_(params), cols_(cols), sense_amp_(params.sa_noise_sigma) {
  if (rows == 0 || cols == 0)
    throw std::invalid_argument("CurrentArrayReadout: empty dimensions");
  matchlines_.reserve(rows);
  row_offsets_.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    matchlines_.emplace_back(cols, params_, manufacture_rng);
    // Systematic SA offset: the dynamic signal cannot be offset-cancelled.
    row_offsets_.push_back(
        manufacture_rng.normal(0.0, params_.sa_offset_sigma));
  }
}

double CurrentArrayReadout::drop_row(std::size_t row,
                                     const BitVec& mask) const {
  if (row >= rows()) throw std::out_of_range("CurrentArrayReadout::drop_row");
  return matchlines_[row].nominal_drop(mask);
}

bool CurrentArrayReadout::decide_from_drop(std::size_t row,
                                           double nominal_drop,
                                           std::size_t threshold,
                                           Rng& search_rng) const {
  if (row >= rows())
    throw std::out_of_range("CurrentArrayReadout::decide_from_drop");
  const CurrentMatchline& line = matchlines_[row];
  const double vml =
      line.sample_from_drop(nominal_drop, search_rng) + row_offsets_[row];
  const double vref =
      current_vref(threshold, params_.vdd, line.volts_per_count());
  return sense_amp_.above(vml, vref, search_rng);
}

RowDecision CurrentArrayReadout::measure_row(std::size_t row,
                                             const BitVec& mask,
                                             std::size_t threshold,
                                             Rng& search_rng,
                                             double* energy_joules) const {
  if (row >= rows())
    throw std::out_of_range("CurrentArrayReadout::measure_row");
  const CurrentMatchline& line = matchlines_[row];
  const double vml = line.sample(mask, search_rng) + row_offsets_[row];
  const double vref =
      current_vref(threshold, params_.vdd, line.volts_per_count());
  RowDecision decision;
  decision.vml = vml;
  decision.match = sense_amp_.above(vml, vref, search_rng);
  if (energy_joules) *energy_joules = line.search_energy(mask.popcount());
  return decision;
}

RowDecision CurrentArrayReadout::sense_row(std::size_t row, const BitVec& mask,
                                           std::size_t threshold,
                                           Rng& search_rng) {
  double energy = 0.0;
  const RowDecision decision =
      measure_row(row, mask, threshold, search_rng, &energy);
  energy_ += energy;
  return decision;
}

std::vector<RowDecision> CurrentArrayReadout::sense(
    const std::vector<BitVec>& masks, std::size_t threshold, Rng& search_rng) {
  if (masks.size() != rows())
    throw std::invalid_argument("CurrentArrayReadout::sense: mask count");
  std::vector<RowDecision> decisions;
  decisions.reserve(rows());
  for (std::size_t r = 0; r < rows(); ++r)
    decisions.push_back(sense_row(r, masks[r], threshold, search_rng));
  return decisions;
}

}  // namespace asmcap
