#pragma once
// Current-domain readout (the EDAM sensing path): pre-charged matchlines
// discharged by mismatched cells, sampled after the discharge window.
// Match polarity is inverted relative to the charge domain: the line stays
// *high* when few cells mismatch.

#include <cstddef>
#include <vector>

#include "cam/charge_readout.h"  // RowDecision
#include "circuit/matchline.h"
#include "circuit/sense_amp.h"
#include "util/bitvec.h"
#include "util/rng.h"

namespace asmcap {

class CurrentArrayReadout {
 public:
  CurrentArrayReadout(std::size_t rows, std::size_t cols,
                      const CurrentDomainParams& params, Rng& manufacture_rng);

  /// Senses every row: match iff sampled V_ML >= V_ref(T).
  std::vector<RowDecision> sense(const std::vector<BitVec>& masks,
                                 std::size_t threshold, Rng& search_rng);

  RowDecision sense_row(std::size_t row, const BitVec& mask,
                        std::size_t threshold, Rng& search_rng);

  /// Const, thread-safe variant of sense_row: identical physics, but the
  /// search energy of the row is returned through `energy_joules` instead
  /// of accumulating into the readout's ledger. This is the path the EDAM
  /// execution backend uses so that concurrent batch workers never mutate
  /// shared silicon state.
  RowDecision measure_row(std::size_t row, const BitVec& mask,
                          std::size_t threshold, Rng& search_rng,
                          double* energy_joules) const;

  /// Systematic (cacheable) nominal discharge of a row for a mask.
  double drop_row(std::size_t row, const BitVec& mask) const;

  /// Full noisy decision from a cached nominal drop: jitter + clamp + S/H
  /// noise + SA compare.
  bool decide_from_drop(std::size_t row, double nominal_drop,
                        std::size_t threshold, Rng& search_rng) const;

  std::size_t rows() const { return matchlines_.size(); }
  std::size_t cols() const { return cols_; }
  double consumed_energy() const { return energy_; }
  void reset_energy() { energy_ = 0.0; }
  const CurrentDomainParams& params() const { return params_; }
  const CurrentMatchline& matchline(std::size_t row) const {
    return matchlines_.at(row);
  }

 private:
  CurrentDomainParams params_;
  std::size_t cols_;
  std::vector<CurrentMatchline> matchlines_;
  std::vector<double> row_offsets_;  ///< systematic per-row SA offsets [V].
  SenseAmp sense_amp_;
  double energy_ = 0.0;
};

}  // namespace asmcap
