#include "cam/interconnect.h"

#include <stdexcept>

namespace asmcap {

HTree::HTree(std::size_t leaves, HTreeParams params)
    : leaves_(1), levels_(0), params_(params) {
  if (leaves == 0) throw std::invalid_argument("HTree: no leaves");
  while (leaves_ < leaves) {
    leaves_ <<= 1;
    ++levels_;
  }
}

double HTree::broadcast_latency() const {
  return static_cast<double>(levels_) * params_.level_latency;
}

double HTree::broadcast_energy(std::size_t bases) const {
  // Level l (root = 0) drives 2^(l+1) half-width segments; summing over
  // levels gives (2^levels+1 - 2) segment-broadcasts = 2*(leaves-1).
  const double segments = 2.0 * (static_cast<double>(leaves_) - 1.0);
  return segments * static_cast<double>(bases) *
         static_cast<double>(params_.bits_per_base) *
         params_.energy_per_bit_level;
}

}  // namespace asmcap
