#pragma once
// H-tree broadcast interconnect (paper Fig. 4a): reads from the global
// buffer fan out to all ASMCap arrays through a balanced binary H-tree.
// The model captures the broadcast latency (log2 levels of buffered wire)
// and energy (every level switches the full read width across its
// segments), which the system model adds on top of the array search.

#include <cstddef>

namespace asmcap {

struct HTreeParams {
  /// Wire latency per tree level (buffered segment) [s].
  double level_latency = 50e-12;
  /// Energy per bit per level-segment (short buffered on-chip wire) [J].
  double energy_per_bit_level = 1e-15;
  /// Bits per base on the distribution bus (2-bit encoding both rails).
  std::size_t bits_per_base = 4;
};

class HTree {
 public:
  /// A tree spanning `leaves` arrays (rounded up to a power of two).
  explicit HTree(std::size_t leaves, HTreeParams params = {});

  std::size_t leaves() const { return leaves_; }
  std::size_t levels() const { return levels_; }

  /// One-way broadcast latency of a read to every leaf.
  double broadcast_latency() const;

  /// Broadcast energy for a read of `bases` bases: each level switches the
  /// read across 2^level segments.
  double broadcast_energy(std::size_t bases) const;

  /// Result-collection latency (match bitmap back up the tree).
  double collect_latency() const { return broadcast_latency(); }

  const HTreeParams& params() const { return params_; }

 private:
  std::size_t leaves_;
  std::size_t levels_;
  HTreeParams params_;
};

}  // namespace asmcap
