#include "cam/periphery.h"

#include <stdexcept>

namespace asmcap {

RowDecoder::RowDecoder(std::size_t rows) : rows_(rows), bits_(0) {
  if (rows == 0) throw std::invalid_argument("RowDecoder: zero rows");
  std::size_t capacity = 1;
  while (capacity < rows_) {
    capacity <<= 1;
    ++bits_;
  }
}

std::size_t RowDecoder::decode(std::size_t address) const {
  if (address >= rows_)
    throw std::out_of_range("RowDecoder: address beyond last row");
  return address;
}

SearchlineDriver::SearchlineDriver(std::size_t width,
                                   SearchlineDriverParams params)
    : width_(width), params_(params) {
  if (width == 0) throw std::invalid_argument("SearchlineDriver: zero width");
}

double SearchlineDriver::drive(const Sequence& read) {
  const double energy = drive_energy(read);
  energy_ += energy;
  return energy;
}

double SearchlineDriver::drive_energy(const Sequence& read) const {
  if (read.size() != width_)
    throw std::invalid_argument("SearchlineDriver::drive: width mismatch");
  return params_.energy_per_base * static_cast<double>(read.size());
}

double row_write_energy(std::size_t cols, const WriteCostParams& params) {
  return params.energy_per_base * static_cast<double>(cols);
}

}  // namespace asmcap
