#pragma once
// Array periphery: row-address decoder + wordline driver (the write path)
// and the searchline buffer/driver (the search path). Functional address
// decoding plus the latency/energy contributions the system model charges
// for writes and for driving reads into the SLs.

#include <cstddef>

#include "genome/sequence.h"

namespace asmcap {

/// One-hot row decoder: models the decoder + WL driver of Fig. 4b.
class RowDecoder {
 public:
  explicit RowDecoder(std::size_t rows);

  /// Decodes an address into the selected row; throws on out-of-range
  /// addresses (the hardware would assert no wordline).
  std::size_t decode(std::size_t address) const;

  /// Number of address bits.
  std::size_t address_bits() const { return bits_; }
  std::size_t rows() const { return rows_; }

 private:
  std::size_t rows_;
  std::size_t bits_;
};

/// Searchline buffer & driver: converts a read into differential SL levels.
/// Functionally an identity with width checking; the energy/latency numbers
/// feed the system model.
struct SearchlineDriverParams {
  double energy_per_base = 8e-15;  ///< [J] per base per search (both rails).
  double drive_latency = 0.3e-9;   ///< [s], already included in search_time.
};

class SearchlineDriver {
 public:
  SearchlineDriver(std::size_t width, SearchlineDriverParams params = {});

  /// Validates and "drives" a read; returns the energy charged.
  double drive(const Sequence& read);

  /// Energy one drive of `read` would charge, without accumulating it
  /// (the const path used by the thread-safe execution backends). Performs
  /// the same width validation as drive().
  double drive_energy(const Sequence& read) const;

  double consumed_energy() const { return energy_; }
  void reset_energy() { energy_ = 0.0; }
  std::size_t width() const { return width_; }

 private:
  std::size_t width_;
  SearchlineDriverParams params_;
  double energy_ = 0.0;
};

/// Write-path cost of storing one segment (decoder + WL pulse + SRAM flip).
struct WriteCostParams {
  double energy_per_base = 30e-15;  ///< [J]
  double latency_per_row = 2e-9;    ///< [s]
};

double row_write_energy(std::size_t cols, const WriteCostParams& params = {});

}  // namespace asmcap
