#include "cam/shift_register.h"

#include <stdexcept>

namespace asmcap {

ShiftRegisterFile::ShiftRegisterFile(std::size_t width) : width_(width) {
  if (width == 0) throw std::invalid_argument("ShiftRegisterFile: zero width");
}

void ShiftRegisterFile::load(const Sequence& read) {
  if (read.size() != width_)
    throw std::invalid_argument("ShiftRegisterFile::load: width mismatch");
  original_ = read;
  current_ = read;
  loaded_ = true;
}

void ShiftRegisterFile::rotate_left() {
  if (!loaded_) throw std::logic_error("ShiftRegisterFile: nothing loaded");
  current_ = current_.rotated_left(1);
  ++shift_cycles_;
}

void ShiftRegisterFile::rotate_right() {
  if (!loaded_) throw std::logic_error("ShiftRegisterFile: nothing loaded");
  current_ = current_.rotated_right(1);
  ++shift_cycles_;
}

void ShiftRegisterFile::restore() {
  if (!loaded_) throw std::logic_error("ShiftRegisterFile: nothing loaded");
  current_ = original_;
}

const Sequence& ShiftRegisterFile::value() const {
  if (!loaded_) throw std::logic_error("ShiftRegisterFile: nothing loaded");
  return current_;
}

}  // namespace asmcap
