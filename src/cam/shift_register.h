#pragma once
// Shift registers with enable signal (paper Fig. 4b): hold the incoming
// read and rotate it left or right base-by-base for the TASR strategy.
// Functionally a rotating register file; the model also counts shift
// cycles so the controller can account TASR's latency overhead.

#include <cstddef>

#include "genome/sequence.h"

namespace asmcap {

class ShiftRegisterFile {
 public:
  explicit ShiftRegisterFile(std::size_t width);

  /// Loads a read (enable asserted); width must match.
  void load(const Sequence& read);

  /// Rotates the held read one base left/right (one cycle each).
  void rotate_left();
  void rotate_right();

  /// Restores the originally loaded read without extra shift cycles
  /// (the registers are reloaded from the SL buffer).
  void restore();

  const Sequence& value() const;
  bool loaded() const { return loaded_; }
  std::size_t width() const { return width_; }

  /// Total shift cycles executed since construction (TASR latency ledger).
  std::size_t shift_cycles() const { return shift_cycles_; }
  void reset_cycles() { shift_cycles_ = 0; }

 private:
  std::size_t width_;
  Sequence original_;
  Sequence current_;
  bool loaded_ = false;
  std::size_t shift_cycles_ = 0;
};

}  // namespace asmcap
