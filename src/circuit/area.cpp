#include "circuit/area.h"

namespace asmcap {

double AreaModel::asmcap_cell_area() const {
  return static_cast<double>(params_.asmcap_cell_transistors) *
         params_.transistor_area * params_.asmcap_layout_factor;
}

double AreaModel::edam_cell_area() const {
  return static_cast<double>(params_.edam_cell_transistors) *
         params_.transistor_area * params_.edam_layout_factor;
}

ArrayAreaBreakdown AreaModel::breakdown(double cell_area, std::size_t rows,
                                        std::size_t cols) const {
  ArrayAreaBreakdown out;
  out.cell_area = cell_area;
  out.cells_total = cell_area * static_cast<double>(rows) *
                    static_cast<double>(cols);
  // Periphery expressed as a fraction of the total: total = cells / (1 - f).
  out.total = out.cells_total / (1.0 - params_.periphery_area_fraction);
  out.periphery = out.total - out.cells_total;
  out.cells_fraction = out.cells_total / out.total;
  return out;
}

ArrayAreaBreakdown AreaModel::asmcap_array(std::size_t rows,
                                           std::size_t cols) const {
  return breakdown(asmcap_cell_area(), rows, cols);
}

ArrayAreaBreakdown AreaModel::edam_array(std::size_t rows,
                                         std::size_t cols) const {
  return breakdown(edam_cell_area(), rows, cols);
}

}  // namespace asmcap
