#pragma once
// Layout-area model (paper Table I and §V-B). Cell areas follow from
// transistor counts and a 65 nm layout density; the MIM capacitors sit in
// the metal stack above the cell and cost no silicon area.

#include <cstddef>

#include "circuit/process.h"

namespace asmcap {

struct ArrayAreaBreakdown {
  double cell_area = 0.0;       ///< One cell [m^2].
  double cells_total = 0.0;     ///< All cells [m^2].
  double periphery = 0.0;       ///< SAs, decoder, drivers, shift registers [m^2].
  double total = 0.0;           ///< Whole array [m^2].
  double cells_fraction = 0.0;  ///< cells_total / total.
};

class AreaModel {
 public:
  explicit AreaModel(const AreaParams& params) : params_(params) {}

  /// ASMCap cell area (Table I: 24.0 µm²).
  double asmcap_cell_area() const;

  /// EDAM cell area (Table I: 33.4 µm²).
  double edam_cell_area() const;

  /// Full-array breakdown for an ASMCap array of rows x cols cells
  /// (§V-B: 1.58 mm² for 256x256, >99 % cells).
  ArrayAreaBreakdown asmcap_array(std::size_t rows, std::size_t cols) const;

  /// Full-array breakdown for an EDAM array.
  ArrayAreaBreakdown edam_array(std::size_t rows, std::size_t cols) const;

 private:
  ArrayAreaBreakdown breakdown(double cell_area, std::size_t rows,
                               std::size_t cols) const;

  AreaParams params_;
};

}  // namespace asmcap
