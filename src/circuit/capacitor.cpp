#include "circuit/capacitor.h"

#include <algorithm>
#include <stdexcept>

namespace asmcap {

CapacitorBank::CapacitorBank(std::size_t n, const ChargeDomainParams& params,
                             Rng& rng)
    : params_(params) {
  if (n == 0) throw std::invalid_argument("CapacitorBank: empty bank");
  caps_.reserve(n);
  const double sigma = params_.cap_sigma_rel * params_.cap_mean;
  for (std::size_t i = 0; i < n; ++i) {
    double c = rng.normal(params_.cap_mean, sigma);
    // Truncate at +/-4 sigma: a manufacturing screen; keeps capacitance
    // physical even under extreme relative sigma in stress tests.
    c = std::clamp(c, params_.cap_mean - 4 * sigma, params_.cap_mean + 4 * sigma);
    caps_.push_back(c);
    total_ += c;
  }
}

double CapacitorBank::ideal_vml(std::size_t n_mis) const {
  if (n_mis > size()) throw std::out_of_range("CapacitorBank::ideal_vml");
  return static_cast<double>(n_mis) / static_cast<double>(size()) * params_.vdd;
}

double CapacitorBank::actual_vml(const BitVec& mismatch_mask) const {
  if (mismatch_mask.size() != size())
    throw std::invalid_argument("CapacitorBank::actual_vml: mask size mismatch");
  double mismatched = 0.0;
  for (std::size_t i = mismatch_mask.find_first(); i < mismatch_mask.size();
       i = mismatch_mask.find_next(i + 1))
    mismatched += caps_[i];
  return mismatched / total_ * params_.vdd;
}

double CapacitorBank::vml_variance(std::size_t n_mis) const {
  const auto n = static_cast<double>(size());
  const auto k = static_cast<double>(n_mis);
  const double rel = params_.cap_sigma_rel;
  return k * (n - k) / (n * n * n) * rel * rel * params_.vdd * params_.vdd;
}

double CapacitorBank::search_energy(std::size_t n_mis) const {
  const auto n = static_cast<double>(size());
  const auto k = static_cast<double>(n_mis);
  return k * (n - k) / n * params_.cap_mean * params_.vdd * params_.vdd;
}

}  // namespace asmcap
