#pragma once
// Capacitor bank of one charge-domain matchline row. Per-cell capacitances
// are drawn once at construction (manufacturing mismatch is systematic: the
// same silicon answers every search), matching the i.i.d. normal model the
// paper adopts from CapCAM [17].

#include <cstddef>
#include <vector>

#include "circuit/process.h"
#include "util/bitvec.h"
#include "util/rng.h"

namespace asmcap {

class CapacitorBank {
 public:
  /// Samples `n` capacitances from N(cap_mean, (cap_sigma_rel*cap_mean)^2),
  /// truncated at ±4σ to keep them physical.
  CapacitorBank(std::size_t n, const ChargeDomainParams& params, Rng& rng);

  /// Ideal (mismatch-free) matchline voltage for a given mismatch count:
  /// V_ML = n_mis / N * VDD.
  double ideal_vml(std::size_t n_mis) const;

  /// Actual settled matchline voltage for a specific set of mismatched
  /// cells: the capacitive divider V_ML = sum_mis(C_i) / sum_all(C_i) * VDD.
  double actual_vml(const BitVec& mismatch_mask) const;

  /// Paper Eq. (2): analytic variance of V_ML for a mismatch count.
  double vml_variance(std::size_t n_mis) const;

  /// Paper Eq. (1) for a single row (M = 1): energy of one search with the
  /// given mismatch count, E = n_mis (N - n_mis) / N * µ_C * VDD^2.
  double search_energy(std::size_t n_mis) const;

  std::size_t size() const { return caps_.size(); }
  double capacitance(std::size_t i) const { return caps_.at(i); }
  double total_capacitance() const { return total_; }
  const ChargeDomainParams& params() const { return params_; }

 private:
  ChargeDomainParams params_;
  std::vector<double> caps_;
  double total_ = 0.0;
};

}  // namespace asmcap
