#include "circuit/corners.h"

#include <stdexcept>

namespace asmcap {

const char* to_string(ProcessCorner corner) {
  switch (corner) {
    case ProcessCorner::SS: return "SS";
    case ProcessCorner::TT: return "TT";
    case ProcessCorner::FF: return "FF";
  }
  return "?";
}

CornerScaling corner_scaling(ProcessCorner corner) {
  switch (corner) {
    case ProcessCorner::SS: return {1.25, 0.85, 1.15};
    case ProcessCorner::TT: return {1.0, 1.0, 1.0};
    case ProcessCorner::FF: return {0.85, 1.15, 0.95};
  }
  throw std::invalid_argument("corner_scaling: unknown corner");
}

ProcessParams apply_corner(const ProcessParams& nominal, ProcessCorner corner,
                           double vdd) {
  if (vdd <= 0.0) throw std::invalid_argument("apply_corner: bad vdd");
  const CornerScaling scale = corner_scaling(corner);
  // Alpha-power-law delay dependence on supply, normalised at 1.2 V.
  const double voltage_delay = 1.2 / vdd;

  ProcessParams out = nominal;
  const double delay = scale.delay * voltage_delay;

  out.charge.vdd = vdd;
  out.charge.t_sl_drive *= delay;
  out.charge.t_settle *= delay;
  out.charge.t_sense *= delay;
  out.charge.cap_sigma_rel *= scale.mismatch;  // cap mismatch is layout-set,
                                               // corner effect is mild

  out.current.vdd = vdd;
  out.current.t_precharge *= delay;
  out.current.t_discharge *= delay;
  out.current.t_sample *= delay;
  out.current.cell_current *= scale.current * (vdd / 1.2);
  out.current.i_sigma_rel *= scale.mismatch;

  validate(out);
  return out;
}

}  // namespace asmcap
