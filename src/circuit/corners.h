#pragma once
// Process corners for the 65 nm models. The paper's numbers are typical
// (TT); corner scaling lets the benches report how the Table I quantities
// move across SS/TT/FF silicon and across the voltage range — the kind of
// sign-off sweep a tape-out would require.

#include <string>

#include "circuit/process.h"

namespace asmcap {

enum class ProcessCorner { SS, TT, FF };

const char* to_string(ProcessCorner corner);

struct CornerScaling {
  double delay = 1.0;       ///< multiplies all timing phases
  double current = 1.0;     ///< multiplies the discharge cell current
  double mismatch = 1.0;    ///< multiplies device sigma (slow corners vary more)
};

/// Standard scaling factors per corner (relative to TT).
CornerScaling corner_scaling(ProcessCorner corner);

/// Applies a corner (and optional supply scaling) to a parameter bundle.
/// Voltage scaling follows the alpha-power delay model (~1/V at 65 nm) and
/// scales all V_DD-referenced quantities consistently.
ProcessParams apply_corner(const ProcessParams& nominal, ProcessCorner corner,
                           double vdd = 1.2);

}  // namespace asmcap
