#include "circuit/matchline.h"

#include <algorithm>
#include <stdexcept>

namespace asmcap {

ChargeMatchline::ChargeMatchline(std::size_t n_cells,
                                 const ChargeDomainParams& params,
                                 Rng& manufacture_rng)
    : bank_(n_cells, params, manufacture_rng) {}

double ChargeMatchline::settle(const BitVec& mismatch_mask) const {
  return bank_.actual_vml(mismatch_mask);
}

CurrentMatchline::CurrentMatchline(std::size_t n_cells,
                                   const CurrentDomainParams& params,
                                   Rng& manufacture_rng)
    : params_(params) {
  if (n_cells == 0) throw std::invalid_argument("CurrentMatchline: no cells");
  currents_.reserve(n_cells);
  const double sigma = params_.i_sigma_rel * params_.cell_current;
  for (std::size_t i = 0; i < n_cells; ++i) {
    double current = manufacture_rng.normal(params_.cell_current, sigma);
    current = std::clamp(current, params_.cell_current - 4 * sigma,
                         params_.cell_current + 4 * sigma);
    currents_.push_back(current);
  }
  ml_capacitance_ = params_.ml_cap_per_cell * static_cast<double>(n_cells);
}

double CurrentMatchline::volts_per_count() const {
  return params_.cell_current * params_.t_discharge / ml_capacitance_;
}

double CurrentMatchline::ideal_vml(std::size_t n_mis) const {
  const double drop = static_cast<double>(n_mis) * volts_per_count();
  return std::max(0.0, params_.vdd - drop);
}

double CurrentMatchline::nominal_drop(const BitVec& mismatch_mask) const {
  if (mismatch_mask.size() != cells())
    throw std::invalid_argument(
        "CurrentMatchline::nominal_drop: mask size mismatch");
  double total_current = 0.0;
  for (std::size_t i = mismatch_mask.find_first(); i < mismatch_mask.size();
       i = mismatch_mask.find_next(i + 1))
    total_current += currents_[i];
  return total_current * params_.t_discharge / ml_capacitance_;
}

double CurrentMatchline::sample_from_drop(double nominal_drop,
                                          Rng& search_rng) const {
  // Sampling window with clock jitter (random each search): the jitter
  // scales the accumulated drop multiplicatively.
  const double jitter_factor =
      1.0 + search_rng.normal(0.0, params_.timing_jitter_rel);
  const double drop = std::max(0.0, nominal_drop * jitter_factor);
  double vml = std::max(0.0, params_.vdd - drop);  // clamps at ground
  // Sample-and-hold noise (kT/C + droop) corrupts the held value.
  vml += search_rng.normal(0.0, params_.sh_noise_sigma);
  return vml;
}

double CurrentMatchline::sample(const BitVec& mismatch_mask,
                                Rng& search_rng) const {
  return sample_from_drop(nominal_drop(mismatch_mask), search_rng);
}

double current_row_search_energy(std::size_t n_mis, std::size_t n_cells,
                                 const CurrentDomainParams& params) {
  const double ml_capacitance =
      params.ml_cap_per_cell * static_cast<double>(n_cells);
  const double volts_per_count =
      params.cell_current * params.t_discharge / ml_capacitance;
  // Pre-charge: the matchline swings (on average) by the discharged amount
  // each cycle and is pulled back to VDD: E_pre = C_ML * VDD * dV. We charge
  // the full swing pessimistically for mismatching rows (the common case in
  // genome search, where most rows mismatch badly).
  const double ideal_drop =
      std::min(params.vdd, static_cast<double>(n_mis) * volts_per_count);
  const double e_precharge = ml_capacitance * params.vdd * ideal_drop;
  // Crowbar: mismatched cells conduct for the full discharge window (the
  // matchline driver and the pull-downs fight until sampling).
  const double e_discharge = static_cast<double>(n_mis) *
                             params.cell_current * params.vdd *
                             params.t_discharge;
  return e_precharge + e_discharge;
}

double CurrentMatchline::search_energy(std::size_t n_mis) const {
  return current_row_search_energy(n_mis, cells(), params_);
}

}  // namespace asmcap
