#pragma once
// Matchline readout models.
//
// Charge domain (ASMCap, Fig. 3b): V_ML settles at the capacitive-divider
// value — time-independent, linear in the mismatch count. The only noise a
// search sees is the (systematic) capacitor mismatch plus the SA's random
// input-referred noise.
//
// Current domain (EDAM, Fig. 3a): the pre-charged matchline discharges with
// a slope proportional to the mismatch count; the sampled voltage inherits
// per-cell current mismatch (systematic), sampling-clock jitter and
// sample-and-hold noise (random per search), and clamps at ground — the
// non-linearity that compresses high-mismatch levels.

#include <cstddef>

#include "circuit/capacitor.h"
#include "circuit/process.h"
#include "util/bitvec.h"
#include "util/rng.h"

namespace asmcap {

/// One charge-domain row: owns its capacitor bank (manufactured once).
class ChargeMatchline {
 public:
  ChargeMatchline(std::size_t n_cells, const ChargeDomainParams& params,
                  Rng& manufacture_rng);

  /// Settled V_ML for a mismatch mask, *without* SA noise (the SA adds its
  /// noise at decision time, see SenseAmp).
  double settle(const BitVec& mismatch_mask) const;

  double ideal_vml(std::size_t n_mis) const { return bank_.ideal_vml(n_mis); }
  double search_energy(std::size_t n_mis) const {
    return bank_.search_energy(n_mis);
  }
  double vml_variance(std::size_t n_mis) const {
    return bank_.vml_variance(n_mis);
  }

  std::size_t cells() const { return bank_.size(); }
  const CapacitorBank& bank() const { return bank_; }

 private:
  CapacitorBank bank_;
};

/// Nominal current-domain search energy of one row (matchline pre-charge +
/// crowbar discharge), a pure function of the mismatch count and the
/// process parameters — the manufactured per-cell currents do not enter.
/// Shared by CurrentMatchline::search_energy and the EDAM functional
/// backend, so the two ledger paths agree bit-for-bit.
double current_row_search_energy(std::size_t n_mis, std::size_t n_cells,
                                 const CurrentDomainParams& params);

/// One current-domain row: owns its per-cell discharge currents.
class CurrentMatchline {
 public:
  CurrentMatchline(std::size_t n_cells, const CurrentDomainParams& params,
                   Rng& manufacture_rng);

  /// Sampled matchline voltage for a mismatch mask. Random per-search
  /// effects (clock jitter, S/H noise) are drawn from `search_rng`; the
  /// systematic per-cell current mismatch is fixed at construction.
  /// The result clamps at 0 (full discharge).
  double sample(const BitVec& mismatch_mask, Rng& search_rng) const;

  /// Systematic (per-silicon) part of the discharge: the nominal voltage
  /// drop including current mismatch but before jitter, clamping, and S/H
  /// noise. Cacheable per (row, mask); feed to sample_from_drop per search.
  double nominal_drop(const BitVec& mismatch_mask) const;

  /// Applies the random per-search effects to a cached nominal drop and
  /// returns the held sample (clamped at ground).
  double sample_from_drop(double nominal_drop, Rng& search_rng) const;

  /// Ideal (noise-free, nominal-current) sampled voltage for a count.
  double ideal_vml(std::size_t n_mis) const;

  /// Volts one mismatch count is worth at the sampling instant.
  double volts_per_count() const;

  /// Energy of one search: pre-charge of the matchline capacitance plus the
  /// integrated discharge current of the mismatched cells over the window.
  double search_energy(std::size_t n_mis) const;

  std::size_t cells() const { return currents_.size(); }
  const CurrentDomainParams& params() const { return params_; }

 private:
  CurrentDomainParams params_;
  std::vector<double> currents_;  ///< Per-cell discharge currents [A].
  double ml_capacitance_ = 0.0;   ///< Total matchline capacitance [F].
};

}  // namespace asmcap
