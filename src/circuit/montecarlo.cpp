#include "circuit/montecarlo.h"

#include <cmath>
#include <stdexcept>

#include "circuit/matchline.h"
#include "util/bitvec.h"

namespace asmcap {

std::size_t charge_domain_max_states(const ChargeDomainParams& params) {
  if (params.cap_sigma_rel <= 0.0) return ~std::size_t{0};  // ideal devices
  // sqrt(N) <= 1 / (3 sigma_rel)  =>  N <= 1 / (3 sigma_rel)^2
  const double limit = 1.0 / (3.0 * params.cap_sigma_rel);
  return static_cast<std::size_t>(limit * limit);
}

std::size_t current_domain_max_states(const CurrentDomainParams& params) {
  if (params.i_sigma_rel <= 0.0) return ~std::size_t{0};
  // Largest n with 3 sigma_rel (sqrt(n) + sqrt(n+1)) <= 1.
  std::size_t n = 0;
  while (3.0 * params.i_sigma_rel *
             (std::sqrt(static_cast<double>(n + 1)) +
              std::sqrt(static_cast<double>(n + 2))) <=
         1.0)
    ++n;
  return n + 1;  // counts are 1-based levels above zero
}

namespace {

BitVec random_mask(std::size_t n_cells, std::size_t n_mis, Rng& rng) {
  if (n_mis > n_cells) throw std::invalid_argument("random_mask: count too big");
  BitVec mask(n_cells);
  // Partial Fisher-Yates over cell indices.
  std::vector<std::size_t> idx(n_cells);
  for (std::size_t i = 0; i < n_cells; ++i) idx[i] = i;
  for (std::size_t i = 0; i < n_mis; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.below(n_cells - i));
    std::swap(idx[i], idx[j]);
    mask.set(idx[i]);
  }
  return mask;
}

}  // namespace

std::vector<LevelStats> mc_charge_levels(const ChargeDomainParams& params,
                                         std::size_t n_cells,
                                         const std::vector<std::size_t>& counts,
                                         std::size_t trials, Rng& rng) {
  std::vector<LevelStats> levels;
  levels.reserve(counts.size());
  for (const std::size_t n_mis : counts) {
    RunningStats stats;
    for (std::size_t t = 0; t < trials; ++t) {
      // Fresh silicon each trial: the variance in Eq. 2 is the ensemble
      // variance across manufactured rows.
      ChargeMatchline row(n_cells, params, rng);
      const BitVec mask = random_mask(n_cells, n_mis, rng);
      stats.add(row.settle(mask));
    }
    levels.push_back({n_mis, stats.mean(), stats.stddev()});
  }
  return levels;
}

std::vector<LevelStats> mc_current_levels(const CurrentDomainParams& params,
                                          std::size_t n_cells,
                                          const std::vector<std::size_t>& counts,
                                          std::size_t trials, Rng& rng) {
  std::vector<LevelStats> levels;
  levels.reserve(counts.size());
  for (const std::size_t n_mis : counts) {
    RunningStats stats;
    for (std::size_t t = 0; t < trials; ++t) {
      CurrentMatchline row(n_cells, params, rng);
      const BitVec mask = random_mask(n_cells, n_mis, rng);
      stats.add(row.sample(mask, rng));
    }
    levels.push_back({n_mis, stats.mean(), stats.stddev()});
  }
  return levels;
}

std::size_t count_separated_pairs(const std::vector<LevelStats>& levels) {
  std::size_t separated = 0;
  for (std::size_t k = 0; k + 1 < levels.size(); ++k) {
    const double gap = std::fabs(levels[k + 1].mean_vml - levels[k].mean_vml);
    if (gap >= 3.0 * (levels[k].sigma_vml + levels[k + 1].sigma_vml))
      ++separated;
  }
  return separated;
}

}  // namespace asmcap
