#pragma once
// Distinguishable-state analysis (paper §V-D): how many matchline levels a
// readout scheme can separate under the 3σ constraint. Both the analytic
// forms and a Monte-Carlo validation over manufactured rows are provided;
// with the paper's parameters they yield 44 states for EDAM's
// current-domain sensing (2.5 % current σ) and 566 for ASMCap's
// charge-domain sensing (1.4 % capacitor σ).

#include <cstddef>
#include <vector>

#include "circuit/process.h"
#include "util/rng.h"
#include "util/stats.h"

namespace asmcap {

/// Analytic maximum row length N such that *every* pair of adjacent
/// charge-domain levels is separated by at least 3σ of each level
/// (worst case at n_mis = N/2, per paper Eq. 2):
///   VDD/N >= 3 (σ_n + σ_{n+1})  for all n  ⇔  sqrt(N) <= 1 / (3 σ_C/µ_C).
std::size_t charge_domain_max_states(const ChargeDomainParams& params);

/// Analytic maximum number of distinguishable discharge counts for the
/// current domain: σ_n = sqrt(n) · (σ_I/µ_I) · Δ grows with the count, so
/// the constraint Δ >= 3 (σ_n + σ_{n+1}) caps the usable count at
/// 3 (σ_I/µ_I) (sqrt(n) + sqrt(n+1)) <= 1.
std::size_t current_domain_max_states(const CurrentDomainParams& params);

/// Per-level Monte-Carlo statistics of a readout scheme.
struct LevelStats {
  std::size_t n_mis = 0;
  double mean_vml = 0.0;
  double sigma_vml = 0.0;
};

/// Samples `trials` manufactured charge-domain rows of `n_cells` cells and
/// measures V_ML statistics at each requested mismatch count. Mismatch
/// positions are re-drawn per trial (the variance in Eq. 2 is over both
/// manufacturing and position placement).
std::vector<LevelStats> mc_charge_levels(const ChargeDomainParams& params,
                                         std::size_t n_cells,
                                         const std::vector<std::size_t>& counts,
                                         std::size_t trials, Rng& rng);

/// Same for the current domain (includes the random per-search jitter and
/// sample-and-hold noise that the real sampling path suffers).
std::vector<LevelStats> mc_current_levels(const CurrentDomainParams& params,
                                          std::size_t n_cells,
                                          const std::vector<std::size_t>& counts,
                                          std::size_t trials, Rng& rng);

/// Counts how many of the adjacent level pairs in `levels` satisfy the 3σ
/// separation criterion |µ_{k+1} − µ_k| >= 3 (σ_k + σ_{k+1}).
std::size_t count_separated_pairs(const std::vector<LevelStats>& levels);

}  // namespace asmcap
