#include "circuit/power.h"

#include <algorithm>
#include <stdexcept>

namespace asmcap {

namespace {

void check_dims(std::size_t rows, std::size_t cols, double avg_n_mis) {
  if (rows == 0 || cols == 0)
    throw std::invalid_argument("PowerModel: empty array");
  if (avg_n_mis < 0.0 || avg_n_mis > static_cast<double>(cols))
    throw std::invalid_argument("PowerModel: avg_n_mis out of range");
}

}  // namespace

double PowerModel::asmcap_search_energy(std::size_t rows, std::size_t cols,
                                        double avg_n_mis) const {
  check_dims(rows, cols, avg_n_mis);
  const auto& charge = process_.charge;
  const double n = static_cast<double>(cols);
  // Paper Eq. (1): E_S = M * n_mis (N - n_mis) / N * µ_C * VDD^2.
  const double cells = static_cast<double>(rows) * avg_n_mis *
                       (n - avg_n_mis) / n * charge.cap_mean * charge.vdd *
                       charge.vdd;
  const double shift_registers =
      static_cast<double>(cols) *
      static_cast<double>(periphery_.flops_per_row_bit) *
      periphery_.flop_energy;
  const double sense_amps = static_cast<double>(rows) * periphery_.sa_energy;
  return cells + shift_registers + sense_amps;
}

double PowerModel::edam_search_energy(std::size_t rows, std::size_t cols,
                                      double avg_n_mis) const {
  check_dims(rows, cols, avg_n_mis);
  const auto& current = process_.current;
  const double ml_cap = current.ml_cap_per_cell * static_cast<double>(cols);
  const double volts_per_count =
      current.cell_current * current.t_discharge / ml_cap;
  const double drop = std::min(current.vdd, avg_n_mis * volts_per_count);
  // Pre-charge restores the discharged swing; mismatched cells crowbar for
  // the full discharge window.
  const double per_row_precharge = ml_cap * current.vdd * drop;
  const double per_row_crowbar = avg_n_mis * current.cell_current *
                                 current.vdd * current.t_discharge;
  const double cells =
      static_cast<double>(rows) * (per_row_precharge + per_row_crowbar);
  // EDAM has no rotation shift registers in the baseline array, but it pays
  // a sample-and-hold per row in addition to the SA.
  const double sense_amps = static_cast<double>(rows) *
                            (periphery_.sa_energy + periphery_.sh_energy);
  return cells + sense_amps;
}

ArrayPowerBreakdown PowerModel::asmcap_array_power(std::size_t rows,
                                                   std::size_t cols,
                                                   double avg_n_mis) const {
  check_dims(rows, cols, avg_n_mis);
  const double t = process_.charge.search_time();
  const auto& charge = process_.charge;
  const double n = static_cast<double>(cols);
  ArrayPowerBreakdown out;
  const double cells_energy = static_cast<double>(rows) * avg_n_mis *
                              (n - avg_n_mis) / n * charge.cap_mean *
                              charge.vdd * charge.vdd;
  const double sr_energy = static_cast<double>(cols) *
                           static_cast<double>(periphery_.flops_per_row_bit) *
                           periphery_.flop_energy;
  const double sa_energy = static_cast<double>(rows) * periphery_.sa_energy;
  out.cells = cells_energy / t;
  out.shift_registers = sr_energy / t;
  out.sense_amps = sa_energy / t;
  out.energy_per_search = cells_energy + sr_energy + sa_energy;
  out.total = out.cells + out.shift_registers + out.sense_amps;
  out.per_cell = out.total / (static_cast<double>(rows) * n);
  return out;
}

ArrayPowerBreakdown PowerModel::edam_array_power(std::size_t rows,
                                                 std::size_t cols,
                                                 double avg_n_mis) const {
  check_dims(rows, cols, avg_n_mis);
  const double t = process_.current.search_time();
  ArrayPowerBreakdown out;
  const double total_energy = edam_search_energy(rows, cols, avg_n_mis);
  const double sa_energy = static_cast<double>(rows) *
                           (periphery_.sa_energy + periphery_.sh_energy);
  out.cells = (total_energy - sa_energy) / t;
  out.shift_registers = 0.0;
  out.sense_amps = sa_energy / t;
  out.energy_per_search = total_energy;
  out.total = total_energy / t;
  out.per_cell =
      out.total / (static_cast<double>(rows) * static_cast<double>(cols));
  return out;
}

}  // namespace asmcap
