#pragma once
// Power / energy model (paper Table I, §V-B). Energy per search for the
// charge domain follows Eq. (1); periphery (shift registers, sense amps)
// adds fixed per-search costs. The current-domain (EDAM) search pays the
// matchline pre-charge plus the crowbar current of every mismatched cell
// over the discharge window.

#include <cstddef>

#include "circuit/process.h"

namespace asmcap {

/// Per-search periphery energies of one array.
struct PeripheryEnergyParams {
  /// Shift-register flop energy per search cycle [J] (the registers clock
  /// once per search to present the read on the search lines).
  double flop_energy = 5e-15;
  std::size_t flops_per_row_bit = 1;  ///< One flop per read base (x2 SL rails folded in).
  /// Sense-amplifier decision energy [J] per row per search.
  double sa_energy = 1.6e-15;
  /// Sample-and-hold energy per row per search (EDAM only) [J].
  double sh_energy = 6e-15;
};

struct ArrayPowerBreakdown {
  double cells = 0.0;            ///< [W]
  double shift_registers = 0.0;  ///< [W]
  double sense_amps = 0.0;       ///< [W]
  double total = 0.0;            ///< [W]
  double energy_per_search = 0.0;  ///< [J]
  double per_cell = 0.0;         ///< average power per cell [W]
};

class PowerModel {
 public:
  PowerModel(const ProcessParams& process, PeripheryEnergyParams periphery = {})
      : process_(process), periphery_(periphery) {}

  /// Energy of one ASMCap array search (M rows x N cells) with the given
  /// average mismatch count per row (paper Eq. 1 plus periphery).
  double asmcap_search_energy(std::size_t rows, std::size_t cols,
                              double avg_n_mis) const;

  /// Energy of one EDAM array search.
  double edam_search_energy(std::size_t rows, std::size_t cols,
                            double avg_n_mis) const;

  /// Average power of an ASMCap array searching back-to-back (one search
  /// per search_time). §V-B reports 7.67 mW for 256x256 with the workload
  /// mismatch statistics the paper assumes (n_mis close to N).
  ArrayPowerBreakdown asmcap_array_power(std::size_t rows, std::size_t cols,
                                         double avg_n_mis) const;

  /// Average power of an EDAM array under the same conditions (Table I:
  /// about 1 µW per cell, 8.5x the ASMCap cell).
  ArrayPowerBreakdown edam_array_power(std::size_t rows, std::size_t cols,
                                       double avg_n_mis) const;

  const ProcessParams& process() const { return process_; }
  const PeripheryEnergyParams& periphery() const { return periphery_; }

  /// The paper's implicit workload assumption: mismatch counts close to N
  /// ("n_mis is close to N for most rows", §III-C). Used as the default
  /// operating point for reproducing Table I / §V-B.
  static double paper_avg_n_mis(std::size_t cols) {
    return 0.9725 * static_cast<double>(cols);
  }

 private:
  ProcessParams process_;
  PeripheryEnergyParams periphery_;
};

}  // namespace asmcap
