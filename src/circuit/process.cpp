#include "circuit/process.h"

#include <stdexcept>

namespace asmcap {

namespace {

void require(bool condition, const char* message) {
  if (!condition) throw std::invalid_argument(message);
}

}  // namespace

void validate(const ProcessParams& params) {
  require(params.charge.vdd > 0, "charge.vdd must be positive");
  require(params.charge.cap_mean > 0, "charge.cap_mean must be positive");
  require(params.charge.cap_sigma_rel >= 0 && params.charge.cap_sigma_rel < 1,
          "charge.cap_sigma_rel must be in [0,1)");
  require(params.charge.sa_noise_sigma >= 0,
          "charge.sa_noise_sigma must be non-negative");
  require(params.charge.search_time() > 0, "charge search time must be positive");

  require(params.current.vdd > 0, "current.vdd must be positive");
  require(params.current.i_sigma_rel >= 0 && params.current.i_sigma_rel < 1,
          "current.i_sigma_rel must be in [0,1)");
  require(params.current.timing_jitter_rel >= 0 &&
              params.current.timing_jitter_rel < 1,
          "current.timing_jitter_rel must be in [0,1)");
  require(params.current.search_time() > 0,
          "current search time must be positive");
  require(params.current.ml_cap_per_cell > 0,
          "current.ml_cap_per_cell must be positive");
  require(params.current.cell_current > 0,
          "current.cell_current must be positive");

  require(params.area.transistor_area > 0, "area.transistor_area must be positive");
  require(params.area.asmcap_cell_transistors > 0, "asmcap cell transistors");
  require(params.area.edam_cell_transistors > 0, "edam cell transistors");
  require(params.area.periphery_area_fraction >= 0 &&
              params.area.periphery_area_fraction < 1,
          "periphery_area_fraction must be in [0,1)");
}

}  // namespace asmcap
