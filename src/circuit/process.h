#pragma once
// Process / device parameters for the 65 nm models. All defaults come from
// the paper (§V-A, Table I) and its references: 1.2 V supply, 2 fF MIM
// capacitors with 1.4 % mismatch, 2.5 % current variation in the
// current-domain (EDAM) cells. Substitutes for the Cadence Virtuoso
// circuit-level simulation: the accuracy-relevant behaviour is entirely
// captured by the level statistics these parameters induce.

#include <cstddef>

namespace asmcap {

/// Charge-domain (capacitive, ASMCap) matchline parameters.
struct ChargeDomainParams {
  double vdd = 1.2;              ///< Supply voltage [V].
  double cap_mean = 2e-15;       ///< MIM capacitor mean [F] (2 fF).
  double cap_sigma_rel = 0.014;  ///< Relative capacitor mismatch (1.4 %).
  /// Input-referred sense-amplifier random noise sigma [V]. The stable,
  /// time-independent V_ML lets ASMCap use an offset-cancelled clocked
  /// comparator, so this is small.
  double sa_noise_sigma = 2e-3;
  /// Residual *systematic* per-row SA offset after cancellation [V],
  /// drawn once at manufacture.
  double sa_offset_sigma = 0.5e-3;
  /// Search-line settle + capacitive settle + SA decision [s] (Table I:
  /// 0.9 ns total, no pre-charge and no sample-and-hold).
  double t_sl_drive = 0.3e-9;
  double t_settle = 0.3e-9;
  double t_sense = 0.3e-9;

  double search_time() const { return t_sl_drive + t_settle + t_sense; }
};

/// Current-domain (EDAM) matchline parameters.
struct CurrentDomainParams {
  double vdd = 1.2;                 ///< Supply voltage [V].
  double i_sigma_rel = 0.025;       ///< Per-cell discharge-current mismatch (2.5 %).
  double timing_jitter_rel = 0.01;  ///< Sampling-clock jitter relative to t_sample.
  /// Input-referred SA random noise sigma [V]; the dynamic signal forbids
  /// offset cancellation, so this is larger than the charge-domain SA.
  double sa_noise_sigma = 8e-3;
  /// Systematic per-row SA offset [V]: uncancellable in the dynamic
  /// sensing scheme, drawn once at manufacture. Together with the current
  /// mismatch this is what limits EDAM's usable read length (paper §II-C).
  double sa_offset_sigma = 6e-3;
  /// Sample-and-hold droop / kT/C noise sigma [V].
  double sh_noise_sigma = 6e-3;
  /// Matchline pre-charge, discharge window, and sample phases [s]
  /// (Table I: 2.4 ns total).
  double t_precharge = 0.8e-9;
  double t_discharge = 1.2e-9;
  double t_sample = 0.4e-9;
  /// Matchline capacitance per cell [F] (parasitic drain + wire).
  double ml_cap_per_cell = 0.86e-15;
  /// Nominal per-cell discharge current [A]. Chosen together with
  /// t_discharge so that one mismatch count is worth VDD / 256 at the
  /// sampling instant for the paper's 256-cell rows (full-range mapping).
  double cell_current = 0.86e-6;

  double search_time() const { return t_precharge + t_discharge + t_sample; }
};

/// Layout-derived area parameters (65 nm). Calibrated so the cell areas
/// reproduce Table I; the transistor counts are from the cell schematics
/// (Fig. 4c for ASMCap; EDAM adds the discharge pull-down stack and
/// pre-charge devices and lacks ASMCap's layout optimisations).
struct AreaParams {
  /// Effective layouted area per transistor including local wiring [m^2].
  double transistor_area = 1.0e-12;  // 1.0 um^2
  /// ASMCap cell: 2x 6T SRAM + XOR-style comparison logic (8T) + 2x2 MUX
  /// pass transistors = 24 transistors; dense thanks to layout optimisation
  /// (MIM caps sit on top of the cell: no area penalty).
  std::size_t asmcap_cell_transistors = 24;
  double asmcap_layout_factor = 1.0;
  /// EDAM cell: 2x 6T SRAM + comparison logic + ML discharge stack and
  /// pre-charge devices; less dense layout.
  std::size_t edam_cell_transistors = 26;
  double edam_layout_factor = 1.285;
  /// Periphery (per 256x256 array): SAs, decoder, WL/SL drivers, shift
  /// registers. Fractions of total array area; cells dominate (>99 %).
  double periphery_area_fraction = 0.008;
};

/// One canonical bundle used across the library.
struct ProcessParams {
  ChargeDomainParams charge;
  CurrentDomainParams current;
  AreaParams area;
};

/// Validates parameter sanity (positive times, sigmas in [0,1), ...).
/// Throws std::invalid_argument on violations.
void validate(const ProcessParams& params);

}  // namespace asmcap
