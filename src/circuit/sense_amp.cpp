#include "circuit/sense_amp.h"

#include <stdexcept>

namespace asmcap {

bool SenseAmp::below(double vml, double vref, Rng& rng) const {
  const double noisy =
      noise_sigma_ > 0.0 ? vml + rng.normal(0.0, noise_sigma_) : vml;
  return noisy <= vref;
}

bool SenseAmp::above(double vml, double vref, Rng& rng) const {
  const double noisy =
      noise_sigma_ > 0.0 ? vml + rng.normal(0.0, noise_sigma_) : vml;
  return noisy >= vref;
}

double charge_vref(std::size_t threshold, std::size_t n_cells, double vdd) {
  if (n_cells == 0) throw std::invalid_argument("charge_vref: n_cells == 0");
  return (static_cast<double>(threshold) + 0.5) /
         static_cast<double>(n_cells) * vdd;
}

double current_vref(std::size_t threshold, double vdd, double volts_per_count) {
  return vdd - (static_cast<double>(threshold) + 0.5) * volts_per_count;
}

}  // namespace asmcap
