#pragma once
// Sense amplifier: compares V_ML with V_ref and outputs the match decision.
// ASMCap (paper §III-B): output '1' (match) iff V_ML <= V_ref with
// V_ref = T / N * VDD, i.e. ED* <= T. The SA adds Gaussian input-referred
// noise; for the current-domain (EDAM) path the polarity flips (mismatches
// *discharge* the line, so match means V_ML *above* the reference).

#include <cstddef>

#include "util/rng.h"

namespace asmcap {

class SenseAmp {
 public:
  /// `noise_sigma` is the input-referred offset+noise sigma in volts,
  /// re-drawn per decision (offset cancellation leaves only the random
  /// component; the systematic part is folded into the same sigma).
  explicit SenseAmp(double noise_sigma) : noise_sigma_(noise_sigma) {}

  /// Match decision for "low means match" polarity (charge domain):
  /// returns true iff (vml + noise) <= vref.
  bool below(double vml, double vref, Rng& rng) const;

  /// Match decision for "high means match" polarity (current domain):
  /// returns true iff (vml + noise) >= vref.
  bool above(double vml, double vref, Rng& rng) const;

  double noise_sigma() const { return noise_sigma_; }

 private:
  double noise_sigma_;
};

/// Reference-voltage generator for the charge domain: V_ref places the
/// decision boundary halfway between the T-th and (T+1)-th level so both
/// sides get equal noise margin: V_ref = (T + 0.5) / N * VDD.
double charge_vref(std::size_t threshold, std::size_t n_cells, double vdd);

/// Reference for the current domain: level T sits at VDD - T*volts_per_count,
/// boundary again placed half a count further down.
double current_vref(std::size_t threshold, double vdd, double volts_per_count);

}  // namespace asmcap
