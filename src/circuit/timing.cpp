#include "circuit/timing.h"

namespace asmcap {

SearchTimingBreakdown TimingModel::asmcap_search() const {
  const auto& charge = process_.charge;
  SearchTimingBreakdown out;
  out.precharge = 0.0;  // no pre-charge: top plates sit at the divider value
  out.drive = charge.t_sl_drive;
  out.evaluate = charge.t_settle;
  out.sense = charge.t_sense;
  out.total = out.precharge + out.drive + out.evaluate + out.sense;
  return out;
}

SearchTimingBreakdown TimingModel::edam_search() const {
  const auto& current = process_.current;
  SearchTimingBreakdown out;
  out.precharge = current.t_precharge;
  out.drive = 0.0;  // folded into the pre-charge phase
  out.evaluate = current.t_discharge;
  out.sense = current.t_sample;
  out.total = out.precharge + out.drive + out.evaluate + out.sense;
  return out;
}

double TimingModel::asmcap_query_latency(std::size_t searches) const {
  return static_cast<double>(searches) * asmcap_search().total;
}

double TimingModel::edam_query_latency(std::size_t searches) const {
  return static_cast<double>(searches) * edam_search().total;
}

}  // namespace asmcap
