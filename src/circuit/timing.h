#pragma once
// Search-latency model (paper Table I). ASMCap skips EDAM's pre-charge and
// sample-and-hold phases because the charge-domain matchline settles at a
// stable voltage: 0.9 ns vs 2.4 ns per search.

#include <cstddef>

#include "circuit/process.h"

namespace asmcap {

struct SearchTimingBreakdown {
  double precharge = 0.0;  ///< [s] (zero for the charge domain)
  double drive = 0.0;      ///< search-line drive [s]
  double evaluate = 0.0;   ///< settle (charge) or discharge window (current) [s]
  double sense = 0.0;      ///< SA decision (+ sample for current domain) [s]
  double total = 0.0;      ///< [s]
};

class TimingModel {
 public:
  explicit TimingModel(const ProcessParams& process) : process_(process) {}

  SearchTimingBreakdown asmcap_search() const;
  SearchTimingBreakdown edam_search() const;

  /// Latency of one logical read query that issues `searches` array search
  /// operations back-to-back (e.g. 1 + HDAC + TASR rotations).
  double asmcap_query_latency(std::size_t searches) const;
  double edam_query_latency(std::size_t searches) const;

 private:
  ProcessParams process_;
};

}  // namespace asmcap
