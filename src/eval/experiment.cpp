#include "eval/experiment.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <stdexcept>

#include "asmcap/db_error.h"
#include "asmcap/hdac.h"
#include "asmcap/sharded.h"
#include "asmcap/tasr.h"
#include "circuit/area.h"
#include "circuit/montecarlo.h"
#include "circuit/power.h"
#include "circuit/timing.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace asmcap {

namespace {
// Arm salts for the Fig. 7 replay's noise tree: every contender arm draws
// from its own stream keyed by (arm, query, row), so toggling one arm's
// schedule (edam_sr_enabled, the HD pass) never shifts the draws — and
// therefore the accuracy — of any other arm. See docs/determinism.md.
constexpr std::uint64_t kArmEdam = 0x0E0A'0000ULL;
constexpr std::uint64_t kArmBase = 0x0BA5'0000ULL;
constexpr std::uint64_t kArmTasr = 0x07A5'0000ULL;
constexpr std::uint64_t kArmHd = 0x0440'0000ULL;
constexpr std::uint64_t kArmHdacCoin = 0x0C01'0000ULL;
constexpr std::uint64_t kArmFullCoin = 0x0F11'0000ULL;
}  // namespace

double Fig7Series::mean(double Fig7Point::* field) const {
  if (points.empty()) return 0.0;
  double sum = 0.0;
  for (const Fig7Point& point : points) sum += point.*field;
  return sum / static_cast<double>(points.size());
}

Fig7Series Fig7Runner::run(const Dataset& dataset,
                           const std::vector<std::size_t>& thresholds,
                           Rng& rng) const {
  if (thresholds.empty())
    throw std::invalid_argument("Fig7Runner: no thresholds");
  if (config_.shards == 0) throw std::invalid_argument("Fig7Runner: 0 shards");
  if (dataset.rows.size() >
      config_.shards * config_.asmcap.capacity_segments())
    throw DbError(
        DbErrorKind::CapacityExceeded,
        "Fig7Runner: dataset rows exceed the sharded capacity (raise "
        "Fig7Config::shards)");
  const std::size_t ed_cap =
      *std::max_element(thresholds.begin(), thresholds.end());

  DatasetSignals signals(dataset, config_.asmcap, config_.edam, ed_cap, rng,
                         config_.workers);
  const auto& asmcap_ro = signals.asmcap_readout();
  const auto& edam_ro = signals.edam_readout();
  const Hdac hdac(config_.asmcap.hdac);
  const Tasr tasr(config_.asmcap.tasr);
  const bool ideal = config_.asmcap.ideal_sensing;
  const std::size_t read_length = config_.asmcap.array_cols;

  // Kraken-like predictions are threshold-independent: compute once.
  KrakenLikeClassifier kraken(config_.kraken);
  kraken.index_rows(dataset.rows);
  std::vector<Sequence> query_reads;
  query_reads.reserve(dataset.queries.size());
  for (const DatasetQuery& query : dataset.queries)
    query_reads.push_back(query.read);
  const std::vector<std::vector<bool>> kraken_pred =
      kraken.decide_batch(query_reads, config_.workers);

  Fig7Series series;
  series.condition = dataset.name;
  series.points.resize(thresholds.size());

  // Each threshold replays the cached signals against its own forked noise
  // stream, so thresholds evaluate independently and in parallel.
  ThreadPool pool(config_.workers);
  pool.parallel_for(thresholds.size(), [&](std::size_t t) {
    const std::size_t threshold = thresholds[t];
    Fig7Point point;
    point.threshold = threshold;
    ConfusionMatrix cm_edam, cm_base, cm_hdac, cm_tasr, cm_full, cm_kraken;

    const double p = hdac.probability(dataset.rates, threshold);
    const bool hd_pass = hdac.enabled(dataset.rates, threshold);
    const bool rotate = tasr.should_rotate(threshold, dataset.rates,
                                           read_length);

    // Per-arm noise streams, forked once per threshold; each (query, row)
    // pair forks again below, so a decision's draws are a pure function of
    // (threshold, arm, query, row) — never of another arm's schedule.
    const Rng threshold_rng = rng.fork(threshold + 1);
    const Rng arm_edam = threshold_rng.fork(kArmEdam);
    const Rng arm_base = threshold_rng.fork(kArmBase);
    const Rng arm_tasr = threshold_rng.fork(kArmTasr);
    const Rng arm_hd = threshold_rng.fork(kArmHd);
    const Rng arm_hdac_coin = threshold_rng.fork(kArmHdacCoin);
    const Rng arm_full_coin = threshold_rng.fork(kArmFullCoin);
    for (std::size_t q = 0; q < signals.queries(); ++q) {
      for (std::size_t r = 0; r < signals.rows(); ++r) {
        const PairSignals& pair = signals.pair(q, r);
        const bool actual = pair.ed <= threshold;
        const std::uint64_t pair_key = q * signals.rows() + r;

        // Streams are forked lazily: the ideal path samples no noise and
        // a disabled HD pass flips no coins, so those pairs skip the
        // (hot-loop) Rng constructions entirely.

        // --- EDAM: current-domain sensing, plain ED* (optional SR). ---
        std::optional<Rng> edam_noise;
        if (!ideal) edam_noise.emplace(arm_edam.fork(pair_key));
        bool edam_match =
            ideal ? pair.ed_star <= threshold
                  : edam_ro.decide_from_drop(r, pair.edam_drop, threshold,
                                             *edam_noise);
        if (config_.edam_sr_enabled) {
          for (std::size_t k = 0; k < pair.rot_ed_star.size(); ++k) {
            if (edam_match) break;
            edam_match =
                ideal ? pair.rot_ed_star[k] <= threshold
                      : edam_ro.decide_from_drop(r, pair.rot_edam_drop[k],
                                                 threshold, *edam_noise);
          }
        }
        cm_edam.add(edam_match, actual);

        // --- ASMCap baseline: charge-domain sensing, plain ED*. ---
        bool base_match;
        if (ideal) {
          base_match = pair.ed_star <= threshold;
        } else {
          Rng base_noise = arm_base.fork(pair_key);
          base_match = asmcap_ro.decide(pair.vml_ed_star, threshold,
                                        base_noise);
        }
        cm_base.add(base_match, actual);

        // --- TASR arm: rotations only when T >= T_l. ---
        bool tasr_match = base_match;
        if (rotate) {
          std::optional<Rng> tasr_noise;
          if (!ideal) tasr_noise.emplace(arm_tasr.fork(pair_key));
          for (std::size_t k = 0; k < pair.rot_ed_star.size(); ++k) {
            if (tasr_match) break;
            tasr_match = ideal
                             ? pair.rot_ed_star[k] <= threshold
                             : asmcap_ro.decide(pair.rot_vml[k], threshold,
                                                *tasr_noise);
          }
        }
        cm_tasr.add(tasr_match, actual);

        // --- HDAC arm: HD search + probabilistic selection. ---
        bool hd_match = false;
        if (hd_pass) {
          if (ideal) {
            hd_match = pair.hd <= threshold;
          } else {
            Rng hd_noise = arm_hd.fork(pair_key);
            hd_match = asmcap_ro.decide(pair.vml_hd, threshold, hd_noise);
          }
        }
        bool hdac_match = base_match;
        if (hd_pass) {
          Rng hdac_coin = arm_hdac_coin.fork(pair_key);
          hdac_match = hdac.combine(hd_match, base_match, p, hdac_coin);
        }
        cm_hdac.add(hdac_match, actual);

        // --- Full: TASR-corrected ED* result, then HDAC selection. ---
        bool full_match = tasr_match;
        if (hd_pass) {
          Rng full_coin = arm_full_coin.fork(pair_key);
          full_match = hdac.combine(hd_match, tasr_match, p, full_coin);
        }
        cm_full.add(full_match, actual);

        cm_kraken.add(kraken_pred[q][r], actual);
      }
    }

    point.edam = cm_edam.f1();
    point.asmcap_base = cm_base.f1();
    point.asmcap_hdac = cm_hdac.f1();
    point.asmcap_tasr = cm_tasr.f1();
    point.asmcap_full = cm_full.f1();
    point.kraken = cm_kraken.f1();
    point.cm_edam = cm_edam;
    point.cm_base = cm_base;
    point.cm_full = cm_full;
    series.points[t] = point;
  });
  return series;
}

ShardedComparisonResult run_sharded_comparison(
    const ShardedComparisonConfig& config, const Dataset& dataset) {
  ShardedComparisonResult out;
  out.segments = dataset.rows.size();
  out.shards = config.shards;

  // The sharded filter: the whole query batch in one routed call. Shard
  // pruning (default on) makes the reported energy the honest deployment
  // number — only the banks the sketch could not rule out are charged;
  // decisions are bit-identical either way (asmcap/sketch.h).
  AsmcapConfig bank_config = config.bank;
  bank_config.pruning.enabled = config.prune_shards;
  ShardedAccelerator accel(bank_config, config.shards);
  accel.set_error_profile(dataset.rates);
  accel.load_reference(dataset.rows);

  std::vector<Sequence> reads;
  reads.reserve(dataset.queries.size());
  for (const DatasetQuery& query : dataset.queries)
    reads.push_back(query.read);
  const std::vector<QueryResult> asmcap_results = accel.search_batch(
      reads, config.threshold, config.mode, config.workers);

  // EDAM, batched through its own engine: geometry mirrors the bank (the
  // comparator stores the same rows at the same width), array_count raised
  // to fit the whole database in one EDAM deployment.
  EdamConfig edam_config = config.edam;
  edam_config.array_rows = config.bank.array_rows;
  edam_config.array_cols = config.bank.array_cols;
  edam_config.array_count =
      (dataset.rows.size() + edam_config.array_rows - 1) /
      edam_config.array_rows;
  edam_config.ideal_sensing = config.bank.ideal_sensing;
  EdamAccelerator edam(edam_config);
  edam.load_reference(dataset.rows);
  edam.set_backend(config.edam_backend);
  const std::vector<EdamQueryResult> edam_results =
      edam.search_batch(reads, config.threshold, config.workers);

  // CM-CPU is exact, so its decisions double as the ground truth.
  const CmCpuBaseline cmcpu(config.cmcpu);
  const std::vector<std::vector<bool>> truth = cmcpu.decide_batch(
      reads, dataset.rows, config.threshold, config.workers);

  KrakenLikeClassifier kraken(config.kraken);
  kraken.index_rows(dataset.rows);
  const std::vector<std::vector<bool>> kraken_pred =
      kraken.decide_batch(reads, config.workers);

  for (std::size_t q = 0; q < reads.size(); ++q) {
    out.cm_asmcap.merge(confusion_from(asmcap_results[q].decisions, truth[q]));
    out.cm_edam.merge(confusion_from(edam_results[q].decisions, truth[q]));
    out.cm_kraken.merge(confusion_from(kraken_pred[q], truth[q]));
    out.edam_latency_seconds += edam_results[q].latency_seconds;
    out.edam_energy_joules += edam_results[q].energy_joules;
  }
  out.asmcap_f1 = out.cm_asmcap.f1();
  out.edam_f1 = out.cm_edam.f1();
  out.kraken_f1 = out.cm_kraken.f1();
  out.accel_latency_seconds = accel.totals().latency_seconds;
  out.accel_energy_joules = accel.totals().energy_joules;
  out.banks_probed = accel.totals().banks_probed;
  out.banks_pruned = accel.totals().banks_pruned;
  const std::size_t probes = out.banks_probed + out.banks_pruned;
  out.prune_rate = probes == 0 ? 0.0
                               : static_cast<double>(out.banks_pruned) /
                                     static_cast<double>(probes);
  out.cmcpu_seconds = static_cast<double>(reads.size()) *
                      cmcpu.seconds_per_read(config.bank.array_cols,
                                             dataset.rows.size(),
                                             config.threshold);
  out.cmcpu_joules = static_cast<double>(reads.size()) *
                     cmcpu.joules_per_read(config.bank.array_cols,
                                           dataset.rows.size(),
                                           config.threshold);

  // Live-mutation arm: tombstone a contamination block mid-run, verify
  // the surviving rows' accuracy is untouched, re-insert the block under
  // fresh ids, verify again, and compact the staging bank away. Exercises
  // the epoch-snapshotted database through the full evaluation pipeline.
  if (config.live_mutation && !reads.empty()) {
    const std::size_t total = dataset.rows.size();
    const std::size_t block = std::min(config.live_block, total - 1);
    const std::uint64_t base = config.bank.segment_base;
    out.live_deleted = block;
    out.live_dead_rows_silent = true;

    std::vector<std::uint64_t> doomed(block);
    for (std::size_t i = 0; i < block; ++i)
      doomed[i] = base + static_cast<std::uint64_t>(total - block + i);
    accel.remove_segments(doomed);

    ConfusionMatrix cm_del;
    const std::vector<QueryResult> after_delete = accel.search_batch(
        reads, config.threshold, config.mode, config.workers);
    for (std::size_t q = 0; q < reads.size(); ++q) {
      for (std::size_t i = 0; i < total - block; ++i)
        cm_del.add(after_delete[q].decisions[i], truth[q][i]);
      for (std::size_t i = total - block; i < total; ++i)
        if (after_delete[q].decisions[i]) out.live_dead_rows_silent = false;
    }
    out.live_f1_after_delete = cm_del.f1();

    // Re-insert the same contamination rows; they land in the hot staging
    // bank under fresh ids at the tail of the id space.
    std::vector<Sequence> block_rows(dataset.rows.end() - block,
                                     dataset.rows.end());
    const std::vector<std::uint64_t> fresh =
        accel.append_segments(block_rows);

    ConfusionMatrix cm_re;
    const std::vector<QueryResult> after_reinsert = accel.search_batch(
        reads, config.threshold, config.mode, config.workers);
    for (std::size_t q = 0; q < reads.size(); ++q) {
      for (std::size_t i = 0; i < total - block; ++i)
        cm_re.add(after_reinsert[q].decisions[i], truth[q][i]);
      for (std::size_t i = total - block; i < total; ++i)
        if (after_reinsert[q].decisions[i]) out.live_dead_rows_silent = false;
      for (std::size_t k = 0; k < fresh.size(); ++k)
        cm_re.add(after_reinsert[q]
                      .decisions[static_cast<std::size_t>(fresh[k] - base)],
                  truth[q][total - block + k]);
    }
    out.live_f1_after_reinsert = cm_re.f1();

    accel.compact();
    out.live_final_epoch = accel.epoch();
  }
  return out;
}

std::vector<Table1Row> run_table1(const ProcessParams& process) {
  const AreaModel area(process.area);
  const TimingModel timing(process);
  const PowerModel power(process);
  constexpr std::size_t kRows = 256;
  constexpr std::size_t kCols = 256;
  const double n_mis = PowerModel::paper_avg_n_mis(kCols);

  const double edam_area = area.edam_cell_area();
  const double asmcap_area = area.asmcap_cell_area();
  const double edam_time = timing.edam_search().total;
  const double asmcap_time = timing.asmcap_search().total;
  const double edam_power =
      power.edam_array_power(kRows, kCols, n_mis).per_cell;
  const double asmcap_power =
      power.asmcap_array_power(kRows, kCols, n_mis).per_cell;

  // Areas are printed in um^2 explicitly: SI prefixes are linear and do not
  // compose with squared units.
  const auto um2 = [](double square_metres) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1fum^2", square_metres * 1e12);
    return std::string(buf);
  };
  std::vector<Table1Row> rows;
  rows.push_back({"Cell area", um2(edam_area), um2(asmcap_area),
                  edam_area / asmcap_area});
  rows.push_back({"Search time", format_si(edam_time, "s"),
                  format_si(asmcap_time, "s"), edam_time / asmcap_time});
  rows.push_back({"Avg power per cell", format_si(edam_power, "W"),
                  format_si(asmcap_power, "W"), edam_power / asmcap_power});
  return rows;
}

BreakdownResult run_breakdown(const ProcessParams& process, std::size_t rows,
                              std::size_t cols) {
  const AreaModel area(process.area);
  const PowerModel power(process);
  const auto area_breakdown = area.asmcap_array(rows, cols);
  const auto power_breakdown =
      power.asmcap_array_power(rows, cols, PowerModel::paper_avg_n_mis(cols));
  BreakdownResult out;
  out.area_total = area_breakdown.total;
  out.area_cells_fraction = area_breakdown.cells_fraction;
  out.power_total = power_breakdown.total;
  out.power_cells_fraction = power_breakdown.cells / power_breakdown.total;
  out.power_sr_fraction =
      power_breakdown.shift_registers / power_breakdown.total;
  out.power_sa_fraction = power_breakdown.sense_amps / power_breakdown.total;
  return out;
}

StatesResult run_states(const ProcessParams& process) {
  StatesResult out;
  out.edam_states = current_domain_max_states(process.current);
  out.asmcap_states = charge_domain_max_states(process.charge);
  return out;
}

std::vector<ReadLengthPoint> run_readlength(const ReadLengthConfig& config,
                                            const ProcessParams& process,
                                            Rng& rng) {
  std::vector<ReadLengthPoint> points;
  for (const std::size_t length : config.lengths) {
    DatasetConfig dataset_config;
    dataset_config.segment_length = length;
    dataset_config.rows = config.rows;
    dataset_config.reads = config.reads;
    dataset_config.rates = config.rates;
    dataset_config.name = "m=" + std::to_string(length);
    Rng dataset_rng = rng.fork(readlength_dataset_salt(length));
    const Dataset dataset = build_dataset(dataset_config, dataset_rng);

    Fig7Config fig7;
    fig7.asmcap.process = process;
    fig7.asmcap.array_rows = config.rows;
    fig7.asmcap.array_cols = length;
    fig7.edam = process.current;

    ReadLengthPoint point;
    point.read_length = length;
    point.threshold = static_cast<std::size_t>(std::max(
        1.0, config.threshold_fraction * static_cast<double>(length)));
    Rng run_rng = rng.fork(readlength_run_salt(length));
    const Fig7Series series =
        Fig7Runner(fig7).run(dataset, {point.threshold}, run_rng);
    point.edam_f1 = series.points.front().edam;
    point.asmcap_f1 = series.points.front().asmcap_base;
    points.push_back(point);
  }
  return points;
}

}  // namespace asmcap
