#pragma once
// Experiment runners for every paper table/figure. The benchmark binaries
// and the integration tests both call these, so the numbers in
// EXPERIMENTS.md come from exactly the code under test.

#include <cstddef>
#include <string>
#include <vector>

#include "asmcap/config.h"
#include "asmcap/edam.h"
#include "baseline/cmcpu.h"
#include "baseline/kraken_like.h"
#include "eval/metrics.h"
#include "eval/sweep.h"
#include "genome/dataset.h"
#include "perf/system_model.h"

namespace asmcap {

// ---------------------------------------------------------------- Fig. 7 --

/// F1 of every contender at one threshold.
struct Fig7Point {
  std::size_t threshold = 0;
  double edam = 0.0;
  double asmcap_base = 0.0;   ///< w/o HDAC & TASR
  double asmcap_hdac = 0.0;   ///< + HDAC only
  double asmcap_tasr = 0.0;   ///< + TASR only
  double asmcap_full = 0.0;   ///< w/ HDAC & TASR
  double kraken = 0.0;        ///< normalisation baseline
  /// Detailed confusion matrices (diagnostics / tests).
  ConfusionMatrix cm_edam, cm_base, cm_full;
};

struct Fig7Series {
  std::string condition;
  std::vector<Fig7Point> points;

  double mean(double Fig7Point::* field) const;
};

struct Fig7Config {
  AsmcapConfig asmcap;
  CurrentDomainParams edam;
  KrakenLikeConfig kraken;
  bool edam_sr_enabled = false;  ///< EDAM's own rotation strategy.
  /// Worker threads for the signal precomputation and the per-threshold
  /// replay. Every threshold forks its own noise stream, so results are
  /// worker-count independent.
  std::size_t workers = 1;
  /// Deployment geometry: how many banks the stored rows are sharded
  /// across. run() rejects datasets that exceed shards x bank capacity
  /// (previously capacity was silently ignored). The replay's accuracy is
  /// shard-invariant — every per-pair signal is silicon-deterministic and
  /// every noise stream is keyed by (arm, query, row), never by bank
  /// placement or by another arm's schedule — so larger databases only
  /// need a larger `shards` here.
  std::size_t shards = 1;
};

class Fig7Runner {
 public:
  explicit Fig7Runner(Fig7Config config = {}) : config_(config) {}

  /// Runs the sweep on a dataset; `thresholds` must be sorted ascending.
  Fig7Series run(const Dataset& dataset,
                 const std::vector<std::size_t>& thresholds, Rng& rng) const;

  const Fig7Config& config() const { return config_; }

 private:
  Fig7Config config_;
};

// ------------------------------------------------- sharded deployment -----

/// Accuracy + energy comparison on a multi-bank database: the sharded
/// accelerator (the paper's high-recall filter, scaled past one bank's
/// capacity) and the batched EDAM comparator against the Kraken-like exact
/// k-mer classifier, with the CM-CPU baseline supplying both the
/// gold-standard decisions and the modelled host cost. This is the
/// Fig. 7-style comparison for databases that do not fit a single bank.
struct ShardedComparisonConfig {
  AsmcapConfig bank;          ///< ONE bank's geometry.
  std::size_t shards = 2;
  std::size_t threshold = 8;
  StrategyMode mode = StrategyMode::Full;
  KrakenLikeConfig kraken;
  CmCpuConfig cmcpu;
  /// EDAM contender (the paper's primary comparator, batched through its
  /// own engine). Geometry and ideal_sensing mirror `bank` at run time
  /// (array_count is raised to fit the dataset); only the current-domain
  /// process parameters and the SR schedule are taken from here.
  EdamConfig edam;
  /// Which EDAM backend runs the batch (circuit = cell-accurate,
  /// functional = fast with identical decisions under ideal sensing).
  BackendKind edam_backend = BackendKind::Circuit;
  std::size_t workers = 1;
  /// Sketch-based shard pruning for the ASMCap arm (bank.pruning is
  /// overridden with this). Default ON: decisions are bit-identical
  /// either way (asmcap/sketch.h), and skipping provably-hitless banks is
  /// how a real deployment would run, so the reported ASMCap energy stays
  /// honest instead of charging every bank for every read.
  bool prune_shards = true;
  /// Live-mutation arm: after the frozen comparison, delete the LAST
  /// `live_block` reference rows (a contamination block), re-query, then
  /// re-insert the same rows under fresh ids, re-query again, and compact.
  /// Accuracy over the live rows must be unharmed at every step — this is
  /// the end-to-end exercise of the epoch-snapshotted database under the
  /// full evaluation pipeline. Fills the live_* result fields.
  bool live_mutation = false;
  std::size_t live_block = 8;
};

struct ShardedComparisonResult {
  std::size_t segments = 0;
  std::size_t shards = 0;
  ConfusionMatrix cm_asmcap;
  ConfusionMatrix cm_edam;
  ConfusionMatrix cm_kraken;
  double asmcap_f1 = 0.0;
  double edam_f1 = 0.0;
  double kraken_f1 = 0.0;
  /// Aggregate router-ledger totals for the whole query batch. With
  /// prune_shards, the energy covers only the banks actually probed.
  double accel_latency_seconds = 0.0;
  double accel_energy_joules = 0.0;
  /// Sketch-probe outcome over the batch (zero when prune_shards off).
  std::size_t banks_probed = 0;
  std::size_t banks_pruned = 0;
  /// banks_pruned / (banks_probed + banks_pruned); 0 when pruning is off.
  double prune_rate = 0.0;
  /// EDAM batch totals (latency summed in read order, like the ledger's).
  double edam_latency_seconds = 0.0;
  double edam_energy_joules = 0.0;
  /// Modelled CM-CPU cost for the same batch (the exact host doing all
  /// the work itself, Fig. 8's normalisation subject).
  double cmcpu_seconds = 0.0;
  double cmcpu_joules = 0.0;
  /// Live-mutation arm (config.live_mutation; zero / false otherwise).
  std::size_t live_deleted = 0;     ///< Rows tombstoned then re-inserted.
  double live_f1_after_delete = 0.0;    ///< F1 over the surviving rows.
  double live_f1_after_reinsert = 0.0;  ///< F1 incl. the re-inserted rows.
  bool live_dead_rows_silent = false;  ///< No dead row ever matched.
  std::uint64_t live_final_epoch = 0;  ///< Epoch number after compact().
};

/// Runs the comparison on a dataset whose rows may span several banks.
/// Throws DbError(CapacityExceeded) when the rows exceed the sharded
/// capacity.
ShardedComparisonResult run_sharded_comparison(
    const ShardedComparisonConfig& config, const Dataset& dataset);

// ---------------------------------------------------------------- Table I --

struct Table1Row {
  std::string quantity;
  std::string edam;
  std::string asmcap;
  double ratio = 0.0;  ///< EDAM / ASMCap.
};

std::vector<Table1Row> run_table1(const ProcessParams& process);

// ------------------------------------------------------------------ §V-B --

struct BreakdownResult {
  double area_total = 0.0;         ///< [m^2]
  double area_cells_fraction = 0;  ///< > 0.99
  double power_total = 0.0;        ///< [W]
  double power_cells_fraction = 0.0;
  double power_sr_fraction = 0.0;
  double power_sa_fraction = 0.0;
};

BreakdownResult run_breakdown(const ProcessParams& process, std::size_t rows,
                              std::size_t cols);

// ------------------------------------------------------------------ §V-D --

struct StatesResult {
  std::size_t edam_states = 0;    ///< analytic, paper: 44
  std::size_t asmcap_states = 0;  ///< analytic, paper: 566
};

StatesResult run_states(const ProcessParams& process);

// ------------------------------------------- read-length scaling (§II-C) --

/// The paper argues EDAM's timing-dependent current sensing "limits the
/// read length" while ASMCap's 566 distinguishable states support much
/// longer rows. This experiment quantifies it: F1 of both accelerators
/// (no correction strategies) as the row width grows, at a
/// length-proportional threshold.
struct ReadLengthPoint {
  std::size_t read_length = 0;
  std::size_t threshold = 0;
  double edam_f1 = 0.0;
  double asmcap_f1 = 0.0;
};

struct ReadLengthConfig {
  std::vector<std::size_t> lengths{64, 128, 256, 512, 1024};
  std::size_t rows = 96;
  std::size_t reads = 192;
  /// Threshold as a fraction of the read length: slightly above the
  /// Condition-A expected edit load (~1.1 %/base), so positive decisions
  /// sit near the boundary where sensing resolution matters.
  double threshold_fraction = 0.015;
  ErrorRates rates = ErrorRates::condition_a();
};

/// Fork salts of the read-length sweep's two stream domains. The dataset
/// synthesis and the experiment replay of one length must never share a
/// stream with ANY other (domain, length) pair — the seed-era salts
/// (`length` and `length + 1`) collided for consecutive lengths, coupling
/// length L's replay noise to length L+1's dataset. Disjoint high-bit
/// domains make every pair unique (tested in test_experiment).
constexpr std::uint64_t readlength_dataset_salt(std::size_t length) {
  return 0xDA7A'0000'0000'0000ULL | static_cast<std::uint64_t>(length);
}
constexpr std::uint64_t readlength_run_salt(std::size_t length) {
  return 0x4E55'0000'0000'0000ULL | static_cast<std::uint64_t>(length);
}

std::vector<ReadLengthPoint> run_readlength(const ReadLengthConfig& config,
                                            const ProcessParams& process,
                                            Rng& rng);

}  // namespace asmcap
