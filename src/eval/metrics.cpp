#include "eval/metrics.h"

#include <stdexcept>

namespace asmcap {

void ConfusionMatrix::add(bool predicted, bool actual) {
  if (predicted && actual)
    ++tp;
  else if (predicted && !actual)
    ++fp;
  else if (!predicted && actual)
    ++fn;
  else
    ++tn;
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  tp += other.tp;
  fp += other.fp;
  tn += other.tn;
  fn += other.fn;
}

double ConfusionMatrix::sensitivity() const {
  const std::size_t denom = tp + fn;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double ConfusionMatrix::precision() const {
  const std::size_t denom = tp + fp;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double ConfusionMatrix::f1() const {
  const double s = sensitivity();
  const double p = precision();
  return (s + p) == 0.0 ? 0.0 : 2.0 * s * p / (s + p);
}

double ConfusionMatrix::accuracy() const {
  const std::size_t denom = total();
  return denom == 0 ? 0.0
                    : static_cast<double>(tp + tn) / static_cast<double>(denom);
}

ConfusionMatrix confusion_from(const std::vector<bool>& predicted,
                               const std::vector<bool>& actual) {
  if (predicted.size() != actual.size())
    throw std::invalid_argument("confusion_from: size mismatch");
  ConfusionMatrix matrix;
  for (std::size_t i = 0; i < predicted.size(); ++i)
    matrix.add(predicted[i], actual[i]);
  return matrix;
}

double normalized_f1(double f1, double baseline_f1) {
  return baseline_f1 <= 0.0 ? 0.0 : f1 / baseline_f1;
}

}  // namespace asmcap
