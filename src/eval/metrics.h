#pragma once
// Accuracy metrics (paper Eq. 3/4): sensitivity, precision, and F1 over
// (read, row) classification pairs, plus the Kraken2-normalised form.

#include <cstddef>
#include <vector>

namespace asmcap {

struct ConfusionMatrix {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t tn = 0;
  std::size_t fn = 0;

  void add(bool predicted, bool actual);
  void merge(const ConfusionMatrix& other);
  std::size_t total() const { return tp + fp + tn + fn; }

  /// TP / (TP + FN); 0 when undefined.
  double sensitivity() const;
  /// TP / (TP + FP); 0 when undefined.
  double precision() const;
  /// Harmonic mean of sensitivity and precision; 0 when undefined.
  double f1() const;
  double accuracy() const;
};

/// Builds a confusion matrix from parallel prediction/truth vectors.
ConfusionMatrix confusion_from(const std::vector<bool>& predicted,
                               const std::vector<bool>& actual);

/// F1 of `score` normalised by a baseline F1 (the Fig. 7 right-hand
/// panels divide by F1(Kraken2)). Returns 0 when the baseline is 0.
double normalized_f1(double f1, double baseline_f1);

}  // namespace asmcap
