#include "eval/report.h"

#include <cstdio>

namespace asmcap {

Table fig7_table(const Fig7Series& series) {
  Table table({"T", "EDAM F1(%)", "ASMCap w/o H&T F1(%)", "+HDAC F1(%)",
               "+TASR F1(%)", "ASMCap w/ H&T F1(%)", "Kraken2-like F1(%)"});
  for (const Fig7Point& point : series.points) {
    table.new_row()
        .add_cell(point.threshold)
        .add_cell(100.0 * point.edam, 4)
        .add_cell(100.0 * point.asmcap_base, 4)
        .add_cell(100.0 * point.asmcap_hdac, 4)
        .add_cell(100.0 * point.asmcap_tasr, 4)
        .add_cell(100.0 * point.asmcap_full, 4)
        .add_cell(100.0 * point.kraken, 4);
  }
  return table;
}

Table fig7_normalized_table(const Fig7Series& series) {
  Table table({"T", "EDAM", "ASMCap w/o H&T", "ASMCap w/ H&T"});
  for (const Fig7Point& point : series.points) {
    table.new_row()
        .add_cell(point.threshold)
        .add_cell(normalized_f1(point.edam, point.kraken), 4)
        .add_cell(normalized_f1(point.asmcap_base, point.kraken), 4)
        .add_cell(normalized_f1(point.asmcap_full, point.kraken), 4);
  }
  return table;
}

Table table1_table(const std::vector<Table1Row>& rows) {
  Table table({"Quantity", "EDAM", "ASMCap", "EDAM/ASMCap"});
  for (const Table1Row& row : rows) {
    table.new_row()
        .add_cell(row.quantity)
        .add_cell(row.edam)
        .add_cell(row.asmcap)
        .add_cell(format_ratio(row.ratio));
  }
  return table;
}

Table breakdown_table(const BreakdownResult& breakdown) {
  Table table({"Quantity", "Value"});
  // Areas in mm^2 explicitly (SI prefixes don't compose with squared units).
  char area_mm2[32];
  std::snprintf(area_mm2, sizeof area_mm2, "%.2fmm^2",
                breakdown.area_total * 1e6);
  table.new_row().add_cell("Array area").add_cell(std::string(area_mm2));
  table.new_row().add_cell("Area: cells fraction").add_cell(
      breakdown.area_cells_fraction, 4);
  table.new_row().add_cell("Array power").add_cell(
      format_si(breakdown.power_total, "W"));
  table.new_row().add_cell("Power: cells fraction").add_cell(
      breakdown.power_cells_fraction, 3);
  table.new_row().add_cell("Power: shift-register fraction").add_cell(
      breakdown.power_sr_fraction, 3);
  table.new_row().add_cell("Power: sense-amp fraction").add_cell(
      breakdown.power_sa_fraction, 3);
  return table;
}

Table states_table(const StatesResult& states) {
  Table table({"Scheme", "Distinguishable states (3-sigma)"});
  table.new_row().add_cell("EDAM (current domain, 2.5% sigma_I)").add_cell(
      states.edam_states);
  table.new_row().add_cell("ASMCap (charge domain, 1.4% sigma_C)").add_cell(
      states.asmcap_states);
  return table;
}

void print_report(std::ostream& os, const std::string& title,
                  const Table& table) {
  os << "== " << title << " ==\n" << table.to_text() << "\n";
}

}  // namespace asmcap
