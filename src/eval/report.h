#pragma once
// Report printers: render the experiment results as the paper's tables and
// figure series (plain text + CSV).

#include <ostream>

#include "eval/experiment.h"
#include "util/table.h"

namespace asmcap {

/// Fig. 7 as a table: one row per threshold, absolute F1 columns.
Table fig7_table(const Fig7Series& series);

/// Fig. 7 normalised panels: F1 / F1(Kraken2).
Table fig7_normalized_table(const Fig7Series& series);

/// Table I.
Table table1_table(const std::vector<Table1Row>& rows);

/// §V-B breakdown.
Table breakdown_table(const BreakdownResult& breakdown);

/// §V-D distinguishable states.
Table states_table(const StatesResult& states);

/// Convenience: print any table with a heading.
void print_report(std::ostream& os, const std::string& title,
                  const Table& table);

}  // namespace asmcap
