#include "eval/sweep.h"

#include <stdexcept>

#include "align/edit_distance.h"
#include "align/edstar.h"
#include "align/hamming.h"
#include "util/thread_pool.h"

namespace asmcap {

DatasetSignals::DatasetSignals(const Dataset& dataset,
                               const AsmcapConfig& config,
                               const CurrentDomainParams& edam_params,
                               std::size_t ed_cap, Rng& rng,
                               std::size_t workers)
    : dataset_(&dataset),
      queries_(dataset.queries.size()),
      rows_(dataset.rows.size()),
      ed_cap_(ed_cap),
      rotations_(config.tasr.rotations) {
  if (queries_ == 0 || rows_ == 0)
    throw std::invalid_argument("DatasetSignals: empty dataset");
  const std::size_t cols = dataset.rows.front().size();

  // Manufacture the silicon both accelerators would use for these rows.
  Rng asmcap_silicon = rng.fork(0xA51C);
  Rng edam_silicon = rng.fork(0xEDA2);
  asmcap_readout_ = std::make_unique<ChargeArrayReadout>(
      rows_, cols, config.process.charge, asmcap_silicon);
  edam_readout_ = std::make_unique<CurrentArrayReadout>(
      rows_, cols, edam_params, edam_silicon);

  // Every (query, row) pair depends only on the dataset and the silicon
  // manufactured above, so queries precompute independently and in
  // parallel; results are written by index.
  pairs_.resize(queries_ * rows_);
  ThreadPool pool(workers);
  pool.parallel_for(queries_, [&](std::size_t q) {
    const Sequence& read = dataset.queries[q].read;
    // The rotation schedule is shared by all rows of a query.
    const auto rotations =
        rotation_schedule(read, config.tasr.rotations, config.tasr.direction);
    for (std::size_t r = 0; r < rows_; ++r) {
      const Sequence& row = dataset.rows[r];
      PairSignals& signals = pairs_[q * rows_ + r];

      signals.ed = static_cast<std::uint16_t>(
          banded_edit_distance(row, read, ed_cap_).distance);

      const BitVec hd_mask = hamming_mismatch_mask(row, read);
      signals.hd = static_cast<std::uint16_t>(hd_mask.popcount());
      signals.vml_hd = asmcap_readout_->settle_row(r, hd_mask);

      const BitVec star_mask = ed_star_mismatch_mask(row, read);
      signals.ed_star = static_cast<std::uint16_t>(star_mask.popcount());
      signals.vml_ed_star = asmcap_readout_->settle_row(r, star_mask);
      signals.edam_drop = edam_readout_->drop_row(r, star_mask);

      signals.rot_ed_star.reserve(rotations.size() - 1);
      signals.rot_vml.reserve(rotations.size() - 1);
      signals.rot_edam_drop.reserve(rotations.size() - 1);
      for (std::size_t k = 1; k < rotations.size(); ++k) {
        const BitVec rot_mask = ed_star_mismatch_mask(row, rotations[k]);
        signals.rot_ed_star.push_back(
            static_cast<std::uint16_t>(rot_mask.popcount()));
        signals.rot_vml.push_back(asmcap_readout_->settle_row(r, rot_mask));
        signals.rot_edam_drop.push_back(edam_readout_->drop_row(r, rot_mask));
      }
    }
  });
}

const PairSignals& DatasetSignals::pair(std::size_t query,
                                        std::size_t row) const {
  if (query >= queries_ || row >= rows_)
    throw std::out_of_range("DatasetSignals::pair");
  return pairs_[query * rows_ + row];
}

bool DatasetSignals::truth(std::size_t query, std::size_t row,
                           std::size_t threshold) const {
  if (threshold > ed_cap_)
    throw std::invalid_argument("DatasetSignals::truth: threshold above cap");
  return pair(query, row).ed <= threshold;
}

}  // namespace asmcap
