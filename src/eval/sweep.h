#pragma once
// Threshold-sweep infrastructure. Ground truth and all threshold-
// independent per-pair quantities (exact ED, HD, ED*, rotated ED*s, and the
// systematic analog signals of both sensing schemes) are computed once per
// dataset; each threshold then only replays the cheap decision logic with
// fresh per-search noise. This is what makes the full Fig. 7 sweep run in
// seconds while staying faithful to the hardware models.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "asmcap/config.h"
#include "cam/charge_readout.h"
#include "cam/current_readout.h"
#include "genome/dataset.h"

namespace asmcap {

/// Threshold-independent state of one (query, row) pair.
struct PairSignals {
  std::uint16_t ed = 0;        ///< exact edit distance, capped at ed_cap.
  std::uint16_t hd = 0;        ///< Hamming distance.
  std::uint16_t ed_star = 0;   ///< ED* of the unrotated read.
  double vml_ed_star = 0.0;    ///< ASMCap settled V_ML, ED* mode.
  double vml_hd = 0.0;         ///< ASMCap settled V_ML, HD mode.
  double edam_drop = 0.0;      ///< EDAM nominal discharge, ED* mode.
  /// Rotated-read signals in rotation_schedule order (without the original).
  std::vector<std::uint16_t> rot_ed_star;
  std::vector<double> rot_vml;
  std::vector<double> rot_edam_drop;
};

/// Precomputed signals for a whole dataset: pair (q, r) at index
/// q * rows + r. Owns the manufactured silicon of both accelerators so
/// decisions can be replayed at any threshold.
class DatasetSignals {
 public:
  /// `ed_cap` must be at least the largest threshold that will be swept.
  /// Per-pair precomputation fans out across `workers` threads (every pair
  /// is silicon-deterministic, so the result is worker-count independent).
  DatasetSignals(const Dataset& dataset, const AsmcapConfig& config,
                 const CurrentDomainParams& edam_params, std::size_t ed_cap,
                 Rng& rng, std::size_t workers = 1);

  const PairSignals& pair(std::size_t query, std::size_t row) const;
  std::size_t queries() const { return queries_; }
  std::size_t rows() const { return rows_; }
  std::size_t ed_cap() const { return ed_cap_; }
  std::size_t rotations() const { return rotations_; }

  /// Ground truth at a threshold (requires threshold <= ed_cap).
  bool truth(std::size_t query, std::size_t row, std::size_t threshold) const;

  const ChargeArrayReadout& asmcap_readout() const { return *asmcap_readout_; }
  const CurrentArrayReadout& edam_readout() const { return *edam_readout_; }
  const Dataset& dataset() const { return *dataset_; }

 private:
  const Dataset* dataset_;
  std::size_t queries_ = 0;
  std::size_t rows_ = 0;
  std::size_t ed_cap_ = 0;
  std::size_t rotations_ = 0;
  std::vector<PairSignals> pairs_;
  std::unique_ptr<ChargeArrayReadout> asmcap_readout_;
  std::unique_ptr<CurrentArrayReadout> edam_readout_;
};

}  // namespace asmcap
