#include "genome/base.h"

namespace asmcap {

char to_char(Base b) {
  static constexpr char kChars[kBaseCount] = {'A', 'C', 'G', 'T'};
  return kChars[code_of(b)];
}

std::optional<Base> base_from_char(char c) {
  switch (c) {
    case 'A':
    case 'a':
      return Base::A;
    case 'C':
    case 'c':
      return Base::C;
    case 'G':
    case 'g':
      return Base::G;
    case 'T':
    case 't':
      return Base::T;
    default:
      return std::nullopt;
  }
}

std::string_view alphabet() { return "ACGT"; }

}  // namespace asmcap
