#pragma once
// DNA base alphabet: 2-bit encoding, ASCII conversion, complementing.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace asmcap {

/// The four DNA bases in their canonical 2-bit encoding.
enum class Base : std::uint8_t { A = 0, C = 1, G = 2, T = 3 };

inline constexpr int kBaseCount = 4;

/// 2-bit code of a base.
constexpr std::uint8_t code_of(Base b) { return static_cast<std::uint8_t>(b); }

/// Base from a 2-bit code (masked to 2 bits, never throws).
constexpr Base base_from_code(std::uint8_t code) {
  return static_cast<Base>(code & 0x3u);
}

/// ASCII character of a base ('A','C','G','T').
char to_char(Base b);

/// Parses an ASCII base (case-insensitive). Returns nullopt for anything
/// outside {A,C,G,T}; ambiguity codes like 'N' are not representable in the
/// 2-bit alphabet and must be resolved by the caller.
std::optional<Base> base_from_char(char c);

/// Watson-Crick complement (A<->T, C<->G).
constexpr Base complement(Base b) {
  return static_cast<Base>(3u - static_cast<std::uint8_t>(b));
}

/// Human-readable alphabet, e.g. for diagnostics: "ACGT".
std::string_view alphabet();

}  // namespace asmcap
