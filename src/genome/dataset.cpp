#include "genome/dataset.h"

#include <stdexcept>

namespace asmcap {

Dataset build_dataset(const DatasetConfig& config, Rng& rng) {
  if (config.rows == 0 || config.reads == 0 || config.segment_length == 0)
    throw std::invalid_argument("build_dataset: empty dimensions");
  if (config.contaminant_fraction < 0.0 || config.contaminant_fraction > 1.0)
    throw std::invalid_argument("build_dataset: bad contaminant fraction");

  Dataset dataset;
  dataset.rates = config.rates;
  dataset.name = config.name;

  // Reference long enough for `rows` non-overlapping segments plus slack the
  // read simulator needs for repadding after deletions.
  const std::size_t reference_length =
      (config.rows + 2) * config.segment_length;
  const Sequence reference =
      generate_reference(reference_length, config.reference_model, rng);
  dataset.rows = segment_reference(reference, config.segment_length);
  dataset.rows.resize(config.rows);

  ReadSimConfig sim_config;
  sim_config.read_length = config.segment_length;
  sim_config.rates = config.rates;
  const ReadSimulator simulator(reference, sim_config);

  // Contaminant reads come from an unrelated genome (different seed stream),
  // so they should not match any stored row.
  const Sequence contaminant_genome = generate_reference(
      4 * config.segment_length + 2 * config.segment_length,
      config.reference_model, rng);
  const ReadSimulator contaminant_simulator(contaminant_genome, sim_config);

  dataset.queries.reserve(config.reads);
  for (std::size_t i = 0; i < config.reads; ++i) {
    DatasetQuery query;
    if (rng.bernoulli(config.contaminant_fraction)) {
      const SimulatedRead read = contaminant_simulator.simulate(rng);
      query.read = read.read;
      query.true_row = dataset.rows.size();  // sentinel: no true row
      query.substitutions = read.substitutions;
      query.insertions = read.insertions;
      query.deletions = read.deletions;
    } else {
      // Row-aligned origin so the read's window coincides with one stored row.
      const std::size_t row = static_cast<std::size_t>(rng.below(config.rows));
      const SimulatedRead read =
          simulator.simulate_at(row * config.segment_length, rng);
      query.read = read.read;
      query.true_row = row;
      query.substitutions = read.substitutions;
      query.insertions = read.insertions;
      query.deletions = read.deletions;
    }
    dataset.queries.push_back(std::move(query));
  }
  return dataset;
}

DatasetConfig condition_a_config(std::size_t rows, std::size_t reads) {
  DatasetConfig config;
  config.rows = rows;
  config.reads = reads;
  config.rates = ErrorRates::condition_a();
  config.name = "Condition A (es=1%, ei=ed=0.05%)";
  return config;
}

DatasetConfig condition_b_config(std::size_t rows, std::size_t reads) {
  DatasetConfig config;
  config.rows = rows;
  config.reads = reads;
  config.rates = ErrorRates::condition_b();
  config.name = "Condition B (es=0.1%, ei=ed=0.5%)";
  return config;
}

}  // namespace asmcap
