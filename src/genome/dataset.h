#pragma once
// Metagenomic evaluation dataset builder. Reproduces the paper's setup:
// a reference is segmented into CAM rows; 256-base reads are extracted from
// row-aligned positions and passed through the edit model (Condition A or
// B); every (read, row) pair is then a classification instance whose ground
// truth is the exact edit distance (computed by the eval layer).

#include <cstddef>
#include <string>
#include <vector>

#include "genome/edits.h"
#include "genome/readsim.h"
#include "genome/reference.h"
#include "genome/sequence.h"
#include "util/rng.h"

namespace asmcap {

/// A read plus the identity of the row it was sequenced from.
struct DatasetQuery {
  Sequence read;
  std::size_t true_row = 0;      ///< Index into Dataset::rows.
  std::size_t substitutions = 0;
  std::size_t insertions = 0;
  std::size_t deletions = 0;
};

struct Dataset {
  std::vector<Sequence> rows;       ///< Reference segments stored in the CAMs.
  std::vector<DatasetQuery> queries;
  ErrorRates rates;                 ///< The error condition used.
  std::string name;                 ///< e.g. "Condition A".

  std::size_t pair_count() const { return rows.size() * queries.size(); }
};

struct DatasetConfig {
  std::size_t segment_length = 256;  ///< Read length == row length.
  std::size_t rows = 256;            ///< Stored reference segments.
  std::size_t reads = 512;           ///< Simulated reads.
  ErrorRates rates = ErrorRates::condition_a();
  ReferenceModel reference_model;
  std::string name = "Condition A";
  /// Fraction of reads drawn from sequences absent from the stored rows
  /// (contaminant reads — these should match nothing). Models the
  /// metagenomic mixture of the paper's datasets.
  double contaminant_fraction = 0.1;
};

/// Builds a dataset deterministically from the seed embedded in `rng`.
Dataset build_dataset(const DatasetConfig& config, Rng& rng);

/// Convenience constructors for the paper's two conditions.
DatasetConfig condition_a_config(std::size_t rows = 256, std::size_t reads = 512);
DatasetConfig condition_b_config(std::size_t rows = 256, std::size_t reads = 512);

}  // namespace asmcap
