#include "genome/edits.h"

#include <algorithm>
#include <stdexcept>

namespace asmcap {

std::size_t EditedSequence::count(EditKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(edits.begin(), edits.end(),
                    [kind](const Edit& e) { return e.kind == kind; }));
}

Base substitute_base(Base current, double transition_fraction, Rng& rng) {
  if (rng.bernoulli(transition_fraction)) return transition_of(current);
  // Transversion: the two bases of the other ring class, equally likely.
  // complement(b) and transition_of(complement(b)) are exactly those two.
  const Base tv1 = complement(current);
  const Base tv2 = transition_of(tv1);
  return rng.bernoulli(0.5) ? tv1 : tv2;
}

EditedSequence inject_edits(const Sequence& original, const ErrorRates& rates,
                            Rng& rng) {
  if (rates.total() > 1.0)
    throw std::invalid_argument("inject_edits: rates sum above 1");
  EditedSequence out;
  out.seq.reserve(original.size() + 8);
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double u = rng.uniform();
    if (u < rates.insertion) {
      // Insertion *before* base i, then the original base survives.
      const Base inserted = base_from_code(static_cast<std::uint8_t>(rng.below(4)));
      out.seq.push_back(inserted);
      out.seq.push_back(original[i]);
      out.edits.push_back({EditKind::Insertion, i, inserted});
    } else if (u < rates.insertion + rates.deletion) {
      out.edits.push_back({EditKind::Deletion, i, Base::A});
      // Base i dropped.
    } else if (u < rates.insertion + rates.deletion + rates.substitution) {
      const Base replacement =
          substitute_base(original[i], rates.transition_fraction, rng);
      out.seq.push_back(replacement);
      out.edits.push_back({EditKind::Substitution, i, replacement});
    } else {
      out.seq.push_back(original[i]);
    }
  }
  return out;
}

EditedSequence inject_indel_burst(const Sequence& original, EditKind kind,
                                  std::size_t run_length, Rng& rng) {
  if (kind == EditKind::Substitution)
    throw std::invalid_argument("inject_indel_burst: kind must be an indel");
  if (original.empty() || run_length == 0) return {original, {}};
  EditedSequence out;
  if (kind == EditKind::Deletion) {
    if (run_length >= original.size())
      throw std::invalid_argument("inject_indel_burst: run too long");
    const std::size_t pos = static_cast<std::size_t>(
        rng.below(original.size() - run_length + 1));
    for (std::size_t i = 0; i < original.size(); ++i) {
      if (i >= pos && i < pos + run_length) {
        out.edits.push_back({EditKind::Deletion, i, Base::A});
      } else {
        out.seq.push_back(original[i]);
      }
    }
  } else {
    const std::size_t pos =
        static_cast<std::size_t>(rng.below(original.size() + 1));
    for (std::size_t i = 0; i <= original.size(); ++i) {
      if (i == pos) {
        for (std::size_t r = 0; r < run_length; ++r) {
          const Base inserted =
              base_from_code(static_cast<std::uint8_t>(rng.below(4)));
          out.seq.push_back(inserted);
          out.edits.push_back({EditKind::Insertion, i, inserted});
        }
      }
      if (i < original.size()) out.seq.push_back(original[i]);
    }
  }
  return out;
}

EditedSequence inject_substitutions(const Sequence& original, std::size_t count,
                                    Rng& rng) {
  if (count > original.size())
    throw std::invalid_argument("inject_substitutions: count exceeds length");
  // Choose `count` distinct positions by partial Fisher-Yates over indices.
  std::vector<std::size_t> positions(original.size());
  for (std::size_t i = 0; i < positions.size(); ++i) positions[i] = i;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.below(positions.size() - i));
    std::swap(positions[i], positions[j]);
  }
  positions.resize(count);
  std::sort(positions.begin(), positions.end());

  EditedSequence out;
  out.seq = original;
  for (std::size_t pos : positions) {
    const Base replacement = substitute_base(original[pos], 1.0 / 3.0, rng);
    out.seq.set(pos, replacement);
    out.edits.push_back({EditKind::Substitution, pos, replacement});
  }
  return out;
}

std::string format_edits(const std::vector<Edit>& edits) {
  std::string text;
  for (const Edit& e : edits) {
    if (!text.empty()) text += ' ';
    switch (e.kind) {
      case EditKind::Substitution:
        text += "S@" + std::to_string(e.position) + "(" + to_char(e.base) + ")";
        break;
      case EditKind::Insertion:
        text += "I@" + std::to_string(e.position) + "(" + to_char(e.base) + ")";
        break;
      case EditKind::Deletion:
        text += "D@" + std::to_string(e.position);
        break;
    }
  }
  return text;
}

}  // namespace asmcap
