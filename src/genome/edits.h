#pragma once
// Edit-injection model: applies substitutions, insertions, and deletions at
// configurable per-base rates, recording the exact edit trace. This is the
// sequencing-error/genetic-variation model behind the paper's Condition A
// (substitution-dominant) and Condition B (indel-dominant) datasets.

#include <cstddef>
#include <string>
#include <vector>

#include "genome/sequence.h"
#include "util/rng.h"

namespace asmcap {

/// Per-base error rates. The paper's conditions:
///   Condition A: es = 1%,   ei = ed = 0.05%
///   Condition B: es = 0.1%, ei = ed = 0.5%
struct ErrorRates {
  double substitution = 0.0;  ///< e_s
  double insertion = 0.0;     ///< e_i
  double deletion = 0.0;      ///< e_d
  /// Probability that a substitution is a *transition* (A<->G, C<->T).
  /// 1/3 is the uniform-replacement value; real genomes/sequencers sit
  /// near 2/3 (the classic ts/tv ratio of ~2).
  double transition_fraction = 1.0 / 3.0;

  double indel() const { return insertion + deletion; }
  double total() const { return substitution + insertion + deletion; }

  static ErrorRates condition_a() { return {0.01, 0.0005, 0.0005}; }
  static ErrorRates condition_b() { return {0.001, 0.005, 0.005}; }
};

enum class EditKind : std::uint8_t { Substitution, Insertion, Deletion };

/// One applied edit, positioned in the coordinate system of the *original*
/// sequence (before any edits).
struct Edit {
  EditKind kind;
  std::size_t position;  ///< Original-sequence offset the edit applies at.
  Base base;             ///< New base (substitution/insertion); unused for deletion.
};

/// The outcome of injecting edits into a sequence.
struct EditedSequence {
  Sequence seq;             ///< The edited sequence (length may differ).
  std::vector<Edit> edits;  ///< Edits in left-to-right order.

  std::size_t count(EditKind kind) const;
  /// The exact number of edits applied == a (possibly loose) upper bound on
  /// the edit distance to the original.
  std::size_t edit_count() const { return edits.size(); }
};

/// Injects edits i.i.d. per original base: each base independently suffers a
/// substitution with probability es (to a uniformly random *different*
/// base), is preceded by an inserted uniform base with probability ei, and
/// is deleted with probability ed. Events are mutually exclusive per base in
/// this model (rates are small, so the difference from independent events is
/// negligible, and exclusivity keeps the edit trace an exact ED upper
/// bound).
EditedSequence inject_edits(const Sequence& original, const ErrorRates& rates,
                            Rng& rng);

/// Injects a *burst* of `run_length` consecutive insertions (or deletions)
/// at a random position — the consecutive-indel scenario that motivates
/// TASR (paper Fig. 6).
EditedSequence inject_indel_burst(const Sequence& original, EditKind kind,
                                  std::size_t run_length, Rng& rng);

/// Injects exactly `count` substitutions at distinct random positions — the
/// substitution-dominant scenario that motivates HDAC (paper Fig. 5).
EditedSequence inject_substitutions(const Sequence& original, std::size_t count,
                                    Rng& rng);

/// Human-readable rendering of an edit trace, e.g. "S@12(C) I@40(G) D@77".
std::string format_edits(const std::vector<Edit>& edits);

/// The transition partner of a base (A<->G, C<->T).
constexpr Base transition_of(Base b) {
  return base_from_code(static_cast<std::uint8_t>(code_of(b) ^ 0x2u));
}

/// True iff a->b is a transition (purine<->purine or pyrimidine<->pyrimidine).
constexpr bool is_transition(Base a, Base b) {
  return a != b && transition_of(a) == b;
}

/// Draws a replacement base != current with the given transition bias.
Base substitute_base(Base current, double transition_fraction, Rng& rng);

}  // namespace asmcap
