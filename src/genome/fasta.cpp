#include "genome/fasta.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/strings.h"

namespace asmcap {

void split_seq_header(std::string_view line, std::string& id,
                      std::string& comment) {
  line = trim(line);
  const std::size_t space = line.find_first_of(" \t");
  if (space == std::string_view::npos) {
    id = std::string(line);
    comment.clear();
  } else {
    id = std::string(line.substr(0, space));
    comment = std::string(trim(line.substr(space + 1)));
  }
}

std::vector<FastaRecord> read_fasta(std::istream& in,
                                    std::size_t* ambiguous_bases) {
  std::vector<FastaRecord> records;
  std::size_t ambiguous = 0;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view view = trim(line);
    if (view.empty()) continue;
    if (view.front() == '>') {
      records.emplace_back();
      split_seq_header(view.substr(1), records.back().id,
                       records.back().comment);
      continue;
    }
    if (records.empty())
      throw std::runtime_error("FASTA: sequence data before any header");
    for (char c : view) {
      if (const auto base = base_from_char(c)) {
        records.back().seq.push_back(*base);
      } else {
        ++ambiguous;
        records.back().seq.push_back(Base::A);
      }
    }
  }
  if (ambiguous_bases != nullptr) *ambiguous_bases = ambiguous;
  return records;
}

std::vector<FastaRecord> read_fasta_file(const std::string& path,
                                         std::size_t* ambiguous_bases) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open FASTA file: " + path);
  return read_fasta(in, ambiguous_bases);
}

void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t wrap) {
  if (wrap == 0) wrap = 70;
  for (const auto& record : records) {
    out << '>' << record.id;
    if (!record.comment.empty()) out << ' ' << record.comment;
    out << '\n';
    const std::string text = record.seq.to_string();
    for (std::size_t pos = 0; pos < text.size(); pos += wrap)
      out << text.substr(pos, wrap) << '\n';
  }
}

void write_fasta_file(const std::string& path,
                      const std::vector<FastaRecord>& records,
                      std::size_t wrap) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write FASTA file: " + path);
  write_fasta(out, records, wrap);
}

std::vector<FastqRecord> read_fastq(std::istream& in) {
  std::vector<FastqRecord> records;
  std::string header;
  while (std::getline(in, header)) {
    if (trim(header).empty()) continue;
    if (header.empty() || header[0] != '@')
      throw std::runtime_error("FASTQ: expected '@' header, got: " + header);
    std::string seq_line;
    std::string plus_line;
    std::string qual_line;
    if (!std::getline(in, seq_line) || !std::getline(in, plus_line) ||
        !std::getline(in, qual_line))
      throw std::runtime_error("FASTQ: truncated record: " + header);
    if (plus_line.empty() || plus_line[0] != '+')
      throw std::runtime_error("FASTQ: missing '+' separator: " + header);
    FastqRecord record;
    record.id = std::string(trim(std::string_view(header).substr(1)));
    std::string comment_unused;
    split_seq_header(std::string_view(header).substr(1), record.id,
                     comment_unused);
    for (char c : trim(seq_line)) {
      const auto base = base_from_char(c);
      record.seq.push_back(base.value_or(Base::A));
    }
    record.quality = std::string(trim(qual_line));
    if (record.quality.size() != record.seq.size())
      throw std::runtime_error("FASTQ: quality length mismatch: " + header);
    records.push_back(std::move(record));
  }
  return records;
}

void write_fastq(std::ostream& out, const std::vector<FastqRecord>& records) {
  for (const auto& record : records) {
    out << '@' << record.id << '\n'
        << record.seq.to_string() << '\n'
        << "+\n";
    if (record.quality.empty())
      out << std::string(record.seq.size(), 'I') << '\n';
    else
      out << record.quality << '\n';
  }
}

}  // namespace asmcap
