#pragma once
// Minimal FASTA / FASTQ I/O so real genome data (e.g. NCBI downloads) can be
// dropped into the experiments in place of the synthetic reference.

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "genome/sequence.h"

namespace asmcap {

/// Splits a header line (text after '>' / '@') into `id` (up to the first
/// whitespace) and `comment` (the trimmed remainder, possibly empty).
/// Shared by the whole-file readers below and genome/stream_reader.h so
/// both parse headers identically.
void split_seq_header(std::string_view line, std::string& id,
                      std::string& comment);

struct FastaRecord {
  std::string id;       ///< Text after '>' up to the first whitespace.
  std::string comment;  ///< Remainder of the header line (may be empty).
  Sequence seq;
};

/// Parses FASTA from a stream. Ambiguity codes ('N' etc.) are resolved
/// deterministically to 'A' and counted; the count is reported through
/// `ambiguous_bases` when non-null so callers can warn.
std::vector<FastaRecord> read_fasta(std::istream& in,
                                    std::size_t* ambiguous_bases = nullptr);

/// Reads a FASTA file from disk. Throws std::runtime_error if unreadable.
std::vector<FastaRecord> read_fasta_file(const std::string& path,
                                         std::size_t* ambiguous_bases = nullptr);

/// Writes records in FASTA with the given line wrap width.
void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t wrap = 70);

void write_fasta_file(const std::string& path,
                      const std::vector<FastaRecord>& records,
                      std::size_t wrap = 70);

struct FastqRecord {
  std::string id;
  Sequence seq;
  std::string quality;  ///< Phred+33; same length as seq.
};

/// Parses 4-line FASTQ records. Throws std::runtime_error on malformed input.
std::vector<FastqRecord> read_fastq(std::istream& in);

/// Writes FASTQ; if a record's quality string is empty a constant 'I'
/// (Q40) string is emitted.
void write_fastq(std::ostream& out, const std::vector<FastqRecord>& records);

}  // namespace asmcap
