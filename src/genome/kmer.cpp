#include "genome/kmer.h"

#include <stdexcept>

namespace asmcap {

Kmer pack_kmer(const Sequence& seq, std::size_t pos, std::size_t k) {
  if (k == 0 || k > kMaxKmerK)
    throw std::invalid_argument("pack_kmer: k must be in [1, 32]");
  if (pos + k > seq.size()) throw std::out_of_range("pack_kmer: out of range");
  Kmer packed = 0;
  for (std::size_t i = 0; i < k; ++i)
    packed = (packed << 2) | code_of(seq[pos + i]);
  return packed;
}

Sequence unpack_kmer(Kmer kmer, std::size_t k) {
  if (k == 0 || k > kMaxKmerK)
    throw std::invalid_argument("unpack_kmer: k must be in [1, 32]");
  Sequence seq;
  seq.reserve(k);
  for (std::size_t i = k; i-- > 0;)
    seq.push_back(base_from_code(static_cast<std::uint8_t>(kmer >> (2 * i)) & 0x3u));
  return seq;
}

std::vector<Kmer> extract_kmers(const Sequence& seq, std::size_t k) {
  std::vector<Kmer> kmers;
  if (k == 0 || k > kMaxKmerK)
    throw std::invalid_argument("extract_kmers: k must be in [1, 32]");
  if (seq.size() < k) return kmers;
  kmers.reserve(seq.size() - k + 1);
  const Kmer mask = k == 32 ? ~Kmer{0} : ((Kmer{1} << (2 * k)) - 1);
  Kmer rolling = pack_kmer(seq, 0, k);
  kmers.push_back(rolling);
  for (std::size_t pos = k; pos < seq.size(); ++pos) {
    rolling = ((rolling << 2) | code_of(seq[pos])) & mask;
    kmers.push_back(rolling);
  }
  return kmers;
}

Kmer canonical_kmer(Kmer kmer, std::size_t k) {
  // Reverse complement in the packed domain: complement = bitwise NOT of
  // each 2-bit code (since A=00 <-> T=11, C=01 <-> G=10), then reverse the
  // order of the 2-bit groups.
  Kmer rc = 0;
  Kmer src = ~kmer;  // complements every 2-bit lane at once
  for (std::size_t i = 0; i < k; ++i) {
    rc = (rc << 2) | (src & 0x3u);
    src >>= 2;
  }
  return kmer < rc ? kmer : rc;
}

std::uint64_t hash_kmer(Kmer kmer) {
  std::uint64_t z = kmer + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void KmerIndex::add_sequence(const Sequence& reference,
                             std::uint32_t sequence_id) {
  if (reference.size() < k_) return;
  const auto kmers = extract_kmers(reference, k_);
  for (std::size_t pos = 0; pos < kmers.size(); ++pos) {
    index_[kmers[pos]].push_back({sequence_id, static_cast<std::uint32_t>(pos)});
    ++total_entries_;
  }
}

const std::vector<KmerIndex::Hit>& KmerIndex::lookup(Kmer kmer) const {
  const auto it = index_.find(kmer);
  return it == index_.end() ? empty_ : it->second;
}

}  // namespace asmcap
