#pragma once
// k-mer extraction and hashing. Substrate for the SaVI seed-and-vote
// baseline and the Kraken2-like exact-matching classifier.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "genome/sequence.h"

namespace asmcap {

/// Packed k-mer (k <= 32) in 2 bits per base, leftmost base in the highest
/// occupied bit pair.
using Kmer = std::uint64_t;

inline constexpr std::size_t kMaxKmerK = 32;

/// Packs seq[pos, pos+k). Throws std::out_of_range / std::invalid_argument
/// on bad arguments.
Kmer pack_kmer(const Sequence& seq, std::size_t pos, std::size_t k);

/// Unpacks a k-mer back into a Sequence of length k.
Sequence unpack_kmer(Kmer kmer, std::size_t k);

/// All k-mers of a sequence in order (size() - k + 1 of them).
std::vector<Kmer> extract_kmers(const Sequence& seq, std::size_t k);

/// Canonical form: lexicographic minimum of the k-mer and its reverse
/// complement, the standard trick for strand-insensitive counting.
Kmer canonical_kmer(Kmer kmer, std::size_t k);

/// 64-bit mix hash (splitmix-style finalizer) for k-mer hashing.
std::uint64_t hash_kmer(Kmer kmer);

/// k-mer index: maps every k-mer of a reference to its occurrence positions.
/// This models the TCAM contents of SaVI and the database of the
/// Kraken-like classifier.
class KmerIndex {
 public:
  KmerIndex(std::size_t k) : k_(k) {}

  /// Indexes all k-mers of `reference`, tagging them with `sequence_id`.
  void add_sequence(const Sequence& reference, std::uint32_t sequence_id = 0);

  struct Hit {
    std::uint32_t sequence_id;
    std::uint32_t position;
  };

  /// Occurrence list (empty if absent).
  const std::vector<Hit>& lookup(Kmer kmer) const;

  std::size_t k() const { return k_; }
  std::size_t distinct_kmers() const { return index_.size(); }
  std::size_t total_entries() const { return total_entries_; }

 private:
  std::size_t k_;
  std::unordered_map<Kmer, std::vector<Hit>> index_;
  std::vector<Hit> empty_;
  std::size_t total_entries_ = 0;
};

}  // namespace asmcap
