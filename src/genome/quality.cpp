#include "genome/quality.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace asmcap {

double phred_to_error(char phred33) {
  const int q = phred33 - 33;
  if (q < 0) throw std::invalid_argument("phred_to_error: below '!'");
  return std::pow(10.0, -q / 10.0);
}

char error_to_phred(double error_probability) {
  if (error_probability <= 0.0) return static_cast<char>(33 + 41);  // cap Q41
  if (error_probability >= 1.0) return '!';
  const double q = -10.0 * std::log10(error_probability);
  const int clamped = std::clamp(static_cast<int>(q + 0.5), 0, 41);
  return static_cast<char>(33 + clamped);
}

double QualityProfile::phred_at(double t) const {
  t = std::clamp(t, 0.0, 1.0);
  return q_start + (q_end - q_start) * t;
}

double QualityProfile::error_at(double t) const {
  return std::pow(10.0, -phred_at(t) / 10.0);
}

double QualityProfile::mean_error() const {
  // Closed form of the integral of 10^{-(a+bt)/10} over [0,1].
  const double a = q_start;
  const double b = q_end - q_start;
  if (std::abs(b) < 1e-9) return std::pow(10.0, -a / 10.0);
  const double k = std::log(10.0) / 10.0;
  return (std::pow(10.0, -a / 10.0) - std::pow(10.0, -(a + b) / 10.0)) /
         (k * b);
}

QualityRead simulate_quality_read(const Sequence& reference,
                                  std::size_t origin, std::size_t length,
                                  const QualityProfile& profile, Rng& rng) {
  if (origin + length > reference.size())
    throw std::out_of_range("simulate_quality_read: window out of range");
  QualityRead out;
  out.origin = origin;
  out.read.reserve(length);
  out.quality.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    const double t = length > 1
                         ? static_cast<double>(i) /
                               static_cast<double>(length - 1)
                         : 0.0;
    const double error = profile.error_at(t);
    Base base = reference[origin + i];
    if (rng.bernoulli(error)) {
      const auto offset = static_cast<std::uint8_t>(rng.below(3)) + 1;
      base = base_from_code(
          static_cast<std::uint8_t>((code_of(base) + offset) & 0x3u));
      ++out.substitutions;
    }
    out.read.push_back(base);
    out.quality.push_back(error_to_phred(error));
  }
  return out;
}

std::vector<FastqRecord> to_fastq(const std::vector<QualityRead>& reads,
                                  const std::string& id_prefix) {
  std::vector<FastqRecord> records;
  records.reserve(reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    FastqRecord record;
    record.id = id_prefix + std::to_string(i) + "_pos" +
                std::to_string(reads[i].origin);
    record.seq = reads[i].read;
    record.quality = reads[i].quality;
    records.push_back(std::move(record));
  }
  return records;
}

double empirical_substitution_rate(const std::vector<QualityRead>& reads,
                                   const Sequence& reference,
                                   std::size_t length) {
  if (reads.empty() || length == 0) return 0.0;
  std::size_t mismatches = 0;
  std::size_t bases = 0;
  for (const QualityRead& read : reads) {
    for (std::size_t i = 0; i < length && i < read.read.size(); ++i) {
      mismatches += read.read[i] != reference[read.origin + i] ? 1u : 0u;
      ++bases;
    }
  }
  return bases == 0 ? 0.0
                    : static_cast<double>(mismatches) /
                          static_cast<double>(bases);
}

}  // namespace asmcap
