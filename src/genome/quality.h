#pragma once
// Quality-aware sequencing model: Phred quality strings and a read
// simulator whose per-base substitution probability follows a quality
// profile (errors cluster at read tails, as on real Illumina machines).
// Bridges the FASTQ I/O to the edit-injection model so real quality
// distributions can drive the accuracy experiments.

#include <cstdint>
#include <string>
#include <vector>

#include "genome/fasta.h"
#include "genome/sequence.h"
#include "util/rng.h"

namespace asmcap {

/// Phred+33 conversions.
double phred_to_error(char phred33);
char error_to_phred(double error_probability);

/// Read-tail degradation profile: quality starts at `q_start` and decays
/// linearly to `q_end` across the read (typical short-read behaviour).
struct QualityProfile {
  double q_start = 38.0;  ///< Phred score at base 0.
  double q_end = 22.0;    ///< Phred score at the last base.

  /// Phred score at relative position t in [0, 1].
  double phred_at(double t) const;
  /// Substitution probability at relative position t.
  double error_at(double t) const;
  /// Average substitution probability across the read.
  double mean_error() const;
};

/// A simulated read with its quality string.
struct QualityRead {
  Sequence read;
  std::string quality;     ///< Phred+33, same length as read.
  std::size_t origin = 0;  ///< Reference offset.
  std::size_t substitutions = 0;
};

/// Extracts a window at `origin` and injects quality-driven substitutions
/// (indels are left to the bulk ErrorRates model; quality strings only
/// describe miscalls).
QualityRead simulate_quality_read(const Sequence& reference,
                                  std::size_t origin, std::size_t length,
                                  const QualityProfile& profile, Rng& rng);

/// Converts a batch of quality reads to FASTQ records.
std::vector<FastqRecord> to_fastq(const std::vector<QualityRead>& reads,
                                  const std::string& id_prefix = "read");

/// Estimates the empirical substitution rate of a batch against the
/// reference (used to pre-process HDAC's p from real data).
double empirical_substitution_rate(const std::vector<QualityRead>& reads,
                                   const Sequence& reference,
                                   std::size_t length);

}  // namespace asmcap
