#include "genome/readsim.h"

#include <stdexcept>

namespace asmcap {

ReadSimulator::ReadSimulator(const Sequence& reference, ReadSimConfig config)
    : reference_(reference), config_(config) {
  if (config_.read_length == 0)
    throw std::invalid_argument("ReadSimulator: zero read length");
  if (reference_.size() < 2 * config_.read_length)
    throw std::invalid_argument(
        "ReadSimulator: reference must be at least twice the read length");
}

SimulatedRead ReadSimulator::simulate(Rng& rng) const {
  // Keep a read-length margin at the end so repadding can always extend.
  const std::size_t max_origin = reference_.size() - 2 * config_.read_length;
  return simulate_at(static_cast<std::size_t>(rng.below(max_origin + 1)), rng);
}

SimulatedRead ReadSimulator::simulate_at(std::size_t origin, Rng& rng) const {
  if (origin + config_.read_length > reference_.size())
    throw std::out_of_range("ReadSimulator::simulate_at: origin too large");

  const Sequence window = reference_.subseq(origin, config_.read_length);
  EditedSequence edited = inject_edits(window, config_.rates, rng);

  SimulatedRead out;
  out.origin = origin;
  out.edits = std::move(edited.edits);
  for (const Edit& e : out.edits) {
    switch (e.kind) {
      case EditKind::Substitution: ++out.substitutions; break;
      case EditKind::Insertion: ++out.insertions; break;
      case EditKind::Deletion: ++out.deletions; break;
    }
  }
  out.read = std::move(edited.seq);

  if (config_.repad_to_length) {
    // Trim overhang from insertions.
    if (out.read.size() > config_.read_length)
      out.read = out.read.subseq(0, config_.read_length);
    // Extend with the bases that follow the window (deletions shortened it).
    std::size_t next = origin + config_.read_length;
    while (out.read.size() < config_.read_length) {
      if (next >= reference_.size())
        throw std::logic_error("ReadSimulator: ran off reference while repadding");
      out.read.push_back(reference_[next++]);
    }
  }
  return out;
}

std::vector<SimulatedRead> ReadSimulator::simulate_batch(std::size_t count,
                                                         Rng& rng) const {
  std::vector<SimulatedRead> reads;
  reads.reserve(count);
  for (std::size_t i = 0; i < count; ++i) reads.push_back(simulate(rng));
  return reads;
}

}  // namespace asmcap
