#pragma once
// Read simulator: extracts windows from a reference and passes them through
// the edit-injection model, producing reads with known ground-truth origin.
// Mirrors the paper's setup: 256-base reads extracted from random positions
// in the (human) reference, then edits randomly injected.

#include <cstddef>
#include <vector>

#include "genome/edits.h"
#include "genome/sequence.h"
#include "util/rng.h"

namespace asmcap {

/// A simulated read with its provenance.
struct SimulatedRead {
  Sequence read;                ///< Exactly `read_length` bases.
  std::size_t origin = 0;       ///< Reference offset the window was taken from.
  std::vector<Edit> edits;      ///< Edits applied to the window.
  std::size_t substitutions = 0;
  std::size_t insertions = 0;
  std::size_t deletions = 0;
};

struct ReadSimConfig {
  std::size_t read_length = 256;
  ErrorRates rates;
  /// When edits change the window length, the read is trimmed (if longer) or
  /// extended with subsequent reference bases (if shorter) back to
  /// read_length, which is how fixed-length sequencers behave.
  bool repad_to_length = true;
};

class ReadSimulator {
 public:
  ReadSimulator(const Sequence& reference, ReadSimConfig config);

  /// One read from a uniformly random window.
  SimulatedRead simulate(Rng& rng) const;

  /// One read from the window starting at `origin`.
  SimulatedRead simulate_at(std::size_t origin, Rng& rng) const;

  /// A batch of independent reads.
  std::vector<SimulatedRead> simulate_batch(std::size_t count, Rng& rng) const;

  const Sequence& reference() const { return reference_; }
  const ReadSimConfig& config() const { return config_; }

 private:
  const Sequence& reference_;
  ReadSimConfig config_;
};

}  // namespace asmcap
