#include "genome/reference.h"

#include <stdexcept>

namespace asmcap {

namespace {

/// Draws one base from the stationary distribution implied by gc_content.
Base draw_base(double gc_content, Rng& rng) {
  const double u = rng.uniform();
  const double at_half = (1.0 - gc_content) / 2.0;
  const double gc_half = gc_content / 2.0;
  if (u < at_half) return Base::A;
  if (u < 2 * at_half) return Base::T;
  if (u < 2 * at_half + gc_half) return Base::G;
  return Base::C;
}

}  // namespace

Sequence generate_reference(std::size_t length, const ReferenceModel& model,
                            Rng& rng) {
  if (model.gc_content < 0.0 || model.gc_content > 1.0)
    throw std::invalid_argument("generate_reference: gc_content out of range");
  if (model.repeat_bias < 0.0 || model.repeat_bias >= 1.0)
    throw std::invalid_argument("generate_reference: repeat_bias out of range");

  Sequence genome;
  genome.reserve(length);
  Base previous = draw_base(model.gc_content, rng);
  genome.push_back(previous);
  while (genome.size() < length) {
    // First-order Markov chain: with probability repeat_bias repeat the
    // previous base, otherwise draw from the stationary distribution.
    Base next = rng.bernoulli(model.repeat_bias)
                    ? previous
                    : draw_base(model.gc_content, rng);
    genome.push_back(next);
    previous = next;
  }

  // Paste imperfect duplicated segments over the backbone to emulate
  // repetitive DNA: the duplicated copies are what make distinct reference
  // rows resemble each other, the regime where ED*'s hiding behaviour and
  // the correction strategies matter.
  if (model.duplication_fraction > 0.0 && model.duplication_length > 0 &&
      length > 2 * model.duplication_length) {
    const auto copies = static_cast<std::size_t>(
        model.duplication_fraction * static_cast<double>(length) /
        static_cast<double>(model.duplication_length));
    for (std::size_t c = 0; c < copies; ++c) {
      const std::size_t src = static_cast<std::size_t>(
          rng.below(length - model.duplication_length));
      const std::size_t dst = static_cast<std::size_t>(
          rng.below(length - model.duplication_length));
      for (std::size_t i = 0; i < model.duplication_length; ++i) {
        Base b = genome[src + i];
        if (rng.bernoulli(model.duplication_divergence))
          b = base_from_code(static_cast<std::uint8_t>(rng.below(4)));
        genome.set(dst + i, b);
      }
    }
  }
  return genome;
}

Sequence generate_uniform_reference(std::size_t length, Rng& rng) {
  return Sequence::random(length, rng);
}

std::vector<Sequence> segment_reference(const Sequence& reference,
                                        std::size_t segment_length,
                                        std::size_t stride) {
  if (segment_length == 0)
    throw std::invalid_argument("segment_reference: zero segment length");
  if (stride == 0) stride = segment_length;
  std::vector<Sequence> segments;
  for (std::size_t pos = 0; pos + segment_length <= reference.size();
       pos += stride)
    segments.push_back(reference.subseq(pos, segment_length));
  return segments;
}

ReferenceStats measure_reference(const Sequence& reference) {
  ReferenceStats stats;
  stats.length = reference.size();
  if (reference.empty()) return stats;
  std::size_t gc = 0;
  std::size_t adjacent_equal = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const Base b = reference[i];
    if (b == Base::G || b == Base::C) ++gc;
    if (i > 0 && reference[i - 1] == b) ++adjacent_equal;
  }
  stats.gc_content = static_cast<double>(gc) / static_cast<double>(stats.length);
  stats.adjacent_equal =
      stats.length < 2 ? 0.0
                       : static_cast<double>(adjacent_equal) /
                             static_cast<double>(stats.length - 1);
  return stats;
}

}  // namespace asmcap
