#pragma once
// Synthetic reference-genome generator. Substitutes for the NCBI human
// genome used in the paper: it reproduces the local statistics the ASMCap
// accuracy results depend on (base composition, short-range correlation,
// repeated segments) while remaining fully deterministic from a seed.

#include <cstddef>
#include <vector>

#include "genome/sequence.h"
#include "util/rng.h"

namespace asmcap {

/// Parameters of the synthetic genome model.
struct ReferenceModel {
  /// Overall GC content (human ~0.41).
  double gc_content = 0.41;
  /// First-order Markov persistence: probability that the next base repeats
  /// the previous one beyond its stationary probability. Human DNA exhibits
  /// mild short-range correlation; 0 yields an i.i.d. sequence.
  double repeat_bias = 0.05;
  /// Fraction of the genome covered by duplicated segments (tandem and
  /// interspersed repeats, human ~0.5 for repetitive classes overall; we
  /// default lower because only exact-ish repeats matter for matching).
  double duplication_fraction = 0.1;
  /// Length of each duplicated segment.
  std::size_t duplication_length = 300;
  /// Per-base divergence applied to duplicated copies (imperfect repeats).
  double duplication_divergence = 0.02;
};

/// Generates a synthetic reference of the given length.
Sequence generate_reference(std::size_t length, const ReferenceModel& model,
                            Rng& rng);

/// Convenience: i.i.d. uniform reference (the worst case for ED* hiding
/// statistics, used in property tests).
Sequence generate_uniform_reference(std::size_t length, Rng& rng);

/// Cuts a reference into consecutive fixed-length segments (the rows stored
/// in the CAM arrays). A final partial window is discarded, matching how the
/// accelerator tiles the reference. `stride` defaults to `segment_length`
/// (non-overlapping); smaller strides produce overlapping rows.
std::vector<Sequence> segment_reference(const Sequence& reference,
                                        std::size_t segment_length,
                                        std::size_t stride = 0);

/// Summary statistics used by tests to validate the generator.
struct ReferenceStats {
  double gc_content = 0.0;
  /// Probability that adjacent bases are equal.
  double adjacent_equal = 0.0;
  std::size_t length = 0;
};

ReferenceStats measure_reference(const Sequence& reference);

}  // namespace asmcap
