#include "genome/sequence.h"

#include <stdexcept>

namespace asmcap {

Sequence::Sequence(std::size_t n) : data_((n + 3) / 4, 0), size_(n) {}

Sequence::Sequence(std::initializer_list<Base> bases) {
  reserve(bases.size());
  for (Base b : bases) push_back(b);
}

Sequence Sequence::from_string(std::string_view text) {
  Sequence seq;
  seq.reserve(text.size());
  for (char c : text) {
    const auto base = base_from_char(c);
    if (!base)
      throw std::invalid_argument(std::string("Sequence: invalid base '") + c +
                                  "'");
    seq.push_back(*base);
  }
  return seq;
}

Sequence Sequence::random(std::size_t n, Rng& rng) {
  Sequence seq;
  seq.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    seq.push_back(base_from_code(static_cast<std::uint8_t>(rng.below(4))));
  return seq;
}

Base Sequence::at(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("Sequence::at");
  return get_unchecked(i);
}

void Sequence::set(std::size_t i, Base b) {
  if (i >= size_) throw std::out_of_range("Sequence::set");
  const std::size_t shift = (i & 3u) * 2;
  std::uint8_t& byte = data_[i >> 2];
  byte = static_cast<std::uint8_t>((byte & ~(0x3u << shift)) |
                                   (code_of(b) << shift));
}

void Sequence::push_back(Base b) {
  if ((size_ & 3u) == 0) data_.push_back(0);
  ++size_;
  set(size_ - 1, b);
}

void Sequence::clear() {
  data_.clear();
  size_ = 0;
}

Sequence Sequence::subseq(std::size_t pos, std::size_t len) const {
  if (pos + len > size_) throw std::out_of_range("Sequence::subseq");
  Sequence out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) out.push_back(get_unchecked(pos + i));
  return out;
}

void Sequence::insert(std::size_t pos, Base b) {
  if (pos > size_) throw std::out_of_range("Sequence::insert");
  push_back(Base::A);  // grow by one
  for (std::size_t i = size_ - 1; i > pos; --i) set(i, get_unchecked(i - 1));
  set(pos, b);
}

void Sequence::erase(std::size_t pos) {
  if (pos >= size_) throw std::out_of_range("Sequence::erase");
  for (std::size_t i = pos; i + 1 < size_; ++i) set(i, get_unchecked(i + 1));
  --size_;
  if ((size_ & 3u) == 0 && !data_.empty() && size_ / 4 < data_.size())
    data_.pop_back();
}

Sequence Sequence::rotated_left(std::size_t k) const {
  if (size_ == 0) return {};
  k %= size_;
  Sequence out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(get_unchecked((i + k) % size_));
  return out;
}

Sequence Sequence::rotated_right(std::size_t k) const {
  if (size_ == 0) return {};
  k %= size_;
  return rotated_left(size_ - k);
}

Sequence Sequence::reverse_complement() const {
  Sequence out;
  out.reserve(size_);
  for (std::size_t i = size_; i-- > 0;)
    out.push_back(complement(get_unchecked(i)));
  return out;
}

std::string Sequence::to_string() const {
  std::string text;
  text.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) text += to_char(get_unchecked(i));
  return text;
}

std::vector<std::uint64_t> Sequence::packed_words() const {
  std::vector<std::uint64_t> words((size_ + 31) / 32, 0);
  const std::size_t bytes = (size_ + 3) / 4;
  for (std::size_t b = 0; b < bytes; ++b)
    words[b >> 3] |= static_cast<std::uint64_t>(data_[b]) << ((b & 7u) * 8);
  // In-place edits can leave stale bits in the final partial byte; the
  // word-parallel kernels rely on tail bits being zero.
  if (const std::size_t tail = size_ % 32; tail != 0 && !words.empty())
    words.back() &= (std::uint64_t{1} << (2 * tail)) - 1;
  return words;
}

bool Sequence::operator==(const Sequence& other) const {
  if (size_ != other.size_) return false;
  for (std::size_t i = 0; i < size_; ++i)
    if (get_unchecked(i) != other.get_unchecked(i)) return false;
  return true;
}

std::size_t Sequence::mismatch_count(const Sequence& other) const {
  if (size_ != other.size_)
    throw std::invalid_argument("Sequence::mismatch_count: length mismatch");
  std::size_t count = 0;
  for (std::size_t i = 0; i < size_; ++i)
    count += get_unchecked(i) != other.get_unchecked(i) ? 1u : 0u;
  return count;
}

}  // namespace asmcap
