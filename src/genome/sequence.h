#pragma once
// 2-bit packed DNA sequence. This is the common currency between the genome
// substrate, the alignment algorithms, and the CAM functional model.

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "genome/base.h"
#include "util/rng.h"

namespace asmcap {

/// Immutable-size-friendly packed DNA string (4 bases per byte). Mutation is
/// supported in place (set/push_back); all index access is bounds-checked in
/// the at() form and unchecked in operator[].
class Sequence {
 public:
  Sequence() = default;
  /// Length-n sequence initialised to 'A'.
  explicit Sequence(std::size_t n);
  Sequence(std::initializer_list<Base> bases);

  /// Parses "ACGT..." (case-insensitive). Throws std::invalid_argument on
  /// characters outside the alphabet.
  static Sequence from_string(std::string_view text);

  /// Uniform random sequence of length n.
  static Sequence random(std::size_t n, Rng& rng);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Base operator[](std::size_t i) const { return get_unchecked(i); }
  Base at(std::size_t i) const;
  void set(std::size_t i, Base b);

  void push_back(Base b);
  void clear();
  void reserve(std::size_t n) { data_.reserve((n + 3) / 4); }

  /// Copy of the subsequence [pos, pos+len). Throws if out of range.
  Sequence subseq(std::size_t pos, std::size_t len) const;

  /// Inserts a base before position pos (pos == size() appends).
  void insert(std::size_t pos, Base b);

  /// Removes the base at position pos.
  void erase(std::size_t pos);

  /// Left-rotated copy: rotate_left(1) moves the first base to the end.
  Sequence rotated_left(std::size_t k) const;
  /// Right-rotated copy: rotate_right(1) moves the last base to the front.
  Sequence rotated_right(std::size_t k) const;

  /// Reverse complement (the opposite strand read 5'->3').
  Sequence reverse_complement() const;

  std::string to_string() const;

  /// 2-bit packed words for the word-parallel kernels: base i occupies bits
  /// [2*(i%32), 2*(i%32)+1] of word i/32; bits beyond size() are zero.
  std::vector<std::uint64_t> packed_words() const;

  bool operator==(const Sequence& other) const;

  /// Count of positions where the co-located bases differ; both sequences
  /// must have equal length (convenience used by tests; the align library
  /// provides the full API).
  std::size_t mismatch_count(const Sequence& other) const;

 private:
  Base get_unchecked(std::size_t i) const {
    return base_from_code(
        static_cast<std::uint8_t>(data_[i >> 2] >> ((i & 3u) * 2)) & 0x3u);
  }

  std::vector<std::uint8_t> data_;
  std::size_t size_ = 0;
};

}  // namespace asmcap
