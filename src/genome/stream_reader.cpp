#include "genome/stream_reader.h"

#include <cstdio>
#include <istream>
#include <utility>

#include "genome/fasta.h"
#include "util/strings.h"

#ifdef ASMCAP_HAVE_ZLIB
#include <zlib.h>
#endif

namespace asmcap {

namespace {

constexpr std::size_t kBufferSize = 64 * 1024;

std::string error_prefix(const std::string& name, std::size_t line) {
  return name + ":" + std::to_string(line) + ": ";
}

}  // namespace

const char* to_string(SeqFormat format) {
  switch (format) {
    case SeqFormat::Fasta:
      return "FASTA";
    case SeqFormat::Fastq:
      return "FASTQ";
    default:
      return "unknown";
  }
}

StreamParseError::StreamParseError(const std::string& name, std::size_t line,
                                   const std::string& message)
    : std::runtime_error(error_prefix(name, line) + message), line_(line) {}

// ------------------------------------------------------------ byte sources --

struct SeqStreamReader::ByteSource {
  virtual ~ByteSource() = default;
  /// Up to `n` bytes into `out`; 0 means end of input. Throws
  /// std::runtime_error on an I/O error.
  virtual std::size_t read(char* out, std::size_t n) = 0;
};

struct SeqStreamReader::FileSource : SeqStreamReader::ByteSource {
  FileSource(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}
  ~FileSource() override {
    if (file_ != nullptr) std::fclose(file_);
  }
  std::size_t read(char* out, std::size_t n) override {
    const std::size_t got = std::fread(out, 1, n, file_);
    if (got < n && std::ferror(file_) != 0)
      throw std::runtime_error("I/O error reading " + path_);
    return got;
  }
  std::FILE* file_;
  std::string path_;
};

struct SeqStreamReader::IstreamSource : SeqStreamReader::ByteSource {
  explicit IstreamSource(std::istream& in) : in_(&in) {}
  std::size_t read(char* out, std::size_t n) override {
    in_->read(out, static_cast<std::streamsize>(n));
    if (in_->bad()) throw std::runtime_error("I/O error reading stream");
    return static_cast<std::size_t>(in_->gcount());
  }
  std::istream* in_;
};

#ifdef ASMCAP_HAVE_ZLIB
struct SeqStreamReader::GzipSource : SeqStreamReader::ByteSource {
  GzipSource(gzFile file, std::string path)
      : file_(file), path_(std::move(path)) {}
  ~GzipSource() override {
    if (file_ != nullptr) gzclose(file_);
  }
  std::size_t read(char* out, std::size_t n) override {
    const int got = gzread(file_, out, static_cast<unsigned>(n));
    if (got < 0) {
      int errnum = 0;
      const char* message = gzerror(file_, &errnum);
      throw std::runtime_error("gzip error reading " + path_ + ": " +
                               (message != nullptr ? message : "?"));
    }
    return static_cast<std::size_t>(got);
  }
  gzFile file_;
  std::string path_;
};
#endif

// ---------------------------------------------------------------- reader --

SeqStreamReader::SeqStreamReader(const std::string& path) : name_(path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr)
    throw std::runtime_error("cannot open sequence file: " + path);
  unsigned char magic[2] = {0, 0};
  const std::size_t got = std::fread(magic, 1, 2, file);
  const bool gzipped = got == 2 && magic[0] == 0x1F && magic[1] == 0x8B;
  if (gzipped) {
    std::fclose(file);
#ifdef ASMCAP_HAVE_ZLIB
    gzFile gz = gzopen(path.c_str(), "rb");
    if (gz == nullptr)
      throw std::runtime_error("cannot open gzip sequence file: " + path);
    source_ = std::make_unique<GzipSource>(gz, path);
#else
    throw std::runtime_error("gzip-compressed input but this build has no "
                             "zlib (decompress first): " +
                             path);
#endif
  } else {
    std::rewind(file);
    source_ = std::make_unique<FileSource>(file, path);
  }
  buffer_.resize(kBufferSize);
}

SeqStreamReader::SeqStreamReader(std::istream& in, std::string name)
    : name_(std::move(name)), source_(std::make_unique<IstreamSource>(in)) {
  buffer_.resize(kBufferSize);
}

SeqStreamReader::~SeqStreamReader() = default;

void SeqStreamReader::fail(std::size_t line,
                           const std::string& message) const {
  throw StreamParseError(name_, line, message);
}

bool SeqStreamReader::read_line(std::string& out) {
  out.clear();
  bool any = false;
  for (;;) {
    if (buffer_pos_ == buffer_end_) {
      if (eof_) break;
      buffer_end_ = source_->read(buffer_.data(), buffer_.size());
      buffer_pos_ = 0;
      if (buffer_end_ == 0) {
        eof_ = true;
        break;
      }
    }
    const char* begin = buffer_.data() + buffer_pos_;
    const char* end = buffer_.data() + buffer_end_;
    const char* newline = begin;
    while (newline != end && *newline != '\n') ++newline;
    out.append(begin, newline);
    any = true;
    if (newline != end) {
      buffer_pos_ = static_cast<std::size_t>(newline - buffer_.data()) + 1;
      break;
    }
    buffer_pos_ = buffer_end_;
  }
  if (!any && out.empty() && eof_ && buffer_pos_ == buffer_end_)
    return false;
  if (!out.empty() && out.back() == '\r') out.pop_back();
  ++line_;
  return true;
}

bool SeqStreamReader::next_content_line(std::string& out) {
  if (has_pending_) {
    out = std::move(pending_);
    has_pending_ = false;
    line_ = pending_line_;
    return true;
  }
  while (read_line(out)) {
    if (!trim(out).empty()) return true;
  }
  return false;
}

void SeqStreamReader::detect_format(const std::string& first_line) {
  const std::string_view view = trim(first_line);
  if (view.front() == '>') {
    format_ = SeqFormat::Fasta;
  } else if (view.front() == '@') {
    format_ = SeqFormat::Fastq;
  } else {
    fail(line_, std::string("unrecognised format: first byte '") +
                    view.front() +
                    "' is neither '>' (FASTA) nor '@' (FASTQ)");
  }
}

void SeqStreamReader::append_bases(Sequence& seq, std::string_view text) {
  for (char c : text) {
    if (const auto base = base_from_char(c)) {
      seq.push_back(*base);
    } else {
      ++ambiguous_;
      seq.push_back(Base::A);
    }
    ++bases_;
  }
}

bool SeqStreamReader::next(SeqRecord& record) {
  std::string line;
  if (!next_content_line(line)) return false;
  if (format_ == SeqFormat::Unknown) detect_format(line);
  // Hand the line back so the per-format parsers see the same stream.
  pending_ = std::move(line);
  pending_line_ = line_;
  has_pending_ = true;
  const bool got = format_ == SeqFormat::Fasta ? next_fasta(record)
                                               : next_fastq(record);
  if (got) ++records_;
  return got;
}

bool SeqStreamReader::next_fasta(SeqRecord& record) {
  std::string line;
  if (!next_content_line(line)) return false;
  const std::string_view view = trim(line);
  if (view.front() != '>')
    fail(line_, "FASTA: sequence data before any header");
  record.quality.clear();
  record.seq.clear();
  split_seq_header(view.substr(1), record.id, record.comment);
  // Accumulate wrapped sequence lines until the next header or the end.
  while (read_line(line)) {
    const std::string_view data = trim(line);
    if (data.empty()) continue;
    if (data.front() == '>') {
      pending_ = std::move(line);
      pending_line_ = line_;
      has_pending_ = true;
      break;
    }
    append_bases(record.seq, data);
  }
  return true;
}

bool SeqStreamReader::next_fastq(SeqRecord& record) {
  std::string header;
  if (!next_content_line(header)) return false;
  const std::size_t header_line = line_;
  if (header.empty() || header[0] != '@')
    fail(header_line, "FASTQ: expected '@' header, got: " + header);
  std::string seq_line;
  std::string plus_line;
  std::string qual_line;
  if (!read_line(seq_line) || !read_line(plus_line) ||
      !read_line(qual_line))
    fail(line_, "FASTQ: truncated record (header at line " +
                    std::to_string(header_line) + "): " + header);
  if (plus_line.empty() || plus_line[0] != '+')
    fail(line_ - 1, "FASTQ: missing '+' separator: " + header);
  split_seq_header(std::string_view(header).substr(1), record.id,
                   record.comment);
  record.seq.clear();
  append_bases(record.seq, trim(seq_line));
  record.quality = std::string(trim(qual_line));
  if (record.quality.size() != record.seq.size())
    fail(line_, "FASTQ: quality length mismatch: " + header);
  return true;
}

std::vector<SeqRecord> SeqStreamReader::read_chunk(std::size_t max_records) {
  std::vector<SeqRecord> chunk;
  chunk.reserve(max_records);
  SeqRecord record;
  while (chunk.size() < max_records && next(record))
    chunk.push_back(std::move(record));
  return chunk;
}

}  // namespace asmcap
