#pragma once
// Buffered, single-pass FASTA/FASTQ record streaming — the kseq-style
// ingestion idiom real aligners use, so arbitrarily large input files are
// parsed in O(record) memory instead of the whole-file vectors that
// read_fasta/read_fastq (genome/fasta.h) return.
//
//   SeqStreamReader reader("reads.fastq.gz");
//   SeqRecord record;
//   while (reader.next(record)) consume(record);
//
// The format is auto-detected from the first non-blank byte ('>' FASTA,
// '@' FASTQ); gzip-compressed files are transparently decompressed when
// the build found zlib (ASMCAP_HAVE_ZLIB, see CMakeLists.txt) and
// rejected with a clear error otherwise. The parser accepts multi-line
// (wrapped) FASTA sequence data, tolerates CRLF line endings and blank
// lines between records, and reports malformed input as StreamParseError
// carrying the 1-based line number of the offending line.
//
// Record content is BIT-IDENTICAL to the whole-file readers: identical
// header id/comment splitting, identical base decoding, and the same
// deterministic ambiguity policy — every character outside {A,C,G,T}
// (case-insensitive), e.g. the IUPAC 'N', is resolved to 'A' and counted
// in ambiguous_bases() so callers can warn (tests/test_stream_reader.cpp
// round-trips through write_fasta/write_fastq to pin the parity down).
//
// Ownership: the path constructor owns the underlying file/gzip handle;
// the istream constructor borrows the stream, which must outlive the
// reader. Thread-safety: a reader is a single-consumer cursor — all
// methods belong to one thread at a time (confine a reader to the
// ingestion thread; hand the records off, not the reader). Reentrancy:
// nothing here blocks on a pool or calls back into user code.

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "genome/sequence.h"

namespace asmcap {

/// One FASTA or FASTQ record in the unified streaming shape. FASTA
/// records leave `quality` empty; FASTQ records carry their Phred+33
/// quality string (same length as seq, enforced at parse time).
struct SeqRecord {
  std::string id;       ///< Header text up to the first whitespace.
  std::string comment;  ///< Remainder of the header line (may be empty).
  Sequence seq;
  std::string quality;
};

enum class SeqFormat : std::uint8_t { Unknown, Fasta, Fastq };

const char* to_string(SeqFormat format);

/// Malformed-input error carrying the input name and the 1-based line
/// number of the offending line (what() embeds both).
class StreamParseError : public std::runtime_error {
 public:
  StreamParseError(const std::string& name, std::size_t line,
                   const std::string& message);
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

class SeqStreamReader {
 public:
  /// Opens a file, auto-detecting gzip from the magic bytes (requires
  /// zlib in the build; throws std::runtime_error otherwise, and when the
  /// file cannot be opened).
  explicit SeqStreamReader(const std::string& path);

  /// Streams from a borrowed istream (no gzip auto-detection); `name` is
  /// used in error messages.
  explicit SeqStreamReader(std::istream& in, std::string name = "<stream>");

  ~SeqStreamReader();
  SeqStreamReader(const SeqStreamReader&) = delete;
  SeqStreamReader& operator=(const SeqStreamReader&) = delete;

  /// Parses the next record into `record` (contents replaced). Returns
  /// false at clean end-of-input; throws StreamParseError on malformed
  /// input.
  bool next(SeqRecord& record);

  /// Batch form of next(): up to `max_records` records (fewer at end of
  /// input; empty once exhausted). The concatenation of read_chunk calls
  /// is identical to the next() stream for any chunk size.
  std::vector<SeqRecord> read_chunk(std::size_t max_records);

  /// Detected input format (Unknown until the first next()/read_chunk
  /// call touches the input).
  SeqFormat format() const { return format_; }

  const std::string& name() const { return name_; }
  /// 1-based number of the last line consumed (0 before any input).
  std::size_t line() const { return line_; }

  /// Running totals over everything parsed so far.
  std::size_t records() const { return records_; }
  std::size_t bases() const { return bases_; }
  /// Characters outside {A,C,G,T} deterministically resolved to 'A'
  /// (FASTA and FASTQ sequence lines alike).
  std::size_t ambiguous_bases() const { return ambiguous_; }

 private:
  struct ByteSource;
  struct FileSource;
  struct IstreamSource;
#ifdef ASMCAP_HAVE_ZLIB
  struct GzipSource;
#endif

  [[noreturn]] void fail(std::size_t line, const std::string& message) const;
  /// Next raw line, CR-stripped, counting line_. False at end of input.
  bool read_line(std::string& out);
  /// Next non-blank line (pending pushback first). False at end of input.
  bool next_content_line(std::string& out);
  void detect_format(const std::string& first_line);
  void append_bases(Sequence& seq, std::string_view text);
  bool next_fasta(SeqRecord& record);
  bool next_fastq(SeqRecord& record);

  std::string name_;
  std::unique_ptr<ByteSource> source_;
  std::vector<char> buffer_;
  std::size_t buffer_pos_ = 0;
  std::size_t buffer_end_ = 0;
  bool eof_ = false;

  SeqFormat format_ = SeqFormat::Unknown;
  std::string pending_;  ///< Lookahead line (the next record's header).
  bool has_pending_ = false;
  std::size_t pending_line_ = 0;  ///< Line number pending_ was read at.
  std::size_t line_ = 0;

  std::size_t records_ = 0;
  std::size_t bases_ = 0;
  std::size_t ambiguous_ = 0;
};

}  // namespace asmcap
