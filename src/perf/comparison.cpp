#include "perf/comparison.h"

#include <stdexcept>

namespace asmcap {

std::vector<ComparisonRow> normalize_to_first(
    const std::vector<PerfEstimate>& estimates) {
  if (estimates.empty())
    throw std::invalid_argument("normalize_to_first: empty input");
  std::vector<ComparisonRow> rows;
  rows.reserve(estimates.size());
  const PerfEstimate& base = estimates.front();
  for (const PerfEstimate& estimate : estimates) {
    ComparisonRow row;
    row.system = estimate.system;
    row.speedup = base.seconds_per_read / estimate.seconds_per_read;
    row.energy_efficiency = base.joules_per_read / estimate.joules_per_read;
    row.seconds_per_read = estimate.seconds_per_read;
    row.joules_per_read = estimate.joules_per_read;
    rows.push_back(row);
  }
  return rows;
}

std::vector<ComparisonRow> ratios_against(
    const std::vector<PerfEstimate>& estimates, std::size_t subject_index) {
  if (subject_index >= estimates.size())
    throw std::out_of_range("ratios_against: bad subject index");
  const PerfEstimate& subject = estimates[subject_index];
  std::vector<ComparisonRow> rows;
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    if (i == subject_index) continue;
    ComparisonRow row;
    row.system = estimates[i].system;
    row.speedup = estimates[i].seconds_per_read / subject.seconds_per_read;
    row.energy_efficiency =
        estimates[i].joules_per_read / subject.joules_per_read;
    row.seconds_per_read = estimates[i].seconds_per_read;
    row.joules_per_read = estimates[i].joules_per_read;
    rows.push_back(row);
  }
  return rows;
}

Table comparison_table(const std::vector<ComparisonRow>& rows) {
  Table table({"System", "s/read", "J/read", "Speedup", "Energy eff."});
  for (const ComparisonRow& row : rows) {
    table.new_row()
        .add_cell(row.system)
        .add_cell(format_si(row.seconds_per_read, "s"))
        .add_cell(format_si(row.joules_per_read, "J"))
        .add_cell(format_ratio(row.speedup))
        .add_cell(format_ratio(row.energy_efficiency));
  }
  return table;
}

}  // namespace asmcap
