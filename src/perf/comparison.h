#pragma once
// Speedup / energy-efficiency comparison tables (Fig. 8 rendering).

#include <vector>

#include "perf/ledger.h"
#include "util/table.h"

namespace asmcap {

/// Speedups and energy efficiencies of every estimate normalised to the
/// first entry (the paper normalises to CM-CPU).
struct ComparisonRow {
  std::string system;
  double speedup = 1.0;
  double energy_efficiency = 1.0;
  double seconds_per_read = 0.0;
  double joules_per_read = 0.0;
};

std::vector<ComparisonRow> normalize_to_first(
    const std::vector<PerfEstimate>& estimates);

/// Pairwise ratio table: how the chosen system compares against every other
/// (the "ASMCap achieves Nx speedup over ..." sentences).
std::vector<ComparisonRow> ratios_against(
    const std::vector<PerfEstimate>& estimates, std::size_t subject_index);

Table comparison_table(const std::vector<ComparisonRow>& rows);

}  // namespace asmcap
