#include "perf/ledger.h"

#include <stdexcept>

namespace asmcap {

PerfRatio ratio(const PerfEstimate& lhs, const PerfEstimate& rhs) {
  if (lhs.seconds_per_read <= 0.0 || lhs.joules_per_read <= 0.0)
    throw std::invalid_argument("ratio: lhs estimate must be positive");
  PerfRatio out;
  out.speedup = rhs.seconds_per_read / lhs.seconds_per_read;
  out.energy_efficiency = rhs.joules_per_read / lhs.joules_per_read;
  return out;
}

}  // namespace asmcap
