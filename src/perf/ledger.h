#pragma once
// Performance accounting primitives shared by the system model and the
// benchmark reports.

#include <cstddef>
#include <string>

namespace asmcap {

/// Throughput/energy estimate of one system on one workload.
struct PerfEstimate {
  std::string system;
  double seconds_per_read = 0.0;
  double joules_per_read = 0.0;

  double reads_per_second() const {
    return seconds_per_read > 0.0 ? 1.0 / seconds_per_read : 0.0;
  }
  /// Energy efficiency in reads per joule (the paper's metric, relative).
  double reads_per_joule() const {
    return joules_per_read > 0.0 ? 1.0 / joules_per_read : 0.0;
  }
};

/// Ratio of two estimates: how much faster / more efficient `lhs` is.
struct PerfRatio {
  double speedup = 0.0;
  double energy_efficiency = 0.0;
};

PerfRatio ratio(const PerfEstimate& lhs, const PerfEstimate& rhs);

}  // namespace asmcap
