#include "perf/system_model.h"

#include <cmath>
#include <stdexcept>

#include "cam/interconnect.h"

namespace asmcap {

const char* to_string(AsmSystem system) {
  switch (system) {
    case AsmSystem::CmCpu: return "CM-CPU";
    case AsmSystem::ReSMA: return "ReSMA";
    case AsmSystem::SaVI: return "SaVI";
    case AsmSystem::EDAM: return "EDAM";
    case AsmSystem::AsmcapBase: return "ASMCap w/o H./T.";
    case AsmSystem::AsmcapFull: return "ASMCap w/ H./T.";
  }
  return "?";
}

SystemModel::SystemModel(AsmcapConfig asmcap_config, CmCpuConfig cmcpu,
                         ResmaConfig resma, SaviConfig savi)
    : asmcap_(asmcap_config),
      cmcpu_(cmcpu),
      resma_(resma),
      savi_(savi),
      power_(asmcap_config.process),
      timing_(asmcap_config.process) {}

PerfEstimate SystemModel::estimate(AsmSystem system,
                                   const PerfWorkload& workload) const {
  PerfEstimate out;
  out.system = to_string(system);
  const std::size_t arrays = std::max<std::size_t>(
      1, (workload.stored_segments + asmcap_.array_rows - 1) /
             asmcap_.array_rows);
  const double avg_n_mis =
      workload.avg_n_mis_fraction * static_cast<double>(asmcap_.array_cols);

  switch (system) {
    case AsmSystem::CmCpu: {
      const CmCpuBaseline cpu(cmcpu_);
      out.seconds_per_read = cpu.seconds_per_read(
          workload.read_length, workload.stored_segments, workload.threshold);
      out.joules_per_read = cpu.joules_per_read(
          workload.read_length, workload.stored_segments, workload.threshold);
      break;
    }
    case AsmSystem::ReSMA: {
      const ResmaBaseline resma(resma_);
      const auto candidates =
          static_cast<std::size_t>(std::ceil(workload.resma_candidates));
      out.seconds_per_read =
          resma.seconds_per_read(workload.read_length, candidates);
      out.joules_per_read =
          resma.joules_per_read(workload.read_length, candidates);
      break;
    }
    case AsmSystem::SaVI: {
      SaviConfig config = savi_;
      config.database_bits =
          2.0 * static_cast<double>(workload.stored_segments) *
          static_cast<double>(workload.read_length);
      const SaviBaseline savi(config);
      out.seconds_per_read = savi.seconds_per_read(workload.read_length);
      out.joules_per_read = savi.joules_per_read(workload.read_length);
      break;
    }
    case AsmSystem::EDAM: {
      // One ED* search over all arrays in parallel. The H-tree broadcast is
      // pipelined with the search (it does not lengthen the issue interval)
      // but its switching energy is paid per search.
      const HTree tree(arrays);
      out.seconds_per_read = timing_.edam_search().total;
      out.joules_per_read =
          static_cast<double>(arrays) *
              power_.edam_search_energy(asmcap_.array_rows,
                                        asmcap_.array_cols, avg_n_mis) +
          tree.broadcast_energy(workload.read_length);
      break;
    }
    case AsmSystem::AsmcapBase: {
      const HTree tree(arrays);
      out.seconds_per_read = timing_.asmcap_search().total;
      out.joules_per_read =
          static_cast<double>(arrays) *
              power_.asmcap_search_energy(asmcap_.array_rows,
                                          asmcap_.array_cols, avg_n_mis) +
          tree.broadcast_energy(workload.read_length);
      break;
    }
    case AsmSystem::AsmcapFull: {
      const HTree tree(arrays);
      out.seconds_per_read =
          workload.asmcap_full_searches * timing_.asmcap_search().total;
      out.joules_per_read =
          workload.asmcap_full_searches *
          (static_cast<double>(arrays) *
               power_.asmcap_search_energy(asmcap_.array_rows,
                                           asmcap_.array_cols, avg_n_mis) +
           tree.broadcast_energy(workload.read_length));
      break;
    }
  }
  if (out.seconds_per_read <= 0.0)
    throw std::logic_error("SystemModel: non-positive latency estimate");
  return out;
}

std::vector<PerfEstimate> SystemModel::estimate_all(
    const PerfWorkload& workload) const {
  std::vector<PerfEstimate> estimates;
  for (AsmSystem system :
       {AsmSystem::CmCpu, AsmSystem::ReSMA, AsmSystem::SaVI, AsmSystem::EDAM,
        AsmSystem::AsmcapBase, AsmSystem::AsmcapFull})
    estimates.push_back(estimate(system, workload));
  return estimates;
}

}  // namespace asmcap
