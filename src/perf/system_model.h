#pragma once
// System-level performance model behind Fig. 8: per-read latency and energy
// of every ASM solution on the paper's workload (256-base reads against a
// 64 Mb stored reference, 512 ASMCap/EDAM arrays).

#include <cstddef>
#include <vector>

#include "asmcap/config.h"
#include "baseline/cmcpu.h"
#include "baseline/resma.h"
#include "baseline/savi.h"
#include "circuit/power.h"
#include "circuit/timing.h"
#include "perf/ledger.h"

namespace asmcap {

/// Workload description for the performance comparison.
struct PerfWorkload {
  std::size_t read_length = 256;
  std::size_t stored_segments = 512 * 256;  ///< 64 Mb worth of rows.
  std::size_t threshold = 4;
  /// Average ReSMA filter survivors per read (measured on the dataset or
  /// assumed; candidates beyond the lanes serialise).
  double resma_candidates = 4.0;
  /// Average number of array-search operations per read for ASMCap with
  /// strategies (1 ED* + HDAC cycle + TASR rotations, workload-averaged;
  /// the paper's ~2x average overhead).
  double asmcap_full_searches = 2.0;
  /// Average mismatch count per row (drives the CAM energy models).
  double avg_n_mis_fraction = 0.9725;
};

/// All systems compared in Fig. 8.
enum class AsmSystem {
  CmCpu,
  ReSMA,
  SaVI,
  EDAM,
  AsmcapBase,  ///< w/o HDAC/TASR
  AsmcapFull,  ///< w/ HDAC/TASR
};

const char* to_string(AsmSystem system);

class SystemModel {
 public:
  SystemModel(AsmcapConfig asmcap_config, CmCpuConfig cmcpu = {},
              ResmaConfig resma = {}, SaviConfig savi = {});

  PerfEstimate estimate(AsmSystem system, const PerfWorkload& workload) const;

  /// All six systems in Fig. 8 order.
  std::vector<PerfEstimate> estimate_all(const PerfWorkload& workload) const;

 private:
  AsmcapConfig asmcap_;
  CmCpuConfig cmcpu_;
  ResmaConfig resma_;
  SaviConfig savi_;
  PowerModel power_;
  TimingModel timing_;
};

}  // namespace asmcap
