#include "util/bench_json.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace asmcap {

namespace {

/// Minimal JSON string escaping (quotes, backslash, control characters).
std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Round-trippable number rendering (integers come out bare: "200").
std::string number(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

void write_pairs(std::ofstream& out,
                 const std::vector<std::pair<std::string, double>>& pairs) {
  out << "{";
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (i != 0) out << ", ";
    out << "\"" << escape(pairs[i].first) << "\": " << number(pairs[i].second);
  }
  out << "}";
}

}  // namespace

std::string hex_digest(std::uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

void write_bench_json(const std::string& path, const BenchReport& report) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("write_bench_json: cannot open " + path);
  out << "{\n";
  out << "  \"schema\": \"asmcap-bench-v1\",\n";
  out << "  \"bench\": \"" << escape(report.bench) << "\",\n";
  out << "  \"kernel_tier\": \"" << escape(report.kernel_tier) << "\",\n";
  out << "  \"hardware_threads\": " << report.hardware_threads << ",\n";
  out << "  \"workload\": ";
  write_pairs(out, report.workload);
  out << ",\n";
  out << "  \"timings\": [\n";
  for (std::size_t i = 0; i < report.timings.size(); ++i) {
    const BenchTiming& timing = report.timings[i];
    out << "    {\"path\": \"" << escape(timing.path)
        << "\", \"wall_seconds\": " << number(timing.wall_seconds)
        << ", \"reads_per_second\": " << number(timing.reads_per_second)
        << "}" << (i + 1 < report.timings.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"metrics\": ";
  write_pairs(out, report.metrics);
  out << ",\n";
  out << "  \"speedup\": " << number(report.speedup) << ",\n";
  out << "  \"decision_digest\": \"" << hex_digest(report.decision_digest)
      << "\",\n";
  out << "  \"floor_enforced\": " << (report.floor_enforced ? "true" : "false")
      << "\n";
  out << "}\n";
  if (!out.flush())
    throw std::runtime_error("write_bench_json: write failed for " + path);
}

std::string take_bench_json_path(std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] != "--json") continue;
    if (i + 1 >= args.size())
      throw std::invalid_argument("--json requires a path argument");
    const std::string path = args[i + 1];
    args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
               args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    return path;
  }
  return "";
}

}  // namespace asmcap
