#pragma once
// Machine-readable benchmark output: one schema ("asmcap-bench-v1"),
// shared by every bench driver, so tools/check_bench.py can gate any
// bench's JSON against bench/baseline.json without per-bench parsing.
//
// A report records the workload parameters, the timed paths, the headline
// speedup, the decision digest of the run (the correctness fingerprint the
// perf gate pins exactly), and the kernel tier the run executed on.
//
// Thread-safety: BenchReport/DecisionDigest are plain values with no
// shared state; write_bench_json only touches the file it is given.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace asmcap {

/// FNV-1a accumulator over decision streams. Every bench hashes decisions
/// through this one definition so digests are comparable across drivers,
/// kernel tiers, worker counts, and compilers.
class DecisionDigest {
 public:
  /// Hashes one match decision.
  void add(bool decision) { add_byte(decision ? 0x9E : 0x3B); }

  /// Hashes a 64-bit value (e.g. a per-read result digest), little-endian.
  void add_u64(std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte)
      add_byte(static_cast<std::uint8_t>(v >> (8 * byte)));
  }

  std::uint64_t value() const { return hash_; }

 private:
  void add_byte(std::uint8_t b) {
    hash_ ^= b;
    hash_ *= 0x100000001B3ULL;
  }

  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

/// 16-digit lowercase hex rendering of a digest (the JSON form).
std::string hex_digest(std::uint64_t digest);

/// One timed execution path of a bench.
struct BenchTiming {
  std::string path;  ///< Human-readable path name (table row label).
  double wall_seconds = 0.0;
  double reads_per_second = 0.0;
};

/// A bench run, ready to serialise. The ordered key/value vectors keep the
/// emitted JSON stable for diffing.
struct BenchReport {
  std::string bench;        ///< Driver name, e.g. "bench_batch".
  std::string kernel_tier;  ///< to_string(active_kernel_tier()).
  std::size_t hardware_threads = 0;
  std::vector<std::pair<std::string, double>> workload;  ///< Parameters.
  std::vector<BenchTiming> timings;
  std::vector<std::pair<std::string, double>> metrics;  ///< Named ratios.
  double speedup = 0.0;  ///< The bench's headline ratio.
  std::uint64_t decision_digest = 0;
  bool floor_enforced = false;  ///< Whether timing floors gated this run.
};

/// Writes the report as schema "asmcap-bench-v1" JSON. Throws
/// std::runtime_error when the file cannot be written.
void write_bench_json(const std::string& path, const BenchReport& report);

/// Removes a `--json <path>` flag pair from `args` (anywhere) and returns
/// the path, or "" when absent — the drivers' positional parsing then sees
/// only positionals. Throws std::invalid_argument when --json has no value.
std::string take_bench_json_path(std::vector<std::string>& args);

}  // namespace asmcap
