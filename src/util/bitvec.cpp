#include "util/bitvec.h"

#include <bit>
#include <stdexcept>

namespace asmcap {

namespace {
constexpr std::size_t kWordBits = 64;
std::size_t words_for(std::size_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}
}  // namespace

BitVec::BitVec(std::size_t bits, bool value)
    : data_(words_for(bits), value ? ~std::uint64_t{0} : 0), bits_(bits) {
  trim();
}

void BitVec::check(std::size_t i) const {
  if (i >= bits_) throw std::out_of_range("BitVec index out of range");
}

void BitVec::trim() {
  const std::size_t tail = bits_ % kWordBits;
  if (tail != 0 && !data_.empty())
    data_.back() &= (std::uint64_t{1} << tail) - 1;
}

bool BitVec::get(std::size_t i) const {
  check(i);
  return (data_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void BitVec::set(std::size_t i, bool value) {
  check(i);
  const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
  if (value)
    data_[i / kWordBits] |= mask;
  else
    data_[i / kWordBits] &= ~mask;
}

void BitVec::reset() {
  for (auto& w : data_) w = 0;
}

void BitVec::resize(std::size_t bits, bool value) {
  const std::size_t old_bits = bits_;
  data_.resize(words_for(bits), value ? ~std::uint64_t{0} : 0);
  bits_ = bits;
  if (bits > old_bits && value) {
    // Fill the fractional part of the old last word.
    for (std::size_t i = old_bits; i < bits && i % kWordBits != 0; ++i)
      set(i, true);
  }
  trim();
}

std::size_t BitVec::popcount() const {
  std::size_t total = 0;
  for (auto w : data_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::size_t BitVec::find_first() const { return find_next(0); }

std::size_t BitVec::find_next(std::size_t from) const {
  if (from >= bits_) return bits_;
  std::size_t w = from / kWordBits;
  std::uint64_t word = data_[w] & (~std::uint64_t{0} << (from % kWordBits));
  for (;;) {
    if (word != 0) {
      const std::size_t bit =
          w * kWordBits + static_cast<std::size_t>(std::countr_zero(word));
      return bit < bits_ ? bit : bits_;
    }
    if (++w >= data_.size()) return bits_;
    word = data_[w];
  }
}

BitVec& BitVec::operator&=(const BitVec& other) {
  if (bits_ != other.bits_) throw std::invalid_argument("BitVec size mismatch");
  for (std::size_t w = 0; w < data_.size(); ++w) data_[w] &= other.data_[w];
  return *this;
}

BitVec& BitVec::operator|=(const BitVec& other) {
  if (bits_ != other.bits_) throw std::invalid_argument("BitVec size mismatch");
  for (std::size_t w = 0; w < data_.size(); ++w) data_[w] |= other.data_[w];
  return *this;
}

BitVec& BitVec::operator^=(const BitVec& other) {
  if (bits_ != other.bits_) throw std::invalid_argument("BitVec size mismatch");
  for (std::size_t w = 0; w < data_.size(); ++w) data_[w] ^= other.data_[w];
  return *this;
}

void BitVec::flip() {
  for (auto& w : data_) w = ~w;
  trim();
}

bool BitVec::operator==(const BitVec& other) const {
  return bits_ == other.bits_ && data_ == other.data_;
}

}  // namespace asmcap
