#pragma once
// Compact dynamic bit vector. Used for match masks in the CAM functional
// model and as the word storage behind the Myers bit-parallel aligner.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace asmcap {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t bits, bool value = false);

  std::size_t size() const { return bits_; }
  bool empty() const { return bits_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool value = true);
  void clear(std::size_t i) { set(i, false); }
  void reset();
  void resize(std::size_t bits, bool value = false);

  /// Number of set bits.
  std::size_t popcount() const;

  /// Index of the first set bit, or size() if none.
  std::size_t find_first() const;

  /// Index of the first set bit at or after `from`, or size() if none.
  std::size_t find_next(std::size_t from) const;

  BitVec& operator&=(const BitVec& other);
  BitVec& operator|=(const BitVec& other);
  BitVec& operator^=(const BitVec& other);
  /// Flips every bit (bits beyond size() stay zero).
  void flip();

  bool operator==(const BitVec& other) const;

  /// Direct word access for bit-parallel algorithms.
  std::size_t words() const { return data_.size(); }
  std::uint64_t word(std::size_t w) const { return data_.at(w); }
  std::uint64_t& word(std::size_t w) { return data_.at(w); }

 private:
  void check(std::size_t i) const;
  void trim();

  std::vector<std::uint64_t> data_;
  std::size_t bits_ = 0;
};

}  // namespace asmcap
