#pragma once
// Injectable time source for the service tier. The scheduler's deadline
// checks and the per-ticket latency observability (queue-wait, execution,
// merge, completion timestamps in TicketStats) never call a chrono clock
// directly: they go through a ServiceClock, so tests can substitute a
// VirtualClock and drive "time" deterministically — a deadline test
// expires tickets by advancing the clock from a completion callback
// instead of sleeping, which makes the scheduler suite both fast and
// exactly reproducible (docs/determinism.md rule 9: scheduling state may
// depend on the clock, decisions never do).
//
// Ownership: clocks are borrowed (ServiceConfig::clock); the caller keeps
// the clock alive for the lifetime of every service and ticket using it.
// Thread-safety: now() may be called from any thread. VirtualClock
// serialises now()/advance()/set() with an internal mutex (annotated for
// Clang's thread-safety analysis, util/thread_annotations.h), so an
// advance from a worker-side callback is safely visible to the next
// now() on any thread. SteadyClock is stateless.

#include <chrono>

#include "util/thread_annotations.h"

namespace asmcap {

/// Abstract monotonic time source, in seconds. The epoch is arbitrary;
/// only differences and comparisons against recorded instants matter.
class ServiceClock {
 public:
  virtual ~ServiceClock() = default;
  virtual double now() const = 0;
};

/// The real wall clock: std::chrono::steady_clock, as seconds.
class SteadyClock final : public ServiceClock {
 public:
  double now() const override {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

/// Process-wide SteadyClock instance (the ServiceConfig::clock default).
inline const ServiceClock& steady_service_clock() {
  static const SteadyClock clock;
  return clock;
}

/// A manually driven clock for deterministic scheduler tests: time stands
/// still until advance()/set() moves it, from any thread.
class VirtualClock final : public ServiceClock {
 public:
  explicit VirtualClock(double start_seconds = 0.0) : now_(start_seconds) {}

  // (No EXCLUDES here: attribute placement on an `override` declarator is
  // compiler-dependent; the GUARDED_BY check below is what carries.)
  double now() const override {
    MutexLock lock(mutex_);
    return now_;
  }

  /// Moves time forward by `seconds` (negative advances are ignored —
  /// the clock stays monotonic like the steady clock it stands in for).
  void advance(double seconds) ASMCAP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (seconds > 0.0) now_ += seconds;
  }

  /// Jumps to an absolute instant (ignored if it would move time backwards).
  void set(double seconds) ASMCAP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (seconds > now_) now_ = seconds;
  }

 private:
  mutable Mutex mutex_;
  double now_ ASMCAP_GUARDED_BY(mutex_);
};

}  // namespace asmcap
