#include "util/rng.h"

#include <cmath>
#include <stdexcept>

namespace asmcap {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::below: n must be positive");
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::between: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint32_t Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("Rng::poisson: negative mean");
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for the
    // large-mean regime used only in stress tests.
    const double sample = normal(mean, std::sqrt(mean));
    return sample <= 0.0 ? 0u : static_cast<std::uint32_t>(sample + 0.5);
  }
  const double limit = std::exp(-mean);
  double product = uniform();
  std::uint32_t count = 0;
  while (product > limit) {
    ++count;
    product *= uniform();
  }
  return count;
}

Rng Rng::fork(std::uint64_t stream) const {
  // Mix the current state words with the stream index through splitmix64 so
  // forked streams are decorrelated from the parent and from each other.
  std::uint64_t mix = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^
                      rotl(s_[3], 47) ^ (stream * 0xD1342543DE82EF95ULL + 1);
  return Rng(splitmix64(mix));
}

}  // namespace asmcap
