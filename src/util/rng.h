#pragma once
// Deterministic, seedable pseudo-random number generation for all stochastic
// parts of the simulator (edit injection, Monte-Carlo device mismatch, HDAC
// coin flips). A single engine type is used everywhere so experiments are
// reproducible from a single seed.

#include <cstdint>
#include <vector>

namespace asmcap {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation re-expressed in C++). Fast, 2^256-1 period, passes BigCrush.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state from a single 64-bit value via splitmix64, which
  /// guarantees a well-mixed non-zero state for any seed (including 0).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1). Uses the top 53 bits.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Unbiased (rejection sampling).
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second deviate).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64 where the exact algorithm underflows).
  std::uint32_t poisson(double mean);

  /// Forks an independent stream: deterministic function of the current
  /// state and the stream index, so parallel components can draw without
  /// correlating.
  Rng fork(std::uint64_t stream) const;

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4] = {};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace asmcap
