#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace asmcap {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0) throw std::invalid_argument("Histogram: need at least 1 bin");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(bins()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(bins()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(bins());
}

double Histogram::bin_high(std::size_t bin) const { return bin_low(bin + 1); }

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < bins(); ++b) {
    const double next = cumulative + static_cast<double>(counts_[b]);
    if (next >= target) {
      const double inside =
          counts_[b] == 0
              ? 0.0
              : (target - cumulative) / static_cast<double>(counts_[b]);
      return bin_low(b) + inside * (bin_high(b) - bin_low(b));
    }
    cumulative = next;
  }
  return hi_;
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev_of(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = mean_of(xs);
  double m2 = 0.0;
  for (double x : xs) m2 += (x - mu) * (x - mu);
  return std::sqrt(m2 / static_cast<double>(xs.size() - 1));
}

double geomean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0)
      throw std::invalid_argument("geomean_of: values must be positive");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("correlation: size mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double percentile_of(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("percentile_of: q outside [0, 1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

}  // namespace asmcap
