#pragma once
// Lightweight statistics helpers shared by the circuit Monte-Carlo engine,
// the accuracy evaluation, and the benchmark reports.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace asmcap {

/// Single-pass running mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples are clamped into
/// the edge bins so totals always balance.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;
  /// Value below which the given fraction of the samples fall (linear
  /// interpolation inside the containing bin).
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Mean of a span (0 for empty input).
double mean_of(std::span<const double> xs);

/// Unbiased sample standard deviation of a span (0 for fewer than 2 values).
double stddev_of(std::span<const double> xs);

/// Geometric mean of strictly positive values (used for the "average
/// speedup" style aggregates the paper reports).
double geomean_of(std::span<const double> xs);

/// Pearson correlation of two equally sized spans.
double correlation(std::span<const double> xs, std::span<const double> ys);

/// Nearest-rank percentile (q in [0, 1]) of a span: the smallest value x
/// such that at least ceil(q * n) samples are <= x. Exact order statistic
/// — no interpolation — so the result is always one of the samples and is
/// bit-reproducible across platforms (the service-tier latency/energy
/// p50/p95/p99 in TicketStats go through here). 0 for an empty span.
double percentile_of(std::span<const double> xs, double q);

}  // namespace asmcap
