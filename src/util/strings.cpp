#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace asmcap {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!text.empty() && is_space(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && is_space(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string to_upper(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

std::optional<long long> parse_int(std::string_view text) {
  const std::string buf(trim(text));
  if (buf.empty()) return std::nullopt;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view text) {
  const std::string buf(trim(text));
  if (buf.empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace asmcap
