#pragma once
// Small string helpers shared by FASTA parsing, report printing, and the
// example command-line front-ends.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace asmcap {

/// Splits on a delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

std::string to_lower(std::string_view text);
std::string to_upper(std::string_view text);

/// Strict parse helpers returning nullopt on any trailing garbage.
std::optional<long long> parse_int(std::string_view text);
std::optional<double> parse_double(std::string_view text);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace asmcap
