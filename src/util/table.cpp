#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace asmcap {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty())
    throw std::invalid_argument("Table: header must not be empty");
}

Table& Table::new_row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add_cell(std::string value) {
  if (rows_.empty()) new_row();
  if (rows_.back().size() >= header_.size())
    throw std::logic_error("Table: row already full");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::add_cell(const char* value) { return add_cell(std::string(value)); }

Table& Table::add_cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, value);
  return add_cell(std::string(buf));
}

Table& Table::add_cell(std::size_t value) { return add_cell(std::to_string(value)); }

Table& Table::add_cell(int value) { return add_cell(std::to_string(value)); }

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << (c == 0 ? "| " : " | ") << cell
          << std::string(widths[c] - cell.size(), ' ');
    }
    out << " |\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c)
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream out;
  for (std::size_t c = 0; c < header_.size(); ++c)
    out << (c ? "," : "") << quote(header_[c]);
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < header_.size(); ++c)
      out << (c ? "," : "") << quote(c < row.size() ? row[c] : std::string());
    out << '\n';
  }
  return out.str();
}

void Table::print(std::ostream& os) const { os << to_text(); }

std::string format_ratio(double ratio) {
  char buf[64];
  if (ratio >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1ex", ratio);
  } else if (ratio >= 10.0) {
    std::snprintf(buf, sizeof buf, "%.0fx", ratio);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fx", ratio);
  }
  return buf;
}

std::string format_si(double value, const std::string& unit, int precision) {
  struct Scale {
    double factor;
    const char* prefix;
  };
  static constexpr Scale kScales[] = {{1e9, "G"},  {1e6, "M"},  {1e3, "k"},
                                      {1.0, ""},   {1e-3, "m"}, {1e-6, "u"},
                                      {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"}};
  const double magnitude = std::fabs(value);
  for (const auto& scale : kScales) {
    if (magnitude >= scale.factor || scale.factor == 1e-15) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.*g%s%s", precision,
                    value / scale.factor, scale.prefix, unit.c_str());
      return buf;
    }
  }
  return std::to_string(value) + unit;
}

}  // namespace asmcap
