#pragma once
// Aligned plain-text and CSV table rendering used by the benchmark harness
// to print the paper's tables and figure series.

#include <ostream>
#include <string>
#include <vector>

namespace asmcap {

/// Column-aligned table builder. Cells are strings; numeric convenience
/// overloads format with a chosen precision. Rendering pads columns to the
/// widest cell, emits a header separator, and can also serialise as CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add_cell calls append to it.
  Table& new_row();
  Table& add_cell(std::string value);
  Table& add_cell(const char* value);
  Table& add_cell(double value, int precision = 3);
  Table& add_cell(std::size_t value);
  Table& add_cell(int value);

  /// Adds a full row at once (must match header width).
  Table& add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }
  const std::string& cell(std::size_t row, std::size_t col) const;

  /// Renders the aligned plain-text form with a `|`-separated header rule.
  std::string to_text() const;

  /// Renders RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double like "1.4x" / "8.7e3x" in the compact style the paper
/// uses for speedup and energy-efficiency ratios.
std::string format_ratio(double ratio);

/// Formats a value with an SI suffix (n, µ, m, '', k, M, G) plus unit.
std::string format_si(double value, const std::string& unit, int precision = 3);

}  // namespace asmcap
