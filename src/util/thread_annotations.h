#pragma once
// Clang Thread Safety Analysis vocabulary for the concurrent core, plus
// the annotated lock primitives the analysis needs to see. Two layers:
//
//  * ASMCAP_* attribute macros (ASMCAP_CAPABILITY, ASMCAP_GUARDED_BY,
//    ASMCAP_REQUIRES, ASMCAP_ACQUIRE/RELEASE, ASMCAP_EXCLUDES, ...) —
//    thin wrappers over Clang's thread-safety attributes that compile to
//    NOTHING on other compilers, so GCC builds are byte-identical while
//    clang builds carry -Werror=thread-safety (see CMakeLists.txt).
//  * Mutex / MutexLock / CondVar — drop-in annotated replacements for
//    std::mutex / std::lock_guard / std::condition_variable. libstdc++'s
//    lock types carry no capability attributes, so the analysis cannot
//    track a std::lock_guard acquisition; these wrappers are what lets
//    every GUARDED_BY member in thread_pool.h / service.h / clock.h be
//    statically checked. They add no state and no indirection beyond the
//    wrapped standard types.
//
// The analysis is purely compile-time: which functions hold which locks
// when they touch which members. What it cannot see — ownership protocols
// over atomics (the ticket's terminal-cause CAS and window slots), the
// control-plane serialization of the epoch publish, release/acquire
// publication — stays the province of docs/architecture.md contracts and
// the TSan CI job. docs/static_analysis.md has the full scope and the
// suppression policy (ASMCAP_NO_THREAD_SAFETY_ANALYSIS requires a
// justifying comment).
//
// Ownership: Mutex and CondVar are plain members, owned like the standard
// types they wrap. Thread-safety: Mutex/CondVar are thread-safe by
// definition; MutexLock is a scoped guard confined to one thread, like
// std::lock_guard.

#include <condition_variable>
#include <mutex>

// ------------------------------------------------------ attribute macros --
// Guarded by __has_attribute, not just __clang__, so a future compiler
// that grows the analysis picks it up and an old clang degrades to no-ops.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ASMCAP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ASMCAP_THREAD_ANNOTATION
#define ASMCAP_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability (e.g. class Mutex).
#define ASMCAP_CAPABILITY(name) ASMCAP_THREAD_ANNOTATION(capability(name))
/// Marks a type whose constructor acquires and destructor releases.
#define ASMCAP_SCOPED_CAPABILITY ASMCAP_THREAD_ANNOTATION(scoped_lockable)
/// Member may only be touched while `mutex` is held.
#define ASMCAP_GUARDED_BY(mutex) ASMCAP_THREAD_ANNOTATION(guarded_by(mutex))
/// Pointee may only be touched while `mutex` is held (pointer itself free).
#define ASMCAP_PT_GUARDED_BY(mutex) \
  ASMCAP_THREAD_ANNOTATION(pt_guarded_by(mutex))
/// Function must be called with the capability held (the `_locked` suffix
/// convention, made checkable).
#define ASMCAP_REQUIRES(...) \
  ASMCAP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the capability (held on return).
#define ASMCAP_ACQUIRE(...) \
  ASMCAP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function may acquire: returns `value` on success.
#define ASMCAP_TRY_ACQUIRE(...) \
  ASMCAP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function releases the capability (must be held on entry).
#define ASMCAP_RELEASE(...) \
  ASMCAP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function must be called with the capability NOT held (deadlock guard
/// for public entry points that take their own lock).
#define ASMCAP_EXCLUDES(...) \
  ASMCAP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define ASMCAP_RETURN_CAPABILITY(x) ASMCAP_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch — opts one function out of the analysis. Every use MUST
/// carry a comment justifying why the protocol is sound but unprovable
/// (docs/static_analysis.md "Suppressing a finding").
#define ASMCAP_NO_THREAD_SAFETY_ANALYSIS \
  ASMCAP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace asmcap {

class CondVar;

/// std::mutex with the capability attribute the analysis keys on.
class ASMCAP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ASMCAP_ACQUIRE() { m_.lock(); }
  void unlock() ASMCAP_RELEASE() { m_.unlock(); }
  bool try_lock() ASMCAP_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;  ///< wait() adopts the raw mutex, see below.
  std::mutex m_;
};

/// Scoped guard: std::lock_guard over a Mutex, visible to the analysis.
class ASMCAP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ASMCAP_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() ASMCAP_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable over Mutex. No predicate overloads on purpose:
/// a predicate lambda is analyzed as its own function, where the
/// analysis cannot know the lock is held — callers write the explicit
///   while (!condition) cv_.wait(mutex_);
/// loop instead, which checks the guarded condition in the enclosing
/// locked scope (the restructuring -Werror=thread-safety demanded).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks, and re-acquires before
  /// returning. Caller must hold `mutex` (and, as with any condition
  /// wait, must re-check its condition in a loop — spurious wakeups).
  void wait(Mutex& mutex) ASMCAP_REQUIRES(mutex) {
    // Adopt the already-held raw mutex so the standard wait can unlock /
    // relock it, then release the adapter so it does not unlock on exit.
    // The analysis sees none of this churn: `mutex` is held on entry and
    // on exit, which is exactly the contract REQUIRES states.
    std::unique_lock<std::mutex> adapter(mutex.m_, std::adopt_lock);
    cv_.wait(adapter);
    adapter.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace asmcap
