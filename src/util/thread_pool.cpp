#include "util/thread_pool.h"

#include <algorithm>

namespace asmcap {

std::size_t ThreadPool::hardware_workers() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = hardware_workers();
  threads_.reserve(workers - 1);
  for (std::size_t i = 0; i + 1 < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::run_job(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) return;
    try {
      job.fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    if (job) run_job(*job);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (threads_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->count = count;
  job->remaining.store(count, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++generation_;
  }
  start_cv_.notify_all();
  run_job(*job);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return job->remaining.load(std::memory_order_acquire) == 0;
    });
    job_.reset();
  }
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace asmcap
