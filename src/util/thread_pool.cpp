#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace asmcap {

// ------------------------------------------------------------ TaskGroup --

void TaskGroup::start(std::size_t n) {
  MutexLock lock(mutex_);
  pending_ += n;
}

void TaskGroup::finish() {
  MutexLock lock(mutex_);
  if (--pending_ == 0) cv_.notify_all();
}

void TaskGroup::wait() {
  MutexLock lock(mutex_);
  while (pending_ != 0) cv_.wait(mutex_);
}

std::size_t TaskGroup::pending() const {
  MutexLock lock(mutex_);
  return pending_;
}

// ----------------------------------------------------------- ThreadPool --

std::size_t ThreadPool::hardware_workers() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = hardware_workers();
  threads_.reserve(workers - 1);
  for (std::size_t i = 0; i + 1 < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  // A threadless pool may hold inline tasks abandoned when an earlier
  // task threw out of the trampoline: fulfil the drain contract here
  // (exceptions are discarded — destructors are noexcept).
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      if (inline_tasks_.empty()) break;
      task = std::move(inline_tasks_.front());
      inline_tasks_.pop_front();
    }
    try {
      task();
    } catch (...) {
    }
  }
}

void ThreadPool::run_job(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) return;
    try {
      job.fn(i);
    } catch (...) {
      MutexLock lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      MutexLock lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

bool ThreadPool::any_task_locked() const {
  for (const auto& queue : tasks_)
    if (!queue.empty()) return true;
  return false;
}

std::function<void()> ThreadPool::pop_task_locked() {
  // Strict priority order: the first non-empty queue wins, FIFO within
  // it. Starvation of the lower classes is the caller's problem to solve
  // — the service tier's fair-share admission only ever has a bounded
  // number of tasks enqueued per ticket, so Low work always surfaces.
  for (auto& queue : tasks_)
    if (!queue.empty()) {
      std::function<void()> task = std::move(queue.front());
      queue.pop_front();
      return task;
    }
  return {};
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!(stop_ || any_task_locked() || generation_ != seen))
        start_cv_.wait(mutex_);
      if (generation_ != seen) {
        // A parallel_for job outranks the detached queue: the caller is
        // blocked on it and its index count is finite, so joining it
        // first bounds that caller's wait even while a streaming ticket
        // keeps the queue full (the queue resumes right after).
        seen = generation_;
        job = job_;
      } else if (any_task_locked()) {
        task = pop_task_locked();
      } else if (stop_) {
        // Exit only once the queue is drained: shutdown completes every
        // submitted task (TaskGroup waiters never dangle).
        return;
      }
    }
    if (task)
      task();
    else if (job)
      run_job(*job);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (threads_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->count = count;
  job->remaining.store(count, std::memory_order_relaxed);
  {
    MutexLock lock(mutex_);
    job_ = job;
    ++generation_;
  }
  start_cv_.notify_all();
  run_job(*job);
  {
    MutexLock lock(mutex_);
    while (job->remaining.load(std::memory_order_acquire) != 0)
      done_cv_.wait(mutex_);
    job_.reset();
  }
  // Read the error slot under its own lock: the analysis (rightly)
  // refuses the old bare read — it was only safe through the acq_rel
  // ordering on `remaining`, an argument no local reader can check.
  std::exception_ptr error;
  {
    MutexLock lock(job->error_mutex);
    error = job->error;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::submit(std::function<void()> task, TaskPriority priority) {
  if (!threads_.empty()) {
    {
      MutexLock lock(mutex_);
      tasks_[static_cast<std::size_t>(priority)].push_back(std::move(task));
    }
    start_cv_.notify_one();
    return;
  }
  // Threadless pool: run inline, through a trampoline so chains of tasks
  // submitting tasks (the service admission ladder) never recurse — the
  // draining submit() executes the whole chain iteratively. The queue is
  // guarded by mutex_ (submit stays callable from any thread; a
  // concurrent caller enqueues and returns, the drainer executes), and
  // tasks run unlocked. If a task throws, the drain flag is restored and
  // the exception propagates to the draining caller; tasks still queued
  // run at the next submit().
  {
    MutexLock lock(mutex_);
    inline_tasks_.push_back(std::move(task));
    if (inline_running_) return;
    inline_running_ = true;
  }
  for (;;) {
    std::function<void()> next;
    {
      MutexLock lock(mutex_);
      if (inline_tasks_.empty()) {
        inline_running_ = false;
        return;
      }
      next = std::move(inline_tasks_.front());
      inline_tasks_.pop_front();
    }
    try {
      next();
    } catch (...) {
      MutexLock lock(mutex_);
      inline_running_ = false;
      throw;
    }
  }
}

}  // namespace asmcap
