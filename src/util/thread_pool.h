#pragma once
// Small persistent worker pool for the batched execution engine. Work is a
// dense index range; workers claim indices from a shared atomic counter and
// all results are written by index, so the output of a parallel map never
// depends on scheduling order or on how many workers ran it. That property
// (plus per-index RNG forking at the call sites) is what makes batched
// searches reproducible regardless of thread count.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace asmcap {

class ThreadPool {
 public:
  /// A pool of `workers` concurrent executors. The calling thread of
  /// parallel_for() participates, so `workers == 1` spawns no threads and
  /// runs everything inline; `workers == 0` uses hardware_workers().
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executors (spawned threads + the calling thread).
  std::size_t workers() const { return threads_.size() + 1; }

  /// Runs fn(i) for every i in [0, count), blocking until all complete.
  /// fn must be safe to call concurrently for distinct indices. The first
  /// exception thrown by any index is rethrown here (remaining indices may
  /// or may not run).
  ///
  /// NOT REENTRANT: the pool runs one job at a time (a single shared
  /// job/generation slot), so fn must never call parallel_for on the same
  /// pool — a nested call would clobber the in-flight job and deadlock or
  /// miscount. Session owners (accelerator, sharded router, read mapper)
  /// therefore run their parallel phases strictly one after another.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// max(1, std::thread::hardware_concurrency()).
  static std::size_t hardware_workers();

 private:
  struct Job {
    std::function<void(std::size_t)> fn;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining{0};
    std::mutex error_mutex;
    std::exception_ptr error;
  };

  void worker_loop();
  void run_job(Job& job);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;       ///< Current job (guarded by mutex_).
  std::uint64_t generation_ = 0;   ///< Bumped per job (guarded by mutex_).
  bool stop_ = false;
};

/// A lazily-created, session-owned ThreadPool handle: the pool is built at
/// the first get() and reused across calls (the ROADMAP pool-reuse item —
/// no per-batch pool churn). The pool only ever grows: a request for fewer
/// workers reuses the existing larger pool instead of tearing it down, so
/// mixed single/batch usage (workers=1 alternating with workers=8) churns
/// no threads. That is sound because every parallel map in this codebase
/// is worker-count invariant by construction. `workers == 0` means one
/// worker per hardware thread. Not thread-safe itself: one owner
/// (accelerator, sharded router) runs its parallel phases strictly one
/// after another (parallel_for is not reentrant anyway).
class SessionPool {
 public:
  ThreadPool& get(std::size_t workers = 0) {
    if (workers == 0) workers = ThreadPool::hardware_workers();
    if (!pool_ || pool_->workers() < workers)
      pool_ = std::make_unique<ThreadPool>(workers);
    return *pool_;
  }

 private:
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace asmcap
