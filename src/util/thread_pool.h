#pragma once
// Small persistent worker pool for the batched execution engine. Two kinds
// of work share one set of threads:
//
//  * parallel_for — a dense index range; workers claim indices from a
//    shared atomic counter and all results are written by index, so the
//    output of a parallel map never depends on scheduling order or on how
//    many workers ran it. That property (plus per-index RNG forking at the
//    call sites) is what makes batched searches reproducible regardless of
//    thread count.
//  * submit — individual detached tasks drained from a FIFO queue. This is
//    the asynchronous substrate of the streaming SearchService: tasks may
//    submit further tasks (unlike parallel_for, which is not reentrant),
//    and completion is tracked by the caller through a TaskGroup.
//
// Ownership: a ThreadPool owns its threads; SessionPool (below) owns one
// lazily-built ThreadPool per session owner (accelerator, sharded router).
// Thread-safety: submit() may be called from any thread, including from
// inside a running task; parallel_for() must be called from exactly one
// thread at a time and is NOT reentrant (see its comment). TaskGroup is
// fully thread-safe. The lock protocol is statically checked: every
// queue and flag below is ASMCAP_GUARDED_BY the pool mutex (Clang
// -Werror=thread-safety; see util/thread_annotations.h).
//
// See docs/architecture.md for where the pool sits in the engine layering.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace asmcap {

/// Priority class of a detached submit() task. Workers always pop the
/// lowest-numbered non-empty queue, FIFO within a class: a High task
/// enqueued behind a thousand Low tasks runs as soon as any worker frees
/// up, without preempting tasks already executing. This is the pool-level
/// substrate the service tier's interactive-over-bulk scheduling stands
/// on (asmcap/service.h maps ServiceClass onto it).
enum class TaskPriority : std::uint8_t { High = 0, Normal = 1, Low = 2 };
inline constexpr std::size_t kTaskPriorityCount = 3;

/// A waitable completion counter for detached tasks: the dispatcher calls
/// start() per task (before submitting it), every task calls finish()
/// exactly once (success or failure), and any thread may wait() for the
/// count to drain to zero. Thread-safe; reusable after it drains.
class TaskGroup {
 public:
  /// Registers `n` outstanding tasks. Call BEFORE the matching submit()s,
  /// or a fast task could drain the group below a concurrent wait().
  void start(std::size_t n = 1) ASMCAP_EXCLUDES(mutex_);

  /// Marks one task complete; wakes waiters when the group drains.
  void finish() ASMCAP_EXCLUDES(mutex_);

  /// Blocks until every started task has finished (returns immediately if
  /// none are outstanding).
  void wait() ASMCAP_EXCLUDES(mutex_);

  /// Outstanding (started but not finished) tasks, racy by nature: only
  /// pending() == 0 observed after wait() is a stable statement.
  std::size_t pending() const ASMCAP_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  CondVar cv_;
  std::size_t pending_ ASMCAP_GUARDED_BY(mutex_) = 0;
};

class ThreadPool {
 public:
  /// A pool of `workers` concurrent executors. The calling thread of
  /// parallel_for() participates, so `workers == 1` spawns no threads and
  /// runs everything inline; `workers == 0` uses hardware_workers().
  explicit ThreadPool(std::size_t workers = 0);
  /// Drains every queued submit() task, then joins the threads.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executors (spawned threads + the calling thread).
  std::size_t workers() const { return threads_.size() + 1; }

  /// Runs fn(i) for every i in [0, count), blocking until all complete.
  /// fn must be safe to call concurrently for distinct indices. The first
  /// exception thrown by any index is rethrown here (remaining indices may
  /// or may not run).
  ///
  /// NOT REENTRANT: the pool runs one parallel_for job at a time (a single
  /// shared job/generation slot), so fn must never call parallel_for on
  /// the same pool — a nested call would clobber the in-flight job and
  /// deadlock or miscount. (submit() from inside fn is fine.) Session
  /// owners (accelerator, sharded router, read mapper) therefore run
  /// their parallel phases strictly one after another.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn)
      ASMCAP_EXCLUDES(mutex_);

  /// Enqueues one detached task. Tasks run FIFO within their priority
  /// class on the spawned threads, and a worker always prefers the
  /// highest class with queued work (High before Normal before Low); on a
  /// pool with no spawned threads (workers == 1) the task runs inline
  /// before submit() returns, via a trampoline so that task chains (tasks
  /// submitting tasks) use constant stack depth — inline execution is
  /// strict FIFO regardless of priority, which is irrelevant for ordering
  /// guarantees because every task completes before submit() returns.
  /// Tasks SHOULD NOT throw — there is no completion channel to carry an
  /// exception: on a threaded pool a throwing task terminates the
  /// process; on a threadless pool the exception propagates to the
  /// draining submit() caller (still-queued tasks run at the next
  /// submit). Callers such as SearchService catch inside the task and
  /// report at wait(). Callable from any thread, including from inside a
  /// running task.
  void submit(std::function<void()> task,
              TaskPriority priority = TaskPriority::Normal)
      ASMCAP_EXCLUDES(mutex_);

  /// max(1, std::thread::hardware_concurrency()).
  static std::size_t hardware_workers();

 private:
  struct Job {
    std::function<void(std::size_t)> fn;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining{0};
    Mutex error_mutex;
    std::exception_ptr error ASMCAP_GUARDED_BY(error_mutex);
  };

  void worker_loop() ASMCAP_EXCLUDES(mutex_);
  void run_job(Job& job) ASMCAP_EXCLUDES(mutex_);
  bool any_task_locked() const ASMCAP_REQUIRES(mutex_);
  std::function<void()> pop_task_locked() ASMCAP_REQUIRES(mutex_);

  std::vector<std::thread> threads_;
  Mutex mutex_;
  CondVar start_cv_;
  CondVar done_cv_;
  /// Current parallel_for job (the single shared slot).
  std::shared_ptr<Job> job_ ASMCAP_GUARDED_BY(mutex_);
  /// Bumped per job.
  std::uint64_t generation_ ASMCAP_GUARDED_BY(mutex_) = 0;
  /// submit queues, one per TaskPriority, popped High-first.
  std::array<std::deque<std::function<void()>>, kTaskPriorityCount> tasks_
      ASMCAP_GUARDED_BY(mutex_);
  bool stop_ ASMCAP_GUARDED_BY(mutex_) = false;
  // Inline-execution trampoline for threadless pools (any thread may
  // enqueue; whichever thread entered the drain loop executes).
  std::deque<std::function<void()>> inline_tasks_ ASMCAP_GUARDED_BY(mutex_);
  bool inline_running_ ASMCAP_GUARDED_BY(mutex_) = false;
};

/// A lazily-created, session-owned ThreadPool handle: the pool is built at
/// the first get() and reused across calls (the ROADMAP pool-reuse item —
/// no per-batch pool churn). The pool only ever grows: a request for fewer
/// workers reuses the existing larger pool instead of tearing it down, so
/// mixed single/batch usage (workers=1 alternating with workers=8) churns
/// no threads. That is sound because every parallel map in this codebase
/// is worker-count invariant by construction. `workers == 0` means one
/// worker per hardware thread.
///
/// Pinning: growth REPLACES the pool, which would destroy it under any
/// still-running submitted task. Dispatchers with in-flight work
/// (SearchService tickets) therefore pin() the handle for their lifetime;
/// while pinned, get() clamps growth requests to the live pool instead of
/// replacing it (safe: worker-count invariance again). get() itself stays
/// control-plane (one thread at a time); pin()/unpin() may be called from
/// worker tasks.
class SessionPool {
 public:
  ThreadPool& get(std::size_t workers = 0) {
    if (workers == 0) workers = ThreadPool::hardware_workers();
    if (!pool_ || (pool_->workers() < workers &&
                   pins_.load(std::memory_order_acquire) == 0))
      pool_ = std::make_unique<ThreadPool>(workers);
    return *pool_;
  }

  void pin() { pins_.fetch_add(1, std::memory_order_acq_rel); }
  void unpin() { pins_.fetch_sub(1, std::memory_order_acq_rel); }

 private:
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<std::size_t> pins_{0};
};

}  // namespace asmcap
