// detlint negative fixture: ad-hoc RNG state instead of the forkable
// Rng stream tree. Must trip DET-BANNED-SOURCE and nothing else.
// detlint-as: src/util/fixture_banned_source.cpp
// detlint-expect: DET-BANNED-SOURCE
#include <cstdlib>
#include <random>

unsigned bad_mersenne_draw() {
  std::mt19937 gen(std::random_device{}());  // BAD: unforkable RNG state
  return gen();
}

int bad_libc_draw() {
  srand(42);     // BAD: hidden global stream
  return rand();  // BAD: shared sequential draw
}
