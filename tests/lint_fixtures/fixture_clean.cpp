// detlint clean fixture: the patterns the determinism discipline
// endorses, all of which must pass every rule.
// detlint-as: src/asmcap/fixture_clean.cpp
#include <chrono>
#include <cstdint>

struct Rng {
  std::uint64_t next();
  Rng fork(std::uint64_t key) const;
};

struct Backend {
  // Per-decision streams are pure forks keyed by the GLOBAL segment id:
  // order-, worker-, and shard-invariant (determinism.md rule 1/2).
  std::uint64_t segment_coin(const Rng& pass_rng, std::uint64_t global_id) {
    Rng coin_rng = pass_rng.fork(global_id);
    return coin_rng.next();  // local stream, confined to this decision
  }

  // The control-plane fork-keying idiom for sequential search().
  Rng query_stream() { return rng_.fork(rng_.next()); }

  Rng rng_;
};

// steady_clock is the one chrono clock the engine may read (and only
// through util/clock.h in real code); mentioning it here checks the
// lint does not over-ban.
double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
