// detlint negative fixture: a decision path drawing sequentially from
// member Rng state. Must trip DET-SEQ-DRAW exactly once — the
// control-plane fork-keying idiom `rng_.fork(rng_.next())` below is the
// allowed shape and must NOT fire.
// detlint-as: src/asmcap/fixture_seq_draw.cpp
// detlint-expect: DET-SEQ-DRAW
#include <cstdint>

struct Rng {
  std::uint64_t next();
  Rng fork(std::uint64_t key) const;
};

struct Backend {
  // BAD: a per-segment decision drawn from shared sequential state —
  // the draw depends on evaluation order, not on the global segment id.
  std::uint64_t segment_coin() { return rng_.next(); }

  // Allowed: the one legal sequential draw, keying a per-query fork on
  // the control plane (determinism.md rule 1, "the stream tree").
  Rng query_stream() { return rng_.fork(rng_.next()); }

  Rng rng_;
};
