// detlint negative fixture: sleeping inside the engine. Must trip
// DET-SLEEP and nothing else.
// detlint-as: src/asmcap/fixture_sleep.cpp
// detlint-expect: DET-SLEEP
#include <chrono>
#include <thread>

void bad_backoff() {
  // BAD: the engine waits on state (CondVar, VirtualClock), never time.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
