// detlint negative fixture: wall-clock reads outside util/clock.h and
// bench/. Must trip DET-WALL-CLOCK and nothing else.
// detlint-as: src/util/fixture_wall_clock.cpp
// detlint-expect: DET-WALL-CLOCK
#include <chrono>
#include <ctime>

double bad_wall_clock() {
  // BAD: results must not depend on wall time (determinism.md rule 4).
  auto t = std::chrono::system_clock::now().time_since_epoch();
  auto u = std::chrono::high_resolution_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t + u).count() +
         static_cast<double>(std::time(nullptr));
}
