#include "asmcap/accelerator.h"

#include <gtest/gtest.h>

#include "align/edstar.h"
#include "asmcap/db_error.h"
#include "genome/edits.h"
#include "genome/reference.h"

namespace asmcap {
namespace {

AsmcapConfig small_config(bool ideal = true) {
  AsmcapConfig config;
  config.array_rows = 16;
  config.array_cols = 64;
  config.array_count = 4;
  config.ideal_sensing = ideal;
  return config;
}

class AcceleratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(401);
    reference_ = generate_reference(64 * 20 + 128, {}, rng);
    segments_ = segment_reference(reference_, 64);
    segments_.resize(20);
  }
  Sequence reference_;
  std::vector<Sequence> segments_;
};

TEST_F(AcceleratorTest, LoadAndCapacity) {
  AsmcapAccelerator accel(small_config());
  accel.load_reference(segments_);
  EXPECT_EQ(accel.loaded_segments(), 20u);
  EXPECT_EQ(accel.arrays_in_use(), 2u);  // 20 segments over 16-row arrays
  EXPECT_THROW(accel.load_reference(segments_), std::logic_error);
}

TEST_F(AcceleratorTest, CapacityOverflowThrows) {
  AsmcapConfig config = small_config();
  config.array_count = 1;  // 16 rows only
  AsmcapAccelerator accel(config);
  try {
    accel.load_reference(segments_);
    FAIL() << "expected DbError";
  } catch (const DbError& error) {
    EXPECT_EQ(error.kind(), DbErrorKind::CapacityExceeded);
  }
}

TEST_F(AcceleratorTest, SearchBeforeLoadThrows) {
  AsmcapAccelerator accel(small_config());
  EXPECT_THROW(accel.search(segments_[0], 2, StrategyMode::Baseline),
               std::logic_error);
}

TEST_F(AcceleratorTest, WrongReadWidthThrows) {
  AsmcapAccelerator accel(small_config());
  accel.load_reference(segments_);
  Rng rng(402);
  EXPECT_THROW(accel.search(Sequence::random(32, rng), 2,
                            StrategyMode::Baseline),
               std::invalid_argument);
}

TEST_F(AcceleratorTest, ExactReadMatchesItsSegmentOnly) {
  AsmcapAccelerator accel(small_config());
  accel.load_reference(segments_);
  const QueryResult result =
      accel.search(segments_[7], 0, StrategyMode::Baseline);
  ASSERT_EQ(result.decisions.size(), 20u);
  EXPECT_TRUE(result.decisions[7]);
  // Unrelated segments must not match at T = 0.
  std::size_t matches = 0;
  for (bool d : result.decisions) matches += d ? 1u : 0u;
  EXPECT_EQ(matches, 1u);
  ASSERT_EQ(result.matched_segments.size(), 1u);
  EXPECT_EQ(result.matched_segments[0], 7u);
}

TEST_F(AcceleratorTest, IdealDecisionsEqualEdStarThreshold) {
  AsmcapAccelerator accel(small_config(/*ideal=*/true));
  accel.load_reference(segments_);
  Rng rng(403);
  const EditedSequence edited =
      inject_edits(segments_[3], {0.03, 0.0, 0.0}, rng);
  Sequence read = edited.seq;
  while (read.size() < 64) read.push_back(Base::A);
  if (read.size() > 64) read = read.subseq(0, 64);
  for (std::size_t t : {std::size_t{0}, std::size_t{2}, std::size_t{6}}) {
    const QueryResult result = accel.search(read, t, StrategyMode::Baseline);
    for (std::size_t g = 0; g < segments_.size(); ++g)
      EXPECT_EQ(result.decisions[g], ed_star(segments_[g], read) <= t)
          << "g=" << g << " t=" << t;
  }
}

TEST_F(AcceleratorTest, LatencyAndEnergyAccounting) {
  AsmcapAccelerator accel(small_config());
  accel.load_reference(segments_);
  accel.set_error_profile(ErrorRates::condition_a());
  const QueryResult baseline =
      accel.search(segments_[0], 1, StrategyMode::Baseline);
  EXPECT_NEAR(baseline.latency_seconds, 0.9e-9, 1e-12);
  EXPECT_GT(baseline.energy_joules, 0.0);
  // HDAC at T=1 in condition A adds the HD pass: 2 searches.
  const QueryResult with_hdac =
      accel.search(segments_[0], 1, StrategyMode::HdacOnly);
  EXPECT_TRUE(with_hdac.plan.hd_search);
  EXPECT_NEAR(with_hdac.latency_seconds, 1.8e-9, 1e-12);
  EXPECT_GT(with_hdac.energy_joules, baseline.energy_joules);
  // Ledger saw both queries.
  EXPECT_EQ(accel.controller().totals().queries, 2u);
}

TEST_F(AcceleratorTest, TasrRotationsCostSearches) {
  AsmcapAccelerator accel(small_config());
  accel.load_reference(segments_);
  accel.set_error_profile(ErrorRates::condition_b());
  // T_l for 64-base reads in condition B: ceil(2e-4/0.01*64) = 2.
  const QueryResult no_rot = accel.search(segments_[0], 1,
                                          StrategyMode::TasrOnly);
  EXPECT_FALSE(no_rot.plan.tasr_triggered);
  const QueryResult rot = accel.search(segments_[0], 3, StrategyMode::TasrOnly);
  EXPECT_TRUE(rot.plan.tasr_triggered);
  EXPECT_EQ(rot.plan.ed_star_searches, 5u);
  EXPECT_NEAR(rot.latency_seconds, 5 * 0.9e-9, 1e-12);
}

TEST_F(AcceleratorTest, TasrRecoversBurstDeletion) {
  AsmcapAccelerator accel(small_config());
  accel.load_reference(segments_);
  accel.set_error_profile(ErrorRates::condition_b());
  Rng rng(405);
  // Burst-delete 2 bases near the front of segment 5's copy.
  EditedSequence edited =
      inject_indel_burst(segments_[5], EditKind::Deletion, 2, rng);
  while (edited.seq.size() < 64)
    edited.seq.push_back(base_from_code(
        static_cast<std::uint8_t>(rng.below(4))));
  const std::size_t threshold = 6;  // >= T_l = 2
  const std::size_t plain_star = ed_star(segments_[5], edited.seq);
  if (plain_star > threshold) {
    // Plain ED* misses it; TASR must recover it when a rotation fits.
    const QueryResult plain =
        accel.search(edited.seq, threshold, StrategyMode::Baseline);
    EXPECT_FALSE(plain.decisions[5]);
    const std::size_t rotated = ed_star_min_rotated(
        segments_[5], edited.seq, 2, RotateDir::Both);
    if (rotated <= threshold) {
      const QueryResult with_tasr =
          accel.search(edited.seq, threshold, StrategyMode::TasrOnly);
      EXPECT_TRUE(with_tasr.decisions[5]);
    }
  }
}

TEST_F(AcceleratorTest, NoisySensingStillMostlyCorrect) {
  AsmcapAccelerator accel(small_config(/*ideal=*/false));
  accel.load_reference(segments_);
  int correct = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    const QueryResult result =
        accel.search(segments_[t % 20], 2, StrategyMode::Baseline);
    correct += result.decisions[t % 20] ? 1 : 0;
  }
  // Charge-domain noise is tiny: self-matches at T=2 virtually always hold.
  EXPECT_GE(correct, trials - 1);
}

TEST_F(AcceleratorTest, LoadCostAccounted) {
  AsmcapAccelerator accel(small_config());
  EXPECT_EQ(accel.load_energy_joules(), 0.0);
  accel.load_reference(segments_);
  EXPECT_GT(accel.load_energy_joules(), 0.0);
  EXPECT_GT(accel.load_latency_seconds(), 0.0);
  // 20 segments of 64 bases at the default write cost.
  EXPECT_NEAR(accel.load_energy_joules(), 20.0 * 64.0 * 30e-15, 1e-18);
  // Latency set by the fullest array (16 rows), not the total.
  EXPECT_NEAR(accel.load_latency_seconds(), 16.0 * 2e-9, 1e-15);
}

TEST_F(AcceleratorTest, FullModeEqualsTasrScheduleUnderIdealSensing) {
  // With HDAC inactive (condition B) and TASR triggered, the Full-mode
  // decision must equal the OR over the ideal rotation schedule.
  AsmcapAccelerator accel(small_config(/*ideal=*/true));
  accel.load_reference(segments_);
  accel.set_error_profile(ErrorRates::condition_b());
  Rng rng(407);
  const Sequence read = Sequence::random(64, rng);
  const std::size_t threshold = 8;  // >= T_l = 2 for 64-base reads
  const QueryResult result = accel.search(read, threshold, StrategyMode::Full);
  ASSERT_TRUE(result.plan.tasr_triggered);
  ASSERT_FALSE(result.plan.hd_search);
  for (std::size_t g = 0; g < segments_.size(); ++g) {
    const std::size_t best =
        ed_star_min_rotated(segments_[g], read, 2, RotateDir::Both);
    EXPECT_EQ(result.decisions[g], best <= threshold) << "g=" << g;
  }
}

TEST_F(AcceleratorTest, DeterministicWithSameSeed) {
  AsmcapConfig config = small_config(/*ideal=*/false);
  AsmcapAccelerator a(config);
  AsmcapAccelerator b(config);
  a.load_reference(segments_);
  b.load_reference(segments_);
  Rng rng(406);
  const Sequence read = Sequence::random(64, rng);
  const QueryResult ra = a.search(read, 4, StrategyMode::Full);
  const QueryResult rb = b.search(read, 4, StrategyMode::Full);
  EXPECT_EQ(ra.decisions, rb.decisions);
  EXPECT_EQ(ra.energy_joules, rb.energy_joules);
}

}  // namespace
}  // namespace asmcap
