#include <gtest/gtest.h>

#include "circuit/area.h"
#include "circuit/power.h"
#include "circuit/timing.h"

namespace asmcap {
namespace {

class CircuitModels : public ::testing::Test {
 protected:
  ProcessParams process_;
  AreaModel area_{process_.area};
  PowerModel power_{process_};
  TimingModel timing_{process_};
};

// ---- Table I ---------------------------------------------------------------

TEST_F(CircuitModels, Table1CellArea) {
  // ASMCap 24.0 um^2, EDAM 33.4 um^2 (1.4x).
  EXPECT_NEAR(area_.asmcap_cell_area(), 24.0e-12, 0.5e-12);
  EXPECT_NEAR(area_.edam_cell_area(), 33.4e-12, 0.5e-12);
  EXPECT_NEAR(area_.edam_cell_area() / area_.asmcap_cell_area(), 1.4, 0.05);
}

TEST_F(CircuitModels, Table1SearchTime) {
  // ASMCap 0.9 ns, EDAM 2.4 ns (2.6x).
  EXPECT_NEAR(timing_.asmcap_search().total, 0.9e-9, 1e-12);
  EXPECT_NEAR(timing_.edam_search().total, 2.4e-9, 1e-12);
  EXPECT_NEAR(timing_.edam_search().total / timing_.asmcap_search().total,
              2.667, 0.1);
  // ASMCap skips the pre-charge phase entirely.
  EXPECT_EQ(timing_.asmcap_search().precharge, 0.0);
  EXPECT_GT(timing_.edam_search().precharge, 0.0);
}

TEST_F(CircuitModels, Table1PowerPerCell) {
  // ASMCap ~0.12 uW/cell, EDAM ~1.0 uW/cell (8.5x), at the paper's
  // workload operating point (n_mis close to N).
  const double n_mis = PowerModel::paper_avg_n_mis(256);
  const double asmcap = power_.asmcap_array_power(256, 256, n_mis).per_cell;
  const double edam = power_.edam_array_power(256, 256, n_mis).per_cell;
  EXPECT_NEAR(asmcap, 0.12e-6, 0.02e-6);
  EXPECT_NEAR(edam, 1.0e-6, 0.15e-6);
  EXPECT_NEAR(edam / asmcap, 8.5, 1.5);
}

// ---- §V-B area & power breakdown -------------------------------------------

TEST_F(CircuitModels, BreakdownArea) {
  const auto breakdown = area_.asmcap_array(256, 256);
  EXPECT_NEAR(breakdown.total, 1.58e-6, 0.03e-6);  // 1.58 mm^2
  EXPECT_GT(breakdown.cells_fraction, 0.99);
  EXPECT_NEAR(breakdown.cells_total + breakdown.periphery, breakdown.total,
              1e-15);
}

TEST_F(CircuitModels, BreakdownPower) {
  const double n_mis = PowerModel::paper_avg_n_mis(256);
  const auto breakdown = power_.asmcap_array_power(256, 256, n_mis);
  EXPECT_NEAR(breakdown.total, 7.67e-3, 0.4e-3);  // 7.67 mW
  EXPECT_NEAR(breakdown.cells / breakdown.total, 0.75, 0.03);
  EXPECT_NEAR(breakdown.shift_registers / breakdown.total, 0.19, 0.03);
  EXPECT_NEAR(breakdown.sense_amps / breakdown.total, 0.06, 0.02);
}

// ---- Model structure --------------------------------------------------------

TEST_F(CircuitModels, EdamArrayPaysPrechargeEnergy) {
  const double asmcap_energy = power_.asmcap_search_energy(256, 256, 128);
  const double edam_energy = power_.edam_search_energy(256, 256, 128);
  EXPECT_GT(edam_energy, asmcap_energy);
}

TEST_F(CircuitModels, Eq1EnergyVanishesAtExtremes) {
  // Matchline (cells) energy follows Eq. 1: ~0 at n_mis = 0 and N; the
  // periphery keeps total energy positive.
  const double mid = power_.asmcap_search_energy(256, 256, 128);
  const double low = power_.asmcap_search_energy(256, 256, 0.0);
  const double high = power_.asmcap_search_energy(256, 256, 256.0);
  EXPECT_GT(mid, 3.0 * low);
  EXPECT_GT(mid, 3.0 * high);
  EXPECT_GT(low, 0.0);
}

TEST_F(CircuitModels, PowerValidation) {
  EXPECT_THROW(power_.asmcap_search_energy(0, 256, 10), std::invalid_argument);
  EXPECT_THROW(power_.asmcap_search_energy(256, 256, 300),
               std::invalid_argument);
  EXPECT_THROW(power_.edam_array_power(256, 256, -1.0), std::invalid_argument);
}

TEST_F(CircuitModels, QueryLatencyScalesWithSearches) {
  EXPECT_DOUBLE_EQ(timing_.asmcap_query_latency(3),
                   3.0 * timing_.asmcap_search().total);
  EXPECT_DOUBLE_EQ(timing_.edam_query_latency(2),
                   2.0 * timing_.edam_search().total);
}

TEST_F(CircuitModels, EdamAreaBreakdownUsesEdamCell) {
  const auto edam = area_.edam_array(256, 256);
  const auto asmcap = area_.asmcap_array(256, 256);
  EXPECT_GT(edam.total, asmcap.total);
  EXPECT_NEAR(edam.cell_area, 33.4e-12, 0.5e-12);
}

}  // namespace
}  // namespace asmcap
