#include <gtest/gtest.h>

#include "align/edit_distance.h"
#include "baseline/cmcpu.h"
#include "baseline/kraken_like.h"
#include "baseline/resma.h"
#include "baseline/savi.h"
#include "genome/dataset.h"
#include "genome/edits.h"
#include "genome/reference.h"

namespace asmcap {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(601);
    const Sequence reference = generate_reference(128 * 16 + 256, {}, rng);
    rows_ = segment_reference(reference, 128);
    rows_.resize(16);
    rng_ = Rng(602);
  }
  std::vector<Sequence> rows_;
  Rng rng_{602};
};

// ---- CM-CPU ---------------------------------------------------------------

TEST_F(BaselineTest, CmCpuAllKernelsAgree) {
  const Sequence read = rows_[4];
  for (const CmKernel kernel :
       {CmKernel::FullDp, CmKernel::BandedDp, CmKernel::MyersBitParallel}) {
    CmCpuConfig config;
    config.kernel = kernel;
    const CmCpuBaseline cpu(config);
    const auto decisions = cpu.decide_rows(read, rows_, 3);
    for (std::size_t r = 0; r < rows_.size(); ++r)
      EXPECT_EQ(decisions[r], edit_distance(rows_[r], read) <= 3)
          << "kernel=" << static_cast<int>(kernel) << " r=" << r;
  }
}

TEST_F(BaselineTest, CmCpuPerfScalesWithWork) {
  const CmCpuBaseline cpu;
  EXPECT_GT(cpu.seconds_per_read(256, 1000, 4),
            cpu.seconds_per_read(256, 100, 4));
  EXPECT_GT(cpu.joules_per_read(256, 100, 4), 0.0);
  CmCpuConfig full;
  full.kernel = CmKernel::FullDp;
  CmCpuConfig banded;
  banded.kernel = CmKernel::BandedDp;
  // Banded with a small cap is much cheaper than the full matrix.
  EXPECT_GT(CmCpuBaseline(full).seconds_per_read(256, 100, 4),
            10.0 * CmCpuBaseline(banded).seconds_per_read(256, 100, 4));
}

// ---- ReSMA ----------------------------------------------------------------

TEST_F(BaselineTest, ResmaExactOnSurvivors) {
  const ResmaBaseline resma;
  Rng rng(603);
  const EditedSequence edited = inject_edits(rows_[2], {0.02, 0.0, 0.0}, rng);
  const auto decisions = resma.decide_rows(edited.seq, rows_, 6);
  // The true row shares plenty of 12-mers: it passes the filter and its
  // decision equals the exact ED test.
  EXPECT_EQ(decisions[2],
            banded_edit_distance(rows_[2], edited.seq, 6).within_band);
}

TEST_F(BaselineTest, ResmaFilterPrunesUnrelatedRows) {
  const ResmaBaseline resma;
  Rng rng(604);
  const Sequence foreign = Sequence::random(128, rng);
  std::size_t pruned = 0;
  resma.decide_rows(foreign, rows_, 6, &pruned);
  // A random 128-mer shares a 12-mer with a row only with tiny probability.
  EXPECT_GT(pruned, rows_.size() - 3);
  EXPECT_EQ(resma.count_candidates(foreign, rows_), rows_.size() - pruned);
}

TEST_F(BaselineTest, ResmaPerfModelShape) {
  const ResmaBaseline resma;
  // Latency grows with candidates once lanes saturate.
  EXPECT_GT(resma.seconds_per_read(256, 200), resma.seconds_per_read(256, 1));
  // Energy dominated by DP writes: linear in candidates.
  const double e1 = resma.joules_per_read(256, 1);
  const double e4 = resma.joules_per_read(256, 4);
  EXPECT_NEAR(e4 - resma.config().filter_energy,
              4.0 * (e1 - resma.config().filter_energy), 1e-9);
}

// ---- SaVI -----------------------------------------------------------------

TEST_F(BaselineTest, SaviFindsTrueRow) {
  SaviBaseline savi;
  savi.index_rows(rows_);
  Rng rng(605);
  const EditedSequence edited = inject_edits(rows_[9], {0.01, 0.0, 0.0}, rng);
  const auto decisions = savi.decide_rows(edited.seq);
  ASSERT_EQ(decisions.size(), rows_.size());
  EXPECT_TRUE(decisions[9]);
}

TEST_F(BaselineTest, SaviToleratesSingleIndel) {
  SaviBaseline savi;
  savi.index_rows(rows_);
  Rng rng(606);
  EditedSequence edited =
      inject_indel_burst(rows_[1], EditKind::Deletion, 1, rng);
  edited.seq.push_back(Base::A);
  EXPECT_TRUE(savi.decide_rows(edited.seq)[1])
      << "diagonal slack must absorb a single shift";
}

TEST_F(BaselineTest, SaviRejectsForeignReads) {
  SaviBaseline savi;
  savi.index_rows(rows_);
  Rng rng(607);
  const Sequence foreign = Sequence::random(128, rng);
  const auto decisions = savi.decide_rows(foreign);
  for (bool d : decisions) EXPECT_FALSE(d);
}

TEST_F(BaselineTest, SaviMissesHeavilyErroredReads) {
  // Seed-and-vote accuracy loss: dense substitutions destroy most 15-mers.
  SaviBaseline savi;
  savi.index_rows(rows_);
  Rng rng(608);
  int missed = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const EditedSequence edited =
        inject_edits(rows_[3], {0.25, 0.0, 0.0}, rng);  // 25% substitutions
    if (!savi.decide_rows(edited.seq)[3]) ++missed;
  }
  EXPECT_GT(missed, trials / 4);
}

TEST_F(BaselineTest, SaviPerfModel) {
  const SaviBaseline savi;
  EXPECT_GT(savi.seconds_per_read(256), 0.0);
  EXPECT_GT(savi.joules_per_read(256), 0.0);
  // 242 probes over 2 banks at 1 ns: ~121 ns.
  EXPECT_NEAR(savi.seconds_per_read(256), 121e-9, 5e-9);
}

// ---- Kraken-like ------------------------------------------------------------

TEST_F(BaselineTest, KrakenFindsCleanReads) {
  KrakenLikeClassifier kraken;
  kraken.index_rows(rows_);
  const auto decisions = kraken.decide_rows(rows_[6]);
  EXPECT_TRUE(decisions[6]);
}

TEST_F(BaselineTest, KrakenDegradesWithErrors) {
  // Exact matching: substitutions at 1 % destroy a large share of 22-mers;
  // hit fractions drop well below the clean-read level.
  KrakenLikeClassifier kraken;
  kraken.index_rows(rows_);
  Rng rng(609);
  double clean = 0.0;
  double noisy = 0.0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    clean += kraken.hit_fractions(rows_[5])[5];
    const EditedSequence edited =
        inject_edits(rows_[5], {0.03, 0.005, 0.005}, rng);
    Sequence read = edited.seq;
    while (read.size() < 128) read.push_back(Base::A);
    if (read.size() > 128) read = read.subseq(0, 128);
    noisy += kraken.hit_fractions(read)[5];
  }
  EXPECT_GT(clean / trials, 0.9);
  EXPECT_LT(noisy / trials, 0.7 * clean / trials);
}

TEST_F(BaselineTest, KrakenStrandInsensitive) {
  KrakenLikeClassifier kraken;
  kraken.index_rows(rows_);
  const auto fractions = kraken.hit_fractions(rows_[2].reverse_complement());
  EXPECT_GT(fractions[2], 0.9);
}

TEST_F(BaselineTest, KrakenShortReadSafe) {
  KrakenLikeClassifier kraken;
  kraken.index_rows(rows_);
  Rng rng(610);
  const auto decisions = kraken.decide_rows(Sequence::random(10, rng));
  for (bool d : decisions) EXPECT_FALSE(d);
}

}  // namespace
}  // namespace asmcap
