#include "util/bitvec.h"

#include <gtest/gtest.h>

namespace asmcap {
namespace {

TEST(BitVec, DefaultEmpty) {
  BitVec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, ConstructAllSet) {
  BitVec v(130, true);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.popcount(), 130u);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(129));
}

TEST(BitVec, SetGetClear) {
  BitVec v(70);
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(69);
  EXPECT_EQ(v.popcount(), 4u);
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  v.clear(64);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVec, OutOfRangeThrows) {
  BitVec v(10);
  EXPECT_THROW(v.get(10), std::out_of_range);
  EXPECT_THROW(v.set(10), std::out_of_range);
}

TEST(BitVec, FindFirstAndNext) {
  BitVec v(200);
  EXPECT_EQ(v.find_first(), 200u);
  v.set(5);
  v.set(64);
  v.set(199);
  EXPECT_EQ(v.find_first(), 5u);
  EXPECT_EQ(v.find_next(6), 64u);
  EXPECT_EQ(v.find_next(65), 199u);
  EXPECT_EQ(v.find_next(200), 200u);
}

TEST(BitVec, IterationVisitsAllSetBits) {
  BitVec v(300);
  for (std::size_t i = 0; i < 300; i += 7) v.set(i);
  std::size_t visited = 0;
  for (std::size_t i = v.find_first(); i < v.size(); i = v.find_next(i + 1)) {
    EXPECT_EQ(i % 7, 0u);
    ++visited;
  }
  EXPECT_EQ(visited, v.popcount());
}

TEST(BitVec, BitwiseOps) {
  BitVec a(66);
  BitVec b(66);
  a.set(1);
  a.set(65);
  b.set(1);
  b.set(2);
  BitVec both = a;
  both &= b;
  EXPECT_EQ(both.popcount(), 1u);
  EXPECT_TRUE(both.get(1));
  BitVec either = a;
  either |= b;
  EXPECT_EQ(either.popcount(), 3u);
  BitVec diff = a;
  diff ^= b;
  EXPECT_EQ(diff.popcount(), 2u);
  EXPECT_TRUE(diff.get(2));
  EXPECT_TRUE(diff.get(65));
}

TEST(BitVec, SizeMismatchThrows) {
  BitVec a(10);
  BitVec b(11);
  EXPECT_THROW(a &= b, std::invalid_argument);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW(a ^= b, std::invalid_argument);
}

TEST(BitVec, FlipKeepsTailClean) {
  BitVec v(67);
  v.set(0);
  v.flip();
  EXPECT_EQ(v.popcount(), 66u);
  EXPECT_FALSE(v.get(0));
  // find_next must not report ghost bits beyond size().
  EXPECT_EQ(v.find_next(66), 66u);
}

TEST(BitVec, ResizeGrowAndShrink) {
  BitVec v(10);
  v.set(9);
  v.resize(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_TRUE(v.get(9));
  EXPECT_FALSE(v.get(50));
  v.resize(130, true);
  EXPECT_TRUE(v.get(129));
  EXPECT_FALSE(v.get(50));
  v.resize(5);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, ResizeWithFillStartsMidWord) {
  BitVec v(3);
  v.resize(10, true);
  EXPECT_FALSE(v.get(0));
  EXPECT_FALSE(v.get(2));
  for (std::size_t i = 3; i < 10; ++i) EXPECT_TRUE(v.get(i));
}

TEST(BitVec, Equality) {
  BitVec a(64);
  BitVec b(64);
  EXPECT_TRUE(a == b);
  a.set(3);
  EXPECT_FALSE(a == b);
  b.set(3);
  EXPECT_TRUE(a == b);
  const BitVec c(65);
  EXPECT_FALSE(a == c);
}

TEST(BitVec, Reset) {
  BitVec v(100, true);
  v.reset();
  EXPECT_EQ(v.popcount(), 0u);
  EXPECT_EQ(v.size(), 100u);
}

}  // namespace
}  // namespace asmcap
