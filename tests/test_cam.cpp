#include <gtest/gtest.h>

#include "align/edstar.h"
#include "align/hamming.h"
#include "cam/array.h"
#include "cam/cell.h"
#include "cam/charge_readout.h"
#include "cam/current_readout.h"

namespace asmcap {
namespace {

TEST(AsmcapCell, PartialMatchOutputs) {
  //           read: A C G T
  const Sequence read = Sequence::from_string("ACGT");
  const AsmcapCell cell(Base::C);
  // At i=1 the stored C matches the co-located read base.
  EXPECT_TRUE(cell.compare(read, 1).co_located);
  // At i=2 the stored C matches the left neighbour (read[1] = C).
  const PartialMatch at2 = cell.compare(read, 2);
  EXPECT_FALSE(at2.co_located);
  EXPECT_TRUE(at2.left);
  EXPECT_FALSE(at2.right);
  // At i=0 the stored C matches the right neighbour (read[1] = C).
  const PartialMatch at0 = cell.compare(read, 0);
  EXPECT_FALSE(at0.co_located);
  EXPECT_FALSE(at0.left);  // no left neighbour at the boundary
  EXPECT_TRUE(at0.right);
  // At i=3 nothing matches.
  const PartialMatch at3 = cell.compare(read, 3);
  EXPECT_FALSE(at3.co_located || at3.left || at3.right);
  EXPECT_THROW(cell.compare(read, 4), std::out_of_range);
}

TEST(AsmcapCell, ModeMux) {
  const Sequence read = Sequence::from_string("ACGT");
  const AsmcapCell cell(Base::C);
  // i=2: neighbour match only. ED* mode: match (O=0); HD mode: mismatch.
  EXPECT_FALSE(cell.mismatch(read, 2, MatchMode::EdStar));
  EXPECT_TRUE(cell.mismatch(read, 2, MatchMode::Hamming));
  // i=1: co-located match in both modes.
  EXPECT_FALSE(cell.mismatch(read, 1, MatchMode::EdStar));
  EXPECT_FALSE(cell.mismatch(read, 1, MatchMode::Hamming));
}

TEST(EdamCell, AlwaysEdStarMode) {
  const Sequence read = Sequence::from_string("ACGT");
  const EdamCell cell(Base::C);
  EXPECT_FALSE(cell.mismatch(read, 2));  // neighbour match accepted
  EXPECT_TRUE(cell.mismatch(Sequence::from_string("AAAA"), 2));
}

TEST(CamArray, WriteAndReadBack) {
  CamArray array(4, 8);
  EXPECT_EQ(array.valid_rows(), 0u);
  const Sequence segment = Sequence::from_string("ACGTACGT");
  array.write_row(1, segment);
  EXPECT_TRUE(array.row_valid(1));
  EXPECT_FALSE(array.row_valid(0));
  EXPECT_EQ(array.row_segment(1), segment);
  EXPECT_THROW(array.row_segment(0), std::logic_error);
  array.invalidate_row(1);
  EXPECT_FALSE(array.row_valid(1));
}

TEST(CamArray, DimensionValidation) {
  EXPECT_THROW(CamArray(0, 8), std::invalid_argument);
  CamArray array(2, 8);
  EXPECT_THROW(array.write_row(5, Sequence::from_string("ACGTACGT")),
               std::out_of_range);
  EXPECT_THROW(array.write_row(0, Sequence::from_string("AC")),
               std::invalid_argument);
}

TEST(CamArray, SearchCountsMatchAlignKernels) {
  Rng rng(301);
  CamArray array(8, 64);
  std::vector<Sequence> rows;
  for (std::size_t r = 0; r < 8; ++r) {
    rows.push_back(Sequence::random(64, rng));
    array.write_row(r, rows.back());
  }
  const Sequence read = Sequence::random(64, rng);
  const auto star = array.search_counts(read, MatchMode::EdStar);
  const auto ham = array.search_counts(read, MatchMode::Hamming);
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_EQ(star[r], ed_star(rows[r], read));
    EXPECT_EQ(ham[r], hamming_distance(rows[r], read));
    EXPECT_LE(star[r], ham[r]);
  }
}

TEST(CamArray, InvalidRowsReportAllMismatch) {
  Rng rng(303);
  CamArray array(3, 32);
  array.write_row(1, Sequence::random(32, rng));
  const Sequence read = Sequence::random(32, rng);
  const auto counts = array.search_counts(read, MatchMode::EdStar);
  EXPECT_EQ(counts[0], 32u);  // invalid -> can never pass any threshold
  EXPECT_EQ(counts[2], 32u);
  EXPECT_LT(counts[1], 32u);
  const auto masks = array.search_masks(read, MatchMode::EdStar);
  EXPECT_EQ(masks[0].popcount(), 32u);
}

TEST(CamArray, CellByCellAgreesWithMask) {
  // The functional array must agree with the per-cell logic model.
  Rng rng(305);
  const Sequence stored = Sequence::random(48, rng);
  const Sequence read = Sequence::random(48, rng);
  CamArray array(1, 48);
  array.write_row(0, stored);
  for (const MatchMode mode : {MatchMode::EdStar, MatchMode::Hamming}) {
    const BitVec mask = array.row_mismatch_mask(0, read, mode);
    for (std::size_t i = 0; i < 48; ++i) {
      const AsmcapCell cell(stored[i]);
      EXPECT_EQ(mask.get(i), cell.mismatch(read, i, mode))
          << "i=" << i << " mode=" << static_cast<int>(mode);
    }
  }
}

TEST(ChargeReadout, NoiselessThresholdDecisions) {
  ChargeDomainParams params;
  params.cap_sigma_rel = 0.0;
  params.sa_noise_sigma = 0.0;
  Rng silicon(307);
  ChargeArrayReadout readout(4, 64, params, silicon);
  Rng search(308);
  BitVec mask(64);
  for (std::size_t i = 0; i < 5; ++i) mask.set(i * 7);
  // 5 mismatches: match iff T >= 5.
  for (std::size_t t = 0; t < 10; ++t) {
    const RowDecision decision = readout.sense_row(0, mask, t, search);
    EXPECT_EQ(decision.match, t >= 5) << "t=" << t;
  }
  EXPECT_GT(readout.consumed_energy(), 0.0);
}

TEST(ChargeReadout, DecideFromCachedVoltage) {
  ChargeDomainParams params;
  params.cap_sigma_rel = 0.0;
  params.sa_noise_sigma = 0.0;
  Rng silicon(309);
  const ChargeArrayReadout readout(1, 32, params, silicon);
  BitVec mask(32);
  mask.set(3);
  mask.set(17);
  const double vml = readout.settle_row(0, mask);
  Rng search(310);
  EXPECT_TRUE(readout.decide(vml, 2, search));
  EXPECT_FALSE(readout.decide(vml, 1, search));
}

TEST(CurrentReadout, NoiselessThresholdDecisions) {
  CurrentDomainParams params;
  params.i_sigma_rel = 0.0;
  params.sa_noise_sigma = 0.0;
  params.sh_noise_sigma = 0.0;
  params.timing_jitter_rel = 0.0;
  Rng silicon(311);
  CurrentArrayReadout readout(2, 256, params, silicon);
  Rng search(312);
  BitVec mask(256);
  for (std::size_t i = 0; i < 7; ++i) mask.set(i);
  for (std::size_t t = 0; t < 14; ++t) {
    const RowDecision decision = readout.sense_row(0, mask, t, search);
    EXPECT_EQ(decision.match, t >= 7) << "t=" << t;
  }
}

TEST(CurrentReadout, NoisyDecisionsDegradeNearBoundary) {
  // With the paper's noise parameters, decisions exactly at the boundary
  // flip noticeably often — the EDAM accuracy-loss mechanism.
  const CurrentDomainParams params;  // defaults: 2.5 % etc.
  Rng silicon(313);
  CurrentArrayReadout readout(1, 256, params, silicon);
  Rng search(314);
  BitVec mask(256);
  for (std::size_t i = 0; i < 5; ++i) mask.set(i);  // count = 5
  int mismatch_calls = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t)
    mismatch_calls += readout.sense_row(0, mask, 4, search).match ? 1 : 0;
  // Truth is "mismatch" (5 > 4) but noise flips some decisions.
  EXPECT_GT(mismatch_calls, 10);
  EXPECT_LT(mismatch_calls, trials / 2);
}

TEST(Readouts, MaskSizeValidation) {
  Rng silicon(315);
  ChargeArrayReadout charge(1, 16, {}, silicon);
  CurrentArrayReadout current(1, 16, {}, silicon);
  Rng search(316);
  EXPECT_THROW(charge.sense_row(0, BitVec(8), 1, search),
               std::invalid_argument);
  EXPECT_THROW(current.sense_row(0, BitVec(8), 1, search),
               std::invalid_argument);
  EXPECT_THROW(charge.sense_row(5, BitVec(16), 1, search), std::out_of_range);
}

}  // namespace
}  // namespace asmcap
