#include "align/cigar.h"

#include <gtest/gtest.h>

#include "align/edit_distance.h"
#include "genome/edits.h"

namespace asmcap {
namespace {

TEST(Cigar, OpChars) {
  EXPECT_EQ(to_char(CigarOp::Match), '=');
  EXPECT_EQ(to_char(CigarOp::Mismatch), 'X');
  EXPECT_EQ(to_char(CigarOp::Insertion), 'I');
  EXPECT_EQ(to_char(CigarOp::Deletion), 'D');
}

TEST(Cigar, PerfectMatch) {
  const Sequence s = Sequence::from_string("ACGTACGT");
  const Alignment alignment = align_global(s, s);
  EXPECT_EQ(alignment.edit_distance, 0u);
  EXPECT_EQ(alignment.to_string(), "8=");
  EXPECT_TRUE(cigar_consistent(alignment, s, s));
}

TEST(Cigar, SingleSubstitution) {
  const Sequence reference = Sequence::from_string("ACGTACGT");
  Sequence read = reference;
  read.set(3, Base::A);
  const Alignment alignment = align_global(reference, read);
  EXPECT_EQ(alignment.edit_distance, 1u);
  EXPECT_EQ(alignment.to_string(), "3=1X4=");
  EXPECT_TRUE(cigar_consistent(alignment, reference, read));
}

TEST(Cigar, SingleDeletion) {
  const Sequence reference = Sequence::from_string("ACGTACGT");
  Sequence read = reference;
  read.erase(2);
  const Alignment alignment = align_global(reference, read);
  EXPECT_EQ(alignment.edit_distance, 1u);
  EXPECT_EQ(alignment.read_length(), 7u);
  EXPECT_EQ(alignment.reference_length(), 8u);
  EXPECT_TRUE(cigar_consistent(alignment, reference, read));
}

TEST(Cigar, SingleInsertion) {
  const Sequence reference = Sequence::from_string("ACGTACGT");
  Sequence read = reference;
  read.insert(5, Base::T);
  const Alignment alignment = align_global(reference, read);
  EXPECT_EQ(alignment.edit_distance, 1u);
  EXPECT_EQ(alignment.read_length(), 9u);
  EXPECT_TRUE(cigar_consistent(alignment, reference, read));
}

TEST(Cigar, EmptySequences) {
  const Sequence empty;
  const Sequence s = Sequence::from_string("ACG");
  const Alignment del_all = align_global(s, empty);
  EXPECT_EQ(del_all.edit_distance, 3u);
  EXPECT_EQ(del_all.to_string(), "3D");
  const Alignment ins_all = align_global(empty, s);
  EXPECT_EQ(ins_all.to_string(), "3I");
  const Alignment nothing = align_global(empty, empty);
  EXPECT_TRUE(nothing.cigar.empty());
  EXPECT_EQ(nothing.edit_distance, 0u);
}

TEST(Cigar, DistanceMatchesReference) {
  Rng rng(811);
  for (int trial = 0; trial < 40; ++trial) {
    const Sequence reference = Sequence::random(60 + rng.below(80), rng);
    const EditedSequence mutated =
        inject_edits(reference, {0.05, 0.03, 0.03}, rng);
    const Alignment alignment = align_global(reference, mutated.seq);
    EXPECT_EQ(alignment.edit_distance,
              edit_distance(reference, mutated.seq));
    EXPECT_TRUE(cigar_consistent(alignment, reference, mutated.seq));
  }
}

TEST(Cigar, RunsAreCoalesced) {
  Rng rng(813);
  const Sequence reference = Sequence::random(100, rng);
  const Alignment alignment = align_global(reference, reference);
  ASSERT_EQ(alignment.cigar.size(), 1u);
  EXPECT_EQ(alignment.cigar[0].length, 100u);
  // No two adjacent entries share an op in any alignment.
  for (int trial = 0; trial < 10; ++trial) {
    const EditedSequence mutated =
        inject_edits(reference, {0.1, 0.03, 0.03}, rng);
    const Alignment a = align_global(reference, mutated.seq);
    for (std::size_t i = 1; i < a.cigar.size(); ++i)
      EXPECT_NE(a.cigar[i].op, a.cigar[i - 1].op);
  }
}

TEST(Cigar, ConsistencyRejectsWrongPairs) {
  const Sequence reference = Sequence::from_string("ACGTACGT");
  const Sequence read = Sequence::from_string("ACGTACGA");
  const Alignment alignment = align_global(reference, read);
  // Same alignment against a different read must fail the check.
  const Sequence other = Sequence::from_string("TCGTACGA");
  EXPECT_FALSE(cigar_consistent(alignment, reference, other));
  const Sequence short_read = Sequence::from_string("ACG");
  EXPECT_FALSE(cigar_consistent(alignment, reference, short_read));
}

}  // namespace
}  // namespace asmcap
