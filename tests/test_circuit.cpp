#include <gtest/gtest.h>

#include <cmath>

#include "circuit/capacitor.h"
#include "circuit/matchline.h"
#include "circuit/process.h"
#include "circuit/sense_amp.h"
#include "util/stats.h"

namespace asmcap {
namespace {

TEST(Process, DefaultsAreValid) {
  EXPECT_NO_THROW(validate(ProcessParams{}));
}

TEST(Process, DefaultsMatchPaperSetup) {
  const ProcessParams p;
  EXPECT_DOUBLE_EQ(p.charge.vdd, 1.2);
  EXPECT_DOUBLE_EQ(p.charge.cap_mean, 2e-15);      // 2 fF MIM
  EXPECT_DOUBLE_EQ(p.charge.cap_sigma_rel, 0.014);  // 1.4 %
  EXPECT_DOUBLE_EQ(p.current.i_sigma_rel, 0.025);   // 2.5 %
  EXPECT_NEAR(p.charge.search_time(), 0.9e-9, 1e-12);   // Table I
  EXPECT_NEAR(p.current.search_time(), 2.4e-9, 1e-12);  // Table I
}

TEST(Process, ValidationCatchesBadValues) {
  ProcessParams p;
  p.charge.vdd = -1.0;
  EXPECT_THROW(validate(p), std::invalid_argument);
  p = {};
  p.charge.cap_sigma_rel = 1.5;
  EXPECT_THROW(validate(p), std::invalid_argument);
  p = {};
  p.current.cell_current = 0.0;
  EXPECT_THROW(validate(p), std::invalid_argument);
  p = {};
  p.area.periphery_area_fraction = 1.0;
  EXPECT_THROW(validate(p), std::invalid_argument);
}

TEST(CapacitorBank, IdealVmlIsLinear) {
  Rng rng(1);
  ChargeDomainParams params;
  const CapacitorBank bank(256, params, rng);
  EXPECT_DOUBLE_EQ(bank.ideal_vml(0), 0.0);
  EXPECT_DOUBLE_EQ(bank.ideal_vml(256), 1.2);
  EXPECT_NEAR(bank.ideal_vml(128), 0.6, 1e-12);
  EXPECT_THROW(bank.ideal_vml(257), std::out_of_range);
}

TEST(CapacitorBank, ActualVmlTracksIdeal) {
  Rng rng(2);
  const CapacitorBank bank(256, {}, rng);
  BitVec mask(256);
  for (std::size_t i = 0; i < 64; ++i) mask.set(i * 4);
  const double actual = bank.actual_vml(mask);
  EXPECT_NEAR(actual, bank.ideal_vml(64), 0.01);  // within mismatch spread
  EXPECT_THROW(bank.actual_vml(BitVec(100)), std::invalid_argument);
}

TEST(CapacitorBank, ZeroSigmaIsExact) {
  Rng rng(3);
  ChargeDomainParams params;
  params.cap_sigma_rel = 0.0;
  const CapacitorBank bank(128, params, rng);
  BitVec mask(128);
  for (std::size_t i = 0; i < 32; ++i) mask.set(i);
  EXPECT_NEAR(bank.actual_vml(mask), bank.ideal_vml(32), 1e-12);
}

TEST(CapacitorBank, Eq1EnergySymmetricAndPeaksAtHalf) {
  Rng rng(4);
  const CapacitorBank bank(256, {}, rng);
  // Paper Eq. 1 is symmetric in n_mis <-> N - n_mis.
  EXPECT_DOUBLE_EQ(bank.search_energy(10), bank.search_energy(246));
  EXPECT_DOUBLE_EQ(bank.search_energy(0), 0.0);
  EXPECT_DOUBLE_EQ(bank.search_energy(256), 0.0);
  EXPECT_GT(bank.search_energy(128), bank.search_energy(64));
  // Absolute value: 128*128/256 * 2fF * 1.44 = 1.8432e-13 J.
  EXPECT_NEAR(bank.search_energy(128), 64.0 * 2e-15 * 1.44, 1e-18);
}

TEST(CapacitorBank, Eq2VarianceShape) {
  Rng rng(5);
  const CapacitorBank bank(256, {}, rng);
  EXPECT_DOUBLE_EQ(bank.vml_variance(0), 0.0);
  EXPECT_DOUBLE_EQ(bank.vml_variance(256), 0.0);
  EXPECT_GT(bank.vml_variance(128), bank.vml_variance(16));
  // Eq. 2 at n=128, N=256: 128*128/256^3 * 0.014^2 * 1.44.
  const double expected = 128.0 * 128.0 / (256.0 * 256.0 * 256.0) *
                          0.014 * 0.014 * 1.44;
  EXPECT_NEAR(bank.vml_variance(128), expected, 1e-12);
}

TEST(CapacitorBank, EmpiricalVarianceMatchesEq2) {
  // Monte-Carlo check of paper Eq. 2: ensemble variance across manufactured
  // rows at fixed n_mis should match the analytic form within sampling error.
  ChargeDomainParams params;
  Rng rng(6);
  const std::size_t n_cells = 128;
  const std::size_t n_mis = 64;
  RunningStats stats;
  for (int trial = 0; trial < 4000; ++trial) {
    const CapacitorBank bank(n_cells, params, rng);
    BitVec mask(n_cells);
    for (std::size_t i = 0; i < n_mis; ++i) mask.set(i);
    stats.add(bank.actual_vml(mask));
  }
  const CapacitorBank reference_bank(n_cells, params, rng);
  const double analytic = reference_bank.vml_variance(n_mis);
  EXPECT_NEAR(stats.variance(), analytic, 0.25 * analytic);
}

TEST(ChargeMatchline, SettleUsesBank) {
  Rng rng(7);
  const ChargeMatchline line(64, {}, rng);
  BitVec mask(64);
  mask.set(0);
  const double one = line.settle(mask);
  EXPECT_NEAR(one, 1.2 / 64.0, 0.15 / 64.0);
  EXPECT_EQ(line.cells(), 64u);
}

TEST(CurrentMatchline, IdealDischargeLinearUntilClamp) {
  Rng rng(8);
  CurrentDomainParams params;
  const CurrentMatchline line(256, params, rng);
  const double vpc = line.volts_per_count();
  EXPECT_NEAR(vpc, 1.2 / 256.0, 1e-4);  // full-range mapping
  EXPECT_NEAR(line.ideal_vml(0), 1.2, 1e-12);
  EXPECT_NEAR(line.ideal_vml(10), 1.2 - 10 * vpc, 1e-9);
  EXPECT_DOUBLE_EQ(line.ideal_vml(256), 0.0);  // clamped
}

TEST(CurrentMatchline, NominalDropScalesWithCount) {
  Rng rng(9);
  const CurrentMatchline line(128, {}, rng);
  BitVec small(128);
  BitVec large(128);
  for (std::size_t i = 0; i < 8; ++i) small.set(i);
  for (std::size_t i = 0; i < 64; ++i) large.set(i);
  EXPECT_GT(line.nominal_drop(large), 5.0 * line.nominal_drop(small));
}

TEST(CurrentMatchline, SampleNoiseStatistics) {
  Rng rng(10);
  CurrentDomainParams params;
  const CurrentMatchline line(256, params, rng);
  BitVec mask(256);
  for (std::size_t i = 0; i < 5; ++i) mask.set(i * 3);
  const double drop = line.nominal_drop(mask);
  RunningStats stats;
  Rng noise(11);
  for (int t = 0; t < 4000; ++t)
    stats.add(line.sample_from_drop(drop, noise));
  EXPECT_NEAR(stats.mean(), 1.2 - drop, 2e-3);
  // Random noise must include at least the S/H component.
  EXPECT_GT(stats.stddev(), 0.5 * params.sh_noise_sigma);
}

TEST(CurrentMatchline, EnergyGrowsWithMismatches) {
  Rng rng(12);
  const CurrentMatchline line(256, {}, rng);
  EXPECT_GT(line.search_energy(200), line.search_energy(20));
  EXPECT_GT(line.search_energy(20), 0.0);
}

TEST(SenseAmp, NoiselessDecisionsAreExact) {
  const SenseAmp sa(0.0);
  Rng rng(13);
  EXPECT_TRUE(sa.below(0.5, 0.6, rng));
  EXPECT_FALSE(sa.below(0.7, 0.6, rng));
  EXPECT_TRUE(sa.above(0.7, 0.6, rng));
  EXPECT_FALSE(sa.above(0.5, 0.6, rng));
}

TEST(SenseAmp, NoiseFlipsMarginalDecisions) {
  const SenseAmp sa(10e-3);
  Rng rng(14);
  int flips = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t)
    flips += sa.below(0.600, 0.600, rng) ? 0 : 1;  // exactly at boundary
  // About half the decisions flip at zero margin.
  EXPECT_NEAR(static_cast<double>(flips) / trials, 0.5, 0.06);
}

TEST(SenseAmp, LargeMarginIsRobust) {
  const SenseAmp sa(2e-3);
  Rng rng(15);
  for (int t = 0; t < 1000; ++t) {
    EXPECT_TRUE(sa.below(0.5, 0.6, rng));   // 50 sigma margin
    EXPECT_FALSE(sa.below(0.7, 0.6, rng));
  }
}

TEST(Vref, ChargeDomainPlacement) {
  // V_ref sits between level T and T+1: (T + 0.5)/N * VDD.
  EXPECT_NEAR(charge_vref(4, 256, 1.2), 4.5 / 256.0 * 1.2, 1e-12);
  EXPECT_THROW(charge_vref(4, 0, 1.2), std::invalid_argument);
}

TEST(Vref, CurrentDomainPlacement) {
  const double vpc = 1.2 / 256.0;
  EXPECT_NEAR(current_vref(4, 1.2, vpc), 1.2 - 4.5 * vpc, 1e-12);
}

TEST(Vref, ConsistentDecisions) {
  // Ideal charge-domain V_ML at count n must satisfy: match iff n <= T.
  for (std::size_t t = 0; t < 16; ++t) {
    for (std::size_t n = 0; n < 32; ++n) {
      const double vml = static_cast<double>(n) / 256.0 * 1.2;
      const bool match = vml <= charge_vref(t, 256, 1.2);
      EXPECT_EQ(match, n <= t) << "n=" << n << " t=" << t;
    }
  }
}

}  // namespace
}  // namespace asmcap
