#include "asmcap/config.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace asmcap {
namespace {

TEST(Config, DefaultsMatchPaper) {
  const AsmcapConfig config;
  EXPECT_EQ(config.array_rows, 256u);
  EXPECT_EQ(config.array_cols, 256u);
  EXPECT_EQ(config.array_count, 512u);
  EXPECT_DOUBLE_EQ(config.hdac.alpha, 200.0);
  EXPECT_DOUBLE_EQ(config.hdac.beta, 0.5);
  EXPECT_EQ(config.tasr.rotations, 2u);
  EXPECT_DOUBLE_EQ(config.tasr.gamma, 2e-4);
  // 64 Mb capacity (§V-E).
  EXPECT_EQ(config.capacity_bits(), 64u * 1024 * 1024);
  EXPECT_EQ(config.capacity_segments(), 512u * 256);
}

TEST(Config, StrategyModePredicates) {
  EXPECT_FALSE(hdac_active(StrategyMode::Baseline));
  EXPECT_TRUE(hdac_active(StrategyMode::HdacOnly));
  EXPECT_TRUE(hdac_active(StrategyMode::Full));
  EXPECT_FALSE(tasr_active(StrategyMode::HdacOnly));
  EXPECT_TRUE(tasr_active(StrategyMode::TasrOnly));
  EXPECT_TRUE(tasr_active(StrategyMode::Full));
  EXPECT_STREQ(to_string(StrategyMode::Full), "ASMCap w/ H./T.");
}

TEST(HdacProbability, PaperFormula) {
  const HdacParams params;  // alpha = 200, beta = 0.5
  // Condition A: es = 1 %, eid = 0.1 %.
  const ErrorRates a = ErrorRates::condition_a();
  const double expected_t1 =
      (0.01 / 0.011) * std::exp(-(200.0 * 0.001 + 0.5 * 1.0));
  EXPECT_NEAR(hdac_probability(params, a, 1), expected_t1, 1e-12);
  EXPECT_NEAR(hdac_probability(params, a, 1), 0.451, 0.01);
  // Monotonically decreasing in T.
  for (std::size_t t = 1; t < 8; ++t)
    EXPECT_GT(hdac_probability(params, a, t),
              hdac_probability(params, a, t + 1));
}

TEST(HdacProbability, IndelsSuppressSelection) {
  const HdacParams params;
  const ErrorRates b = ErrorRates::condition_b();  // eid = 1 %
  // e^-2 damping plus the small substitution share: p must be tiny.
  EXPECT_LT(hdac_probability(params, b, 2), 0.01);
  EXPECT_GT(hdac_probability(params, ErrorRates::condition_a(), 2), 0.2);
}

TEST(HdacProbability, EdgeCases) {
  const HdacParams params;
  EXPECT_EQ(hdac_probability(params, ErrorRates{}, 1), 0.0);
  // Pure substitutions, T = 0: p = e^0 = 1 at alpha*0 + beta*0.
  const ErrorRates subs_only{0.01, 0.0, 0.0};
  EXPECT_NEAR(hdac_probability(params, subs_only, 0), 1.0, 1e-12);
}

TEST(TasrLowerBound, PaperFormula) {
  const TasrParams params;  // gamma = 2e-4
  // Condition A: eid = 0.001 -> T_l = ceil(0.2 * 256) = 52: rotation
  // effectively never triggers in the swept range (T <= 8).
  EXPECT_EQ(tasr_lower_bound(params, ErrorRates::condition_a(), 256), 52u);
  // Condition B: eid = 0.01 -> T_l = ceil(0.02 * 256) = 6.
  EXPECT_EQ(tasr_lower_bound(params, ErrorRates::condition_b(), 256), 6u);
}

TEST(TasrLowerBound, NoIndelsNeverRotates) {
  const TasrParams params;
  EXPECT_EQ(tasr_lower_bound(params, ErrorRates{0.01, 0.0, 0.0}, 256),
            std::numeric_limits<std::size_t>::max());
}

TEST(TasrLowerBound, ScalesWithReadLength) {
  const TasrParams params;
  const ErrorRates b = ErrorRates::condition_b();
  EXPECT_GT(tasr_lower_bound(params, b, 512),
            tasr_lower_bound(params, b, 128));
}

}  // namespace
}  // namespace asmcap
