#include "genome/dataset.h"

#include <gtest/gtest.h>

#include "align/edit_distance.h"

namespace asmcap {
namespace {

TEST(Dataset, DimensionsMatchConfig) {
  Rng rng(21);
  DatasetConfig config = condition_a_config(32, 64);
  config.segment_length = 128;
  const Dataset dataset = build_dataset(config, rng);
  EXPECT_EQ(dataset.rows.size(), 32u);
  EXPECT_EQ(dataset.queries.size(), 64u);
  for (const auto& row : dataset.rows) EXPECT_EQ(row.size(), 128u);
  for (const auto& q : dataset.queries) EXPECT_EQ(q.read.size(), 128u);
  EXPECT_EQ(dataset.pair_count(), 32u * 64u);
}

TEST(Dataset, TrueRowsAreClose) {
  Rng rng(22);
  DatasetConfig config = condition_a_config(16, 64);
  config.segment_length = 128;
  config.contaminant_fraction = 0.0;
  const Dataset dataset = build_dataset(config, rng);
  for (const auto& q : dataset.queries) {
    ASSERT_LT(q.true_row, dataset.rows.size());
    // The read came from its true row's window: exact ED must be small
    // (bounded by the applied edits plus repadding effects).
    const std::size_t ed =
        edit_distance(dataset.rows[q.true_row], q.read);
    EXPECT_LE(ed, q.substitutions + 2 * (q.insertions + q.deletions) + 2);
  }
}

TEST(Dataset, ContaminantsMarkedWithSentinel) {
  Rng rng(23);
  DatasetConfig config = condition_a_config(8, 200);
  config.segment_length = 64;
  config.contaminant_fraction = 0.5;
  const Dataset dataset = build_dataset(config, rng);
  std::size_t contaminants = 0;
  for (const auto& q : dataset.queries)
    contaminants += q.true_row == dataset.rows.size() ? 1u : 0u;
  EXPECT_NEAR(contaminants, 100u, 30u);
}

TEST(Dataset, ContaminantsFarFromAllRows) {
  Rng rng(24);
  DatasetConfig config = condition_a_config(8, 40);
  config.segment_length = 64;
  config.contaminant_fraction = 1.0;
  const Dataset dataset = build_dataset(config, rng);
  for (const auto& q : dataset.queries) {
    for (const auto& row : dataset.rows) {
      EXPECT_FALSE(banded_edit_distance(row, q.read, 10).within_band);
    }
  }
}

TEST(Dataset, ConditionNamesAndRates) {
  const DatasetConfig a = condition_a_config();
  EXPECT_DOUBLE_EQ(a.rates.substitution, 0.01);
  EXPECT_NE(a.name.find("Condition A"), std::string::npos);
  const DatasetConfig b = condition_b_config();
  EXPECT_DOUBLE_EQ(b.rates.insertion, 0.005);
  EXPECT_NE(b.name.find("Condition B"), std::string::npos);
}

TEST(Dataset, Deterministic) {
  DatasetConfig config = condition_b_config(8, 16);
  config.segment_length = 64;
  Rng r1(9);
  Rng r2(9);
  const Dataset d1 = build_dataset(config, r1);
  const Dataset d2 = build_dataset(config, r2);
  ASSERT_EQ(d1.rows.size(), d2.rows.size());
  for (std::size_t i = 0; i < d1.rows.size(); ++i)
    EXPECT_EQ(d1.rows[i], d2.rows[i]);
  for (std::size_t i = 0; i < d1.queries.size(); ++i)
    EXPECT_EQ(d1.queries[i].read, d2.queries[i].read);
}

TEST(Dataset, InvalidConfigThrows) {
  Rng rng(1);
  DatasetConfig empty;
  empty.rows = 0;
  EXPECT_THROW(build_dataset(empty, rng), std::invalid_argument);
  DatasetConfig bad_frac = condition_a_config(4, 4);
  bad_frac.segment_length = 32;
  bad_frac.contaminant_fraction = 1.5;
  EXPECT_THROW(build_dataset(bad_frac, rng), std::invalid_argument);
}

}  // namespace
}  // namespace asmcap
