#include "asmcap/edam.h"

#include <gtest/gtest.h>

#include "align/edstar.h"
#include "genome/reference.h"

namespace asmcap {
namespace {

EdamConfig small_edam(bool ideal = true) {
  EdamConfig config;
  config.array_rows = 16;
  config.array_cols = 64;
  config.array_count = 2;
  config.ideal_sensing = ideal;
  return config;
}

class EdamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(501);
    const Sequence reference = generate_reference(64 * 24 + 64, {}, rng);
    segments_ = segment_reference(reference, 64);
    segments_.resize(24);
  }
  std::vector<Sequence> segments_;
};

TEST_F(EdamTest, LoadValidation) {
  EdamAccelerator edam(small_edam());
  edam.load_reference(segments_);
  EXPECT_EQ(edam.loaded_segments(), 24u);
  EXPECT_THROW(edam.load_reference(segments_), std::logic_error);
  EdamConfig tiny = small_edam();
  tiny.array_count = 1;
  EdamAccelerator small(tiny);
  EXPECT_THROW(small.load_reference(segments_), std::length_error);
}

TEST_F(EdamTest, IdealDecisionsEqualEdStar) {
  EdamAccelerator edam(small_edam(/*ideal=*/true));
  edam.load_reference(segments_);
  Rng rng(502);
  const Sequence read = Sequence::random(64, rng);
  const EdamQueryResult result = edam.search(read, 8);
  ASSERT_EQ(result.decisions.size(), 24u);
  for (std::size_t g = 0; g < 24; ++g)
    EXPECT_EQ(result.decisions[g], ed_star(segments_[g], read) <= 8);
}

TEST_F(EdamTest, SearchTimeMatchesTableOne) {
  EdamAccelerator edam(small_edam());
  edam.load_reference(segments_);
  const EdamQueryResult result = edam.search(segments_[0], 2);
  EXPECT_EQ(result.searches, 1u);
  EXPECT_NEAR(result.latency_seconds, 2.4e-9, 1e-12);
  EXPECT_GT(result.energy_joules, 0.0);
}

TEST_F(EdamTest, SrMultipliesSearches) {
  EdamConfig config = small_edam();
  config.sr_enabled = true;
  config.sr_rotations = 2;
  config.sr_direction = RotateDir::Both;
  EdamAccelerator edam(config);
  edam.load_reference(segments_);
  const EdamQueryResult result = edam.search(segments_[0], 2);
  EXPECT_EQ(result.searches, 5u);
  EXPECT_NEAR(result.latency_seconds, 5 * 2.4e-9, 1e-12);
}

TEST_F(EdamTest, SrWidensMatchesMonotonically) {
  // SR ORs rotated searches: its match set must contain the plain one.
  EdamConfig plain_config = small_edam(/*ideal=*/true);
  EdamConfig sr_config = plain_config;
  sr_config.sr_enabled = true;
  EdamAccelerator plain(plain_config);
  EdamAccelerator sr(sr_config);
  plain.load_reference(segments_);
  sr.load_reference(segments_);
  Rng rng(503);
  for (int t = 0; t < 10; ++t) {
    const Sequence read = Sequence::random(64, rng);
    const auto plain_result = plain.search(read, 12);
    const auto sr_result = sr.search(read, 12);
    for (std::size_t g = 0; g < 24; ++g)
      if (plain_result.decisions[g]) {
        EXPECT_TRUE(sr_result.decisions[g]);
      }
  }
}

TEST_F(EdamTest, NoisySensingFlipsBoundaryDecisions) {
  // With paper noise parameters, repeated searches of a boundary pair give
  // both answers — the accuracy-loss mechanism vs ASMCap.
  EdamAccelerator edam(small_edam(/*ideal=*/false));
  edam.load_reference(segments_);
  Rng rng(504);
  // Build a read at ED* == 3 from segment 0.
  Sequence read = segments_[0];
  read.set(10, complement(read[10]));
  read.set(30, complement(read[30]));
  read.set(50, complement(read[50]));
  const std::size_t star = ed_star(segments_[0], read);
  if (star == 0) GTEST_SKIP() << "substitutions hidden; construction failed";
  int matches = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t)
    matches += edam.search(read, star - 1).decisions[0] ? 1 : 0;
  // Truth at T = star-1 is mismatch, but noise produces some matches OR
  // systematic mismatch keeps it stable; at least the result is defined.
  EXPECT_LE(matches, trials);
}

TEST_F(EdamTest, WidthAndStateValidation) {
  EdamAccelerator edam(small_edam());
  EXPECT_THROW(edam.search(segments_[0], 2), std::logic_error);
  edam.load_reference(segments_);
  Rng rng(505);
  EXPECT_THROW(edam.search(Sequence::random(32, rng), 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace asmcap
