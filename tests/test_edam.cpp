#include "asmcap/edam.h"

#include <gtest/gtest.h>

#include "align/edstar.h"
#include "asmcap/db_error.h"
#include "genome/reference.h"

namespace asmcap {
namespace {

EdamConfig small_edam(bool ideal = true) {
  EdamConfig config;
  config.array_rows = 16;
  config.array_cols = 64;
  config.array_count = 2;
  config.ideal_sensing = ideal;
  return config;
}

class EdamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(501);
    const Sequence reference = generate_reference(64 * 24 + 64, {}, rng);
    segments_ = segment_reference(reference, 64);
    segments_.resize(24);
  }

  /// A mixed query bag: clean copies, lightly mutated copies, foreigners.
  std::vector<Sequence> make_reads(std::size_t count, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<Sequence> reads;
    for (std::size_t i = 0; i < count; ++i) {
      switch (i % 3) {
        case 0:
          reads.push_back(segments_[rng.below(segments_.size())]);
          break;
        case 1: {
          Sequence read = segments_[rng.below(segments_.size())];
          for (int e = 0; e < 3; ++e) {
            const std::size_t pos = rng.below(read.size());
            read.set(pos, complement(read[pos]));
          }
          reads.push_back(read);
          break;
        }
        default:
          reads.push_back(Sequence::random(64, rng));
      }
    }
    return reads;
  }

  std::vector<Sequence> segments_;
};

TEST_F(EdamTest, LoadValidation) {
  EdamAccelerator edam(small_edam());
  edam.load_reference(segments_);
  EXPECT_EQ(edam.loaded_segments(), 24u);
  EXPECT_THROW(edam.load_reference(segments_), std::logic_error);
  EdamConfig tiny = small_edam();
  tiny.array_count = 1;
  EdamAccelerator small(tiny);
  try {
    small.load_reference(segments_);
    FAIL() << "expected DbError";
  } catch (const DbError& error) {
    EXPECT_EQ(error.kind(), DbErrorKind::CapacityExceeded);
  }
}

TEST_F(EdamTest, IdealDecisionsEqualEdStar) {
  EdamAccelerator edam(small_edam(/*ideal=*/true));
  edam.load_reference(segments_);
  Rng rng(502);
  const Sequence read = Sequence::random(64, rng);
  const EdamQueryResult result = edam.search(read, 8);
  ASSERT_EQ(result.decisions.size(), 24u);
  for (std::size_t g = 0; g < 24; ++g)
    EXPECT_EQ(result.decisions[g], ed_star(segments_[g], read) <= 8);
}

TEST_F(EdamTest, SearchTimeMatchesTableOne) {
  EdamAccelerator edam(small_edam());
  edam.load_reference(segments_);
  const EdamQueryResult result = edam.search(segments_[0], 2);
  EXPECT_EQ(result.searches, 1u);
  EXPECT_NEAR(result.latency_seconds, 2.4e-9, 1e-12);
  EXPECT_GT(result.energy_joules, 0.0);
}

TEST_F(EdamTest, SrMultipliesSearches) {
  EdamConfig config = small_edam();
  config.sr_enabled = true;
  config.sr_rotations = 2;
  config.sr_direction = RotateDir::Both;
  EdamAccelerator edam(config);
  edam.load_reference(segments_);
  const EdamQueryResult result = edam.search(segments_[0], 2);
  EXPECT_EQ(result.searches, 5u);
  EXPECT_NEAR(result.latency_seconds, 5 * 2.4e-9, 1e-12);
}

TEST_F(EdamTest, SrWidensMatchesMonotonically) {
  // SR ORs rotated searches: its match set must contain the plain one.
  EdamConfig plain_config = small_edam(/*ideal=*/true);
  EdamConfig sr_config = plain_config;
  sr_config.sr_enabled = true;
  EdamAccelerator plain(plain_config);
  EdamAccelerator sr(sr_config);
  plain.load_reference(segments_);
  sr.load_reference(segments_);
  Rng rng(503);
  for (int t = 0; t < 10; ++t) {
    const Sequence read = Sequence::random(64, rng);
    const auto plain_result = plain.search(read, 12);
    const auto sr_result = sr.search(read, 12);
    for (std::size_t g = 0; g < 24; ++g)
      if (plain_result.decisions[g]) {
        EXPECT_TRUE(sr_result.decisions[g]);
      }
  }
}

TEST_F(EdamTest, WidthAndStateValidation) {
  EdamAccelerator edam(small_edam());
  EXPECT_THROW(edam.search(segments_[0], 2), std::logic_error);
  edam.load_reference(segments_);
  Rng rng(505);
  EXPECT_THROW(edam.search(Sequence::random(32, rng), 2),
               std::invalid_argument);
}

// ------------------------------------------------- order independence --

TEST_F(EdamTest, DecisionsIndependentOfQueryOrder) {
  // Regression for the seed-era bug: pass() drew sensing noise
  // sequentially from the shared member stream, so a read's decisions
  // depended on every query that ran before it. Noise is now keyed per
  // (query stream, pass, global segment): the same read must decide
  // identically with and without interleaved queries.
  EdamAccelerator edam(small_edam(/*ideal=*/false));
  edam.load_reference(segments_);
  Rng rng(506);
  // A mutated copy sits near the decision boundary, where SA noise is live.
  Sequence read = segments_[3];
  read.set(7, complement(read[7]));
  read.set(40, complement(read[40]));

  const EdamQueryResult before = edam.search(read, 1);
  for (const Sequence& other : make_reads(6, 507)) (void)edam.search(other, 1);
  const EdamQueryResult after = edam.search(read, 1);
  EXPECT_EQ(before.decisions, after.decisions);
  EXPECT_DOUBLE_EQ(before.energy_joules, after.energy_joules);

  // And a fresh instance reproduces the same decisions from the seed.
  EdamAccelerator fresh(small_edam(/*ideal=*/false));
  fresh.load_reference(segments_);
  const EdamQueryResult on_fresh = fresh.search(read, 1);
  EXPECT_EQ(before.decisions, on_fresh.decisions);
  EXPECT_DOUBLE_EQ(before.energy_joules, on_fresh.energy_joules);
}

TEST_F(EdamTest, NoisySensingIsReproducibleAndBoundarySensitive) {
  // Noise is deterministically keyed, so repeated searches of one read are
  // bit-identical — while across distinct boundary reads the current-domain
  // noise still flips some decisions relative to ideal sensing (the
  // accuracy-loss mechanism vs ASMCap).
  EdamAccelerator noisy(small_edam(/*ideal=*/false));
  EdamAccelerator ideal(small_edam(/*ideal=*/true));
  noisy.load_reference(segments_);
  ideal.load_reference(segments_);
  std::size_t flipped = 0;
  for (const Sequence& read : make_reads(24, 508)) {
    const EdamQueryResult a = noisy.search(read, 1);
    const EdamQueryResult b = noisy.search(read, 1);
    EXPECT_EQ(a.decisions, b.decisions);
    const EdamQueryResult exact = ideal.search(read, 1);
    for (std::size_t g = 0; g < a.decisions.size(); ++g)
      if (a.decisions[g] != exact.decisions[g]) ++flipped;
  }
  EXPECT_GT(flipped, 0u);  // paper noise parameters: boundary flips happen
}

// ------------------------------------------------------ batch engine --

TEST_F(EdamTest, BatchBitIdenticalToSerialAcrossWorkerCounts) {
  // Noisy sensing exercises the per-decision RNG keying; search_batch must
  // be bit-identical to sequential search() calls, for any worker count.
  const std::vector<Sequence> reads = make_reads(18, 509);
  EdamAccelerator serial(small_edam(/*ideal=*/false));
  serial.load_reference(segments_);
  std::vector<EdamQueryResult> expected;
  for (const Sequence& read : reads) expected.push_back(serial.search(read, 2));

  for (const std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    EdamAccelerator batched(small_edam(/*ideal=*/false));
    batched.load_reference(segments_);
    const auto results = batched.search_batch(reads, 2, workers);
    ASSERT_EQ(results.size(), expected.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].decisions, expected[i].decisions)
          << "workers=" << workers << " read " << i;
      EXPECT_EQ(results[i].searches, expected[i].searches);
      EXPECT_DOUBLE_EQ(results[i].energy_joules, expected[i].energy_joules);
      EXPECT_DOUBLE_EQ(results[i].latency_seconds,
                       expected[i].latency_seconds);
    }
  }
}

TEST_F(EdamTest, BatchOnSameInstanceMatchesSerial) {
  // Content-keyed query streams: a batch never perturbs anything, so the
  // SAME instance answers serial and batched queries identically.
  EdamAccelerator edam(small_edam(/*ideal=*/false));
  edam.load_reference(segments_);
  const std::vector<Sequence> reads = make_reads(9, 510);
  const auto batched = edam.search_batch(reads, 2, 3);
  for (std::size_t i = 0; i < reads.size(); ++i) {
    const EdamQueryResult single = edam.search(reads[i], 2);
    EXPECT_EQ(batched[i].decisions, single.decisions) << "read " << i;
    EXPECT_DOUBLE_EQ(batched[i].energy_joules, single.energy_joules);
  }
}

TEST_F(EdamTest, BatchValidation) {
  EdamAccelerator edam(small_edam());
  EXPECT_THROW(edam.search_batch({}, 2, 2), std::logic_error);
  edam.load_reference(segments_);
  EXPECT_TRUE(edam.search_batch({}, 2, 2).empty());
  Rng rng(511);
  EXPECT_THROW(edam.search_batch({Sequence::random(32, rng)}, 2, 2),
               std::invalid_argument);
}

// ------------------------------------------------ backend equivalence --

TEST_F(EdamTest, BackendsAgreeUnderIdealSensing) {
  for (const bool sr : {false, true}) {
    EdamConfig config = small_edam(/*ideal=*/true);
    config.sr_enabled = sr;
    EdamAccelerator circuit(config);
    EdamAccelerator functional(config);
    circuit.load_reference(segments_);
    functional.load_reference(segments_);
    functional.set_backend(BackendKind::Functional);
    EXPECT_EQ(functional.backend().name(), std::string("edam-functional"));
    EXPECT_EQ(circuit.backend().name(), std::string("edam-circuit"));

    for (const Sequence& read : make_reads(12, 512)) {
      for (const std::size_t threshold :
           {std::size_t{0}, std::size_t{2}, std::size_t{8}}) {
        const EdamQueryResult a = circuit.search(read, threshold);
        const EdamQueryResult b = functional.search(read, threshold);
        EXPECT_EQ(a.decisions, b.decisions) << "sr=" << sr
                                            << " T=" << threshold;
        EXPECT_EQ(a.searches, b.searches);
        EXPECT_DOUBLE_EQ(a.latency_seconds, b.latency_seconds);
      }
    }
  }
}

TEST_F(EdamTest, SrOrAccumulationEquivalentOnBothBackends) {
  // SR must equal the OR of the plain searches of every schedule entry, on
  // both backends (Algorithm-level equivalence of the pass accumulation).
  for (const BackendKind kind :
       {BackendKind::Circuit, BackendKind::Functional}) {
    EdamConfig sr_config = small_edam(/*ideal=*/true);
    sr_config.sr_enabled = true;
    EdamAccelerator sr(sr_config);
    EdamAccelerator plain(small_edam(/*ideal=*/true));
    sr.load_reference(segments_);
    plain.load_reference(segments_);
    sr.set_backend(kind);
    plain.set_backend(kind);

    for (const Sequence& read : make_reads(6, 513)) {
      const EdamQueryResult combined = sr.search(read, 10);
      std::vector<bool> expected(segments_.size(), false);
      for (const Sequence& rotated : rotation_schedule(
               read, sr_config.sr_rotations, sr_config.sr_direction)) {
        const EdamQueryResult one = plain.search(rotated, 10);
        for (std::size_t g = 0; g < expected.size(); ++g)
          expected[g] = expected[g] || one.decisions[g];
      }
      EXPECT_EQ(combined.decisions, expected)
          << "backend=" << to_string(kind);
    }
  }
}

// -------------------------------------------------------- energy ledger --

TEST_F(EdamTest, FunctionalEnergyMatchesCircuitEnergyExactly) {
  // The current-domain search energy is a pure function of the mismatch
  // count (current_row_search_energy), so the two backends' ledgers agree
  // bit-for-bit — noisy sensing included.
  EdamAccelerator circuit(small_edam(/*ideal=*/false));
  EdamAccelerator functional(small_edam(/*ideal=*/false));
  circuit.load_reference(segments_);
  functional.load_reference(segments_);
  functional.set_backend(BackendKind::Functional);
  for (const Sequence& read : make_reads(6, 514)) {
    const EdamQueryResult a = circuit.search(read, 2);
    const EdamQueryResult b = functional.search(read, 2);
    EXPECT_GT(a.energy_joules, 0.0);
    EXPECT_DOUBLE_EQ(a.energy_joules, b.energy_joules);
  }
}

TEST_F(EdamTest, EnergyAccumulatesPerPassDeltas) {
  // Mirrors test_engine's ledger check: a query's energy is the sum of its
  // pass energies — SR's total equals the plain energies of every schedule
  // entry — and is independent of whatever ran before (the seed-era
  // before/after scans of shared readout state are gone).
  EdamConfig sr_config = small_edam(/*ideal=*/false);
  sr_config.sr_enabled = true;
  EdamAccelerator sr(sr_config);
  EdamAccelerator plain(small_edam(/*ideal=*/false));
  sr.load_reference(segments_);
  plain.load_reference(segments_);

  const Sequence read = segments_[5];
  double expected = 0.0;
  for (const Sequence& rotated : rotation_schedule(
           read, sr_config.sr_rotations, sr_config.sr_direction))
    expected += plain.search(rotated, 2).energy_joules;
  const EdamQueryResult combined = sr.search(read, 2);
  EXPECT_DOUBLE_EQ(combined.energy_joules, expected);

  // History-independence of the ledger.
  for (const Sequence& other : make_reads(5, 515)) (void)sr.search(other, 2);
  EXPECT_DOUBLE_EQ(sr.search(read, 2).energy_joules, expected);
}

}  // namespace
}  // namespace asmcap
