#include "align/edit_distance.h"

#include <gtest/gtest.h>

#include "align/hamming.h"
#include "genome/edits.h"

namespace asmcap {
namespace {

TEST(EditDistance, KnownCases) {
  const auto ed = [](const char* a, const char* b) {
    return edit_distance(Sequence::from_string(a), Sequence::from_string(b));
  };
  EXPECT_EQ(ed("ACGT", "ACGT"), 0u);
  EXPECT_EQ(ed("ACGT", "ACGA"), 1u);
  EXPECT_EQ(ed("ACGT", "AGT"), 1u);    // one deletion
  EXPECT_EQ(ed("ACGT", "AACGT"), 1u);  // one insertion
  EXPECT_EQ(ed("AAAA", "TTTT"), 4u);
  EXPECT_EQ(ed("GAT", "TAG"), 2u);
}

TEST(EditDistance, EmptySequences) {
  const Sequence empty;
  const Sequence s = Sequence::from_string("ACG");
  EXPECT_EQ(edit_distance(empty, empty), 0u);
  EXPECT_EQ(edit_distance(empty, s), 3u);
  EXPECT_EQ(edit_distance(s, empty), 3u);
}

TEST(EditDistance, PaperFig2Values) {
  // Fig. 2 of the ASMCap paper. The substitution example matches exactly.
  // For the two indel examples the paper quotes "ED = 1": it counts the
  // single indel *event*, ignoring that in a fixed-width window the shifted
  // boundary base adds one more edit. True Levenshtein over the 8-base
  // windows is 2 (indel + boundary compensation).
  const Sequence s1 = Sequence::from_string("AGCTGAGA");
  EXPECT_EQ(edit_distance(s1, Sequence::from_string("ATCTGCGA")), 2u);
  EXPECT_EQ(edit_distance(s1, Sequence::from_string("AGCATGAG")), 2u);
  EXPECT_EQ(edit_distance(s1, Sequence::from_string("AGTGAGAA")), 2u);
}

TEST(EditDistance, BoundedByHammingForEqualLengths) {
  Rng rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    const Sequence a = Sequence::random(80, rng);
    const Sequence b = Sequence::random(80, rng);
    EXPECT_LE(edit_distance(a, b), hamming_distance(a, b));
  }
}

TEST(EditDistance, TriangleInequality) {
  Rng rng(43);
  for (int trial = 0; trial < 25; ++trial) {
    const Sequence a = Sequence::random(40, rng);
    const Sequence b = Sequence::random(40, rng);
    const Sequence c = Sequence::random(40, rng);
    EXPECT_LE(edit_distance(a, c),
              edit_distance(a, b) + edit_distance(b, c));
  }
}

TEST(EditDistance, Symmetry) {
  Rng rng(45);
  for (int trial = 0; trial < 25; ++trial) {
    const Sequence a = Sequence::random(30 + rng.below(40), rng);
    const Sequence b = Sequence::random(30 + rng.below(40), rng);
    EXPECT_EQ(edit_distance(a, b), edit_distance(b, a));
  }
}

TEST(BandedEditDistance, AgreesWithFullWithinCap) {
  Rng rng(47);
  for (int trial = 0; trial < 60; ++trial) {
    const Sequence a = Sequence::random(96, rng);
    const EditedSequence mutated = inject_edits(a, {0.03, 0.015, 0.015}, rng);
    const std::size_t exact = edit_distance(a, mutated.seq);
    const CappedDistance capped = banded_edit_distance(a, mutated.seq, 16);
    if (exact <= 16) {
      EXPECT_TRUE(capped.within_band);
      EXPECT_EQ(capped.distance, exact);
    } else {
      EXPECT_FALSE(capped.within_band);
      EXPECT_EQ(capped.distance, 17u);
    }
  }
}

TEST(BandedEditDistance, LengthGapBeyondCapShortCircuits) {
  const Sequence a = Sequence::from_string("AAAAAAAAAA");
  const Sequence b = Sequence::from_string("AA");
  const CappedDistance capped = banded_edit_distance(a, b, 3);
  EXPECT_FALSE(capped.within_band);
  EXPECT_EQ(capped.distance, 4u);
}

TEST(BandedEditDistance, CapZeroIsEqualityTest) {
  const Sequence a = Sequence::from_string("ACGT");
  EXPECT_TRUE(banded_edit_distance(a, a, 0).within_band);
  EXPECT_FALSE(
      banded_edit_distance(a, Sequence::from_string("ACGA"), 0).within_band);
}

TEST(BandedEditDistance, FarPairsExitEarly) {
  Rng rng(49);
  const Sequence a = Sequence::random(256, rng);
  const Sequence b = Sequence::random(256, rng);
  const CappedDistance capped = banded_edit_distance(a, b, 8);
  EXPECT_FALSE(capped.within_band);
}

TEST(BandedEditDistance, CellsReportActualWorkDone) {
  // The cells count backs the host-verification accounting: it must never
  // exceed the worst-case band area, and the Ukkonen early exit must show
  // up as a smaller charge for far pairs than for near ones.
  Rng rng(50);
  const std::size_t n = 256;
  const std::size_t cap = 8;
  const std::size_t worst = (n + 1) * (2 * cap + 1);
  const Sequence a = Sequence::random(n, rng);

  const CappedDistance self = banded_edit_distance(a, a, cap);
  EXPECT_GT(self.cells, 0u);
  EXPECT_LE(self.cells, worst);
  // A full (no-exit) run evaluates nearly the whole band.
  EXPECT_GT(self.cells, n * (2 * cap + 1) - 2 * cap * (cap + 1));

  const Sequence b = Sequence::random(n, rng);
  const CappedDistance far = banded_edit_distance(a, b, cap);
  ASSERT_FALSE(far.within_band);
  // Early exit: random pairs diverge after a handful of rows.
  EXPECT_LT(far.cells, self.cells / 2);

  // A short-circuited length gap does no DP work at all.
  EXPECT_EQ(banded_edit_distance(a, Sequence::random(n / 2, rng), cap).cells,
            0u);
}

TEST(EditDistanceWithin, MatchesExact) {
  Rng rng(51);
  for (int trial = 0; trial < 40; ++trial) {
    const Sequence a = Sequence::random(64, rng);
    const EditedSequence mutated = inject_edits(a, {0.05, 0.02, 0.02}, rng);
    const std::size_t exact = edit_distance(a, mutated.seq);
    for (std::size_t t : {std::size_t{0}, std::size_t{2}, std::size_t{5},
                          std::size_t{10}}) {
      EXPECT_EQ(edit_distance_within(a, mutated.seq, t), exact <= t)
          << "exact=" << exact << " t=" << t;
    }
  }
}

TEST(ComparisonMatrix, CornersAndMonotonicity) {
  const Sequence a = Sequence::from_string("ACGT");
  const Sequence b = Sequence::from_string("AGT");
  const auto m = comparison_matrix(a, b);
  const std::size_t w = b.size() + 1;
  EXPECT_EQ(m[0], 0u);
  EXPECT_EQ(m[0 * w + 3], 3u);            // top row
  EXPECT_EQ(m[4 * w + 0], 4u);            // left column
  EXPECT_EQ(m[4 * w + 3], edit_distance(a, b));
  // Neighbouring cells differ by at most 1.
  for (std::size_t i = 1; i <= a.size(); ++i)
    for (std::size_t j = 1; j <= b.size(); ++j) {
      EXPECT_LE(m[i * w + j], m[(i - 1) * w + j] + 1);
      EXPECT_LE(m[i * w + j], m[i * w + j - 1] + 1);
      EXPECT_GE(m[i * w + j] + 1, m[(i - 1) * w + j]);
    }
}

TEST(ComparisonMatrix, CostCounts) {
  const CmCost cost = comparison_matrix_cost(256, 256);
  EXPECT_EQ(cost.cells, 257u * 257u);
  EXPECT_EQ(cost.anti_diagonals, 513u);
}

}  // namespace
}  // namespace asmcap
