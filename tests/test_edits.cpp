#include "genome/edits.h"

#include <gtest/gtest.h>

#include "align/edit_distance.h"
#include "genome/sequence.h"

namespace asmcap {
namespace {

TEST(ErrorRates, PaperConditions) {
  const ErrorRates a = ErrorRates::condition_a();
  EXPECT_DOUBLE_EQ(a.substitution, 0.01);
  EXPECT_DOUBLE_EQ(a.indel(), 0.001);
  const ErrorRates b = ErrorRates::condition_b();
  EXPECT_DOUBLE_EQ(b.substitution, 0.001);
  EXPECT_DOUBLE_EQ(b.indel(), 0.01);
}

TEST(InjectEdits, ZeroRatesIsIdentity) {
  Rng rng(1);
  const Sequence original = Sequence::random(300, rng);
  const EditedSequence edited = inject_edits(original, {}, rng);
  EXPECT_EQ(edited.seq, original);
  EXPECT_TRUE(edited.edits.empty());
}

TEST(InjectEdits, RatesAboveOneThrow) {
  Rng rng(1);
  const Sequence original = Sequence::random(10, rng);
  EXPECT_THROW(inject_edits(original, {0.5, 0.3, 0.3}, rng),
               std::invalid_argument);
}

TEST(InjectEdits, SubstitutionAlwaysChangesBase) {
  Rng rng(2);
  const Sequence original = Sequence::random(2000, rng);
  const EditedSequence edited = inject_edits(original, {0.2, 0.0, 0.0}, rng);
  EXPECT_EQ(edited.seq.size(), original.size());
  for (const Edit& e : edited.edits) {
    ASSERT_EQ(e.kind, EditKind::Substitution);
    EXPECT_NE(e.base, original[e.position]);
    EXPECT_EQ(edited.seq[e.position], e.base);
  }
}

TEST(InjectEdits, CountsMatchKinds) {
  Rng rng(3);
  const Sequence original = Sequence::random(5000, rng);
  const EditedSequence edited =
      inject_edits(original, {0.01, 0.01, 0.01}, rng);
  EXPECT_EQ(edited.count(EditKind::Substitution) +
                edited.count(EditKind::Insertion) +
                edited.count(EditKind::Deletion),
            edited.edit_count());
  // Length bookkeeping: insertions add, deletions remove.
  EXPECT_EQ(edited.seq.size(), original.size() +
                                   edited.count(EditKind::Insertion) -
                                   edited.count(EditKind::Deletion));
}

TEST(InjectEdits, RatesApproximatelyRealized) {
  Rng rng(4);
  const Sequence original = Sequence::random(100000, rng);
  const ErrorRates rates{0.01, 0.005, 0.002};
  const EditedSequence edited = inject_edits(original, rates, rng);
  const double n = static_cast<double>(original.size());
  EXPECT_NEAR(edited.count(EditKind::Substitution) / n, 0.01, 0.002);
  EXPECT_NEAR(edited.count(EditKind::Insertion) / n, 0.005, 0.002);
  EXPECT_NEAR(edited.count(EditKind::Deletion) / n, 0.002, 0.001);
}

TEST(InjectEdits, EditCountBoundsTrueEditDistance) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const Sequence original = Sequence::random(120, rng);
    const EditedSequence edited =
        inject_edits(original, {0.02, 0.01, 0.01}, rng);
    const std::size_t ed = edit_distance(original, edited.seq);
    EXPECT_LE(ed, edited.edit_count());
  }
}

TEST(IndelBurst, DeletionRemovesRun) {
  Rng rng(6);
  const Sequence original = Sequence::random(100, rng);
  const EditedSequence edited =
      inject_indel_burst(original, EditKind::Deletion, 5, rng);
  EXPECT_EQ(edited.seq.size(), 95u);
  EXPECT_EQ(edited.count(EditKind::Deletion), 5u);
  // Deleted positions are consecutive.
  for (std::size_t i = 1; i < edited.edits.size(); ++i)
    EXPECT_EQ(edited.edits[i].position, edited.edits[i - 1].position + 1);
  EXPECT_EQ(edit_distance(original, edited.seq), 5u);
}

TEST(IndelBurst, InsertionAddsRun) {
  Rng rng(7);
  const Sequence original = Sequence::random(100, rng);
  const EditedSequence edited =
      inject_indel_burst(original, EditKind::Insertion, 3, rng);
  EXPECT_EQ(edited.seq.size(), 103u);
  EXPECT_EQ(edited.count(EditKind::Insertion), 3u);
  EXPECT_LE(edit_distance(original, edited.seq), 3u);
}

TEST(IndelBurst, RejectsSubstitutionKindAndLongRuns) {
  Rng rng(8);
  const Sequence original = Sequence::random(10, rng);
  EXPECT_THROW(inject_indel_burst(original, EditKind::Substitution, 2, rng),
               std::invalid_argument);
  EXPECT_THROW(inject_indel_burst(original, EditKind::Deletion, 10, rng),
               std::invalid_argument);
}

TEST(InjectSubstitutions, ExactCountAtDistinctPositions) {
  Rng rng(9);
  const Sequence original = Sequence::random(50, rng);
  const EditedSequence edited = inject_substitutions(original, 7, rng);
  EXPECT_EQ(edited.edit_count(), 7u);
  EXPECT_EQ(original.mismatch_count(edited.seq), 7u);
  EXPECT_EQ(edit_distance(original, edited.seq), 7u);
  EXPECT_THROW(inject_substitutions(original, 51, rng), std::invalid_argument);
}

TEST(TransitionBias, PartnerDefinition) {
  EXPECT_EQ(transition_of(Base::A), Base::G);
  EXPECT_EQ(transition_of(Base::G), Base::A);
  EXPECT_EQ(transition_of(Base::C), Base::T);
  EXPECT_EQ(transition_of(Base::T), Base::C);
  EXPECT_TRUE(is_transition(Base::A, Base::G));
  EXPECT_FALSE(is_transition(Base::A, Base::C));
  EXPECT_FALSE(is_transition(Base::A, Base::A));
}

TEST(TransitionBias, SubstituteBaseNeverReturnsSelf) {
  Rng rng(101);
  for (int t = 0; t < 400; ++t) {
    const Base original = base_from_code(static_cast<std::uint8_t>(t & 3));
    EXPECT_NE(substitute_base(original, 0.5, rng), original);
  }
}

TEST(TransitionBias, FractionRealized) {
  Rng rng(103);
  for (const double fraction : {0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0}) {
    std::size_t transitions = 0;
    const int trials = 20000;
    for (int t = 0; t < trials; ++t) {
      const Base replacement = substitute_base(Base::C, fraction, rng);
      transitions += is_transition(Base::C, replacement) ? 1u : 0u;
    }
    EXPECT_NEAR(static_cast<double>(transitions) / trials, fraction, 0.015)
        << "fraction=" << fraction;
  }
}

TEST(TransitionBias, InjectEditsHonoursBias) {
  Rng rng(105);
  const Sequence original = Sequence::random(60000, rng);
  ErrorRates rates{0.05, 0.0, 0.0};
  rates.transition_fraction = 2.0 / 3.0;  // ts/tv ~ 2, the genomic norm
  const EditedSequence edited = inject_edits(original, rates, rng);
  std::size_t transitions = 0;
  for (const Edit& e : edited.edits)
    transitions += is_transition(original[e.position], e.base) ? 1u : 0u;
  ASSERT_GT(edited.edits.size(), 1000u);
  EXPECT_NEAR(static_cast<double>(transitions) /
                  static_cast<double>(edited.edits.size()),
              2.0 / 3.0, 0.03);
}

TEST(FormatEdits, Readable) {
  std::vector<Edit> edits{{EditKind::Substitution, 12, Base::C},
                          {EditKind::Insertion, 40, Base::G},
                          {EditKind::Deletion, 77, Base::A}};
  EXPECT_EQ(format_edits(edits), "S@12(C) I@40(G) D@77");
  EXPECT_EQ(format_edits({}), "");
}

}  // namespace
}  // namespace asmcap
