#include "align/edstar.h"

#include <gtest/gtest.h>

#include "align/edit_distance.h"
#include "align/hamming.h"
#include "genome/edits.h"

namespace asmcap {
namespace {

// ---- The worked examples of paper Fig. 2 (stored = bottom row S2, read =
// ---- top row S1, matching the cell orientation of Fig. 4c). -------------

TEST(EdStar, PaperFig2Example1) {
  const Sequence read = Sequence::from_string("AGCTGAGA");
  const Sequence stored = Sequence::from_string("ATCTGCGA");
  EXPECT_EQ(hamming_distance(stored, read), 2u);
  EXPECT_EQ(ed_star(stored, read), 2u);
  EXPECT_EQ(edit_distance(stored, read), 2u);
}

TEST(EdStar, PaperFig2Example2) {
  const Sequence read = Sequence::from_string("AGCTGAGA");
  const Sequence stored = Sequence::from_string("AGCATGAG");
  EXPECT_EQ(hamming_distance(stored, read), 5u);
  EXPECT_EQ(ed_star(stored, read), 1u);
  // Paper quotes "ED = 1" (the indel event count); the exact window
  // Levenshtein is 2 — see test_edit_distance.cpp for the discussion.
  EXPECT_EQ(edit_distance(stored, read), 2u);
}

TEST(EdStar, PaperFig2Example3) {
  const Sequence read = Sequence::from_string("AGCTGAGA");
  const Sequence stored = Sequence::from_string("AGTGAGAA");
  EXPECT_EQ(hamming_distance(stored, read), 5u);
  EXPECT_EQ(ed_star(stored, read), 0u);
  EXPECT_EQ(edit_distance(stored, read), 2u);
}

// ---- Structural properties -----------------------------------------------

TEST(EdStar, IdenticalSequencesZero) {
  Rng rng(71);
  const Sequence s = Sequence::random(128, rng);
  EXPECT_EQ(ed_star(s, s), 0u);
}

TEST(EdStar, NeverExceedsHammingDistance) {
  Rng rng(73);
  for (int trial = 0; trial < 100; ++trial) {
    const Sequence a = Sequence::random(96, rng);
    const Sequence b = Sequence::random(96, rng);
    EXPECT_LE(ed_star(a, b), hamming_distance(a, b));
  }
}

TEST(EdStar, LengthMismatchThrows) {
  const Sequence a = Sequence::from_string("ACGT");
  const Sequence b = Sequence::from_string("ACG");
  EXPECT_THROW(ed_star(a, b), std::invalid_argument);
  EXPECT_THROW(ed_star_mismatch_mask(a, b), std::invalid_argument);
  EXPECT_THROW(ed_star_within(a, b, 1), std::invalid_argument);
}

TEST(EdStar, MaskAgreesWithCount) {
  // Lengths straddle the packed mask kernel's word and half-word
  // boundaries (the mask is compressed from 2-bit lanes, 32 per word).
  Rng rng(75);
  for (const std::size_t n :
       {std::size_t{33}, std::size_t{64}, std::size_t{96}, std::size_t{161}}) {
    for (int trial = 0; trial < 25; ++trial) {
      const Sequence a = Sequence::random(n, rng);
      const Sequence b = Sequence::random(n, rng);
      EXPECT_EQ(ed_star_mismatch_mask(a, b).popcount(), ed_star(a, b))
          << "n=" << n;
    }
  }
}

TEST(EdStar, WithinMatchesCount) {
  Rng rng(77);
  for (const std::size_t n : {std::size_t{64}, std::size_t{100}}) {
    for (int trial = 0; trial < 25; ++trial) {
      const Sequence a = Sequence::random(n, rng);
      const Sequence b = Sequence::random(n, rng);
      const std::size_t d = ed_star(a, b);
      EXPECT_TRUE(ed_star_within(a, b, d));
      if (d > 0) {
        EXPECT_FALSE(ed_star_within(a, b, d - 1));
      }
    }
  }
}

TEST(EdStar, SingleIndelAbsorbedLocally) {
  // A single deletion shifts the suffix by one; the +/-1 window keeps the
  // ED* penalty small (paper: ED* close to ED for isolated indels).
  Rng rng(79);
  for (int trial = 0; trial < 40; ++trial) {
    const Sequence window = Sequence::random(128, rng);
    EditedSequence edited =
        inject_indel_burst(window, EditKind::Deletion, 1, rng);
    // Repad with random tail base to keep the width.
    edited.seq.push_back(base_from_code(
        static_cast<std::uint8_t>(rng.below(4))));
    const std::size_t star = ed_star(window, edited.seq);
    EXPECT_LE(star, 4u) << "isolated deletion must stay cheap in ED*";
  }
}

TEST(EdStar, SubstitutionsCanHide) {
  // A substitution is invisible to ED* whenever the stored base still
  // matches one of the read's neighbouring bases — the false-positive
  // source HDAC corrects. In a homopolymer run, any substitution hides:
  const Sequence homo = Sequence::from_string("AAAAAAAA");
  Sequence homo_read = homo;
  homo_read.set(3, Base::C);  // stored 'A' at 3 still sees 'A' at 2 and 4
  EXPECT_EQ(hamming_distance(homo, homo_read), 1u);
  EXPECT_EQ(edit_distance(homo, homo_read), 1u);
  EXPECT_EQ(ed_star(homo, homo_read), 0u)
      << "substitution hidden by neighbouring equal bases";
  // A substitution in a locally heterogeneous context stays visible:
  const Sequence stored = Sequence::from_string("ACGTACGT");
  Sequence read = stored;
  read.set(2, Base::C);  // stored[2]='G' vs read window {C,C,T} -> mismatch
  EXPECT_EQ(ed_star(stored, read), 1u);
}

TEST(EdStar, ConsecutiveIndelsBlowUp) {
  // Two consecutive deletions shift the tail by 2 — beyond the +/-1
  // window, so ED* >> ED on random sequence (the misjudgment TASR fixes).
  Rng rng(81);
  double total_star = 0.0;
  double total_ed = 0.0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    const Sequence window = Sequence::random(128, rng);
    EditedSequence edited =
        inject_indel_burst(window, EditKind::Deletion, 2, rng);
    while (edited.seq.size() < window.size())
      edited.seq.push_back(
          base_from_code(static_cast<std::uint8_t>(rng.below(4))));
    total_star += static_cast<double>(ed_star(window, edited.seq));
    total_ed += static_cast<double>(edit_distance(window, edited.seq));
  }
  EXPECT_GT(total_star / trials, 3.0 * total_ed / trials);
}

TEST(EdStar, RotationRecoversConsecutiveDeletion) {
  Rng rng(83);
  for (int trial = 0; trial < 20; ++trial) {
    const Sequence window = Sequence::random(128, rng);
    // Delete 2 consecutive bases near the start so most of the read shifts.
    EditedSequence edited =
        inject_indel_burst(window, EditKind::Deletion, 2, rng);
    while (edited.seq.size() < window.size())
      edited.seq.push_back(
          base_from_code(static_cast<std::uint8_t>(rng.below(4))));
    const std::size_t plain = ed_star(window, edited.seq);
    const std::size_t rotated =
        ed_star_min_rotated(window, edited.seq, 2, RotateDir::Both);
    EXPECT_LE(rotated, plain);
  }
}

TEST(EdStar, RotationScheduleShape) {
  const Sequence read = Sequence::from_string("ACGTACGT");
  EXPECT_EQ(rotation_schedule(read, 2, RotateDir::Left).size(), 3u);
  EXPECT_EQ(rotation_schedule(read, 2, RotateDir::Right).size(), 3u);
  EXPECT_EQ(rotation_schedule(read, 2, RotateDir::Both).size(), 5u);
  EXPECT_EQ(rotation_schedule(read, 0, RotateDir::Both).size(), 1u);
  EXPECT_EQ(rotation_schedule(read, 1, RotateDir::Left)[1],
            read.rotated_left(1));
  EXPECT_EQ(rotation_schedule(read, 1, RotateDir::Right)[1],
            read.rotated_right(1));
}

TEST(EdStar, RandomPairMismatchRate) {
  // Unrelated 256-base rows: per-cell mismatch probability is (3/4)^3 for
  // interior cells, so ED* ~ 0.42 * N. This statistic drives the power
  // model discussion in DESIGN.md.
  Rng rng(85);
  double total = 0.0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    const Sequence a = Sequence::random(256, rng);
    const Sequence b = Sequence::random(256, rng);
    total += static_cast<double>(ed_star(a, b));
  }
  EXPECT_NEAR(total / trials / 256.0, 27.0 / 64.0, 0.015);
}

TEST(EdStar, PackedKernelMatchesScalar) {
  // The word-parallel kernel must agree with the scalar reference for every
  // length, including word-boundary and partial-word cases.
  Rng rng(86);
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{2}, std::size_t{31}, std::size_t{32},
        std::size_t{33}, std::size_t{63}, std::size_t{64}, std::size_t{65},
        std::size_t{100}, std::size_t{256}}) {
    for (int trial = 0; trial < 20; ++trial) {
      const Sequence a = Sequence::random(n, rng);
      Sequence b = a;
      for (std::uint64_t e = rng.below(n + 1); e > 0; --e)
        b.set(rng.below(n), base_from_code(
                                static_cast<std::uint8_t>(rng.below(4))));
      EXPECT_EQ(ed_star_packed(a.packed_words(), b.packed_words(), n),
                ed_star(a, b))
          << "n=" << n;
    }
  }
}

TEST(EdStar, PackedKernelMatchesScalarUnderIndels) {
  Rng rng(87);
  for (int trial = 0; trial < 50; ++trial) {
    const Sequence a = Sequence::random(96, rng);
    EditedSequence edited = inject_edits(a, {0.05, 0.02, 0.02}, rng);
    Sequence b = edited.seq;
    while (b.size() < 96) b.push_back(Base::C);
    if (b.size() > 96) b = b.subseq(0, 96);
    EXPECT_EQ(ed_star_packed(a.packed_words(), b.packed_words(), 96),
              ed_star(a, b));
  }
}

}  // namespace
}  // namespace asmcap
