// Tests of the layered execution engine: QueryPlanner plan materialisation,
// CircuitBackend/FunctionalBackend decision equivalence, and worker-count
// independence of search_batch.

#include <gtest/gtest.h>

#include "asmcap/accelerator.h"
#include "asmcap/readmapper.h"
#include "genome/edits.h"
#include "genome/readsim.h"
#include "genome/reference.h"

namespace asmcap {
namespace {

AsmcapConfig small_config(bool ideal = true) {
  AsmcapConfig config;
  config.array_rows = 16;
  config.array_cols = 64;
  config.array_count = 4;
  config.ideal_sensing = ideal;
  return config;
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(901);
    reference_ = generate_reference(64 * 40 + 128, {}, rng);
    segments_ = segment_reference(reference_, 64);
    segments_.resize(40);

    // A mixed bag of reads: clean copies, noisy copies, random foreigners.
    Rng read_rng(902);
    ReadSimConfig sim_config;
    sim_config.read_length = 64;
    sim_config.rates = ErrorRates::condition_a();
    const ReadSimulator sim(reference_, sim_config);
    for (int i = 0; i < 30; ++i) {
      switch (i % 3) {
        case 0:
          reads_.push_back(segments_[static_cast<std::size_t>(
              read_rng.below(segments_.size()))]);
          break;
        case 1:
          reads_.push_back(
              sim.simulate_at(read_rng.below(40) * 64, read_rng).read);
          break;
        default:
          reads_.push_back(Sequence::random(64, read_rng));
      }
    }
  }

  Sequence reference_;
  std::vector<Sequence> segments_;
  std::vector<Sequence> reads_;
};

// ------------------------------------------------------------- planner --

TEST_F(EngineTest, PlanMaterialisesSinglePassWithoutTasr) {
  const QueryPlanner planner(small_config());
  const ExecutionPlan plan =
      planner.build(reads_[0], 1, ErrorRates::condition_a(),
                    StrategyMode::Baseline);
  EXPECT_EQ(plan.ed_star_passes.size(), 1u);
  EXPECT_TRUE(plan.ed_star_passes[0] == reads_[0]);
  EXPECT_FALSE(plan.hd_pass);
  EXPECT_EQ(plan.threshold, 1u);
  EXPECT_EQ(plan.summary.total_searches(), 1u);
}

TEST_F(EngineTest, PlanMaterialisesRotationSchedule) {
  const QueryPlanner planner(small_config());
  // Condition B, T = 6 >= T_l = 2: TASR triggers with N_R = 2 per direction.
  const ExecutionPlan plan = planner.build(
      reads_[0], 6, ErrorRates::condition_b(), StrategyMode::TasrOnly);
  ASSERT_TRUE(plan.summary.tasr_triggered);
  EXPECT_EQ(plan.summary.ed_star_searches, 5u);
  // Original + 4 distinct rotations; the original is never re-searched.
  EXPECT_EQ(plan.ed_star_passes.size(), 5u);
  for (std::size_t p = 1; p < plan.ed_star_passes.size(); ++p)
    EXPECT_FALSE(plan.ed_star_passes[p] == reads_[0]);
}

TEST_F(EngineTest, PlanHdacPass) {
  const QueryPlanner planner(small_config());
  const ExecutionPlan plan = planner.build(
      reads_[0], 1, ErrorRates::condition_a(), StrategyMode::HdacOnly);
  EXPECT_TRUE(plan.hd_pass);
  EXPECT_GT(plan.hdac_p, 0.0);
  EXPECT_EQ(plan.summary.total_searches(), 2u);
}

// ---------------------------------------------------- backend equivalence --

TEST_F(EngineTest, BackendsAgreeUnderIdealSensing) {
  // The FunctionalBackend must reproduce the CircuitBackend's decisions
  // exactly when sensing is ideal, across all strategy modes.
  for (const StrategyMode mode :
       {StrategyMode::Baseline, StrategyMode::HdacOnly, StrategyMode::TasrOnly,
        StrategyMode::Full}) {
    AsmcapAccelerator circuit(small_config(/*ideal=*/true));
    AsmcapAccelerator functional(small_config(/*ideal=*/true));
    circuit.load_reference(segments_);
    functional.load_reference(segments_);
    functional.set_backend(BackendKind::Functional);
    EXPECT_EQ(functional.backend().name(), std::string("functional"));

    for (const Sequence& read : reads_) {
      for (const std::size_t threshold :
           {std::size_t{0}, std::size_t{2}, std::size_t{6}}) {
        const QueryResult a = circuit.search(read, threshold, mode);
        const QueryResult b = functional.search(read, threshold, mode);
        EXPECT_EQ(a.decisions, b.decisions)
            << "mode=" << to_string(mode) << " T=" << threshold;
        EXPECT_EQ(a.matched_segments, b.matched_segments);
        EXPECT_EQ(a.plan.total_searches(), b.plan.total_searches());
        EXPECT_DOUBLE_EQ(a.latency_seconds, b.latency_seconds);
      }
    }
  }
}

TEST_F(EngineTest, FunctionalEnergyTracksCircuitEnergy) {
  // Functional energy is the nominal (mismatch-free silicon) analytic
  // model; it must sit within a few percent of the manufactured circuit's.
  AsmcapAccelerator circuit(small_config());
  AsmcapAccelerator functional(small_config());
  circuit.load_reference(segments_);
  functional.load_reference(segments_);
  functional.set_backend(BackendKind::Functional);
  const QueryResult a = circuit.search(reads_[0], 2, StrategyMode::Baseline);
  const QueryResult b = functional.search(reads_[0], 2, StrategyMode::Baseline);
  EXPECT_GT(b.energy_joules, 0.0);
  EXPECT_NEAR(b.energy_joules / a.energy_joules, 1.0, 0.05);
}

TEST_F(EngineTest, BackendSwitchIsLive) {
  AsmcapAccelerator accel(small_config());
  accel.load_reference(segments_);
  EXPECT_EQ(accel.backend_kind(), BackendKind::Circuit);
  const QueryResult a = accel.search(reads_[0], 2, StrategyMode::Baseline);
  accel.set_backend(BackendKind::Functional);
  const QueryResult b = accel.search(reads_[0], 2, StrategyMode::Baseline);
  accel.set_backend(BackendKind::Circuit);
  const QueryResult c = accel.search(reads_[0], 2, StrategyMode::Baseline);
  EXPECT_EQ(a.decisions, b.decisions);  // ideal sensing: identical
  EXPECT_EQ(a.decisions, c.decisions);
  EXPECT_EQ(accel.controller().totals().queries, 3u);
}

// ------------------------------------------------------ batch determinism --

TEST_F(EngineTest, BatchResultsIndependentOfWorkerCount) {
  // Noisy sensing exercises the per-read RNG forking; results must be
  // bit-identical for any worker count.
  std::vector<std::vector<QueryResult>> runs;
  for (const std::size_t workers :
       {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    AsmcapAccelerator accel(small_config(/*ideal=*/false));
    accel.load_reference(segments_);
    runs.push_back(accel.search_batch(reads_, 4, StrategyMode::Full, workers));
  }
  for (std::size_t w = 1; w < runs.size(); ++w) {
    ASSERT_EQ(runs[w].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[w][i].decisions, runs[0][i].decisions) << "read " << i;
      EXPECT_EQ(runs[w][i].energy_joules, runs[0][i].energy_joules);
      EXPECT_EQ(runs[w][i].latency_seconds, runs[0][i].latency_seconds);
    }
  }
}

TEST_F(EngineTest, BatchDoesNotPerturbSequentialStream) {
  // A batch forks its per-read streams; the accelerator's own sequential
  // RNG must be left untouched, so search() after a batch behaves as if
  // the batch never happened.
  AsmcapAccelerator a(small_config(/*ideal=*/false));
  AsmcapAccelerator b(small_config(/*ideal=*/false));
  a.load_reference(segments_);
  b.load_reference(segments_);
  (void)a.search_batch(reads_, 4, StrategyMode::Full, 2);
  const QueryResult ra = a.search(reads_[0], 4, StrategyMode::Full);
  const QueryResult rb = b.search(reads_[0], 4, StrategyMode::Full);
  EXPECT_EQ(ra.decisions, rb.decisions);
  EXPECT_EQ(ra.energy_joules, rb.energy_joules);
}

TEST_F(EngineTest, BatchLedgerMatchesSequentialTotals) {
  AsmcapAccelerator accel(small_config());
  accel.load_reference(segments_);
  const auto results = accel.search_batch(reads_, 4, StrategyMode::Full, 4);
  ASSERT_EQ(results.size(), reads_.size());
  const ExecutionTotals& totals = accel.controller().totals();
  EXPECT_EQ(totals.queries, reads_.size());
  std::size_t searches = 0;
  double energy = 0.0;
  for (const QueryResult& r : results) {
    searches += r.plan.total_searches();
    energy += r.energy_joules;
  }
  EXPECT_EQ(totals.searches, searches);
  EXPECT_DOUBLE_EQ(totals.energy_joules, energy);
}

TEST_F(EngineTest, BatchValidation) {
  AsmcapAccelerator accel(small_config());
  EXPECT_THROW(accel.search_batch({}, 2, StrategyMode::Baseline, 2),
               std::logic_error);
  accel.load_reference(segments_);
  EXPECT_TRUE(accel.search_batch({}, 2, StrategyMode::Baseline, 2).empty());
  Rng rng(903);
  EXPECT_THROW(accel.search_batch({Sequence::random(32, rng)}, 2,
                                  StrategyMode::Baseline, 2),
               std::invalid_argument);
}

// ---------------------------------------------------------- batch mapper --

TEST_F(EngineTest, MapBatchWorkerCountIndependent) {
  Rng rng(904);
  ReadSimConfig sim_config;
  sim_config.read_length = 64;
  sim_config.rates = ErrorRates::condition_a();
  const ReadSimulator sim(reference_, sim_config);
  std::vector<Sequence> reads;
  for (int i = 0; i < 20; ++i)
    reads.push_back(sim.simulate_at(rng.below(40) * 64, rng).read);

  std::vector<std::vector<MappedRead>> runs;
  std::vector<MappingStats> stats;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    AsmcapConfig config = small_config(/*ideal=*/false);
    ReadMapper mapper(config, segments_, 64);
    std::vector<MappedRead> mapped;
    stats.push_back(
        mapper.map_batch(reads, 4, StrategyMode::Full, &mapped, workers));
    runs.push_back(std::move(mapped));
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[0][i].mapped, runs[1][i].mapped);
    EXPECT_EQ(runs[0][i].segment, runs[1][i].segment);
    EXPECT_EQ(runs[0][i].edit_distance, runs[1][i].edit_distance);
    EXPECT_EQ(runs[0][i].candidates, runs[1][i].candidates);
  }
  EXPECT_EQ(stats[0].mapped, stats[1].mapped);
  EXPECT_EQ(stats[0].host_dp_cells, stats[1].host_dp_cells);
  EXPECT_DOUBLE_EQ(stats[0].accel_energy_joules, stats[1].accel_energy_joules);
}

TEST_F(EngineTest, FunctionalBackendSpeedsUpMapperUnchangedDecisions) {
  // End-to-end: the mapper gives identical mappings on both backends under
  // ideal sensing.
  std::vector<std::vector<MappedRead>> runs;
  for (const BackendKind kind :
       {BackendKind::Circuit, BackendKind::Functional}) {
    ReadMapper mapper(small_config(/*ideal=*/true), segments_, 64);
    mapper.accelerator().set_backend(kind);
    std::vector<MappedRead> mapped;
    mapper.map_batch(reads_, 4, StrategyMode::Full, &mapped, 2);
    runs.push_back(std::move(mapped));
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[0][i].mapped, runs[1][i].mapped);
    EXPECT_EQ(runs[0][i].segment, runs[1][i].segment);
    EXPECT_EQ(runs[0][i].candidates, runs[1][i].candidates);
  }
}

}  // namespace
}  // namespace asmcap
