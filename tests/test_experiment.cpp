#include "eval/experiment.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "eval/report.h"

namespace asmcap {
namespace {

/// Small, fast dataset configurations used for integration testing. The
/// benchmark binaries run the paper-sized versions.
Dataset small_dataset(bool condition_a, Rng& rng) {
  DatasetConfig config = condition_a ? condition_a_config(48, 96)
                                     : condition_b_config(48, 96);
  return build_dataset(config, rng);
}

TEST(Table1, RatiosMatchPaper) {
  const auto rows = run_table1(ProcessParams{});
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_NEAR(rows[0].ratio, 1.4, 0.1);   // cell area
  EXPECT_NEAR(rows[1].ratio, 2.67, 0.1);  // search time
  EXPECT_NEAR(rows[2].ratio, 8.5, 1.5);   // power per cell
  const Table table = table1_table(rows);
  EXPECT_EQ(table.rows(), 3u);
}

TEST(Breakdown, MatchesPaperSection5B) {
  const BreakdownResult breakdown = run_breakdown(ProcessParams{}, 256, 256);
  EXPECT_NEAR(breakdown.area_total, 1.58e-6, 0.03e-6);
  EXPECT_GT(breakdown.area_cells_fraction, 0.99);
  EXPECT_NEAR(breakdown.power_total, 7.67e-3, 0.4e-3);
  EXPECT_NEAR(breakdown.power_cells_fraction, 0.75, 0.03);
  EXPECT_NEAR(breakdown.power_sr_fraction, 0.19, 0.03);
  EXPECT_NEAR(breakdown.power_sa_fraction, 0.06, 0.02);
  EXPECT_EQ(breakdown_table(breakdown).rows(), 6u);
}

TEST(States, MatchesPaperSection5D) {
  const StatesResult states = run_states(ProcessParams{});
  EXPECT_EQ(states.edam_states, 44u);
  EXPECT_EQ(states.asmcap_states, 566u);
  EXPECT_EQ(states_table(states).rows(), 2u);
}

class Fig7Test : public ::testing::Test {
 protected:
  Fig7Config small_config() const {
    Fig7Config config;
    config.asmcap.array_rows = 48;
    config.asmcap.array_cols = 256;
    return config;
  }
};

TEST_F(Fig7Test, ConditionAShape) {
  Rng rng(701);
  const Dataset dataset = small_dataset(/*condition_a=*/true, rng);
  const Fig7Runner runner(small_config());
  const Fig7Series series =
      runner.run(dataset, {1, 2, 3, 4, 5, 6, 7, 8}, rng);
  ASSERT_EQ(series.points.size(), 8u);

  // ASMCap w/o strategies must beat EDAM on average (charge-domain sensing).
  EXPECT_GE(series.mean(&Fig7Point::asmcap_base),
            series.mean(&Fig7Point::edam));
  // HDAC must help in the substitution-dominant condition.
  EXPECT_GT(series.mean(&Fig7Point::asmcap_hdac),
            series.mean(&Fig7Point::asmcap_base));
  // Full = HDAC behaviour here (TASR never triggers below T_l = 52).
  EXPECT_GT(series.mean(&Fig7Point::asmcap_full),
            series.mean(&Fig7Point::asmcap_base));
  // Everything beats the exact-matching Kraken-like baseline.
  EXPECT_GT(series.mean(&Fig7Point::asmcap_full),
            series.mean(&Fig7Point::kraken));
}

TEST_F(Fig7Test, ConditionAHdacHelpsMostAtSmallT) {
  Rng rng(703);
  const Dataset dataset = small_dataset(true, rng);
  const Fig7Runner runner(small_config());
  const Fig7Series series = runner.run(dataset, {1, 8}, rng);
  const double gain_small =
      series.points[0].asmcap_full - series.points[0].asmcap_base;
  const double gain_large =
      series.points[1].asmcap_full - series.points[1].asmcap_base;
  EXPECT_GT(gain_small, gain_large - 0.02);
}

TEST_F(Fig7Test, ConditionBShape) {
  Rng rng(705);
  const Dataset dataset = small_dataset(/*condition_a=*/false, rng);
  const Fig7Runner runner(small_config());
  const Fig7Series series =
      runner.run(dataset, {2, 4, 6, 8, 10, 12, 14, 16}, rng);
  // TASR must help in the indel-dominant condition.
  EXPECT_GT(series.mean(&Fig7Point::asmcap_tasr),
            series.mean(&Fig7Point::asmcap_base));
  EXPECT_GE(series.mean(&Fig7Point::asmcap_base),
            series.mean(&Fig7Point::edam) - 0.01);
}

TEST_F(Fig7Test, ConfusionTotalsEqualPairCount) {
  Rng rng(707);
  const Dataset dataset = small_dataset(true, rng);
  const Fig7Runner runner(small_config());
  const Fig7Series series = runner.run(dataset, {4}, rng);
  const std::size_t pairs = dataset.pair_count();
  EXPECT_EQ(series.points[0].cm_edam.total(), pairs);
  EXPECT_EQ(series.points[0].cm_base.total(), pairs);
  EXPECT_EQ(series.points[0].cm_full.total(), pairs);
}

TEST_F(Fig7Test, IdealSensingIsUpperBoundForBaseline) {
  Rng rng(709);
  const Dataset dataset = small_dataset(true, rng);
  Fig7Config noisy = small_config();
  Fig7Config ideal = small_config();
  ideal.asmcap.ideal_sensing = true;
  const Fig7Series noisy_series =
      Fig7Runner(noisy).run(dataset, {1, 2, 4}, rng);
  Rng rng2(709);
  const Fig7Series ideal_series =
      Fig7Runner(ideal).run(dataset, {1, 2, 4}, rng2);
  // EDAM improves a lot under ideal sensing; ASMCap barely changes.
  EXPECT_GE(ideal_series.mean(&Fig7Point::edam) + 1e-9,
            noisy_series.mean(&Fig7Point::edam));
  EXPECT_NEAR(ideal_series.mean(&Fig7Point::asmcap_base),
              noisy_series.mean(&Fig7Point::asmcap_base), 0.05);
}

TEST_F(Fig7Test, ReportTablesRender) {
  Rng rng(711);
  const Dataset dataset = small_dataset(true, rng);
  const Fig7Runner runner(small_config());
  const Fig7Series series = runner.run(dataset, {1, 2}, rng);
  EXPECT_EQ(fig7_table(series).rows(), 2u);
  EXPECT_EQ(fig7_normalized_table(series).rows(), 2u);
}

TEST(Fig7Runner, EmptyThresholdsThrow) {
  Rng rng(713);
  const Dataset dataset = small_dataset(true, rng);
  EXPECT_THROW(Fig7Runner().run(dataset, {}, rng), std::invalid_argument);
}

TEST_F(Fig7Test, EdamSrFlipLeavesAsmcapArmsBitIdentical) {
  // Regression: the replay used to thread ONE sequential noise stream
  // through all contender arms, so enabling EDAM's SR shifted the draws —
  // and the accuracy — of the ASMCap arms. Noise is now forked per
  // (arm, query, row): flipping edam_sr_enabled must leave every asmcap_*
  // F1 (and the kraken baseline) bit-identical.
  Rng rng(721);
  const Dataset dataset = small_dataset(/*condition_a=*/true, rng);
  Fig7Config without_sr = small_config();
  Fig7Config with_sr = small_config();
  with_sr.edam_sr_enabled = true;
  Rng rng_a(722);
  Rng rng_b(722);
  const Fig7Series a =
      Fig7Runner(without_sr).run(dataset, {1, 2, 4, 8}, rng_a);
  const Fig7Series b = Fig7Runner(with_sr).run(dataset, {1, 2, 4, 8}, rng_b);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t t = 0; t < a.points.size(); ++t) {
    EXPECT_DOUBLE_EQ(a.points[t].asmcap_base, b.points[t].asmcap_base);
    EXPECT_DOUBLE_EQ(a.points[t].asmcap_hdac, b.points[t].asmcap_hdac);
    EXPECT_DOUBLE_EQ(a.points[t].asmcap_tasr, b.points[t].asmcap_tasr);
    EXPECT_DOUBLE_EQ(a.points[t].asmcap_full, b.points[t].asmcap_full);
    EXPECT_DOUBLE_EQ(a.points[t].kraken, b.points[t].kraken);
  }
}

TEST(ReadLength, SaltDomainsDisjointForConsecutiveLengths) {
  // Regression: the sweep forked rng.fork(L) for length L's dataset and
  // rng.fork(L + 1) for its run, so length L's run stream collided with
  // length L+1's dataset stream. The salted domains must never collide.
  std::set<std::uint64_t> salts;
  for (std::size_t length = 64; length <= 1025; ++length) {
    salts.insert(readlength_dataset_salt(length));
    salts.insert(readlength_run_salt(length));
  }
  EXPECT_EQ(salts.size(), 2u * (1025u - 64u + 1u));
  // The historical collision, spelled out: L's run vs (L+1)'s dataset.
  Rng rng(723);
  for (const std::size_t length : {64u, 128u, 256u, 512u, 1024u}) {
    EXPECT_NE(readlength_run_salt(length),
              readlength_dataset_salt(length + 1));
    Rng run_stream = rng.fork(readlength_run_salt(length));
    Rng next_dataset_stream = rng.fork(readlength_dataset_salt(length + 1));
    EXPECT_NE(run_stream.next(), next_dataset_stream.next());
  }
}

TEST(ShardedComparison, IncludesEdamContender) {
  Rng rng(725);
  DatasetConfig dataset_config = condition_a_config(32, 24);
  dataset_config.segment_length = 64;
  const Dataset dataset = build_dataset(dataset_config, rng);

  ShardedComparisonConfig config;
  config.bank.array_rows = 16;
  config.bank.array_cols = 64;
  config.bank.array_count = 1;
  config.bank.ideal_sensing = true;
  config.shards = 2;
  config.threshold = 4;
  config.workers = 2;
  config.kraken.k = 16;
  config.edam_backend = BackendKind::Functional;
  const ShardedComparisonResult result =
      run_sharded_comparison(config, dataset);
  EXPECT_EQ(result.cm_edam.total(), dataset.pair_count());
  EXPECT_GE(result.edam_f1, 0.0);
  EXPECT_LE(result.edam_f1, 1.0);
  EXPECT_GT(result.edam_energy_joules, 0.0);
  EXPECT_GT(result.edam_latency_seconds, 0.0);
  // Ideal sensing and no strategies on either side: same ED* filter, so
  // EDAM matches the plain ASMCap decisions' quality envelope.
  EXPECT_GT(result.edam_f1, 0.5);
}

}  // namespace
}  // namespace asmcap
