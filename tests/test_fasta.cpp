#include "genome/fasta.h"

#include <gtest/gtest.h>

#include <sstream>

namespace asmcap {
namespace {

TEST(Fasta, ParsesMultiRecord) {
  std::istringstream in(
      ">seq1 first record\nACGT\nACGT\n"
      ">seq2\nTTTT\n");
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id, "seq1");
  EXPECT_EQ(records[0].comment, "first record");
  EXPECT_EQ(records[0].seq.to_string(), "ACGTACGT");
  EXPECT_EQ(records[1].id, "seq2");
  EXPECT_EQ(records[1].seq.to_string(), "TTTT");
}

TEST(Fasta, CountsAmbiguousBases) {
  std::istringstream in(">x\nACNNGT\n");
  std::size_t ambiguous = 0;
  const auto records = read_fasta(in, &ambiguous);
  EXPECT_EQ(ambiguous, 2u);
  EXPECT_EQ(records[0].seq.size(), 6u);  // Ns resolved, not dropped
}

TEST(Fasta, SequenceBeforeHeaderThrows) {
  std::istringstream in("ACGT\n>late\nAC\n");
  EXPECT_THROW(read_fasta(in), std::runtime_error);
}

TEST(Fasta, WriteReadRoundTrip) {
  std::vector<FastaRecord> records(2);
  records[0].id = "a";
  records[0].seq = Sequence::from_string("ACGTACGTACGT");
  records[1].id = "b";
  records[1].comment = "note";
  records[1].seq = Sequence::from_string("GGCC");
  std::ostringstream out;
  write_fasta(out, records, 5);  // small wrap to test line breaking
  std::istringstream in(out.str());
  const auto parsed = read_fasta(in);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].seq.to_string(), "ACGTACGTACGT");
  EXPECT_EQ(parsed[1].id, "b");
  EXPECT_EQ(parsed[1].comment, "note");
}

TEST(Fasta, EmptyInputYieldsNothing) {
  std::istringstream in("\n\n");
  EXPECT_TRUE(read_fasta(in).empty());
}

TEST(Fastq, ParsesRecords) {
  std::istringstream in("@r1\nACGT\n+\nIIII\n@r2 extra\nGG\n+\nII\n");
  const auto records = read_fastq(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id, "r1");
  EXPECT_EQ(records[0].seq.to_string(), "ACGT");
  EXPECT_EQ(records[0].quality, "IIII");
  EXPECT_EQ(records[1].id, "r2");
}

TEST(Fastq, MalformedThrows) {
  std::istringstream missing_plus("@r\nACGT\nIIII\nIIII\n");
  EXPECT_THROW(read_fastq(missing_plus), std::runtime_error);
  std::istringstream truncated("@r\nACGT\n");
  EXPECT_THROW(read_fastq(truncated), std::runtime_error);
  std::istringstream bad_len("@r\nACGT\n+\nII\n");
  EXPECT_THROW(read_fastq(bad_len), std::runtime_error);
}

TEST(Fastq, WriteFillsDefaultQuality) {
  std::vector<FastqRecord> records(1);
  records[0].id = "x";
  records[0].seq = Sequence::from_string("ACG");
  std::ostringstream out;
  write_fastq(out, records);
  EXPECT_NE(out.str().find("III"), std::string::npos);
  std::istringstream in(out.str());
  const auto parsed = read_fastq(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].seq.to_string(), "ACG");
}

TEST(Fasta, MissingFileThrows) {
  EXPECT_THROW(read_fasta_file("/nonexistent/path.fa"), std::runtime_error);
}

}  // namespace
}  // namespace asmcap
