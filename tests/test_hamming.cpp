#include "align/hamming.h"

#include <gtest/gtest.h>

namespace asmcap {
namespace {

TEST(Hamming, Basics) {
  const Sequence a = Sequence::from_string("ACGT");
  EXPECT_EQ(hamming_distance(a, a), 0u);
  EXPECT_EQ(hamming_distance(a, Sequence::from_string("ACGA")), 1u);
  EXPECT_EQ(hamming_distance(a, Sequence::from_string("TGCA")), 4u);
}

TEST(Hamming, LengthMismatchThrows) {
  const Sequence a = Sequence::from_string("ACGT");
  const Sequence b = Sequence::from_string("ACG");
  EXPECT_THROW(hamming_distance(a, b), std::invalid_argument);
  EXPECT_THROW(hamming_mismatch_mask(a, b), std::invalid_argument);
  EXPECT_THROW(hamming_within(a, b, 1), std::invalid_argument);
}

TEST(Hamming, MaskMatchesDistance) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const Sequence a = Sequence::random(200, rng);
    Sequence b = a;
    // flip some positions
    for (int f = 0; f < 10; ++f) {
      const std::size_t pos = rng.below(200);
      b.set(pos, complement(b[pos]));  // complement always differs
    }
    const BitVec mask = hamming_mismatch_mask(a, b);
    EXPECT_EQ(mask.popcount(), hamming_distance(a, b));
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_EQ(mask.get(i), a[i] != b[i]);
  }
}

TEST(Hamming, WithinEarlyExit) {
  const Sequence a = Sequence::from_string("AAAAAAAA");
  const Sequence b = Sequence::from_string("CCCCAAAA");
  EXPECT_TRUE(hamming_within(a, b, 4));
  EXPECT_FALSE(hamming_within(a, b, 3));
  EXPECT_TRUE(hamming_within(a, a, 0));
}

TEST(Hamming, SymmetricProperty) {
  Rng rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    const Sequence a = Sequence::random(64, rng);
    const Sequence b = Sequence::random(64, rng);
    EXPECT_EQ(hamming_distance(a, b), hamming_distance(b, a));
  }
}

TEST(Hamming, RandomPairsNearExpectation) {
  Rng rng(35);
  double total = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const Sequence a = Sequence::random(256, rng);
    const Sequence b = Sequence::random(256, rng);
    total += static_cast<double>(hamming_distance(a, b));
  }
  EXPECT_NEAR(total / trials / 256.0, 0.75, 0.01);  // 3/4 mismatch rate
}

TEST(Hamming, PackedKernelMatchesScalar) {
  Rng rng(33);
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{31}, std::size_t{32}, std::size_t{33},
        std::size_t{64}, std::size_t{100}, std::size_t{256}}) {
    for (int trial = 0; trial < 20; ++trial) {
      const Sequence a = Sequence::random(n, rng);
      const Sequence b = Sequence::random(n, rng);
      EXPECT_EQ(hamming_packed(a.packed_words(), b.packed_words(), n),
                hamming_distance(a, b))
          << "n=" << n;
    }
  }
}

}  // namespace
}  // namespace asmcap
