#include <gtest/gtest.h>

#include "cam/interconnect.h"
#include "circuit/corners.h"
#include "circuit/montecarlo.h"
#include "circuit/timing.h"

namespace asmcap {
namespace {

// ---- H-tree -----------------------------------------------------------------

TEST(HTree, RoundsUpToPowerOfTwo) {
  const HTree tree(512);
  EXPECT_EQ(tree.leaves(), 512u);
  EXPECT_EQ(tree.levels(), 9u);
  const HTree odd(300);
  EXPECT_EQ(odd.leaves(), 512u);
  const HTree single(1);
  EXPECT_EQ(single.leaves(), 1u);
  EXPECT_EQ(single.levels(), 0u);
  EXPECT_THROW(HTree(0), std::invalid_argument);
}

TEST(HTree, LatencyScalesWithLevels) {
  const HTree small(64);
  const HTree large(512);
  EXPECT_GT(large.broadcast_latency(), small.broadcast_latency());
  EXPECT_DOUBLE_EQ(large.broadcast_latency(),
                   9.0 * large.params().level_latency);
  EXPECT_DOUBLE_EQ(large.collect_latency(), large.broadcast_latency());
}

TEST(HTree, EnergyScalesWithLeavesAndWidth) {
  const HTree tree(512);
  EXPECT_GT(tree.broadcast_energy(256), tree.broadcast_energy(64));
  EXPECT_NEAR(tree.broadcast_energy(256) / tree.broadcast_energy(64), 4.0,
              1e-9);
  // 2*(leaves-1) segment broadcasts.
  const double expected =
      2.0 * 511.0 * 256.0 * 4.0 * tree.params().energy_per_bit_level;
  EXPECT_NEAR(tree.broadcast_energy(256), expected, 1e-18);
}

TEST(HTree, BroadcastIsSmallVsSearch) {
  // Sanity: the H-tree must not dominate the 0.9 ns search (otherwise the
  // paper's throughput story would collapse).
  const HTree tree(512);
  EXPECT_LT(tree.broadcast_latency(), 0.9e-9);
}

// ---- Process corners ---------------------------------------------------------

TEST(Corners, Names) {
  EXPECT_STREQ(to_string(ProcessCorner::SS), "SS");
  EXPECT_STREQ(to_string(ProcessCorner::TT), "TT");
  EXPECT_STREQ(to_string(ProcessCorner::FF), "FF");
}

TEST(Corners, TtIsIdentity) {
  const ProcessParams nominal;
  const ProcessParams tt = apply_corner(nominal, ProcessCorner::TT, 1.2);
  EXPECT_DOUBLE_EQ(tt.charge.search_time(), nominal.charge.search_time());
  EXPECT_DOUBLE_EQ(tt.current.cell_current, nominal.current.cell_current);
}

TEST(Corners, SsSlowerFfFaster) {
  const ProcessParams nominal;
  const TimingModel ss{apply_corner(nominal, ProcessCorner::SS)};
  const TimingModel tt{apply_corner(nominal, ProcessCorner::TT)};
  const TimingModel ff{apply_corner(nominal, ProcessCorner::FF)};
  EXPECT_GT(ss.asmcap_search().total, tt.asmcap_search().total);
  EXPECT_LT(ff.asmcap_search().total, tt.asmcap_search().total);
  EXPECT_GT(ss.edam_search().total, tt.edam_search().total);
}

TEST(Corners, LowVoltageSlowsDown) {
  const ProcessParams nominal;
  const TimingModel low{apply_corner(nominal, ProcessCorner::TT, 1.0)};
  const TimingModel high{apply_corner(nominal, ProcessCorner::TT, 1.32)};
  EXPECT_GT(low.asmcap_search().total, high.asmcap_search().total);
  EXPECT_THROW(apply_corner(nominal, ProcessCorner::TT, 0.0),
               std::invalid_argument);
}

TEST(Corners, MismatchScalingShrinksEdamStates) {
  const ProcessParams nominal;
  const ProcessParams ss = apply_corner(nominal, ProcessCorner::SS);
  const ProcessParams ff = apply_corner(nominal, ProcessCorner::FF);
  EXPECT_LT(current_domain_max_states(ss.current),
            current_domain_max_states(nominal.current));
  EXPECT_GE(current_domain_max_states(ff.current),
            current_domain_max_states(nominal.current));
}

TEST(Corners, ResultStaysValid) {
  for (const ProcessCorner corner :
       {ProcessCorner::SS, ProcessCorner::TT, ProcessCorner::FF}) {
    for (const double vdd : {1.0, 1.2, 1.32}) {
      EXPECT_NO_THROW(apply_corner(ProcessParams{}, corner, vdd));
    }
  }
}

}  // namespace
}  // namespace asmcap
