#include "align/kernels.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "align/edstar.h"
#include "align/hamming.h"
#include "asmcap/accelerator.h"
#include "asmcap/edam.h"
#include "genome/readsim.h"

namespace asmcap {
namespace {

// Tiers that can actually execute on this machine (compiled + CPU).
std::vector<KernelTier> available_tiers() {
  std::vector<KernelTier> tiers;
  for (const KernelTier tier : compiled_kernel_tiers())
    if (kernel_tier_available(tier)) tiers.push_back(tier);
  return tiers;
}

/// Restores the active tier on scope exit (tests flip it at will).
struct TierGuard {
  KernelTier saved = active_kernel_tier();
  ~TierGuard() { set_active_kernel_tier(saved); }
};

/// Independent cell-by-cell ED* reference (mirrors the hardware window
/// definition, deliberately not sharing code with the kernels).
std::size_t ed_star_reference(const Sequence& stored, const Sequence& read) {
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < stored.size(); ++i) {
    const Base q = stored[i];
    bool match = q == read[i];
    if (!match && i > 0) match = q == read[i - 1];
    if (!match && i + 1 < read.size()) match = q == read[i + 1];
    mismatches += match ? 0u : 1u;
  }
  return mismatches;
}

std::size_t hamming_reference(const Sequence& a, const Sequence& b) {
  std::size_t distance = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    distance += a[i] != b[i] ? 1u : 0u;
  return distance;
}

// ---- Tier discovery and selection ---------------------------------------

TEST(KernelDispatch, ScalarAlwaysCompiledAndAvailable) {
  const auto compiled = compiled_kernel_tiers();
  ASSERT_FALSE(compiled.empty());
  EXPECT_EQ(compiled.front(), KernelTier::Scalar);
  EXPECT_TRUE(kernel_tier_available(KernelTier::Scalar));
  EXPECT_EQ(kernel_ops(KernelTier::Scalar).tier, KernelTier::Scalar);
}

TEST(KernelDispatch, ActiveTierIsAvailableAndOpsAgree) {
  const KernelTier tier = active_kernel_tier();
  EXPECT_TRUE(kernel_tier_available(tier));
  EXPECT_EQ(active_kernel_ops().tier, tier);
}

TEST(KernelDispatch, TierNames) {
  EXPECT_STREQ(to_string(KernelTier::Scalar), "scalar");
  EXPECT_STREQ(to_string(KernelTier::Avx2), "avx2");
  EXPECT_STREQ(to_string(KernelTier::Neon), "neon");
}

TEST(KernelDispatch, ResolveHonoursExplicitNames) {
  const KernelTier detected = detect_kernel_tier();
  // No override: the detected tier passes through.
  EXPECT_EQ(resolve_kernel_tier(nullptr, detected), detected);
  EXPECT_EQ(resolve_kernel_tier("", detected), detected);
  // Scalar is always selectable.
  EXPECT_EQ(resolve_kernel_tier("scalar", detected), KernelTier::Scalar);
  // Unknown names are a configuration error, not a silent fallback.
  EXPECT_THROW(resolve_kernel_tier("sse9", detected), std::invalid_argument);
  EXPECT_THROW(resolve_kernel_tier("AVX2", detected), std::invalid_argument);
  // SIMD names resolve when available and throw (not degrade) otherwise.
  for (const auto& [name, tier] :
       {std::pair<const char*, KernelTier>{"avx2", KernelTier::Avx2},
        std::pair<const char*, KernelTier>{"neon", KernelTier::Neon}}) {
    if (kernel_tier_available(tier)) {
      EXPECT_EQ(resolve_kernel_tier(name, detected), tier);
    } else {
      EXPECT_THROW(resolve_kernel_tier(name, detected), std::runtime_error);
    }
  }
}

TEST(KernelDispatch, EnvOverrideSelectsTier) {
  // Save and restore the process-wide override: the test binary may
  // itself be running under ASMCAP_KERNEL (the scalar-forced CI leg).
  const char* prior_raw = std::getenv("ASMCAP_KERNEL");
  const std::string prior = prior_raw == nullptr ? "" : prior_raw;
  ASSERT_EQ(setenv("ASMCAP_KERNEL", "scalar", 1), 0);
  EXPECT_EQ(resolve_kernel_tier_from_env(), KernelTier::Scalar);
  ASSERT_EQ(setenv("ASMCAP_KERNEL", "bogus", 1), 0);
  EXPECT_THROW(resolve_kernel_tier_from_env(), std::invalid_argument);
  ASSERT_EQ(unsetenv("ASMCAP_KERNEL"), 0);
  EXPECT_EQ(resolve_kernel_tier_from_env(), detect_kernel_tier());
  if (prior_raw != nullptr) {
    ASSERT_EQ(setenv("ASMCAP_KERNEL", prior.c_str(), 1), 0);
  }
}

TEST(KernelDispatch, SetActiveTierRejectsUnavailableTiers) {
  TierGuard guard;
  for (const KernelTier tier : {KernelTier::Avx2, KernelTier::Neon}) {
    if (kernel_tier_available(tier)) {
      set_active_kernel_tier(tier);
      EXPECT_EQ(active_kernel_tier(), tier);
    } else {
      EXPECT_THROW(set_active_kernel_tier(tier), std::runtime_error);
    }
  }
}

// ---- Cross-tier parity ---------------------------------------------------
// The bit-identity contract: every tier returns exactly the scalar counts
// on random and boundary-shaped inputs (n % 32 in {0, 1, 31}, empty,
// single-word, sub-vector-width word counts that exercise the SIMD tails).

TEST(KernelParity, AllTiersMatchScalarReferenceOnBoundaryLengths) {
  Rng rng(0x51D0);
  const std::size_t lengths[] = {0,  1,  2,   31,  32,  33,  63,  64, 65,
                                 95, 96, 97,  127, 128, 129, 159, 160,
                                 191, 192, 255, 256, 257};
  for (const std::size_t n : lengths) {
    for (int trial = 0; trial < 8; ++trial) {
      // A block of related rows: random, identical, and near-identical.
      std::vector<Sequence> rows;
      const Sequence read = Sequence::random(n, rng);
      rows.push_back(read);  // all-match row
      for (int r = 0; r < 3; ++r) rows.push_back(Sequence::random(n, rng));
      if (n > 0) {
        Sequence almost = read;  // single substitution at a random cell
        const std::size_t i = rng.below(n);
        almost.set(i, base_from_code(
                          static_cast<std::uint8_t>(code_of(almost[i]) + 1)));
        rows.push_back(almost);
      }
      const PackedRowMatrix matrix(rows, n);
      const PackedReadView view(read);
      ASSERT_EQ(view.words, matrix.words_per_row());

      for (const KernelTier tier : available_tiers()) {
        const KernelOps& ops = kernel_ops(tier);
        std::vector<std::uint32_t> star(rows.size()), ham(rows.size());
        ops.ed_star_block(matrix.data(), rows.size(), view, star.data());
        ops.hamming_block(matrix.data(), rows.size(), view, ham.data());
        for (std::size_t g = 0; g < rows.size(); ++g) {
          EXPECT_EQ(star[g], ed_star_reference(rows[g], read))
              << "tier=" << to_string(tier) << " n=" << n << " row=" << g;
          EXPECT_EQ(ham[g], hamming_reference(rows[g], read))
              << "tier=" << to_string(tier) << " n=" << n << " row=" << g;
        }
      }
    }
  }
}

TEST(KernelParity, SingleRowWrappersDispatchEveryTier) {
  TierGuard guard;
  Rng rng(0x51D1);
  for (const std::size_t n : {std::size_t{33}, std::size_t{256}}) {
    const Sequence a = Sequence::random(n, rng);
    const Sequence b = Sequence::random(n, rng);
    const std::size_t star = ed_star_reference(a, b);
    const std::size_t ham = hamming_reference(a, b);
    for (const KernelTier tier : available_tiers()) {
      set_active_kernel_tier(tier);
      EXPECT_EQ(ed_star_packed(a.packed_words(), b.packed_words(), n), star)
          << to_string(tier);
      EXPECT_EQ(hamming_packed(a.packed_words(), b.packed_words(), n), ham)
          << to_string(tier);
      EXPECT_EQ(ed_star(a, b), star);  // scalar reference path, any tier
    }
  }
}

TEST(KernelParity, MismatchWordsAgreeWithCountsAndMasks) {
  Rng rng(0x51D2);
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{31}, std::size_t{64}, std::size_t{65},
        std::size_t{96}, std::size_t{161}, std::size_t{256}}) {
    for (int trial = 0; trial < 10; ++trial) {
      const Sequence stored = Sequence::random(n, rng);
      const Sequence read = Sequence::random(n, rng);
      const PackedReadView view(read);
      const std::vector<std::uint64_t> packed = stored.packed_words();
      std::vector<std::uint64_t> flags(view.words);

      ed_star_mismatch_words(packed.data(), view, flags.data());
      const BitVec star_mask = lane_flags_to_bitvec(flags.data(), n);
      EXPECT_EQ(star_mask.popcount(), ed_star_reference(stored, read));
      EXPECT_EQ(star_mask, ed_star_mismatch_mask(stored, read));

      hamming_mismatch_words(packed.data(), view, flags.data());
      const BitVec ham_mask = lane_flags_to_bitvec(flags.data(), n);
      EXPECT_EQ(ham_mask.popcount(), hamming_reference(stored, read));
      EXPECT_EQ(ham_mask, hamming_mismatch_mask(stored, read));
      // Dense-bit layout: bit i of the mask is cell i's output.
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(ham_mask.get(i), stored[i] != read[i]);
    }
  }
}

// ---- Engine-level tier invariance ---------------------------------------
// bench_batch-style digests: identical decisions under every
// ASMCAP_KERNEL setting, on both accelerators' functional paths.

TEST(KernelTierEquivalence, AsmcapDecisionsIdenticalAcrossTiers) {
  TierGuard guard;
  AsmcapConfig config;
  config.array_rows = 64;
  config.array_cols = 64;
  config.array_count = 2;
  config.ideal_sensing = true;

  Rng rng(0x51D3);
  std::vector<Sequence> segments;
  for (int i = 0; i < 96; ++i)
    segments.push_back(Sequence::random(config.array_cols, rng));
  std::vector<Sequence> reads;
  for (int i = 0; i < 24; ++i)
    reads.push_back(Sequence::random(config.array_cols, rng));

  std::vector<std::vector<QueryResult>> per_tier;
  for (const KernelTier tier : available_tiers()) {
    set_active_kernel_tier(tier);
    // Fresh accelerator per tier: same seed, same batch epoch, so the
    // forked per-read streams are identical and only the kernels differ.
    AsmcapAccelerator accel(config);
    accel.load_reference(segments);
    accel.set_error_profile(ErrorRates::condition_a());
    accel.set_backend(BackendKind::Functional);
    per_tier.push_back(
        accel.search_batch(reads, 20, StrategyMode::Full, 2));
  }
  ASSERT_FALSE(per_tier.empty());
  for (std::size_t t = 1; t < per_tier.size(); ++t) {
    for (std::size_t i = 0; i < reads.size(); ++i) {
      EXPECT_EQ(per_tier[t][i].decisions, per_tier[0][i].decisions)
          << "tier " << to_string(available_tiers()[t]) << " read " << i;
      EXPECT_EQ(per_tier[t][i].matched_segments,
                per_tier[0][i].matched_segments);
    }
  }
}

TEST(KernelTierEquivalence, EdamDecisionsIdenticalAcrossTiers) {
  TierGuard guard;
  EdamConfig config;
  config.array_rows = 64;
  config.array_cols = 64;
  config.array_count = 2;
  config.ideal_sensing = true;

  Rng rng(0x51D4);
  std::vector<Sequence> segments;
  for (int i = 0; i < 96; ++i)
    segments.push_back(Sequence::random(config.array_cols, rng));
  std::vector<Sequence> reads;
  for (int i = 0; i < 24; ++i)
    reads.push_back(Sequence::random(config.array_cols, rng));

  std::vector<std::vector<EdamQueryResult>> per_tier;
  for (const KernelTier tier : available_tiers()) {
    set_active_kernel_tier(tier);
    EdamAccelerator accel(config);
    accel.load_reference(segments);
    accel.set_backend(BackendKind::Functional);
    per_tier.push_back(accel.search_batch(reads, 20, 2));
  }
  ASSERT_FALSE(per_tier.empty());
  for (std::size_t t = 1; t < per_tier.size(); ++t)
    for (std::size_t i = 0; i < reads.size(); ++i)
      EXPECT_EQ(per_tier[t][i].decisions, per_tier[0][i].decisions)
          << "tier " << to_string(available_tiers()[t]) << " read " << i;
}

}  // namespace
}  // namespace asmcap
