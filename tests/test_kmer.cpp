#include "genome/kmer.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace asmcap {
namespace {

TEST(Kmer, PackUnpackRoundTrip) {
  const Sequence s = Sequence::from_string("ACGTACGTGGCC");
  for (std::size_t k : {std::size_t{1}, std::size_t{4}, std::size_t{12}}) {
    const Kmer packed = pack_kmer(s, 0, k);
    EXPECT_EQ(unpack_kmer(packed, k).to_string(), s.subseq(0, k).to_string());
  }
}

TEST(Kmer, PackValidation) {
  const Sequence s = Sequence::from_string("ACGT");
  EXPECT_THROW(pack_kmer(s, 0, 0), std::invalid_argument);
  EXPECT_THROW(pack_kmer(s, 0, 33), std::invalid_argument);
  EXPECT_THROW(pack_kmer(s, 2, 4), std::out_of_range);
}

TEST(Kmer, ExtractMatchesNaive) {
  const Sequence s = Sequence::from_string("ACGTACGTTG");
  const auto kmers = extract_kmers(s, 4);
  ASSERT_EQ(kmers.size(), 7u);
  for (std::size_t pos = 0; pos < kmers.size(); ++pos)
    EXPECT_EQ(kmers[pos], pack_kmer(s, pos, 4)) << "pos=" << pos;
}

TEST(Kmer, ExtractShortSequence) {
  const Sequence s = Sequence::from_string("ACG");
  EXPECT_TRUE(extract_kmers(s, 4).empty());
  EXPECT_EQ(extract_kmers(s, 3).size(), 1u);
}

TEST(Kmer, ExtractFullWidthK32) {
  Rng rng(3);
  const Sequence s = Sequence::random(64, rng);
  const auto kmers = extract_kmers(s, 32);
  ASSERT_EQ(kmers.size(), 33u);
  for (std::size_t pos = 0; pos < kmers.size(); ++pos)
    EXPECT_EQ(kmers[pos], pack_kmer(s, pos, 32));
}

TEST(Kmer, CanonicalIsMinOfStrands) {
  const Sequence s = Sequence::from_string("AAAACCC");
  const Kmer fwd = pack_kmer(s, 0, 7);
  const Kmer rc = pack_kmer(s.reverse_complement(), 0, 7);
  EXPECT_EQ(canonical_kmer(fwd, 7), std::min(fwd, rc));
  // Canonicalisation is strand-invariant.
  EXPECT_EQ(canonical_kmer(fwd, 7), canonical_kmer(rc, 7));
}

TEST(Kmer, CanonicalIsIdempotent) {
  Rng rng(5);
  const Sequence s = Sequence::random(40, rng);
  for (Kmer kmer : extract_kmers(s, 15)) {
    const Kmer canon = canonical_kmer(kmer, 15);
    EXPECT_EQ(canonical_kmer(canon, 15), canon);
  }
}

TEST(Kmer, HashSpreads) {
  std::unordered_set<std::uint64_t> hashes;
  for (Kmer k = 0; k < 1000; ++k) hashes.insert(hash_kmer(k));
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(KmerIndex, LookupFindsAllOccurrences) {
  KmerIndex index(4);
  const Sequence s = Sequence::from_string("ACGTACGT");
  index.add_sequence(s, 9);
  const auto& hits = index.lookup(pack_kmer(s, 0, 4));  // ACGT at 0 and 4
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].sequence_id, 9u);
  EXPECT_EQ(hits[0].position, 0u);
  EXPECT_EQ(hits[1].position, 4u);
}

TEST(KmerIndex, MissingKmerEmpty) {
  KmerIndex index(4);
  index.add_sequence(Sequence::from_string("AAAAAA"), 0);
  EXPECT_TRUE(index.lookup(pack_kmer(Sequence::from_string("CCCC"), 0, 4))
                  .empty());
}

TEST(KmerIndex, CountsEntries) {
  KmerIndex index(3);
  index.add_sequence(Sequence::from_string("ACGTACG"), 0);  // 5 positions
  index.add_sequence(Sequence::from_string("TTTT"), 1);     // 2 positions
  EXPECT_EQ(index.total_entries(), 7u);
  EXPECT_GT(index.distinct_kmers(), 0u);
  // Sequence shorter than k is ignored.
  index.add_sequence(Sequence::from_string("AC"), 2);
  EXPECT_EQ(index.total_entries(), 7u);
}

}  // namespace
}  // namespace asmcap
