// Property tests of the live (mutable, epoch-snapshotted) database:
//  * epoch equivalence — after any append/delete/compact history, querying
//    the router is bit-identical (decisions, match ids, latency, ledger op
//    counts) to a fresh monolithic accelerator holding exactly the live
//    (id, segment) pairs, on every backend INCLUDING noisy circuit
//    sensing (per-id silicon keying makes noise placement-invariant);
//  * suffix-delete exactness — tombstoning a suffix leaves the bank
//    bit-identical to a fresh prefix load, energy included;
//  * pinned-ticket isolation — a SearchTicket launched against epoch E
//    returns epoch E's exact results no matter what mutations publish
//    while it is in flight;
//  * tombstone lifecycle — slot recycling, id stability, and the typed
//    DbError taxonomy;
//  * hot-bank overflow and compaction — staging-bank geometry changes
//    never change decisions;
//  * sketch consistency — shard pruning stays decision-neutral across
//    mutations.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "asmcap/db_error.h"
#include "asmcap/edam.h"
#include "asmcap/service.h"
#include "asmcap/sharded.h"
#include "genome/readsim.h"
#include "genome/reference.h"

namespace asmcap {
namespace {

AsmcapConfig bank_config(std::size_t array_count, bool ideal = true) {
  AsmcapConfig config;
  config.array_rows = 16;
  config.array_cols = 64;
  config.array_count = array_count;
  config.ideal_sensing = ideal;
  return config;
}

class LiveDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(2301);
    reference_ = generate_reference(64 * 50 + 128, {}, rng);
    segments_ = segment_reference(reference_, 64);
    segments_.resize(50);

    Rng read_rng(2302);
    ReadSimConfig sim_config;
    sim_config.read_length = 64;
    sim_config.rates = ErrorRates::condition_a();
    const ReadSimulator sim(reference_, sim_config);
    for (int i = 0; i < 18; ++i) {
      switch (i % 3) {
        case 0:
          reads_.push_back(segments_[static_cast<std::size_t>(
              read_rng.below(segments_.size()))]);
          break;
        case 1:
          reads_.push_back(
              sim.simulate_at(read_rng.below(40) * 64, read_rng).read);
          break;
        default:
          reads_.push_back(Sequence::random(64, read_rng));
      }
    }
  }

  std::vector<Sequence> first(std::size_t n) const {
    return std::vector<Sequence>(segments_.begin(), segments_.begin() + n);
  }

  Sequence reference_;
  std::vector<Sequence> segments_;
  std::vector<Sequence> reads_;
};

// After load + append + mid-database deletes + compact, the router must
// answer every query exactly like a fresh monolithic bank that holds the
// surviving (id, segment) pairs and nothing else — decisions, global
// match ids, latency, and ledger operation counts all equal, on the noisy
// circuit path too. This is the core guarantee of the live database: a
// mutation history is indistinguishable from the database it produced.
TEST_F(LiveDbTest, EpochEquivalentToFreshLoadOfLiveSegments) {
  struct Case {
    bool ideal;
    BackendKind backend;
  };
  const Case cases[] = {{true, BackendKind::Circuit},
                       {false, BackendKind::Circuit},
                       {true, BackendKind::Functional}};
  for (const Case& c : cases) {
    SCOPED_TRACE(c.ideal ? "ideal" : "noisy");
    ShardedAccelerator router(bank_config(2, c.ideal), 2);
    router.set_backend(c.backend);
    router.set_error_profile(ErrorRates::condition_a());
    router.load_reference(first(30));
    const std::vector<std::uint64_t> fresh = router.append_segments(
        std::vector<Sequence>(segments_.begin() + 30, segments_.begin() + 40));
    ASSERT_EQ(fresh.front(), 30u);
    router.remove_segments({3, 17, 25, 31});
    router.compact();
    ASSERT_EQ(router.live_segment_count(), 36u);

    // The replay bank: same seed (hence the same silicon root and query
    // streams), explicit ids at the router's surviving global ids.
    AsmcapAccelerator mono(bank_config(4, c.ideal));
    mono.set_backend(c.backend);
    mono.set_error_profile(ErrorRates::condition_a());
    std::vector<Sequence> live_rows;
    std::vector<std::uint64_t> live_ids;
    for (const auto& [id, row] : router.live_segments()) {
      live_ids.push_back(id);
      live_rows.push_back(row);
    }
    mono.append_segments(live_rows, live_ids);

    for (const Sequence& read : reads_) {
      const QueryResult a = router.search(read, 4, StrategyMode::Full);
      const QueryResult b = mono.search(read, 4, StrategyMode::Full);
      EXPECT_EQ(a.decisions, b.decisions);
      EXPECT_EQ(a.matched_segments, b.matched_segments);
      EXPECT_EQ(a.latency_seconds, b.latency_seconds);
    }
    const ExecutionTotals& rt = router.totals();
    const ExecutionTotals& mt = mono.controller().totals();
    EXPECT_EQ(rt.queries, mt.queries);
    EXPECT_EQ(rt.searches, mt.searches);
    EXPECT_EQ(rt.hd_searches, mt.hd_searches);
    EXPECT_EQ(rt.rotation_searches, mt.rotation_searches);
    EXPECT_EQ(rt.latency_seconds, mt.latency_seconds);
  }
}

// Deleting a suffix of ids leaves the surviving rows in exactly the slots
// a fresh prefix load would use, so EVERYTHING must be bit-identical —
// energy included: a tombstoned row's all-ones mask has zero matchline
// swing, and a fully-dead array drops out of the SL-driver term.
TEST_F(LiveDbTest, SuffixDeleteBitIdenticalToPrefixLoadIncludingEnergy) {
  for (const bool ideal : {true, false}) {
    SCOPED_TRACE(ideal ? "ideal" : "noisy");
    AsmcapAccelerator pruned(bank_config(3, ideal));
    pruned.set_error_profile(ErrorRates::condition_a());
    pruned.load_reference(first(40));
    std::vector<std::uint64_t> tail;
    for (std::uint64_t id = 30; id < 40; ++id) tail.push_back(id);
    pruned.remove_segments(tail);

    AsmcapAccelerator fresh(bank_config(3, ideal));
    fresh.set_error_profile(ErrorRates::condition_a());
    fresh.load_reference(first(30));

    for (const Sequence& read : reads_) {
      const QueryResult a = pruned.search(read, 4, StrategyMode::Full);
      const QueryResult b = fresh.search(read, 4, StrategyMode::Full);
      ASSERT_EQ(a.decisions.size(), 40u);
      ASSERT_EQ(b.decisions.size(), 30u);
      for (std::size_t i = 0; i < 30; ++i)
        EXPECT_EQ(a.decisions[i], b.decisions[i]);
      for (std::size_t i = 30; i < 40; ++i) EXPECT_FALSE(a.decisions[i]);
      EXPECT_EQ(a.matched_segments, b.matched_segments);
      EXPECT_EQ(a.latency_seconds, b.latency_seconds);
      EXPECT_EQ(a.energy_joules, b.energy_joules);
    }
  }
}

// A ticket submitted against epoch E must return epoch E's exact results
// even when appends, deletes, and a compaction all publish while it is in
// flight: the ticket pins the epoch snapshot at launch, and copy-on-write
// means no mutation can touch a pinned bank. The quiesced reference is an
// identical router that never mutates.
TEST_F(LiveDbTest, PinnedTicketIsIsolatedFromConcurrentMutations) {
  ShardedAccelerator quiet(bank_config(2), 2);
  quiet.load_reference(first(40));
  const std::vector<QueryResult> expected =
      quiet.search_batch(reads_, 4, StrategyMode::Full, 2);

  ShardedAccelerator live(bank_config(2), 2);
  live.load_reference(first(40));
  SearchService service(live);
  SearchService::Options options;
  options.workers = 2;
  auto ticket =
      service.submit_borrowed(reads_, 4, StrategyMode::Full, options);

  // Mutate while the ticket is in flight (whatever the interleaving, the
  // pinned epoch makes the outcome identical).
  live.append_segments(
      std::vector<Sequence>(segments_.begin() + 40, segments_.begin() + 48));
  live.remove_segments({0, 11, 39});
  live.compact();

  ticket->wait();
  for (std::size_t i = 0; i < reads_.size(); ++i) {
    const QueryResult& got = ticket->result(i);
    EXPECT_EQ(got.decisions, expected[i].decisions);
    EXPECT_EQ(got.matched_segments, expected[i].matched_segments);
    EXPECT_EQ(got.latency_seconds, expected[i].latency_seconds);
    EXPECT_EQ(got.energy_joules, expected[i].energy_joules);
  }

  // A search AFTER the mutations sees the new epoch: a wider id space and
  // silent tombstones.
  const QueryResult after = live.search(segments_[5], 0, StrategyMode::Full);
  EXPECT_EQ(after.decisions.size(), 48u);
  EXPECT_FALSE(after.decisions[0]);
  EXPECT_FALSE(after.decisions[11]);
  EXPECT_FALSE(after.decisions[39]);
  EXPECT_TRUE(after.decisions[5]);
}

// Slot recycling and the id lifecycle: a tombstoned slot is reused by the
// next append, its old id becomes Unknown (never reusable), double
// deletes and duplicate ids are typed errors, and decisions index the
// GLOBAL id space (recycled slots answer under their new id only).
TEST_F(LiveDbTest, TombstoneRecyclingKeepsIdsStable) {
  AsmcapAccelerator accel(bank_config(1));
  accel.load_reference(first(10));
  EXPECT_TRUE(accel.identity_layout());

  accel.remove_segments({3, 7});
  EXPECT_EQ(accel.live_segment_count(), 8u);
  EXPECT_EQ(accel.loaded_segments(), 10u);  // Slots, not live rows.
  EXPECT_EQ(accel.segment_state(3), SegmentState::Dead);

  // A dead row never matches, even its exact content.
  const QueryResult dead = accel.search(segments_[3], 0, StrategyMode::Full);
  EXPECT_FALSE(dead.decisions[3]);

  // Recycle both tombstones; ids continue from the high-water mark.
  const std::vector<std::uint64_t> fresh = accel.append_segments(
      {segments_[40], segments_[41]});
  EXPECT_EQ(fresh, (std::vector<std::uint64_t>{10, 11}));
  EXPECT_EQ(accel.loaded_segments(), 10u);  // Reused slots 3 and 7.
  EXPECT_FALSE(accel.identity_layout());
  EXPECT_EQ(accel.segment_state(3), SegmentState::Unknown);  // Recycled.
  EXPECT_EQ(accel.segment_state(10), SegmentState::Live);

  // The new rows answer under their NEW global ids.
  const QueryResult hit = accel.search(segments_[40], 0, StrategyMode::Full);
  ASSERT_EQ(hit.decisions.size(), 12u);
  EXPECT_TRUE(hit.decisions[10]);
  EXPECT_FALSE(hit.decisions[3]);

  try {
    accel.remove_segments({3});
    FAIL() << "expected DbError";
  } catch (const DbError& error) {
    EXPECT_EQ(error.kind(), DbErrorKind::UnknownSegment);
  }
  accel.remove_segments({10});
  try {
    accel.remove_segments({10});
    FAIL() << "expected DbError";
  } catch (const DbError& error) {
    EXPECT_EQ(error.kind(), DbErrorKind::DoubleDelete);
  }
  try {
    accel.append_segments({segments_[42]}, {5});  // Id 5 is still live.
    FAIL() << "expected DbError";
  } catch (const DbError& error) {
    EXPECT_EQ(error.kind(), DbErrorKind::DuplicateId);
  }
}

// Hot-bank overflow folds the staging rows into the cold tier mid-append,
// and explicit compaction does the same at an epoch boundary; neither may
// change a single decision. Two routers with identical mutation history —
// one compacted, one not — must agree bit-for-bit.
TEST_F(LiveDbTest, HotBankOverflowAndCompactionAreDecisionNeutral) {
  AsmcapConfig config = bank_config(2);
  config.live.hot_array_rows = 4;
  config.live.hot_array_count = 2;  // Hot capacity 8 < the 20 appends.

  auto build = [&]() {
    auto router = std::make_unique<ShardedAccelerator>(config, 2);
    router->load_reference(first(25));
    router->append_segments(
        std::vector<Sequence>(segments_.begin() + 25, segments_.begin() + 45));
    router->remove_segments({2, 30, 44});
    return router;
  };
  auto plain = build();
  auto compacted = build();
  const std::uint64_t before = compacted->epoch();
  EXPECT_GT(compacted->compact(), before);
  // A second compact is a no-op: nothing is staged any more.
  EXPECT_EQ(compacted->compact(), compacted->epoch());

  EXPECT_EQ(plain->live_segment_count(), compacted->live_segment_count());
  EXPECT_EQ(plain->live_segments(), compacted->live_segments());

  const std::vector<QueryResult> a =
      plain->search_batch(reads_, 4, StrategyMode::Full, 2);
  const std::vector<QueryResult> b =
      compacted->search_batch(reads_, 4, StrategyMode::Full, 2);
  for (std::size_t i = 0; i < reads_.size(); ++i) {
    EXPECT_EQ(a[i].decisions, b[i].decisions);
    EXPECT_EQ(a[i].matched_segments, b[i].matched_segments);
    EXPECT_EQ(a[i].latency_seconds, b[i].latency_seconds);
  }
}

// Shard pruning must stay decision-neutral across mutations: the bank
// sketches are updated incrementally on every append/delete/fold, and a
// stale sketch would prune a bank that holds a real hit. Equality against
// an unpruned twin after a full mutation history proves the incremental
// maintenance correct.
TEST_F(LiveDbTest, SketchPruningDecisionNeutralAfterMutations) {
  AsmcapConfig pruned_config = bank_config(2);
  pruned_config.pruning.enabled = true;
  AsmcapConfig plain_config = bank_config(2);
  plain_config.pruning.enabled = false;

  auto mutate = [&](ShardedAccelerator& router) {
    router.load_reference(first(30));
    router.append_segments(
        std::vector<Sequence>(segments_.begin() + 30, segments_.begin() + 42));
    router.remove_segments({1, 8, 33, 41});
    router.compact();
  };
  ShardedAccelerator pruned(pruned_config, 2);
  ShardedAccelerator plain(plain_config, 2);
  mutate(pruned);
  mutate(plain);

  const std::vector<QueryResult> a =
      pruned.search_batch(reads_, 4, StrategyMode::Full, 2);
  const std::vector<QueryResult> b =
      plain.search_batch(reads_, 4, StrategyMode::Full, 2);
  for (std::size_t i = 0; i < reads_.size(); ++i) {
    EXPECT_EQ(a[i].decisions, b[i].decisions);
    EXPECT_EQ(a[i].matched_segments, b[i].matched_segments);
  }
  // Every (query, bank) pair was either probed or pruned, never dropped.
  EXPECT_EQ(pruned.totals().banks_probed + pruned.totals().banks_pruned,
            reads_.size() * pruned.active_shards());
}

// The typed error taxonomy shared by the ASMCap banks, the router, and
// the EDAM comparator.
TEST_F(LiveDbTest, DbErrorKindsAreShared) {
  AsmcapAccelerator accel(bank_config(1));
  try {
    accel.search(reads_[0], 4, StrategyMode::Full);
    FAIL() << "expected DbError";
  } catch (const DbError& error) {
    EXPECT_EQ(error.kind(), DbErrorKind::NotLoaded);
  }
  accel.load_reference(first(8));
  try {
    accel.load_reference(first(8));
    FAIL() << "expected DbError";
  } catch (const DbError& error) {
    EXPECT_EQ(error.kind(), DbErrorKind::AlreadyLoaded);
  }
  try {
    accel.remove_segments({});
    FAIL() << "expected DbError";
  } catch (const DbError& error) {
    EXPECT_EQ(error.kind(), DbErrorKind::EmptyMutation);
  }

  ShardedAccelerator router(bank_config(1), 2);
  router.load_reference(first(8));
  try {
    router.remove_segments({99});
    FAIL() << "expected DbError";
  } catch (const DbError& error) {
    EXPECT_EQ(error.kind(), DbErrorKind::UnknownSegment);
  }

  EdamConfig edam_config;
  edam_config.array_rows = 16;
  edam_config.array_cols = 64;
  edam_config.array_count = 1;
  EdamAccelerator edam(edam_config);
  edam.load_reference(first(8));
  try {
    edam.load_reference(first(8));
    FAIL() << "expected DbError";
  } catch (const DbError& error) {
    EXPECT_EQ(error.kind(), DbErrorKind::AlreadyLoaded);
  }
}

}  // namespace
}  // namespace asmcap
