#include <gtest/gtest.h>

#include "asmcap/controller.h"
#include "asmcap/mapper.h"

namespace asmcap {
namespace {

TEST(Mapper, FillOrderRowMajorAcrossArrays) {
  ReferenceMapper mapper(4, 8);
  const auto locations = mapper.map_segments(10);
  ASSERT_EQ(locations.size(), 10u);
  EXPECT_EQ(locations[0].array, 0u);
  EXPECT_EQ(locations[0].row, 0u);
  EXPECT_EQ(locations[7].array, 0u);
  EXPECT_EQ(locations[7].row, 7u);
  EXPECT_EQ(locations[8].array, 1u);
  EXPECT_EQ(locations[8].row, 0u);
  EXPECT_EQ(mapper.mapped_segments(), 10u);
  EXPECT_EQ(mapper.arrays_in_use(), 2u);
}

TEST(Mapper, CapacityEnforced) {
  ReferenceMapper mapper(2, 4);
  mapper.map_segments(8);
  EXPECT_THROW(mapper.map_segments(1), std::length_error);
}

TEST(Mapper, IncrementalMapping) {
  ReferenceMapper mapper(2, 4);
  mapper.map_segments(3);
  const auto second = mapper.map_segments(2);
  EXPECT_EQ(second[0].array, 0u);
  EXPECT_EQ(second[0].row, 3u);
  EXPECT_EQ(second[1].array, 1u);
  EXPECT_EQ(second[1].row, 0u);
}

TEST(Mapper, ReverseLookup) {
  ReferenceMapper mapper(4, 8);
  mapper.map_segments(10);
  EXPECT_EQ(mapper.segment_at(0, 5).value(), 5u);
  EXPECT_EQ(mapper.segment_at(1, 1).value(), 9u);
  EXPECT_FALSE(mapper.segment_at(1, 2).has_value());  // beyond mapped
  EXPECT_FALSE(mapper.segment_at(3, 7).has_value());
  EXPECT_THROW(mapper.segment_at(4, 0), std::out_of_range);
}

TEST(Mapper, EmptyGeometryThrows) {
  EXPECT_THROW(ReferenceMapper(0, 8), std::invalid_argument);
  EXPECT_THROW(ReferenceMapper(8, 0), std::invalid_argument);
}

TEST(Controller, PlanBaselineIsSingleSearch) {
  const AsmcapConfig config;
  const Controller controller(config);
  const QueryPlan plan =
      controller.plan(4, ErrorRates::condition_a(), StrategyMode::Baseline);
  EXPECT_EQ(plan.ed_star_searches, 1u);
  EXPECT_FALSE(plan.hd_search);
  EXPECT_FALSE(plan.tasr_triggered);
  EXPECT_EQ(plan.total_searches(), 1u);
}

TEST(Controller, PlanHdacAddsOneSearchWhenPIsHigh) {
  const AsmcapConfig config;
  const Controller controller(config);
  const QueryPlan plan =
      controller.plan(1, ErrorRates::condition_a(), StrategyMode::HdacOnly);
  EXPECT_TRUE(plan.hd_search);
  EXPECT_GT(plan.hdac_p, 0.3);
  EXPECT_EQ(plan.total_searches(), 2u);
}

TEST(Controller, PlanHdacDisabledBelowMinProbability) {
  const AsmcapConfig config;
  const Controller controller(config);
  // Condition B: indel damping makes p < 1 % -> HD search skipped.
  const QueryPlan plan =
      controller.plan(4, ErrorRates::condition_b(), StrategyMode::Full);
  EXPECT_FALSE(plan.hd_search);
  EXPECT_EQ(plan.hdac_p, 0.0);
}

TEST(Controller, PlanTasrTriggersAboveLowerBound) {
  const AsmcapConfig config;  // cols = 256 -> T_l = 6 in condition B
  const Controller controller(config);
  const QueryPlan below =
      controller.plan(5, ErrorRates::condition_b(), StrategyMode::TasrOnly);
  EXPECT_FALSE(below.tasr_triggered);
  EXPECT_EQ(below.total_searches(), 1u);
  const QueryPlan above =
      controller.plan(6, ErrorRates::condition_b(), StrategyMode::TasrOnly);
  EXPECT_TRUE(above.tasr_triggered);
  EXPECT_EQ(above.ed_star_searches, 5u);  // 1 + 2 rotations x 2 directions
  EXPECT_EQ(above.tasr_tl, 6u);
}

TEST(Controller, LedgerAccumulates) {
  const AsmcapConfig config;
  Controller controller(config);
  QueryPlan plan =
      controller.plan(1, ErrorRates::condition_a(), StrategyMode::Full);
  controller.record(plan, 1.8e-9, 5e-12);
  controller.record(plan, 1.8e-9, 5e-12);
  const ExecutionTotals& totals = controller.totals();
  EXPECT_EQ(totals.queries, 2u);
  EXPECT_EQ(totals.searches, 2u * plan.total_searches());
  EXPECT_EQ(totals.hd_searches, 2u);
  EXPECT_NEAR(totals.latency_seconds, 3.6e-9, 1e-15);
  EXPECT_NEAR(totals.energy_joules, 1e-11, 1e-18);
  controller.reset_totals();
  EXPECT_EQ(controller.totals().queries, 0u);
}

}  // namespace
}  // namespace asmcap
