#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace asmcap {
namespace {

TEST(ConfusionMatrix, AddRouting) {
  ConfusionMatrix cm;
  cm.add(true, true);
  cm.add(true, false);
  cm.add(false, true);
  cm.add(false, false);
  EXPECT_EQ(cm.tp, 1u);
  EXPECT_EQ(cm.fp, 1u);
  EXPECT_EQ(cm.fn, 1u);
  EXPECT_EQ(cm.tn, 1u);
  EXPECT_EQ(cm.total(), 4u);
}

TEST(ConfusionMatrix, PaperEq3Eq4) {
  // Sensitivity = TP/(TP+FN), Precision = TP/(TP+FP), F1 harmonic mean.
  ConfusionMatrix cm;
  cm.tp = 80;
  cm.fn = 20;
  cm.fp = 40;
  cm.tn = 860;
  EXPECT_DOUBLE_EQ(cm.sensitivity(), 0.8);
  EXPECT_DOUBLE_EQ(cm.precision(), 80.0 / 120.0);
  const double expected_f1 =
      2.0 * 0.8 * (80.0 / 120.0) / (0.8 + 80.0 / 120.0);
  EXPECT_NEAR(cm.f1(), expected_f1, 1e-12);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 940.0 / 1000.0);
}

TEST(ConfusionMatrix, DegenerateCasesAreZeroNotNan) {
  ConfusionMatrix empty;
  EXPECT_EQ(empty.sensitivity(), 0.0);
  EXPECT_EQ(empty.precision(), 0.0);
  EXPECT_EQ(empty.f1(), 0.0);
  EXPECT_EQ(empty.accuracy(), 0.0);
  ConfusionMatrix no_positives;
  no_positives.tn = 10;
  EXPECT_EQ(no_positives.f1(), 0.0);
}

TEST(ConfusionMatrix, PerfectScore) {
  ConfusionMatrix cm;
  cm.tp = 50;
  cm.tn = 50;
  EXPECT_DOUBLE_EQ(cm.f1(), 1.0);
}

TEST(ConfusionMatrix, Merge) {
  ConfusionMatrix a;
  a.tp = 1;
  a.fp = 2;
  ConfusionMatrix b;
  b.fn = 3;
  b.tn = 4;
  a.merge(b);
  EXPECT_EQ(a.tp, 1u);
  EXPECT_EQ(a.fp, 2u);
  EXPECT_EQ(a.fn, 3u);
  EXPECT_EQ(a.tn, 4u);
}

TEST(ConfusionMatrix, FromVectors) {
  const std::vector<bool> predicted{true, true, false, false};
  const std::vector<bool> actual{true, false, true, false};
  const ConfusionMatrix cm = confusion_from(predicted, actual);
  EXPECT_EQ(cm.tp, 1u);
  EXPECT_EQ(cm.fp, 1u);
  EXPECT_EQ(cm.fn, 1u);
  EXPECT_EQ(cm.tn, 1u);
  EXPECT_THROW(confusion_from({true}, {true, false}), std::invalid_argument);
}

TEST(NormalizedF1, Basics) {
  EXPECT_DOUBLE_EQ(normalized_f1(0.9, 0.2), 4.5);
  EXPECT_EQ(normalized_f1(0.9, 0.0), 0.0);
}

TEST(ConfusionMatrix, F1MonotoneInTp) {
  // Adding true positives (holding errors fixed) never lowers F1.
  ConfusionMatrix cm;
  cm.fp = 5;
  cm.fn = 5;
  double previous = 0.0;
  for (std::size_t tp = 1; tp < 50; ++tp) {
    cm.tp = tp;
    EXPECT_GE(cm.f1(), previous);
    previous = cm.f1();
  }
}

}  // namespace
}  // namespace asmcap
