#include "circuit/montecarlo.h"

#include <gtest/gtest.h>

#include <cmath>

namespace asmcap {
namespace {

TEST(States, PaperHeadlineNumbers) {
  // §V-D: EDAM supports at most 44 distinguishable states at 2.5 % current
  // variation; ASMCap supports 566 at 1.4 % capacitor variation.
  const ProcessParams process;
  EXPECT_EQ(current_domain_max_states(process.current), 44u);
  EXPECT_EQ(charge_domain_max_states(process.charge), 566u);
}

TEST(States, TightenVariationRaisesStates) {
  ChargeDomainParams charge;
  charge.cap_sigma_rel = 0.007;  // halve the mismatch
  EXPECT_GT(charge_domain_max_states(charge), 566u * 3);
  CurrentDomainParams current;
  current.i_sigma_rel = 0.0125;
  EXPECT_GT(current_domain_max_states(current), 44u * 3);
}

TEST(States, IdealDevicesUnbounded) {
  ChargeDomainParams charge;
  charge.cap_sigma_rel = 0.0;
  EXPECT_EQ(charge_domain_max_states(charge), ~std::size_t{0});
  CurrentDomainParams current;
  current.i_sigma_rel = 0.0;
  EXPECT_EQ(current_domain_max_states(current), ~std::size_t{0});
}

TEST(MonteCarlo, ChargeLevelsMatchAnalytic) {
  const ChargeDomainParams params;
  Rng rng(201);
  const auto levels =
      mc_charge_levels(params, 128, {32, 64, 96}, 1500, rng);
  ASSERT_EQ(levels.size(), 3u);
  for (const LevelStats& level : levels) {
    const double ideal =
        static_cast<double>(level.n_mis) / 128.0 * params.vdd;
    EXPECT_NEAR(level.mean_vml, ideal, 0.002);
    // Eq. 2 sigma.
    const double analytic_sigma = std::sqrt(
        static_cast<double>(level.n_mis) * (128.0 - level.n_mis) /
        (128.0 * 128.0 * 128.0)) *
        params.cap_sigma_rel * params.vdd;
    EXPECT_NEAR(level.sigma_vml, analytic_sigma, 0.3 * analytic_sigma);
  }
}

TEST(MonteCarlo, CurrentLevelsIncludeRandomNoise) {
  const CurrentDomainParams params;
  Rng rng(203);
  const auto levels = mc_current_levels(params, 256, {4, 40}, 1000, rng);
  ASSERT_EQ(levels.size(), 2u);
  // Sigma must be at least the S/H noise floor.
  for (const LevelStats& level : levels)
    EXPECT_GT(level.sigma_vml, 0.8 * params.sh_noise_sigma);
  // Means descend with the count.
  EXPECT_GT(levels[0].mean_vml, levels[1].mean_vml);
}

TEST(MonteCarlo, SeparationCounting) {
  std::vector<LevelStats> levels{{0, 0.0, 0.01},
                                 {1, 0.1, 0.01},   // gap 0.1 >= 3*(0.02) ok
                                 {2, 0.11, 0.01}}; // gap 0.01 < 0.06 fail
  EXPECT_EQ(count_separated_pairs(levels), 1u);
  EXPECT_EQ(count_separated_pairs({}), 0u);
}

TEST(MonteCarlo, ChargeDomainSeparatesSmallRows) {
  // A 128-cell row is far below the 566-state limit: every adjacent level
  // pair must be 3-sigma separated.
  const ChargeDomainParams params;
  Rng rng(205);
  std::vector<std::size_t> counts;
  for (std::size_t n = 60; n <= 68; ++n) counts.push_back(n);
  const auto levels = mc_charge_levels(params, 128, counts, 2000, rng);
  EXPECT_EQ(count_separated_pairs(levels), counts.size() - 1);
}

TEST(MonteCarlo, CurrentDomainFailsBeyondLimit) {
  // Counts far above 44 in a 256-cell current-domain row are no longer
  // 3-sigma separated (sigma grows as sqrt(n) while the step is constant).
  CurrentDomainParams params;
  params.sa_noise_sigma = 0.0;  // isolate the current-mismatch mechanism
  params.sh_noise_sigma = 0.0;
  params.timing_jitter_rel = 0.0;
  Rng rng(207);
  std::vector<std::size_t> counts{150, 151, 152, 153};
  const auto levels = mc_current_levels(params, 256, counts, 3000, rng);
  EXPECT_LT(count_separated_pairs(levels), counts.size() - 1);
}

TEST(MonteCarlo, CurrentDomainSeparatesSmallCounts) {
  CurrentDomainParams params;
  params.sa_noise_sigma = 0.0;
  params.sh_noise_sigma = 0.0;
  params.timing_jitter_rel = 0.0;
  Rng rng(209);
  std::vector<std::size_t> counts{2, 3, 4, 5};
  const auto levels = mc_current_levels(params, 256, counts, 3000, rng);
  EXPECT_EQ(count_separated_pairs(levels), counts.size() - 1);
}

}  // namespace
}  // namespace asmcap
