#include "align/myers.h"

#include <gtest/gtest.h>

#include <tuple>

#include "align/edit_distance.h"
#include "genome/edits.h"

namespace asmcap {
namespace {

TEST(Myers, KnownCases) {
  const auto ed = [](const char* a, const char* b) {
    return myers_edit_distance(Sequence::from_string(a),
                               Sequence::from_string(b));
  };
  EXPECT_EQ(ed("ACGT", "ACGT"), 0u);
  EXPECT_EQ(ed("ACGT", "ACGA"), 1u);
  EXPECT_EQ(ed("ACGT", "AGT"), 1u);
  EXPECT_EQ(ed("AAAA", "TTTT"), 4u);
}

TEST(Myers, EmptyInputs) {
  const Sequence empty;
  const Sequence s = Sequence::from_string("ACG");
  EXPECT_EQ(myers_edit_distance(empty, s), 3u);
  EXPECT_EQ(myers_edit_distance(s, empty), 3u);
  EXPECT_EQ(myers_edit_distance(empty, empty), 0u);
}

TEST(Myers, EmptyPatternThrows) {
  EXPECT_THROW(MyersPattern{Sequence{}}, std::invalid_argument);
}

/// Property sweep: Myers must agree with the DP reference on random pairs
/// of every word-boundary-straddling length.
class MyersAgreement
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(MyersAgreement, MatchesDp) {
  const auto [len_a, seed] = GetParam();
  Rng rng(seed);
  for (int trial = 0; trial < 8; ++trial) {
    const Sequence a = Sequence::random(len_a, rng);
    const EditedSequence mutated = inject_edits(a, {0.05, 0.03, 0.03}, rng);
    EXPECT_EQ(myers_edit_distance(a, mutated.seq),
              edit_distance(a, mutated.seq))
        << "len=" << len_a;
    // And on unrelated pairs.
    const Sequence b = Sequence::random(len_a, rng);
    EXPECT_EQ(myers_edit_distance(a, b), edit_distance(a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Lengths, MyersAgreement,
    ::testing::Values(std::make_tuple(std::size_t{1}, std::size_t{100}),
                      std::make_tuple(std::size_t{7}, std::size_t{101}),
                      std::make_tuple(std::size_t{63}, std::size_t{102}),
                      std::make_tuple(std::size_t{64}, std::size_t{103}),
                      std::make_tuple(std::size_t{65}, std::size_t{104}),
                      std::make_tuple(std::size_t{127}, std::size_t{105}),
                      std::make_tuple(std::size_t{128}, std::size_t{106}),
                      std::make_tuple(std::size_t{129}, std::size_t{107}),
                      std::make_tuple(std::size_t{256}, std::size_t{108}),
                      std::make_tuple(std::size_t{300}, std::size_t{109})));

TEST(Myers, UnequalLengths) {
  Rng rng(61);
  for (int trial = 0; trial < 30; ++trial) {
    const Sequence a = Sequence::random(1 + rng.below(150), rng);
    const Sequence b = Sequence::random(1 + rng.below(150), rng);
    EXPECT_EQ(myers_edit_distance(a, b), edit_distance(a, b));
  }
}

TEST(Myers, WithinThreshold) {
  Rng rng(63);
  const Sequence a = Sequence::random(256, rng);
  const EditedSequence mutated = inject_edits(a, {0.02, 0.0, 0.0}, rng);
  const MyersPattern pattern(a);
  const std::size_t exact = edit_distance(a, mutated.seq);
  EXPECT_TRUE(pattern.within(mutated.seq, exact));
  if (exact > 0) {
    EXPECT_FALSE(pattern.within(mutated.seq, exact - 1));
  }
}

TEST(Myers, SemiGlobalFindsEmbeddedPattern) {
  Rng rng(65);
  const Sequence text = Sequence::random(2000, rng);
  const Sequence pattern_seq = text.subseq(700, 150);
  const MyersPattern pattern(pattern_seq);
  std::size_t end = 0;
  EXPECT_EQ(pattern.best_semiglobal(text, &end), 0u);
  EXPECT_EQ(end, 850u);
}

TEST(Myers, SemiGlobalWithErrors) {
  Rng rng(67);
  const Sequence text = Sequence::random(3000, rng);
  Sequence pattern_seq = text.subseq(1200, 200);
  // Three substitutions.
  for (std::size_t pos : {std::size_t{10}, std::size_t{100}, std::size_t{190}})
    pattern_seq.set(pos, complement(pattern_seq[pos]));
  const MyersPattern pattern(pattern_seq);
  std::size_t end = 0;
  const std::size_t best = pattern.best_semiglobal(text, &end);
  EXPECT_LE(best, 3u);
  EXPECT_NEAR(static_cast<double>(end), 1400.0, 4.0);
}

TEST(Myers, SemiGlobalNoMatchCostsPatternLength) {
  // Pattern absent: best is still bounded by pattern length (all inserts).
  const Sequence text = Sequence::from_string("AAAAAAAAAA");
  const MyersPattern pattern(Sequence::from_string("CCCC"));
  EXPECT_LE(pattern.best_semiglobal(text), 4u);
}

}  // namespace
}  // namespace asmcap
