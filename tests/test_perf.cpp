#include <gtest/gtest.h>

#include "perf/comparison.h"
#include "perf/system_model.h"

namespace asmcap {
namespace {

class SystemModelTest : public ::testing::Test {
 protected:
  SystemModel model_{AsmcapConfig{}};
  PerfWorkload workload_;
};

TEST_F(SystemModelTest, AllSystemsEstimated) {
  const auto estimates = model_.estimate_all(workload_);
  ASSERT_EQ(estimates.size(), 6u);
  for (const PerfEstimate& estimate : estimates) {
    EXPECT_GT(estimate.seconds_per_read, 0.0) << estimate.system;
    EXPECT_GT(estimate.joules_per_read, 0.0) << estimate.system;
  }
}

TEST_F(SystemModelTest, Fig8SpeedOrdering) {
  // The who-wins shape of Fig. 8: CM-CPU slowest, then ReSMA, SaVI, EDAM,
  // then the ASMCap variants (base faster than full).
  const auto e = model_.estimate_all(workload_);
  EXPECT_GT(e[0].seconds_per_read, e[1].seconds_per_read);  // CPU > ReSMA
  EXPECT_GT(e[1].seconds_per_read, e[2].seconds_per_read);  // ReSMA > SaVI
  EXPECT_GT(e[2].seconds_per_read, e[3].seconds_per_read);  // SaVI > EDAM
  EXPECT_GT(e[3].seconds_per_read, e[4].seconds_per_read);  // EDAM > base
  EXPECT_GT(e[5].seconds_per_read, e[4].seconds_per_read);  // full > base
}

TEST_F(SystemModelTest, Fig8EnergyOrdering) {
  const auto e = model_.estimate_all(workload_);
  EXPECT_GT(e[0].joules_per_read, e[1].joules_per_read);
  EXPECT_GT(e[1].joules_per_read, e[2].joules_per_read);
  EXPECT_GT(e[2].joules_per_read, e[3].joules_per_read);
  EXPECT_GT(e[3].joules_per_read, e[4].joules_per_read);
}

TEST_F(SystemModelTest, PaperRatioShapes) {
  // Not exact paper numbers (our substrate differs) but the right orders
  // of magnitude: EDAM/ASMCap-base speedup ~2-3x, energy ~20-30x; SaVI and
  // ReSMA two to four orders behind.
  const auto e = model_.estimate_all(workload_);
  const double edam_speed = e[3].seconds_per_read / e[4].seconds_per_read;
  EXPECT_NEAR(edam_speed, 2.67, 0.3);
  const double edam_energy = e[3].joules_per_read / e[4].joules_per_read;
  EXPECT_GT(edam_energy, 10.0);
  EXPECT_LT(edam_energy, 60.0);
  const double savi_speed = e[2].seconds_per_read / e[4].seconds_per_read;
  EXPECT_GT(savi_speed, 30.0);
  const double resma_speed = e[1].seconds_per_read / e[4].seconds_per_read;
  EXPECT_GT(resma_speed, 100.0);
  const double cpu_speed = e[0].seconds_per_read / e[4].seconds_per_read;
  EXPECT_GT(cpu_speed, 1e4);
}

TEST_F(SystemModelTest, FullStrategyOverheadScales) {
  PerfWorkload heavy = workload_;
  heavy.asmcap_full_searches = 3.0;
  const auto base = model_.estimate(AsmSystem::AsmcapFull, workload_);
  const auto more = model_.estimate(AsmSystem::AsmcapFull, heavy);
  EXPECT_NEAR(more.seconds_per_read / base.seconds_per_read, 1.5, 1e-9);
}

TEST(PerfLedger, RatioMath) {
  PerfEstimate fast{"fast", 1e-9, 1e-12};
  PerfEstimate slow{"slow", 1e-6, 1e-8};
  const PerfRatio r = ratio(fast, slow);
  EXPECT_NEAR(r.speedup, 1000.0, 1e-6);
  EXPECT_NEAR(r.energy_efficiency, 1e4, 1e-6);
  EXPECT_THROW(ratio(PerfEstimate{"zero", 0.0, 0.0}, slow),
               std::invalid_argument);
  EXPECT_NEAR(fast.reads_per_second(), 1e9, 1.0);
  EXPECT_NEAR(fast.reads_per_joule(), 1e12, 1.0);
}

TEST(Comparison, NormalizeToFirst) {
  std::vector<PerfEstimate> estimates{{"base", 1e-3, 1e-3},
                                      {"fast", 1e-6, 1e-5}};
  const auto rows = normalize_to_first(estimates);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].speedup, 1.0);
  EXPECT_NEAR(rows[1].speedup, 1000.0, 1e-6);
  EXPECT_NEAR(rows[1].energy_efficiency, 100.0, 1e-6);
  EXPECT_THROW(normalize_to_first({}), std::invalid_argument);
}

TEST(Comparison, RatiosAgainstSubject) {
  std::vector<PerfEstimate> estimates{{"a", 1e-3, 1e-3},
                                      {"b", 1e-4, 1e-4},
                                      {"c", 1e-6, 1e-6}};
  const auto rows = ratios_against(estimates, 2);  // subject = "c"
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].system, "a");
  EXPECT_NEAR(rows[0].speedup, 1000.0, 1e-6);
  EXPECT_NEAR(rows[1].speedup, 100.0, 1e-6);
  EXPECT_THROW(ratios_against(estimates, 5), std::out_of_range);
}

TEST(Comparison, TableRendering) {
  std::vector<ComparisonRow> rows{{"x", 2.0, 3.0, 1e-9, 1e-12}};
  const Table table = comparison_table(rows);
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_NE(table.to_text().find("2.0x"), std::string::npos);
}

}  // namespace
}  // namespace asmcap
