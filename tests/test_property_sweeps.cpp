// Cross-kernel property sweeps: the invariants that tie the whole stack
// together, checked over a parameter grid of read lengths and seeds.

#include <gtest/gtest.h>

#include <tuple>

#include "align/edit_distance.h"
#include "align/edstar.h"
#include "align/hamming.h"
#include "align/myers.h"
#include "asmcap/config.h"
#include "cam/array.h"
#include "genome/edits.h"

namespace asmcap {
namespace {

class KernelSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
 protected:
  std::size_t length() const { return std::get<0>(GetParam()); }
  std::uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(KernelSweep, DistanceKernelsAgree) {
  Rng rng(seed());
  for (int trial = 0; trial < 6; ++trial) {
    const Sequence a = Sequence::random(length(), rng);
    const EditedSequence mutated = inject_edits(a, {0.04, 0.02, 0.02}, rng);
    const std::size_t dp = edit_distance(a, mutated.seq);
    EXPECT_EQ(myers_edit_distance(a, mutated.seq), dp);
    const CappedDistance banded = banded_edit_distance(a, mutated.seq, 32);
    if (dp <= 32) {
      EXPECT_EQ(banded.distance, dp);
      EXPECT_TRUE(banded.within_band);
    } else {
      EXPECT_FALSE(banded.within_band);
    }
  }
}

TEST_P(KernelSweep, MetricOrderings) {
  Rng rng(seed() + 1);
  for (int trial = 0; trial < 6; ++trial) {
    const Sequence a = Sequence::random(length(), rng);
    const Sequence b = Sequence::random(length(), rng);
    const std::size_t hd = hamming_distance(a, b);
    const std::size_t ed = edit_distance(a, b);
    const std::size_t star = ed_star(a, b);
    EXPECT_LE(ed, hd);    // ED never exceeds HD on equal lengths
    EXPECT_LE(star, hd);  // the +/-1 window only removes mismatches
    // Rotation can only reduce the minimum.
    EXPECT_LE(ed_star_min_rotated(a, b, 2, RotateDir::Both), star);
  }
}

TEST_P(KernelSweep, BandedCapMonotone) {
  Rng rng(seed() + 2);
  const Sequence a = Sequence::random(length(), rng);
  const EditedSequence mutated = inject_edits(a, {0.05, 0.02, 0.02}, rng);
  std::size_t previous = 0;
  bool previous_within = false;
  for (std::size_t cap = 0; cap <= 24; cap += 4) {
    const CappedDistance capped = banded_edit_distance(a, mutated.seq, cap);
    if (previous_within) {
      // Once exact, larger caps must return the identical distance.
      EXPECT_TRUE(capped.within_band);
      EXPECT_EQ(capped.distance, previous);
    }
    previous = capped.distance;
    previous_within = capped.within_band;
  }
}

TEST_P(KernelSweep, CamArrayMatchesKernels) {
  Rng rng(seed() + 3);
  CamArray array(4, length());
  std::vector<Sequence> rows;
  for (std::size_t r = 0; r < 4; ++r) {
    rows.push_back(Sequence::random(length(), rng));
    array.write_row(r, rows.back());
  }
  const Sequence read = Sequence::random(length(), rng);
  const auto star = array.search_counts(read, MatchMode::EdStar);
  const auto ham = array.search_counts(read, MatchMode::Hamming);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(star[r], ed_star(rows[r], read));
    EXPECT_EQ(ham[r], hamming_distance(rows[r], read));
  }
}

TEST_P(KernelSweep, EditTraceBoundsDistance) {
  Rng rng(seed() + 4);
  const Sequence a = Sequence::random(length(), rng);
  for (int trial = 0; trial < 4; ++trial) {
    const EditedSequence mutated = inject_edits(a, {0.03, 0.02, 0.02}, rng);
    EXPECT_LE(edit_distance(a, mutated.seq), mutated.edit_count());
  }
}

INSTANTIATE_TEST_SUITE_P(
    LengthsAndSeeds, KernelSweep,
    ::testing::Combine(::testing::Values(std::size_t{16}, std::size_t{63},
                                         std::size_t{64}, std::size_t{65},
                                         std::size_t{128}, std::size_t{256}),
                       ::testing::Values(std::uint64_t{11}, std::uint64_t{222},
                                         std::uint64_t{3333})));

// ---- Strategy parameter monotonicity ---------------------------------------

class HdacSweep : public ::testing::TestWithParam<double> {};

TEST_P(HdacSweep, ProbabilityWellFormed) {
  const double eid = GetParam();
  const HdacParams params;
  const ErrorRates rates{0.01, eid / 2, eid / 2};
  double previous = 1.1;
  for (std::size_t t = 0; t <= 16; ++t) {
    const double p = hdac_probability(params, rates, t);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_LE(p, previous);  // monotone decreasing in T
    previous = p;
  }
}

TEST_P(HdacSweep, MoreIndelsLowerP) {
  const double eid = GetParam();
  const HdacParams params;
  const ErrorRates low{0.01, eid / 2, eid / 2};
  const ErrorRates high{0.01, eid, eid};
  EXPECT_GE(hdac_probability(params, low, 4),
            hdac_probability(params, high, 4));
}

INSTANTIATE_TEST_SUITE_P(IndelRates, HdacSweep,
                         ::testing::Values(0.0005, 0.001, 0.005, 0.01, 0.05));

class TasrSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TasrSweep, LowerBoundMonotone) {
  const std::size_t m = GetParam();
  const TasrParams params;
  // T_l decreases as indels increase (rotate sooner on indel-heavy data).
  double previous = 1e18;
  for (const double eid : {0.001, 0.005, 0.01, 0.05}) {
    const ErrorRates rates{0.001, eid / 2, eid / 2};
    const auto tl = static_cast<double>(tasr_lower_bound(params, rates, m));
    EXPECT_LE(tl, previous);
    previous = tl;
  }
  // And increases with read length at fixed rates.
  const ErrorRates rates = ErrorRates::condition_b();
  EXPECT_LE(tasr_lower_bound(params, rates, m),
            tasr_lower_bound(params, rates, 4 * m));
}

INSTANTIATE_TEST_SUITE_P(ReadLengths, TasrSweep,
                         ::testing::Values(std::size_t{64}, std::size_t{128},
                                           std::size_t{256}, std::size_t{512}));

}  // namespace
}  // namespace asmcap
