// Tests of sketch-based shard pruning (asmcap/sketch.h + the sharded
// router's probe path): the pigeonhole sketch is false-negative-free
// against the library ED* across random edit scripts at/below T; pruned
// and full fan-out produce bit-identical decisions/matched ids/latency on
// every backend (noisy circuit included) with energy exactly equal to the
// probed banks' sum; the ledger gains probe counters; repeated
// load_reference still throws with the sketch intact; and pruning
// disabled is indistinguishable from the pre-pruning router.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "align/edstar.h"
#include "asmcap/backend.h"
#include "asmcap/service.h"
#include "asmcap/sharded.h"
#include "asmcap/sketch.h"
#include "genome/readsim.h"
#include "genome/reference.h"
#include "util/rng.h"

namespace asmcap {
namespace {

constexpr std::size_t kThreshold = 4;
constexpr std::size_t kShards = 5;

AsmcapConfig bank_config(bool ideal, bool pruning) {
  AsmcapConfig config;
  config.array_rows = 16;
  config.array_cols = 64;
  config.array_count = 4;
  config.ideal_sensing = ideal;
  config.pruning.enabled = pruning;
  return config;
}

class PruningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(2301);
    reference_ = generate_reference(64 * 40 + 128, {}, rng);
    segments_ = segment_reference(reference_, 64);
    segments_.resize(40);

    // Read mix: exact copies (must hit their bank), simulated reads with
    // condition-A errors (at/below T in expectation), reads with exactly
    // T random substitutions (the at-threshold edge), and uniform-random
    // reads (the prunable bulk).
    Rng read_rng(2302);
    ReadSimConfig sim_config;
    sim_config.read_length = 64;
    sim_config.rates = ErrorRates::condition_a();
    const ReadSimulator sim(reference_, sim_config);
    for (int i = 0; i < 32; ++i) {
      switch (i % 4) {
        case 0:
          reads_.push_back(segments_[static_cast<std::size_t>(
              read_rng.below(segments_.size()))]);
          break;
        case 1:
          reads_.push_back(
              sim.simulate_at(read_rng.below(40) * 64, read_rng).read);
          break;
        case 2: {
          Sequence read = segments_[static_cast<std::size_t>(
              read_rng.below(segments_.size()))];
          for (std::size_t e = 0; e < kThreshold; ++e) {
            const std::size_t pos = read_rng.below(read.size());
            read.set(pos, base_from_code(static_cast<std::uint8_t>(
                              read_rng.below(4))));
          }
          reads_.push_back(read);
          break;
        }
        default:
          reads_.push_back(Sequence::random(64, read_rng));
      }
    }
  }

  Sequence reference_;
  std::vector<Sequence> segments_;
  std::vector<Sequence> reads_;
};

// --------------------------------------------------- window-count bounds --

TEST(PruningWindowCount, IdealAndNoisyBounds) {
  const AsmcapConfig ideal = bank_config(/*ideal=*/true, /*pruning=*/true);
  // Noise-free decision paths need exactly the pigeonhole T + 1 windows.
  EXPECT_EQ(pruning_window_count(ideal, BackendKind::Functional, kThreshold),
            kThreshold + 1);
  EXPECT_EQ(pruning_window_count(ideal, BackendKind::Circuit, kThreshold),
            kThreshold + 1);
  // The noisy circuit path needs a wider margin (never fewer windows), and
  // the windows must still fit the row.
  const AsmcapConfig noisy = bank_config(/*ideal=*/false, /*pruning=*/true);
  const std::size_t noisy_windows =
      pruning_window_count(noisy, BackendKind::Circuit, kThreshold);
  EXPECT_GE(noisy_windows, kThreshold + 1);
  ASSERT_GT(noisy_windows, 0u);
  EXPECT_GE(noisy.array_cols / noisy_windows, 1u);
  // The functional backend is noise-free even under a noisy config.
  EXPECT_EQ(pruning_window_count(noisy, BackendKind::Functional, kThreshold),
            kThreshold + 1);
  // A threshold too large for disjoint windows disables pruning soundly.
  EXPECT_EQ(pruning_window_count(ideal, BackendKind::Functional,
                                 ideal.array_cols),
            0u);
}

// ------------------------------------------- false-negative-free property --

TEST_F(PruningTest, SketchNeverPrunesABankWithAHit) {
  // Direct soundness property against the library ED*: for every plan
  // pass, a bank holding a row within the ideal decision threshold must
  // report may_match under the ideal window count (and a fortiori under
  // fewer windows). The noisy window count is larger, hence looser.
  ShardedAccelerator accel(bank_config(/*ideal=*/true, /*pruning=*/true),
                           kShards);
  accel.load_reference(segments_);
  const std::size_t windows = pruning_window_count(
      accel.config(), BackendKind::Functional, kThreshold);
  ASSERT_EQ(windows, kThreshold + 1);

  std::size_t hit_banks_checked = 0;
  for (const Sequence& read : reads_) {
    const ExecutionPlan plan = accel.controller().planner().build(
        read, kThreshold, accel.error_profile(), StrategyMode::Full);
    for (std::size_t s = 0; s < accel.active_shards(); ++s) {
      const BankSketch* sketch = accel.shard(s).sketch();
      ASSERT_NE(sketch, nullptr);
      bool bank_has_hit = false;
      for (std::size_t g = accel.shard_base(s);
           g < accel.shard_base(s) + accel.shard_segments(s); ++g)
        for (const Sequence& pass : plan.ed_star_passes)
          if (ed_star(segments_[g], pass) <= kThreshold) bank_has_hit = true;
      if (bank_has_hit) {
        EXPECT_TRUE(sketch->may_match(plan, windows))
            << "bank " << s << " holds a row within T but was prunable";
        ++hit_banks_checked;
      }
    }
  }
  // The read mix guarantees the property was actually exercised.
  EXPECT_GT(hit_banks_checked, 0u);
}

// --------------------------------------------- bit-identity vs full fan-out

TEST_F(PruningTest, BitIdenticalToFullFanoutOnEveryBackend) {
  struct Case {
    bool ideal;
    BackendKind backend;
  };
  for (const Case c : {Case{true, BackendKind::Circuit},
                       Case{false, BackendKind::Circuit},
                       Case{false, BackendKind::Functional}}) {
    ShardedAccelerator full(bank_config(c.ideal, /*pruning=*/false), kShards);
    ShardedAccelerator pruned(bank_config(c.ideal, /*pruning=*/true), kShards);
    full.load_reference(segments_);
    pruned.load_reference(segments_);
    full.set_backend(c.backend);
    pruned.set_backend(c.backend);

    // Same seeds => same silicon per bank, same master streams: on every
    // backend (the noisy circuit included) the probe may only skip banks
    // whose rows all decide 'no match' for every possible draw, so
    // decisions, matched ids, and latency are bit-identical.
    const auto full_batch =
        full.search_batch(reads_, kThreshold, StrategyMode::Full, 3);
    const auto pruned_batch =
        pruned.search_batch(reads_, kThreshold, StrategyMode::Full, 3);
    ASSERT_EQ(full_batch.size(), pruned_batch.size());
    for (std::size_t i = 0; i < full_batch.size(); ++i) {
      EXPECT_EQ(pruned_batch[i].decisions, full_batch[i].decisions)
          << "read " << i;
      EXPECT_EQ(pruned_batch[i].matched_segments,
                full_batch[i].matched_segments);
      EXPECT_EQ(pruned_batch[i].latency_seconds,
                full_batch[i].latency_seconds);
      // Energy drops to the probed banks' share, never rises.
      EXPECT_LE(pruned_batch[i].energy_joules, full_batch[i].energy_joules);
    }

    // Ledger: operation counts and latency identical; energy honestly
    // reduced; probe counters cover every (read x shard) pair.
    EXPECT_EQ(pruned.totals().queries, full.totals().queries);
    EXPECT_EQ(pruned.totals().searches, full.totals().searches);
    EXPECT_EQ(pruned.totals().hd_searches, full.totals().hd_searches);
    EXPECT_EQ(pruned.totals().rotation_searches,
              full.totals().rotation_searches);
    EXPECT_EQ(pruned.totals().latency_seconds, full.totals().latency_seconds);
    EXPECT_LE(pruned.totals().energy_joules, full.totals().energy_joules);
    EXPECT_EQ(pruned.totals().banks_probed + pruned.totals().banks_pruned,
              pruned.active_shards() * reads_.size());
    EXPECT_GT(pruned.totals().banks_pruned, 0u) << "nothing was pruned";
    EXPECT_EQ(full.totals().banks_probed, 0u);
    EXPECT_EQ(full.totals().banks_pruned, 0u);
  }
}

TEST_F(PruningTest, SequentialSearchBitIdenticalAndStreamPreserving) {
  // The sequential path advances the master stream once per query BEFORE
  // the probe, so pruning never shifts later queries' streams: a full and
  // a pruned router interleave identically read-for-read.
  ShardedAccelerator full(bank_config(/*ideal=*/false, /*pruning=*/false),
                          kShards);
  ShardedAccelerator pruned(bank_config(/*ideal=*/false, /*pruning=*/true),
                            kShards);
  full.load_reference(segments_);
  pruned.load_reference(segments_);
  for (const Sequence& read : reads_) {
    const QueryResult a = full.search(read, kThreshold, StrategyMode::Full, 2);
    const QueryResult b =
        pruned.search(read, kThreshold, StrategyMode::Full, 2);
    EXPECT_EQ(b.decisions, a.decisions);
    EXPECT_EQ(b.matched_segments, a.matched_segments);
    EXPECT_EQ(b.latency_seconds, a.latency_seconds);
  }
}

// ------------------------------------------------ exact energy accounting --

TEST_F(PruningTest, EnergyIsExactlyTheProbedBanksSum) {
  // On the functional backend pass energy is a pure function of the plan
  // and the bank's stored rows (no RNG dependence), so the pruned energy
  // must reconstruct exactly from the sketch-predicted probe set.
  ShardedAccelerator pruned(bank_config(/*ideal=*/false, /*pruning=*/true),
                            kShards);
  pruned.load_reference(segments_);
  pruned.set_backend(BackendKind::Functional);
  const std::size_t windows = pruning_window_count(
      pruned.config(), BackendKind::Functional, kThreshold);
  const auto batch =
      pruned.search_batch(reads_, kThreshold, StrategyMode::Full, 2);

  const Rng any_rng(42);
  for (std::size_t i = 0; i < reads_.size(); ++i) {
    const ExecutionPlan plan = pruned.controller().planner().build(
        reads_[i], kThreshold, pruned.error_profile(), StrategyMode::Full);
    double expected = 0.0;
    for (std::size_t s = 0; s < pruned.active_shards(); ++s)
      if (pruned.shard(s).sketch()->may_match(plan, windows))
        expected += pruned.shard(s).execute(plan, any_rng).energy_joules;
    EXPECT_EQ(batch[i].energy_joules, expected) << "read " << i;
  }
}

TEST(PruningAllBanksTest, AllPrunedReadKeepsLatencyAndZeroEnergy) {
  // A read no bank can match completes without executing anything: the
  // all-false decision shape, zero energy, and the SAME analytic pass
  // latency a full fan-out reports (latency is plan-determined).
  std::vector<Sequence> segments(20, Sequence::from_string(
                                         std::string(64, 'G')));
  const Sequence read(64);  // all 'A': ED* == 64 against every row
  ShardedAccelerator full(bank_config(/*ideal=*/true, /*pruning=*/false),
                          kShards);
  ShardedAccelerator pruned(bank_config(/*ideal=*/true, /*pruning=*/true),
                            kShards);
  full.load_reference(segments);
  pruned.load_reference(segments);

  const QueryResult a = full.search(read, kThreshold, StrategyMode::Full);
  const QueryResult b = pruned.search(read, kThreshold, StrategyMode::Full);
  EXPECT_EQ(b.decisions, a.decisions);
  EXPECT_TRUE(b.matched_segments.empty());
  EXPECT_EQ(b.latency_seconds, a.latency_seconds);
  EXPECT_EQ(b.energy_joules, 0.0);
  EXPECT_GT(a.energy_joules, 0.0);
  EXPECT_EQ(pruned.totals().banks_pruned, pruned.active_shards());
  EXPECT_EQ(pruned.totals().banks_probed, 0u);

  // The service path takes the same all-pruned shortcut.
  const auto batch =
      pruned.search_batch({read, read}, kThreshold, StrategyMode::Full, 2);
  for (const QueryResult& result : batch) {
    EXPECT_EQ(result.decisions, a.decisions);
    EXPECT_EQ(result.latency_seconds, a.latency_seconds);
    EXPECT_EQ(result.energy_joules, 0.0);
  }
}

// ----------------------------------------------------- service-path parity

TEST_F(PruningTest, ServiceSubmitMatchesBatchUnderPruning) {
  // A direct service submission with a tiny admission window must equal
  // search_batch (which is submit + drain with default options): per-read
  // shard subsets survive admission throttling, out-of-order completion,
  // and the merge-on-last-shard path.
  ShardedAccelerator a(bank_config(/*ideal=*/true, /*pruning=*/true),
                       kShards);
  ShardedAccelerator b(bank_config(/*ideal=*/true, /*pruning=*/true),
                       kShards);
  a.load_reference(segments_);
  b.load_reference(segments_);

  const auto batch = a.search_batch(reads_, kThreshold, StrategyMode::Full, 3);
  SearchService service(b);
  SearchService::Options options;
  options.workers = 3;
  options.max_in_flight = 2;
  const auto results =
      service.submit_borrowed(reads_, kThreshold, StrategyMode::Full, options)
          ->drain();
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(results[i].decisions, batch[i].decisions);
    EXPECT_EQ(results[i].matched_segments, batch[i].matched_segments);
    EXPECT_EQ(results[i].energy_joules, batch[i].energy_joules);
    EXPECT_EQ(results[i].latency_seconds, batch[i].latency_seconds);
  }
  EXPECT_EQ(a.totals().banks_probed, b.totals().banks_probed);
  EXPECT_EQ(a.totals().banks_pruned, b.totals().banks_pruned);
}

// ------------------------------------------------ load-once sketch contract

TEST_F(PruningTest, RepeatedLoadThrowsWithSketchIntact) {
  ShardedAccelerator accel(bank_config(/*ideal=*/true, /*pruning=*/true),
                           kShards);
  accel.load_reference(segments_);
  const BankSketch* sketch = accel.shard(0).sketch();
  ASSERT_NE(sketch, nullptr);
  const std::size_t bytes = sketch->memory_bytes();
  EXPECT_EQ(sketch->rows(), accel.shard_segments(0));
  EXPECT_EQ(sketch->columns(), accel.config().array_cols);

  EXPECT_THROW(accel.load_reference(segments_), std::logic_error);
  // The failed reload left the sketch (same object, same contents) and the
  // search path untouched.
  EXPECT_EQ(accel.shard(0).sketch(), sketch);
  EXPECT_EQ(sketch->memory_bytes(), bytes);
  const QueryResult after =
      accel.search(reads_[0], kThreshold, StrategyMode::Full);

  ShardedAccelerator fresh(bank_config(/*ideal=*/true, /*pruning=*/true),
                           kShards);
  fresh.load_reference(segments_);
  const QueryResult expect =
      fresh.search(reads_[0], kThreshold, StrategyMode::Full);
  EXPECT_EQ(after.decisions, expect.decisions);
  EXPECT_EQ(after.energy_joules, expect.energy_joules);
}

TEST_F(PruningTest, DisabledIsTodaysRouter) {
  // pruning.enabled == false must be byte-for-byte the pre-pruning
  // router: no sketches built, no probe counters, decisions/energy as
  // before (the cross-check against the enabled router is covered by the
  // bit-identity tests above).
  ShardedAccelerator accel(bank_config(/*ideal=*/false, /*pruning=*/false),
                           kShards);
  accel.load_reference(segments_);
  EXPECT_EQ(accel.shard(0).sketch(), nullptr);
  accel.search_batch(reads_, kThreshold, StrategyMode::Full, 2);
  EXPECT_EQ(accel.totals().banks_probed, 0u);
  EXPECT_EQ(accel.totals().banks_pruned, 0u);
}

}  // namespace
}  // namespace asmcap
